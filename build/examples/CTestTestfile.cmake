# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart" "20000" "2")
set_tests_properties([=[example_quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_background_sort]=] "/root/repo/build/examples/background_sort")
set_tests_properties([=[example_background_sort]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_contention_study]=] "/root/repo/build/examples/contention_study")
set_tests_properties([=[example_contention_study]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_crash_course]=] "/root/repo/build/examples/crash_course")
set_tests_properties([=[example_crash_course]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
