# Empty compiler generated dependencies file for crash_course.
# This may be replaced when dependencies are built.
