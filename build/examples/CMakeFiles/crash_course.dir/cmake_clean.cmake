file(REMOVE_RECURSE
  "CMakeFiles/crash_course.dir/crash_course.cpp.o"
  "CMakeFiles/crash_course.dir/crash_course.cpp.o.d"
  "crash_course"
  "crash_course.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crash_course.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
