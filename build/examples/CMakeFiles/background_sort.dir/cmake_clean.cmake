file(REMOVE_RECURSE
  "CMakeFiles/background_sort.dir/background_sort.cpp.o"
  "CMakeFiles/background_sort.dir/background_sort.cpp.o.d"
  "background_sort"
  "background_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/background_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
