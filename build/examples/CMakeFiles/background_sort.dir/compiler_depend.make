# Empty compiler generated dependencies file for background_sort.
# This may be replaced when dependencies are built.
