# Empty dependencies file for wfsort_cli.
# This may be replaced when dependencies are built.
