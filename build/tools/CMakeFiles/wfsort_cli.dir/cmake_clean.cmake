file(REMOVE_RECURSE
  "CMakeFiles/wfsort_cli.dir/wfsort_cli.cpp.o"
  "CMakeFiles/wfsort_cli.dir/wfsort_cli.cpp.o.d"
  "wfsort"
  "wfsort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfsort_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
