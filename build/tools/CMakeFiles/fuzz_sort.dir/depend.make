# Empty dependencies file for fuzz_sort.
# This may be replaced when dependencies are built.
