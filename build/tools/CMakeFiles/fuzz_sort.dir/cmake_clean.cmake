file(REMOVE_RECURSE
  "CMakeFiles/fuzz_sort.dir/fuzz_sort.cpp.o"
  "CMakeFiles/fuzz_sort.dir/fuzz_sort.cpp.o.d"
  "fuzz_sort"
  "fuzz_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
