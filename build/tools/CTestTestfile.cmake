# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[cli_sort_smoke]=] "/root/repo/build/tools/wfsort" "sort" "--n=5000" "--threads=2")
set_tests_properties([=[cli_sort_smoke]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_sim_smoke]=] "/root/repo/build/tools/wfsort" "sim" "--n=64" "--procs=64" "--trace=4")
set_tests_properties([=[cli_sim_smoke]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_sim_classic_smoke]=] "/root/repo/build/tools/wfsort" "sim" "--n=64" "--procs=16" "--variant=classic")
set_tests_properties([=[cli_sim_classic_smoke]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_sim_lc_serial_smoke]=] "/root/repo/build/tools/wfsort" "sim" "--n=16" "--procs=4" "--variant=lc" "--schedule=serial")
set_tests_properties([=[cli_sim_lc_serial_smoke]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[fuzz_smoke]=] "/root/repo/build/tools/fuzz_sort" "--iters=20" "--seed=99")
set_tests_properties([=[fuzz_smoke]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
