file(REMOVE_RECURSE
  "libwfsort_exp.a"
)
