# Empty dependencies file for wfsort_exp.
# This may be replaced when dependencies are built.
