file(REMOVE_RECURSE
  "CMakeFiles/wfsort_exp.dir/table.cpp.o"
  "CMakeFiles/wfsort_exp.dir/table.cpp.o.d"
  "CMakeFiles/wfsort_exp.dir/workloads.cpp.o"
  "CMakeFiles/wfsort_exp.dir/workloads.cpp.o.d"
  "libwfsort_exp.a"
  "libwfsort_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfsort_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
