file(REMOVE_RECURSE
  "libwfsort_baselines.a"
)
