# Empty compiler generated dependencies file for wfsort_baselines.
# This may be replaced when dependencies are built.
