
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/bitonic.cpp" "src/baselines/CMakeFiles/wfsort_baselines.dir/bitonic.cpp.o" "gcc" "src/baselines/CMakeFiles/wfsort_baselines.dir/bitonic.cpp.o.d"
  "/root/repo/src/baselines/cost_model.cpp" "src/baselines/CMakeFiles/wfsort_baselines.dir/cost_model.cpp.o" "gcc" "src/baselines/CMakeFiles/wfsort_baselines.dir/cost_model.cpp.o.d"
  "/root/repo/src/baselines/lock_parallel_quicksort.cpp" "src/baselines/CMakeFiles/wfsort_baselines.dir/lock_parallel_quicksort.cpp.o" "gcc" "src/baselines/CMakeFiles/wfsort_baselines.dir/lock_parallel_quicksort.cpp.o.d"
  "/root/repo/src/baselines/parallel_mergesort.cpp" "src/baselines/CMakeFiles/wfsort_baselines.dir/parallel_mergesort.cpp.o" "gcc" "src/baselines/CMakeFiles/wfsort_baselines.dir/parallel_mergesort.cpp.o.d"
  "/root/repo/src/baselines/sequential.cpp" "src/baselines/CMakeFiles/wfsort_baselines.dir/sequential.cpp.o" "gcc" "src/baselines/CMakeFiles/wfsort_baselines.dir/sequential.cpp.o.d"
  "/root/repo/src/baselines/universal.cpp" "src/baselines/CMakeFiles/wfsort_baselines.dir/universal.cpp.o" "gcc" "src/baselines/CMakeFiles/wfsort_baselines.dir/universal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wfsort_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
