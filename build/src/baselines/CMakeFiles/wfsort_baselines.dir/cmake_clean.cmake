file(REMOVE_RECURSE
  "CMakeFiles/wfsort_baselines.dir/bitonic.cpp.o"
  "CMakeFiles/wfsort_baselines.dir/bitonic.cpp.o.d"
  "CMakeFiles/wfsort_baselines.dir/cost_model.cpp.o"
  "CMakeFiles/wfsort_baselines.dir/cost_model.cpp.o.d"
  "CMakeFiles/wfsort_baselines.dir/lock_parallel_quicksort.cpp.o"
  "CMakeFiles/wfsort_baselines.dir/lock_parallel_quicksort.cpp.o.d"
  "CMakeFiles/wfsort_baselines.dir/parallel_mergesort.cpp.o"
  "CMakeFiles/wfsort_baselines.dir/parallel_mergesort.cpp.o.d"
  "CMakeFiles/wfsort_baselines.dir/sequential.cpp.o"
  "CMakeFiles/wfsort_baselines.dir/sequential.cpp.o.d"
  "CMakeFiles/wfsort_baselines.dir/universal.cpp.o"
  "CMakeFiles/wfsort_baselines.dir/universal.cpp.o.d"
  "libwfsort_baselines.a"
  "libwfsort_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfsort_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
