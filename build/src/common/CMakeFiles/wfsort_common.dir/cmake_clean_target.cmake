file(REMOVE_RECURSE
  "libwfsort_common.a"
)
