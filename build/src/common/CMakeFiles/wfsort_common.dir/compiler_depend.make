# Empty compiler generated dependencies file for wfsort_common.
# This may be replaced when dependencies are built.
