file(REMOVE_RECURSE
  "CMakeFiles/wfsort_common.dir/cli.cpp.o"
  "CMakeFiles/wfsort_common.dir/cli.cpp.o.d"
  "CMakeFiles/wfsort_common.dir/rng.cpp.o"
  "CMakeFiles/wfsort_common.dir/rng.cpp.o.d"
  "CMakeFiles/wfsort_common.dir/stats.cpp.o"
  "CMakeFiles/wfsort_common.dir/stats.cpp.o.d"
  "libwfsort_common.a"
  "libwfsort_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfsort_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
