
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workalloc/lcwat_program.cpp" "src/workalloc/CMakeFiles/wfsort_workalloc.dir/lcwat_program.cpp.o" "gcc" "src/workalloc/CMakeFiles/wfsort_workalloc.dir/lcwat_program.cpp.o.d"
  "/root/repo/src/workalloc/wat.cpp" "src/workalloc/CMakeFiles/wfsort_workalloc.dir/wat.cpp.o" "gcc" "src/workalloc/CMakeFiles/wfsort_workalloc.dir/wat.cpp.o.d"
  "/root/repo/src/workalloc/wat_program.cpp" "src/workalloc/CMakeFiles/wfsort_workalloc.dir/wat_program.cpp.o" "gcc" "src/workalloc/CMakeFiles/wfsort_workalloc.dir/wat_program.cpp.o.d"
  "/root/repo/src/workalloc/write_all.cpp" "src/workalloc/CMakeFiles/wfsort_workalloc.dir/write_all.cpp.o" "gcc" "src/workalloc/CMakeFiles/wfsort_workalloc.dir/write_all.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wfsort_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pram/CMakeFiles/wfsort_pram.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
