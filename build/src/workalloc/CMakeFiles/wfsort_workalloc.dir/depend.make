# Empty dependencies file for wfsort_workalloc.
# This may be replaced when dependencies are built.
