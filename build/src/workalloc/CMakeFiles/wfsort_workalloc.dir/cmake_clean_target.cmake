file(REMOVE_RECURSE
  "libwfsort_workalloc.a"
)
