file(REMOVE_RECURSE
  "CMakeFiles/wfsort_workalloc.dir/lcwat_program.cpp.o"
  "CMakeFiles/wfsort_workalloc.dir/lcwat_program.cpp.o.d"
  "CMakeFiles/wfsort_workalloc.dir/wat.cpp.o"
  "CMakeFiles/wfsort_workalloc.dir/wat.cpp.o.d"
  "CMakeFiles/wfsort_workalloc.dir/wat_program.cpp.o"
  "CMakeFiles/wfsort_workalloc.dir/wat_program.cpp.o.d"
  "CMakeFiles/wfsort_workalloc.dir/write_all.cpp.o"
  "CMakeFiles/wfsort_workalloc.dir/write_all.cpp.o.d"
  "libwfsort_workalloc.a"
  "libwfsort_workalloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfsort_workalloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
