# Empty dependencies file for wfsort_pram.
# This may be replaced when dependencies are built.
