file(REMOVE_RECURSE
  "CMakeFiles/wfsort_pram.dir/machine.cpp.o"
  "CMakeFiles/wfsort_pram.dir/machine.cpp.o.d"
  "CMakeFiles/wfsort_pram.dir/memory.cpp.o"
  "CMakeFiles/wfsort_pram.dir/memory.cpp.o.d"
  "CMakeFiles/wfsort_pram.dir/metrics.cpp.o"
  "CMakeFiles/wfsort_pram.dir/metrics.cpp.o.d"
  "CMakeFiles/wfsort_pram.dir/primitives.cpp.o"
  "CMakeFiles/wfsort_pram.dir/primitives.cpp.o.d"
  "CMakeFiles/wfsort_pram.dir/scheduler.cpp.o"
  "CMakeFiles/wfsort_pram.dir/scheduler.cpp.o.d"
  "CMakeFiles/wfsort_pram.dir/trace.cpp.o"
  "CMakeFiles/wfsort_pram.dir/trace.cpp.o.d"
  "libwfsort_pram.a"
  "libwfsort_pram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfsort_pram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
