file(REMOVE_RECURSE
  "libwfsort_pram.a"
)
