
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pram/machine.cpp" "src/pram/CMakeFiles/wfsort_pram.dir/machine.cpp.o" "gcc" "src/pram/CMakeFiles/wfsort_pram.dir/machine.cpp.o.d"
  "/root/repo/src/pram/memory.cpp" "src/pram/CMakeFiles/wfsort_pram.dir/memory.cpp.o" "gcc" "src/pram/CMakeFiles/wfsort_pram.dir/memory.cpp.o.d"
  "/root/repo/src/pram/metrics.cpp" "src/pram/CMakeFiles/wfsort_pram.dir/metrics.cpp.o" "gcc" "src/pram/CMakeFiles/wfsort_pram.dir/metrics.cpp.o.d"
  "/root/repo/src/pram/primitives.cpp" "src/pram/CMakeFiles/wfsort_pram.dir/primitives.cpp.o" "gcc" "src/pram/CMakeFiles/wfsort_pram.dir/primitives.cpp.o.d"
  "/root/repo/src/pram/scheduler.cpp" "src/pram/CMakeFiles/wfsort_pram.dir/scheduler.cpp.o" "gcc" "src/pram/CMakeFiles/wfsort_pram.dir/scheduler.cpp.o.d"
  "/root/repo/src/pram/trace.cpp" "src/pram/CMakeFiles/wfsort_pram.dir/trace.cpp.o" "gcc" "src/pram/CMakeFiles/wfsort_pram.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wfsort_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
