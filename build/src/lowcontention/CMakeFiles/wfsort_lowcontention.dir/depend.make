# Empty dependencies file for wfsort_lowcontention.
# This may be replaced when dependencies are built.
