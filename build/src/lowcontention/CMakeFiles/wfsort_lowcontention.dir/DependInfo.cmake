
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lowcontention/counting_network.cpp" "src/lowcontention/CMakeFiles/wfsort_lowcontention.dir/counting_network.cpp.o" "gcc" "src/lowcontention/CMakeFiles/wfsort_lowcontention.dir/counting_network.cpp.o.d"
  "/root/repo/src/lowcontention/fat_tree.cpp" "src/lowcontention/CMakeFiles/wfsort_lowcontention.dir/fat_tree.cpp.o" "gcc" "src/lowcontention/CMakeFiles/wfsort_lowcontention.dir/fat_tree.cpp.o.d"
  "/root/repo/src/lowcontention/winner_tree.cpp" "src/lowcontention/CMakeFiles/wfsort_lowcontention.dir/winner_tree.cpp.o" "gcc" "src/lowcontention/CMakeFiles/wfsort_lowcontention.dir/winner_tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wfsort_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
