file(REMOVE_RECURSE
  "CMakeFiles/wfsort_lowcontention.dir/counting_network.cpp.o"
  "CMakeFiles/wfsort_lowcontention.dir/counting_network.cpp.o.d"
  "CMakeFiles/wfsort_lowcontention.dir/fat_tree.cpp.o"
  "CMakeFiles/wfsort_lowcontention.dir/fat_tree.cpp.o.d"
  "CMakeFiles/wfsort_lowcontention.dir/winner_tree.cpp.o"
  "CMakeFiles/wfsort_lowcontention.dir/winner_tree.cpp.o.d"
  "libwfsort_lowcontention.a"
  "libwfsort_lowcontention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfsort_lowcontention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
