file(REMOVE_RECURSE
  "libwfsort_lowcontention.a"
)
