# Empty compiler generated dependencies file for wfsort_pramsort.
# This may be replaced when dependencies are built.
