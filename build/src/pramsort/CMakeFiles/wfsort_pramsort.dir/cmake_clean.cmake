file(REMOVE_RECURSE
  "CMakeFiles/wfsort_pramsort.dir/classic_programs.cpp.o"
  "CMakeFiles/wfsort_pramsort.dir/classic_programs.cpp.o.d"
  "CMakeFiles/wfsort_pramsort.dir/det_programs.cpp.o"
  "CMakeFiles/wfsort_pramsort.dir/det_programs.cpp.o.d"
  "CMakeFiles/wfsort_pramsort.dir/driver.cpp.o"
  "CMakeFiles/wfsort_pramsort.dir/driver.cpp.o.d"
  "CMakeFiles/wfsort_pramsort.dir/layout.cpp.o"
  "CMakeFiles/wfsort_pramsort.dir/layout.cpp.o.d"
  "CMakeFiles/wfsort_pramsort.dir/lc_layout.cpp.o"
  "CMakeFiles/wfsort_pramsort.dir/lc_layout.cpp.o.d"
  "CMakeFiles/wfsort_pramsort.dir/lc_programs.cpp.o"
  "CMakeFiles/wfsort_pramsort.dir/lc_programs.cpp.o.d"
  "CMakeFiles/wfsort_pramsort.dir/validate.cpp.o"
  "CMakeFiles/wfsort_pramsort.dir/validate.cpp.o.d"
  "libwfsort_pramsort.a"
  "libwfsort_pramsort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfsort_pramsort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
