
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pramsort/classic_programs.cpp" "src/pramsort/CMakeFiles/wfsort_pramsort.dir/classic_programs.cpp.o" "gcc" "src/pramsort/CMakeFiles/wfsort_pramsort.dir/classic_programs.cpp.o.d"
  "/root/repo/src/pramsort/det_programs.cpp" "src/pramsort/CMakeFiles/wfsort_pramsort.dir/det_programs.cpp.o" "gcc" "src/pramsort/CMakeFiles/wfsort_pramsort.dir/det_programs.cpp.o.d"
  "/root/repo/src/pramsort/driver.cpp" "src/pramsort/CMakeFiles/wfsort_pramsort.dir/driver.cpp.o" "gcc" "src/pramsort/CMakeFiles/wfsort_pramsort.dir/driver.cpp.o.d"
  "/root/repo/src/pramsort/layout.cpp" "src/pramsort/CMakeFiles/wfsort_pramsort.dir/layout.cpp.o" "gcc" "src/pramsort/CMakeFiles/wfsort_pramsort.dir/layout.cpp.o.d"
  "/root/repo/src/pramsort/lc_layout.cpp" "src/pramsort/CMakeFiles/wfsort_pramsort.dir/lc_layout.cpp.o" "gcc" "src/pramsort/CMakeFiles/wfsort_pramsort.dir/lc_layout.cpp.o.d"
  "/root/repo/src/pramsort/lc_programs.cpp" "src/pramsort/CMakeFiles/wfsort_pramsort.dir/lc_programs.cpp.o" "gcc" "src/pramsort/CMakeFiles/wfsort_pramsort.dir/lc_programs.cpp.o.d"
  "/root/repo/src/pramsort/validate.cpp" "src/pramsort/CMakeFiles/wfsort_pramsort.dir/validate.cpp.o" "gcc" "src/pramsort/CMakeFiles/wfsort_pramsort.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wfsort_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pram/CMakeFiles/wfsort_pram.dir/DependInfo.cmake"
  "/root/repo/build/src/workalloc/CMakeFiles/wfsort_workalloc.dir/DependInfo.cmake"
  "/root/repo/build/src/lowcontention/CMakeFiles/wfsort_lowcontention.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
