file(REMOVE_RECURSE
  "libwfsort_pramsort.a"
)
