# CMake generated Testfile for 
# Source directory: /root/repo/src/pramsort
# Build directory: /root/repo/build/src/pramsort
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
