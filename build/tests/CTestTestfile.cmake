# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_pram[1]_include.cmake")
include("/root/repo/build/tests/test_workalloc[1]_include.cmake")
include("/root/repo/build/tests/test_sort_native[1]_include.cmake")
include("/root/repo/build/tests/test_lowcontention[1]_include.cmake")
include("/root/repo/build/tests/test_pramsort[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_session[1]_include.cmake")
include("/root/repo/build/tests/test_exp[1]_include.cmake")
include("/root/repo/build/tests/test_universal[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
include("/root/repo/build/tests/test_counting_network[1]_include.cmake")
include("/root/repo/build/tests/test_property_sweeps[1]_include.cmake")
include("/root/repo/build/tests/test_engine_detail[1]_include.cmake")
include("/root/repo/build/tests/test_machine_edge[1]_include.cmake")
