# Empty dependencies file for test_lowcontention.
# This may be replaced when dependencies are built.
