file(REMOVE_RECURSE
  "CMakeFiles/test_lowcontention.dir/test_lowcontention.cpp.o"
  "CMakeFiles/test_lowcontention.dir/test_lowcontention.cpp.o.d"
  "test_lowcontention"
  "test_lowcontention.pdb"
  "test_lowcontention[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lowcontention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
