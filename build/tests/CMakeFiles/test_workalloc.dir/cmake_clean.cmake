file(REMOVE_RECURSE
  "CMakeFiles/test_workalloc.dir/test_workalloc.cpp.o"
  "CMakeFiles/test_workalloc.dir/test_workalloc.cpp.o.d"
  "test_workalloc"
  "test_workalloc.pdb"
  "test_workalloc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workalloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
