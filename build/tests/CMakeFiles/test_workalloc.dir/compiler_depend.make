# Empty compiler generated dependencies file for test_workalloc.
# This may be replaced when dependencies are built.
