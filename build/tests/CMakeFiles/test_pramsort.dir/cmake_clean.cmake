file(REMOVE_RECURSE
  "CMakeFiles/test_pramsort.dir/test_pramsort.cpp.o"
  "CMakeFiles/test_pramsort.dir/test_pramsort.cpp.o.d"
  "test_pramsort"
  "test_pramsort.pdb"
  "test_pramsort[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pramsort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
