# Empty compiler generated dependencies file for test_pramsort.
# This may be replaced when dependencies are built.
