# Empty dependencies file for test_sort_native.
# This may be replaced when dependencies are built.
