file(REMOVE_RECURSE
  "CMakeFiles/test_sort_native.dir/test_sort_native.cpp.o"
  "CMakeFiles/test_sort_native.dir/test_sort_native.cpp.o.d"
  "test_sort_native"
  "test_sort_native.pdb"
  "test_sort_native[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sort_native.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
