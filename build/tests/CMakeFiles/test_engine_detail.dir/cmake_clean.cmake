file(REMOVE_RECURSE
  "CMakeFiles/test_engine_detail.dir/test_engine_detail.cpp.o"
  "CMakeFiles/test_engine_detail.dir/test_engine_detail.cpp.o.d"
  "test_engine_detail"
  "test_engine_detail.pdb"
  "test_engine_detail[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_detail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
