file(REMOVE_RECURSE
  "CMakeFiles/test_counting_network.dir/test_counting_network.cpp.o"
  "CMakeFiles/test_counting_network.dir/test_counting_network.cpp.o.d"
  "test_counting_network"
  "test_counting_network.pdb"
  "test_counting_network[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_counting_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
