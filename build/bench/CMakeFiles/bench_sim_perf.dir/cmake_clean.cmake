file(REMOVE_RECURSE
  "CMakeFiles/bench_sim_perf.dir/bench_sim_perf.cpp.o"
  "CMakeFiles/bench_sim_perf.dir/bench_sim_perf.cpp.o.d"
  "bench_sim_perf"
  "bench_sim_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sim_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
