
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_sim_perf.cpp" "bench/CMakeFiles/bench_sim_perf.dir/bench_sim_perf.cpp.o" "gcc" "bench/CMakeFiles/bench_sim_perf.dir/bench_sim_perf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/wfsort_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/pramsort/CMakeFiles/wfsort_pramsort.dir/DependInfo.cmake"
  "/root/repo/build/src/workalloc/CMakeFiles/wfsort_workalloc.dir/DependInfo.cmake"
  "/root/repo/build/src/pram/CMakeFiles/wfsort_pram.dir/DependInfo.cmake"
  "/root/repo/build/src/lowcontention/CMakeFiles/wfsort_lowcontention.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wfsort_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
