file(REMOVE_RECURSE
  "CMakeFiles/fig_e7_writemost.dir/fig_e7_writemost.cpp.o"
  "CMakeFiles/fig_e7_writemost.dir/fig_e7_writemost.cpp.o.d"
  "fig_e7_writemost"
  "fig_e7_writemost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_e7_writemost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
