# Empty compiler generated dependencies file for fig_e7_writemost.
# This may be replaced when dependencies are built.
