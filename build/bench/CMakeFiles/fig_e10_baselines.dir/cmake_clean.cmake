file(REMOVE_RECURSE
  "CMakeFiles/fig_e10_baselines.dir/fig_e10_baselines.cpp.o"
  "CMakeFiles/fig_e10_baselines.dir/fig_e10_baselines.cpp.o.d"
  "fig_e10_baselines"
  "fig_e10_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_e10_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
