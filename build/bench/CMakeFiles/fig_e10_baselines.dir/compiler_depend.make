# Empty compiler generated dependencies file for fig_e10_baselines.
# This may be replaced when dependencies are built.
