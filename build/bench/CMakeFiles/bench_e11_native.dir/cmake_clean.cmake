file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_native.dir/bench_e11_native.cpp.o"
  "CMakeFiles/bench_e11_native.dir/bench_e11_native.cpp.o.d"
  "bench_e11_native"
  "bench_e11_native.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_native.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
