# Empty dependencies file for bench_e11_native.
# This may be replaced when dependencies are built.
