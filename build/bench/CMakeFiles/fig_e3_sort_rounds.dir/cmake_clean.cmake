file(REMOVE_RECURSE
  "CMakeFiles/fig_e3_sort_rounds.dir/fig_e3_sort_rounds.cpp.o"
  "CMakeFiles/fig_e3_sort_rounds.dir/fig_e3_sort_rounds.cpp.o.d"
  "fig_e3_sort_rounds"
  "fig_e3_sort_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_e3_sort_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
