# Empty compiler generated dependencies file for fig_e3_sort_rounds.
# This may be replaced when dependencies are built.
