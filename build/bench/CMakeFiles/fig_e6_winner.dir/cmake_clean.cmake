file(REMOVE_RECURSE
  "CMakeFiles/fig_e6_winner.dir/fig_e6_winner.cpp.o"
  "CMakeFiles/fig_e6_winner.dir/fig_e6_winner.cpp.o.d"
  "fig_e6_winner"
  "fig_e6_winner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_e6_winner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
