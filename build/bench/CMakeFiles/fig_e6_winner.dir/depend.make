# Empty dependencies file for fig_e6_winner.
# This may be replaced when dependencies are built.
