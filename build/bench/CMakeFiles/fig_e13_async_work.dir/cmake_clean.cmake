file(REMOVE_RECURSE
  "CMakeFiles/fig_e13_async_work.dir/fig_e13_async_work.cpp.o"
  "CMakeFiles/fig_e13_async_work.dir/fig_e13_async_work.cpp.o.d"
  "fig_e13_async_work"
  "fig_e13_async_work.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_e13_async_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
