# Empty compiler generated dependencies file for fig_e13_async_work.
# This may be replaced when dependencies are built.
