# Empty compiler generated dependencies file for fig_e12_ablation.
# This may be replaced when dependencies are built.
