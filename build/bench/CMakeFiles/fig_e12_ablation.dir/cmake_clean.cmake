file(REMOVE_RECURSE
  "CMakeFiles/fig_e12_ablation.dir/fig_e12_ablation.cpp.o"
  "CMakeFiles/fig_e12_ablation.dir/fig_e12_ablation.cpp.o.d"
  "fig_e12_ablation"
  "fig_e12_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_e12_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
