# Empty dependencies file for fig_e4_contention_det.
# This may be replaced when dependencies are built.
