file(REMOVE_RECURSE
  "CMakeFiles/fig_e4_contention_det.dir/fig_e4_contention_det.cpp.o"
  "CMakeFiles/fig_e4_contention_det.dir/fig_e4_contention_det.cpp.o.d"
  "fig_e4_contention_det"
  "fig_e4_contention_det.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_e4_contention_det.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
