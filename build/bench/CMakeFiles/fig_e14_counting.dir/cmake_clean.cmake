file(REMOVE_RECURSE
  "CMakeFiles/fig_e14_counting.dir/fig_e14_counting.cpp.o"
  "CMakeFiles/fig_e14_counting.dir/fig_e14_counting.cpp.o.d"
  "fig_e14_counting"
  "fig_e14_counting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_e14_counting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
