# Empty dependencies file for fig_e14_counting.
# This may be replaced when dependencies are built.
