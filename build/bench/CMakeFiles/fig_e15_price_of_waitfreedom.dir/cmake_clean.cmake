file(REMOVE_RECURSE
  "CMakeFiles/fig_e15_price_of_waitfreedom.dir/fig_e15_price_of_waitfreedom.cpp.o"
  "CMakeFiles/fig_e15_price_of_waitfreedom.dir/fig_e15_price_of_waitfreedom.cpp.o.d"
  "fig_e15_price_of_waitfreedom"
  "fig_e15_price_of_waitfreedom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_e15_price_of_waitfreedom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
