# Empty dependencies file for fig_e15_price_of_waitfreedom.
# This may be replaced when dependencies are built.
