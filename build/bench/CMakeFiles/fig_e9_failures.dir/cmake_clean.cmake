file(REMOVE_RECURSE
  "CMakeFiles/fig_e9_failures.dir/fig_e9_failures.cpp.o"
  "CMakeFiles/fig_e9_failures.dir/fig_e9_failures.cpp.o.d"
  "fig_e9_failures"
  "fig_e9_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_e9_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
