# Empty compiler generated dependencies file for fig_e9_failures.
# This may be replaced when dependencies are built.
