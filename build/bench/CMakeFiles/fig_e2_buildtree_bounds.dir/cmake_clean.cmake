file(REMOVE_RECURSE
  "CMakeFiles/fig_e2_buildtree_bounds.dir/fig_e2_buildtree_bounds.cpp.o"
  "CMakeFiles/fig_e2_buildtree_bounds.dir/fig_e2_buildtree_bounds.cpp.o.d"
  "fig_e2_buildtree_bounds"
  "fig_e2_buildtree_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_e2_buildtree_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
