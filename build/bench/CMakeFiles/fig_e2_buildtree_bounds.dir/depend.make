# Empty dependencies file for fig_e2_buildtree_bounds.
# This may be replaced when dependencies are built.
