# Empty dependencies file for fig_e1_wat_writeall.
# This may be replaced when dependencies are built.
