file(REMOVE_RECURSE
  "CMakeFiles/fig_e1_wat_writeall.dir/fig_e1_wat_writeall.cpp.o"
  "CMakeFiles/fig_e1_wat_writeall.dir/fig_e1_wat_writeall.cpp.o.d"
  "fig_e1_wat_writeall"
  "fig_e1_wat_writeall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_e1_wat_writeall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
