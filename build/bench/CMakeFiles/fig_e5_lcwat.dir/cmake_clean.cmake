file(REMOVE_RECURSE
  "CMakeFiles/fig_e5_lcwat.dir/fig_e5_lcwat.cpp.o"
  "CMakeFiles/fig_e5_lcwat.dir/fig_e5_lcwat.cpp.o.d"
  "fig_e5_lcwat"
  "fig_e5_lcwat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_e5_lcwat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
