# Empty compiler generated dependencies file for fig_e5_lcwat.
# This may be replaced when dependencies are built.
