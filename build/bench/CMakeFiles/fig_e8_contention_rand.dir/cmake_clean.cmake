file(REMOVE_RECURSE
  "CMakeFiles/fig_e8_contention_rand.dir/fig_e8_contention_rand.cpp.o"
  "CMakeFiles/fig_e8_contention_rand.dir/fig_e8_contention_rand.cpp.o.d"
  "fig_e8_contention_rand"
  "fig_e8_contention_rand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_e8_contention_rand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
