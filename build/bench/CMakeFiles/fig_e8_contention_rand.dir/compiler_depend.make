# Empty compiler generated dependencies file for fig_e8_contention_rand.
# This may be replaced when dependencies are built.
