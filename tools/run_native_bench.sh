#!/usr/bin/env bash
# Run the native-engine benchmark suite and drop its JSON report at the repo
# root as BENCH_native_perf.json, where docs/native_engine.md points.  The
# committed copy of that file is the tracked native-perf baseline: re-run
# this script on the bench host after any hot-path change and commit the
# diff alongside it.
#
# Also emits BENCH_native_stats.json — one "wfsort-bench-v1" document (both
# variants at full telemetry, docs/observability.md) — the committed sample
# of the unified stats schema downstream tooling can diff against.
#
# Usage:
#   tools/run_native_bench.sh [build-dir] [extra benchmark args...]
#
# The build directory defaults to ./build-release and must already contain a
# configured Release build; the script builds (only) the bench_e11_native
# target in it.  Extra arguments are forwarded to the benchmark binary, e.g.:
#   tools/run_native_bench.sh build-release --benchmark_filter='Det/1048576'
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-release}"
shift $(( $# > 0 ? 1 : 0 ))

if [[ ! -f "$build_dir/CMakeCache.txt" ]]; then
  echo "error: '$build_dir' is not a configured CMake build directory" >&2
  echo "hint: cmake -B \"$build_dir\" -S \"$repo_root\" -DCMAKE_BUILD_TYPE=Release" >&2
  exit 1
fi

cmake --build "$build_dir" --target bench_e11_native wfsort_cli -j "$(nproc)"

out="$repo_root/BENCH_native_perf.json"
"$build_dir/bench/bench_e11_native" \
  --benchmark_format=json \
  --benchmark_out="$out" \
  --benchmark_out_format=json \
  "$@"

echo "wrote $out"

"$build_dir/tools/wfsort" bench --n=262144 --threads=4 --reps=2 \
  --stats-json="$repo_root/BENCH_native_stats.json"
