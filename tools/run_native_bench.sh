#!/usr/bin/env bash
# Run the native-engine benchmark suite and drop its JSON report at the repo
# root as BENCH_native_perf.json, where docs/native_engine.md points.  The
# committed copy of that file is the tracked native-perf baseline: re-run
# this script on the bench host after any hot-path change and commit the
# diff alongside it.
#
# Also emits:
#   BENCH_native_stats.json    one "wfsort-bench-v1" document (det tree,
#                              det partition and lc at full telemetry plus
#                              in-process baselines, the derived
#                              gap-vs-std::sort table, and — via
#                              --pool --back-to-back — the SortPool counter
#                              group with the small-N cold-vs-pooled sweep,
#                              docs/observability.md)
#   BENCH_native_scaling.json  one "wfsort-scaling-v1" document — both
#                              variants swept over t = 1, 2, 4, ... up to the
#                              hardware concurrency, with per-point speedup
#                              and max-contention attribution
#
# Provenance: the script refuses non-Release build directories, and every
# emitted envelope is checked with `wfsort validate --require-release` before
# the script succeeds — a debug-build number must never be committed.
#
# Usage:
#   tools/run_native_bench.sh [build-dir] [--append-history] [extra benchmark args...]
#
# The build directory defaults to ./build-release and must already contain a
# configured Release build; the script builds (only) the bench_e11_native
# and wfsort_cli targets in it.  Extra arguments are forwarded to the
# benchmark binary, e.g.:
#   tools/run_native_bench.sh build-release --benchmark_filter='Det/1048576'
#
# --append-history additionally appends the freshly validated
# "wfsort-bench-v1" envelope as one compact line to BENCH_history.jsonl at
# the repo root — the longitudinal record behind perf trend lines.  The file
# itself is validated per-line (`wfsort validate BENCH_history.jsonl`), so a
# debug-build line can never slip in.
#
# Scaling-sweep knobs (environment): WFSORT_SCALING_N (default 1048576),
# WFSORT_SCALING_REPS (default 2), WFSORT_SCALING_THREADS (default: powers
# of two up to the hardware concurrency).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-release}"
shift $(( $# > 0 ? 1 : 0 ))

append_history=0
fwd_args=()
for arg in "$@"; do
  if [[ "$arg" == "--append-history" ]]; then
    append_history=1
  else
    fwd_args+=( "$arg" )
  fi
done
set -- ${fwd_args[@]+"${fwd_args[@]}"}

if [[ ! -f "$build_dir/CMakeCache.txt" ]]; then
  echo "error: '$build_dir' is not a configured CMake build directory" >&2
  echo "hint: cmake -B \"$build_dir\" -S \"$repo_root\" -DCMAKE_BUILD_TYPE=Release" >&2
  exit 1
fi
build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$build_dir/CMakeCache.txt")"
if [[ "$build_type" != "Release" ]]; then
  echo "error: '$build_dir' is configured as '${build_type:-<unset>}', not Release" >&2
  echo "benchmark numbers from non-Release builds must not be committed" >&2
  exit 1
fi

cmake --build "$build_dir" --target bench_e11_native wfsort_cli -j "$(nproc)"
wfsort="$build_dir/tools/wfsort"

out="$repo_root/BENCH_native_perf.json"
"$build_dir/bench/bench_e11_native" \
  --benchmark_format=json \
  --benchmark_out="$out" \
  --benchmark_out_format=json \
  "$@"
"$wfsort" validate "$out" --require-release
echo "wrote $out"

# --pool --back-to-back: the per-rep sorts run through the process-wide
# SortPool and the envelope gains a "pool" group — the pool's lifetime
# counters plus the small-N cold-vs-pooled sweep rows (2^10..2^20) that
# docs/native_engine.md's latency table is built from.
"$wfsort" bench --n=262144 --threads=4 --reps=2 --pool --back-to-back \
  --stats-json="$repo_root/BENCH_native_stats.json"
"$wfsort" validate "$repo_root/BENCH_native_stats.json" --require-release

if [[ "$append_history" == 1 ]]; then
  history="$repo_root/BENCH_history.jsonl"
  python3 - "$repo_root/BENCH_native_stats.json" "$history" <<'EOF'
import json, sys
env = json.load(open(sys.argv[1]))
with open(sys.argv[2], 'a') as f:
    f.write(json.dumps(env, separators=(',', ':')) + '\n')
EOF
  "$wfsort" validate "$history" --require-release
  echo "appended envelope to $history"
fi

scaling_args=( --n="${WFSORT_SCALING_N:-1048576}" --reps="${WFSORT_SCALING_REPS:-2}" )
if [[ -n "${WFSORT_SCALING_THREADS:-}" ]]; then
  scaling_args+=( --threads-list="$WFSORT_SCALING_THREADS" )
fi
"$wfsort" scaling "${scaling_args[@]}" \
  --stats-json="$repo_root/BENCH_native_scaling.json"
"$wfsort" validate "$repo_root/BENCH_native_scaling.json" --require-release
