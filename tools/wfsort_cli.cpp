// wfsort — command-line driver for the library.
//
//   wfsort sort --n=1000000 --threads=8 --variant=lc --dist=uniform
//   wfsort sort file.txt                 # sort whitespace-separated integers
//   wfsort sim  --n=256 --procs=256 --variant=det --schedule=serial --trace=20
//   wfsort bench --n=1048576 --threads=8 --reps=3 --stats-json=stats.json
//   wfsort bench --pool --back-to-back --n=262144 --stats-json=stats.json
//   wfsort scaling --n=1048576 --reps=3 --stats-json=scaling.json
//   wfsort validate BENCH_native_perf.json --require-release
//   wfsort hunt --n=256 --procs=16 --prune=placed --out=repro.json
//   wfsort replay repro.json
//   wfsort sort --n=1000000 --monitor-out=monitor.jsonl
//   wfsort report monitor.jsonl          # or: wfsort report repro.json
//
// `sort` runs the native wait-free sorter (reads integers from positional
// files, or generates --n keys); `sim` runs the chosen variant on the CRCW
// PRAM simulator and prints rounds, contention and (optionally) the tail of
// the execution trace.  `bench` runs the native configurations (det tree,
// det partition, lc) at full telemetry plus in-process std::sort /
// parallel-mergesort baselines and emits the unified stats envelope with a
// derived gap-vs-std::sort table.  `scaling` sweeps both variants over
// a thread count list (default: 1, 2, 4, ... up to the hardware concurrency)
// and emits a "wfsort-scaling-v1" document of speedup curves and per-point
// max contention.  `validate` structurally checks an emitted stats/bench/
// scaling JSON file; with --require-release it additionally rejects
// envelopes not produced by a release build (bench provenance — committed
// BENCH files must pass this).  `hunt` unleashes the searching adversary —
// fault scripts swept across scheduler families — and writes a replay
// artifact if any scenario fails; `replay` re-executes such an artifact and
// reports whether the failure reproduces (see docs/fault_model.md and
// docs/observability.md).
//
// Observability flags (see docs/observability.md):
//   --telemetry=off|phases|full   native per-worker recording level
//   --stats-json=PATH             write the "wfsort-stats-v1" document
//                                 (sort/sim/bench; hunt writes search stats)
//   --trace-out=PATH              write a Perfetto/chrome://tracing trace
//   --monitor-out=PATH            live monitor: append "wfsort-monitor-v1"
//                                 JSONL samples while the run is in flight
//                                 (sort/sim/bench); render with `wfsort report`
//   --monitor-interval-ms=N       sampling period of the live monitor
//   --ring-capacity=N             flight-recorder events retained per worker
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <iterator>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "baselines/parallel_mergesort.h"
#include "common/cli.h"
#include "common/json.h"
#include "core/pool.h"
#include "core/sort.h"
#include "exp/workloads.h"
#include "pram/machine.h"
#include "pram/scheduler.h"
#include "pram/trace.h"
#include "pramsort/driver.h"
#include "pramsort/validate.h"
#include "runtime/scenario.h"
#include "runtime/search.h"
#include "telemetry/monitor.h"
#include "telemetry/ring.h"
#include "telemetry/schema.h"
#include "telemetry/trace_export.h"

namespace {

namespace tel = wfsort::telemetry;
using wfsort::Json;

// Write a JSON document to `path`; complains on stderr, returns exit-worthy
// success.
bool write_json(const wfsort::Json& doc, const std::string& path) {
  std::string error;
  if (!tel::write_text_file(path, doc.dump(2) + "\n", &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return false;
  }
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return true;
}

// The telemetry level the flags ask for; --stats-json/--trace-out imply
// full recording when --telemetry was left at its default.
tel::Level requested_level(const wfsort::CliFlags& flags) {
  tel::Level level = tel::Level::kOff;
  if (!tel::parse_level(flags.str("telemetry"), &level)) {
    std::fprintf(stderr, "unknown --telemetry '%s' (off|phases|full)\n",
                 flags.str("telemetry").c_str());
    std::exit(2);
  }
  if (level == tel::Level::kOff &&
      (!flags.str("stats-json").empty() || !flags.str("trace-out").empty() ||
       !flags.str("monitor-out").empty())) {
    level = tel::Level::kFull;
  }
  return level;
}

// Fill Options' monitor knobs from the flags.  The sink is truncated once up
// front (the Monitor itself appends, so a bench's reps stack sessions into
// the file this call just cleared).
void apply_monitor_flags(const wfsort::CliFlags& flags, wfsort::Options* opts) {
  opts->ring_capacity = static_cast<std::uint32_t>(flags.u64("ring-capacity"));
  const std::string path = flags.str("monitor-out");
  if (path.empty()) return;
  opts->monitor_path = path;
  opts->monitor_interval_ms =
      std::max<std::uint32_t>(1, static_cast<std::uint32_t>(
                                     flags.u64("monitor-interval-ms")));
}

// Truncate the monitor sink so this invocation's sessions start fresh.
bool truncate_monitor_file(const std::string& path) {
  if (path.empty()) return true;
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  return true;
}

// Validate + report a freshly written monitor file; the emitting run is the
// first consumer of its own stream.
int check_monitor_file(const std::string& path) {
  if (path.empty()) return 0;
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "monitor file %s disappeared\n", path.c_str());
    return 2;
  }
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  std::string error;
  if (!tel::validate_monitor_jsonl(text, &error)) {
    std::fprintf(stderr, "internal error: emitted monitor stream invalid: %s\n",
                 error.c_str());
    return 2;
  }
  std::fprintf(stderr, "wrote %s (render with: wfsort report %s)\n",
               path.c_str(), path.c_str());
  return 0;
}

// Best-effort "max contention" line from a stats document, for replay diffs.
bool contention_summary(const wfsort::Json& stats, std::uint64_t* value,
                        std::string* site) {
  if (stats.is_null()) return false;
  const wfsort::Json* c = stats.find("contention");
  if (c == nullptr) return false;
  const wfsort::Json* v = c->find("max_value");
  if (v == nullptr) return false;
  *value = v->as_u64();
  site->clear();
  if (const wfsort::Json* s = c->find("max_site"); s != nullptr) {
    *site = s->as_string();
  }
  return true;
}

wfsort::Phase1 parse_phase1(const std::string& s) {
  if (s == "tree") return wfsort::Phase1::kTree;
  if (s == "partition") return wfsort::Phase1::kPartition;
  std::fprintf(stderr, "unknown --phase1 '%s' (tree|partition)\n", s.c_str());
  std::exit(2);
}

// Best-of-`reps` wall milliseconds of `body(data)` on fresh copies of
// `input` — the in-process baseline timings the bench envelope derives its
// gap rows from (same process, same input, same moment as the wfsort runs).
template <typename Body>
double time_best_ms(const std::vector<std::uint64_t>& input, std::uint64_t reps,
                    Body&& body) {
  double best = 0.0;
  for (std::uint64_t rep = 0; rep < reps; ++rep) {
    std::vector<std::uint64_t> data = input;
    const auto t0 = std::chrono::steady_clock::now();
    body(data);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (rep == 0 || ms < best) best = ms;
  }
  return best;
}

wfsort::exp::Dist parse_dist(const std::string& s) {
  wfsort::exp::Dist d{};
  if (!wfsort::exp::parse_dist(s, &d)) {
    std::fprintf(stderr,
                 "unknown --dist '%s' (uniform|shuffled|sorted|reversed|few|pipe)\n",
                 s.c_str());
    std::exit(2);
  }
  return d;
}

int run_sort(const wfsort::CliFlags& flags) {
  std::vector<std::uint64_t> data;
  if (!flags.positional().empty()) {
    for (std::size_t i = 1; i < flags.positional().size(); ++i) {
      std::ifstream in(flags.positional()[i]);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", flags.positional()[i].c_str());
        return 2;
      }
      std::uint64_t x;
      while (in >> x) data.push_back(x);
    }
  }
  if (data.empty()) {
    data = wfsort::exp::make_u64_keys(flags.u64("n"), parse_dist(flags.str("dist")),
                                      flags.u64("seed"));
  }

  wfsort::Options opts;
  opts.threads = static_cast<std::uint32_t>(flags.u64("threads"));
  opts.variant = flags.str("variant") == "lc" ? wfsort::Variant::kLowContention
                                              : wfsort::Variant::kDeterministic;
  opts.phase1 = parse_phase1(flags.str("phase1"));
  opts.seed = flags.u64("seed");
  opts.telemetry = requested_level(flags);
  apply_monitor_flags(flags, &opts);
  if (!truncate_monitor_file(opts.monitor_path)) return 2;
  wfsort::SortStats stats;
  if (flags.flag("pool")) {
    wfsort::default_pool().sort(std::span<std::uint64_t>(data), opts, &stats);
  } else {
    wfsort::sort(std::span<std::uint64_t>(data), opts, &stats);
  }
  if (const int rc = check_monitor_file(opts.monitor_path); rc != 0) return rc;

  bool ok = true;
  for (std::size_t i = 1; i < data.size(); ++i) ok &= data[i - 1] <= data[i];
  std::fprintf(stderr,
               "sorted %zu keys: %s  (%.2f ms, depth=%u, max build iters=%llu, "
               "workers=%u)\n",
               data.size(), ok ? "ok" : "BROKEN",
               stats.phase1_ms + stats.phase2_ms + stats.phase3_ms,
               stats.tree_depth,
               static_cast<unsigned long long>(stats.max_build_iters), stats.workers);

  const std::string stats_path = flags.str("stats-json");
  if (!stats_path.empty()) {
    const wfsort::Json doc =
        tel::native_stats_json(tel::native_run_info(opts, data.size()), stats);
    if (!write_json(doc, stats_path)) return 2;
  }
  const std::string trace_path = flags.str("trace-out");
  if (!trace_path.empty()) {
    if (stats.telemetry == nullptr) {
      std::fprintf(stderr,
                   "--trace-out needs telemetry (single-threaded runs record none)\n");
    } else {
      std::string error;
      const wfsort::Json doc = tel::chrome_trace_json(*stats.telemetry, "wfsort sort");
      if (!tel::write_text_file(trace_path, doc.dump() + "\n", &error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 2;
      }
      std::fprintf(stderr, "wrote %s (load in Perfetto / chrome://tracing)\n",
                   trace_path.c_str());
    }
  }

  if (flags.flag("print")) {
    for (std::uint64_t x : data) std::printf("%llu\n", static_cast<unsigned long long>(x));
  }
  return ok ? 0 : 1;
}

// Bench: all three native configurations (deterministic tree, deterministic
// partition, low-contention) at full telemetry, --reps runs each, plus
// in-process std::sort and parallel-mergesort baselines on the same input —
// one "wfsort-bench-v1" envelope of per-run stats documents, a "baselines"
// object, a derived gap-vs-std::sort table, and (optionally) one combined
// Perfetto trace with a process per variant.
int run_bench(const wfsort::CliFlags& flags) {
  const std::uint64_t n = flags.u64("n");
  const std::uint64_t reps = std::max<std::uint64_t>(flags.u64("reps"), 1);
  const bool pooled = flags.flag("pool");
  const auto threads = static_cast<std::uint32_t>(flags.u64("threads"));
  const std::vector<std::uint64_t> input = wfsort::exp::make_u64_keys(
      n, parse_dist(flags.str("dist")), flags.u64("seed"));

  wfsort::Json bench = tel::make_bench_doc();
  wfsort::Json runs = bench.at("runs");
  wfsort::Json trace = tel::chrome_trace_doc();
  if (!truncate_monitor_file(flags.str("monitor-out"))) return 2;

  struct BenchVariant {
    const char* name;
    wfsort::Variant variant;
    wfsort::Phase1 phase1;
  };
  const BenchVariant variants[] = {
      {"det", wfsort::Variant::kDeterministic, wfsort::Phase1::kTree},
      {"det-partition", wfsort::Variant::kDeterministic,
       wfsort::Phase1::kPartition},
      {"lc", wfsort::Variant::kLowContention, wfsort::Phase1::kTree},
  };
  int pid = 0;
  bool ok = true;
  Json best_ms = Json::object();  // per-variant best wall_ms, for the gap rows
  for (const auto& [name, variant, phase1] : variants) {
    ++pid;
    double best = 0.0;
    for (std::uint64_t rep = 0; rep < reps; ++rep) {
      std::vector<std::uint64_t> data = input;
      wfsort::Options opts;
      opts.threads = threads;
      opts.variant = variant;
      opts.phase1 = phase1;
      opts.seed = flags.u64("seed") + rep;
      opts.telemetry = tel::Level::kFull;
      apply_monitor_flags(flags, &opts);  // one monitor session per rep
      wfsort::SortStats stats;
      if (pooled) {
        wfsort::default_pool().sort(std::span<std::uint64_t>(data), opts,
                                    &stats);
      } else {
        wfsort::sort(std::span<std::uint64_t>(data), opts, &stats);
      }
      for (std::size_t i = 1; i < data.size(); ++i) ok &= data[i - 1] <= data[i];

      const wfsort::Json doc =
          tel::native_stats_json(tel::native_run_info(opts, data.size()), stats);
      const double wall = doc.at("totals").at("wall_ms").as_double();
      if (rep == 0 || wall < best) best = wall;
      std::fprintf(stderr, "bench %s rep %llu: wall %.3f ms  max contention %s=%llu\n",
                   name, static_cast<unsigned long long>(rep + 1), wall,
                   doc.at("contention").at("max_site").as_string().c_str(),
                   static_cast<unsigned long long>(
                       doc.at("contention").at("max_value").as_u64()));
      runs.push_back(doc);
      if (rep + 1 == reps && stats.telemetry != nullptr) {
        tel::append_chrome_trace(&trace, *stats.telemetry, pid,
                                 std::string("wfsort ") + name);
      }
    }
    best_ms.set(name, best);
  }
  bench.set("runs", std::move(runs));
  if (!ok) {
    std::fprintf(stderr, "bench: output NOT SORTED\n");
    return 1;
  }

  // In-process baselines on the identical input, then the derived gap table:
  // gap_vs_stdsort.<variant> = best wfsort wall_ms / best std::sort wall_ms.
  const double std_sort_ms = time_best_ms(
      input, reps, [](std::vector<std::uint64_t>& v) {
        std::sort(v.begin(), v.end());
      });
  const double merge_ms = time_best_ms(
      input, reps, [threads](std::vector<std::uint64_t>& v) {
        wfsort::baselines::parallel_mergesort(std::span<std::uint64_t>(v),
                                              threads);
      });
  std::fprintf(stderr, "bench std::sort: wall %.3f ms\n", std_sort_ms);
  std::fprintf(stderr, "bench parallel_mergesort(t=%u): wall %.3f ms\n",
               threads, merge_ms);
  Json baselines = Json::object();
  baselines.set("std_sort_ms", std_sort_ms);
  baselines.set("parallel_mergesort_ms", merge_ms);
  baselines.set("parallel_mergesort_threads",
                static_cast<std::uint64_t>(threads));
  bench.set("baselines", std::move(baselines));
  Json gaps = Json::object();
  for (const auto& [name, value] : best_ms.object_items()) {
    const double wall = value.as_double();
    const double gap = std_sort_ms > 0.0 ? wall / std_sort_ms : 0.0;
    std::fprintf(stderr, "bench gap_vs_stdsort %s: %.2fx\n", name.c_str(), gap);
    gaps.set(name, gap);
  }
  Json derived = Json::object();
  derived.set("gap_vs_stdsort", std::move(gaps));
  bench.set("derived", std::move(derived));

  // --pool: stamp the SortPool's lifetime counters into the envelope; under
  // --back-to-back additionally run the small-N cold-vs-pooled sweep — the
  // rows docs/native_engine.md's latency table is built from.  Sweep runs
  // are telemetry-off (full telemetry would dominate small-N wall time).
  if (pooled) {
    Json pool = Json::object();
    if (flags.flag("back-to-back")) {
      Json sweep = Json::array();
      const std::uint64_t btb_reps = std::max<std::uint64_t>(reps, 10);
      for (const std::uint64_t bn :
           {std::uint64_t{1} << 10, std::uint64_t{1} << 12,
            std::uint64_t{1} << 14, std::uint64_t{1} << 16,
            std::uint64_t{1} << 20}) {
        const std::vector<std::uint64_t> small = wfsort::exp::make_u64_keys(
            bn, parse_dist(flags.str("dist")), flags.u64("seed"));
        wfsort::Options sopts;
        sopts.threads = threads;
        sopts.seed = flags.u64("seed");
        const double cold_ms = time_best_ms(
            small, btb_reps, [&sopts](std::vector<std::uint64_t>& v) {
              wfsort::sort(std::span<std::uint64_t>(v), sopts);
            });
        const double pooled_ms = time_best_ms(
            small, btb_reps, [&sopts](std::vector<std::uint64_t>& v) {
              wfsort::default_pool().sort(std::span<std::uint64_t>(v), sopts);
            });
        const double speedup = pooled_ms > 0.0 ? cold_ms / pooled_ms : 0.0;
        std::fprintf(stderr,
                     "bench back-to-back n=%llu: cold %.3f ms  pooled %.3f ms "
                     "(%.2fx)\n",
                     static_cast<unsigned long long>(bn), cold_ms, pooled_ms,
                     speedup);
        Json row = Json::object();
        row.set("n", bn);
        row.set("threads", static_cast<std::uint64_t>(threads));
        row.set("reps", btb_reps);
        row.set("cold_ms", cold_ms);
        row.set("pooled_ms", pooled_ms);
        row.set("speedup", speedup);
        sweep.push_back(std::move(row));
      }
      pool.set("small_n", std::move(sweep));
    }
    const wfsort::PoolStats ps = wfsort::default_pool().stats();
    pool.set("threads", static_cast<std::uint64_t>(ps.threads));
    pool.set("runs", ps.runs);
    pool.set("caller_only_runs", ps.caller_only_runs);
    pool.set("detached_jobs", ps.detached_jobs);
    pool.set("bypass_runs", ps.bypass_runs);
    pool.set("arena_reuse_bytes", ps.arena_reuse_bytes);
    pool.set("arena_grow_events", ps.arena_grow_events);
    pool.set("arena_held_bytes", ps.arena_held_bytes);
    pool.set("wake_ns", ps.wake_ns);
    bench.set("pool", std::move(pool));
  }

  std::string verr;
  if (!tel::validate_bench_json(bench, &verr)) {
    std::fprintf(stderr, "internal error: emitted envelope invalid: %s\n",
                 verr.c_str());
    return 2;
  }
  if (const int rc = check_monitor_file(flags.str("monitor-out")); rc != 0) {
    return rc;
  }

  const std::string stats_path = flags.str("stats-json");
  if (!stats_path.empty() && !write_json(bench, stats_path)) return 2;
  const std::string trace_path = flags.str("trace-out");
  if (!trace_path.empty()) {
    std::string error;
    if (!tel::write_text_file(trace_path, trace.dump() + "\n", &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 2;
    }
    std::fprintf(stderr, "wrote %s (load in Perfetto / chrome://tracing)\n",
                 trace_path.c_str());
  }
  return 0;
}

// Scaling: sweep thread counts for both native variants, reporting each
// point's best-of---reps wall time, speedup versus the variant's own t=1
// point, and max-contention attribution.  The sweep is --threads-list
// ("1,2,4"), defaulting to powers of two up to the hardware concurrency
// (which is always appended if it is not itself a power of two).
int run_scaling(const wfsort::CliFlags& flags) {
  const std::uint64_t n = flags.u64("n");
  const std::uint64_t reps = std::max<std::uint64_t>(flags.u64("reps"), 1);
  const std::vector<std::uint64_t> input = wfsort::exp::make_u64_keys(
      n, parse_dist(flags.str("dist")), flags.u64("seed"));

  std::vector<std::uint32_t> threads;
  const std::string list = flags.str("threads-list");
  if (!list.empty()) {
    std::uint32_t cur = 0;
    bool any = false;
    for (const char ch : list + ",") {
      if (ch >= '0' && ch <= '9') {
        cur = cur * 10 + static_cast<std::uint32_t>(ch - '0');
        any = true;
      } else if (ch == ',') {
        if (any && cur > 0) threads.push_back(cur);
        cur = 0;
        any = false;
      } else {
        std::fprintf(stderr, "bad --threads-list '%s' (want e.g. 1,2,4)\n",
                     list.c_str());
        return 2;
      }
    }
  } else {
    const std::uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
    for (std::uint32_t t = 1; t <= hw; t *= 2) threads.push_back(t);
    if (threads.back() != hw) threads.push_back(hw);
  }
  if (threads.empty()) {
    std::fprintf(stderr, "empty thread sweep\n");
    return 2;
  }

  wfsort::Json doc = tel::make_scaling_doc();
  Json config = Json::object();
  config.set("n", n);
  config.set("seed", flags.u64("seed"));
  config.set("reps", reps);
  config.set("dist", flags.str("dist"));
  config.set("hw_concurrency",
             static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  doc.set("config", std::move(config));
  Json tlist = Json::array();
  for (std::uint32_t t : threads) tlist.push_back(static_cast<std::uint64_t>(t));
  doc.set("threads", std::move(tlist));

  const std::pair<const char*, wfsort::Variant> variants[] = {
      {"det", wfsort::Variant::kDeterministic},
      {"lc", wfsort::Variant::kLowContention},
  };
  Json vdocs = Json::object();
  bool ok = true;
  for (const auto& [name, variant] : variants) {
    Json points = Json::array();
    double base_ms = 0.0;
    for (std::uint32_t t : threads) {
      double best_ms = 0.0;
      Json best_contention;
      for (std::uint64_t rep = 0; rep < reps; ++rep) {
        std::vector<std::uint64_t> data = input;
        wfsort::Options opts;
        opts.threads = t;
        opts.variant = variant;
        opts.seed = flags.u64("seed") + rep;
        opts.telemetry = tel::Level::kFull;
        wfsort::SortStats stats;
        wfsort::sort(std::span<std::uint64_t>(data), opts, &stats);
        for (std::size_t i = 1; i < data.size(); ++i) ok &= data[i - 1] <= data[i];

        const wfsort::Json run =
            tel::native_stats_json(tel::native_run_info(opts, data.size()), stats);
        const double ms = run.at("totals").at("wall_ms").as_double();
        if (rep == 0 || ms < best_ms) {
          best_ms = ms;
          best_contention = run.at("contention");
        }
      }
      if (t == threads.front()) base_ms = best_ms;
      const double speedup = best_ms > 0.0 ? base_ms / best_ms : 0.0;
      std::fprintf(stderr,
                   "scaling %s t=%u: wall %.3f ms  speedup %.2fx  "
                   "max contention %s=%llu\n",
                   name, t, best_ms, speedup,
                   best_contention.at("max_site").as_string().c_str(),
                   static_cast<unsigned long long>(
                       best_contention.at("max_value").as_u64()));
      Json pt = Json::object();
      pt.set("threads", static_cast<std::uint64_t>(t));
      pt.set("wall_ms", best_ms);
      pt.set("speedup", speedup);
      pt.set("contention", std::move(best_contention));
      points.push_back(std::move(pt));
    }
    Json v = Json::object();
    v.set("points", std::move(points));
    vdocs.set(name, std::move(v));
  }
  doc.set("variants", std::move(vdocs));
  if (!ok) {
    std::fprintf(stderr, "scaling: output NOT SORTED\n");
    return 1;
  }

  std::string error;
  if (!tel::validate_scaling_json(doc, &error)) {
    std::fprintf(stderr, "internal error: emitted document invalid: %s\n",
                 error.c_str());
    return 2;
  }
  const std::string stats_path = flags.str("stats-json");
  if (!stats_path.empty() && !write_json(doc, stats_path)) return 2;
  return 0;
}

// Validate: structural check of an emitted JSON file, dispatched on its
// "schema" key.  --require-release turns on the bench-provenance check.
int run_validate(const wfsort::CliFlags& flags) {
  if (flags.positional().size() < 2) {
    std::fprintf(stderr, "usage: wfsort validate <file.json> [--require-release]\n");
    return 2;
  }
  const std::string& path = flags.positional()[1];
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 2;
  }
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const bool require_release = flags.flag("require-release");

  // JSONL dispatch: a monitor stream (or a bench-history file) is a line
  // sequence, not one document.  Peek at the first line's schema.
  {
    const std::size_t eol = text.find('\n');
    const std::string first = text.substr(0, eol);
    std::string lerr;
    const wfsort::Json head = wfsort::Json::parse(first, &lerr);
    if (lerr.empty() && head.type() == wfsort::Json::Type::kObject &&
        eol != std::string::npos) {
      const wfsort::Json* ls = head.find("schema");
      if (ls != nullptr && ls->type() == wfsort::Json::Type::kString) {
        if (ls->as_string() == tel::kMonitorSchema) {
          std::string merr;
          if (!tel::validate_monitor_jsonl(text, &merr, require_release)) {
            std::fprintf(stderr, "%s: INVALID: %s\n", path.c_str(), merr.c_str());
            return 1;
          }
          std::fprintf(stderr, "%s: ok (%s)\n", path.c_str(), tel::kMonitorSchema);
          return 0;
        }
        if (ls->as_string() == tel::kBenchSchema) {
          // Bench history: one envelope per line, each validated in full.
          std::size_t lineno = 0, pos = 0;
          while (pos < text.size()) {
            const std::size_t end = text.find('\n', pos);
            const std::string line =
                text.substr(pos, end == std::string::npos ? end : end - pos);
            pos = end == std::string::npos ? text.size() : end + 1;
            ++lineno;
            if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
            std::string herr;
            const wfsort::Json env = wfsort::Json::parse(line, &herr);
            if (!herr.empty() ||
                !tel::validate_bench_json(env, &herr, require_release)) {
              std::fprintf(stderr, "%s: INVALID at line %zu: %s\n", path.c_str(),
                           lineno, herr.c_str());
              return 1;
            }
          }
          std::fprintf(stderr, "%s: ok (%s history, %s)\n", path.c_str(),
                       tel::kBenchSchema,
                       require_release ? "release-gated" : "ungated");
          return 0;
        }
      }
    }
  }

  std::string error;
  const wfsort::Json doc = wfsort::Json::parse(text, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "%s: parse error: %s\n", path.c_str(), error.c_str());
    return 1;
  }
  const wfsort::Json* schema = doc.find("schema");
  std::string name =
      schema != nullptr && schema->type() == wfsort::Json::Type::kString
          ? schema->as_string()
          : "";
  bool valid = false;
  const wfsort::Json* bt = doc.find("build_type");
  if (name == tel::kBenchSchema) {
    valid = tel::validate_bench_json(doc, &error, require_release);
  } else if (name == tel::kScalingSchema) {
    valid = tel::validate_scaling_json(doc, &error, require_release);
  } else if (name == tel::kStatsSchema) {
    valid = tel::validate_stats_json(doc, &error, require_release);
  } else if (doc.find("context") != nullptr && doc.find("benchmarks") != nullptr) {
    // A google-benchmark report.  Its context carries a fixed
    // "library_build_type" describing the distro LIBRARY, which is not this
    // repo's provenance; our bench mains stamp "wfsort_build_type" instead
    // and that is what the release gate reads.
    name = "google-benchmark";
    const wfsort::Json& ctx = doc.at("context");
    bt = ctx.find("wfsort_build_type");
    if (bt == nullptr || bt->type() != wfsort::Json::Type::kString) {
      error = "missing context.wfsort_build_type (is this a wfsort bench "
              "binary's report?)";
    } else if (require_release && bt->as_string() != "release") {
      error = "context.wfsort_build_type is \"" + bt->as_string() +
              "\" but a release build is required";
    } else {
      valid = true;
    }
  } else {
    error = "unknown schema: \"" + name + "\"";
  }
  if (!valid) {
    std::fprintf(stderr, "%s: INVALID: %s\n", path.c_str(), error.c_str());
    return 1;
  }
  std::fprintf(stderr, "%s: ok (%s%s%s)\n", path.c_str(), name.c_str(),
               bt != nullptr ? ", build_type=" : "",
               bt != nullptr ? bt->as_string().c_str() : "");
  return 0;
}

// Sim-substrate monitor adapter: one flight-recorder ring fed from the
// machine's trace stream (ops via to_flight, round markers via on_round),
// sampled live by a telemetry::Monitor.  The machine flushes trace events on
// the coordinating thread even under the sharded engine, so the ring keeps
// its single writer; the monitor reads seqlock snapshots from its own
// thread.  Chains to an optional downstream tracer so --trace still works.
class SimMonitorTracer final : public pram::Tracer {
 public:
  SimMonitorTracer(std::uint32_t capacity, pram::Tracer* next) : next_(next) {
    ring_.reset(capacity);
  }

  void on_event(const pram::TraceEvent& e) override {
    ring_.push(pram::to_flight(e));
    if (next_ != nullptr) next_->on_event(e);
  }

  void on_round(std::uint64_t round, std::uint64_t ops) override {
    wfsort::telemetry::FlightEvent ev{};
    ev.t = round;
    ev.value = ops;
    ev.kind = static_cast<std::uint8_t>(tel::FlightKind::kSimRound);
    ring_.push(ev);
    if (next_ != nullptr) next_->on_round(round, ops);
  }

  void on_fault(std::uint64_t round, pram::ProcId pid,
                pram::TraceFault fault) override {
    wfsort::telemetry::FlightEvent ev{};
    ev.t = round;
    ev.tid = static_cast<std::uint16_t>(pid);
    ev.kind = static_cast<std::uint8_t>(tel::FlightKind::kFault);
    ev.a8 = static_cast<std::uint8_t>(fault);
    ring_.push(ev);
    if (next_ != nullptr) next_->on_fault(round, pid, fault);
  }

  const tel::FlightRing* ring() const { return &ring_; }

 private:
  tel::FlightRing ring_;
  pram::Tracer* next_;
};

int run_sim(const wfsort::CliFlags& flags) {
  const std::size_t n = flags.u64("n");
  const auto procs = static_cast<std::uint32_t>(flags.u64("procs"));
  auto keys = wfsort::exp::make_word_keys(n, parse_dist(flags.str("dist")),
                                          flags.u64("seed"));

  pram::MachineOptions mopts;
  if (flags.str("memory") == "stall") mopts.memory_model = pram::MemoryModel::kStall;
  mopts.sim_threads = static_cast<std::uint32_t>(flags.u64("sim-threads"));
  pram::Machine m(mopts);

  pram::RingTracer tracer(flags.u64("trace"));
  if (flags.u64("trace") > 0) m.set_tracer(&tracer);

  // Live monitor: interpose the flight-recorder adapter in front of any
  // --trace ring and sample it from a Monitor thread while the sim runs.
  std::unique_ptr<SimMonitorTracer> mon_tracer;
  std::unique_ptr<tel::Monitor> monitor;
  const std::string monitor_path = flags.str("monitor-out");
  if (!monitor_path.empty()) {
    if (!truncate_monitor_file(monitor_path)) return 2;
    mon_tracer = std::make_unique<SimMonitorTracer>(
        static_cast<std::uint32_t>(flags.u64("ring-capacity")),
        flags.u64("trace") > 0 ? &tracer : nullptr);
    m.set_tracer(mon_tracer.get());
    tel::Monitor::Config mcfg;
    mcfg.path = monitor_path;
    mcfg.interval_ms = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(flags.u64("monitor-interval-ms")));
    mcfg.source = "sim";
    mcfg.config.set("program", flags.str("variant") + "_sort");
    mcfg.config.set("n", static_cast<std::uint64_t>(n));
    mcfg.config.set("procs", static_cast<std::uint64_t>(procs));
    mcfg.config.set("sched", flags.str("schedule"));
    mcfg.config.set("seed", flags.u64("seed"));
    monitor = std::make_unique<tel::Monitor>(
        std::vector<const tel::FlightRing*>{mon_tracer->ring()}, std::move(mcfg));
    if (!monitor->ok()) {
      std::fprintf(stderr, "cannot open %s\n", monitor_path.c_str());
      return 2;
    }
    monitor->start();
  }

  std::unique_ptr<pram::Scheduler> sched;
  const std::string s = flags.str("schedule");
  if (s == "sync") {
    sched = std::make_unique<pram::SynchronousScheduler>();
  } else if (s == "serial") {
    sched = std::make_unique<pram::RoundRobinScheduler>(1);
  } else if (s == "subset") {
    sched = std::make_unique<pram::RandomSubsetScheduler>(0.5, flags.u64("seed"));
  } else if (s == "freeze") {
    sched = std::make_unique<pram::HalfFreezeScheduler>(8);
  } else {
    std::fprintf(stderr, "unknown --schedule '%s' (sync|serial|subset|freeze)\n",
                 s.c_str());
    return 2;
  }

  bool sorted = false;
  std::uint64_t rounds = 0;
  const auto t_run0 = std::chrono::steady_clock::now();
  if (flags.str("variant") == "lc") {
    auto res = wfsort::sim::run_lc_sort(m, keys, procs, *sched);
    sorted = res.sorted;
    rounds = res.run.rounds;
  } else if (flags.str("variant") == "classic") {
    auto res = wfsort::sim::run_classic_sort(m, keys, procs, *sched);
    sorted = res.sorted;
    rounds = res.run.rounds;
    if (res.run.hit_round_cap) std::printf("classic sort hit the round cap (deadlock?)\n");
  } else {
    auto res = wfsort::sim::run_det_sort(m, keys, procs, *sched);
    sorted = res.sorted;
    rounds = res.run.rounds;
    auto report = wfsort::sim::validate_sort_run(m, res.layout, 0);
    if (!report.ok) {
      std::fprintf(stderr, "VALIDATION FAILED: %s\n", report.error.c_str());
      return 1;
    }
  }
  if (monitor != nullptr) {
    monitor->note_job(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t_run0)
            .count()));
    monitor->stop();
    if (const int rc = check_monitor_file(monitor_path); rc != 0) return rc;
  }

  std::printf("n=%zu procs=%u schedule=%s variant=%s\n", n, procs, s.c_str(),
              flags.str("variant").c_str());
  std::printf("rounds=%llu total_ops=%llu qrqw_time=%llu stalls=%llu\n",
              static_cast<unsigned long long>(rounds),
              static_cast<unsigned long long>(m.metrics().total_ops()),
              static_cast<unsigned long long>(m.metrics().qrqw_time()),
              static_cast<unsigned long long>(m.metrics().stalls()));
  std::printf("max contention=%zu  max steps/proc=%llu  sorted=%s\n",
              m.metrics().max_cell_contention(),
              static_cast<unsigned long long>(m.metrics().max_proc_ops()),
              sorted ? "yes" : "NO");
  for (const auto& [name, c] : m.metrics().region_contention()) {
    std::printf("  region %-28s max contention %zu\n", name.c_str(), c);
  }
  if (flags.u64("trace") > 0) {
    std::printf("last %zu trace events:\n", tracer.events().size());
    for (const auto& e : tracer.events()) {
      std::printf("  %s\n", pram::format_event(e, &m.mem()).c_str());
    }
  }

  const std::string stats_path = flags.str("stats-json");
  if (!stats_path.empty()) {
    tel::SimRunInfo info;
    info.program = flags.str("variant") + "_sort";
    info.n = n;
    info.procs = procs;
    info.sched = s;
    info.seed = flags.u64("seed");
    info.sim_threads = static_cast<std::uint32_t>(flags.u64("sim-threads"));
    if (!write_json(tel::sim_stats_json(info, m.metrics(), &m.commit_stats()), stats_path)) {
      return 2;
    }
  }
  return sorted ? 0 : 1;
}

// Base scenario shared by hunt and (implicitly) the artifacts it writes.
wfsort::runtime::ScenarioSpec spec_from_flags(const wfsort::CliFlags& flags) {
  wfsort::runtime::ScenarioSpec spec;
  spec.substrate = flags.str("substrate") == "native"
                       ? wfsort::runtime::Substrate::kNative
                       : wfsort::runtime::Substrate::kSim;
  spec.n = flags.u64("n");
  spec.dist = parse_dist(flags.str("dist"));
  spec.workload_seed = flags.u64("seed");
  spec.procs = static_cast<std::uint32_t>(
      flags.u64(spec.substrate == wfsort::runtime::Substrate::kSim ? "procs" : "threads"));
  spec.variant = flags.str("variant") == "lc" ? wfsort::runtime::SortKind::kLc
                                              : wfsort::runtime::SortKind::kDet;
  spec.phase1 = parse_phase1(flags.str("phase1")) == wfsort::Phase1::kPartition
                    ? wfsort::runtime::Phase1Kind::kPartition
                    : wfsort::runtime::Phase1Kind::kTree;
  const std::string prune = flags.str("prune");
  if (prune == "none") spec.prune = wfsort::sim::PlacePrune::kNone;
  else if (prune == "placed") spec.prune = wfsort::sim::PlacePrune::kPlaced;
  else if (prune == "completed") spec.prune = wfsort::sim::PlacePrune::kCompleted;
  else {
    std::fprintf(stderr, "unknown --prune '%s' (none|placed|completed)\n", prune.c_str());
    std::exit(2);
  }
  if (flags.str("memory") == "stall") spec.memory = pram::MemoryModel::kStall;
  spec.sim_threads = static_cast<std::uint32_t>(flags.u64("sim-threads"));
  return spec;
}

int run_hunt(const wfsort::CliFlags& flags) {
  const wfsort::runtime::ScenarioSpec spec = spec_from_flags(flags);
  wfsort::runtime::SearchOptions sopts;
  sopts.max_runs = flags.u64("budget");
  sopts.seed = flags.u64("seed") * 0x9e3779b97f4a7c15ULL + 1;

  wfsort::runtime::ReplayArtifact artifact;
  wfsort::runtime::SearchStats stats;
  const bool found = wfsort::runtime::search_for_violation(spec, sopts, &artifact, &stats);
  std::fprintf(stderr, "hunt: %llu runs, %llu probes, %llu scripts\n",
               static_cast<unsigned long long>(stats.runs),
               static_cast<unsigned long long>(stats.probes),
               static_cast<unsigned long long>(stats.scripts));
  for (const auto& fam : stats.families) {
    std::fprintf(stderr, "  family %-8s runs=%llu scripts=%llu failures=%llu\n",
                 fam.family.c_str(), static_cast<unsigned long long>(fam.runs),
                 static_cast<unsigned long long>(fam.scripts),
                 static_cast<unsigned long long>(fam.failures));
  }
  const std::string stats_path = flags.str("stats-json");
  if (!stats_path.empty() &&
      !write_json(wfsort::runtime::search_stats_json(stats), stats_path)) {
    return 2;
  }
  if (!found) {
    std::fprintf(stderr, "no violation found within the budget\n");
    return 0;
  }
  std::fprintf(stderr, "VIOLATION (%s): %s\n",
               wfsort::runtime::failure_kind_name(artifact.failure),
               artifact.detail.c_str());
  if (flags.flag("shrink")) {
    artifact = wfsort::runtime::shrink_artifact(artifact);
    std::fprintf(stderr, "shrunk to %zu event(s)\n", artifact.spec.script.events.size());
  }
  const std::string out = flags.str("out");
  if (!wfsort::runtime::write_artifact(artifact, out)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 2;
  }
  std::fprintf(stderr, "repro written to %s — re-run with: wfsort replay %s\n",
               out.c_str(), out.c_str());
  return 1;
}

// Render a "rings" section (array of {tid, total_events, events}) — the
// post-mortem flight recorder of a failure artifact or stats document.
// Prints at most the last `last_k` events per ring.
void print_rings(const wfsort::Json& rings, std::size_t last_k) {
  if (rings.is_null() || rings.type() != wfsort::Json::Type::kArray) return;
  for (const wfsort::Json& r : rings.items()) {
    const wfsort::Json* tid = r.find("tid");
    const wfsort::Json* total = r.find("total_events");
    const wfsort::Json* events = r.find("events");
    if (tid == nullptr || events == nullptr) continue;
    const auto& evs = events->items();
    const std::size_t show = std::min(last_k, evs.size());
    std::printf("post-mortem ring of worker %llu: last %zu of %llu events\n",
                static_cast<unsigned long long>(tid->as_u64()), show,
                static_cast<unsigned long long>(
                    total != nullptr ? total->as_u64() : evs.size()));
    for (std::size_t i = evs.size() - show; i < evs.size(); ++i) {
      const wfsort::Json& e = evs[i];
      const wfsort::Json* kind = e.find("kind");
      std::printf("  t=%-8llu %-14s a8=%-3llu a32=%-10llu value=%llu\n",
                  static_cast<unsigned long long>(e.at("t").as_u64()),
                  kind != nullptr ? kind->as_string().c_str() : "?",
                  static_cast<unsigned long long>(e.at("a8").as_u64()),
                  static_cast<unsigned long long>(e.at("a32").as_u64()),
                  static_cast<unsigned long long>(e.at("value").as_u64()));
    }
  }
}

// Report: human rendering of observability artifacts.  A monitor JSONL file
// becomes a per-session sample timeline with the final quantile table; a
// replay artifact becomes its failure summary plus the kill victims' post-
// mortem ring dump.
int run_report(const wfsort::CliFlags& flags) {
  if (flags.positional().size() < 2) {
    std::fprintf(stderr, "usage: wfsort report <monitor.jsonl|artifact.json>\n");
    return 2;
  }
  const std::string& path = flags.positional()[1];
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 2;
  }
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());

  // Replay artifact?  (One pretty-printed document with a format marker.)
  {
    std::string perr;
    const wfsort::Json doc = wfsort::Json::parse(text, &perr);
    if (perr.empty() && doc.type() == wfsort::Json::Type::kObject) {
      const wfsort::Json* format = doc.find("format");
      if (format != nullptr && format->type() == wfsort::Json::Type::kString &&
          format->as_string() == "wfsort-repro-v1") {
        if (const wfsort::Json* failure = doc.find("failure"); failure != nullptr) {
          const wfsort::Json* kind = failure->find("kind");
          const wfsort::Json* detail = failure->find("detail");
          std::printf("failure: %s — %s\n",
                      kind != nullptr ? kind->as_string().c_str() : "?",
                      detail != nullptr ? detail->as_string().c_str() : "");
        }
        const wfsort::Json* rings = doc.find("rings");
        if (rings == nullptr && doc.find("observed") != nullptr) {
          rings = doc.at("observed").find("rings");
        }
        if (rings == nullptr || rings->items().empty()) {
          std::printf("no post-mortem rings recorded (script kills nobody, or "
                      "the artifact predates the flight recorder)\n");
          return 0;
        }
        print_rings(*rings, 16);
        return 0;
      }
      std::fprintf(stderr,
                   "%s: not a monitor stream or replay artifact (schema %s)\n",
                   path.c_str(),
                   doc.find("schema") != nullptr
                       ? doc.at("schema").as_string().c_str()
                       : "?");
      return 1;
    }
  }

  // Otherwise: monitor JSONL.  Validate first, then render the timeline.
  std::string error;
  if (!tel::validate_monitor_jsonl(text, &error)) {
    std::fprintf(stderr, "%s: INVALID: %s\n", path.c_str(), error.c_str());
    return 1;
  }
  std::size_t session = 0, pos = 0;
  while (pos < text.size()) {
    const std::size_t end = text.find('\n', pos);
    const std::string line =
        text.substr(pos, end == std::string::npos ? end : end - pos);
    pos = end == std::string::npos ? text.size() : end + 1;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::string lerr;
    const wfsort::Json rec = wfsort::Json::parse(line, &lerr);
    if (!lerr.empty()) continue;  // validated above; be tolerant here
    const std::string record = rec.at("record").as_string();
    if (record == "header") {
      ++session;
      std::printf("session %zu: source=%s build=%s interval=%llums rings=%llu\n",
                  session, rec.at("source").as_string().c_str(),
                  rec.at("build_type").as_string().c_str(),
                  static_cast<unsigned long long>(rec.at("interval_ms").as_u64()),
                  static_cast<unsigned long long>(
                      rec.find("rings") != nullptr ? rec.at("rings").as_u64() : 0));
      std::printf("  config: %s\n", rec.at("config").dump_compact().c_str());
      continue;
    }
    const bool final_sample =
        rec.find("final") != nullptr && rec.at("final").as_bool();
    std::printf("  t=%-6llums events=%-8llu dropped=%-6llu workers=%llu%s\n",
                static_cast<unsigned long long>(rec.at("t_ms").as_u64()),
                static_cast<unsigned long long>(rec.at("events").as_u64()),
                static_cast<unsigned long long>(rec.at("dropped").as_u64()),
                static_cast<unsigned long long>(rec.at("workers_active").as_u64()),
                final_sample ? "  (final)" : "");
    if (final_sample) {
      std::printf("  %-14s %10s %10s %10s %10s %10s\n", "phase", "count",
                  "p50_us", "p99_us", "p999_us", "max_us");
      for (const auto& [name, ph] : rec.at("phases").object_items()) {
        std::printf("  %-14s %10llu %10llu %10llu %10llu %10llu\n", name.c_str(),
                    static_cast<unsigned long long>(ph.at("count").as_u64()),
                    static_cast<unsigned long long>(ph.at("p50_us").as_u64()),
                    static_cast<unsigned long long>(ph.at("p99_us").as_u64()),
                    static_cast<unsigned long long>(ph.at("p999_us").as_u64()),
                    static_cast<unsigned long long>(ph.at("max_us").as_u64()));
      }
      std::printf("  counters: %s\n", rec.at("counters").dump_compact().c_str());
      if (rec.find("jobs") != nullptr) {
        std::printf("  jobs: %s\n", rec.at("jobs").dump_compact().c_str());
      }
    }
  }
  return 0;
}

int run_replay(const wfsort::CliFlags& flags) {
  if (flags.positional().size() < 2) {
    std::fprintf(stderr, "usage: wfsort replay <artifact.json>\n");
    return 2;
  }
  const std::string& path = flags.positional()[1];
  wfsort::runtime::ReplayArtifact artifact;
  std::string error;
  if (!wfsort::runtime::load_artifact(path, &artifact, &error)) {
    std::fprintf(stderr, "cannot load %s: %s\n", path.c_str(), error.c_str());
    return 2;
  }
  std::fprintf(stderr, "replaying %s (recorded failure: %s)\n", path.c_str(),
               wfsort::runtime::failure_kind_name(artifact.failure));
  // sim_threads is a host property, never serialized (see ScenarioSpec);
  // the replay runs at whatever this invocation asks for and must reproduce
  // the recorded failure regardless.
  artifact.spec.sim_threads = static_cast<std::uint32_t>(flags.u64("sim-threads"));
  const wfsort::runtime::ReplayOutcome outcome = wfsort::runtime::replay(artifact);
  std::fprintf(stderr, "result: %s%s%s\n",
               wfsort::runtime::failure_kind_name(outcome.result.failure),
               outcome.result.detail.empty() ? "" : " — ",
               outcome.result.detail.c_str());
  // Diff this run's contention against the artifact's recorded telemetry —
  // a replay that fails the same way through a different hot spot is a
  // different interleaving of the same bug.
  std::uint64_t was = 0, now = 0;
  std::string was_site, now_site;
  if (contention_summary(artifact.observed, &was, &was_site) &&
      contention_summary(outcome.result.stats, &now, &now_site)) {
    std::fprintf(stderr, "contention: observed max=%llu%s%s, replay max=%llu%s%s\n",
                 static_cast<unsigned long long>(was),
                 was_site.empty() ? "" : " at ", was_site.c_str(),
                 static_cast<unsigned long long>(now),
                 now_site.empty() ? "" : " at ", now_site.c_str());
  }
  // The artifact's post-mortem flight recorder: the kill victims' final
  // events, as recorded by the original failing run.
  if (!artifact.rings.is_null() && !artifact.rings.items().empty()) {
    print_rings(artifact.rings, 16);
  }
  if (outcome.reproduced) {
    std::fprintf(stderr, "reproduced%s\n", outcome.exact ? " (identical detail)" : "");
    return 1;  // the bug is (still) there
  }
  if (artifact.spec.substrate == wfsort::runtime::Substrate::kNative) {
    std::fprintf(stderr,
                 "did not reproduce — native replays re-run the configuration, not the "
                 "interleaving; try several times\n");
  } else {
    std::fprintf(stderr, "did not reproduce\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  wfsort::CliFlags flags(
      "wfsort — wait-free sorting (Shavit/Upfal/Zemach PODC'97)\n"
      "usage: wfsort <sort|sim|bench|scaling|validate|hunt|replay|report> [flags] [files...]");
  flags.add_u64("n", 100000, "number of keys to generate when no input file is given");
  flags.add_u64("threads", 4, "native worker threads (sort/bench mode)");
  flags.add_u64("procs", 256, "virtual processors (sim mode)");
  flags.add_u64("seed", 1, "workload / randomized-variant seed");
  flags.add_u64("trace", 0, "sim: keep and print the last K trace events");
  flags.add_u64("sim-threads", 1,
                "sim/hunt/replay: OS threads sharding the round engine "
                "(observables are identical at any value)");
  flags.add_string("variant", "det", "det | lc | classic (sim only)");
  flags.add_string("phase1", "tree",
                   "native det phase 1: tree | partition (sort/hunt mode)");
  flags.add_string("dist", "uniform", "uniform|shuffled|sorted|reversed|few|pipe");
  flags.add_string("schedule", "sync", "sim: sync|serial|subset|freeze");
  flags.add_string("memory", "crcw", "sim: crcw | stall");
  flags.add_bool("print", false, "sort: print the sorted keys to stdout");
  flags.add_bool("pool", false,
                 "sort/bench: route runs through the process-wide SortPool "
                 "(persistent workers, recycled arenas)");
  flags.add_bool("back-to-back", false,
                 "bench --pool: add the small-N cold-vs-pooled latency sweep "
                 "(2^10..2^20) to the envelope");
  flags.add_string("substrate", "sim", "hunt: sim | native");
  flags.add_string("prune", "completed", "hunt: phase-3 pruning (none|placed|completed)");
  flags.add_u64("budget", 400, "hunt: max scenario executions");
  flags.add_string("out", "wfsort-repro.json", "hunt: replay artifact path");
  flags.add_bool("shrink", true, "hunt: delta-debug the failing script before writing");
  flags.add_u64("reps", 1, "bench/scaling: repetitions per variant (best kept)");
  flags.add_string("threads-list", "",
                   "scaling: comma-separated thread counts (default: powers of "
                   "two up to the hardware concurrency)");
  flags.add_bool("require-release", false,
                 "validate: reject envelopes not from a release build");
  flags.add_string("telemetry", "off", "native recording level: off|phases|full");
  flags.add_string("stats-json", "", "write the run's stats document to this path");
  flags.add_string("trace-out", "", "write a Perfetto-loadable trace to this path");
  flags.add_string("monitor-out", "",
                   "append live \"wfsort-monitor-v1\" JSONL samples to this "
                   "path while the run is in flight (sort/sim/bench)");
  flags.add_u64("monitor-interval-ms", 25, "live-monitor sampling period");
  flags.add_u64("ring-capacity", 256,
                "flight-recorder events retained per worker ring");

  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 2;
  }
  if (flags.help_requested() || flags.positional().empty()) {
    std::fputs(flags.help_text().c_str(), stderr);
    return flags.help_requested() ? 0 : 2;
  }

  const std::string& mode = flags.positional().front();
  if (mode == "sort") return run_sort(flags);
  if (mode == "sim") return run_sim(flags);
  if (mode == "bench") return run_bench(flags);
  if (mode == "scaling") return run_scaling(flags);
  if (mode == "validate") return run_validate(flags);
  if (mode == "hunt") return run_hunt(flags);
  if (mode == "replay") return run_replay(flags);
  if (mode == "report") return run_report(flags);
  std::fprintf(stderr,
               "unknown mode '%s' (sort|sim|bench|scaling|validate|hunt|replay|report)\n",
               mode.c_str());
  return 2;
}
