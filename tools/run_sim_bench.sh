#!/usr/bin/env bash
# Run the simulator-throughput benchmark suite and drop its JSON report at
# the repo root as BENCH_sim_perf.json, where docs/simulator.md points.
#
# Also emits BENCH_sim_stats.json — a "wfsort-stats-v1" document of one
# simulated run (docs/observability.md) — the committed sample of the
# simulator side of the unified stats schema.
#
# Provenance: every emitted file is checked with `wfsort validate
# --require-release` before the script succeeds — a debug-build number must
# never be committed.
#
# Usage:
#   tools/run_sim_bench.sh [build-dir] [--threads N] [extra benchmark args...]
#
# The build directory defaults to ./build and must already contain a
# configured build; the script builds (only) the bench_sim_perf target in it.
# --threads N runs the committed stats sample through the sharded round
# engine (wfsort sim --sim-threads=N), stamping engine=par into
# BENCH_sim_stats.json; the benchmark binary always sweeps its own simt
# dimension regardless.  Extra arguments are forwarded to the benchmark
# binary, e.g.:
#   tools/run_sim_bench.sh build --benchmark_filter='DetSort' --benchmark_min_time=2
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift $(( $# > 0 ? 1 : 0 ))

sim_threads=1
if [[ "${1:-}" == "--threads" ]]; then
  sim_threads="$2"
  shift 2
elif [[ "${1:-}" == --threads=* ]]; then
  sim_threads="${1#--threads=}"
  shift 1
fi

if [[ ! -f "$build_dir/CMakeCache.txt" ]]; then
  echo "error: '$build_dir' is not a configured CMake build directory" >&2
  echo "hint: cmake -B \"$build_dir\" -S \"$repo_root\" -DCMAKE_BUILD_TYPE=Release" >&2
  exit 1
fi
build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$build_dir/CMakeCache.txt")"
if [[ "$build_type" != "Release" ]]; then
  echo "error: '$build_dir' is configured as '${build_type:-<unset>}', not Release" >&2
  echo "benchmark numbers from non-Release builds must not be committed" >&2
  exit 1
fi

cmake --build "$build_dir" --target bench_sim_perf wfsort_cli -j "$(nproc)"

out="$repo_root/BENCH_sim_perf.json"
"$build_dir/bench/bench_sim_perf" \
  --benchmark_format=json \
  --benchmark_out="$out" \
  --benchmark_out_format=json \
  "$@"
"$build_dir/tools/wfsort" validate "$out" --require-release
echo "wrote $out"

"$build_dir/tools/wfsort" sim --n=4096 --procs=256 --sim-threads="$sim_threads" \
  --stats-json="$repo_root/BENCH_sim_stats.json"
"$build_dir/tools/wfsort" validate "$repo_root/BENCH_sim_stats.json" --require-release
