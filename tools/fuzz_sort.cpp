// Deterministic fuzzer: random configurations, random fault plans, full
// validation.  Not a libFuzzer target (the environment is offline); a
// seeded loop that shakes the whole stack:
//
//   * native sorter: random (n, threads, variant, prune, distribution,
//     crash/sleep plan); result must be the sorted permutation whenever at
//     least one worker survives, and untouched otherwise;
//   * simulator sorter: random (n, procs, variant, scheduler, memory
//     model); deterministic runs get full structural validation.
//   * fault scripts: a random FaultScript (kills, stalls, suspend/revive
//     pairs) against a random scenario on either substrate, judged by the
//     scenario runner (mid-run oracle + hang detection + full validation).
//     A failure is written to --artifact as a replay artifact, so
//     `wfsort replay <file>` reproduces exactly what the fuzzer saw.
//
//   fuzz_sort --iters=200 --seed=1
#include <algorithm>
#include <cstdio>
#include <memory>
#include <span>
#include <vector>

#include "common/cli.h"
#include "common/rng.h"
#include "core/sort.h"
#include "exp/workloads.h"
#include "pram/machine.h"
#include "pram/scheduler.h"
#include "pramsort/driver.h"
#include "pramsort/validate.h"
#include "runtime/scenario.h"
#include "runtime/search.h"

namespace {

using wfsort::Rng;

wfsort::exp::Dist random_dist(Rng& rng) {
  constexpr wfsort::exp::Dist kAll[] = {
      wfsort::exp::Dist::kShuffled,    wfsort::exp::Dist::kUniform,
      wfsort::exp::Dist::kSorted,      wfsort::exp::Dist::kReversed,
      wfsort::exp::Dist::kFewDistinct, wfsort::exp::Dist::kOrganPipe};
  return kAll[rng.below(6)];
}

bool fuzz_native_once(Rng& rng, std::uint64_t iter) {
  const std::size_t n = 2 + rng.below(4000);
  const auto threads = static_cast<std::uint32_t>(1 + rng.below(6));
  wfsort::Options opts;
  opts.threads = threads;
  opts.variant = rng.coin() ? wfsort::Variant::kDeterministic
                            : wfsort::Variant::kLowContention;
  const std::uint64_t pr = rng.below(3);
  opts.prune = pr == 0   ? wfsort::PrunePlaced::kNo
               : pr == 1 ? wfsort::PrunePlaced::kYes
                         : wfsort::PrunePlaced::kDone;
  opts.seed = rng.next();

  auto data = wfsort::exp::make_u64_keys(n, random_dist(rng), rng.next());
  auto expected = data;
  std::sort(expected.begin(), expected.end());

  // PrunePlaced::kYes is only sound without faults (documented); fuzz it
  // faultlessly and fuzz the sound policies with hostile plans.
  const bool with_faults = opts.prune != wfsort::PrunePlaced::kYes && rng.coin();
  bool ok;
  if (with_faults) {
    wfsort::runtime::FaultPlan plan(threads);
    const auto kills = static_cast<std::uint32_t>(rng.below(threads));  // keep >= 1 alive
    for (std::uint32_t k = 0; k < kills; ++k) {
      plan.crash_at(threads - 1 - k, 1 + rng.below(5000));
    }
    if (rng.coin()) plan.sleep_at(0, 1 + rng.below(100), std::chrono::microseconds(500));
    ok = wfsort::sort_with_faults(std::span<std::uint64_t>(data), opts, plan);
    if (!ok) {
      std::printf("iter %llu: no survivor completed (unexpected: %u kills of %u)\n",
                  static_cast<unsigned long long>(iter), kills, threads);
      return false;
    }
  } else {
    wfsort::sort(std::span<std::uint64_t>(data), opts);
    ok = true;
  }
  if (data != expected) {
    std::printf("iter %llu: NATIVE SORT WRONG (n=%zu threads=%u variant=%d prune=%llu)\n",
                static_cast<unsigned long long>(iter), n, threads,
                static_cast<int>(opts.variant), static_cast<unsigned long long>(pr));
    return false;
  }
  return true;
}

bool fuzz_sim_once(Rng& rng, std::uint64_t iter) {
  const std::size_t n = 4 + rng.below(160);
  const auto procs = static_cast<std::uint32_t>(1 + rng.below(n));
  auto keys = wfsort::exp::make_word_keys(n, random_dist(rng), rng.next());

  pram::MachineOptions mopts;
  mopts.seed = rng.next();
  if (rng.below(4) == 0) mopts.memory_model = pram::MemoryModel::kStall;
  pram::Machine m(mopts);

  std::unique_ptr<pram::Scheduler> sched;
  switch (rng.below(4)) {
    case 0: sched = std::make_unique<pram::SynchronousScheduler>(); break;
    case 1: sched = std::make_unique<pram::RoundRobinScheduler>(
                 static_cast<std::uint32_t>(1 + rng.below(procs)));
      break;
    case 2: sched = std::make_unique<pram::RandomSubsetScheduler>(
                 0.2 + 0.7 * rng.uniform01(), rng.next());
      break;
    default: sched = std::make_unique<pram::HalfFreezeScheduler>(1 + rng.below(16)); break;
  }

  if (rng.coin()) {
    wfsort::sim::DetSortConfig cfg;
    const std::uint64_t pr = rng.below(3);
    cfg.prune = pr == 0   ? wfsort::sim::PlacePrune::kNone
                : pr == 1 ? wfsort::sim::PlacePrune::kPlaced
                          : wfsort::sim::PlacePrune::kCompleted;
    cfg.random_first = rng.coin();
    auto res = wfsort::sim::run_det_sort(m, keys, procs, *sched, cfg);
    if (!res.sorted) {
      std::printf("iter %llu: SIM DET SORT WRONG (n=%zu procs=%u)\n",
                  static_cast<unsigned long long>(iter), n, procs);
      return false;
    }
    auto report = wfsort::sim::validate_sort_run(m, res.layout, 0);
    if (!report.ok) {
      std::printf("iter %llu: SIM DET VALIDATION: %s\n",
                  static_cast<unsigned long long>(iter), report.error.c_str());
      return false;
    }
  } else {
    auto res = wfsort::sim::run_lc_sort(m, keys, procs, *sched);
    if (!res.sorted) {
      std::printf("iter %llu: SIM LC SORT WRONG (n=%zu procs=%u)\n",
                  static_cast<unsigned long long>(iter), n, procs);
      return false;
    }
  }
  return true;
}

bool fuzz_script_once(Rng& rng, std::uint64_t iter, const std::string& artifact_path) {
  namespace rt = wfsort::runtime;
  rt::ScenarioSpec spec;
  spec.substrate = rng.below(4) == 0 ? rt::Substrate::kNative : rt::Substrate::kSim;
  const bool sim = spec.substrate == rt::Substrate::kSim;
  spec.n = sim ? 4 + rng.below(120) : 2 + rng.below(2000);
  spec.dist = random_dist(rng);
  spec.workload_seed = rng.next();
  spec.procs = static_cast<std::uint32_t>(2 + rng.below(sim ? 14 : 6));
  spec.variant = rng.coin() ? rt::SortKind::kDet : rt::SortKind::kLc;
  // PlacePrune::kYes/kPlaced is documented-unsound under faults; the sound
  // policies must survive anything the script throws at them.
  spec.prune = rng.coin() ? wfsort::sim::PlacePrune::kCompleted
                          : wfsort::sim::PlacePrune::kNone;
  spec.random_first = rng.coin();
  spec.machine_seed = rng.next();
  if (sim && rng.below(4) == 0) spec.memory = pram::MemoryModel::kStall;
  const auto scheds = rt::all_sched_specs(spec.procs, rng.next());
  spec.sched = scheds[rng.below(scheds.size())];
  spec.oracle_period = sim && spec.variant == rt::SortKind::kDet ? 32 : 0;

  const std::uint64_t horizon = sim ? spec.n * 16 : std::max<std::uint64_t>(spec.n, 64);
  spec.script = rt::random_script(spec.procs, horizon, rng);
  if (!sim) {
    // The cooperative native plan cannot express suspend/revive; keep the
    // representable events.
    std::vector<rt::FaultEvent> kept;
    for (const rt::FaultEvent& e : spec.script.events) {
      if (e.action == rt::FaultAction::kKill || e.action == rt::FaultAction::kSleep) {
        kept.push_back(e);
      }
    }
    spec.script.events = std::move(kept);
  }
  if (!spec.script.validate(spec.procs).empty()) spec.script = rt::FaultScript{};

  const rt::ScenarioResult res = rt::run_scenario(spec);
  if (res.ok()) return true;

  rt::ReplayArtifact artifact{spec, res.failure, res.detail, res.stats};
  std::printf("iter %llu: SCENARIO FAILED (%s): %s\n",
              static_cast<unsigned long long>(iter),
              rt::failure_kind_name(res.failure), res.detail.c_str());
  if (rt::write_artifact(artifact, artifact_path)) {
    std::printf("  repro written to %s — re-run with: wfsort replay %s\n",
                artifact_path.c_str(), artifact_path.c_str());
  } else {
    std::printf("  (could not write %s)\n", artifact_path.c_str());
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  wfsort::CliFlags flags("fuzz_sort — randomized full-stack validation loop");
  flags.add_u64("iters", 100, "fuzz iterations (native / simulator / fault scripts)");
  flags.add_u64("seed", 12345, "master seed");
  flags.add_string("artifact", "fuzz-repro.json",
                   "where to write the replay artifact of a failing scenario");
  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::fputs(flags.help_text().c_str(), stderr);
    return 0;
  }

  Rng rng(flags.u64("seed"));
  const std::uint64_t iters = flags.u64("iters");
  for (std::uint64_t i = 0; i < iters; ++i) {
    bool ok = true;
    switch (i % 3) {
      case 0: ok = fuzz_native_once(rng, i); break;
      case 1: ok = fuzz_sim_once(rng, i); break;
      default: ok = fuzz_script_once(rng, i, flags.str("artifact")); break;
    }
    if (!ok) {
      std::printf("FUZZ FAILURE at iteration %llu (seed %llu)\n",
                  static_cast<unsigned long long>(i),
                  static_cast<unsigned long long>(flags.u64("seed")));
      return 1;
    }
    if ((i + 1) % 50 == 0) {
      std::printf("  %llu/%llu ok\n", static_cast<unsigned long long>(i + 1),
                  static_cast<unsigned long long>(iters));
    }
  }
  std::printf("fuzz: %llu iterations, all validated\n",
              static_cast<unsigned long long>(iters));
  return 0;
}
