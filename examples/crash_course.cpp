// Crash course in crash tolerance: the same fault plan, two sorters.
//
// We sort identical data twice with aggressive fault injection (workers
// crash at staggered points, one sleeps through a "page fault"):
//   1. the wait-free sorter — must finish, every time, as long as one
//      worker survives;
//   2. the conventional lock-based parallel quicksort — a crashed worker
//      takes its popped range to the grave, stranding the sort.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <span>
#include <vector>

#include "baselines/lock_parallel_quicksort.h"
#include "common/rng.h"
#include "core/sort.h"

namespace {

constexpr std::uint32_t kThreads = 6;

void make_hostile(wfsort::runtime::FaultPlan& plan, int round) {
  plan.crash_at(1, 10 + 13 * static_cast<std::uint64_t>(round));
  plan.crash_at(2, 120 + 7 * static_cast<std::uint64_t>(round));
  plan.crash_at(3, 900 + 31 * static_cast<std::uint64_t>(round));
  plan.crash_at(4, 4000 + 101 * static_cast<std::uint64_t>(round));
  plan.sleep_at(5, 50, std::chrono::microseconds(5000));
}

std::vector<std::uint64_t> fresh_data(int round) {
  std::vector<std::uint64_t> v(120000);
  wfsort::Rng rng(555 + round);
  for (auto& x : v) x = rng.next();
  return v;
}

}  // namespace

int main() {
  std::printf("same hostile fault plan, two sorters, five rounds each\n");
  std::printf("(4 of 6 workers crash at staggered points, 1 page-faults)\n\n");

  int wf_ok = 0, lock_ok = 0;
  constexpr int kRounds = 5;
  for (int round = 0; round < kRounds; ++round) {
    {
      auto data = fresh_data(round);
      wfsort::runtime::FaultPlan plan(kThreads);
      make_hostile(plan, round);
      const bool ok =
          wfsort::sort_with_faults(std::span<std::uint64_t>(data),
                                   wfsort::Options{.threads = kThreads}, plan) &&
          std::is_sorted(data.begin(), data.end());
      wf_ok += ok;
      std::printf("round %d  wait-free sorter:        %s\n", round,
                  ok ? "completed, sorted" : "FAILED");
    }
    {
      auto data = fresh_data(round);
      wfsort::runtime::FaultPlan plan(kThreads);
      make_hostile(plan, round);
      auto r = wfsort::baselines::lock_parallel_quicksort(std::span<std::uint64_t>(data),
                                                          kThreads, &plan);
      const bool ok = r.completed && std::is_sorted(data.begin(), data.end());
      lock_ok += ok;
      std::printf("round %d  lock-based quicksort:    %s\n", round,
                  ok ? "completed, sorted"
                     : "stranded work (crashed owners took their ranges along)");
    }
  }

  std::printf("\nscore over %d rounds: wait-free %d/%d, lock-based %d/%d\n", kRounds,
              wf_ok, kRounds, lock_ok, kRounds);
  std::printf("wait-freedom turns 'we hope nobody dies at a bad time' into a theorem.\n");
  return wf_ok == kRounds ? 0 : 1;
}
