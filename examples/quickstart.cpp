// Quickstart: sort an array with the wait-free sorter.
//
//   $ ./quickstart [n] [threads]
//
// Demonstrates the two public entry points — the free function wfsort::sort
// and the reusable Sorter object — plus the per-run statistics.
#include <cstdio>
#include <cstdlib>
#include <span>
#include <vector>

#include "common/rng.h"
#include "core/sort.h"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100000;
  const std::uint32_t threads =
      argc > 2 ? static_cast<std::uint32_t>(std::strtoul(argv[2], nullptr, 10)) : 4;

  std::vector<std::uint64_t> data(n);
  wfsort::Rng rng(2024);
  for (auto& x : data) x = rng.below(1000000);

  std::printf("sorting %zu random keys with %u wait-free workers...\n", n, threads);

  wfsort::SortStats stats;
  wfsort::sort(std::span<std::uint64_t>(data), wfsort::Options{.threads = threads}, &stats);

  bool sorted = true;
  for (std::size_t i = 1; i < n; ++i) sorted &= data[i - 1] <= data[i];
  std::printf("sorted: %s\n", sorted ? "yes" : "NO");
  std::printf("pivot-tree depth: %u (~%.1f x log2 N)\n", stats.tree_depth,
              static_cast<double>(stats.tree_depth) / (8 * sizeof(std::size_t) -
                                                       static_cast<double>(__builtin_clzll(n))));
  std::printf("max build-tree iterations: %llu (Lemma 2.4 bound: %zu)\n",
              static_cast<unsigned long long>(stats.max_build_iters), n - 1);
  std::printf("workers completed: %u of %u\n", stats.completed_workers, stats.workers);

  // The low-contention variant is a one-field change:
  for (auto& x : data) x = rng.below(1000000);
  wfsort::Sorter<std::uint64_t> lc_sorter(
      wfsort::Options{.threads = threads, .variant = wfsort::Variant::kLowContention});
  lc_sorter(std::span<std::uint64_t>(data));
  std::printf("low-contention variant resorted the array: %s\n",
              std::is_sorted(data.begin(), data.end()) ? "yes" : "NO");
  return sorted ? 0 : 1;
}
