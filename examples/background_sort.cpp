// The paper's Section-1 operating-system scenario, end to end.
//
// A "kernel" sorts a large array in the background of other work.  CPUs
// come and go: when one is idle we spawn a sort worker; when the OS needs
// it back we reap the worker mid-flight — legal at any instant because the
// sort is wait-free.  One worker takes a simulated page fault; instead of
// waiting, the scheduler simply spawns a fresh worker and later reaps the
// stalled one.  Whatever happens, wait() delivers a sorted array.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <span>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/session.h"

int main() {
  constexpr std::size_t kN = 400000;
  std::vector<std::uint64_t> data(kN);
  wfsort::Rng rng(7);
  for (auto& x : data) x = rng.next();

  std::printf("background-sorting %zu keys while 'the OS' churns CPUs...\n", kN);
  wfsort::SortSession<std::uint64_t> session(std::span<std::uint64_t>(data),
                                             wfsort::Options{.threads = 4});

  // t=0: two CPUs are idle -> two workers.
  const auto w0 = session.spawn_worker();
  const auto w1 = session.spawn_worker();
  std::printf("  [t0] spawned workers %u and %u on idle CPUs\n", w0, w1);

  std::this_thread::sleep_for(std::chrono::milliseconds(2));

  // t=1: CPU of w0 is needed for an interrupt storm -> reap, no questions.
  session.reap_worker(w0);
  std::printf("  [t1] CPU reclaimed: reaped worker %u mid-phase (always safe)\n", w0);

  // t=2: another CPU frees up -> add a worker to speed things up.
  const auto w2 = session.spawn_worker();
  std::printf("  [t2] new idle CPU: spawned worker %u\n", w2);

  std::this_thread::sleep_for(std::chrono::milliseconds(2));

  // t=3: w1 "page faults" (we model it as: stop waiting for it, spawn a
  // replacement to soak up the otherwise wasted cycles, reap the stalled
  // thread whenever it resurfaces).
  const auto w3 = session.spawn_worker();
  session.reap_worker(w1);
  std::printf("  [t3] worker %u page-faulted: spawned %u, reaped the stalled one\n", w1,
              w3);

  session.wait();
  const bool sorted = std::is_sorted(data.begin(), data.end());
  const auto stats = session.stats();
  std::printf("result: sorted=%s, %u worker(s) ran to completion, %u were reaped\n",
              sorted ? "yes" : "NO", stats.completed_workers, stats.crashed_workers);
  std::printf("the array is sorted regardless of the churn — that is wait-freedom.\n");
  return sorted ? 0 : 1;
}
