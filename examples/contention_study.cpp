// Driving the CRCW PRAM simulator directly: measure the memory-contention
// profile of both sort variants, the way the paper's Section 3 reasons
// about them.  Shows the simulator's public API: build a machine, load
// keys, run a program on P virtual processors, inspect per-region metrics.
#include <cstdio>

#include "exp/workloads.h"
#include "pram/machine.h"
#include "pramsort/driver.h"

namespace {

void report(const char* label, const pram::Machine& m, std::uint64_t rounds,
            bool sorted) {
  const auto& metrics = m.metrics();
  std::printf("\n%s: rounds=%llu sorted=%s\n", label,
              static_cast<unsigned long long>(rounds), sorted ? "yes" : "NO");
  std::printf("  max concurrent accesses to one cell: %zu\n",
              metrics.max_cell_contention());
  const pram::Region* hot = m.mem().region_of(metrics.hottest_addr());
  std::printf("  hottest cell lives in region: %s (round %llu)\n",
              hot != nullptr ? hot->name.c_str() : "?",
              static_cast<unsigned long long>(metrics.hottest_round()));
  std::printf("  per-region max contention:\n");
  for (const auto& [name, c] : metrics.region_contention()) {
    std::printf("    %-28s %zu\n", name.c_str(), c);
  }
}

}  // namespace

int main() {
  constexpr std::size_t kN = 512;  // P = N virtual processors
  std::printf("contention study: N = P = %zu on the synchronous CRCW PRAM\n", kN);
  auto keys = wfsort::exp::make_word_keys(kN, wfsort::exp::Dist::kShuffled, 99);

  pram::Machine m_det;
  auto det = wfsort::sim::run_det_sort_sync(m_det, keys, kN);
  report("deterministic variant (Section 2)", m_det, det.run.rounds, det.sorted);

  pram::Machine m_lc;
  auto lc = wfsort::sim::run_lc_sort_sync(m_lc, keys, kN);
  report("randomized low-contention variant (Section 3)", m_lc, lc.run.rounds, lc.sorted);

  std::printf("\ntakeaway: the deterministic variant's hottest cell sees P concurrent\n"
              "accesses (the pivot root); the randomized variant divides that pressure\n"
              "across sqrt(P) fat-tree copies and random probes.\n");
  return det.sorted && lc.sorted ? 0 : 1;
}
