// Tests for SortSession: dynamic spawn/reap of sort workers (the paper's
// OS scenario), completion guarantees when every worker is reaped, and
// idempotent wait semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/session.h"

namespace {

using wfsort::Options;
using wfsort::Rng;

std::vector<std::uint64_t> random_data(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.next();
  return v;
}

void expect_sorted_permutation(std::vector<std::uint64_t> original,
                               const std::vector<std::uint64_t>& result) {
  std::sort(original.begin(), original.end());
  EXPECT_EQ(original, result);
}

TEST(SortSession, BasicSpawnAndWait) {
  auto v = random_data(20000, 1);
  auto orig = v;
  {
    wfsort::SortSession<std::uint64_t> session(std::span<std::uint64_t>(v),
                                               Options{.threads = 4});
    session.spawn_worker();
    session.spawn_worker();
    session.wait();
    EXPECT_TRUE(session.finished());
  }
  expect_sorted_permutation(orig, v);
}

TEST(SortSession, WaitWithoutAnyWorkersSortsOnCallerThread) {
  auto v = random_data(5000, 2);
  auto orig = v;
  wfsort::SortSession<std::uint64_t> session{std::span<std::uint64_t>(v)};
  session.wait();
  expect_sorted_permutation(orig, v);
}

TEST(SortSession, ReapAllWorkersImmediatelyStillCompletes) {
  auto v = random_data(30000, 3);
  auto orig = v;
  wfsort::SortSession<std::uint64_t> session(std::span<std::uint64_t>(v),
                                             Options{.threads = 4});
  for (int i = 0; i < 4; ++i) {
    const auto tid = session.spawn_worker();
    session.reap_worker(tid);  // "processor needed elsewhere" right away
  }
  session.wait();  // caller finishes whatever is left
  expect_sorted_permutation(orig, v);
}

TEST(SortSession, SpawnReapSpawnChurn) {
  auto v = random_data(50000, 4);
  auto orig = v;
  wfsort::SortSession<std::uint64_t> session(std::span<std::uint64_t>(v),
                                             Options{.threads = 4});
  std::vector<std::uint32_t> live;
  for (int wave = 0; wave < 5; ++wave) {
    live.push_back(session.spawn_worker());
    live.push_back(session.spawn_worker());
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    session.reap_worker(live[static_cast<std::size_t>(wave)]);
  }
  session.wait();
  expect_sorted_permutation(orig, v);
  EXPECT_GE(session.stats().completed_workers, 1u);
}

TEST(SortSession, DestructorWaits) {
  auto v = random_data(10000, 5);
  auto orig = v;
  {
    wfsort::SortSession<std::uint64_t> session{std::span<std::uint64_t>(v)};
    session.spawn_worker();
    // no wait(): the destructor must block until the result is delivered
  }
  expect_sorted_permutation(orig, v);
}

TEST(SortSession, WaitIsIdempotent) {
  auto v = random_data(2000, 6);
  auto orig = v;
  wfsort::SortSession<std::uint64_t> session{std::span<std::uint64_t>(v)};
  session.spawn_worker();
  session.wait();
  session.wait();
  session.wait();
  expect_sorted_permutation(orig, v);
}

TEST(SortSession, LowContentionVariantUnderChurn) {
  auto v = random_data(4000, 7);
  auto orig = v;
  wfsort::SortSession<std::uint64_t> session(
      std::span<std::uint64_t>(v),
      Options{.threads = 4, .variant = wfsort::Variant::kLowContention});
  const auto a = session.spawn_worker();
  session.spawn_worker();
  session.reap_worker(a);
  session.spawn_worker();
  session.wait();
  expect_sorted_permutation(orig, v);
}

TEST(SortSession, ReapAllMidFlightThenWaitCallerFinishes) {
  // Workers get real work done before every one of them is reaped; wait()
  // must finish the remainder on the calling thread and deliver a complete
  // result regardless of how much the reaped workers left behind.
  auto v = random_data(200000, 10);
  auto orig = v;
  wfsort::SortSession<std::uint64_t> session(std::span<std::uint64_t>(v),
                                             Options{.threads = 4});
  std::vector<std::uint32_t> tids;
  for (int i = 0; i < 4; ++i) tids.push_back(session.spawn_worker());
  std::this_thread::sleep_for(std::chrono::microseconds(300));
  for (const auto tid : tids) session.reap_worker(tid);
  session.wait();
  EXPECT_TRUE(session.finished());
  expect_sorted_permutation(orig, v);
}

TEST(SortSession, WorkerIdsStayMonotoneAcrossReaps) {
  // Ids are never reused: a reaped worker's slot (its fault-plan entry and
  // WAT spread position) stays retired, so later spawns must keep counting
  // upward.
  auto v = random_data(50000, 11);
  auto orig = v;
  wfsort::SortSession<std::uint64_t> session(std::span<std::uint64_t>(v),
                                             Options{.threads = 4});
  std::vector<std::uint32_t> ids;
  for (int round = 0; round < 6; ++round) {
    const auto tid = session.spawn_worker();
    if (!ids.empty()) {
      EXPECT_GT(tid, ids.back());
    }
    ids.push_back(tid);
    if (round % 2 == 0) session.reap_worker(tid);
  }
  session.wait();
  expect_sorted_permutation(orig, v);
}

TEST(SortSession, DestructorWhileWorkersStillRunning) {
  // Destroying the session mid-sort — workers actively in their phases,
  // one already reaped — must join everyone and deliver the result.
  auto v = random_data(300000, 12);
  auto orig = v;
  {
    wfsort::SortSession<std::uint64_t> session(std::span<std::uint64_t>(v),
                                               Options{.threads = 4});
    session.spawn_worker();
    const auto b = session.spawn_worker();
    session.spawn_worker();
    session.reap_worker(b);
    // no wait(): the destructor races the workers' progress
  }
  expect_sorted_permutation(orig, v);
}

TEST(SortSession, TwoConcurrentSessionsAreIndependent) {
  auto a = random_data(20000, 8);
  auto b = random_data(15000, 9);
  auto ea = a;
  auto eb = b;
  std::sort(ea.begin(), ea.end());
  std::sort(eb.begin(), eb.end());
  {
    wfsort::SortSession<std::uint64_t> sa{std::span<std::uint64_t>(a)};
    wfsort::SortSession<std::uint64_t> sb{std::span<std::uint64_t>(b)};
    sa.spawn_worker();
    sb.spawn_worker();
    sa.spawn_worker();
    sb.spawn_worker();
    sa.wait();
    sb.wait();
  }
  EXPECT_EQ(a, ea);
  EXPECT_EQ(b, eb);
}

}  // namespace
