// White-box unit tests of the native engine's building blocks: TreeState,
// build_from/build_one, tree_sum, find_place_emit and the LC probing phases
// — exercised directly on small hand-built trees, where every expected
// value can be stated explicitly.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"
#include "core/detail/build_phase.h"
#include "core/detail/lc_phase.h"
#include "core/detail/leaf_sort.h"
#include "core/detail/partition_phase.h"
#include "core/detail/sum_place_phase.h"
#include "core/detail/tree_state.h"

namespace {

using wfsort::detail::kBig;
using wfsort::detail::kNoIdx;
using wfsort::detail::kSmall;
using wfsort::detail::LcMarks;

using State = wfsort::detail::TreeState<std::uint64_t, std::less<std::uint64_t>>;

constexpr auto kKeepGoing = [] { return true; };

// TreeState views its keys (non-owning span), so the fixture must own them
// for the state's lifetime.
struct BuiltTree {
  std::vector<std::uint64_t> keys;
  std::unique_ptr<State> state;
  State* operator->() { return state.get(); }
  State& operator*() { return *state; }
};

// Build the tree sequentially via build_one.
BuiltTree build_sequential(std::vector<std::uint64_t> keys) {
  BuiltTree t{std::move(keys), nullptr};
  t.state = std::make_unique<State>(
      std::span<const std::uint64_t>(t.keys.data(), t.keys.size()),
      std::less<std::uint64_t>{});
  for (std::int64_t i = 0; i < t.state->n(); ++i) {
    wfsort::detail::build_one(*t.state, i);
  }
  return t;
}

TEST(TreeStateDetail, LessBreaksTiesByIndex) {
  std::vector<std::uint64_t> keys{5, 5, 3};
  State st(std::span<const std::uint64_t>(keys), {});
  EXPECT_TRUE(st.less(0, 1));   // equal keys: index 0 < 1
  EXPECT_FALSE(st.less(1, 0));
  EXPECT_TRUE(st.less(2, 0));   // 3 < 5
  EXPECT_FALSE(st.less(0, 2));
}

TEST(TreeStateDetail, BuildOneShapesKnownTree) {
  // keys: 50, 30, 70, 30(dup).  Root = 0; 30 -> small of root; 70 -> big;
  // the duplicate 30 (index 3) ties-breaks AFTER index 1 -> big child of 1.
  auto st = build_sequential({50, 30, 70, 30});
  EXPECT_EQ(st->child_of(0, kSmall), 1);
  EXPECT_EQ(st->child_of(0, kBig), 2);
  EXPECT_EQ(st->child_of(1, kBig), 3);
  EXPECT_EQ(st->child_of(1, kSmall), kNoIdx);
  EXPECT_EQ(st->measure_depth(), 3u);
}

TEST(TreeStateDetail, BuildFromInsertsBelowGivenParent) {
  std::vector<std::uint64_t> keys{50, 30, 70, 60};
  State st(std::span<const std::uint64_t>(keys), {});
  wfsort::detail::build_one(st, 1);
  wfsort::detail::build_one(st, 2);
  // Insert 60 starting at element 2 (the fat-tree handoff path).
  auto r = wfsort::detail::build_from(st, 3, 2);
  EXPECT_GE(r.iterations, 1u);
  EXPECT_EQ(st.child_of(2, kSmall), 3);
}

TEST(TreeStateDetail, BuildOneIsIdempotentForDuplicateWork) {
  auto st = build_sequential({50, 30, 70});
  // Re-running build_one (duplicate worker) must not change the tree.
  const auto before_small = st->child_of(0, kSmall);
  auto r = wfsort::detail::build_one(*st, 1);
  EXPECT_EQ(st->child_of(0, kSmall), before_small);
  EXPECT_EQ(r.iterations, 1u);  // finds itself installed at the first slot
}

TEST(TreeStateDetail, TreeSumComputesExactSizes) {
  auto st = build_sequential({50, 30, 70, 20, 40});
  ASSERT_TRUE(wfsort::detail::tree_sum(*st, /*pid=*/0, kKeepGoing));
  EXPECT_EQ(st->size_of(0), 5);  // root
  EXPECT_EQ(st->size_of(1), 3);  // 30 with children 20, 40
  EXPECT_EQ(st->size_of(2), 1);  // 70
  EXPECT_EQ(st->size_of(3), 1);
  EXPECT_EQ(st->size_of(4), 1);
}

TEST(TreeStateDetail, TreeSumSkipsSummedSubtrees) {
  auto st = build_sequential({50, 30, 70});
  // Pre-poison subtree 1 with a WRONG size: tree_sum must trust it (the
  // skip is the whole point) and produce root size consistent with it.
  st->set_size(1, 41);
  ASSERT_TRUE(wfsort::detail::tree_sum(*st, 0, kKeepGoing));
  EXPECT_EQ(st->size_of(0), 41 + 1 + 1);
}

TEST(TreeStateDetail, FindPlaceEmitProducesRanksAndOutput) {
  std::vector<std::uint64_t> keys{50, 30, 70, 20, 40};
  auto st = build_sequential(keys);
  ASSERT_TRUE(wfsort::detail::tree_sum(*st, 0, kKeepGoing));
  for (auto prune : {wfsort::PrunePlaced::kNo, wfsort::PrunePlaced::kYes,
                     wfsort::PrunePlaced::kDone}) {
    auto st2 = build_sequential(keys);
    ASSERT_TRUE(wfsort::detail::tree_sum(*st2, 0, kKeepGoing));
    ASSERT_TRUE(wfsort::detail::find_place_emit(*st2, 0, prune, /*seq_cutoff=*/0,
                                                kKeepGoing));
    EXPECT_EQ(st2->place_of(0), 4);  // 50 is 4th of {20,30,40,50,70}
    EXPECT_EQ(st2->place_of(1), 2);
    EXPECT_EQ(st2->place_of(2), 5);
    EXPECT_EQ(st2->place_of(3), 1);
    EXPECT_EQ(st2->place_of(4), 3);
    const std::uint64_t expected[] = {20, 30, 40, 50, 70};
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(st2->out[static_cast<std::size_t>(i)].load(), expected[i]);
    }
  }
}

TEST(TreeStateDetail, FindPlaceDoneSetsCompletionFlagsBottomUp) {
  auto st = build_sequential({50, 30, 70});
  ASSERT_TRUE(wfsort::detail::tree_sum(*st, 0, kKeepGoing));
  ASSERT_TRUE(wfsort::detail::find_place_emit(*st, 0, wfsort::PrunePlaced::kDone,
                                              /*seq_cutoff=*/0, kKeepGoing));
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(st->place_done_of(i)) << i;
  }
  // A second worker prunes at the root immediately (1 flag read, no writes).
  std::uint64_t checks = 0;
  ASSERT_TRUE(wfsort::detail::find_place_emit(*st, 1, wfsort::PrunePlaced::kDone,
                                              /*seq_cutoff=*/0, [&checks] {
                                                ++checks;
                                                return true;
                                              }));
  EXPECT_EQ(checks, 1u);
}

TEST(TreeStateDetail, AbortedTraversalsReturnFalse) {
  auto st = build_sequential({5, 3, 7, 1, 4, 6, 9});
  int budget = 3;
  auto limited = [&budget] { return budget-- > 0; };
  EXPECT_FALSE(wfsort::detail::tree_sum(*st, 0, limited));
  budget = 2;
  EXPECT_FALSE(wfsort::detail::find_place_emit(*st, 0, wfsort::PrunePlaced::kNo,
                                               /*seq_cutoff=*/0, limited));
}

TEST(TreeStateDetail, PlaceBlockEmitsConsecutiveRanksFromOffset) {
  auto st = build_sequential({50, 30, 70, 20, 40});
  ASSERT_TRUE(wfsort::detail::tree_sum(*st, 0, kKeepGoing));
  // Subtree under element 1 holds {20, 30, 40} with nothing preceding it:
  // ranks 1, 2, 3 in sorted order.
  std::vector<std::int64_t> scratch;
  ASSERT_TRUE(wfsort::detail::place_block(*st, 1, /*sub=*/0, scratch, kKeepGoing));
  EXPECT_EQ(st->place_of(3), 1);  // 20
  EXPECT_EQ(st->place_of(1), 2);  // 30
  EXPECT_EQ(st->place_of(4), 3);  // 40
  EXPECT_EQ(st->out[0].load(), 20u);
  EXPECT_EQ(st->out[1].load(), 30u);
  EXPECT_EQ(st->out[2].load(), 40u);
  // Subtree under element 2 is {70} with the other 4 elements before it.
  ASSERT_TRUE(wfsort::detail::place_block(*st, 2, /*sub=*/4, scratch, kKeepGoing));
  EXPECT_EQ(st->place_of(2), 5);
  EXPECT_EQ(st->out[4].load(), 70u);
}

TEST(TreeStateDetail, SeqCutoffMatchesFrameMachinery) {
  const std::vector<std::uint64_t> keys{50, 30, 70, 20, 40, 60, 80, 10, 35};
  for (std::uint64_t cutoff : {std::uint64_t{2}, std::uint64_t{4}, std::uint64_t{100}}) {
    auto ref = build_sequential(keys);
    ASSERT_TRUE(wfsort::detail::tree_sum(*ref, 0, kKeepGoing));
    ASSERT_TRUE(wfsort::detail::find_place_emit(*ref, 0, wfsort::PrunePlaced::kNo,
                                                /*seq_cutoff=*/0, kKeepGoing));
    auto st = build_sequential(keys);
    ASSERT_TRUE(wfsort::detail::tree_sum(*st, 0, kKeepGoing));
    ASSERT_TRUE(wfsort::detail::find_place_emit(*st, 0, wfsort::PrunePlaced::kDone,
                                                cutoff, kKeepGoing));
    for (std::int64_t i = 0; i < st->n(); ++i) {
      EXPECT_EQ(st->place_of(i), ref->place_of(i)) << "cutoff=" << cutoff << " i=" << i;
    }
    for (std::size_t i = 0; i < keys.size(); ++i) {
      EXPECT_EQ(st->out[i].load(), ref->out[i].load()) << "cutoff=" << cutoff;
    }
    // A second worker prunes at the root in one check: the block roots'
    // completion flags were published after their walks.
    std::uint64_t checks = 0;
    ASSERT_TRUE(wfsort::detail::find_place_emit(*st, 1, wfsort::PrunePlaced::kDone,
                                                cutoff, [&checks] {
                                                  ++checks;
                                                  return true;
                                                }));
    EXPECT_EQ(checks, 1u) << "cutoff=" << cutoff;
  }
}

TEST(TreeStateDetail, SeqCutoffCrashedBlockWalkerIsRedoneByNextWorker) {
  auto st = build_sequential({50, 30, 70, 20, 40, 60, 80});
  ASSERT_TRUE(wfsort::detail::tree_sum(*st, 0, kKeepGoing));
  // Worker 0 crashes mid-walk: the cutoff covers the whole tree, so it dies
  // inside one block and must NOT have published the completion flag.
  int budget = 3;
  EXPECT_FALSE(wfsort::detail::find_place_emit(*st, 0, wfsort::PrunePlaced::kDone,
                                               /*seq_cutoff=*/100,
                                               [&budget] { return budget-- > 0; }));
  EXPECT_FALSE(st->place_done_of(st->root_idx()));
  // Worker 1 redoes the block idempotently and completes everything.
  ASSERT_TRUE(wfsort::detail::find_place_emit(*st, 1, wfsort::PrunePlaced::kDone,
                                              /*seq_cutoff=*/100, kKeepGoing));
  EXPECT_TRUE(st->all_placed());
  EXPECT_TRUE(st->place_done_of(st->root_idx()));
  const std::uint64_t expected[] = {20, 30, 40, 50, 60, 70, 80};
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(st->out[static_cast<std::size_t>(i)].load(), expected[i]);
  }
}

TEST(TreeStateDetail, BuildBatchMatchesSequentialBuild) {
  const std::vector<std::uint64_t> keys{9, 4, 12, 1, 6, 10, 15, 0, 5, 8, 11, 13, 2, 7};
  auto ref = build_sequential(keys);
  BuiltTree t{keys, nullptr};
  t.state = std::make_unique<State>(
      std::span<const std::uint64_t>(t.keys.data(), t.keys.size()),
      std::less<std::uint64_t>{});
  wfsort::detail::BuildTally tally;
  ASSERT_TRUE(wfsort::detail::build_batch(*t.state, 0, t.state->n(), tally, kKeepGoing));
  EXPECT_GT(tally.iterations, 0u);
  EXPECT_GE(tally.max_iterations, 1u);
  for (std::int64_t i = 0; i < t.state->n(); ++i) {
    EXPECT_EQ(t.state->child_of(i, kSmall), ref->child_of(i, kSmall)) << i;
    EXPECT_EQ(t.state->child_of(i, kBig), ref->child_of(i, kBig)) << i;
  }
}

TEST(TreeStateDetail, LcPhasesCompleteOnHandBuiltTree) {
  std::vector<std::uint64_t> keys{50, 30, 70, 20, 40, 60, 80};
  auto st = build_sequential(keys);
  LcMarks sum_marks(keys.size());
  LcMarks place_marks(keys.size());
  wfsort::Rng rng(5);
  wfsort::detail::LcProbeTally tally;
  ASSERT_TRUE(wfsort::detail::lc_tree_sum(*st, sum_marks, rng, 4, tally, kKeepGoing));
  EXPECT_EQ(st->size_of(0), 7);
  EXPECT_GT(tally.probes, 0u);
  EXPECT_GT(tally.visits, 0u);
  ASSERT_TRUE(wfsort::detail::lc_find_place_emit(*st, place_marks, rng, 4, tally, kKeepGoing));
  const std::uint64_t expected[] = {20, 30, 40, 50, 60, 70, 80};
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(st->out[static_cast<std::size_t>(i)].load(), expected[i]);
  }
}

TEST(TreeStateDetail, LcPhasesSingleElement) {
  std::vector<std::uint64_t> keys{42};
  State st(std::span<const std::uint64_t>(keys), {});
  LcMarks sum_marks(1), place_marks(1);
  wfsort::Rng rng(1);
  wfsort::detail::LcProbeTally tally;
  ASSERT_TRUE(wfsort::detail::lc_tree_sum(st, sum_marks, rng, 1, tally, kKeepGoing));
  EXPECT_EQ(st.size_of(0), 1);
  ASSERT_TRUE(wfsort::detail::lc_find_place_emit(st, place_marks, rng, 1, tally, kKeepGoing));
  EXPECT_EQ(st.place_of(0), 1);
}

TEST(TreeStateDetail, SpreadSideIsBalancedAcrossPids) {
  // The hashed spread should split ~half/half at every depth.
  for (std::uint32_t depth : {0u, 5u, 17u, 31u, 63u}) {
    int small = 0;
    for (std::uint32_t pid = 0; pid < 1000; ++pid) {
      if (wfsort::detail::spread_side(pid, depth) == kSmall) ++small;
    }
    EXPECT_GT(small, 400) << depth;
    EXPECT_LT(small, 600) << depth;
  }
}

// ---- leaf sort ----------------------------------------------------------

std::vector<std::uint64_t> pattern_input(const std::string& pattern, std::size_t n) {
  std::vector<std::uint64_t> v(n);
  wfsort::Rng rng(0xabcdefULL + n);
  for (std::size_t i = 0; i < n; ++i) {
    if (pattern == "random") v[i] = rng.next();
    else if (pattern == "presorted") v[i] = i;
    else if (pattern == "reverse") v[i] = n - i;
    else if (pattern == "dup-heavy") v[i] = rng.next() % 8;
    else if (pattern == "all-equal") v[i] = 42;
    else v[i] = i < n / 2 ? i : n - i;  // organ-pipe
  }
  return v;
}

TEST(LeafSort, MatchesStdSortAcrossPatterns) {
  for (const char* pattern :
       {"random", "presorted", "reverse", "dup-heavy", "all-equal", "organ-pipe"}) {
    for (std::size_t n : {0u, 1u, 2u, 23u, 24u, 25u, 100u, 1000u, 5000u}) {
      auto v = pattern_input(pattern, n);
      auto expected = v;
      std::sort(expected.begin(), expected.end());
      wfsort::detail::LeafSortTally tally;
      wfsort::detail::leaf_sort(v.data(), v.data() + v.size(),
                                std::less<std::uint64_t>{}, &tally);
      EXPECT_EQ(v, expected) << pattern << " n=" << n;
      EXPECT_EQ(tally.blocks, 1u);
    }
  }
}

TEST(LeafSort, ItemLessTieBreaksByIndex) {
  using Item = wfsort::detail::LeafItem<std::uint64_t>;
  std::vector<Item> items;
  for (std::int64_t i = 9; i >= 0; --i) items.push_back({7, i});
  wfsort::detail::LeafSortTally tally;
  wfsort::detail::leaf_sort(items.data(), items.data() + items.size(),
                            wfsort::detail::LeafItemLess<std::uint64_t,
                                                         std::less<std::uint64_t>>{},
                            &tally);
  for (std::int64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(items[static_cast<std::size_t>(i)].idx, i);
  }
}

TEST(LeafSort, ExhaustedBudgetFallsBackToHeapsort) {
  auto v = pattern_input("random", 4096);
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  wfsort::detail::LeafSortTally tally;
  wfsort::detail::leaf_sort_with_budget(v.data(), v.data() + v.size(),
                                        std::less<std::uint64_t>{}, /*budget=*/0,
                                        &tally);
  EXPECT_EQ(v, expected);
  EXPECT_EQ(tally.heapsorts, 1u);      // the whole range fell back at once
  EXPECT_EQ(tally.insertion_sorts, 0u);
}

TEST(LeafSort, AdversarialMedian3KillerStaysCorrect) {
  // Musser's median-of-3 killer: forces the med3 choice toward small pivots.
  // The bad-pivot budget must keep the sort O(n log n) (= it terminates
  // quickly here) and, above all, correct.
  const std::size_t n = 128;  // at/below kPseudomedianThreshold: plain med-3
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n / 2; ++i) {
    v[2 * i] = i + 1;
    v[2 * i + 1] = i + 1 + n / 2;
  }
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  wfsort::detail::LeafSortTally tally;
  wfsort::detail::leaf_sort(v.data(), v.data() + v.size(),
                            std::less<std::uint64_t>{}, &tally);
  EXPECT_EQ(v, expected);
  // And with the budget forced to 1, the same input trips the fallback path.
  auto w = pattern_input("random", 2000);
  auto wexp = w;
  std::sort(wexp.begin(), wexp.end());
  wfsort::detail::LeafSortTally t2;
  wfsort::detail::leaf_sort_with_budget(w.data(), w.data() + w.size(),
                                        std::less<std::uint64_t>{}, /*budget=*/1,
                                        &t2);
  EXPECT_EQ(w, wexp);
  EXPECT_GE(t2.heapsorts, 1u);
}

// ---- SIMD descent -------------------------------------------------------

TEST(SimdDescend, DispatchedMatchesScalarBitExactly) {
  namespace simd = wfsort::simd;
  // Hand-picked lanes covering every compare outcome, including the 32-bit
  // boundary cases the SSE2 64-bit synthesis gets wrong if the hi/lo
  // combination is off, plus key-equal index tie-breaks both ways.
  const std::uint64_t ek[] = {5, 9, 7, 7, 0x1'00000000ULL, 0xFFFFFFFFULL,
                              ~0ULL, 0};
  const std::uint64_t pk[] = {9, 5, 7, 7, 0xFFFFFFFFULL, 0x1'00000000ULL,
                              0, ~0ULL};
  const std::int64_t ei[] = {0, 1, 2, 9, 4, 5, 6, 7};
  const std::int64_t pi[] = {1, 0, 9, 2, 5, 4, 7, 6};
  for (std::size_t count = 1; count <= 8; ++count) {
    std::uint8_t scalar[8] = {}, dispatched[8] = {};
    simd::descend_sides_u64_scalar(ek, ei, pk, pi, count, scalar);
    simd::descend_sides_u64(ek, ei, pk, pi, count, dispatched);
    for (std::size_t k = 0; k < count; ++k) {
      EXPECT_EQ(dispatched[k], scalar[k])
          << simd::isa_name(simd::active_isa()) << " count=" << count
          << " lane=" << k;
    }
  }
  // And a randomized sweep with frequent equal keys.
  wfsort::Rng rng(123);
  for (int round = 0; round < 500; ++round) {
    std::uint64_t rek[8], rpk[8];
    std::int64_t rei[8], rpi[8];
    for (int k = 0; k < 8; ++k) {
      rek[k] = rng.next() % 4;
      rpk[k] = rng.next() % 4;
      rei[k] = static_cast<std::int64_t>(rng.next() % 100);
      rpi[k] = static_cast<std::int64_t>(rng.next() % 100);
      if (rpi[k] == rei[k]) ++rpi[k];  // descent never compares e with itself
    }
    std::uint8_t scalar[8] = {}, dispatched[8] = {};
    simd::descend_sides_u64_scalar(rek, rei, rpk, rpi, 8, scalar);
    simd::descend_sides_u64(rek, rei, rpk, rpi, 8, dispatched);
    for (int k = 0; k < 8; ++k) {
      EXPECT_EQ(dispatched[k], scalar[k]) << "round=" << round << " lane=" << k;
    }
  }
}

// ---- partition phase ----------------------------------------------------

// Drive the three partition sweeps to completion single-threaded, the way
// one surviving worker would.
void run_partition(State& st, wfsort::detail::PartitionShared<std::uint64_t>& ps,
                   wfsort::detail::PartitionLocal<std::uint64_t>& local) {
  ASSERT_TRUE(wfsort::detail::partition_prepare(st, ps, local, kKeepGoing));
  for (std::int64_t c = 0; c < ps.chunks; ++c) {
    ASSERT_TRUE(wfsort::detail::partition_classify(st, ps, local, c, kKeepGoing));
  }
  ASSERT_TRUE(wfsort::detail::partition_offsets(ps, local, kKeepGoing));
  for (std::int64_t c = 0; c < ps.chunks; ++c) {
    ASSERT_TRUE(wfsort::detail::partition_scatter(st, ps, local, c, kKeepGoing));
  }
  for (std::int64_t b = 0; b < ps.buckets; ++b) {
    ASSERT_TRUE(wfsort::detail::partition_bucket(st, ps, local, b, kKeepGoing));
  }
}

TEST(PartitionPhase, SingleBucketBelowChunkSize) {
  auto keys = pattern_input("random", 100);  // < kChunk: one bucket, no splitters
  State st(std::span<const std::uint64_t>(keys), {});
  wfsort::detail::PartitionShared<std::uint64_t> ps{std::span<const std::uint64_t>(keys)};
  EXPECT_EQ(ps.buckets, 1);
  wfsort::detail::PartitionLocal<std::uint64_t> local;
  run_partition(st, ps, local);
  EXPECT_TRUE(local.splitters.empty());
  EXPECT_TRUE(st.all_placed());
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(st.out[i].load(), expected[i]);
  }
}

TEST(PartitionPhase, ManyChunksDuplicateHeavyMatchesSort) {
  auto keys = pattern_input("dup-heavy", 10000);  // 5 chunks -> 4 buckets
  State st(std::span<const std::uint64_t>(keys), {});
  wfsort::detail::PartitionShared<std::uint64_t> ps{std::span<const std::uint64_t>(keys)};
  EXPECT_GT(ps.buckets, 1);
  wfsort::detail::PartitionLocal<std::uint64_t> local;
  run_partition(st, ps, local);
  EXPECT_TRUE(st.all_placed());
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(st.out[i].load(), expected[i]) << i;
  }
}

TEST(PartitionPhase, AllEqualKeysSplittersStayBalanced) {
  // Every key identical: only the index tie-break separates splitters, and
  // it must keep the buckets balanced instead of collapsing them into one.
  auto keys = pattern_input("all-equal", 8192);
  State st(std::span<const std::uint64_t>(keys), {});
  wfsort::detail::PartitionShared<std::uint64_t> ps{std::span<const std::uint64_t>(keys)};
  ASSERT_GT(ps.buckets, 1);
  wfsort::detail::PartitionLocal<std::uint64_t> local;
  run_partition(st, ps, local);
  EXPECT_TRUE(st.all_placed());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(st.out[i].load(), 42u);
  }
  // place is the (key, index) rank: with equal keys, element i ranks i+1.
  for (std::int64_t i = 0; i < st.n(); ++i) {
    EXPECT_EQ(st.place_of(i), i + 1);
  }
  const std::int64_t cap = 2 * ps.n / ps.buckets;
  for (std::size_t b = 0; b + 1 < local.base.size(); ++b) {
    const std::int64_t size = local.base[b + 1] - local.base[b];
    EXPECT_GT(size, 0) << b;
    EXPECT_LE(size, cap) << b;
  }
}

TEST(PartitionPhase, EmptyBucketIsSkipped) {
  std::vector<std::uint64_t> keys{3, 1, 2};
  State st(std::span<const std::uint64_t>(keys), {});
  wfsort::detail::PartitionShared<std::uint64_t> ps{std::span<const std::uint64_t>(keys)};
  wfsort::detail::PartitionLocal<std::uint64_t> local;
  // Hand-crafted bases with an empty bucket 0 (skewed input vs the sample):
  // the job must return success without touching any element.
  local.base = {0, 0, 0};
  EXPECT_TRUE(wfsort::detail::partition_bucket(st, ps, local, 0, kKeepGoing));
  for (std::int64_t i = 0; i < st.n(); ++i) {
    EXPECT_EQ(st.place_of(i), 0) << i;
  }
}

TEST(PartitionPhase, AbortedSweepsReturnFalse) {
  auto keys = pattern_input("random", 10000);
  State st(std::span<const std::uint64_t>(keys), {});
  wfsort::detail::PartitionShared<std::uint64_t> ps{std::span<const std::uint64_t>(keys)};
  wfsort::detail::PartitionLocal<std::uint64_t> local;
  int budget = 5;
  auto limited = [&budget] { return budget-- > 0; };
  EXPECT_FALSE(wfsort::detail::partition_prepare(st, ps, local, limited));
  ASSERT_TRUE(wfsort::detail::partition_prepare(st, ps, local, kKeepGoing));
  budget = 5;
  EXPECT_FALSE(wfsort::detail::partition_classify(st, ps, local, 0, limited));
}

TEST(TreeStateDetail, AllPlacedAndMeasureDepth) {
  auto st = build_sequential({3, 1, 2});
  EXPECT_FALSE(st->all_placed());
  ASSERT_TRUE(wfsort::detail::tree_sum(*st, 0, kKeepGoing));
  ASSERT_TRUE(wfsort::detail::find_place_emit(*st, 0, wfsort::PrunePlaced::kNo,
                                              /*seq_cutoff=*/0, kKeepGoing));
  EXPECT_TRUE(st->all_placed());
  EXPECT_EQ(st->measure_depth(), 3u);  // 3 -> 1 -> 2 chain
}

}  // namespace
