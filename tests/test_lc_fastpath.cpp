// Unit tests for the LC fast path's building blocks: bounded backoff,
// per-worker per-stage RNG streams, the LC-WAT line-harvest / ALLDONE-wave
// refinements, the fat tree's fill quota, the randomized-phase burst budget,
// and the canned-fault replay round trip for the LC variant.  The end-to-end
// LC behaviour (sortedness, adversaries, depth on sorted input) lives in
// test_sort_native.cpp; these tests pin the component-level contracts the
// fast path relies on.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <span>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/detail/build_phase.h"
#include "core/detail/engine.h"
#include "core/detail/lc_phase.h"
#include "core/detail/tree_state.h"
#include "core/sort.h"
#include "lowcontention/fat_tree.h"
#include "runtime/adversaries.h"
#include "runtime/scenario.h"
#include "workalloc/lcwat.h"

namespace {

namespace rt = wfsort::runtime;
using State = wfsort::detail::TreeState<std::uint64_t, std::less<std::uint64_t>>;
using wfsort::detail::LcMarks;
using wfsort::detail::LcProbeTally;

constexpr auto kKeepGoing = [] { return true; };

// ------------------------------------------------------------ backoff

TEST(Backoff, FirstAttemptAndDisabledLimitNeverSpin) {
  for (std::uint32_t limit : {0u, 1u, 6u, 31u}) {
    EXPECT_EQ(wfsort::detail::backoff_spins(0, limit), 0u) << limit;
  }
  for (std::uint32_t attempt : {0u, 1u, 5u, 100u}) {
    EXPECT_EQ(wfsort::detail::backoff_spins(attempt, 0), 0u) << attempt;
  }
}

TEST(Backoff, GrowsExponentiallyThenSaturates) {
  constexpr std::uint32_t kLimit = 6;
  for (std::uint32_t attempt = 1; attempt <= kLimit; ++attempt) {
    EXPECT_EQ(wfsort::detail::backoff_spins(attempt, kLimit), 1u << attempt);
  }
  // Beyond the limit the spin count is capped, never wraps, never grows.
  for (std::uint32_t attempt : {kLimit + 1, 2 * kLimit, 1000u}) {
    EXPECT_EQ(wfsort::detail::backoff_spins(attempt, kLimit), 1u << kLimit);
  }
}

TEST(Backoff, PauseIsCallable) {
  for (int i = 0; i < 8; ++i) wfsort::detail::cpu_pause();
}

// ------------------------------------------------------------ RNG streams

using wfsort::detail::LcRngStage;
using wfsort::detail::worker_stage_rng;

TEST(WorkerStageRng, SameSeedTidStageReplaysIdentically) {
  wfsort::Rng a = worker_stage_rng(1234, 3, LcRngStage::kInsert);
  wfsort::Rng b = worker_stage_rng(1234, 3, LcRngStage::kInsert);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.below(1 << 20), b.below(1 << 20));
}

TEST(WorkerStageRng, StagesAndWorkersGetDistinctStreams) {
  const LcRngStage stages[] = {LcRngStage::kWinner, LcRngStage::kFatten,
                               LcRngStage::kInsert, LcRngStage::kSum,
                               LcRngStage::kPlace};
  std::vector<std::uint64_t> firsts;
  for (std::uint32_t tid : {0u, 1u, 2u}) {
    for (LcRngStage s : stages) {
      firsts.push_back(worker_stage_rng(99, tid, s).below(std::uint64_t{1} << 62));
    }
  }
  for (std::size_t i = 0; i < firsts.size(); ++i) {
    for (std::size_t j = i + 1; j < firsts.size(); ++j) {
      EXPECT_NE(firsts[i], firsts[j]) << i << " vs " << j;
    }
  }
}

TEST(WorkerStageRng, StageStreamUnaffectedByDrawsOnOtherStages) {
  // The replay property: a stage's stream depends only on (seed, tid,
  // stage), never on how many draws other stages happened to consume —
  // which varies run to run with the interleaving.
  wfsort::Rng insert_a = worker_stage_rng(7, 1, LcRngStage::kInsert);
  wfsort::Rng sum_a = worker_stage_rng(7, 1, LcRngStage::kSum);
  const std::uint64_t first_sum = sum_a.below(1000000);

  wfsort::Rng insert_b = worker_stage_rng(7, 1, LcRngStage::kInsert);
  for (int i = 0; i < 1000; ++i) insert_b.below(17);  // burn insert draws
  wfsort::Rng sum_b = worker_stage_rng(7, 1, LcRngStage::kSum);
  EXPECT_EQ(sum_b.below(1000000), first_sum);
  (void)insert_a;
}

// ------------------------------------------------------------ LC-WAT

TEST(LcWatFastPath, SolveExecutesEveryJobAndSweepsAllDone) {
  for (std::uint64_t jobs : {1ull, 7ull, 64ull, 200ull}) {
    wfsort::LcWat wat(jobs);
    std::vector<int> runs(jobs, 0);
    wfsort::Rng rng(jobs * 31 + 1);
    wat.solve(rng, [&](std::uint64_t j) { runs[j]++; });
    for (std::uint64_t j = 0; j < jobs; ++j) {
      EXPECT_GE(runs[j], 1) << "job " << j << " of " << jobs;
    }
    EXPECT_TRUE(wat.all_done());
    // The announcer's full down-wave: EVERY node carries the announcement,
    // so any later probe quits wherever it lands.
    for (std::uint64_t i = 0; i < wat.nodes(); ++i) {
      EXPECT_EQ(wat.node_state(i), wfsort::LcWat::State::kAllDone) << i;
    }
  }
}

TEST(LcWatFastPath, LateWorkerQuitsOnFirstProbeAfterSweep) {
  wfsort::LcWat wat(128);
  wfsort::Rng first(1);
  wat.solve(first, [](std::uint64_t) {});
  // A straggler arriving after the sweep must quit on its very first probe
  // without re-running any job.
  int extra_runs = 0;
  wfsort::Rng late(2);
  const auto outcome = wat.step(late, [&](std::uint64_t) { ++extra_runs; });
  EXPECT_EQ(outcome, wfsort::LcWat::Outcome::kQuit);
  EXPECT_EQ(extra_runs, 0);
}

TEST(LcWatFastPath, NoWorkerQuitsBeforeEveryJobIsDone) {
  // The announcement is only ever derived from a completed root, so a
  // worker returning from solve() must find every job executed — whichever
  // worker it is and however the threads interleaved.
  constexpr std::uint64_t kJobs = 256;
  constexpr std::uint32_t kThreads = 4;
  wfsort::LcWat wat(kJobs);
  std::vector<std::atomic<int>> done(kJobs);
  for (auto& d : done) d.store(0, std::memory_order_relaxed);

  std::vector<int> saw_all(kThreads, 0);
  std::vector<std::thread> crew;
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    crew.emplace_back([&, t] {
      wfsort::Rng rng(1000 + t);
      wat.solve(rng, [&](std::uint64_t j) {
        done[j].fetch_add(1, std::memory_order_acq_rel);
      });
      int all = 1;
      for (std::uint64_t j = 0; j < kJobs; ++j) {
        if (done[j].load(std::memory_order_acquire) == 0) all = 0;
      }
      saw_all[t] = all;
    });
  }
  for (auto& th : crew) th.join();
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(saw_all[t], 1) << "worker " << t << " quit early";
  }
}

// ------------------------------------------------------------ fat tree

TEST(FatTreeQuota, PerParticipantQuotaFillsWhp) {
  // participants * fill_quota(participants) writes must leave (nearly) no
  // empty cell, for any crew size — that is the whole point of the quota.
  for (std::uint32_t participants : {1u, 4u, 16u}) {
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
      wfsort::FatTree fat(/*levels=*/6, /*copies=*/4);  // 63 nodes * 4
      std::vector<std::int64_t> slice(fat.node_count());
      for (std::size_t i = 0; i < slice.size(); ++i) {
        slice[i] = static_cast<std::int64_t>(i);
      }
      for (std::uint32_t p = 0; p < participants; ++p) {
        wfsort::Rng rng(seed * 100 + p);
        fat.write_random_cells(slice, fat.fill_quota(participants), rng);
      }
      EXPECT_GT(fat.fill_fraction(), 0.98)
          << "participants=" << participants << " seed=" << seed;
    }
  }
}

// ------------------------------------------------------------ burst budget

// Build a pivot tree sequentially so the randomized phases can run on it.
struct BuiltTree {
  std::vector<std::uint64_t> keys;
  std::unique_ptr<State> state;
};

BuiltTree build_tree(std::uint64_t n, std::uint64_t seed) {
  BuiltTree t;
  wfsort::Rng rng(seed);
  for (std::uint64_t i = 0; i < n; ++i) t.keys.push_back(rng.below(1 << 30));
  t.state = std::make_unique<State>(
      std::span<const std::uint64_t>(t.keys.data(), t.keys.size()),
      std::less<std::uint64_t>{});
  for (std::int64_t i = 0; i < t.state->n(); ++i) {
    wfsort::detail::build_one(*t.state, i);
  }
  return t;
}

TEST(LcPhaseBurst, VisitsStayWithinProbesTimesBudget) {
  // The burst contract: one probe expands into at most `burst` charged node
  // visits, so over a whole phase visits <= probes * burst — the bound that
  // keeps each probe (and hence the checkpoint-polling cadence) O(burst).
  for (std::uint32_t burst : {1u, 2u, 8u, 64u}) {
    auto t = build_tree(512, 7);
    LcMarks sum_marks(t.keys.size()), place_marks(t.keys.size());
    wfsort::Rng rng(17);
    LcProbeTally tally;
    ASSERT_TRUE(wfsort::detail::lc_tree_sum(*t.state, sum_marks, rng, burst,
                                            tally, kKeepGoing));
    EXPECT_LE(tally.visits, tally.probes * burst) << "sum burst=" << burst;
    ASSERT_TRUE(wfsort::detail::lc_find_place_emit(*t.state, place_marks, rng,
                                                   burst, tally, kKeepGoing));
    EXPECT_LE(tally.visits, tally.probes * burst) << "place burst=" << burst;
    EXPECT_TRUE(t.state->all_placed());
  }
}

TEST(LcPhaseBurst, PaperLiteralBurstOfOneStillCompletes) {
  // burst = 1 degenerates to the paper's one-node probes (plus the frontier
  // fallback); both phases must still terminate and place everything.
  auto t = build_tree(256, 11);
  LcMarks sum_marks(t.keys.size()), place_marks(t.keys.size());
  wfsort::Rng rng(3);
  LcProbeTally tally;
  ASSERT_TRUE(wfsort::detail::lc_tree_sum(*t.state, sum_marks, rng, 1, tally,
                                          kKeepGoing));
  EXPECT_EQ(t.state->size_of(t.state->root_idx()), t.state->n());
  ASSERT_TRUE(wfsort::detail::lc_find_place_emit(*t.state, place_marks, rng, 1,
                                                 tally, kKeepGoing));
  EXPECT_TRUE(t.state->all_placed());
}

// ------------------------------------------------------------ LC replay

TEST(LcReplay, SingleThreadedRunsAreBitStable) {
  // With per-worker per-stage RNG streams there is no interleaving left at
  // threads = 1: two runs with the same seed must take the same random
  // decisions and build the identical tree.
  wfsort::SortStats a, b;
  for (wfsort::SortStats* stats : {&a, &b}) {
    std::vector<std::uint64_t> v;
    wfsort::Rng rng(555);
    for (int i = 0; i < 3000; ++i) v.push_back(rng.below(1 << 28));
    wfsort::sort(std::span<std::uint64_t>(v),
                 wfsort::Options{.threads = 1,
                                 .variant = wfsort::Variant::kLowContention,
                                 .seed = 42},
                 stats);
  }
  EXPECT_EQ(a.tree_depth, b.tree_depth);
  EXPECT_EQ(a.total_build_iters, b.total_build_iters);
  EXPECT_EQ(a.cas_successes, b.cas_successes);
  EXPECT_EQ(a.fat_read_misses, b.fat_read_misses);
}

TEST(LcReplay, CannedFaultScriptRoundTrips) {
  // An LC scenario with a canned staggered-kills script survives the full
  // artifact cycle: serialize -> parse -> replay.  The spec must come back
  // field-for-field (else "replay" would re-run a different scenario), and
  // the replayed run must pass — this is a regression harness for the LC
  // fault path, not a bug repro.  (Kills, not suspend/revive: the native
  // substrate has no suspend/revive equivalent — see program_plan.)
  rt::ScenarioSpec spec;
  spec.substrate = rt::Substrate::kNative;
  spec.n = 2048;
  spec.procs = 4;
  spec.variant = rt::SortKind::kLc;
  spec.sort_seed = 777;
  spec.script = rt::staggered_kills(/*first_round=*/40, /*stride=*/400,
                                    /*procs=*/4, /*survivors=*/1);

  rt::ReplayArtifact artifact;
  artifact.spec = spec;
  artifact.failure = rt::FailureKind::kNone;
  artifact.detail = "lc canned regression";

  const std::string text = rt::artifact_to_text(artifact);
  rt::ReplayArtifact loaded;
  std::string error;
  ASSERT_TRUE(rt::artifact_from_text(text, &loaded, &error)) << error;
  EXPECT_EQ(loaded.spec.substrate, spec.substrate);
  EXPECT_EQ(loaded.spec.n, spec.n);
  EXPECT_EQ(loaded.spec.procs, spec.procs);
  EXPECT_EQ(loaded.spec.variant, spec.variant);
  EXPECT_EQ(loaded.spec.sort_seed, spec.sort_seed);
  EXPECT_EQ(loaded.spec.script.events.size(), spec.script.events.size());

  const rt::ReplayOutcome outcome = rt::replay(loaded);
  EXPECT_EQ(outcome.result.failure, rt::FailureKind::kNone)
      << rt::failure_kind_name(outcome.result.failure) << ": "
      << outcome.result.detail;
}

}  // namespace
