// SortPool (ISSUE 10) — pooled submits must be indistinguishable from cold
// one-shot sorts in every observable except speed.
//
// The load-bearing assertions:
//   * Bit-identical output: back-to-back pooled runs across all three
//     engine variants, shrinking and growing N, default and non-default
//     knobs — each compared element-for-element against a cold
//     wfsort::sort of the same input.
//   * Fault recycling: a staggered-kills adversary run through the pool
//     must not poison its arena lane — the next clean pooled run on the
//     same lane must succeed and match cold output.
//   * Zero steady-state allocations: once a lane has seen its high-water
//     shape, a telemetry-off caller-only submit performs NO heap
//     allocations (counted by the global operator-new hooks below).  The
//     worker-wake path asserts the weaker arena-level invariant (no grow
//     events) because a parked worker's thread-local warmup is
//     schedule-dependent.
//
// The whole file runs under TSan in CI (pool suite + 4-thread pooled sort).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <random>
#include <span>
#include <vector>

#include "core/pool.h"
#include "core/sort.h"
#include "runtime/fault_plan.h"

// ---------------------------------------------------------------------------
// Counting allocator hooks: every global operator new in this binary bumps
// g_allocs.  The zero-alloc test reads the delta around a pooled submit.
// ---------------------------------------------------------------------------
namespace {
std::atomic<std::uint64_t> g_allocs{0};

void* counted_alloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_alloc(std::size_t n, std::align_val_t al) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(al);
  // aligned_alloc demands size be a multiple of alignment.
  const std::size_t sz = (std::max<std::size_t>(n, 1) + a - 1) / a * a;
  void* p = std::aligned_alloc(a, sz);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  return counted_alloc(n, al);
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return counted_alloc(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using wfsort::Options;
using wfsort::Phase1;
using wfsort::PoolStats;
using wfsort::PrunePlaced;
using wfsort::SortPool;
using wfsort::SortStats;
using wfsort::Variant;

std::vector<std::uint64_t> random_values(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng();
  return v;
}

// Pooled run and cold run of the same input must agree bit for bit.
void expect_pooled_matches_cold(SortPool& pool, std::size_t n,
                                const Options& opts, std::uint64_t seed) {
  std::vector<std::uint64_t> cold = random_values(n, seed);
  std::vector<std::uint64_t> pooled = cold;
  wfsort::sort(std::span<std::uint64_t>(cold), opts);
  pool.sort(std::span<std::uint64_t>(pooled), opts);
  ASSERT_TRUE(std::is_sorted(pooled.begin(), pooled.end()))
      << "n=" << n << " variant=" << static_cast<int>(opts.variant);
  EXPECT_EQ(pooled, cold) << "n=" << n
                          << " variant=" << static_cast<int>(opts.variant)
                          << " phase1=" << static_cast<int>(opts.phase1);
}

Options det_tree_opts() {
  Options o;
  o.threads = 4;
  return o;
}

Options det_partition_opts() {
  Options o;
  o.threads = 4;
  o.phase1 = Phase1::kPartition;
  return o;
}

Options lc_opts() {
  Options o;
  o.threads = 4;
  o.variant = Variant::kLowContention;
  return o;
}

// Shrink-and-grow N schedule: exercises both arena reuse (smaller run on a
// larger retained footprint) and grow (larger run after smaller).
const std::size_t kNSchedule[] = {4096, 100, 70000, 0,  1,    2,
                                  63,   64,  4096,  65, 20000};

TEST(SortPoolGolden, BackToBackDetTreeMatchesCold) {
  SortPool pool(4);
  std::uint64_t seed = 100;
  for (const std::size_t n : kNSchedule) {
    expect_pooled_matches_cold(pool, n, det_tree_opts(), seed++);
  }
}

TEST(SortPoolGolden, BackToBackDetPartitionMatchesCold) {
  SortPool pool(4);
  std::uint64_t seed = 200;
  for (const std::size_t n : kNSchedule) {
    expect_pooled_matches_cold(pool, n, det_partition_opts(), seed++);
  }
}

TEST(SortPoolGolden, BackToBackLowContentionMatchesCold) {
  SortPool pool(4);
  std::uint64_t seed = 300;
  for (const std::size_t n : kNSchedule) {
    expect_pooled_matches_cold(pool, n, lc_opts(), seed++);
  }
}

// Non-default knobs change the arena allocation shapes (batching, leaf
// cutoffs, fat-tree copies) — reuse must stay correct across them, and a
// lane must tolerate knob changes BETWEEN runs.
TEST(SortPoolGolden, NonDefaultKnobsAndKnobChangesBetweenRuns) {
  SortPool pool(4);
  Options tuned_det = det_tree_opts();
  tuned_det.wat_batch = 8;
  tuned_det.seq_cutoff = 32;
  tuned_det.prune = PrunePlaced::kNo;

  Options tuned_lc = lc_opts();
  tuned_lc.lc_burst = 16;
  tuned_lc.lc_copies = 3;
  tuned_lc.wat_batch = 8;

  std::uint64_t seed = 400;
  for (const std::size_t n : {5000u, 200u, 60000u}) {
    expect_pooled_matches_cold(pool, n, tuned_det, seed++);
    expect_pooled_matches_cold(pool, n, det_tree_opts(), seed++);
    expect_pooled_matches_cold(pool, n, tuned_lc, seed++);
    expect_pooled_matches_cold(pool, n, lc_opts(), seed++);
  }
}

// The three variants map to three independent arena lanes; interleaving
// them back-to-back must not cross-contaminate retained storage.
TEST(SortPoolGolden, InterleavedVariantsShareOnePool) {
  SortPool pool(4);
  std::uint64_t seed = 500;
  for (int round = 0; round < 3; ++round) {
    expect_pooled_matches_cold(pool, 3000, det_tree_opts(), seed++);
    expect_pooled_matches_cold(pool, 3000, det_partition_opts(), seed++);
    expect_pooled_matches_cold(pool, 3000, lc_opts(), seed++);
  }
  EXPECT_EQ(pool.stats().runs, 9u);  // only the pooled halves count
}

// A staggered-kills adversary run through the pool: workers die at spread
// checkpoints, the run still completes (wait-freedom is per-run and the
// caller drains unclaimed ids), and — the recycling claim — the next clean
// runs on the SAME lane reuse the killed run's arena slots safely.
TEST(SortPoolFaults, StaggeredKillsThenCleanReuse) {
  SortPool pool(4);
  const Options opts = det_tree_opts();

  std::vector<std::uint64_t> cold = random_values(20000, 600);
  std::vector<std::uint64_t> pooled = cold;
  wfsort::sort(std::span<std::uint64_t>(cold), opts);

  wfsort::runtime::FaultPlan plan(8);
  plan.crash_at(0, 40);   // the submitting caller dies early...
  plan.crash_at(1, 80);   // ...and the parked workers at staggered steps
  plan.crash_at(2, 120);  // (worker 3 survives and finishes the sort).
  SortStats stats;
  const bool ok = pool.sort_with_faults(std::span<std::uint64_t>(pooled), opts,
                                        plan, &stats);
  ASSERT_TRUE(ok);
  EXPECT_EQ(pooled, cold);
  EXPECT_GE(stats.crashed_workers, 1u);

  // Clean pooled reuse of the lane the killed run just used — shrink and
  // grow to walk the recycled slots both ways.
  std::uint64_t seed = 700;
  for (const std::size_t n : {20000u, 500u, 50000u}) {
    expect_pooled_matches_cold(pool, n, opts, seed++);
  }
}

// Everybody dies: the pooled fault run reports failure exactly like the
// cold path (data untouched is the cold contract; here we only require the
// failure report and that the lane recovers).
TEST(SortPoolFaults, AllWorkersKilledReportsFailureAndLaneRecovers) {
  SortPool pool(2);
  Options opts;
  opts.threads = 3;
  std::vector<std::uint64_t> v = random_values(20000, 800);
  wfsort::runtime::FaultPlan plan(8);
  for (std::uint32_t tid = 0; tid < 3; ++tid) plan.crash_at(tid, 5);
  const bool ok =
      pool.sort_with_faults(std::span<std::uint64_t>(v), opts, plan);
  EXPECT_FALSE(ok);
  expect_pooled_matches_cold(pool, 20000, det_tree_opts(), 801);
}

// The 14·N·⌈log2 N⌉ own-step certification on the POOLED wake path: the
// pool's claim protocol decides who starts a worker id, never a step
// inside the engine, so a steady-state pooled run must stay inside the
// same calibrated budget as the cold path (tests/test_waitfree_cert.cpp).
// The fault plan is passive here — it only counts checkpoints per tid.
TEST(SortPoolFaults, PooledRunStaysInsideOwnStepBudget) {
  SortPool pool(4);
  const std::size_t n = 4096;
  // Warm the lane so the certified run is a steady-state (recycled) one.
  for (int i = 0; i < 2; ++i) {
    std::vector<std::uint64_t> v = random_values(n, 850 + i);
    pool.sort(std::span<std::uint64_t>(v), det_tree_opts());
  }
  std::vector<std::uint64_t> v = random_values(n, 852);
  wfsort::runtime::FaultPlan plan(8);
  ASSERT_TRUE(
      pool.sort_with_faults(std::span<std::uint64_t>(v), det_tree_opts(), plan));
  ASSERT_TRUE(std::is_sorted(v.begin(), v.end()));
  std::uint64_t log2n = 0;
  while ((std::size_t{1} << log2n) < n) ++log2n;
  const std::uint64_t budget = 14 * n * log2n;
  for (std::uint32_t tid = 0; tid < 4; ++tid) {
    EXPECT_LE(plan.steps(tid), budget) << "tid " << tid;
  }
  EXPECT_GT(plan.steps(0), 0u);  // the caller really ran as worker 0
}

// Steady state, caller-only path (small N, telemetry off, no stats): zero
// heap allocations per submit, proven by the operator-new hooks.
TEST(SortPoolAlloc, SteadyStateCallerOnlySubmitMakesZeroAllocations) {
  SortPool pool(2);
  const std::size_t n = std::size_t{1} << 13;  // well under kCallerOnlyCutoff
  // Warm the lane (first run sizes the arena slots) and the calling
  // thread's worker scratch (thread-local stacks).
  for (int i = 0; i < 3; ++i) {
    std::vector<std::uint64_t> v = random_values(n, 900 + i);
    pool.sort(std::span<std::uint64_t>(v));
    ASSERT_TRUE(std::is_sorted(v.begin(), v.end()));
  }
  for (int i = 0; i < 5; ++i) {
    std::vector<std::uint64_t> v = random_values(n, 910 + i);
    const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
    pool.sort(std::span<std::uint64_t>(v));
    const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u) << "steady-state submit " << i;
    ASSERT_TRUE(std::is_sorted(v.begin(), v.end()));
  }
  const PoolStats ps = pool.stats();
  EXPECT_EQ(ps.caller_only_runs, 8u);
  EXPECT_EQ(ps.bypass_runs, 0u);
  EXPECT_GT(ps.arena_reuse_bytes, 0u);
}

// Steady state, worker-wake path (large N): the arena must not grow once
// the high-water shape is retained.  (Strict heap-zero is asserted only on
// the caller-only path: which parked worker claims first — and whether its
// thread-locals are already warm — is schedule-dependent.)
TEST(SortPoolAlloc, SteadyStateWakePathArenaStopsGrowing) {
  SortPool pool(4);
  const std::size_t n = std::size_t{1} << 17;
  for (int i = 0; i < 2; ++i) {
    std::vector<std::uint64_t> v = random_values(n, 920 + i);
    pool.sort(std::span<std::uint64_t>(v), det_tree_opts());
    ASSERT_TRUE(std::is_sorted(v.begin(), v.end()));
  }
  const std::uint64_t grow_before = pool.stats().arena_grow_events;
  for (int i = 0; i < 3; ++i) {
    std::vector<std::uint64_t> v = random_values(n, 930 + i);
    pool.sort(std::span<std::uint64_t>(v), det_tree_opts());
    ASSERT_TRUE(std::is_sorted(v.begin(), v.end()));
  }
  const PoolStats ps = pool.stats();
  EXPECT_EQ(ps.arena_grow_events, grow_before);
  EXPECT_EQ(ps.runs, 5u);
  EXPECT_GT(ps.arena_reuse_bytes, 0u);
}

// Telemetry-on pooled runs recycle the lane's Recorder (rings and span
// vectors keep their buffers) and still produce a coherent report.
TEST(SortPoolTelemetry, RecorderIsRecycledAcrossPooledRuns) {
  SortPool pool(2);
  Options opts = det_tree_opts();
  opts.telemetry = wfsort::telemetry::Level::kPhases;
  for (int i = 0; i < 3; ++i) {
    std::vector<std::uint64_t> v = random_values(50000, 940 + i);
    SortStats stats;
    pool.sort(std::span<std::uint64_t>(v), opts, &stats);
    ASSERT_TRUE(std::is_sorted(v.begin(), v.end()));
    ASSERT_NE(stats.telemetry, nullptr) << "run " << i;
    EXPECT_FALSE(stats.telemetry->workers.empty()) << "run " << i;
    // A recycled recorder must not leak the previous run's spans: every
    // span fits inside this run's wall clock.
    for (const auto& w : stats.telemetry->workers) {
      for (const auto& s : w.spans) {
        EXPECT_LE(s.end_us, stats.telemetry->wall_us);
      }
    }
  }
}

// The default pool is a process singleton and serves concurrent submitters
// (lane contention falls back to the bypass arena, never blocks).
TEST(SortPoolConcurrency, ParallelSubmittersOnOnePool) {
  SortPool pool(2);
  constexpr int kThreads = 4;
  std::vector<std::jthread> submitters;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&pool, &failures, t] {
      for (int i = 0; i < 8; ++i) {
        std::vector<std::uint64_t> v =
            random_values(2000 + 137 * t + i, 1000 + 16 * t + i);
        std::vector<std::uint64_t> expect = v;
        std::sort(expect.begin(), expect.end());
        pool.sort(std::span<std::uint64_t>(v));
        if (v != expect) failures.fetch_add(1);
      }
    });
  }
  submitters.clear();  // join
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(pool.stats().runs, 32u);
}

// Sanity on the counters the CLI exports into the bench schema.
TEST(SortPoolStats, CountersAreCoherent) {
  SortPool pool(2);
  EXPECT_EQ(pool.stats().runs, 0u);
  EXPECT_EQ(pool.thread_count(), 2u);
  std::vector<std::uint64_t> small = random_values(1024, 1100);
  pool.sort(std::span<std::uint64_t>(small));
  std::vector<std::uint64_t> big = random_values(std::size_t{1} << 17, 1101);
  pool.sort(std::span<std::uint64_t>(big), det_tree_opts());
  const PoolStats ps = pool.stats();
  EXPECT_EQ(ps.runs, 2u);
  EXPECT_EQ(ps.caller_only_runs, 1u);
  EXPECT_GT(ps.arena_held_bytes, 0u);
  // The big run woke parked workers; if one claimed before the caller
  // finished, wake_ns was measured.  Either way it must not go backwards.
  EXPECT_GE(ps.wake_ns, 0u);
}

}  // namespace
