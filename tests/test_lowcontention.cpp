// Tests for the native low-contention building blocks: winner-selection
// tournament (Figure 9) and the replicated fat tree with write-most fill.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "lowcontention/fat_tree.h"
#include "lowcontention/winner_tree.h"

namespace {

using wfsort::FatTree;
using wfsort::Rng;
using wfsort::WinnerTree;

// ------------------------------------------------------------ WinnerTree

TEST(WinnerTree, SingleCompetitorWins) {
  WinnerTree wt(1, /*wait_unit=*/0);
  Rng rng(1);
  EXPECT_EQ(wt.compete(0, 7, rng), 7);
  EXPECT_EQ(wt.winner(), 7);
}

TEST(WinnerTree, SequentialCompetitorsAgreeOnFirstDecision) {
  WinnerTree wt(8, /*wait_unit=*/0);
  Rng rng(2);
  const std::int64_t first = wt.compete(3, 30, rng);
  EXPECT_EQ(first, 30);
  for (std::uint32_t s = 0; s < 8; ++s) {
    EXPECT_EQ(wt.compete(s, 100 + s, rng), 30) << "slot " << s;
  }
}

TEST(WinnerTree, ConcurrentCompetitorsAllLearnSameWinner) {
  constexpr unsigned kThreads = 8;
  for (int round = 0; round < 10; ++round) {
    WinnerTree wt(kThreads, /*wait_unit=*/1);
    std::vector<std::int64_t> results(kThreads, -1);
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Rng rng(round * 100 + t);
        results[t] = wt.compete(t, static_cast<std::int64_t>(t), rng);
      });
    }
    for (auto& th : threads) th.join();
    for (unsigned t = 1; t < kThreads; ++t) EXPECT_EQ(results[t], results[0]);
    EXPECT_GE(results[0], 0);
    EXPECT_LT(results[0], static_cast<std::int64_t>(kThreads));
    EXPECT_EQ(wt.winner(), results[0]);
  }
}

TEST(WinnerTree, ResetAllowsNewTournament) {
  WinnerTree wt(4, 0);
  Rng rng(5);
  EXPECT_EQ(wt.compete(0, 11, rng), 11);
  wt.reset();
  EXPECT_EQ(wt.winner(), WinnerTree::kUndecided);
  EXPECT_EQ(wt.compete(2, 22, rng), 22);
}

TEST(WinnerTree, NonPowerOfTwoSlots) {
  WinnerTree wt(5, 0);
  Rng rng(6);
  EXPECT_EQ(wt.compete(4, 44, rng), 44);
  EXPECT_EQ(wt.compete(0, 1, rng), 44);
}

// ------------------------------------------------------------ FatTree

TEST(FatTree, RankMappingIsInOrderTraversal) {
  // In-order traversal of the heap-layout complete BST must produce ranks
  // 0..S-1 in order.
  for (std::uint32_t levels : {1u, 2u, 3u, 4u, 6u}) {
    FatTree ft(levels, 1);
    const std::uint64_t s = ft.node_count();
    std::vector<std::uint64_t> rank_to_node(s);
    for (std::uint64_t f = 0; f < s; ++f) {
      const std::uint64_t r = ft.rank_of(f);
      ASSERT_LT(r, s);
      rank_to_node[r] = f;
    }
    // In-order walk.
    std::vector<std::uint64_t> inorder;
    std::vector<std::pair<std::uint64_t, bool>> stack{{0, false}};
    while (!stack.empty()) {
      auto [f, expanded] = stack.back();
      stack.pop_back();
      if (f >= s) continue;
      if (expanded) {
        inorder.push_back(f);
      } else {
        stack.emplace_back(ft.right(f), false);
        stack.emplace_back(f, true);
        stack.emplace_back(ft.left(f), false);
      }
    }
    for (std::uint64_t r = 0; r < s; ++r) {
      EXPECT_EQ(inorder[r], rank_to_node[r]) << "levels=" << levels << " rank=" << r;
    }
  }
}

TEST(FatTree, NodeOfRankIsInverse) {
  for (std::uint32_t levels : {1u, 2u, 5u, 8u}) {
    const std::uint64_t s = (std::uint64_t{1} << levels) - 1;
    for (std::uint64_t f = 0; f < s; ++f) {
      EXPECT_EQ(FatTree::node_of_rank(levels, FatTree::rank_of_node(levels, f)), f);
    }
  }
}

TEST(FatTree, WriteCellAndReadBack) {
  FatTree ft(3, 4);  // 7 nodes x 4 copies
  std::vector<std::int64_t> slice{10, 11, 12, 13, 14, 15, 16};
  Rng rng(1);
  ft.write_cell(0, 2, slice[ft.rank_of(0)]);
  // All reads of node 0 return the root's slice value: either the written
  // copy or the fallback.
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(ft.read(0, slice, rng), slice[ft.rank_of(0)]);
  }
}

TEST(FatTree, FallbackCountsMisses) {
  FatTree ft(2, 8);
  std::vector<std::int64_t> slice{100, 101, 102};
  Rng rng(3);
  std::uint64_t misses = 0;
  const std::int64_t v = ft.read(1, slice, rng, &misses);  // nothing written yet
  EXPECT_EQ(v, slice[ft.rank_of(1)]);
  EXPECT_EQ(misses, 1u);
}

TEST(FatTree, WriteMostFillsMostCells) {
  FatTree ft(4, 8);  // 15 nodes x 8 copies = 120 cells
  std::vector<std::int64_t> slice(15);
  for (int i = 0; i < 15; ++i) slice[i] = 1000 + i;
  // 64 writers with the paper's log P quota.
  for (std::uint32_t p = 0; p < 64; ++p) {
    Rng rng(500 + p);
    ft.write_random_cells(slice, ft.fill_quota(64), rng);
  }
  EXPECT_GT(ft.fill_fraction(), 0.9);
  // Every filled read agrees with the authoritative slice value.
  Rng rng(9);
  for (std::uint64_t f = 0; f < ft.node_count(); ++f) {
    for (int i = 0; i < 20; ++i) {
      EXPECT_EQ(ft.read(f, slice, rng), slice[ft.rank_of(f)]);
    }
  }
}

TEST(FatTree, ResetEmptiesAllCells) {
  FatTree ft(2, 2);
  std::vector<std::int64_t> slice{5, 6, 7};
  ft.write_cell(0, 0, slice[ft.rank_of(0)]);
  ft.write_cell(0, 1, slice[ft.rank_of(0)]);
  EXPECT_GT(ft.fill_fraction(), 0.0);
  ft.reset();
  EXPECT_EQ(ft.fill_fraction(), 0.0);
}

TEST(FatTree, ConcurrentWriteMostAndReaders) {
  FatTree ft(3, 4);
  std::vector<std::int64_t> slice{0, 1, 2, 3, 4, 5, 6};
  std::atomic<bool> bad{false};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(t);
      for (int i = 0; i < 200; ++i) {
        ft.write_random_cells(slice, 2, rng);
        const std::uint64_t f = rng.below(ft.node_count());
        if (ft.read(f, slice, rng) != slice[ft.rank_of(f)]) bad.store(true);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(bad.load());
}

}  // namespace
