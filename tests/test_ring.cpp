// Flight-recorder ring, latency sketch, and live monitor tests.
//
// RingTorture is the seqlock contract check: one writer pushing derivable
// events flat out, racing readers snapshotting concurrently.  Readers must
// never observe a torn event (payload fields are functions of the sequence
// number, so any mix of two events is detectable) and the writer must run to
// completion without ever waiting on a reader.  The TSan CI job re-runs this
// suite — the ring's relaxed word stores are the exact code a racy
// implementation would trip over.
#include <atomic>
#include <cstdint>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/sort.h"
#include "telemetry/ring.h"
#include "telemetry/schema.h"
#include "telemetry/sketch.h"

namespace tel = wfsort::telemetry;

namespace {

// The i-th torture event: every field derivable from t, so a reader can
// verify that the 3 words it copied belong to ONE push.
tel::FlightEvent derived_event(std::uint64_t i) {
  tel::FlightEvent e{};
  e.t = i;
  e.value = i * 0x9e3779b97f4a7c15ULL + 1;
  e.a32 = static_cast<std::uint32_t>(i * 2654435761ULL);
  e.tid = static_cast<std::uint16_t>(i);
  e.kind = static_cast<std::uint8_t>(i % 7);
  e.a8 = static_cast<std::uint8_t>(i % 251);
  return e;
}

bool event_consistent(const tel::FlightEvent& e) {
  const tel::FlightEvent want = derived_event(e.t);
  return e.value == want.value && e.a32 == want.a32 && e.tid == want.tid &&
         e.kind == want.kind && e.a8 == want.a8;
}

TEST(RingTorture, ConcurrentReadersSeeNoTornEvents) {
  tel::FlightRing ring(64);
  constexpr std::uint64_t kPushes = 200000;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> verified{0};
  std::atomic<bool> torn{false};

  std::vector<std::jthread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      std::uint64_t cursor = 0;
      std::uint64_t last_t = 0;
      bool have_last = false;
      while (!done.load(std::memory_order_acquire) ||
             cursor < ring.total()) {
        const auto res = ring.read_from(cursor);
        for (const tel::FlightEvent& e : res.events) {
          if (!event_consistent(e)) {
            torn.store(true, std::memory_order_relaxed);
            return;
          }
          // Within one reader's stream, sequence numbers only move forward.
          if (have_last && e.t <= last_t) {
            torn.store(true, std::memory_order_relaxed);
            return;
          }
          last_t = e.t;
          have_last = true;
          verified.fetch_add(1, std::memory_order_relaxed);
        }
        cursor = res.next;
      }
    });
  }

  // The writer: pushes flat out and must finish regardless of the readers —
  // that it returns at all is the wait-freedom half of the contract.
  for (std::uint64_t i = 0; i < kPushes; ++i) ring.push(derived_event(i));
  done.store(true, std::memory_order_release);
  readers.clear();  // join

  EXPECT_FALSE(torn.load());
  EXPECT_EQ(ring.total(), kPushes);
  EXPECT_GT(verified.load(), 0u);
}

TEST(RingTorture, SnapshotUnderWriteIsAlwaysConsistent) {
  tel::FlightRing ring(8);  // tiny ring maximizes slot reuse races
  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};
  std::jthread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const tel::FlightEvent& e : ring.snapshot()) {
        if (!event_consistent(e)) {
          torn.store(true, std::memory_order_relaxed);
          return;
        }
      }
    }
  });
  for (std::uint64_t i = 0; i < 150000; ++i) ring.push(derived_event(i));
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_FALSE(torn.load());
}

TEST(Ring, KeepsExactLogicalWindow) {
  tel::FlightRing ring(3);  // padded to 4 slots internally; window stays 3
  for (std::uint64_t i = 0; i < 5; ++i) ring.push(derived_event(i));
  const std::vector<tel::FlightEvent> events = ring.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].t, 2u);  // oldest first
  EXPECT_EQ(events[1].t, 3u);
  EXPECT_EQ(events[2].t, 4u);
  EXPECT_EQ(ring.total(), 5u);
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.capacity(), 3u);
}

TEST(Ring, CapacityZeroCountsButRecordsNothing) {
  tel::FlightRing ring(0);
  for (std::uint64_t i = 0; i < 10; ++i) ring.push(derived_event(i));
  EXPECT_EQ(ring.total(), 10u);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_TRUE(ring.snapshot().empty());
}

TEST(Ring, ReadFromReportsDroppedAndResumes) {
  tel::FlightRing ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) ring.push(derived_event(i));
  const auto res = ring.read_from(0);
  EXPECT_EQ(res.dropped, 6u);  // events 0..5 were overwritten
  ASSERT_EQ(res.events.size(), 4u);
  EXPECT_EQ(res.events.front().t, 6u);
  EXPECT_EQ(res.next, 10u);
  // Incremental resume: nothing new yet, then exactly the next event.
  EXPECT_TRUE(ring.read_from(res.next).events.empty());
  ring.push(derived_event(10));
  const auto res2 = ring.read_from(res.next);
  EXPECT_EQ(res2.dropped, 0u);
  ASSERT_EQ(res2.events.size(), 1u);
  EXPECT_EQ(res2.events.front().t, 10u);
}

// --- latency sketch ---

TEST(Sketch, QuantilesWithinDocumentedError) {
  tel::LatencySketch sk;
  constexpr std::uint64_t kN = 200000;
  for (std::uint64_t v = 1; v <= kN; ++v) sk.add(v);
  EXPECT_EQ(sk.count(), kN);
  const double tol = tel::LatencySketch::kRelativeError;
  const auto close_to = [tol](std::uint64_t got, double want) {
    return static_cast<double>(got) >= want * (1.0 - tol) &&
           static_cast<double>(got) <= want * (1.0 + tol) + 1.0;
  };
  EXPECT_TRUE(close_to(sk.quantile(0.5), 0.5 * kN))
      << "p50=" << sk.quantile(0.5);
  EXPECT_TRUE(close_to(sk.quantile(0.99), 0.99 * kN))
      << "p99=" << sk.quantile(0.99);
  EXPECT_TRUE(close_to(sk.quantile(0.999), 0.999 * kN))
      << "p999=" << sk.quantile(0.999);
  EXPECT_EQ(sk.max(), kN);
}

TEST(Sketch, MergeMatchesCombinedStream) {
  tel::LatencySketch a, b, both;
  // Two disjoint deterministic streams (an LCG; no wall-clock, no libc rand).
  std::uint64_t x = 12345;
  for (int i = 0; i < 50000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::uint64_t v = (x >> 33) + 1;
    ((i % 2 == 0) ? a : b).add(v);
    both.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.sum(), both.sum());
  EXPECT_EQ(a.max(), both.max());
  EXPECT_EQ(a.quantile(0.5), both.quantile(0.5));
  EXPECT_EQ(a.quantile(0.99), both.quantile(0.99));
}

TEST(Sketch, EmptyAndZeroHandling) {
  tel::LatencySketch sk;
  EXPECT_EQ(sk.count(), 0u);
  EXPECT_EQ(sk.quantile(0.5), 0u);
  sk.add(0);
  EXPECT_EQ(sk.count(), 1u);
  EXPECT_EQ(sk.quantile(0.5), 0u);
}

// --- live monitor end-to-end ---

TEST(Monitor, MonitoredSortEmitsValidStreamWithNonzeroLatencies) {
  const std::string path = ::testing::TempDir() + "wfsort_monitor_test.jsonl";
  { std::ofstream trunc(path, std::ios::trunc); }

  std::vector<std::uint64_t> data(150000);
  std::uint64_t x = 99991;
  for (auto& v : data) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    v = x >> 11;
  }
  wfsort::Options opts;
  opts.threads = 4;
  opts.telemetry = tel::Level::kFull;
  opts.monitor_path = path;
  opts.monitor_interval_ms = 5;
  wfsort::sort(std::span<std::uint64_t>(data), opts);
  for (std::size_t i = 1; i < data.size(); ++i) ASSERT_LE(data[i - 1], data[i]);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  std::string error;
  ASSERT_TRUE(tel::validate_monitor_jsonl(text, &error)) << error;

  // The final sample must carry nonzero per-phase and per-job latency
  // quantiles — the stream is useless if the sketches never filled.
  std::size_t pos = 0;
  bool saw_final = false;
  while (pos < text.size()) {
    const std::size_t end = text.find('\n', pos);
    const std::string line =
        text.substr(pos, end == std::string::npos ? end : end - pos);
    pos = end == std::string::npos ? text.size() : end + 1;
    if (line.empty()) continue;
    std::string perr;
    const wfsort::Json rec = wfsort::Json::parse(line, &perr);
    ASSERT_TRUE(perr.empty()) << perr;
    const wfsort::Json* final_flag = rec.find("final");
    if (final_flag == nullptr || !final_flag->as_bool()) continue;
    saw_final = true;
    EXPECT_GT(rec.at("events").as_u64(), 0u);
    bool phase_quantiles = false;
    for (const auto& [name, ph] : rec.at("phases").object_items()) {
      if (ph.at("count").as_u64() > 0 && ph.at("p50_us").as_u64() > 0 &&
          ph.at("p99_us").as_u64() > 0 && ph.at("p999_us").as_u64() > 0) {
        phase_quantiles = true;
      }
    }
    EXPECT_TRUE(phase_quantiles) << "no phase with nonzero p50/p99/p999";
    ASSERT_NE(rec.find("jobs"), nullptr);
    EXPECT_GT(rec.at("jobs").at("p50_us").as_u64(), 0u);
  }
  EXPECT_TRUE(saw_final);
}

}  // namespace
