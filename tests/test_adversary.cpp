// Tests for the adversary engine: fault scripts and their JSON form, canned
// adversaries, the round-hook compiler, the mid-run invariant oracle, the
// scenario runner's determinism, and the full search -> artifact -> replay
// -> shrink round trip on the known-unsound Figure-6 pruning rule.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "common/json.h"
#include "core/sort.h"
#include "exp/workloads.h"
#include "pram/machine.h"
#include "pram/scheduler.h"
#include "pramsort/driver.h"
#include "runtime/adversaries.h"
#include "runtime/fault_plan.h"
#include "runtime/fault_script.h"
#include "runtime/oracle.h"
#include "runtime/scenario.h"
#include "runtime/sched_family.h"
#include "runtime/search.h"

namespace {

namespace rt = wfsort::runtime;
using wfsort::Json;

// ------------------------------------------------------------------- JSON

TEST(Json, DumpParseRoundTrip) {
  Json j = Json::object();
  j.set("i", std::int64_t{-42});
  j.set("b", true);
  j.set("s", "hi \"there\"\n");
  Json arr = Json::array();
  arr.push_back(1).push_back(Json()).push_back(2.5);
  j.set("a", std::move(arr));

  std::string error;
  const Json back = Json::parse(j.dump(), &error);
  EXPECT_TRUE(error.empty()) << error;
  EXPECT_EQ(back.at("i").as_int(), -42);
  EXPECT_TRUE(back.at("b").as_bool());
  EXPECT_EQ(back.at("s").as_string(), "hi \"there\"\n");
  EXPECT_EQ(back.at("a").items().size(), 3u);
  EXPECT_TRUE(back.at("a").items()[1].is_null());
  EXPECT_DOUBLE_EQ(back.at("a").items()[2].as_double(), 2.5);
  EXPECT_EQ(back.find("missing"), nullptr);
}

TEST(Json, ParseRejectsGarbage) {
  for (const char* bad : {"", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated",
                          "{\"a\":1} trailing", "nul"}) {
    std::string error;
    Json::parse(bad, &error);
    EXPECT_FALSE(error.empty()) << "accepted: " << bad;
  }
}

// ---------------------------------------------------------- names & enums

TEST(FaultScript, NameParseInverses) {
  for (const auto a : {rt::FaultAction::kKill, rt::FaultAction::kSuspend,
                       rt::FaultAction::kRevive, rt::FaultAction::kSleep}) {
    rt::FaultAction back{};
    ASSERT_TRUE(rt::parse_fault_action(rt::fault_action_name(a), &back));
    EXPECT_EQ(back, a);
  }
  for (const auto t :
       {rt::TriggerKind::kRound, rt::TriggerKind::kPhase2Entry, rt::TriggerKind::kPhase3Entry,
        rt::TriggerKind::kFirstWatClaim, rt::TriggerKind::kLastWatClaim,
        rt::TriggerKind::kInstallCas}) {
    rt::TriggerKind back{};
    ASSERT_TRUE(rt::parse_trigger_kind(rt::trigger_kind_name(t), &back));
    EXPECT_EQ(back, t);
  }
  for (const auto k : {rt::FailureKind::kNone, rt::FailureKind::kHang,
                       rt::FailureKind::kUnsorted, rt::FailureKind::kValidation,
                       rt::FailureKind::kOracle, rt::FailureKind::kOwnStep}) {
    rt::FailureKind back{};
    ASSERT_TRUE(rt::parse_failure_kind(rt::failure_kind_name(k), &back));
    EXPECT_EQ(back, k);
  }
  rt::FaultAction a{};
  EXPECT_FALSE(rt::parse_fault_action("explode", &a));
}

// ----------------------------------------------------------- script model

TEST(FaultScript, JsonRoundTrip) {
  rt::FaultScript s;
  s.add({rt::FaultAction::kKill, rt::TriggerKind::kRound, 3, 17, 0});
  s.add({rt::FaultAction::kSleep, rt::TriggerKind::kRound, 1, 5, 64});
  s.add({rt::FaultAction::kSuspend, rt::TriggerKind::kRound, 2, 9, 0});
  s.add({rt::FaultAction::kRevive, rt::TriggerKind::kRound, 2, 30, 0});

  rt::FaultScript back;
  std::string error;
  ASSERT_TRUE(rt::script_from_json(rt::script_to_json(s), &back, &error)) << error;
  EXPECT_EQ(back, s);

  // Through text as well, as an artifact would carry it.
  const Json reparsed = Json::parse(rt::script_to_json(s).dump(), &error);
  ASSERT_TRUE(error.empty()) << error;
  ASSERT_TRUE(rt::script_from_json(reparsed, &back, &error)) << error;
  EXPECT_EQ(back, s);
}

TEST(FaultScript, ValidateCatchesBadScripts) {
  // Kill every processor: no survivor.
  rt::FaultScript all;
  all.add({rt::FaultAction::kKill, rt::TriggerKind::kRound, 0, 5, 0});
  all.add({rt::FaultAction::kKill, rt::TriggerKind::kRound, 1, 5, 0});
  EXPECT_FALSE(all.validate(2).empty());
  EXPECT_TRUE(all.validate(3).empty());

  // Target out of range.
  rt::FaultScript range;
  range.add({rt::FaultAction::kKill, rt::TriggerKind::kRound, 7, 5, 0});
  EXPECT_FALSE(range.validate(4).empty());

  // Suspend with no later revive or kill: the run could never finish.
  rt::FaultScript stuck;
  stuck.add({rt::FaultAction::kSuspend, rt::TriggerKind::kRound, 1, 5, 0});
  EXPECT_FALSE(stuck.validate(4).empty());
  stuck.add({rt::FaultAction::kRevive, rt::TriggerKind::kRound, 1, 9, 0});
  EXPECT_TRUE(stuck.validate(4).empty());

  // Sleep of zero duration.
  rt::FaultScript nosleep;
  nosleep.add({rt::FaultAction::kSleep, rt::TriggerKind::kRound, 0, 5, 0});
  EXPECT_FALSE(nosleep.validate(4).empty());
}

TEST(FaultScript, SymbolicScriptsAreNotConcrete) {
  rt::FaultScript s;
  s.add({rt::FaultAction::kKill, rt::TriggerKind::kPhase3Entry, 1, 0, 0});
  EXPECT_FALSE(s.concrete());
  rt::ProbeReport probe;
  probe.phase3_entry = 40;
  const rt::FaultScript resolved = rt::resolve_script(s, probe);
  EXPECT_TRUE(resolved.concrete());
  EXPECT_EQ(resolved.events[0].at, 40u);
}

// ------------------------------------------------------ canned adversaries

TEST(Adversaries, CannedScriptsValidate) {
  EXPECT_TRUE(rt::fail_stop_at_round(10, 1, 7).validate(8).empty());
  EXPECT_TRUE(rt::single_survivor(10, 3, 8).validate(8).empty());
  EXPECT_TRUE(rt::crash_and_revive(10, 40, 0, 7).validate(8).empty());
  EXPECT_TRUE(rt::staggered_kills(5, 3, 8, 2).validate(8).empty());

  const auto lone = rt::single_survivor(10, 3, 8);
  const auto killed = lone.killed_targets();
  EXPECT_EQ(killed.size(), 7u);
  EXPECT_EQ(std::find(killed.begin(), killed.end(), 3u), killed.end());

  const auto stag = rt::staggered_kills(5, 3, 8, 2);
  EXPECT_EQ(stag.killed_targets().size(), 6u);
}

TEST(Adversaries, RoundHookKillsAndRevives) {
  // A crew of sleepy workers that spin on yields; the script suspends one,
  // revives it, kills another.  The hook must track Machine state exactly.
  pram::Machine m;
  pram::SynchronousScheduler sched;
  auto keys = wfsort::exp::make_word_keys(32, wfsort::exp::Dist::kShuffled, 5);
  rt::FaultScript s;
  s.add({rt::FaultAction::kKill, rt::TriggerKind::kRound, 1, 4, 0});
  s.add({rt::FaultAction::kSleep, rt::TriggerKind::kRound, 2, 4, 6});
  // Reviving a killed processor must be ignored, not resurrect it.
  s.add({rt::FaultAction::kRevive, rt::TriggerKind::kRound, 1, 12, 0});
  // Targets beyond the crew are ignored.
  s.add({rt::FaultAction::kKill, rt::TriggerKind::kRound, 300, 4, 0});
  m.set_round_hook(rt::make_round_hook(s));
  auto res = wfsort::sim::run_det_sort(m, keys, 4, sched);
  EXPECT_TRUE(res.sorted);
  EXPECT_TRUE(m.killed(1));
  EXPECT_FALSE(m.killed(2));
  EXPECT_TRUE(m.finished(2));  // slept, woke, finished
}

// ------------------------------------------------------------- fault plan

TEST(FaultPlan, StepAccountingCountsEveryCheckpoint) {
  rt::FaultPlan plan(2);
  EXPECT_EQ(plan.steps(0), 0u);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(plan.checkpoint(0));
  EXPECT_EQ(plan.steps(0), 5u);
  EXPECT_EQ(plan.steps(1), 0u);

  plan.crash_at(1, 3);
  EXPECT_TRUE(plan.checkpoint(1));
  EXPECT_TRUE(plan.checkpoint(1));
  EXPECT_FALSE(plan.checkpoint(1));  // third checkpoint: crash
  EXPECT_EQ(plan.steps(1), 3u);
  EXPECT_EQ(plan.crashes(), 1u);
}

TEST(FaultPlanDeathTest, RejectsTriggerZero) {
  rt::FaultPlan plan(2);
  EXPECT_DEATH(plan.crash_at(0, 0), "at >= 1");
  EXPECT_DEATH(plan.sleep_at(0, 0, std::chrono::microseconds(10)), "at >= 1");
}

TEST(FaultPlan, ProgramPlanFromScript) {
  rt::FaultScript s;
  s.add({rt::FaultAction::kKill, rt::TriggerKind::kRound, 1, 2, 0});
  s.add({rt::FaultAction::kSleep, rt::TriggerKind::kRound, 0, 1, 50});
  rt::FaultPlan plan(2);
  rt::program_plan(s, plan);
  EXPECT_TRUE(plan.checkpoint(1));
  EXPECT_FALSE(plan.checkpoint(1));  // the programmed crash
  EXPECT_TRUE(plan.checkpoint(0));   // the programmed sleep just delays
}

// ------------------------------------------------------------------ oracle

TEST(Oracle, PassesOnHealthyRunAndCatchesPokedCorruption) {
  pram::Machine m;
  auto keys = wfsort::exp::make_word_keys(64, wfsort::exp::Dist::kShuffled, 7);
  auto res = wfsort::sim::run_det_sort_sync(m, keys, 8);
  ASSERT_TRUE(res.sorted);

  rt::SortOracle healthy(res.layout, 0);
  EXPECT_TRUE(healthy.check(m));
  EXPECT_FALSE(healthy.violated());

  // Duplicate a place.  Snapshot after the poke (a fresh oracle) so the
  // write-once check passes and the uniqueness invariant is the one to trip.
  const pram::Word orig = m.mem().peek(res.layout.place_addr(0));
  m.mem().poke(res.layout.place_addr(0), m.mem().peek(res.layout.place_addr(1)));
  rt::SortOracle dup(res.layout, 0);
  EXPECT_FALSE(dup.check(m));
  EXPECT_TRUE(dup.violated());
  EXPECT_NE(dup.error().find("assigned twice"), std::string::npos) << dup.error();
  m.mem().poke(res.layout.place_addr(0), orig);

  // A key changing between checks means a record was lost.
  rt::SortOracle keyo(res.layout, 0);
  ASSERT_TRUE(keyo.check(m));
  m.mem().poke(res.layout.key_addr(3), 999999);
  EXPECT_FALSE(keyo.check(m));
  EXPECT_NE(keyo.error().find("key of element 3"), std::string::npos) << keyo.error();
}

TEST(Oracle, CatchesChildPointerMutation) {
  pram::Machine m;
  auto keys = wfsort::exp::make_word_keys(32, wfsort::exp::Dist::kShuffled, 9);
  auto res = wfsort::sim::run_det_sort_sync(m, keys, 4);
  ASSERT_TRUE(res.sorted);
  rt::SortOracle oracle(res.layout, 0);
  ASSERT_TRUE(oracle.check(m));
  // Rewire a set child pointer: write-once monotonicity must trip.
  for (pram::Word i = 0; i < 32; ++i) {
    const pram::Addr a = res.layout.child_addr(i, wfsort::sim::SortLayout::kSmall);
    if (m.mem().peek(a) >= 0) {
      m.mem().poke(a, m.mem().peek(a) == 5 ? 6 : 5);
      break;
    }
  }
  EXPECT_FALSE(oracle.check(m));
  EXPECT_NE(oracle.error().find("child"), std::string::npos) << oracle.error();
}

// ---------------------------------------------------------------- scenario

rt::ScenarioSpec small_det_spec() {
  rt::ScenarioSpec spec;
  spec.substrate = rt::Substrate::kSim;
  spec.n = 64;
  spec.procs = 8;
  spec.variant = rt::SortKind::kDet;
  spec.oracle_period = 16;
  return spec;
}

TEST(Scenario, FaultlessRunsPassEverywhere) {
  rt::ScenarioSpec spec = small_det_spec();
  for (const rt::SchedSpec& sched : rt::all_sched_specs(spec.procs, 11)) {
    spec.sched = sched;
    const rt::ScenarioResult res = rt::run_scenario(spec);
    EXPECT_TRUE(res.ok()) << rt::failure_kind_name(res.failure) << ": " << res.detail;
    EXPECT_GT(res.rounds, 0u);
    EXPECT_GT(res.max_finish_steps, 0u);
  }

  spec.variant = rt::SortKind::kLc;
  spec.oracle_period = 0;
  spec.sched = rt::SchedSpec{};
  EXPECT_TRUE(rt::run_scenario(spec).ok());

  rt::ScenarioSpec native = small_det_spec();
  native.substrate = rt::Substrate::kNative;
  native.procs = 4;
  native.n = 5000;
  const rt::ScenarioResult res = rt::run_scenario(native);
  EXPECT_TRUE(res.ok()) << res.detail;
  EXPECT_GT(res.max_finish_steps, 0u);
}

TEST(Scenario, DeterministicAcrossRepeats) {
  rt::ScenarioSpec spec = small_det_spec();
  spec.sched = {rt::SchedFamily::kRandomSubset, 50, 77};
  spec.script = rt::fail_stop_at_round(20, 1, 6);
  const rt::ScenarioResult a = rt::run_scenario(spec);
  const rt::ScenarioResult b = rt::run_scenario(spec);
  EXPECT_EQ(a.failure, b.failure);
  EXPECT_EQ(a.detail, b.detail);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.total_ops, b.total_ops);
  EXPECT_EQ(a.max_finish_steps, b.max_finish_steps);
}

TEST(Scenario, OwnStepBoundViolationIsReported) {
  rt::ScenarioSpec spec = small_det_spec();
  spec.own_step_bound = 1;  // absurdly tight: every finisher exceeds it
  const rt::ScenarioResult res = rt::run_scenario(spec);
  EXPECT_EQ(res.failure, rt::FailureKind::kOwnStep);
  EXPECT_NE(res.detail.find("own steps"), std::string::npos);
}

TEST(Scenario, SpecJsonRoundTrip) {
  rt::ScenarioSpec spec = small_det_spec();
  spec.dist = wfsort::exp::Dist::kOrganPipe;
  spec.prune = wfsort::sim::PlacePrune::kNone;
  spec.memory = pram::MemoryModel::kStall;
  spec.sched = {rt::SchedFamily::kHalfFreeze, 8, 3};
  spec.script = rt::fail_stop_at_round(9, 2, 5);
  spec.own_step_bound = 123456;

  rt::ScenarioSpec back;
  std::string error;
  ASSERT_TRUE(rt::spec_from_json(rt::spec_to_json(spec), &back, &error)) << error;
  EXPECT_EQ(back.n, spec.n);
  EXPECT_EQ(back.dist, spec.dist);
  EXPECT_EQ(back.procs, spec.procs);
  EXPECT_EQ(back.prune, spec.prune);
  EXPECT_EQ(back.memory, spec.memory);
  EXPECT_EQ(back.sched, spec.sched);
  EXPECT_EQ(back.script, spec.script);
  EXPECT_EQ(back.own_step_bound, spec.own_step_bound);

  // A script that kills the whole crew must be rejected at load time.
  Json j = rt::spec_to_json(spec);
  Json bad = rt::script_to_json(rt::fail_stop_at_round(9, 0, 7));
  j.set("script", std::move(bad));
  EXPECT_FALSE(rt::spec_from_json(j, &back, &error));
  EXPECT_NE(error.find("invalid script"), std::string::npos) << error;
}

// ------------------------------------------------------------------ probe

TEST(Probe, LandmarksAreOrderedAndPresent) {
  rt::ScenarioSpec spec = small_det_spec();
  const rt::ProbeReport probe = rt::probe_scenario(spec);
  EXPECT_GT(probe.rounds, 0u);
  EXPECT_GT(probe.first_wat_claim, 0u);
  EXPECT_GE(probe.last_wat_claim, probe.first_wat_claim);
  EXPECT_GT(probe.phase2_entry, 0u);
  EXPECT_GT(probe.phase3_entry, probe.phase2_entry);
  // 64 elements insert below the root: 63 install CASes.
  EXPECT_EQ(probe.install_cas_rounds.size(), 63u);
  EXPECT_TRUE(std::is_sorted(probe.install_cas_rounds.begin(),
                             probe.install_cas_rounds.end()));
}

// ------------------------------------------- the acceptance round trip

TEST(SearchRoundTrip, PlacedPruneBugIsFoundReplayedAndShrunk) {
  // Figure 6's placed-prune rule is documented-unsound under crashes
  // (DESIGN.md): the searching adversary must find a failing script, the
  // artifact must replay to the identical failure, and the shrunk artifact
  // must still reproduce it.
  rt::ScenarioSpec spec = small_det_spec();
  spec.prune = wfsort::sim::PlacePrune::kPlaced;

  rt::SearchOptions sopts;
  sopts.max_runs = 300;
  rt::ReplayArtifact artifact;
  rt::SearchStats stats;
  ASSERT_TRUE(rt::search_for_violation(spec, sopts, &artifact, &stats))
      << "no violation in " << stats.runs << " runs";
  EXPECT_NE(artifact.failure, rt::FailureKind::kNone);

  // Serialize -> parse -> replay: identical failure.
  rt::ReplayArtifact loaded;
  std::string error;
  ASSERT_TRUE(rt::artifact_from_text(rt::artifact_to_text(artifact), &loaded, &error))
      << error;
  const rt::ReplayOutcome replayed = rt::replay(loaded);
  EXPECT_TRUE(replayed.reproduced)
      << "replay got " << rt::failure_kind_name(replayed.result.failure) << ": "
      << replayed.result.detail;
  EXPECT_TRUE(replayed.exact);

  // Shrink: no larger than the original, still reproduces.
  const rt::ReplayArtifact shrunk = rt::shrink_artifact(artifact);
  EXPECT_LE(shrunk.spec.script.events.size(), artifact.spec.script.events.size());
  EXPECT_GE(shrunk.spec.script.events.size(), 1u);
  const rt::ReplayOutcome again = rt::replay(shrunk);
  EXPECT_TRUE(again.reproduced)
      << "shrunk replay got " << rt::failure_kind_name(again.result.failure) << ": "
      << again.result.detail;
}

TEST(SearchRoundTrip, SoundPolicySurvivesBudgetedSweep) {
  rt::ScenarioSpec spec = small_det_spec();
  spec.n = 48;
  spec.procs = 6;
  rt::SearchOptions sopts;
  sopts.max_runs = 60;
  sopts.random_scripts = 8;
  rt::ReplayArtifact artifact;
  EXPECT_FALSE(rt::search_for_violation(spec, sopts, &artifact))
      << rt::failure_kind_name(artifact.failure) << ": " << artifact.detail;
}

TEST(SearchRoundTrip, ArtifactFileRoundTrip) {
  rt::ReplayArtifact artifact;
  artifact.spec = small_det_spec();
  artifact.spec.script = rt::single_survivor(12, 0, 8);
  artifact.failure = rt::FailureKind::kUnsorted;
  artifact.detail = "synthetic";

  const std::string path = ::testing::TempDir() + "/wfsort_artifact_rt.json";
  ASSERT_TRUE(rt::write_artifact(artifact, path));
  rt::ReplayArtifact loaded;
  std::string error;
  ASSERT_TRUE(rt::load_artifact(path, &loaded, &error)) << error;
  EXPECT_EQ(loaded.failure, artifact.failure);
  EXPECT_EQ(loaded.detail, artifact.detail);
  EXPECT_EQ(loaded.spec.script, artifact.spec.script);
  std::remove(path.c_str());
}

}  // namespace
