// Shard-merge equivalence for pram::Metrics.
//
// The parallel round engine records cell-level metrics into per-thread
// Metrics::Shard scratch and folds them in with merge_shard at round commit.
// These tests prove the contract that makes that legal: issuing a round's
// record_* calls through any partition of the cells into shards — in any
// per-shard order — then merging, yields exactly the state the sequential
// record path produces, including the order-sensitive observables (which
// cell holds the hottest-cell title on ties, and in which round).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "pram/memory.h"
#include "pram/metrics.h"

namespace {

using pram::Addr;
using pram::Memory;
using pram::Metrics;
using pram::ProcId;

// One round's worth of cell records, in the canonical (first-touch) order
// the sequential engine would serve them.
struct CellRecord {
  Addr addr;
  std::uint32_t count;
  Memory::RegionId region;
};

struct RoundScript {
  std::vector<CellRecord> cells;
  std::vector<ProcId> op_procs;   // record_proc_op stream
  std::vector<ProcId> finishers;  // record_proc_finish at round end
  std::uint64_t stalls = 0;
};

// Every aggregate observable Metrics exposes, for whole-state comparison.
struct Snapshot {
  std::uint64_t rounds, total_ops, stalls, qrqw_time;
  std::size_t max_contention;
  Addr hottest_addr;
  std::uint64_t hottest_round;
  std::vector<std::uint64_t> hist;
  std::map<std::string, std::size_t> regions;
  std::vector<std::uint64_t> proc_ops;
  std::vector<std::uint64_t> finish_steps;

  friend bool operator==(const Snapshot&, const Snapshot&) = default;
};

Snapshot snapshot(const Metrics& m) {
  Snapshot s{m.rounds(),       m.total_ops(),     m.stalls(),
             m.qrqw_time(),    m.max_cell_contention(), m.hottest_addr(),
             m.hottest_round(), {},               m.region_contention(),
             m.proc_ops(),     m.finish_steps()};
  const wfsort::Histogram& h = m.contention_histogram();
  for (std::size_t b = 0; b < h.buckets(); ++b) s.hist.push_back(h.count(b));
  return s;
}

// Apply the script through the sequential record path.
void run_sequential(Metrics& m, const Memory& mem, const std::vector<RoundScript>& rounds,
                    std::size_t nprocs) {
  m.ensure_procs(nprocs);
  for (const RoundScript& r : rounds) {
    m.begin_round(mem);
    for (const CellRecord& c : r.cells) m.record_cell(c.addr, c.count, c.region);
    for (ProcId p : r.op_procs) m.record_proc_op(p);
    if (r.stalls != 0) m.record_stall(r.stalls);
    for (ProcId p : r.finishers) m.record_proc_finish(p);
    m.end_round();
  }
}

// Apply the same script through `nshards` shards.  Cell i goes to shard
// i % nshards with rank i (its canonical position); to exercise order
// independence within a shard, each shard replays its cells in reverse.
void run_sharded(Metrics& m, const Memory& mem, const std::vector<RoundScript>& rounds,
                 std::size_t nprocs, unsigned nshards) {
  m.ensure_procs(nprocs);
  std::vector<Metrics::Shard> shards(nshards);
  for (const RoundScript& r : rounds) {
    m.begin_round(mem);
    for (Metrics::Shard& s : shards) m.init_shard(s);
    std::vector<std::vector<std::pair<std::uint64_t, CellRecord>>> per_shard(nshards);
    for (std::size_t i = 0; i < r.cells.size(); ++i) {
      per_shard[i % nshards].emplace_back(i, r.cells[i]);
    }
    for (unsigned t = 0; t < nshards; ++t) {
      for (auto it = per_shard[t].rbegin(); it != per_shard[t].rend(); ++it) {
        shards[t].record_cell(it->second.addr, it->second.count, it->second.region, it->first);
      }
    }
    for (std::size_t i = 0; i < r.op_procs.size(); ++i) {
      m.record_proc_op_sharded(r.op_procs[i], shards[i % nshards]);
    }
    if (r.stalls != 0) shards[r.stalls % nshards].record_stall(r.stalls);
    for (ProcId p : r.finishers) m.record_proc_finish_presized(p);
    for (Metrics::Shard& s : shards) m.merge_shard(s);
    m.end_round();
  }
}

std::vector<RoundScript> random_script(std::uint64_t seed, std::size_t nrounds,
                                       std::size_t nprocs, const Memory& mem) {
  wfsort::Rng rng(seed);
  std::vector<RoundScript> rounds(nrounds);
  std::vector<ProcId> unfinished(nprocs);
  for (std::size_t p = 0; p < nprocs; ++p) unfinished[p] = static_cast<ProcId>(p);
  for (RoundScript& r : rounds) {
    const std::size_t ncells = rng.below(12) + 1;
    for (std::size_t c = 0; c < ncells; ++c) {
      const Addr a = static_cast<Addr>(rng.below(mem.size()));
      // Small counts force ties, the order-sensitive case merge_shard must
      // resolve by rank; occasional spikes move the global maximum.
      const std::uint32_t count =
          rng.below(10) == 0 ? static_cast<std::uint32_t>(rng.below(64) + 1)
                             : static_cast<std::uint32_t>(rng.below(3) + 1);
      r.cells.push_back(CellRecord{a, count, mem.region_id_of(a)});
    }
    const std::size_t nops = rng.below(20) + 1;
    for (std::size_t i = 0; i < nops; ++i) {
      r.op_procs.push_back(static_cast<ProcId>(rng.below(nprocs)));
    }
    if (rng.coin()) r.stalls = rng.below(8) + 1;
    if (!unfinished.empty() && rng.below(3) == 0) {
      const std::size_t k = rng.below(unfinished.size());
      r.finishers.push_back(unfinished[k]);
      unfinished.erase(unfinished.begin() + static_cast<std::ptrdiff_t>(k));
    }
  }
  return rounds;
}

class MetricsShard : public ::testing::Test {
 protected:
  MetricsShard() {
    mem_.alloc("tree", 64, 0);
    mem_.alloc("done", 16, 0);
    mem_.alloc("out", 48, 0);
  }
  Memory mem_;
};

TEST_F(MetricsShard, MergeMatchesSequentialAccumulation) {
  constexpr std::size_t kProcs = 24;
  for (std::uint64_t seed : {1ULL, 7ULL, 42ULL, 2026ULL}) {
    const auto script = random_script(seed, /*nrounds=*/200, kProcs, mem_);
    Metrics seq(/*histogram_buckets=*/32);
    run_sequential(seq, mem_, script, kProcs);
    for (unsigned nshards : {1u, 2u, 3u, 4u, 8u}) {
      Metrics par(/*histogram_buckets=*/32);
      run_sharded(par, mem_, script, kProcs, nshards);
      EXPECT_EQ(snapshot(seq), snapshot(par)) << "seed=" << seed << " shards=" << nshards;
    }
  }
}

// Ties on the maximum count must resolve to the cell with the smallest
// rank — the first one in canonical order — no matter which shard saw it.
TEST_F(MetricsShard, HottestCellTieResolvesByRank) {
  Metrics seq(16), par(16);
  const std::vector<RoundScript> script = {
      {{{/*addr=*/70, 5, mem_.region_id_of(70)},   // rank 0: first cell at max 5
        {/*addr=*/3, 5, mem_.region_id_of(3)},     // rank 1: tie, must lose
        {/*addr=*/100, 4, mem_.region_id_of(100)}},
       {},
       {},
       0}};
  run_sequential(seq, mem_, script, 1);
  run_sharded(par, mem_, script, 1, /*nshards=*/3);  // ranks 0 and 1 on different shards
  EXPECT_EQ(seq.hottest_addr(), 70u);
  EXPECT_EQ(par.hottest_addr(), 70u);
  EXPECT_EQ(snapshot(seq), snapshot(par));
}

// A later round may only take the hottest-cell title with a strictly
// greater count — equal-count cells in later rounds must not steal it.
TEST_F(MetricsShard, LaterRoundEqualCountKeepsEarlierTitle) {
  Metrics seq(16), par(16);
  const std::vector<RoundScript> script = {
      {{{/*addr=*/10, 6, mem_.region_id_of(10)}}, {}, {}, 0},
      {{{/*addr=*/90, 6, mem_.region_id_of(90)}}, {}, {}, 0}};
  run_sequential(seq, mem_, script, 1);
  run_sharded(par, mem_, script, 1, /*nshards=*/2);
  EXPECT_EQ(seq.hottest_addr(), 10u);
  EXPECT_EQ(seq.hottest_round(), 1u);
  EXPECT_EQ(snapshot(seq), snapshot(par));
}

// Shards may be reused across rounds (the machine reuses its scratch);
// merge_shard must fully reset round-scoped state.
TEST_F(MetricsShard, ShardReuseAcrossRoundsIsClean) {
  Metrics m(16);
  Metrics::Shard s;
  m.begin_round(mem_);
  m.init_shard(s);
  s.record_cell(5, 9, mem_.region_id_of(5), 0);
  s.record_stall(3);
  m.merge_shard(s);
  m.end_round();
  // Second round: the shard carries no residue, so a quiet round records a
  // quiet round.
  m.begin_round(mem_);
  m.init_shard(s);
  s.record_cell(6, 2, mem_.region_id_of(6), 0);
  m.merge_shard(s);
  m.end_round();
  EXPECT_EQ(m.max_cell_contention(), 9u);
  EXPECT_EQ(m.hottest_round(), 1u);
  EXPECT_EQ(m.stalls(), 3u);
  EXPECT_EQ(m.qrqw_time(), 9u + 2u);
  EXPECT_EQ(m.contention_histogram().total(), 2u);
}

}  // namespace
