// Numeric wait-freedom certification (Theorem 1's promise, measured).
//
// The paper's claim is universally quantified: every processor that keeps
// taking steps finishes the sort within a bounded number of ITS OWN steps,
// no matter what the schedule does and no matter which other processors
// crash, stall, or revive.  These tests assert that bound numerically: for
// N in {256, 1024} and a crew of 16, every scheduler family crossed with
// every canned adversary family must leave every finishing processor at or
// under a certified own-step budget.
//
// The budget is C * N * ceil(log2 N) with C = 14, calibrated empirically:
// the worst measured case is the lone-survivor run, where one processor
// inherits the entire job (N=1024: 41179 own steps, N=256: 8503), and the
// budget keeps ~3.5x headroom over it.  A faultless 16-processor run uses
// under 4000 steps per processor at N=1024, so a regression that breaks the
// own-step bound (e.g. a helping loop that degrades to spinning) trips this
// long before it becomes a hang.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "runtime/adversaries.h"
#include "runtime/scenario.h"
#include "runtime/sched_family.h"
#include "runtime/search.h"

namespace {

namespace rt = wfsort::runtime;

std::uint64_t ceil_log2(std::uint64_t n) {
  return std::bit_width(n - 1);
}

std::uint64_t certified_bound(std::uint64_t n) {
  return 14 * n * ceil_log2(n);
}

struct AdversaryCase {
  const char* name;
  rt::FaultScript script;
};

// The canned adversary families from DESIGN.md, sized for a crew of 16.
std::vector<AdversaryCase> adversary_cases(std::uint32_t procs) {
  return {
      {"faultless", rt::FaultScript{}},
      {"fail-stop-half", rt::fail_stop_at_round(64, procs / 2, procs - 1)},
      {"single-survivor", rt::single_survivor(128, 0, procs)},
      {"crash-and-revive-half", rt::crash_and_revive(64, 192, procs / 2, procs - 1)},
      {"staggered-kills", rt::staggered_kills(32, 48, procs, 4)},
  };
}

void certify(std::uint64_t n, std::uint32_t sim_threads = 1) {
  constexpr std::uint32_t kProcs = 16;
  const std::uint64_t bound = certified_bound(n);

  rt::ScenarioSpec spec;
  spec.substrate = rt::Substrate::kSim;
  spec.n = n;
  spec.procs = kProcs;
  spec.variant = rt::SortKind::kDet;
  spec.own_step_bound = bound;
  spec.sim_threads = sim_threads;

  for (const rt::SchedSpec& sched : rt::all_sched_specs(kProcs, 0xce27u)) {
    for (const AdversaryCase& adv : adversary_cases(kProcs)) {
      spec.sched = sched;
      spec.script = adv.script;
      ASSERT_TRUE(spec.script.validate(kProcs).empty());
      const rt::ScenarioResult res = rt::run_scenario(spec);
      EXPECT_TRUE(res.ok())
          << "n=" << n << " sched=" << rt::sched_family_name(sched.family)
          << " adversary=" << adv.name << " failed ("
          << rt::failure_kind_name(res.failure) << "): " << res.detail;
      EXPECT_GT(res.max_finish_steps, 0u)
          << "n=" << n << " sched=" << rt::sched_family_name(sched.family)
          << " adversary=" << adv.name << ": nobody finished";
      EXPECT_LE(res.max_finish_steps, bound);
    }
  }
}

TEST(WaitFreeCert, EveryScheduleAndAdversaryAtN256) {
  certify(256);
}

TEST(WaitFreeCert, EveryScheduleAndAdversaryAtN1024) {
  certify(1024);
}

// The same universal sweep through the sharded round engine: wait-freedom
// certification is about observables, and sim_threads must not change one.
TEST(WaitFreeCert, EveryScheduleAndAdversaryAtN256Parallel) {
  certify(256, /*sim_threads=*/4);
}

// Per-scenario accounting must be identical between engines, not merely
// within the bound: every scheduler family crossed with every adversary
// yields the same round count, op count, contention, and own-step maximum
// at 4 threads as at 1.
TEST(WaitFreeCert, ParallelEngineAccountingMatchesSequential) {
  constexpr std::uint32_t kProcs = 16;
  rt::ScenarioSpec spec;
  spec.substrate = rt::Substrate::kSim;
  spec.n = 256;
  spec.procs = kProcs;
  spec.own_step_bound = certified_bound(spec.n);
  for (const rt::SchedSpec& sched : rt::all_sched_specs(kProcs, 0xce27u)) {
    for (const AdversaryCase& adv : adversary_cases(kProcs)) {
      spec.sched = sched;
      spec.script = adv.script;
      spec.sim_threads = 1;
      const rt::ScenarioResult seq = rt::run_scenario(spec);
      spec.sim_threads = 4;
      const rt::ScenarioResult par = rt::run_scenario(spec);
      const std::string label = std::string(rt::sched_family_name(sched.family)) + "/" +
                                adv.name;
      EXPECT_EQ(seq.failure, par.failure) << label;
      EXPECT_EQ(seq.detail, par.detail) << label;
      EXPECT_EQ(seq.rounds, par.rounds) << label;
      EXPECT_EQ(seq.total_ops, par.total_ops) << label;
      EXPECT_EQ(seq.max_contention, par.max_contention) << label;
      EXPECT_EQ(seq.max_finish_steps, par.max_finish_steps) << label;
    }
  }
}

// A failure artifact recorded under the parallel engine is byte-for-byte
// the artifact the sequential engine records (sim_threads is a host
// property, deliberately absent from the serialized spec), and it replays
// to the exact recorded failure under either engine.
TEST(WaitFreeCert, ReplayArtifactRoundTripsAcrossEngines) {
  rt::ScenarioSpec spec;
  spec.substrate = rt::Substrate::kSim;
  spec.n = 256;
  spec.procs = 16;
  spec.script = rt::staggered_kills(32, 48, spec.procs, 4);
  // A bound below the faultless per-processor cost fails deterministically,
  // giving the artifact a real FaultScript and a real failure to carry.
  spec.own_step_bound = 16;

  auto make_artifact = [&spec](std::uint32_t sim_threads) {
    rt::ScenarioSpec s = spec;
    s.sim_threads = sim_threads;
    const rt::ScenarioResult res = rt::run_scenario(s);
    EXPECT_EQ(res.failure, rt::FailureKind::kOwnStep) << "t=" << sim_threads;
    rt::ReplayArtifact a;
    a.spec = s;
    a.failure = res.failure;
    a.detail = res.detail;
    // observed stays null: the stats document embeds wall-clock shard spans,
    // which are the one legitimately nondeterministic part of a run.
    return a;
  };
  const rt::ReplayArtifact seq = make_artifact(1);
  const rt::ReplayArtifact par = make_artifact(4);
  EXPECT_EQ(rt::artifact_to_text(seq), rt::artifact_to_text(par));

  const std::string path = ::testing::TempDir() + "/wfsort_par_repro.json";
  ASSERT_TRUE(rt::write_artifact(par, path));
  rt::ReplayArtifact loaded;
  std::string error;
  ASSERT_TRUE(rt::load_artifact(path, &loaded, &error)) << error;
  EXPECT_EQ(rt::artifact_to_text(loaded), rt::artifact_to_text(par));

  // Replay the loaded artifact under both engines; each must reproduce the
  // recorded failure exactly (kind and detail).
  for (std::uint32_t t : {1u, 4u}) {
    loaded.spec.sim_threads = t;
    const rt::ReplayOutcome outcome = rt::replay(loaded);
    EXPECT_TRUE(outcome.reproduced) << "t=" << t;
    EXPECT_TRUE(outcome.exact) << "t=" << t;
  }
}

// Post-mortem flight rings: a sim scenario with staggered kills freezes each
// victim's last events into the result, stamped with round numbers — so two
// identical runs serialize byte-for-byte, and the last event in every ring
// is the kill fault marker itself.
TEST(WaitFreeCert, PostMortemRingsAreByteStableAndEndAtTheKill) {
  rt::ScenarioSpec spec;
  spec.substrate = rt::Substrate::kSim;
  spec.n = 256;
  spec.procs = 16;
  spec.script = rt::staggered_kills(32, 48, spec.procs, 4);
  spec.own_step_bound = certified_bound(spec.n);

  const rt::ScenarioResult first = rt::run_scenario(spec);
  const rt::ScenarioResult second = rt::run_scenario(spec);
  ASSERT_FALSE(first.rings.is_null());
  EXPECT_EQ(first.rings.dump_compact(), second.rings.dump_compact());

  const auto& rings = first.rings.items();
  EXPECT_EQ(rings.size(), spec.script.killed_targets().size());
  for (const wfsort::Json& ring : rings) {
    const auto& events = ring.at("events").items();
    ASSERT_FALSE(events.empty());
    const wfsort::Json& last = events.back();
    EXPECT_EQ(last.at("kind").as_string(), "fault");
    EXPECT_EQ(last.at("a8").as_u64(), 0u);  // FaultCode::kKill
    // Round stamps within one worker's ring are strictly increasing.
    std::uint64_t prev = 0;
    bool have_prev = false;
    for (const wfsort::Json& e : events) {
      const std::uint64_t t = e.at("t").as_u64();
      if (have_prev) {
        EXPECT_GT(t, prev);
      }
      prev = t;
      have_prev = true;
    }
  }
}

// The lone-survivor scenario is the bound's worst case: one processor must
// absorb the whole job.  Pin it explicitly so the calibration (and any
// future constant change) is anchored to the scenario that actually
// dominates.
TEST(WaitFreeCert, LoneSurvivorIsWithinBoundAndDominatesFaultless) {
  rt::ScenarioSpec spec;
  spec.n = 1024;
  spec.procs = 16;
  spec.own_step_bound = certified_bound(spec.n);

  const rt::ScenarioResult faultless = rt::run_scenario(spec);
  ASSERT_TRUE(faultless.ok()) << faultless.detail;

  spec.script = rt::single_survivor(4, 3, spec.procs);
  const rt::ScenarioResult lone = rt::run_scenario(spec);
  ASSERT_TRUE(lone.ok()) << rt::failure_kind_name(lone.failure) << ": " << lone.detail;
  // The survivor had to do (nearly) everything alone.
  EXPECT_GT(lone.max_finish_steps, faultless.max_finish_steps);
  EXPECT_LE(lone.max_finish_steps, certified_bound(spec.n));
}

// The bound is meaningful only if it is falsifiable: a bound below the
// faultless per-processor cost must be reported as an own-step violation,
// not silently accepted.
TEST(WaitFreeCert, BoundIsFalsifiable) {
  rt::ScenarioSpec spec;
  spec.n = 256;
  spec.procs = 16;
  spec.own_step_bound = 16;  // far below any real run's per-proc cost
  const rt::ScenarioResult res = rt::run_scenario(spec);
  EXPECT_EQ(res.failure, rt::FailureKind::kOwnStep);
}

// Native engine: the same numeric promise, measured in checkpoints.  Real
// threads are not deterministic, so this certifies the configuration rather
// than one interleaving; the bound uses the same calibrated form.
TEST(WaitFreeCert, NativeCheckpointBoundHolds) {
  rt::ScenarioSpec spec;
  spec.substrate = rt::Substrate::kNative;
  spec.n = 4096;
  spec.procs = 8;
  spec.own_step_bound = certified_bound(spec.n);
  const rt::ScenarioResult faultless = rt::run_scenario(spec);
  EXPECT_TRUE(faultless.ok()) << faultless.detail;

  spec.script = rt::fail_stop_at_round(32, 4, 7);
  const rt::ScenarioResult faulty = rt::run_scenario(spec);
  EXPECT_TRUE(faulty.ok())
      << rt::failure_kind_name(faulty.failure) << ": " << faulty.detail;
  EXPECT_GT(faulty.max_finish_steps, 0u);
}

// The blocked-partition phase 1 under the same calibrated bound: its three
// WAT-driven sweeps (classify, scatter, bucket-sort) replace the pivot-tree
// build, but the own-step promise is unchanged — every sweep is a
// fixed-size job pool claimed through the same batched WAT, so per-worker
// work stays O(N/P + log) per sweep and the 14 * N * ceil(log2 N) budget
// must hold with the identical margin discipline as the tree path.
TEST(WaitFreeCert, NativePartitionCheckpointBoundHolds) {
  rt::ScenarioSpec spec;
  spec.substrate = rt::Substrate::kNative;
  spec.n = 4096;
  spec.procs = 8;
  spec.phase1 = rt::Phase1Kind::kPartition;
  spec.own_step_bound = certified_bound(spec.n);
  const rt::ScenarioResult faultless = rt::run_scenario(spec);
  EXPECT_TRUE(faultless.ok())
      << rt::failure_kind_name(faultless.failure) << ": " << faultless.detail;

  spec.script = rt::fail_stop_at_round(32, 4, 7);
  const rt::ScenarioResult faulty = rt::run_scenario(spec);
  EXPECT_TRUE(faulty.ok())
      << rt::failure_kind_name(faulty.failure) << ": " << faulty.detail;
  EXPECT_GT(faulty.max_finish_steps, 0u);
}

// The LC fast path under the same calibrated bound: probe bursts, line
// harvesting, the ALLDONE down-wave and the frontier fallback are all
// bounded per checkpoint poll, so the randomized variant's own-step count
// must stay inside the unchanged 14 * N * ceil(log2 N) budget — faultless
// and with half the crew failing mid-run.
TEST(WaitFreeCert, NativeLcCheckpointBoundHolds) {
  rt::ScenarioSpec spec;
  spec.substrate = rt::Substrate::kNative;
  spec.variant = rt::SortKind::kLc;
  spec.n = 4096;
  spec.procs = 8;
  spec.own_step_bound = certified_bound(spec.n);
  const rt::ScenarioResult faultless = rt::run_scenario(spec);
  EXPECT_TRUE(faultless.ok())
      << rt::failure_kind_name(faultless.failure) << ": " << faultless.detail;

  spec.script = rt::fail_stop_at_round(32, 4, 7);
  const rt::ScenarioResult faulty = rt::run_scenario(spec);
  EXPECT_TRUE(faulty.ok())
      << rt::failure_kind_name(faulty.failure) << ": " << faulty.detail;
  EXPECT_GT(faulty.max_finish_steps, 0u);
}

}  // namespace
