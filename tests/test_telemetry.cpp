// Tests for the unified telemetry layer: the LogHistogram/Recorder data
// model, native-engine recording at each Level, the "wfsort-stats-v1" JSON
// schema (golden-pinned so downstream dashboards can rely on its shape),
// the Chrome-trace exporter, and the observed-stats plumbing through
// adversary artifacts.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/rng.h"
#include "core/session.h"
#include "core/sort.h"
#include "runtime/scenario.h"
#include "runtime/search.h"
#include "telemetry/recorder.h"
#include "telemetry/report.h"
#include "telemetry/schema.h"
#include "telemetry/trace_export.h"

namespace {

namespace tel = wfsort::telemetry;
using wfsort::Json;
using wfsort::Options;
using wfsort::SortStats;
using wfsort::Variant;

std::vector<std::uint64_t> random_data(std::size_t n, std::uint64_t seed) {
  wfsort::Rng rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.next();
  return v;
}

SortStats sorted_run(std::size_t n, Variant variant, tel::Level level,
                     std::uint32_t threads = 4) {
  auto v = random_data(n, 42);
  Options opts;
  opts.threads = threads;
  opts.variant = variant;
  opts.telemetry = level;
  SortStats stats;
  wfsort::sort(std::span<std::uint64_t>(v), opts, &stats);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
  return stats;
}

std::vector<std::string> object_keys(const Json& j) {
  std::vector<std::string> keys;
  for (const auto& [k, v] : j.object_items()) keys.push_back(k);
  return keys;
}

// ---- LogHistogram -------------------------------------------------------

TEST(LogHistogram, BucketMapping) {
  tel::LogHistogram h;
  h.add(0);  // bucket 0
  h.add(1);  // bucket 1
  h.add(2);  // bucket 2: [2, 4)
  h.add(3);
  h.add(4);  // bucket 3: [4, 8)
  EXPECT_EQ(h.counts[0], 1u);
  EXPECT_EQ(h.counts[1], 1u);
  EXPECT_EQ(h.counts[2], 2u);
  EXPECT_EQ(h.counts[3], 1u);
  EXPECT_EQ(h.total, 5u);
  EXPECT_EQ(h.sum, 10u);
  EXPECT_EQ(h.max, 4u);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
  EXPECT_EQ(h.max_nonzero_bucket(), 3u);
}

TEST(LogHistogram, HugeValuesClampToLastBucket) {
  tel::LogHistogram h;
  h.add(std::uint64_t{1} << 40);
  h.add(~std::uint64_t{0});
  EXPECT_EQ(h.counts[tel::LogHistogram::kBuckets - 1], 2u);
  EXPECT_EQ(h.max, ~std::uint64_t{0});
  EXPECT_EQ(h.max_nonzero_bucket(), tel::LogHistogram::kBuckets - 1);
}

TEST(LogHistogram, MergeAccumulates) {
  tel::LogHistogram a, b;
  a.add(1);
  a.add(8);
  b.add(8);
  b.add(100);
  a.merge(b);
  EXPECT_EQ(a.total, 4u);
  EXPECT_EQ(a.sum, 117u);
  EXPECT_EQ(a.max, 100u);
  EXPECT_EQ(a.counts[4], 2u);  // 8 is in [8, 16)
}

// ---- Recorder -----------------------------------------------------------

TEST(Recorder, SpansAndBoundsCheckedScratch) {
  tel::Recorder rec(tel::Level::kPhases, 4);
  EXPECT_FALSE(rec.detail());
  EXPECT_EQ(rec.scratch(4), nullptr);  // beyond the preallocated range
  tel::WorkerScratch* s = rec.scratch(2);
  ASSERT_NE(s, nullptr);
  s->begin_phase(tel::PhaseId::kBuild);
  s->begin_phase(tel::PhaseId::kSum);  // closes kBuild at the same instant
  s->end_phase();
  const tel::Report rep = rec.snapshot();
  ASSERT_EQ(rep.workers.size(), 1u);
  EXPECT_EQ(rep.workers[0].tid, 2u);
  ASSERT_EQ(rep.workers[0].spans.size(), 2u);
  EXPECT_EQ(rep.workers[0].spans[0].phase, tel::PhaseId::kBuild);
  EXPECT_EQ(rep.workers[0].spans[0].end_us, rep.workers[0].spans[1].begin_us);
  const auto present = rep.phases_present();
  EXPECT_EQ(present, (std::vector<tel::PhaseId>{tel::PhaseId::kBuild,
                                                tel::PhaseId::kSum}));
}

TEST(Recorder, ScratchCloserTruncatesOpenSpan) {
  tel::Recorder rec(tel::Level::kFull, 2);
  {
    tel::WorkerScratch* s = rec.scratch(0);
    tel::ScratchCloser closer(s);
    s->begin_phase(tel::PhaseId::kPlace);
    // "crash": scope exit without end_phase()
  }
  const tel::Report rep = rec.snapshot();
  ASSERT_EQ(rep.workers.size(), 1u);
  ASSERT_EQ(rep.workers[0].spans.size(), 1u);
  EXPECT_EQ(rep.workers[0].spans[0].phase, tel::PhaseId::kPlace);
}

// ---- native engine recording --------------------------------------------

TEST(NativeTelemetry, OffByDefaultAndFreeOfReport) {
  const SortStats stats = sorted_run(20000, Variant::kDeterministic, tel::Level::kOff);
  EXPECT_EQ(stats.telemetry, nullptr);
}

TEST(NativeTelemetry, PhasesLevelRecordsSpansOnly) {
  const SortStats stats =
      sorted_run(20000, Variant::kDeterministic, tel::Level::kPhases);
  ASSERT_NE(stats.telemetry, nullptr);
  EXPECT_EQ(stats.telemetry->level, tel::Level::kPhases);
  EXPECT_GT(stats.telemetry->wall_us, 0u);
  ASSERT_FALSE(stats.telemetry->workers.empty());
  for (const tel::WorkerReport& w : stats.telemetry->workers) {
    EXPECT_FALSE(w.spans.empty());
  }
  const auto present = stats.telemetry->phases_present();
  for (tel::PhaseId p : {tel::PhaseId::kBuild, tel::PhaseId::kSum, tel::PhaseId::kPlace}) {
    EXPECT_NE(std::find(present.begin(), present.end(), p), present.end())
        << tel::phase_name(p);
  }
  // Histograms and counters are full-level only.
  EXPECT_EQ(stats.telemetry->counter_total(tel::Counter::kCasInstalls), 0u);
  EXPECT_EQ(stats.telemetry->merged_cas_retries().total, 0u);
}

TEST(NativeTelemetry, FullLevelDetCountersAreExact) {
  const std::size_t n = 20000;
  const SortStats stats = sorted_run(n, Variant::kDeterministic, tel::Level::kFull);
  ASSERT_NE(stats.telemetry, nullptr);
  const tel::Report& rep = *stats.telemetry;
  // Every tree node except the root is installed by exactly one winning CAS.
  EXPECT_EQ(rep.counter_total(tel::Counter::kCasInstalls), n - 1);
  EXPECT_EQ(stats.cas_successes, n - 1);
  EXPECT_GT(rep.counter_total(tel::Counter::kWatClaims), 0u);
  EXPECT_GE(rep.counter_total(tel::Counter::kWatProbes),
            rep.counter_total(tel::Counter::kWatClaims));
  // One cas_retries sample per retired element insertion.
  EXPECT_GE(rep.merged_cas_retries().total, n - 1);
  EXPECT_EQ(rep.counter_total(tel::Counter::kCasFailures),
            rep.merged_cas_retries().sum);
}

TEST(NativeTelemetry, FullLevelLeafSortCounters) {
  auto v = random_data(20000, 42);
  Options opts;
  opts.threads = 4;
  opts.telemetry = tel::Level::kFull;
  SortStats stats;
  wfsort::sort(std::span<std::uint64_t>(v), opts, &stats);
  ASSERT_TRUE(std::is_sorted(v.begin(), v.end()));
  ASSERT_NE(stats.telemetry, nullptr);
  const tel::Report& rep = *stats.telemetry;
  // With the default seq_cutoff, phase 3 bottoms out in leaf-sorted blocks,
  // and small blocks go through the insertion-sort dispatch.
  EXPECT_GT(rep.counter_total(tel::Counter::kLeafBlocks), 0u);
  EXPECT_GT(rep.counter_total(tel::Counter::kLeafInsertionSorts), 0u);
}

TEST(NativeTelemetry, FullLevelPartitionCountersAndPhases) {
  auto v = random_data(20000, 43);
  Options opts;
  opts.threads = 4;
  opts.phase1 = wfsort::Phase1::kPartition;
  opts.telemetry = tel::Level::kFull;
  SortStats stats;
  wfsort::sort(std::span<std::uint64_t>(v), opts, &stats);
  ASSERT_TRUE(std::is_sorted(v.begin(), v.end()));
  ASSERT_NE(stats.telemetry, nullptr);
  const tel::Report& rep = *stats.telemetry;
  const auto present = rep.phases_present();
  for (tel::PhaseId p : {tel::PhaseId::kPartClassify, tel::PhaseId::kPartScatter,
                         tel::PhaseId::kPartSort}) {
    EXPECT_NE(std::find(present.begin(), present.end(), p), present.end())
        << tel::phase_name(p);
  }
  // n = 20000 yields several buckets, so splitters were sampled and every
  // bucket went through the leaf sort.
  EXPECT_GT(rep.counter_total(tel::Counter::kSplitterSamples), 0u);
  EXPECT_GT(rep.counter_total(tel::Counter::kLeafBlocks), 0u);
  const Json doc =
      tel::native_stats_json(tel::native_run_info(opts, v.size()), stats);
  EXPECT_EQ(doc.at("config").at("phase1").as_string(), "partition");
  std::string error;
  EXPECT_TRUE(tel::validate_stats_json(doc, &error)) << error;
}

TEST(NativeTelemetry, FullLevelLcRecordsStageSpans) {
  const SortStats stats =
      sorted_run(20000, Variant::kLowContention, tel::Level::kFull);
  ASSERT_NE(stats.telemetry, nullptr);
  const auto present = stats.telemetry->phases_present();
  for (tel::PhaseId p :
       {tel::PhaseId::kLcPresort, tel::PhaseId::kLcWinner, tel::PhaseId::kLcSortedIdx,
        tel::PhaseId::kLcFatten, tel::PhaseId::kLcInsert, tel::PhaseId::kSum,
        tel::PhaseId::kPlace}) {
    EXPECT_NE(std::find(present.begin(), present.end(), p), present.end())
        << tel::phase_name(p);
  }
  EXPECT_GT(stats.telemetry->counter_total(tel::Counter::kFatHits) +
                stats.telemetry->counter_total(tel::Counter::kFatMisses),
            0u);
}

TEST(NativeTelemetry, SessionExposesReportAfterWait) {
  auto v = random_data(20000, 7);
  Options opts;
  opts.threads = 2;
  opts.telemetry = tel::Level::kPhases;
  wfsort::SortSession<std::uint64_t> session(std::span<std::uint64_t>(v), opts);
  EXPECT_EQ(session.telemetry(), nullptr);  // not snapshotted until wait()
  session.spawn_worker();
  session.wait();
  ASSERT_NE(session.telemetry(), nullptr);
  EXPECT_FALSE(session.telemetry()->workers.empty());
}

// ---- stats schema -------------------------------------------------------

TEST(StatsSchema, GoldenNativeShape) {
  Options opts;
  opts.threads = 4;
  opts.telemetry = tel::Level::kFull;
  auto v = random_data(20000, 11);
  SortStats stats;
  wfsort::sort(std::span<std::uint64_t>(v), opts, &stats);

  const Json doc = tel::native_stats_json(tel::native_run_info(opts, v.size()), stats);
  // Golden pin: the document's top-level shape is the schema contract.
  EXPECT_EQ(object_keys(doc),
            (std::vector<std::string>{"schema", "substrate", "build_type",
                                      "config", "totals", "phases", "counters",
                                      "histograms", "sketches", "contention",
                                      "rings"}));
  EXPECT_EQ(doc.at("schema").as_string(), "wfsort-stats-v1");
  EXPECT_EQ(doc.at("substrate").as_string(), "native");
  EXPECT_EQ(object_keys(doc.at("config")),
            (std::vector<std::string>{"variant", "n", "threads", "seed", "wat_batch",
                                      "seq_cutoff", "lc_copies", "prune", "phase1",
                                      "telemetry"}));
  EXPECT_EQ(doc.at("config").at("phase1").as_string(), "tree");
  EXPECT_EQ(doc.at("config").at("telemetry").as_string(), "full");
  EXPECT_EQ(object_keys(doc.at("histograms")),
            (std::vector<std::string>{"cas_retries", "wat_probes"}));
  EXPECT_EQ(object_keys(doc.at("contention")),
            (std::vector<std::string>{"max_site", "max_value", "sites"}));
  EXPECT_FALSE(doc.at("phases").items().empty());
  // Latency sketches fill for every recorded phase; post-mortem rings stay
  // empty on a clean (crash-free) run.
  EXPECT_FALSE(doc.at("sketches").object_items().empty());
  EXPECT_TRUE(doc.at("rings").items().empty());
  // Golden pin: the full-level counters object names the leaf-sort and
  // partition instrumentation — dashboards key on these exact strings.
  const Json& counters = doc.at("counters");
  for (const char* name : {"leaf_blocks", "leaf_insertion_sorts",
                           "leaf_heapsorts", "partition_swaps",
                           "splitter_samples"}) {
    EXPECT_NE(counters.find(name), nullptr) << name;
  }

  std::string error;
  EXPECT_TRUE(tel::validate_stats_json(doc, &error)) << error;
  // Stats documents carry build provenance and honor the release gate.
  const bool is_release = std::string(tel::build_type_name()) == "release";
  EXPECT_EQ(tel::validate_stats_json(doc, &error, /*require_release=*/true),
            is_release);
}

TEST(StatsSchema, NativeOffLevelStillValidates) {
  const SortStats stats = sorted_run(20000, Variant::kDeterministic, tel::Level::kOff);
  Options opts;
  opts.threads = 4;
  const Json doc = tel::native_stats_json(tel::native_run_info(opts, 20000), stats);
  std::string error;
  EXPECT_TRUE(tel::validate_stats_json(doc, &error)) << error;
  // The coarse fallback still reports the paper's three phases.
  ASSERT_EQ(doc.at("phases").items().size(), 3u);
  EXPECT_EQ(doc.at("phases").items()[0].at("name").as_string(), "build");
}

TEST(StatsSchema, SimScenarioProducesValidStats) {
  wfsort::runtime::ScenarioSpec spec;
  spec.n = 128;
  spec.procs = 8;
  const wfsort::runtime::ScenarioResult res = wfsort::runtime::run_scenario(spec);
  EXPECT_TRUE(res.ok()) << res.detail;
  ASSERT_FALSE(res.stats.is_null());
  std::string error;
  EXPECT_TRUE(tel::validate_stats_json(res.stats, &error)) << error;
  EXPECT_EQ(res.stats.at("substrate").as_string(), "sim");
  EXPECT_EQ(res.stats.at("config").at("program").as_string(), "det_sort");
  // Region attribution is the simulator's contention story.
  EXPECT_FALSE(res.stats.at("contention").at("attribution").object_items().empty());
}

TEST(StatsSchema, ValidatorRejectsMissingKeys) {
  Json doc = Json::object();
  doc.set("schema", tel::kStatsSchema);
  std::string error;
  EXPECT_FALSE(tel::validate_stats_json(doc, &error));
  EXPECT_FALSE(error.empty());
}

TEST(StatsSchema, BenchEnvelopeValidates) {
  const SortStats stats = sorted_run(20000, Variant::kDeterministic, tel::Level::kFull);
  Options opts;
  opts.threads = 4;
  opts.telemetry = tel::Level::kFull;
  Json bench = tel::make_bench_doc();
  // The envelope carries the distro-libbenchmark caveat once, instead of
  // per-document footnotes.
  ASSERT_NE(bench.find("caveats"), nullptr);
  EXPECT_NE(bench.at("caveats").find("library_build_type"), nullptr);
  Json runs = bench.at("runs");
  runs.push_back(tel::native_stats_json(tel::native_run_info(opts, 20000), stats));
  bench.set("runs", std::move(runs));
  std::string error;
  EXPECT_TRUE(tel::validate_bench_json(bench, &error)) << error;

  bench.set("schema", "nonsense");
  EXPECT_FALSE(tel::validate_bench_json(bench, &error));
}

// ---- Chrome trace export ------------------------------------------------

TEST(TraceExport, ChromeTraceShape) {
  const SortStats stats =
      sorted_run(20000, Variant::kDeterministic, tel::Level::kPhases);
  ASSERT_NE(stats.telemetry, nullptr);
  const Json doc = tel::chrome_trace_json(*stats.telemetry, "wfsort test");
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const auto& events = doc.at("traceEvents").items();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events[0].at("ph").as_string(), "M");  // process_name metadata
  bool saw_span = false;
  for (const Json& ev : events) {
    if (ev.at("ph").as_string() != "X") continue;
    saw_span = true;
    EXPECT_NE(ev.find("ts"), nullptr);
    EXPECT_NE(ev.find("dur"), nullptr);
    EXPECT_NE(ev.find("pid"), nullptr);
    EXPECT_NE(ev.find("tid"), nullptr);
    EXPECT_EQ(ev.at("cat").as_string(), "phase");
  }
  EXPECT_TRUE(saw_span);
}

TEST(TraceExport, FileRoundTrip) {
  const SortStats stats =
      sorted_run(20000, Variant::kDeterministic, tel::Level::kPhases);
  ASSERT_NE(stats.telemetry, nullptr);
  const Json doc = tel::chrome_trace_json(*stats.telemetry, "wfsort test");
  const std::string path = testing::TempDir() + "/wfsort_trace.json";
  std::string error;
  ASSERT_TRUE(tel::write_text_file(path, doc.dump(), &error)) << error;

  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const Json parsed = Json::parse(buf.str(), &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(parsed.at("traceEvents").items().size(),
            doc.at("traceEvents").items().size());
}

// ---- adversary integration ----------------------------------------------

TEST(Artifacts, ObservedStatsRoundTrip) {
  wfsort::runtime::ReplayArtifact a;
  a.failure = wfsort::runtime::FailureKind::kUnsorted;
  a.detail = "test";
  Json observed = Json::object();
  observed.set("schema", tel::kStatsSchema);
  observed.set("marker", std::uint64_t{12345});
  a.observed = std::move(observed);

  const std::string text = wfsort::runtime::artifact_to_text(a);
  wfsort::runtime::ReplayArtifact back;
  std::string error;
  ASSERT_TRUE(wfsort::runtime::artifact_from_text(text, &back, &error)) << error;
  ASSERT_FALSE(back.observed.is_null());
  EXPECT_EQ(back.observed.dump(), a.observed.dump());
}

TEST(Artifacts, ObservedIsOptionalForOldArtifacts) {
  wfsort::runtime::ReplayArtifact a;  // no observed stats
  const std::string text = wfsort::runtime::artifact_to_text(a);
  EXPECT_EQ(text.find("observed"), std::string::npos);
  wfsort::runtime::ReplayArtifact back;
  std::string error;
  ASSERT_TRUE(wfsort::runtime::artifact_from_text(text, &back, &error)) << error;
  EXPECT_TRUE(back.observed.is_null());
}

TEST(SearchStats, PerFamilyProgressAndJson) {
  wfsort::runtime::SearchStats st;
  st.runs = 5;
  st.probes = 2;
  st.scripts = 9;
  st.family("sync").runs = 3;
  st.family("serial").runs = 2;
  st.family("sync").failures = 1;  // same entry found again, not duplicated
  ASSERT_EQ(st.families.size(), 2u);

  const Json doc = wfsort::runtime::search_stats_json(st);
  EXPECT_EQ(doc.at("schema").as_string(), "wfsort-search-v1");
  EXPECT_EQ(doc.at("runs").as_u64(), 5u);
  const auto& fams = doc.at("families").items();
  ASSERT_EQ(fams.size(), 2u);
  EXPECT_EQ(fams[0].at("family").as_string(), "sync");
  EXPECT_EQ(fams[0].at("failures").as_u64(), 1u);
}

TEST(SearchStats, HuntFillsFamilyCountersAndObserved) {
  // A tiny sim search over a correct algorithm: no violation, but every
  // family swept must account for its runs.
  wfsort::runtime::ScenarioSpec spec;
  spec.n = 64;
  spec.procs = 4;
  wfsort::runtime::SearchOptions sopts;
  sopts.max_runs = 6;
  sopts.random_scripts = 1;
  wfsort::runtime::ReplayArtifact artifact;
  wfsort::runtime::SearchStats st;
  const bool found =
      wfsort::runtime::search_for_violation(spec, sopts, &artifact, &st);
  EXPECT_FALSE(found);
  EXPECT_EQ(st.runs, 6u);
  ASSERT_FALSE(st.families.empty());
  std::uint64_t family_runs = 0;
  for (const auto& f : st.families) family_runs += f.runs;
  EXPECT_EQ(family_runs, st.runs);
}

}  // namespace
