// Tests for the native wait-free sorter: correctness across workloads,
// thread counts and variants; statistics invariants (Lemma 2.4); behaviour
// under injected crashes and page-fault sleeps (wait-freedom, E9's basis).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/sort.h"
#include "runtime/adversaries.h"
#include "runtime/fault_script.h"

namespace {

using wfsort::Options;
using wfsort::Phase1;
using wfsort::PrunePlaced;
using wfsort::Rng;
using wfsort::SortStats;
using wfsort::Variant;

// ------------------------------------------------------------ workloads

enum class Workload { kRandom, kSorted, kReversed, kAllEqual, kFewDistinct, kOrganPipe, kRuns };

const char* workload_name(Workload w) {
  switch (w) {
    case Workload::kRandom: return "random";
    case Workload::kSorted: return "sorted";
    case Workload::kReversed: return "reversed";
    case Workload::kAllEqual: return "all_equal";
    case Workload::kFewDistinct: return "few_distinct";
    case Workload::kOrganPipe: return "organ_pipe";
    case Workload::kRuns: return "runs";
  }
  return "?";
}

std::vector<std::uint64_t> make_workload(Workload w, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> v(n);
  switch (w) {
    case Workload::kRandom:
      for (auto& x : v) x = rng.next();
      break;
    case Workload::kSorted:
      for (std::size_t i = 0; i < n; ++i) v[i] = i * 3;
      break;
    case Workload::kReversed:
      for (std::size_t i = 0; i < n; ++i) v[i] = (n - i) * 3;
      break;
    case Workload::kAllEqual:
      for (auto& x : v) x = 42;
      break;
    case Workload::kFewDistinct:
      for (auto& x : v) x = rng.below(8);
      break;
    case Workload::kOrganPipe:
      for (std::size_t i = 0; i < n; ++i) v[i] = i < n / 2 ? i : n - i;
      break;
    case Workload::kRuns:
      for (std::size_t i = 0; i < n; ++i) v[i] = (i % 64) + 1000 * (i / 64 % 7);
      break;
  }
  return v;
}

void expect_sorted_permutation(const std::vector<std::uint64_t>& original,
                               const std::vector<std::uint64_t>& result,
                               const std::string& label) {
  ASSERT_EQ(original.size(), result.size()) << label;
  EXPECT_TRUE(std::is_sorted(result.begin(), result.end())) << label;
  std::vector<std::uint64_t> expected = original;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(expected, result) << label;
}

// ------------------------------------------------------------ basics

TEST(SortNative, EmptyAndTiny) {
  for (std::size_t n : {0u, 1u, 2u, 3u}) {
    auto v = make_workload(Workload::kRandom, n, 9 + n);
    auto orig = v;
    wfsort::sort(std::span<std::uint64_t>(v), Options{.threads = 2});
    expect_sorted_permutation(orig, v, "n=" + std::to_string(n));
  }
}

TEST(SortNative, SingleThreadRandom) {
  auto v = make_workload(Workload::kRandom, 1000, 1);
  auto orig = v;
  wfsort::sort(std::span<std::uint64_t>(v), Options{.threads = 1});
  expect_sorted_permutation(orig, v, "single-thread");
}

TEST(SortNative, CustomComparatorDescending) {
  auto v = make_workload(Workload::kRandom, 500, 2);
  wfsort::sort(std::span<std::uint64_t>(v), Options{.threads = 2}, nullptr,
               std::greater<std::uint64_t>{});
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end(), std::greater<std::uint64_t>{}));
}

TEST(SortNative, TrivialStructKeyByField) {
  struct Pair {
    std::uint32_t key;
    std::uint32_t payload;
  };
  Rng rng(77);
  std::vector<Pair> v(300);
  for (std::uint32_t i = 0; i < v.size(); ++i) {
    v[i] = {static_cast<std::uint32_t>(rng.below(50)), i};
  }
  auto by_key = [](const Pair& a, const Pair& b) { return a.key < b.key; };
  wfsort::sort(std::span<Pair>(v), Options{.threads = 3}, nullptr, by_key);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end(), by_key));
  // Every payload still present exactly once (permutation check).
  std::vector<bool> seen(v.size(), false);
  for (const Pair& p : v) {
    ASSERT_LT(p.payload, v.size());
    EXPECT_FALSE(seen[p.payload]);
    seen[p.payload] = true;
  }
}

TEST(SortNative, SorterObjectReuse) {
  wfsort::Sorter<std::uint64_t> sorter(Options{.threads = 2});
  for (int round = 0; round < 3; ++round) {
    auto v = make_workload(Workload::kRandom, 200 + 50 * round, 10 + round);
    auto orig = v;
    sorter(std::span<std::uint64_t>(v));
    expect_sorted_permutation(orig, v, "round " + std::to_string(round));
    EXPECT_EQ(sorter.last_stats().n, orig.size());
  }
}

TEST(SortNative, PhaseTimingsAreRecorded) {
  auto v = make_workload(Workload::kRandom, 60000, 71);
  SortStats stats;
  wfsort::sort(std::span<std::uint64_t>(v), Options{.threads = 2}, &stats);
  ASSERT_TRUE(std::is_sorted(v.begin(), v.end()));
  // All phases did measurable work for this size.
  EXPECT_GT(stats.phase1_ms, 0.0);
  EXPECT_GT(stats.phase2_ms, 0.0);
  EXPECT_GT(stats.phase3_ms, 0.0);
}

TEST(SortNative, SortPermutationLeavesDataUntouched) {
  auto v = make_workload(Workload::kRandom, 1500, 44);
  const auto orig = v;
  const auto perm = wfsort::sort_permutation(
      std::span<const std::uint64_t>(v), Options{.threads = 3});
  EXPECT_EQ(v, orig);  // data untouched
  ASSERT_EQ(perm.size(), v.size());
  // perm is a permutation and orders the data.
  std::vector<bool> seen(v.size(), false);
  for (std::size_t r = 0; r < perm.size(); ++r) {
    ASSERT_LT(perm[r], v.size());
    EXPECT_FALSE(seen[perm[r]]);
    seen[perm[r]] = true;
    if (r > 0) {
      EXPECT_LE(v[perm[r - 1]], v[perm[r]]);
    }
  }
}

TEST(SortNative, SortPermutationTiesBreakByIndex) {
  std::vector<std::uint64_t> v(100, 7);  // all equal
  const auto perm = wfsort::sort_permutation(std::span<const std::uint64_t>(v));
  for (std::uint32_t r = 0; r < perm.size(); ++r) EXPECT_EQ(perm[r], r);
}

TEST(SortNative, SortPermutationEmptyAndSingle) {
  std::vector<std::uint64_t> empty;
  EXPECT_TRUE(wfsort::sort_permutation(std::span<const std::uint64_t>(empty)).empty());
  std::vector<std::uint64_t> one{9};
  auto perm = wfsort::sort_permutation(std::span<const std::uint64_t>(one));
  ASSERT_EQ(perm.size(), 1u);
  EXPECT_EQ(perm[0], 0u);
}

// ------------------------------------------------------------ property sweep

struct SweepParam {
  Workload workload;
  std::size_t n;
  std::uint32_t threads;
  Variant variant;
};

std::string param_label(const SweepParam& p) {
  return std::string(workload_name(p.workload)) + "_n" + std::to_string(p.n) + "_t" +
         std::to_string(p.threads) +
         (p.variant == Variant::kDeterministic ? "_det" : "_lc");
}

std::string sweep_name(const testing::TestParamInfo<SweepParam>& info) {
  return param_label(info.param);
}

class SortSweep : public testing::TestWithParam<SweepParam> {};

TEST_P(SortSweep, SortsToPermutation) {
  const SweepParam p = GetParam();
  auto v = make_workload(p.workload, p.n, 1234 + p.n);
  auto orig = v;
  SortStats stats;
  wfsort::sort(std::span<std::uint64_t>(v),
               Options{.threads = p.threads, .variant = p.variant}, &stats);
  expect_sorted_permutation(orig, v, param_label(p));

  if (p.n >= 2) {
    // Lemma 2.4: no build_tree call loops more than N-1 times.
    EXPECT_LE(stats.max_build_iters, p.n - 1);
    EXPECT_GE(stats.tree_depth, 1u);
    EXPECT_LE(stats.tree_depth, p.n);
    EXPECT_EQ(stats.completed_workers, p.threads);
    EXPECT_EQ(stats.crashed_workers, 0u);
  }
}

std::vector<SweepParam> make_sweep() {
  std::vector<SweepParam> out;
  const Workload workloads[] = {Workload::kRandom,      Workload::kSorted,
                                Workload::kReversed,    Workload::kAllEqual,
                                Workload::kFewDistinct, Workload::kOrganPipe,
                                Workload::kRuns};
  for (Workload w : workloads) {
    for (std::size_t n : {37u, 256u, 1024u}) {
      for (std::uint32_t t : {1u, 4u}) {
        out.push_back({w, n, t, Variant::kDeterministic});
      }
    }
    // The LC variant is slower per element (randomized probing); keep sizes
    // moderate but above its fallback threshold.
    out.push_back({w, 300, 4, Variant::kLowContention});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, SortSweep, testing::ValuesIn(make_sweep()),
                         sweep_name);

// ------------------------------------------------------------ engine knobs

// Every (wat_batch, seq_cutoff, phase1) combination must sort identically —
// the knobs trade traversal overhead for batching, never correctness.  The
// grid deliberately includes the degenerate settings (batch 1 = one WAT
// traversal per element, cutoff 0 = pure frame machinery) and a cutoff
// larger than most subtrees, and runs the deterministic rows under both
// phase-1 strategies (pivot tree and blocked partition).
struct KnobParam {
  std::uint32_t wat_batch;
  std::uint64_t seq_cutoff;
  Variant variant;
  Phase1 phase1 = Phase1::kTree;
};

std::string knob_label(const KnobParam& p) {
  return "b" + std::to_string(p.wat_batch) + "_c" + std::to_string(p.seq_cutoff) +
         (p.variant == Variant::kDeterministic ? "_det" : "_lc") +
         (p.phase1 == Phase1::kPartition ? "_part" : "");
}

class KnobSweep : public testing::TestWithParam<KnobParam> {};

TEST_P(KnobSweep, SortsToPermutation) {
  const KnobParam p = GetParam();
  auto v = make_workload(Workload::kRandom, 1500, 7000 + p.wat_batch + p.seq_cutoff);
  auto orig = v;
  SortStats stats;
  wfsort::sort(std::span<std::uint64_t>(v),
               Options{.threads = 3,
                       .variant = p.variant,
                       .phase1 = p.phase1,
                       .wat_batch = p.wat_batch,
                       .seq_cutoff = p.seq_cutoff},
               &stats);
  expect_sorted_permutation(orig, v, knob_label(p));
  EXPECT_LE(stats.max_build_iters, v.size() - 1);  // Lemma 2.4 at any batch
  EXPECT_EQ(stats.completed_workers, 3u);
}

std::vector<KnobParam> make_knob_sweep() {
  std::vector<KnobParam> out;
  for (std::uint32_t b : {1u, 4u, 16u}) {
    for (std::uint64_t c : {0u, 64u, 128u}) {  // off, small, the re-picked default
      out.push_back({b, c, Variant::kDeterministic});
      out.push_back({b, c, Variant::kLowContention});
      out.push_back({b, c, Variant::kDeterministic, Phase1::kPartition});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Grid, KnobSweep, testing::ValuesIn(make_knob_sweep()),
                         [](const testing::TestParamInfo<KnobParam>& info) {
                           return knob_label(info.param);
                         });

// The blocked-partition phase 1 must be observationally identical to the
// pivot-tree phase 1, not just "also sorted": both place element i at the
// rank of (key, i) in the index-tie-broken total order, so the output
// PERMUTATION — visible through sort_permutation on duplicate-heavy input —
// must match rank for rank.
TEST(SortNative, PartitionPhasePermutationMatchesTreeBitExactly) {
  const Workload workloads[] = {Workload::kRandom, Workload::kAllEqual,
                                Workload::kFewDistinct, Workload::kOrganPipe};
  for (Workload w : workloads) {
    const auto v = make_workload(w, 6000, 321);
    const auto tree_perm = wfsort::sort_permutation(
        std::span<const std::uint64_t>(v),
        Options{.threads = 4, .phase1 = Phase1::kTree});
    const auto part_perm = wfsort::sort_permutation(
        std::span<const std::uint64_t>(v),
        Options{.threads = 4, .phase1 = Phase1::kPartition});
    EXPECT_EQ(tree_perm, part_perm) << workload_name(w);
  }
}

// ------------------------------------------------------------ variants

TEST(SortNative, LowContentionFallsBackBelowThreshold) {
  std::vector<std::uint64_t> v = make_workload(Workload::kRandom, 32, 5);
  wfsort::detail::Engine<std::uint64_t, std::less<std::uint64_t>> engine(
      std::span<std::uint64_t>(v), {}, Options{.variant = Variant::kLowContention});
  EXPECT_EQ(engine.effective_variant(), Variant::kDeterministic);
}

TEST(SortNative, LowContentionLargerArray) {
  auto v = make_workload(Workload::kRandom, 5000, 21);
  auto orig = v;
  SortStats stats;
  wfsort::sort(std::span<std::uint64_t>(v),
               Options{.threads = 4, .variant = Variant::kLowContention}, &stats);
  expect_sorted_permutation(orig, v, "lc-5000");
  EXPECT_EQ(stats.completed_workers, 4u);
}

TEST(SortNative, LowContentionAdversarialSortedInput) {
  // Sorted input is the deterministic variant's worst case (depth N); the LC
  // variant's random insertion order must keep the tree shallow.
  auto v = make_workload(Workload::kSorted, 4096, 0);
  auto orig = v;
  SortStats stats;
  wfsort::sort(std::span<std::uint64_t>(v),
               Options{.threads = 2, .variant = Variant::kLowContention}, &stats);
  expect_sorted_permutation(orig, v, "lc-sorted");
  // Random-order insertion: depth O(log N) w.h.p.  4096 -> log2 = 12; allow
  // a generous constant.  (The deterministic variant would produce ~sqrt or
  // worse here; see fig_e2.)
  EXPECT_LE(stats.tree_depth, 12u * 6u);
}

TEST(SortNative, LowContentionCopiesKnob) {
  for (std::uint32_t copies : {1u, 3u, 16u}) {
    auto v = make_workload(Workload::kRandom, 2000, 500 + copies);
    auto orig = v;
    wfsort::sort(std::span<std::uint64_t>(v),
                 Options{.threads = 3,
                         .variant = Variant::kLowContention,
                         .lc_copies = copies});
    expect_sorted_permutation(orig, v, "copies=" + std::to_string(copies));
  }
}

TEST(SortNative, PrunePlacedYesFaultlessIsCorrect) {
  for (std::uint32_t t : {1u, 4u}) {
    auto v = make_workload(Workload::kRandom, 2048, 33);
    auto orig = v;
    wfsort::sort(std::span<std::uint64_t>(v),
                 Options{.threads = t, .prune = PrunePlaced::kYes});
    expect_sorted_permutation(orig, v, "prune t=" + std::to_string(t));
  }
}

TEST(SortNative, DeterministicVariantDepthNOnSortedInputStillSorts) {
  // Deterministic + sorted input degenerates the pivot tree into a path;
  // the sort must still complete correctly (just not in optimal time).
  auto v = make_workload(Workload::kSorted, 2000, 0);
  auto orig = v;
  SortStats stats;
  // One thread inserts in index order, so the pivot tree degenerates into a
  // single chain of BIG children (with more threads the chains started at
  // each WAT leaf merge and the depth shrinks).
  wfsort::sort(std::span<std::uint64_t>(v), Options{.threads = 1}, &stats);
  expect_sorted_permutation(orig, v, "det-sorted");
  EXPECT_EQ(stats.tree_depth, 2000u);  // a chain: depth == N
}

// ------------------------------------------------------------ fault injection

TEST(SortFaults, CrashAllButOneWorkerStillSorts) {
  for (std::uint64_t crash_point : {1ULL, 10ULL, 100ULL, 1000ULL}) {
    auto v = make_workload(Workload::kRandom, 2048, crash_point);
    auto orig = v;
    constexpr std::uint32_t kThreads = 4;
    wfsort::runtime::FaultPlan plan(kThreads);
    for (std::uint32_t t = 1; t < kThreads; ++t) plan.crash_at(t, crash_point);
    SortStats stats;
    const bool ok = wfsort::sort_with_faults(std::span<std::uint64_t>(v),
                                             Options{.threads = kThreads}, plan, &stats);
    ASSERT_TRUE(ok) << "crash_point=" << crash_point;
    expect_sorted_permutation(orig, v, "crash@" + std::to_string(crash_point));
    // On a single-CPU host a worker may finish before the others even start,
    // in which case late workers complete trivially before reaching their
    // crash trigger; only the lower bound of one completer is guaranteed.
    EXPECT_LE(stats.crashed_workers, kThreads - 1);
    EXPECT_GE(stats.completed_workers, 1u);
    if (crash_point == 1) {
      EXPECT_EQ(stats.crashed_workers, kThreads - 1);
    }
  }
}

TEST(SortFaults, CrashAllWorkersReportsFailureAndLeavesDataIntact) {
  auto v = make_workload(Workload::kRandom, 512, 7);
  auto orig = v;
  constexpr std::uint32_t kThreads = 3;
  wfsort::runtime::FaultPlan plan(kThreads);
  for (std::uint32_t t = 0; t < kThreads; ++t) plan.crash_at(t, 5);
  const bool ok =
      wfsort::sort_with_faults(std::span<std::uint64_t>(v), Options{.threads = kThreads}, plan);
  EXPECT_FALSE(ok);
  EXPECT_EQ(v, orig);  // untouched on failure
}

TEST(SortFaults, StaggeredCrashesAcrossPhases) {
  // Crash workers at wildly different points so failures land in different
  // phases; the survivor must finish regardless.
  auto v = make_workload(Workload::kRandom, 4096, 99);
  auto orig = v;
  constexpr std::uint32_t kThreads = 6;
  wfsort::runtime::FaultPlan plan(kThreads);
  plan.crash_at(1, 3);
  plan.crash_at(2, 50);
  plan.crash_at(3, 500);
  plan.crash_at(4, 5000);
  plan.crash_at(5, 20000);
  const bool ok =
      wfsort::sort_with_faults(std::span<std::uint64_t>(v), Options{.threads = kThreads}, plan);
  ASSERT_TRUE(ok);
  expect_sorted_permutation(orig, v, "staggered");
}

TEST(SortFaults, PageFaultSleepsDoNotBlockOthers) {
  auto v = make_workload(Workload::kRandom, 2048, 11);
  auto orig = v;
  constexpr std::uint32_t kThreads = 4;
  wfsort::runtime::FaultPlan plan(kThreads);
  plan.sleep_at(0, 10, std::chrono::microseconds(20000));
  plan.sleep_at(1, 100, std::chrono::microseconds(10000));
  const bool ok =
      wfsort::sort_with_faults(std::span<std::uint64_t>(v), Options{.threads = kThreads}, plan);
  ASSERT_TRUE(ok);
  expect_sorted_permutation(orig, v, "sleeps");
}

TEST(SortFaults, CrashesWithLowContentionVariant) {
  for (std::uint64_t crash_point : {5ULL, 200ULL, 3000ULL}) {
    auto v = make_workload(Workload::kRandom, 1024, crash_point * 3);
    auto orig = v;
    constexpr std::uint32_t kThreads = 4;
    wfsort::runtime::FaultPlan plan(kThreads);
    for (std::uint32_t t = 1; t < kThreads; ++t) plan.crash_at(t, crash_point);
    const bool ok = wfsort::sort_with_faults(
        std::span<std::uint64_t>(v),
        Options{.threads = kThreads, .variant = Variant::kLowContention}, plan);
    ASSERT_TRUE(ok) << crash_point;
    expect_sorted_permutation(orig, v, "lc-crash@" + std::to_string(crash_point));
  }
}

TEST(SortFaults, CannedAdversaryAtNonDefaultKnobs) {
  // The canned staggered-kills adversary, compiled onto the native substrate
  // via program_plan, against knobs far from the defaults on both sides:
  // batching and the sequential cutoff must not open any crash window (the
  // cutoff's completion flag is published only after the block walk).
  constexpr std::uint32_t kThreads = 4;
  const wfsort::runtime::FaultScript script =
      wfsort::runtime::staggered_kills(/*first_round=*/40, /*stride=*/400, kThreads,
                                       /*survivors=*/1);
  for (const Options& opts :
       {Options{.threads = kThreads, .wat_batch = 1, .seq_cutoff = 512},
        Options{.threads = kThreads, .wat_batch = 64, .seq_cutoff = 0},
        // The blocked-partition phase 1 at both knob extremes: its three
        // WAT-driven sweeps (classify, scatter, bucket-sort) must tolerate
        // the same kills as the tree path — every write is idempotent and
        // the kAllJobsDone gates publish each sweep exactly once.
        Options{.threads = kThreads,
                .phase1 = Phase1::kPartition,
                .wat_batch = 1,
                .seq_cutoff = 512},
        Options{.threads = kThreads,
                .phase1 = Phase1::kPartition,
                .wat_batch = 64,
                .seq_cutoff = 0},
        Options{.threads = kThreads,
                .variant = Variant::kLowContention,
                .wat_batch = 64,
                .seq_cutoff = 512},
        // LC fast-path knobs far from their defaults: paper-literal one-node
        // probes with backoff disabled, and a deep-burst / aggressive-backoff
        // extreme — the crash windows must stay closed at both ends.
        Options{.threads = kThreads,
                .variant = Variant::kLowContention,
                .wat_batch = 1,
                .lc_burst = 1,
                .backoff_limit = 0},
        Options{.threads = kThreads,
                .variant = Variant::kLowContention,
                .seq_cutoff = 0,
                .lc_burst = 512,
                .backoff_limit = 12}}) {
    auto v = make_workload(Workload::kRandom, 2048, 77);
    auto orig = v;
    wfsort::runtime::FaultPlan plan(kThreads);
    wfsort::runtime::program_plan(script, plan);
    SortStats stats;
    const bool ok =
        wfsort::sort_with_faults(std::span<std::uint64_t>(v), opts, plan, &stats);
    ASSERT_TRUE(ok);
    expect_sorted_permutation(
        orig, v, "canned b" + std::to_string(opts.wat_batch) + "_c" +
                     std::to_string(opts.seq_cutoff) +
                     (opts.phase1 == Phase1::kPartition ? "_part" : ""));
    EXPECT_GE(stats.completed_workers, 1u);
  }
}

TEST(SortFaults, PartitionPathStaggeredCrashes) {
  // Large enough that the partition path has many chunks (n / 2048) and
  // several buckets, so the staggered kills land inside all three sweeps;
  // the lone survivor must drain every WAT and finish the sort alone.
  auto v = make_workload(Workload::kFewDistinct, 50000, 13);
  auto orig = v;
  constexpr std::uint32_t kThreads = 6;
  wfsort::runtime::FaultPlan plan(kThreads);
  plan.crash_at(1, 3);
  plan.crash_at(2, 50);
  plan.crash_at(3, 500);
  plan.crash_at(4, 5000);
  plan.crash_at(5, 20000);
  SortStats stats;
  const bool ok = wfsort::sort_with_faults(
      std::span<std::uint64_t>(v),
      Options{.threads = kThreads, .phase1 = Phase1::kPartition}, plan, &stats);
  ASSERT_TRUE(ok);
  expect_sorted_permutation(orig, v, "partition-staggered");
  EXPECT_GE(stats.completed_workers, 1u);
}

TEST(SortFaults, SuspendAndReviveLcAtNonDefaultKnobs) {
  // The suspend-and-revive adversary — on the native substrate a long
  // mid-phase sleep IS suspend-then-revive (the simulator's kSuspend/kRevive
  // pair has no thread equivalent) — against the LC fast path with its knobs
  // pushed off the defaults: revived workers must rejoin whatever stage the
  // survivors advanced to, so stale burst stacks, claim runs, and backoff
  // states must all be harmless.
  constexpr std::uint32_t kThreads = 4;
  for (const Options& opts :
       {Options{.threads = kThreads,
                .variant = Variant::kLowContention,
                .lc_burst = 1,
                .backoff_limit = 0},
        Options{.threads = kThreads,
                .variant = Variant::kLowContention,
                .wat_batch = 1,
                .lc_burst = 256,
                .backoff_limit = 10}}) {
    auto v = make_workload(Workload::kRandom, 2048, 91);
    auto orig = v;
    wfsort::runtime::FaultPlan plan(kThreads);
    for (std::uint32_t t = 1; t < kThreads; ++t) {
      plan.sleep_at(t, 64 + 100 * t, std::chrono::microseconds(20000));
    }
    SortStats stats;
    const bool ok =
        wfsort::sort_with_faults(std::span<std::uint64_t>(v), opts, plan, &stats);
    ASSERT_TRUE(ok);
    expect_sorted_permutation(
        orig, v, "revive burst=" + std::to_string(opts.lc_burst));
    EXPECT_GE(stats.completed_workers, 1u);
  }
}

TEST(SortFaults, PrunePlacedYesWithCrashesCanLoseWork) {
  // Documentation-by-test of the design note: with PrunePlaced::kYes the
  // survivor may (depending on timing) observe a placed-but-unfinished
  // subtree.  We do not assert failure — the race is timing-dependent — but
  // we DO assert that the default policy (kNo) never fails in 20 attempts
  // with the same aggressive crash pattern.
  for (int attempt = 0; attempt < 20; ++attempt) {
    auto v = make_workload(Workload::kRandom, 1024, 1000 + attempt);
    auto orig = v;
    constexpr std::uint32_t kThreads = 4;
    wfsort::runtime::FaultPlan plan(kThreads);
    for (std::uint32_t t = 1; t < kThreads; ++t) {
      plan.crash_at(t, 1500 + 37 * attempt);  // mid phase-3 territory
    }
    const bool ok = wfsort::sort_with_faults(
        std::span<std::uint64_t>(v),
        Options{.threads = kThreads, .prune = PrunePlaced::kNo}, plan);
    ASSERT_TRUE(ok);
    expect_sorted_permutation(orig, v, "kNo attempt " + std::to_string(attempt));
  }
}

}  // namespace
