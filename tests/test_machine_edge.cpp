// Edge-case and interaction tests for the PRAM machine and the low-
// contention structures: resumable runs with failures, stall-model x
// scheduler combinations, spawn-after-finish, fat-tree quota effects,
// winner-tree wave spans.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.h"
#include "lowcontention/fat_tree.h"
#include "lowcontention/winner_tree.h"
#include "pram/machine.h"
#include "pram/primitives.h"
#include "pram/scheduler.h"
#include "pram/subtask.h"

namespace {

using pram::Addr;
using pram::Ctx;
using pram::Machine;
using pram::MachineOptions;
using pram::MemoryModel;
using pram::Task;
using pram::Word;

Task poke_n(Ctx& ctx, Addr base, int n) {
  for (int i = 0; i < n; ++i) co_await ctx.write(base + static_cast<Addr>(i % 4), i);
}

Task hit_one(Ctx& ctx, Addr cell, int n) {
  for (int i = 0; i < n; ++i) co_await ctx.write(cell, i);
}

TEST(MachineEdge, ResumableRunAcrossKillAndSpawn) {
  Machine m;
  auto cells = m.mem().alloc("c", 8, 0);
  const auto victim = m.spawn([&](Ctx& ctx) { return poke_n(ctx, cells.base, 1000); });
  auto r1 = m.run_synchronous([](const Machine& mm) { return mm.current_round() >= 5; });
  EXPECT_TRUE(r1.predicate_hit);
  m.kill(victim);
  m.spawn([&](Ctx& ctx) { return poke_n(ctx, cells.base + 4, 6); });
  auto r2 = m.run_synchronous();
  EXPECT_TRUE(r2.all_finished);
  EXPECT_EQ(m.mem().peek(cells.base + 4 + 1), 5);  // second program finished
}

TEST(MachineEdge, StallModelUnderSerialSchedulerIsJustSerial) {
  // With one processor stepping per round there is never a collision, so
  // the stall model must behave exactly like CRCW: zero stalls.
  Machine m(MachineOptions{.memory_model = MemoryModel::kStall});
  auto cell = m.mem().alloc("c", 1, 0);
  for (int p = 0; p < 4; ++p) {
    m.spawn([&](Ctx& ctx) { return hit_one(ctx, cell.base, 3); });
  }
  pram::RoundRobinScheduler serial(1);
  auto r = m.run(serial);
  EXPECT_TRUE(r.all_finished);
  EXPECT_EQ(m.metrics().stalls(), 0u);
  EXPECT_EQ(r.rounds, 12u);
}

TEST(MachineEdge, StallModelWithRandomSubsetStillCompletes) {
  Machine m(MachineOptions{.memory_model = MemoryModel::kStall});
  auto cell = m.mem().alloc("hot", 1, 0);
  for (int p = 0; p < 8; ++p) {
    m.spawn([&](Ctx& ctx) { return hit_one(ctx, cell.base, 4); });
  }
  pram::RandomSubsetScheduler sched(0.6, 9);
  auto r = m.run(sched);
  EXPECT_TRUE(r.all_finished);
}

TEST(MachineEdge, BarrierDeadlockHitsRoundCapNotInfiniteLoop) {
  Machine m(MachineOptions{.max_rounds = 200});
  auto barrier = pram::make_barrier(m.mem(), "b", 3);
  for (int p = 0; p < 2; ++p) {  // only 2 of 3 parties ever arrive
    m.spawn([barrier](Ctx& ctx) -> Task {
      return [](Ctx& c, pram::PramBarrier b) -> Task {
        co_await pram::barrier_wait(c, b);
      }(ctx, barrier);
    });
  }
  auto r = m.run_synchronous();
  EXPECT_TRUE(r.hit_round_cap);
  EXPECT_FALSE(r.all_finished);
}

TEST(MachineEdge, SuspendedEverybodyWithoutHookStopsCleanly) {
  Machine m;
  auto cell = m.mem().alloc("c", 1, 0);
  const auto p = m.spawn([&](Ctx& ctx) { return hit_one(ctx, cell.base, 100); });
  auto r1 = m.run_synchronous([](const Machine& mm) { return mm.current_round() >= 2; });
  EXPECT_TRUE(r1.predicate_hit);
  m.suspend(p);
  auto r2 = m.run_synchronous();  // nothing can make progress, no hook
  EXPECT_FALSE(r2.all_finished);
  EXPECT_FALSE(r2.hit_round_cap);  // detected as stuck, not spun to the cap
  m.awaken(p);
  auto r3 = m.run_synchronous();
  EXPECT_TRUE(r3.all_finished);
}

// ------------------------------------------------------------ structures

TEST(FatTreeEdge, HigherQuotaFillsMore) {
  // With the same writer count, doubling the per-writer quota cannot fill
  // fewer cells (same RNG streams prefix).
  double fills[2];
  for (int q = 0; q < 2; ++q) {
    wfsort::FatTree ft(4, 8);
    std::vector<std::int64_t> slice(15);
    for (int i = 0; i < 15; ++i) slice[i] = i;
    for (std::uint32_t w = 0; w < 8; ++w) {
      wfsort::Rng rng(w + 1);
      ft.write_random_cells(slice, q == 0 ? 2 : 12, rng);
    }
    fills[q] = ft.fill_fraction();
  }
  EXPECT_GE(fills[1], fills[0]);
  EXPECT_GT(fills[1], 0.45);
}

TEST(WinnerTreeEdge, WaveSpanIsBoundedByKLogP) {
  // With wait_unit = K, the pre-wait is at most K * log2(P') yields; the
  // tournament must therefore decide within a small multiple of that when
  // run single-threaded.
  wfsort::WinnerTree wt(64, /*wait_unit=*/3);
  wfsort::Rng rng(4);
  const auto winner = wt.compete(17, 1234, rng);
  EXPECT_EQ(winner, 1234);  // alone, own candidate must win
  EXPECT_EQ(wt.winner(), 1234);
}

TEST(WinnerTreeEdge, LateArrivalsAfterDecisionLearnIt) {
  wfsort::WinnerTree wt(16, 0);
  wfsort::Rng rng(5);
  ASSERT_EQ(wt.compete(0, 7, rng), 7);
  for (std::uint32_t s = 0; s < 16; ++s) {
    EXPECT_EQ(wt.compete(s, 1000 + s, rng), 7) << s;
  }
}

}  // namespace
