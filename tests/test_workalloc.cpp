// Tests for work allocation: native WAT / LC-WAT and their PRAM-program
// forms, including completion under adversarial schedules and crashes.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "pram/machine.h"
#include "pram/scheduler.h"
#include "pram/subtask.h"
#include "workalloc/lcwat.h"
#include "workalloc/lcwat_program.h"
#include "workalloc/wat.h"
#include "workalloc/wat_program.h"
#include "workalloc/write_all.h"

namespace {

using wfsort::LcWat;
using wfsort::Rng;
using wfsort::Wat;

// ------------------------------------------------------------ native WAT

TEST(Wat, SingleWorkerVisitsEveryJobExactlyOnce) {
  for (std::uint64_t jobs : {1ULL, 2ULL, 7ULL, 8ULL, 33ULL, 100ULL}) {
    Wat wat(jobs);
    std::vector<int> hits(jobs, 0);
    std::int64_t node = wat.initial_leaf(0, 1);
    while (true) {
      if (wat.is_job_leaf(node)) ++hits[wat.job_of(node)];
      node = wat.next_element(node);
      if (node == Wat::kAllJobsDone) break;
    }
    EXPECT_TRUE(wat.all_done());
    for (std::uint64_t j = 0; j < jobs; ++j) {
      EXPECT_EQ(hits[j], 1) << "jobs=" << jobs << " job=" << j;
    }
  }
}

TEST(Wat, InitialLeafSpreadsProcessors) {
  Wat wat(64);
  std::set<std::int64_t> leaves;
  for (std::uint32_t p = 0; p < 8; ++p) leaves.insert(wat.initial_leaf(p, 8));
  EXPECT_EQ(leaves.size(), 8u);  // eight distinct starting leaves
}

TEST(Wat, PaddingLeavesAreNeverHandedOut) {
  Wat wat(5);  // rounds up to 8 leaves; 3 padding
  std::int64_t node = wat.initial_leaf(0, 1);
  std::set<std::uint64_t> jobs_seen;
  while (node != Wat::kAllJobsDone) {
    if (wat.is_leaf(node)) {
      const std::uint64_t j = wat.job_of(node);
      EXPECT_LT(j, 5u);
      jobs_seen.insert(j);
    }
    node = wat.next_element(node);
  }
  EXPECT_EQ(jobs_seen.size(), 5u);
}

TEST(Wat, ResetRestoresFreshTree) {
  Wat wat(16);
  std::int64_t node = wat.initial_leaf(0, 1);
  while (node != Wat::kAllJobsDone) node = wat.next_element(node);
  EXPECT_TRUE(wat.all_done());
  wat.reset();
  EXPECT_FALSE(wat.all_done());
  int count = 0;
  node = wat.initial_leaf(0, 1);
  while (node != Wat::kAllJobsDone) {
    if (wat.is_job_leaf(node)) ++count;
    node = wat.next_element(node);
  }
  EXPECT_EQ(count, 16);
}

TEST(Wat, ManyThreadsCoverAllJobs) {
  constexpr std::uint64_t kJobs = 512;
  constexpr unsigned kThreads = 8;
  Wat wat(kJobs);
  std::vector<std::atomic<int>> hits(kJobs);
  for (auto& h : hits) h.store(0);

  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::int64_t node = wat.initial_leaf(t, kThreads);
      while (node != Wat::kAllJobsDone) {
        if (wat.is_job_leaf(node)) {
          hits[wat.job_of(node)].fetch_add(1, std::memory_order_relaxed);
        }
        node = wat.next_element(node);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_TRUE(wat.all_done());
  for (std::uint64_t j = 0; j < kJobs; ++j) {
    EXPECT_GE(hits[j].load(), 1) << "job " << j << " never executed";
  }
}

TEST(Wat, SurvivorFinishesAloneAfterOthersAbandon) {
  // Simulates crash-failures: 7 "threads" each do exactly one job and stop
  // (their WAT state is whatever they left behind); one survivor then runs
  // to completion and must still cover everything.
  constexpr std::uint64_t kJobs = 64;
  Wat wat(kJobs);
  std::vector<int> hits(kJobs, 0);
  for (std::uint32_t p = 1; p < 8; ++p) {
    std::int64_t node = wat.initial_leaf(p, 8);
    if (wat.is_job_leaf(node)) ++hits[wat.job_of(node)];
    (void)wat.next_element(node);  // crash right after one call
  }
  std::int64_t node = wat.initial_leaf(0, 8);
  while (node != Wat::kAllJobsDone) {
    if (wat.is_job_leaf(node)) ++hits[wat.job_of(node)];
    node = wat.next_element(node);
  }
  EXPECT_TRUE(wat.all_done());
  for (std::uint64_t j = 0; j < kJobs; ++j) EXPECT_GE(hits[j], 1);
}

// ------------------------------------------------------------ native LC-WAT

TEST(LcWat, SingleWorkerCompletesAllJobs) {
  for (std::uint64_t jobs : {1ULL, 2ULL, 5ULL, 16ULL, 100ULL}) {
    LcWat wat(jobs);
    Rng rng(jobs * 7 + 1);
    std::vector<int> hits(jobs, 0);
    wat.solve(rng, [&](std::uint64_t j) { ++hits[j]; });
    EXPECT_TRUE(wat.all_done()) << "jobs=" << jobs;
    for (std::uint64_t j = 0; j < jobs; ++j) EXPECT_GE(hits[j], 1);
  }
}

TEST(LcWat, ManyThreadsCoverAllJobsAndAllQuit) {
  constexpr std::uint64_t kJobs = 256;
  constexpr unsigned kThreads = 8;
  LcWat wat(kJobs);
  std::vector<std::atomic<int>> hits(kJobs);
  for (auto& h : hits) h.store(0);

  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + t);
      wat.solve(rng, [&](std::uint64_t j) { hits[j].fetch_add(1); });
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(wat.all_done());
  for (std::uint64_t j = 0; j < kJobs; ++j) EXPECT_GE(hits[j].load(), 1);
}

TEST(LcWat, PaddingNeverExecutesPhantomJobs) {
  LcWat wat(5);
  Rng rng(3);
  std::vector<int> hits(5, 0);
  wat.solve(rng, [&](std::uint64_t j) {
    ASSERT_LT(j, 5u);
    ++hits[j];
  });
  for (int h : hits) EXPECT_GE(h, 1);
}

TEST(LcWat, StepReportsQuitOnlyAfterAllDone) {
  LcWat wat(8);
  Rng rng(5);
  bool quit_seen = false;
  for (int iter = 0; iter < 100000 && !quit_seen; ++iter) {
    if (wat.step(rng, [](std::uint64_t) {}) == LcWat::Outcome::kQuit) {
      quit_seen = true;
      EXPECT_TRUE(wat.all_done());
    }
  }
  EXPECT_TRUE(quit_seen);
}

// ------------------------------------------------------------ PRAM WAT

TEST(PramWriteAll, WatSynchronousCompletes) {
  for (std::uint64_t n : {1ULL, 8ULL, 64ULL, 100ULL}) {
    pram::Machine m;
    pram::SynchronousScheduler sched;
    auto out = wfsort::sim::write_all_wat(m, n, static_cast<std::uint32_t>(n), sched);
    EXPECT_TRUE(out.run.all_finished) << n;
    EXPECT_TRUE(out.complete) << n;
  }
}

TEST(PramWriteAll, WatRoundsLogarithmicWhenPEqualsN) {
  // Lemma 2.3 with K = 1: O(K + log N) rounds.  The constant here is
  // generous but the growth must be logarithmic, which E1 quantifies.
  for (std::uint64_t n : {16ULL, 64ULL, 256ULL, 1024ULL}) {
    pram::Machine m;
    pram::SynchronousScheduler sched;
    auto out = wfsort::sim::write_all_wat(m, n, static_cast<std::uint32_t>(n), sched);
    ASSERT_TRUE(out.complete);
    const double logn = static_cast<double>(wfsort::log2_ceil(n));
    EXPECT_LE(static_cast<double>(out.run.rounds), 8.0 * logn + 16.0) << "N=" << n;
  }
}

TEST(PramWriteAll, WatFewerProcessorsStillComplete) {
  pram::Machine m;
  pram::SynchronousScheduler sched;
  auto out = wfsort::sim::write_all_wat(m, 128, 8, sched);
  EXPECT_TRUE(out.complete);
}

TEST(PramWriteAll, WatSequentialAdversaryCompletes) {
  pram::Machine m;
  pram::RoundRobinScheduler sched(1);
  auto out = wfsort::sim::write_all_wat(m, 32, 8, sched);
  EXPECT_TRUE(out.complete);
}

TEST(PramWriteAll, WatSurvivesMassCrash) {
  pram::Machine m;
  pram::SynchronousScheduler sched;
  // Kill 31 of 32 processors at round 6; the lone survivor must finish.
  m.set_round_hook([](pram::Machine& mm, std::uint64_t round) {
    if (round == 6) {
      for (pram::ProcId p = 1; p < 32; ++p) mm.kill(p);
    }
  });
  auto out = wfsort::sim::write_all_wat(m, 64, 32, sched);
  EXPECT_TRUE(out.run.all_finished);
  EXPECT_TRUE(out.complete);
}

TEST(PramWriteAll, WatAllKilledLeavesWorkIncomplete) {
  pram::Machine m;
  pram::SynchronousScheduler sched;
  m.set_round_hook([](pram::Machine& mm, std::uint64_t round) {
    if (round == 2) {
      for (pram::ProcId p = 0; p < 8; ++p) mm.kill(p);
    }
  });
  auto out = wfsort::sim::write_all_wat(m, 256, 8, sched);
  EXPECT_FALSE(out.complete);  // nobody left; documents the failure model
}

TEST(PramWriteAll, WatCrashAndSpawnReplacement) {
  // Not part of write_all_wat's canned flow: drive the machine directly so a
  // replacement can be spawned after the original crew crashes.
  pram::Machine m;
  constexpr std::uint64_t kJobs = 64;
  auto b = m.mem().alloc("B", kJobs, 0);
  auto wat = wfsort::sim::make_pram_wat(m.mem(), "WAT", kJobs);
  auto make_worker = [wat, b](std::uint32_t nprocs) {
    return [wat, b, nprocs](pram::Ctx& ctx) {
      return wfsort::sim::wat_worker(
          ctx, wat, nprocs, [b](pram::Ctx& c, std::uint64_t j) -> pram::SubTask<void> {
            co_await c.write(b.base + j, 1);
          });
    };
  };
  for (std::uint32_t p = 0; p < 4; ++p) m.spawn(make_worker(4));
  // Reap the whole original crew mid-run and hand the job to one late
  // joiner.  (The machine stops as soon as every live processor is done, so
  // the replacement must be spawned no later than the crash round.)
  m.set_round_hook([&](pram::Machine& mm, std::uint64_t round) {
    if (round == 5) {
      for (pram::ProcId p = 0; p < 4; ++p) mm.kill(p);
      mm.spawn(make_worker(4));
    }
  });
  auto r = m.run_synchronous();
  EXPECT_TRUE(r.all_finished);
  for (std::uint64_t j = 0; j < kJobs; ++j) EXPECT_EQ(m.mem().peek(b.base + j), 1);
}

// ------------------------------------------------------------ PRAM LC-WAT

TEST(PramWriteAll, LcWatSynchronousCompletes) {
  for (std::uint64_t n : {1ULL, 8ULL, 64ULL, 200ULL}) {
    pram::Machine m;
    pram::SynchronousScheduler sched;
    auto out = wfsort::sim::write_all_lcwat(m, n, static_cast<std::uint32_t>(n), sched);
    EXPECT_TRUE(out.run.all_finished) << n;
    EXPECT_TRUE(out.complete) << n;
  }
}

TEST(PramWriteAll, LcWatContentionWellBelowWat) {
  // The whole point of LC-WAT: no polling hot-spot.  With P = N = 256 the
  // deterministic skeleton's final-leaf / root traffic is much hotter than
  // random probing.  (E5 measures the asymptotics; here we just check the
  // ordering.)
  constexpr std::uint64_t kN = 256;
  pram::Machine m_wat, m_lc;
  pram::SynchronousScheduler s1, s2;
  auto wat_out = wfsort::sim::write_all_wat(m_wat, kN, kN, s1);
  auto lc_out = wfsort::sim::write_all_lcwat(m_lc, kN, kN, s2);
  ASSERT_TRUE(wat_out.complete);
  ASSERT_TRUE(lc_out.complete);
  EXPECT_LT(m_lc.metrics().max_cell_contention(), m_wat.metrics().max_cell_contention());
  EXPECT_LE(m_lc.metrics().max_cell_contention(), 24u);  // ~ c log P / log log P
}

TEST(PramWriteAll, LcWatSurvivesMassCrash) {
  pram::Machine m;
  pram::SynchronousScheduler sched;
  m.set_round_hook([](pram::Machine& mm, std::uint64_t round) {
    if (round == 4) {
      for (pram::ProcId p = 1; p < 32; ++p) mm.kill(p);
    }
  });
  auto out = wfsort::sim::write_all_lcwat(m, 32, 32, sched);
  EXPECT_TRUE(out.run.all_finished);
  EXPECT_TRUE(out.complete);
}

TEST(PramWriteAll, LcWatSequentialAdversaryCompletes) {
  pram::Machine m;
  pram::RoundRobinScheduler sched(1);
  auto out = wfsort::sim::write_all_lcwat(m, 16, 4, sched);
  EXPECT_TRUE(out.complete);
}

}  // namespace
