// Parameterized property sweeps: named grids of configurations, each
// asserting the library's core invariants.  (The fuzz_sort tool covers the
// randomized version of this; these sweeps are the deterministic, named,
// always-run subset.)
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "common/rng.h"
#include "core/sort.h"
#include "exp/workloads.h"
#include "pram/machine.h"
#include "pram/scheduler.h"
#include "pramsort/driver.h"
#include "pramsort/validate.h"
#include "workalloc/lcwat.h"
#include "workalloc/wat.h"

namespace {

using wfsort::Rng;

// ------------------------------------------------ machine: counter property

enum class SchedKind { kSync, kSerial, kSubset, kFreeze };

const char* sched_name(SchedKind k) {
  switch (k) {
    case SchedKind::kSync: return "sync";
    case SchedKind::kSerial: return "serial";
    case SchedKind::kSubset: return "subset";
    case SchedKind::kFreeze: return "freeze";
  }
  return "?";
}

std::unique_ptr<pram::Scheduler> make_sched(SchedKind k, std::uint64_t seed) {
  switch (k) {
    case SchedKind::kSync: return std::make_unique<pram::SynchronousScheduler>();
    case SchedKind::kSerial: return std::make_unique<pram::RoundRobinScheduler>(1);
    case SchedKind::kSubset:
      return std::make_unique<pram::RandomSubsetScheduler>(0.5, seed);
    case SchedKind::kFreeze: return std::make_unique<pram::HalfFreezeScheduler>(4);
  }
  return nullptr;
}

struct CounterParam {
  SchedKind sched;
  std::uint32_t procs;
  std::uint64_t seed;
};

class CounterSweep : public testing::TestWithParam<CounterParam> {};

pram::Task add_three(pram::Ctx& ctx, pram::Addr a) {
  for (int i = 0; i < 3; ++i) (void)co_await ctx.faa(a, 1);
}

// Linearizable counter: the final value is exact under EVERY schedule.
TEST_P(CounterSweep, FaaCounterIsExactUnderAnySchedule) {
  const auto p = GetParam();
  pram::Machine m(pram::MachineOptions{.seed = p.seed});
  auto cell = m.mem().alloc("ctr", 1, 0);
  for (std::uint32_t i = 0; i < p.procs; ++i) {
    m.spawn([&cell](pram::Ctx& ctx) { return add_three(ctx, cell.base); });
  }
  auto sched = make_sched(p.sched, p.seed);
  auto r = m.run(*sched);
  ASSERT_TRUE(r.all_finished);
  EXPECT_EQ(m.mem().peek(cell.base), static_cast<pram::Word>(p.procs) * 3);
}

std::vector<CounterParam> counter_grid() {
  std::vector<CounterParam> out;
  for (SchedKind s : {SchedKind::kSync, SchedKind::kSerial, SchedKind::kSubset,
                      SchedKind::kFreeze}) {
    for (std::uint32_t procs : {1u, 7u, 32u}) {
      out.push_back({s, procs, 11 * procs + 1});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Grid, CounterSweep, testing::ValuesIn(counter_grid()),
                         [](const testing::TestParamInfo<CounterParam>& pi) {
                           return std::string(sched_name(pi.param.sched)) + "_p" +
                                  std::to_string(pi.param.procs);
                         });

// ------------------------------------------------ sim sort: validated grid

struct SimSortParam {
  std::size_t n;
  std::uint32_t procs;
  SchedKind sched;
  wfsort::sim::PlacePrune prune;
};

class SimSortSweep : public testing::TestWithParam<SimSortParam> {};

TEST_P(SimSortSweep, SortsAndValidates) {
  const auto p = GetParam();
  pram::Machine m;
  auto keys = wfsort::exp::make_word_keys(p.n, wfsort::exp::Dist::kShuffled, p.n + p.procs);
  auto sched = make_sched(p.sched, 3);
  auto res = wfsort::sim::run_det_sort(m, keys, p.procs, *sched,
                                       wfsort::sim::DetSortConfig{.prune = p.prune});
  ASSERT_TRUE(res.sorted);
  auto report = wfsort::sim::validate_sort_run(m, res.layout, 0);
  EXPECT_TRUE(report.ok) << report.error;
}

std::vector<SimSortParam> sim_grid() {
  using wfsort::sim::PlacePrune;
  std::vector<SimSortParam> out;
  for (SchedKind s : {SchedKind::kSync, SchedKind::kSubset}) {
    for (std::uint32_t procs : {1u, 16u, 96u}) {
      for (PlacePrune prune :
           {PlacePrune::kNone, PlacePrune::kPlaced, PlacePrune::kCompleted}) {
        out.push_back({96, procs, s, prune});
      }
    }
  }
  // The serial adversary, sound policies only (kPlaced is lockstep-only).
  out.push_back({48, 8, SchedKind::kSerial, PlacePrune::kCompleted});
  out.push_back({48, 8, SchedKind::kSerial, PlacePrune::kNone});
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimSortSweep, testing::ValuesIn(sim_grid()),
    [](const testing::TestParamInfo<SimSortParam>& pi) {
      const auto& p = pi.param;
      const char* prune = p.prune == wfsort::sim::PlacePrune::kNone       ? "none"
                          : p.prune == wfsort::sim::PlacePrune::kPlaced   ? "placed"
                                                                          : "done";
      return std::string(sched_name(p.sched)) + "_p" + std::to_string(p.procs) + "_" +
             prune;
    });

// ------------------------------------------------ native: crash-mask grid

class CrashMaskSweep : public testing::TestWithParam<int> {};

// Crash every subset of workers {1,2,3} (worker 0 always survives): the
// sort must complete and be correct for all 8 masks.
TEST_P(CrashMaskSweep, AnySubsetOfWorkersMayDie) {
  const int mask = GetParam();
  auto v = wfsort::exp::make_u64_keys(3000, wfsort::exp::Dist::kUniform, 500 + mask);
  auto expected = v;
  std::sort(expected.begin(), expected.end());

  wfsort::runtime::FaultPlan plan(4);
  for (int t = 1; t <= 3; ++t) {
    if ((mask >> (t - 1)) & 1) plan.crash_at(static_cast<std::uint32_t>(t), 40u * t + 5);
  }
  const bool ok = wfsort::sort_with_faults(std::span<std::uint64_t>(v),
                                           wfsort::Options{.threads = 4}, plan);
  ASSERT_TRUE(ok);
  EXPECT_EQ(v, expected);
}

INSTANTIATE_TEST_SUITE_P(AllMasks, CrashMaskSweep, testing::Range(0, 8));

// ------------------------------------------------ work allocation coverage

class WatSeedSweep : public testing::TestWithParam<std::uint64_t> {};

// Whatever interleaving the OS produces (varied via thread count and seed),
// a WAT hands out every job and an LC-WAT completes every job.
TEST_P(WatSeedSweep, BothAllocatorsCoverEveryJob) {
  const std::uint64_t seed = GetParam();
  const std::uint64_t jobs = 100 + seed * 37 % 200;

  wfsort::Wat wat(jobs);
  std::set<std::uint64_t> handed;
  std::int64_t node = wat.initial_leaf(static_cast<std::uint32_t>(seed % 5), 5);
  while (node != wfsort::Wat::kAllJobsDone) {
    if (wat.is_job_leaf(node)) handed.insert(wat.job_of(node));
    node = wat.next_element(node);
  }
  EXPECT_EQ(handed.size(), jobs);

  wfsort::LcWat lc(jobs);
  Rng rng(seed);
  std::set<std::uint64_t> done;
  lc.solve(rng, [&done](std::uint64_t j) { done.insert(j); });
  EXPECT_EQ(done.size(), jobs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WatSeedSweep, testing::Values(1, 2, 3, 5, 8, 13, 21));

}  // namespace
