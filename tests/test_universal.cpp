// Tests for the wait-free universal construction (the Section-1.1 strawman):
// exactly-once application, dense linearization order, completion under
// concurrency, and the derived universal-object sort.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "baselines/universal.h"
#include "common/rng.h"

namespace {

using wfsort::baselines::UniversalLog;

TEST(UniversalLog, SingleThreadSequentialPositions) {
  UniversalLog<int> log(1, 64);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(log.apply(0, 100 + i), i);
  }
  std::vector<int> seen;
  log.replay([&seen](const int& op) { seen.push_back(op); });
  ASSERT_EQ(seen.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(seen[i], 100 + i);
  EXPECT_EQ(log.decided_slots(), 10u);
}

TEST(UniversalLog, ConcurrentAppliersEveryOpExactlyOnce) {
  constexpr std::uint32_t kThreads = 8;
  constexpr int kOpsPerThread = 500;
  UniversalLog<std::uint64_t> log(kThreads, 4 * kThreads * kOpsPerThread);

  {
    std::vector<std::jthread> crew;
    for (std::uint32_t t = 0; t < kThreads; ++t) {
      crew.emplace_back([&log, t] {
        for (int i = 0; i < kOpsPerThread; ++i) {
          const std::int64_t pos =
              log.apply(t, (static_cast<std::uint64_t>(t) << 32) | static_cast<std::uint32_t>(i));
          ASSERT_GE(pos, 0);
        }
      });
    }
  }

  // Exactly-once: every (thread, i) op appears once in the replay.
  std::vector<int> counts(kThreads * kOpsPerThread, 0);
  std::size_t total = 0;
  log.replay([&](const std::uint64_t& op) {
    const std::uint32_t t = static_cast<std::uint32_t>(op >> 32);
    const std::uint32_t i = static_cast<std::uint32_t>(op & 0xffffffffu);
    ASSERT_LT(t, kThreads);
    ASSERT_LT(i, static_cast<std::uint32_t>(kOpsPerThread));
    ++counts[t * kOpsPerThread + i];
    ++total;
  });
  EXPECT_EQ(total, static_cast<std::size_t>(kThreads) * kOpsPerThread);
  for (int c : counts) EXPECT_EQ(c, 1);
}

TEST(UniversalLog, PerThreadOrderIsPreserved) {
  // Operations by the same thread must linearize in program order (each
  // apply returns before the next starts).
  constexpr std::uint32_t kThreads = 4;
  constexpr int kOps = 200;
  UniversalLog<std::uint64_t> log(kThreads, 8 * kThreads * kOps);
  std::vector<std::vector<std::int64_t>> positions(kThreads);
  {
    std::vector<std::jthread> crew;
    for (std::uint32_t t = 0; t < kThreads; ++t) {
      crew.emplace_back([&, t] {
        for (int i = 0; i < kOps; ++i) {
          positions[t].push_back(log.apply(t, t * 1000 + static_cast<std::uint64_t>(i)));
        }
      });
    }
  }
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(std::is_sorted(positions[t].begin(), positions[t].end()));
  }
}

TEST(UniversalObjectSort, SortsCorrectly) {
  wfsort::Rng rng(12);
  for (std::uint32_t threads : {1u, 4u}) {
    std::vector<std::uint64_t> in(3000);
    for (auto& x : in) x = rng.below(500);
    std::vector<std::uint64_t> out;
    std::size_t slots = 0;
    wfsort::baselines::universal_object_sort(in, out, threads, &slots);
    auto expected = in;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(out, expected);
    EXPECT_GE(slots, in.size());  // at least one slot per op
  }
}

}  // namespace
