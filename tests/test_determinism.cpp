// Golden determinism suite for the simulator's round engine.
//
// For fixed seeds, a run's observable behavior — round count, op count,
// contention, QRQW time, and the full served-operation stream (order
// included, folded into an FNV-1a hash by pram::HashTracer) — is pinned to
// golden constants.  Any engine refactor must reproduce them bit-for-bit.
//
// The goldens were recorded from the flat-array round engine, whose
// canonical within-round serving order is first-touch (the order the
// stepping list first names each cell).  The pre-flat-array engine served
// cells in std::unordered_map iteration order — an accident of the
// container (and of the standard library's bucket layout), not a spec —
// so its executions differ from these goldens in which equally-valid CRCW
// arbitration stream they realize; aggregate invariants (sortedness, the
// one-winner-per-round CAS property, wait-free step bounds) hold in both.
// First-touch order is the defined behavior from here on.
//
// If an *intentional* behavior change ever touches these numbers, re-record
// by running this binary and copying the "recorded:" lines it prints.
#include <gtest/gtest.h>

#include <cstdint>
#include <iostream>
#include <numeric>
#include <span>
#include <vector>

#include "common/rng.h"
#include "pram/machine.h"
#include "pram/scheduler.h"
#include "pram/trace.h"
#include "pramsort/driver.h"

namespace {

struct RunFingerprint {
  std::uint64_t rounds = 0;
  std::uint64_t total_ops = 0;
  std::uint64_t max_cell_contention = 0;
  std::uint64_t qrqw_time = 0;
  std::uint64_t trace_events = 0;
  std::uint64_t trace_hash = 0;

  friend bool operator==(const RunFingerprint&, const RunFingerprint&) = default;
};

std::ostream& operator<<(std::ostream& os, const RunFingerprint& f) {
  return os << "{" << f.rounds << "ULL, " << f.total_ops << "ULL, " << f.max_cell_contention
            << "ULL, " << f.qrqw_time << "ULL, " << f.trace_events << "ULL, 0x" << std::hex
            << f.trace_hash << std::dec << "ULL}";
}

std::vector<pram::Word> golden_keys(std::size_t n, std::uint64_t seed) {
  std::vector<pram::Word> keys(n);
  std::iota(keys.begin(), keys.end(), pram::Word{0});
  wfsort::Rng rng(seed);
  rng.shuffle(std::span<pram::Word>(keys));
  return keys;
}

RunFingerprint fingerprint(const pram::Machine& m, const pram::RunResult& run,
                           const pram::HashTracer& tracer) {
  return RunFingerprint{run.rounds,
                        m.metrics().total_ops(),
                        m.metrics().max_cell_contention(),
                        m.metrics().qrqw_time(),
                        tracer.total_events(),
                        tracer.hash()};
}

RunFingerprint det_sort_fingerprint(pram::MemoryModel model, std::size_t n, std::uint32_t procs,
                                    pram::Scheduler& sched) {
  pram::Machine m(pram::MachineOptions{.memory_model = model});
  pram::HashTracer tracer;
  m.set_tracer(&tracer);
  auto keys = golden_keys(n, /*seed=*/1234);
  auto res = wfsort::sim::run_det_sort(m, keys, procs, sched);
  EXPECT_TRUE(res.run.all_finished);
  EXPECT_TRUE(res.sorted);
  return fingerprint(m, res.run, tracer);
}

RunFingerprint lc_sort_fingerprint(std::size_t n, std::uint32_t procs) {
  pram::Machine m;
  pram::HashTracer tracer;
  m.set_tracer(&tracer);
  auto keys = golden_keys(n, /*seed=*/98765);
  auto res = wfsort::sim::run_lc_sort_sync(m, keys, procs);
  EXPECT_TRUE(res.run.all_finished);
  EXPECT_TRUE(res.sorted);
  return fingerprint(m, res.run, tracer);
}

void check(const char* label, const RunFingerprint& golden, const RunFingerprint& actual) {
  std::cout << "recorded: " << label << " = " << actual << "\n";
  EXPECT_EQ(golden.rounds, actual.rounds) << label;
  EXPECT_EQ(golden.total_ops, actual.total_ops) << label;
  EXPECT_EQ(golden.max_cell_contention, actual.max_cell_contention) << label;
  EXPECT_EQ(golden.qrqw_time, actual.qrqw_time) << label;
  EXPECT_EQ(golden.trace_events, actual.trace_events) << label;
  EXPECT_EQ(golden.trace_hash, actual.trace_hash) << label;
}

// Goldens recorded from the pre-flat-array engine (see file comment).
constexpr RunFingerprint kDetSyncCrcw = {239ULL, 22520ULL, 95ULL, 3074ULL, 22520ULL,
                                         0xff0e48765224d81dULL};
constexpr RunFingerprint kDetSyncStall = {408ULL, 8339ULL, 63ULL, 10993ULL, 8339ULL,
                                          0xe5c2fd7ae137ab13ULL};
constexpr RunFingerprint kDetRoundRobin = {1819ULL, 5453ULL, 3ULL, 2082ULL, 5453ULL,
                                           0xcb3354741931f829ULL};
constexpr RunFingerprint kDetHalfFreeze = {401ULL, 9410ULL, 24ULL, 1700ULL, 9410ULL,
                                           0x931156cdbad4b695ULL};
constexpr RunFingerprint kLcSync = {790ULL, 67108ULL, 23ULL, 2719ULL, 67108ULL,
                                    0x116e149013b09f7dULL};

TEST(Determinism, DetSortSynchronousCrcwMatchesGolden) {
  pram::SynchronousScheduler sched;
  check("kDetSyncCrcw", kDetSyncCrcw,
        det_sort_fingerprint(pram::MemoryModel::kCrcw, /*n=*/96, /*procs=*/96, sched));
}

TEST(Determinism, DetSortSynchronousStallMatchesGolden) {
  pram::SynchronousScheduler sched;
  check("kDetSyncStall", kDetSyncStall,
        det_sort_fingerprint(pram::MemoryModel::kStall, /*n=*/64, /*procs=*/64, sched));
}

TEST(Determinism, DetSortRoundRobinMatchesGolden) {
  pram::RoundRobinScheduler sched(/*width=*/3);
  check("kDetRoundRobin", kDetRoundRobin,
        det_sort_fingerprint(pram::MemoryModel::kCrcw, /*n=*/32, /*procs=*/32, sched));
}

TEST(Determinism, DetSortHalfFreezeMatchesGolden) {
  pram::HalfFreezeScheduler sched(/*period=*/4);
  check("kDetHalfFreeze", kDetHalfFreeze,
        det_sort_fingerprint(pram::MemoryModel::kCrcw, /*n=*/48, /*procs=*/48, sched));
}

TEST(Determinism, LcSortSynchronousMatchesGolden) {
  check("kLcSync", kLcSync, lc_sort_fingerprint(/*n=*/96, /*procs=*/96));
}

// The fingerprint must also be stable across repeated runs in one process
// (schedulers and machines are freshly constructed each time).
TEST(Determinism, RepeatedRunsAreBitIdentical) {
  pram::SynchronousScheduler s1, s2;
  const auto a = det_sort_fingerprint(pram::MemoryModel::kCrcw, 64, 64, s1);
  const auto b = det_sort_fingerprint(pram::MemoryModel::kCrcw, 64, 64, s2);
  EXPECT_EQ(a, b);
}

}  // namespace
