// Golden determinism suite for the simulator's round engine.
//
// For fixed seeds, a run's observable behavior — round count, op count,
// contention, QRQW time, and the full served-operation stream (order
// included, folded into an FNV-1a hash by pram::HashTracer) — is pinned to
// golden constants.  Any engine refactor must reproduce them bit-for-bit.
//
// The goldens were recorded from the flat-array round engine, whose
// canonical within-round serving order is first-touch (the order the
// stepping list first names each cell).  The pre-flat-array engine served
// cells in std::unordered_map iteration order — an accident of the
// container (and of the standard library's bucket layout), not a spec —
// so its executions differ from these goldens in which equally-valid CRCW
// arbitration stream they realize; aggregate invariants (sortedness, the
// one-winner-per-round CAS property, wait-free step bounds) hold in both.
// First-touch order is the defined behavior from here on.
//
// Every golden is checked at sim_threads 1, 2, and 4 (par_round_min = 1 so
// even narrow rounds go through the sharded engine): MachineOptions::
// sim_threads is a throughput knob, never a behavior knob, and this suite is
// what pins that contract.  ParallelEngineFullObservables goes beyond the
// fingerprint and compares the complete metrics surface — per-cell
// contention histogram, region attribution, hottest cell/round, per-
// processor op and finish-step vectors — between thread counts.
//
// If an *intentional* behavior change ever touches these numbers, re-record
// by running this binary and copying the "recorded:" lines it prints.
#include <gtest/gtest.h>

#include <cstdint>
#include <iostream>
#include <map>
#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "pram/machine.h"
#include "pram/scheduler.h"
#include "pram/trace.h"
#include "pramsort/driver.h"

namespace {

// Thread counts every golden is exercised at.  1 is the sequential engine;
// 2 and 4 shard the same rounds and must not change a single observable.
constexpr std::uint32_t kThreadSweep[] = {1, 2, 4};

struct RunFingerprint {
  std::uint64_t rounds = 0;
  std::uint64_t total_ops = 0;
  std::uint64_t max_cell_contention = 0;
  std::uint64_t qrqw_time = 0;
  std::uint64_t trace_events = 0;
  std::uint64_t trace_hash = 0;

  friend bool operator==(const RunFingerprint&, const RunFingerprint&) = default;
};

std::ostream& operator<<(std::ostream& os, const RunFingerprint& f) {
  return os << "{" << f.rounds << "ULL, " << f.total_ops << "ULL, " << f.max_cell_contention
            << "ULL, " << f.qrqw_time << "ULL, " << f.trace_events << "ULL, 0x" << std::hex
            << f.trace_hash << std::dec << "ULL}";
}

std::vector<pram::Word> golden_keys(std::size_t n, std::uint64_t seed) {
  std::vector<pram::Word> keys(n);
  std::iota(keys.begin(), keys.end(), pram::Word{0});
  wfsort::Rng rng(seed);
  rng.shuffle(std::span<pram::Word>(keys));
  return keys;
}

pram::MachineOptions machine_opts(pram::MemoryModel model, std::uint32_t sim_threads) {
  return pram::MachineOptions{.memory_model = model,
                              .sim_threads = sim_threads,
                              .par_round_min = 1};
}

RunFingerprint fingerprint(const pram::Machine& m, const pram::RunResult& run,
                           const pram::HashTracer& tracer) {
  return RunFingerprint{run.rounds,
                        m.metrics().total_ops(),
                        m.metrics().max_cell_contention(),
                        m.metrics().qrqw_time(),
                        tracer.total_events(),
                        tracer.hash()};
}

RunFingerprint det_sort_fingerprint(pram::MemoryModel model, std::size_t n, std::uint32_t procs,
                                    pram::Scheduler& sched, std::uint32_t sim_threads = 1) {
  pram::Machine m(machine_opts(model, sim_threads));
  pram::HashTracer tracer;
  m.set_tracer(&tracer);
  auto keys = golden_keys(n, /*seed=*/1234);
  auto res = wfsort::sim::run_det_sort(m, keys, procs, sched);
  EXPECT_TRUE(res.run.all_finished);
  EXPECT_TRUE(res.sorted);
  if (sim_threads > 1) {
    // Every served round must actually have gone through the sharded engine.
    EXPECT_GT(m.commit_stats().par_rounds, 0u);
    EXPECT_EQ(m.commit_stats().seq_rounds, 0u);
  }
  return fingerprint(m, res.run, tracer);
}

RunFingerprint lc_sort_fingerprint(std::size_t n, std::uint32_t procs,
                                   std::uint32_t sim_threads = 1) {
  pram::Machine m(machine_opts(pram::MemoryModel::kCrcw, sim_threads));
  pram::HashTracer tracer;
  m.set_tracer(&tracer);
  auto keys = golden_keys(n, /*seed=*/98765);
  auto res = wfsort::sim::run_lc_sort_sync(m, keys, procs);
  EXPECT_TRUE(res.run.all_finished);
  EXPECT_TRUE(res.sorted);
  return fingerprint(m, res.run, tracer);
}

void check(const char* label, const RunFingerprint& golden, const RunFingerprint& actual,
           std::uint32_t sim_threads = 1) {
  if (sim_threads == 1) std::cout << "recorded: " << label << " = " << actual << "\n";
  EXPECT_EQ(golden.rounds, actual.rounds) << label << " t=" << sim_threads;
  EXPECT_EQ(golden.total_ops, actual.total_ops) << label << " t=" << sim_threads;
  EXPECT_EQ(golden.max_cell_contention, actual.max_cell_contention)
      << label << " t=" << sim_threads;
  EXPECT_EQ(golden.qrqw_time, actual.qrqw_time) << label << " t=" << sim_threads;
  EXPECT_EQ(golden.trace_events, actual.trace_events) << label << " t=" << sim_threads;
  EXPECT_EQ(golden.trace_hash, actual.trace_hash) << label << " t=" << sim_threads;
}

// Goldens recorded from the pre-flat-array engine (see file comment).
constexpr RunFingerprint kDetSyncCrcw = {239ULL, 22520ULL, 95ULL, 3074ULL, 22520ULL,
                                         0xff0e48765224d81dULL};
constexpr RunFingerprint kDetSyncStall = {408ULL, 8339ULL, 63ULL, 10993ULL, 8339ULL,
                                          0xe5c2fd7ae137ab13ULL};
constexpr RunFingerprint kDetRoundRobin = {1819ULL, 5453ULL, 3ULL, 2082ULL, 5453ULL,
                                           0xcb3354741931f829ULL};
constexpr RunFingerprint kDetHalfFreeze = {401ULL, 9410ULL, 24ULL, 1700ULL, 9410ULL,
                                           0x931156cdbad4b695ULL};
constexpr RunFingerprint kLcSync = {790ULL, 67108ULL, 23ULL, 2719ULL, 67108ULL,
                                    0x116e149013b09f7dULL};

TEST(Determinism, DetSortSynchronousCrcwMatchesGolden) {
  for (std::uint32_t t : kThreadSweep) {
    pram::SynchronousScheduler sched;
    check("kDetSyncCrcw", kDetSyncCrcw,
          det_sort_fingerprint(pram::MemoryModel::kCrcw, /*n=*/96, /*procs=*/96, sched, t), t);
  }
}

TEST(Determinism, DetSortSynchronousStallMatchesGolden) {
  for (std::uint32_t t : kThreadSweep) {
    pram::SynchronousScheduler sched;
    check("kDetSyncStall", kDetSyncStall,
          det_sort_fingerprint(pram::MemoryModel::kStall, /*n=*/64, /*procs=*/64, sched, t), t);
  }
}

TEST(Determinism, DetSortRoundRobinMatchesGolden) {
  for (std::uint32_t t : kThreadSweep) {
    pram::RoundRobinScheduler sched(/*width=*/3);
    check("kDetRoundRobin", kDetRoundRobin,
          det_sort_fingerprint(pram::MemoryModel::kCrcw, /*n=*/32, /*procs=*/32, sched, t), t);
  }
}

TEST(Determinism, DetSortHalfFreezeMatchesGolden) {
  for (std::uint32_t t : kThreadSweep) {
    pram::HalfFreezeScheduler sched(/*period=*/4);
    check("kDetHalfFreeze", kDetHalfFreeze,
          det_sort_fingerprint(pram::MemoryModel::kCrcw, /*n=*/48, /*procs=*/48, sched, t), t);
  }
}

TEST(Determinism, LcSortSynchronousMatchesGolden) {
  for (std::uint32_t t : kThreadSweep) {
    check("kLcSync", kLcSync, lc_sort_fingerprint(/*n=*/96, /*procs=*/96, t), t);
  }
}

// The fingerprint must also be stable across repeated runs in one process
// (schedulers and machines are freshly constructed each time).
TEST(Determinism, RepeatedRunsAreBitIdentical) {
  pram::SynchronousScheduler s1, s2;
  const auto a = det_sort_fingerprint(pram::MemoryModel::kCrcw, 64, 64, s1);
  const auto b = det_sort_fingerprint(pram::MemoryModel::kCrcw, 64, 64, s2);
  EXPECT_EQ(a, b);
}

// Beyond the fingerprint: the parallel engine must reproduce the *entire*
// metrics surface, including the order-sensitive pieces (which cell holds
// the hottest-cell title on ties, and in which round it was set), the full
// contention histogram, per-region attribution, and both per-processor step
// vectors.
TEST(Determinism, ParallelEngineFullObservables) {
  struct Observed {
    RunFingerprint fp;
    std::vector<std::uint64_t> hist;
    std::map<std::string, std::size_t> regions;
    pram::Addr hottest_addr;
    std::uint64_t hottest_round;
    std::uint64_t stalls;
    std::vector<std::uint64_t> proc_ops;
    std::vector<std::uint64_t> finish_steps;
  };
  auto observe = [](pram::MemoryModel model, std::uint32_t sim_threads) {
    pram::Machine m(machine_opts(model, sim_threads));
    pram::HashTracer tracer;
    m.set_tracer(&tracer);
    pram::HalfFreezeScheduler sched(/*period=*/4);
    auto keys = golden_keys(/*n=*/80, /*seed=*/424242);
    auto res = wfsort::sim::run_det_sort(m, keys, /*procs=*/80, sched);
    EXPECT_TRUE(res.sorted);
    const pram::Metrics& mx = m.metrics();
    Observed o;
    o.fp = fingerprint(m, res.run, tracer);
    const wfsort::Histogram& h = mx.contention_histogram();
    for (std::size_t b = 0; b < h.buckets(); ++b) o.hist.push_back(h.count(b));
    o.regions = mx.region_contention();
    o.hottest_addr = mx.hottest_addr();
    o.hottest_round = mx.hottest_round();
    o.stalls = mx.stalls();
    o.proc_ops = mx.proc_ops();
    o.finish_steps = mx.finish_steps();
    return o;
  };
  for (pram::MemoryModel model : {pram::MemoryModel::kCrcw, pram::MemoryModel::kStall}) {
    const Observed seq = observe(model, 1);
    for (std::uint32_t t : {2u, 4u}) {
      const Observed par = observe(model, t);
      EXPECT_EQ(seq.fp, par.fp) << "t=" << t;
      EXPECT_EQ(seq.hist, par.hist) << "t=" << t;
      EXPECT_EQ(seq.regions, par.regions) << "t=" << t;
      EXPECT_EQ(seq.hottest_addr, par.hottest_addr) << "t=" << t;
      EXPECT_EQ(seq.hottest_round, par.hottest_round) << "t=" << t;
      EXPECT_EQ(seq.stalls, par.stalls) << "t=" << t;
      EXPECT_EQ(seq.proc_ops, par.proc_ops) << "t=" << t;
      EXPECT_EQ(seq.finish_steps, par.finish_steps) << "t=" << t;
    }
  }
}

}  // namespace
