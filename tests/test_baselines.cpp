// Tests for the comparison baselines: sequential quicksort, the lock-based
// parallel quicksort (including its failure modes — the behaviours wait-
// freedom rules out), the bitonic network, and the analytic cost models.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "baselines/bitonic.h"
#include "baselines/cost_model.h"
#include "baselines/lock_parallel_quicksort.h"
#include "baselines/parallel_mergesort.h"
#include "baselines/sequential.h"
#include "common/rng.h"

namespace {

using namespace wfsort::baselines;
using wfsort::Rng;

std::vector<std::uint64_t> random_data(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.below(1000);
  return v;
}

void expect_sorted_permutation(std::vector<std::uint64_t> original,
                               const std::vector<std::uint64_t>& result) {
  std::sort(original.begin(), original.end());
  EXPECT_EQ(original, result);
}

// ------------------------------------------------------------ sequential

TEST(Sequential, InsertionSortSmall) {
  std::vector<std::uint64_t> v{5, 2, 9, 1, 7, 7, 0};
  auto orig = v;
  insertion_sort(std::span<std::uint64_t>(v));
  expect_sorted_permutation(orig, v);
}

TEST(Sequential, QuicksortVariousSizesAndShapes) {
  for (std::size_t n : {0u, 1u, 2u, 23u, 24u, 25u, 100u, 1000u, 10000u}) {
    auto v = random_data(n, n + 1);
    auto orig = v;
    quicksort(std::span<std::uint64_t>(v));
    expect_sorted_permutation(orig, v);
  }
  // Adversarial shapes for median-of-three.
  for (int shape = 0; shape < 3; ++shape) {
    std::vector<std::uint64_t> v(2000);
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i] = shape == 0 ? i : shape == 1 ? v.size() - i : 42;
    }
    auto orig = v;
    quicksort(std::span<std::uint64_t>(v));
    expect_sorted_permutation(orig, v);
  }
}

// ------------------------------------------------------------ lock-based

TEST(LockQuicksort, SortsAcrossThreadCounts) {
  for (std::uint32_t t : {1u, 2u, 4u, 8u}) {
    auto v = random_data(20000, t);
    auto orig = v;
    auto r = lock_parallel_quicksort(std::span<std::uint64_t>(v), t);
    EXPECT_TRUE(r.completed);
    expect_sorted_permutation(orig, v);
  }
}

TEST(LockQuicksort, TinyInputs) {
  for (std::size_t n : {0u, 1u, 2u, 5u}) {
    auto v = random_data(n, 77 + n);
    auto orig = v;
    auto r = lock_parallel_quicksort(std::span<std::uint64_t>(v), 4);
    EXPECT_TRUE(r.completed);
    expect_sorted_permutation(orig, v);
  }
}

TEST(LockQuicksort, CrashedWorkerStrandsWork) {
  // The contrast with the wait-free sorter: kill workers mid-sort and the
  // lock-based pool CAN end incomplete (a popped range dies with its owner).
  // Crashes land at task-pop checkpoints, so whether work is stranded is
  // timing-dependent; what must NEVER happen is completed == true with an
  // unsorted array.
  int stranded = 0;
  for (int attempt = 0; attempt < 10; ++attempt) {
    auto v = random_data(60000, 1000 + attempt);
    wfsort::runtime::FaultPlan plan(4);
    for (std::uint32_t t = 0; t < 4; ++t) plan.crash_at(t, 2 + attempt + t);
    auto r = lock_parallel_quicksort(std::span<std::uint64_t>(v), 4, &plan);
    if (!r.completed) {
      ++stranded;
      EXPECT_GT(r.crashed, 0u);
    } else {
      EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
    }
  }
  // With every worker scheduled to crash early, at least one run of ten
  // should strand work (this is the expected, not just possible, outcome).
  EXPECT_GT(stranded, 0);
}

// ------------------------------------------------------------ mergesort

TEST(ParallelMergesort, SortsAcrossSizesAndThreads) {
  for (std::size_t n : {0u, 1u, 2u, 3u, 17u, 1000u, 4096u, 10001u}) {
    for (std::uint32_t t : {1u, 2u, 4u}) {
      auto v = random_data(n, 31 * t + n);
      auto orig = v;
      parallel_mergesort(std::span<std::uint64_t>(v), t);
      expect_sorted_permutation(orig, v);
    }
  }
}

TEST(ParallelMergesort, AlreadySortedAndReversed) {
  std::vector<std::uint64_t> up(5000), down(5000);
  for (std::size_t i = 0; i < up.size(); ++i) {
    up[i] = i;
    down[i] = up.size() - i;
  }
  parallel_mergesort(std::span<std::uint64_t>(up), 4);
  parallel_mergesort(std::span<std::uint64_t>(down), 4);
  EXPECT_TRUE(std::is_sorted(up.begin(), up.end()));
  EXPECT_TRUE(std::is_sorted(down.begin(), down.end()));
}

// ------------------------------------------------------------ bitonic

TEST(Bitonic, StageCountFormula) {
  EXPECT_EQ(bitonic_stage_count(2), 1u);
  EXPECT_EQ(bitonic_stage_count(4), 3u);
  EXPECT_EQ(bitonic_stage_count(8), 6u);
  EXPECT_EQ(bitonic_stage_count(1024), 55u);
  EXPECT_EQ(bitonic_stage_count(1000), 55u);  // pads to 1024
}

TEST(Bitonic, SerialSortsIncludingNonPowerOfTwo) {
  for (std::size_t n : {0u, 1u, 2u, 7u, 8u, 9u, 100u, 1024u, 1500u}) {
    auto v = random_data(n, 5 + n);
    auto orig = v;
    bitonic_serial_sort(std::span<std::uint64_t>(v));
    expect_sorted_permutation(orig, v);
  }
}

TEST(Bitonic, ThreadedMatchesSerial) {
  for (std::uint32_t t : {2u, 3u, 4u}) {
    auto v = random_data(4096, 17 * t);
    auto orig = v;
    bitonic_threaded_sort(std::span<std::uint64_t>(v), t);
    expect_sorted_permutation(orig, v);
  }
}

// ------------------------------------------------------------ cost models

TEST(CostModels, ShapesAreOrdered) {
  std::size_t count = 0;
  const CostModel* models = cost_models(&count);
  ASSERT_GE(count, 5u);
  // At N = 2^20: log < log^2 < log^3.
  const double n = 1 << 20;
  EXPECT_LT(steps_this_paper(n), steps_bitonic_direct(n));
  EXPECT_LT(steps_bitonic_direct(n), steps_wait_free_transform(n));
  EXPECT_DOUBLE_EQ(steps_this_paper(n), 20.0);
  EXPECT_DOUBLE_EQ(steps_wait_free_transform(n), 8000.0);
  for (std::size_t i = 0; i < count; ++i) {
    EXPECT_GT(models[i].steps(n), 0.0);
  }
}

TEST(CostModels, CrossoverOfTransformedVsOurs) {
  // The wait-free transform's log^3 N exceeds our log N for every N >= 4;
  // the interesting crossover is against the SEQUENTIAL cost N log N / P:
  // with few processors sequential wins; with P = N our sort wins.
  for (double n : {1e3, 1e6}) {
    EXPECT_GT(steps_wait_free_transform(n) / steps_this_paper(n),
              std::pow(std::log2(n), 1.9));
  }
}

}  // namespace
