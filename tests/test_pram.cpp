// Unit tests for the CRCW PRAM simulator: round semantics, CAS arbitration,
// contention accounting, schedulers, failure injection, memory models.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "pram/machine.h"
#include "pram/scheduler.h"
#include "pram/trace.h"

namespace {

using pram::Addr;
using pram::Ctx;
using pram::kEmpty;
using pram::Machine;
using pram::MachineOptions;
using pram::MemoryModel;
using pram::ProcId;
using pram::Task;
using pram::Word;

// --- small test programs (free coroutine functions, params by value) -------

Task write_then_read(Ctx& ctx, Addr a, Word v, Addr out) {
  co_await ctx.write(a, v);
  const Word r = co_await ctx.read(a);
  co_await ctx.write(out, r);
}

Task cas_once(Ctx& ctx, Addr a, Word expect, Word desired, Addr out) {
  const Word old = co_await ctx.cas(a, expect, desired);
  co_await ctx.write(out, old == expect ? 1 : 0);
}

Task read_once(Ctx& ctx, Addr a, Addr out) {
  const Word r = co_await ctx.read(a);
  co_await ctx.write(out, r);
}

Task write_once(Ctx& ctx, Addr a, Word v) { co_await ctx.write(a, v); }

Task spin_forever(Ctx& ctx, Addr a) {
  while (true) {
    (void)co_await ctx.read(a);
  }
}

Task count_steps(Ctx& ctx, Addr a, int steps) {
  for (int i = 0; i < steps; ++i) (void)co_await ctx.read(a);
}

Task increment_serially(Ctx& ctx, Addr a) {
  // Classic lock-free counter: CAS loop.  Under the simulator's CRCW CAS
  // semantics exactly one colliding increment succeeds per round.
  while (true) {
    const Word cur = co_await ctx.read(a);
    const Word seen = co_await ctx.cas(a, cur, cur + 1);
    if (seen == cur) co_return;
  }
}

// ---------------------------------------------------------------------------

TEST(Machine, SingleProcessorWriteRead) {
  Machine m;
  auto data = m.mem().alloc("data", 4, 0);
  m.spawn([&](Ctx& ctx) { return write_then_read(ctx, data.base, 42, data.base + 1); });
  auto r = m.run_synchronous();
  EXPECT_TRUE(r.all_finished);
  EXPECT_EQ(m.mem().peek(data.base), 42);
  EXPECT_EQ(m.mem().peek(data.base + 1), 42);
  // 3 memory operations, one per round.
  EXPECT_EQ(r.rounds, 3u);
}

TEST(Machine, ConcurrentCasExactlyOneWinner) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 99ULL}) {
    Machine m(MachineOptions{.seed = seed});
    constexpr int kProcs = 64;
    auto cell = m.mem().alloc("cell", 1, kEmpty);
    auto outs = m.mem().alloc("outs", kProcs, 0);
    for (int p = 0; p < kProcs; ++p) {
      m.spawn([&, p](Ctx& ctx) {
        return cas_once(ctx, cell.base, kEmpty, 100 + p, outs.base + p);
      });
    }
    auto r = m.run_synchronous();
    EXPECT_TRUE(r.all_finished);
    int winners = 0;
    for (int p = 0; p < kProcs; ++p) winners += static_cast<int>(m.mem().peek(outs.base + p));
    EXPECT_EQ(winners, 1);
    const Word final = m.mem().peek(cell.base);
    EXPECT_GE(final, 100);
    EXPECT_LT(final, 100 + kProcs);
  }
}

TEST(Machine, CasArbitrationWinnerVariesWithSeed) {
  // The arbitration order is randomized by the machine seed; over several
  // seeds different processors should win (sanity check that arbitration is
  // not silently "lowest pid always wins").
  std::vector<Word> winners;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Machine m(MachineOptions{.seed = seed});
    auto cell = m.mem().alloc("cell", 1, kEmpty);
    for (int p = 0; p < 16; ++p) {
      m.spawn([&, p](Ctx& ctx) {
        return cas_once(ctx, cell.base, kEmpty, p, cell.base);  // out unused: reuse cell+0
      });
    }
    // The cas_once writes a 0/1 into `out`, clobbering the cell; instead just
    // run one round and inspect the cell before the writes land.
    pram::SynchronousScheduler sched;
    m.run(sched, [](const Machine& mm) { return mm.current_round() >= 1; });
    winners.push_back(m.mem().peek(cell.base));
  }
  bool all_same = true;
  for (Word w : winners) all_same &= (w == winners[0]);
  EXPECT_FALSE(all_same);
}

TEST(Machine, ConcurrentReadsSeePreRoundValueDespiteWrite) {
  Machine m;
  auto cell = m.mem().alloc("cell", 1, 7);
  auto outs = m.mem().alloc("outs", 8, -1);
  // One writer and seven readers all hit the cell in the same (first) round:
  // readers must see the pre-round value 7, not the new value.
  m.spawn([&](Ctx& ctx) { return write_once(ctx, cell.base, 99); });
  for (int p = 1; p < 8; ++p) {
    m.spawn([&, p](Ctx& ctx) { return read_once(ctx, cell.base, outs.base + p); });
  }
  auto r = m.run_synchronous();
  EXPECT_TRUE(r.all_finished);
  EXPECT_EQ(m.mem().peek(cell.base), 99);
  for (int p = 1; p < 8; ++p) EXPECT_EQ(m.mem().peek(outs.base + p), 7);
}

TEST(Machine, CasChainWithinRoundAllowsExactlyOneIncrement) {
  Machine m;
  auto cell = m.mem().alloc("ctr", 1, 0);
  constexpr int kProcs = 32;
  for (int p = 0; p < kProcs; ++p) {
    m.spawn([&](Ctx& ctx) { return increment_serially(ctx, cell.base); });
  }
  auto r = m.run_synchronous();
  EXPECT_TRUE(r.all_finished);
  EXPECT_EQ(m.mem().peek(cell.base), kProcs);
}

Task faa_repeat(Ctx& ctx, Addr a, Word delta, int times, Addr out) {
  Word last = 0;
  for (int i = 0; i < times; ++i) last = co_await ctx.faa(a, delta);
  co_await ctx.write(out, last);
}

TEST(Machine, FetchAndAddSerializesWithinRound) {
  Machine m;
  constexpr int kProcs = 20;
  auto cell = m.mem().alloc("ctr", 1, 0);
  auto outs = m.mem().alloc("outs", kProcs, -1);
  for (int p = 0; p < kProcs; ++p) {
    m.spawn([&, p](Ctx& ctx) { return faa_repeat(ctx, cell.base, 1, 1, outs.base + p); });
  }
  auto r = m.run_synchronous();
  EXPECT_TRUE(r.all_finished);
  EXPECT_EQ(m.mem().peek(cell.base), kProcs);
  // All pre-values distinct: 0..kProcs-1 (one FAA round + one write round).
  std::vector<Word> pre;
  for (int p = 0; p < kProcs; ++p) pre.push_back(m.mem().peek(outs.base + p));
  std::sort(pre.begin(), pre.end());
  for (int p = 0; p < kProcs; ++p) EXPECT_EQ(pre[p], p);
}

TEST(Machine, FetchAndAddUnderStallModel) {
  Machine m(MachineOptions{.memory_model = MemoryModel::kStall});
  constexpr int kProcs = 6;
  auto cell = m.mem().alloc("ctr", 1, 0);
  auto outs = m.mem().alloc("outs", kProcs, -1);
  for (int p = 0; p < kProcs; ++p) {
    m.spawn([&, p](Ctx& ctx) { return faa_repeat(ctx, cell.base, 2, 3, outs.base + p); });
  }
  auto r = m.run_synchronous();
  EXPECT_TRUE(r.all_finished);
  EXPECT_EQ(m.mem().peek(cell.base), kProcs * 3 * 2);
}

TEST(Machine, ContentionMetricCountsConcurrentAccesses) {
  Machine m;
  constexpr int kProcs = 100;
  auto cell = m.mem().alloc("hot", 1, 0);
  for (int p = 0; p < kProcs; ++p) {
    m.spawn([&](Ctx& ctx) { return count_steps(ctx, cell.base, 1); });
  }
  m.run_synchronous();
  EXPECT_EQ(m.metrics().max_cell_contention(), static_cast<std::size_t>(kProcs));
  EXPECT_EQ(m.metrics().hottest_addr(), cell.base);
  EXPECT_EQ(m.metrics().region_contention().at("hot"), static_cast<std::size_t>(kProcs));
}

TEST(Machine, QrqwTimeChargesContention) {
  // 10 procs all read one cell for 3 rounds: rounds = 3 but QRQW time = 30.
  Machine m;
  auto cell = m.mem().alloc("hot", 1, 0);
  for (int p = 0; p < 10; ++p) {
    m.spawn([&](Ctx& ctx) { return count_steps(ctx, cell.base, 3); });
  }
  auto r = m.run_synchronous();
  EXPECT_EQ(r.rounds, 3u);
  EXPECT_EQ(m.metrics().qrqw_time(), 30u);
}

TEST(Machine, QrqwTimeEqualsRoundsWithoutContention) {
  Machine m;
  auto cells = m.mem().alloc("c", 4, 0);
  for (int p = 0; p < 4; ++p) {
    m.spawn([&, p](Ctx& ctx) { return count_steps(ctx, cells.base + p, 5); });
  }
  auto r = m.run_synchronous();
  EXPECT_EQ(m.metrics().qrqw_time(), r.rounds);
}

TEST(Machine, ContentionOneWhenAccessesAreSpread) {
  Machine m;
  constexpr int kProcs = 16;
  auto cells = m.mem().alloc("spread", kProcs, 0);
  for (int p = 0; p < kProcs; ++p) {
    m.spawn([&, p](Ctx& ctx) { return count_steps(ctx, cells.base + p, 3); });
  }
  m.run_synchronous();
  EXPECT_EQ(m.metrics().max_cell_contention(), 1u);
}

TEST(Machine, ProcOpsTrackPerProcessorSteps) {
  Machine m;
  auto cells = m.mem().alloc("c", 2, 0);
  m.spawn([&](Ctx& ctx) { return count_steps(ctx, cells.base, 5); });
  m.spawn([&](Ctx& ctx) { return count_steps(ctx, cells.base + 1, 2); });
  m.run_synchronous();
  ASSERT_EQ(m.metrics().proc_ops().size(), 2u);
  EXPECT_EQ(m.metrics().proc_ops()[0], 5u);
  EXPECT_EQ(m.metrics().proc_ops()[1], 2u);
  EXPECT_EQ(m.metrics().total_ops(), 7u);
  EXPECT_EQ(m.metrics().max_proc_ops(), 5u);
}

TEST(Machine, KilledProcessorNeverRunsAgainOthersFinish) {
  Machine m;
  auto cells = m.mem().alloc("c", 2, 0);
  const ProcId victim = m.spawn([&](Ctx& ctx) { return spin_forever(ctx, cells.base); });
  m.spawn([&](Ctx& ctx) { return count_steps(ctx, cells.base + 1, 10); });
  m.set_round_hook([&](Machine& mm, std::uint64_t round) {
    if (round == 3) mm.kill(victim);
  });
  auto r = m.run_synchronous();
  EXPECT_TRUE(r.all_finished);  // the spinner is killed, so "all live" finish
  EXPECT_TRUE(m.killed(victim));
  EXPECT_FALSE(m.finished(victim));
  EXPECT_TRUE(m.finished(1));
  EXPECT_EQ(m.live_procs(), 1u);
}

TEST(Machine, SuspendAndAwaken) {
  Machine m;
  auto cells = m.mem().alloc("c", 1, 0);
  const ProcId sleeper = m.spawn([&](Ctx& ctx) { return count_steps(ctx, cells.base, 4); });
  m.set_round_hook([&](Machine& mm, std::uint64_t round) {
    if (round == 1) mm.suspend(sleeper);
    if (round == 10) mm.awaken(sleeper);
  });
  auto r = m.run_synchronous();
  EXPECT_TRUE(r.all_finished);
  EXPECT_TRUE(m.finished(sleeper));
  // 4 ops but ~9 rounds of suspension in the middle.
  EXPECT_GE(r.rounds, 13u);
}

TEST(Machine, SpawnDuringRunViaHook) {
  Machine m;
  auto cells = m.mem().alloc("c", 2, 0);
  m.spawn([&](Ctx& ctx) { return count_steps(ctx, cells.base, 8); });
  bool spawned = false;
  m.set_round_hook([&](Machine& mm, std::uint64_t round) {
    if (round == 4 && !spawned) {
      spawned = true;
      mm.spawn([&](Ctx& ctx) { return write_once(ctx, cells.base + 1, 123); });
    }
  });
  auto r = m.run_synchronous();
  EXPECT_TRUE(r.all_finished);
  EXPECT_EQ(m.procs(), 2u);
  EXPECT_EQ(m.mem().peek(cells.base + 1), 123);
}

TEST(Machine, MaxRoundsCapStopsRunawayProgram) {
  Machine m(MachineOptions{.max_rounds = 50});
  auto cells = m.mem().alloc("c", 1, 0);
  m.spawn([&](Ctx& ctx) { return spin_forever(ctx, cells.base); });
  auto r = m.run_synchronous();
  EXPECT_FALSE(r.all_finished);
  EXPECT_TRUE(r.hit_round_cap);
  EXPECT_EQ(r.rounds, 50u);
}

TEST(Machine, StopPredicateEndsRun) {
  Machine m;
  auto cells = m.mem().alloc("c", 1, 0);
  m.spawn([&](Ctx& ctx) { return spin_forever(ctx, cells.base); });
  auto r = m.run_synchronous([](const Machine& mm) { return mm.current_round() >= 7; });
  EXPECT_TRUE(r.predicate_hit);
  EXPECT_EQ(r.rounds, 7u);
}

TEST(Machine, RunIsResumable) {
  Machine m;
  auto cells = m.mem().alloc("c", 1, 0);
  m.spawn([&](Ctx& ctx) { return count_steps(ctx, cells.base, 10); });
  auto r1 = m.run_synchronous([](const Machine& mm) { return mm.current_round() >= 4; });
  EXPECT_TRUE(r1.predicate_hit);
  auto r2 = m.run_synchronous();
  EXPECT_TRUE(r2.all_finished);
  EXPECT_EQ(r1.rounds + r2.rounds, 10u);
}

TEST(Machine, YieldOccupiesARoundWithoutMemoryTraffic) {
  Machine m;
  auto cells = m.mem().alloc("c", 1, 0);
  m.spawn([&](Ctx& ctx) -> Task {
    // Not a capturing coroutine: the body only uses ctx.  (Allowed because
    // the lambda object outlives the coroutine inside the machine.)
    return [](Ctx& c, Addr a) -> Task {
      co_await c.yield();
      co_await c.yield();
      co_await c.write(a, 5);
    }(ctx, cells.base);
  });
  auto r = m.run_synchronous();
  EXPECT_TRUE(r.all_finished);
  EXPECT_EQ(r.rounds, 3u);
  EXPECT_EQ(m.metrics().max_cell_contention(), 1u);  // only the write touched memory
  EXPECT_EQ(m.mem().peek(cells.base), 5);
}

TEST(Machine, StallModelSerializesHotCell) {
  Machine m(MachineOptions{.memory_model = MemoryModel::kStall});
  constexpr int kProcs = 16;
  auto cell = m.mem().alloc("hot", 1, 0);
  for (int p = 0; p < kProcs; ++p) {
    m.spawn([&](Ctx& ctx) { return count_steps(ctx, cell.base, 1); });
  }
  auto r = m.run_synchronous();
  EXPECT_TRUE(r.all_finished);
  // One access served per round: exactly kProcs rounds, and
  // sum_{k=1..P-1} k stalls.
  EXPECT_EQ(r.rounds, static_cast<std::uint64_t>(kProcs));
  EXPECT_EQ(m.metrics().stalls(), static_cast<std::uint64_t>(kProcs * (kProcs - 1) / 2));
}

TEST(Machine, StallModelPreservesCasSemantics) {
  Machine m(MachineOptions{.memory_model = MemoryModel::kStall});
  auto cell = m.mem().alloc("ctr", 1, 0);
  constexpr int kProcs = 8;
  for (int p = 0; p < kProcs; ++p) {
    m.spawn([&](Ctx& ctx) { return increment_serially(ctx, cell.base); });
  }
  auto r = m.run_synchronous();
  EXPECT_TRUE(r.all_finished);
  EXPECT_EQ(m.mem().peek(cell.base), kProcs);
}

TEST(Scheduler, RoundRobinWidthOneIsSequentialButCompletes) {
  Machine m;
  auto cells = m.mem().alloc("c", 4, 0);
  for (int p = 0; p < 4; ++p) {
    m.spawn([&, p](Ctx& ctx) { return count_steps(ctx, cells.base + p, 3); });
  }
  pram::RoundRobinScheduler sched(1);
  auto r = m.run(sched);
  EXPECT_TRUE(r.all_finished);
  EXPECT_EQ(m.metrics().total_ops(), 12u);
  EXPECT_GE(r.rounds, 12u);  // one op per round
  EXPECT_EQ(m.metrics().max_cell_contention(), 1u);
}

TEST(Scheduler, RandomSubsetCompletes) {
  Machine m;
  auto cells = m.mem().alloc("c", 8, 0);
  for (int p = 0; p < 8; ++p) {
    m.spawn([&, p](Ctx& ctx) { return count_steps(ctx, cells.base + p, 5); });
  }
  pram::RandomSubsetScheduler sched(0.3, /*seed=*/5);
  auto r = m.run(sched);
  EXPECT_TRUE(r.all_finished);
  EXPECT_EQ(m.metrics().total_ops(), 40u);
}

TEST(Scheduler, HalfFreezeCompletes) {
  Machine m;
  auto cells = m.mem().alloc("c", 8, 0);
  for (int p = 0; p < 8; ++p) {
    m.spawn([&, p](Ctx& ctx) { return count_steps(ctx, cells.base + p, 6); });
  }
  pram::HalfFreezeScheduler sched(/*period=*/3);
  auto r = m.run(sched);
  EXPECT_TRUE(r.all_finished);
  EXPECT_EQ(m.metrics().total_ops(), 48u);
}

TEST(Tracer, RecordsServedOperations) {
  Machine m;
  pram::RingTracer tracer(100);
  m.set_tracer(&tracer);
  auto cell = m.mem().alloc("traced", 1, pram::kEmpty);
  m.spawn([&](Ctx& ctx) { return cas_once(ctx, cell.base, pram::kEmpty, 5, cell.base); });
  m.run_synchronous();
  ASSERT_EQ(tracer.total_events(), 2u);  // CAS then the out-write
  const auto& ev = tracer.events();
  EXPECT_EQ(ev[0].kind, pram::OpKind::kCas);
  EXPECT_EQ(ev[0].addr, cell.base);
  EXPECT_EQ(ev[0].arg0, pram::kEmpty);
  EXPECT_EQ(ev[0].arg1, 5);
  EXPECT_EQ(ev[0].result, pram::kEmpty);  // CAS observed EMPTY: success
  EXPECT_EQ(ev[1].kind, pram::OpKind::kWrite);

  const std::string line = pram::format_event(ev[0], &m.mem());
  EXPECT_NE(line.find("CAS"), std::string::npos);
  EXPECT_NE(line.find("traced"), std::string::npos);
}

TEST(Tracer, RingDropsOldest) {
  Machine m;
  pram::RingTracer tracer(3);
  m.set_tracer(&tracer);
  auto cell = m.mem().alloc("c", 1, 0);
  m.spawn([&](Ctx& ctx) { return count_steps(ctx, cell.base, 10); });
  m.run_synchronous();
  EXPECT_EQ(tracer.total_events(), 10u);
  ASSERT_EQ(tracer.events().size(), 3u);
  EXPECT_EQ(tracer.events().back().round, 9u);
}

TEST(Tracer, FormatCoversAllKinds) {
  pram::TraceEvent e;
  e.round = 3;
  e.pid = 1;
  e.addr = 7;
  e.kind = pram::OpKind::kRead;
  e.result = 42;
  EXPECT_NE(pram::format_event(e).find("READ"), std::string::npos);
  e.kind = pram::OpKind::kWrite;
  e.arg0 = 9;
  EXPECT_NE(pram::format_event(e).find("WRITE"), std::string::npos);
  EXPECT_NE(pram::format_event(e).find("@7"), std::string::npos);
  e.kind = pram::OpKind::kYield;
  EXPECT_NE(pram::format_event(e).find("YIELD"), std::string::npos);
}

TEST(Memory, RegionsAndPeekPoke) {
  pram::Memory mem;
  auto a = mem.alloc("a", 10, -1);
  auto b = mem.alloc("b", 5, 7);
  EXPECT_EQ(mem.size(), 15u);
  EXPECT_EQ(a.base, 0u);
  EXPECT_EQ(b.base, 10u);
  EXPECT_EQ(mem.peek(0), -1);
  EXPECT_EQ(mem.peek(10), 7);
  mem.poke(3, 99);
  EXPECT_EQ(mem.peek(3), 99);
  EXPECT_EQ(mem.region_of(3)->name, "a");
  EXPECT_EQ(mem.region_of(12)->name, "b");
  EXPECT_EQ(mem.region_of(100), nullptr);

  mem.fill_region(b, {1, 2, 3, 4, 5});
  auto back = mem.read_region(b);
  EXPECT_EQ(back, (std::vector<pram::Word>{1, 2, 3, 4, 5}));
}

TEST(MachineDeath, OutOfRangeAccessAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  pram::Memory mem;
  mem.alloc("a", 4, 0);
  EXPECT_DEATH((void)mem.peek(99), "CHECK failed");
  EXPECT_DEATH(mem.poke(4, 1), "CHECK failed");
}

TEST(MachineDeath, ProgramTouchingUnmappedMemoryAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        Machine m;
        m.mem().alloc("a", 1, 0);
        m.spawn([](Ctx& ctx) { return read_once(ctx, 1000, 0); });
        m.run_synchronous();
      },
      "CHECK failed");
}

// --- Metrics edges ---------------------------------------------------------

TEST(Metrics, ContentionHistogramClampsToLastBucket) {
  pram::Metrics metrics(8);  // buckets 0..7
  metrics.record_cell(0, 3, pram::Memory::kNoRegion);
  metrics.record_cell(1, 7, pram::Memory::kNoRegion);    // exactly the last bucket
  metrics.record_cell(2, 8, pram::Memory::kNoRegion);    // first value past the range
  metrics.record_cell(3, 300, pram::Memory::kNoRegion);  // far past the range
  const wfsort::Histogram& h = metrics.contention_histogram();
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.count(7), 3u);  // 7, 8 and 300 all land in the last bucket
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.max_nonzero(), 7u);
  // The clamp loses magnitude but the scalar maximum must not.
  EXPECT_EQ(metrics.max_cell_contention(), 300u);
}

TEST(Metrics, RegionAllocatedInRoundHookIsAttributed) {
  // Regions may appear mid-run (round hooks allocate scratch, spawn late
  // workers); begin_round must mirror them before record_cell sees their id.
  Machine m;
  auto early = m.mem().alloc("early", 1, 0);
  m.spawn([&](Ctx& ctx) { return count_steps(ctx, early.base, 12); });
  bool allocated = false;
  m.set_round_hook([&](Machine& mm, std::uint64_t round) {
    if (round == 4 && !allocated) {
      allocated = true;
      auto late = mm.mem().alloc("late", 1, 0);
      for (int p = 0; p < 3; ++p) {
        mm.spawn([late](Ctx& ctx) { return count_steps(ctx, late.base, 2); });
      }
    }
  });
  m.run_synchronous();
  const auto attribution = m.metrics().region_contention();
  ASSERT_TRUE(attribution.count("late"));
  EXPECT_EQ(attribution.at("late"), 3u);  // the three hook-spawned readers collide
  EXPECT_EQ(attribution.at("early"), 1u);
}

TEST(Metrics, FinishStepsFreezeAtProgramReturn) {
  pram::Metrics metrics;
  metrics.ensure_procs(2);
  for (int i = 0; i < 5; ++i) metrics.record_proc_op(0);
  metrics.record_proc_finish(0);
  // Ops recorded after the freeze (e.g. another worker's assist accounting)
  // must not move the frozen own-step count.
  for (int i = 0; i < 3; ++i) metrics.record_proc_op(0);
  EXPECT_EQ(metrics.finish_steps(0), 5u);
  EXPECT_EQ(metrics.proc_ops()[0], 8u);
  EXPECT_EQ(metrics.max_finish_steps(), 5u);
  EXPECT_EQ(metrics.finish_steps(1), 0u);   // still running
  EXPECT_EQ(metrics.finish_steps(99), 0u);  // out of range = never finished
}

}  // namespace
