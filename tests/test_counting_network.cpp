// Tests for the bitonic counting network: structure, the counting property
// (sequential and concurrent-quiescent), and wait-free step bounds.
#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/bits.h"
#include "lowcontention/counting_network.h"

namespace {

using wfsort::BitonicCountingNetwork;

TEST(CountingNetwork, StructureMatchesBatcherDepth) {
  for (std::uint32_t w : {2u, 4u, 8u, 16u}) {
    BitonicCountingNetwork net(w);
    const std::uint32_t k = wfsort::log2_floor(w);
    EXPECT_EQ(net.depth(), k * (k + 1) / 2) << "w=" << w;
    // Each stage has w/2 balancers.
    EXPECT_EQ(net.balancer_count(), static_cast<std::size_t>(net.depth()) * (w / 2));
  }
}

TEST(CountingNetwork, SequentialTokensCountContiguously) {
  for (std::uint32_t w : {2u, 4u, 8u, 16u}) {
    BitonicCountingNetwork net(w);
    const std::uint64_t tokens = 5 * w + 3;
    std::set<std::uint64_t> values;
    for (std::uint64_t t = 0; t < tokens; ++t) {
      values.insert(net.next(static_cast<std::uint32_t>(t % w)));
    }
    ASSERT_EQ(values.size(), tokens) << "w=" << w;
    EXPECT_EQ(*values.begin(), 0u);
    EXPECT_EQ(*values.rbegin(), tokens - 1);
  }
}

TEST(CountingNetwork, SequentialSingleInputWire) {
  // All tokens entering on one wire must still count correctly (balancers,
  // not the entry choice, provide the spreading).
  BitonicCountingNetwork net(8);
  std::set<std::uint64_t> values;
  for (int t = 0; t < 50; ++t) values.insert(net.next(3));
  ASSERT_EQ(values.size(), 50u);
  EXPECT_EQ(*values.rbegin(), 49u);
}

TEST(CountingNetwork, ConcurrentQuiescentCount) {
  constexpr std::uint32_t kWidth = 8;
  constexpr unsigned kThreads = 8;
  constexpr int kPerThread = 400;
  BitonicCountingNetwork net(kWidth);

  std::vector<std::vector<std::uint64_t>> got(kThreads);
  {
    std::vector<std::jthread> crew;
    for (unsigned t = 0; t < kThreads; ++t) {
      crew.emplace_back([&net, &got, t] {
        got[t].reserve(kPerThread);
        for (int i = 0; i < kPerThread; ++i) got[t].push_back(net.next(t));
      });
    }
  }

  // Quiescent check: all values distinct and exactly covering the range.
  std::vector<std::uint64_t> all;
  for (auto& v : got) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  for (std::size_t i = 0; i < all.size(); ++i) {
    ASSERT_EQ(all[i], i) << "hole or duplicate at " << i;
  }
  // Per-thread values are monotonically increasing (each next() is a later
  // linearized increment than the thread's previous one is NOT guaranteed by
  // counting networks in general, so we do not assert it; distinctness and
  // coverage above are the counting property).
}

}  // namespace
