// Tests for the experiment harness utilities: table rendering, series
// fitting, workload generators.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "exp/table.h"
#include "exp/workloads.h"

namespace {

using wfsort::exp::Dist;
using wfsort::exp::Series;
using wfsort::exp::Table;

TEST(Table, RendersHeadersAndRows) {
  Table t("demo", {"name", "value"});
  t.add_row({std::string("alpha"), std::int64_t{42}});
  t.add_row({std::string("beta"), 2.5});
  std::ostringstream os;
  t.render(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_NE(s.find("2.5"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, FormatsExtremeDoublesInScientific) {
  Table t("fmt", {"x"});
  t.add_row({1.0e9});
  std::ostringstream os;
  t.render(os);
  EXPECT_NE(os.str().find("e+09"), std::string::npos);
}

TEST(Table, CsvRendering) {
  Table t("csv", {"name", "value"});
  t.add_row({std::string("plain"), std::int64_t{1}});
  t.add_row({std::string("with,comma"), std::int64_t{2}});
  t.add_row({std::string("with\"quote"), std::int64_t{3}});
  std::ostringstream os;
  t.render_csv(os);
  EXPECT_EQ(os.str(),
            "name,value\n"
            "plain,1\n"
            "\"with,comma\",2\n"
            "\"with\"\"quote\",3\n");
}

TEST(Series, FitsKnownCurves) {
  Series sqrtish, logish;
  for (double x : {16.0, 64.0, 256.0, 1024.0}) {
    sqrtish.add(x, 3.0 * std::sqrt(x));
    logish.add(x, 5.0 + 2.0 * std::log2(x));
  }
  EXPECT_NEAR(sqrtish.power_law_exponent(), 0.5, 1e-9);
  EXPECT_NEAR(sqrtish.loglog_r2(), 1.0, 1e-9);
  EXPECT_NEAR(logish.log_slope(), 2.0, 1e-9);
}

TEST(Verdict, MatchesAndDeviates) {
  EXPECT_NE(wfsort::exp::verdict_exponent(0.52, 0.5, 0.1).find("MATCH"),
            std::string::npos);
  EXPECT_NE(wfsort::exp::verdict_exponent(0.9, 0.5, 0.1).find("DEVIATES"),
            std::string::npos);
}

TEST(Workloads, ShapesAreAsNamed) {
  const std::size_t n = 512;
  auto sorted = wfsort::exp::make_u64_keys(n, Dist::kSorted, 1);
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));

  auto reversed = wfsort::exp::make_u64_keys(n, Dist::kReversed, 1);
  EXPECT_TRUE(std::is_sorted(reversed.rbegin(), reversed.rend()));

  auto shuffled = wfsort::exp::make_word_keys(n, Dist::kShuffled, 1);
  auto copy = shuffled;
  std::sort(copy.begin(), copy.end());
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(copy[i], static_cast<std::int64_t>(i));
  EXPECT_FALSE(std::is_sorted(shuffled.begin(), shuffled.end()));

  auto few = wfsort::exp::make_u64_keys(n, Dist::kFewDistinct, 1);
  std::set<std::uint64_t> distinct(few.begin(), few.end());
  EXPECT_LE(distinct.size(), 8u);

  auto pipe = wfsort::exp::make_u64_keys(n, Dist::kOrganPipe, 1);
  EXPECT_TRUE(std::is_sorted(pipe.begin(), pipe.begin() + n / 2));
  EXPECT_TRUE(std::is_sorted(pipe.begin() + n / 2, pipe.end(), std::greater<>{}));
}

TEST(Workloads, DeterministicPerSeed) {
  auto a = wfsort::exp::make_u64_keys(100, Dist::kUniform, 9);
  auto b = wfsort::exp::make_u64_keys(100, Dist::kUniform, 9);
  auto c = wfsort::exp::make_u64_keys(100, Dist::kUniform, 10);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
