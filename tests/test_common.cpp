// Unit tests for src/common: RNG, bit utilities, statistics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/bits.h"
#include "common/rng.h"
#include "common/stats.h"

namespace wfsort {
namespace {

// ---------------------------------------------------------------- bits

TEST(Bits, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ULL << 63));
  EXPECT_FALSE(is_pow2((1ULL << 63) + 1));
}

TEST(Bits, Log2Floor) {
  EXPECT_EQ(log2_floor(1), 0u);
  EXPECT_EQ(log2_floor(2), 1u);
  EXPECT_EQ(log2_floor(3), 1u);
  EXPECT_EQ(log2_floor(4), 2u);
  EXPECT_EQ(log2_floor(1023), 9u);
  EXPECT_EQ(log2_floor(1024), 10u);
}

TEST(Bits, Log2Ceil) {
  EXPECT_EQ(log2_ceil(1), 0u);
  EXPECT_EQ(log2_ceil(2), 1u);
  EXPECT_EQ(log2_ceil(3), 2u);
  EXPECT_EQ(log2_ceil(4), 2u);
  EXPECT_EQ(log2_ceil(5), 3u);
}

TEST(Bits, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
}

TEST(Bits, Isqrt) {
  EXPECT_EQ(isqrt(0), 0u);
  EXPECT_EQ(isqrt(1), 1u);
  EXPECT_EQ(isqrt(3), 1u);
  EXPECT_EQ(isqrt(4), 2u);
  EXPECT_EQ(isqrt(15), 3u);
  EXPECT_EQ(isqrt(16), 4u);
  EXPECT_EQ(isqrt(1ULL << 40), 1ULL << 20);
  for (std::uint64_t x = 0; x < 2000; ++x) {
    const std::uint64_t r = isqrt(x);
    EXPECT_LE(r * r, x);
    EXPECT_GT((r + 1) * (r + 1), x);
  }
}

TEST(HeapTree, Structure) {
  HeapTree t(8);
  EXPECT_EQ(t.nodes(), 15u);
  EXPECT_EQ(t.depth(), 3u);
  EXPECT_TRUE(t.is_root(0));
  EXPECT_FALSE(t.is_leaf(0));
  EXPECT_TRUE(t.is_leaf(t.leaf(0)));
  EXPECT_TRUE(t.is_leaf(t.leaf(7)));
  EXPECT_EQ(t.leaf(0), 7u);
  EXPECT_EQ(t.leaf_rank(t.leaf(5)), 5u);
  EXPECT_EQ(t.parent(t.left(3)), 3u);
  EXPECT_EQ(t.parent(t.right(3)), 3u);
  EXPECT_EQ(t.sibling(t.left(3)), t.right(3));
  EXPECT_EQ(t.sibling(t.right(3)), t.left(3));
  EXPECT_EQ(t.node_depth(0), 0u);
  EXPECT_EQ(t.node_depth(1), 1u);
  EXPECT_EQ(t.node_depth(t.leaf(0)), 3u);
}

TEST(HeapTree, EveryNodeReachableFromRoot) {
  HeapTree t(16);
  std::vector<bool> seen(t.nodes(), false);
  std::vector<std::uint64_t> stack{t.root()};
  while (!stack.empty()) {
    const std::uint64_t n = stack.back();
    stack.pop_back();
    ASSERT_LT(n, t.nodes());
    seen[n] = true;
    if (!t.is_leaf(n)) {
      stack.push_back(t.left(n));
      stack.push_back(t.right(n));
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

// ---------------------------------------------------------------- rng

TEST(Rng, DeterministicGivenSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t x = a.next();
    EXPECT_EQ(x, b.next());
  }
  // Different seeds should diverge immediately (overwhelmingly likely).
  EXPECT_NE(Rng(42).next(), c.next());
}

TEST(Rng, BelowIsInRangeAndRoughlyUniform) {
  Rng rng(7);
  constexpr std::uint64_t kBound = 10;
  std::vector<int> counts(kBound, 0);
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    const std::uint64_t v = rng.below(kBound);
    ASSERT_LT(v, kBound);
    ++counts[v];
  }
  for (std::uint64_t v = 0; v < kBound; ++v) {
    EXPECT_NEAR(counts[v], kTrials / static_cast<int>(kBound), 600);
  }
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng base(99);
  Rng f0 = base.fork(0);
  Rng f1 = base.fork(1);
  int collisions = 0;
  for (int i = 0; i < 1000; ++i) {
    if (f0.next() == f1.next()) ++collisions;
  }
  EXPECT_EQ(collisions, 0);
}

TEST(Rng, Uniform01Range) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(11);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(std::span<int>(v));
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

// ---------------------------------------------------------------- stats

TEST(Summary, BasicMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Summary, Empty) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Histogram, AddAndQuantile) {
  Histogram h(16);
  for (std::size_t i = 0; i < 10; ++i) h.add(1);
  for (std::size_t i = 0; i < 10; ++i) h.add(3);
  EXPECT_EQ(h.total(), 20u);
  EXPECT_EQ(h.count(1), 10u);
  EXPECT_EQ(h.count(3), 10u);
  EXPECT_EQ(h.max_nonzero(), 3u);
  EXPECT_EQ(h.quantile(0.25), 1u);
  EXPECT_EQ(h.quantile(1.0), 3u);
}

TEST(Histogram, ClampsOverflowIntoLastBucket) {
  Histogram h(4);
  h.add(1000);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.max_nonzero(), 3u);
}

TEST(Fitting, PowerLawRecoversExponent) {
  std::vector<double> x, y;
  for (double v : {16.0, 32.0, 64.0, 128.0, 256.0, 1024.0}) {
    x.push_back(v);
    y.push_back(3.0 * std::pow(v, 0.5));
  }
  EXPECT_NEAR(fit_power_law(x, y), 0.5, 1e-9);
}

TEST(Fitting, LogFitRecoversSlope) {
  std::vector<double> x, y;
  for (double v : {16.0, 32.0, 64.0, 128.0, 256.0}) {
    x.push_back(v);
    y.push_back(7.0 + 2.5 * std::log2(v));
  }
  EXPECT_NEAR(fit_log(x, y), 2.5, 1e-9);
}

TEST(Fitting, R2PerfectLine) {
  std::vector<double> x{1, 2, 3, 4}, y{2, 4, 6, 8};
  EXPECT_NEAR(linear_r2(x, y), 1.0, 1e-12);
}

}  // namespace
}  // namespace wfsort
