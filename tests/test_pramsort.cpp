// Tests for the PRAM-model sorting programs: correctness of both variants
// under synchronous, adversarial and crash schedules, plus the round-count
// and contention ordering claims the experiments quantify.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/bits.h"
#include "common/rng.h"
#include "common/stats.h"
#include "lowcontention/fat_tree.h"
#include "pram/machine.h"
#include "pram/scheduler.h"
#include "pramsort/driver.h"
#include "pramsort/validate.h"
#include "runtime/adversaries.h"
#include "runtime/fault_script.h"

namespace {

using pram::Word;
using wfsort::Rng;
using wfsort::sim::DetSortConfig;
using wfsort::sim::PlacePrune;

std::vector<Word> random_keys(std::size_t n, std::uint64_t seed) {
  // Distinct values, shuffled: the typical experiment input.
  std::vector<Word> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<Word>(i) * 2;
  Rng rng(seed);
  rng.shuffle(std::span<Word>(v));
  return v;
}

std::vector<Word> duplicate_keys(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Word> v(n);
  for (auto& x : v) x = static_cast<Word>(rng.below(5));
  return v;
}

// Depth of the pivot tree recorded in a layout (diagnostics).
std::uint32_t tree_depth(const pram::Machine& m, const wfsort::sim::SortLayout& l,
                         Word root) {
  std::uint32_t maxd = 0;
  std::vector<std::pair<Word, std::uint32_t>> stack{{root, 1}};
  while (!stack.empty()) {
    auto [node, d] = stack.back();
    stack.pop_back();
    if (node == pram::kEmpty) continue;
    maxd = std::max(maxd, d);
    stack.emplace_back(m.mem().peek(l.child_addr(node, 0)), d + 1);
    stack.emplace_back(m.mem().peek(l.child_addr(node, 1)), d + 1);
  }
  return maxd;
}

// ------------------------------------------------------------ deterministic

TEST(PramDetSort, SynchronousVariousSizes) {
  for (std::size_t n : {1u, 2u, 5u, 16u, 100u, 256u}) {
    pram::Machine m;
    auto keys = random_keys(n, n);
    auto res = wfsort::sim::run_det_sort_sync(m, keys, static_cast<std::uint32_t>(n));
    EXPECT_TRUE(res.run.all_finished) << n;
    EXPECT_TRUE(res.sorted) << "n=" << n;
  }
}

TEST(PramDetSort, FullStructuralValidation) {
  // Beyond sortedness: check the BST property, exact subtree sizes and the
  // place permutation against an independent traversal (Lemmas 2.5-2.6).
  for (std::size_t n : {17u, 128u, 333u}) {
    pram::Machine m;
    auto keys = random_keys(n, 1000 + n);
    auto res = wfsort::sim::run_det_sort_sync(m, keys, static_cast<std::uint32_t>(n));
    ASSERT_TRUE(res.sorted);
    auto report = wfsort::sim::validate_sort_run(m, res.layout, 0);
    EXPECT_TRUE(report.ok) << report.error;
  }
}

TEST(PramDetSort, ValidationCatchesCorruption) {
  pram::Machine m;
  auto keys = random_keys(64, 2);
  auto res = wfsort::sim::run_det_sort_sync(m, keys, 64);
  ASSERT_TRUE(res.sorted);
  // Corrupt one size and one output cell; validation must notice each.
  const auto good_size = m.mem().peek(res.layout.size_addr(5));
  m.mem().poke(res.layout.size_addr(5), good_size + 1);
  EXPECT_FALSE(wfsort::sim::validate_sort_run(m, res.layout, 0).ok);
  m.mem().poke(res.layout.size_addr(5), good_size);
  EXPECT_TRUE(wfsort::sim::validate_sort_run(m, res.layout, 0).ok);

  const auto good_out = m.mem().peek(res.layout.out_addr(10));
  m.mem().poke(res.layout.out_addr(10), good_out + 1);
  EXPECT_FALSE(wfsort::sim::validate_output_only(m, res.layout).ok);
}

TEST(PramDetSort, DuplicateKeys) {
  pram::Machine m;
  auto keys = duplicate_keys(128, 3);
  auto res = wfsort::sim::run_det_sort_sync(m, keys, 128);
  EXPECT_TRUE(res.sorted);
  auto report = wfsort::sim::validate_sort_run(m, res.layout, 0);
  EXPECT_TRUE(report.ok) << report.error;
}

TEST(PramDetSort, FewerProcessorsThanElements) {
  for (std::uint32_t p : {1u, 3u, 16u}) {
    pram::Machine m;
    auto keys = random_keys(200, p);
    auto res = wfsort::sim::run_det_sort_sync(m, keys, p);
    EXPECT_TRUE(res.sorted) << "P=" << p;
  }
}

TEST(PramDetSort, RoundsGrowLogarithmicallyWhenPEqualsN) {
  // Lemma 2.8: O(log N) rounds w.h.p. for P = N on random input.  Check the
  // per-doubling growth is bounded (the exact fit is experiment E3).
  std::vector<double> ns, rounds;
  for (std::size_t n : {64u, 128u, 256u, 512u, 1024u}) {
    pram::Machine m;
    auto keys = random_keys(n, 42 + n);
    auto res = wfsort::sim::run_det_sort_sync(m, keys, static_cast<std::uint32_t>(n));
    ASSERT_TRUE(res.sorted);
    ns.push_back(static_cast<double>(n));
    rounds.push_back(static_cast<double>(res.run.rounds));
  }
  // Rounds should grow far slower than linearly: fitted power-law exponent
  // clearly below 0.5 (log growth looks like exponent -> 0).
  EXPECT_LT(wfsort::fit_power_law(ns, rounds), 0.5);
  // And absolutely bounded by c * log^2 N for a small c.
  const double l = std::log2(1024.0);
  EXPECT_LT(rounds.back(), 12.0 * l * std::log2(l) + 200.0);
}

TEST(PramDetSort, SequentialAdversaryStillSorts) {
  pram::Machine m;
  pram::RoundRobinScheduler sched(1);
  auto keys = random_keys(48, 9);
  auto res = wfsort::sim::run_det_sort(m, keys, 6, sched);
  EXPECT_TRUE(res.sorted);
}

TEST(PramDetSort, RandomSubsetScheduleStillSorts) {
  pram::Machine m;
  pram::RandomSubsetScheduler sched(0.4, 17);
  auto keys = random_keys(100, 10);
  auto res = wfsort::sim::run_det_sort(m, keys, 20, sched);
  EXPECT_TRUE(res.sorted);
}

TEST(PramDetSort, HalfFreezeScheduleStillSorts) {
  pram::Machine m;
  pram::HalfFreezeScheduler sched(5);
  auto keys = random_keys(100, 11);
  auto res = wfsort::sim::run_det_sort(m, keys, 16, sched);
  EXPECT_TRUE(res.sorted);
}

TEST(PramDetSort, MassCrashSurvivorCompletes) {
  pram::Machine m;
  pram::SynchronousScheduler sched;
  m.set_round_hook(wfsort::runtime::make_round_hook(
      wfsort::runtime::single_survivor(/*round=*/10, /*survivor=*/0, /*procs=*/32)));
  auto keys = random_keys(64, 12);
  // Figure 6's placed-prune is unsound under crashes; the completion-flag
  // policy (default) must survive them (see DESIGN.md).
  auto res = wfsort::sim::run_det_sort(m, keys, 32, sched,
                                       DetSortConfig{.prune = PlacePrune::kCompleted});
  EXPECT_TRUE(res.run.all_finished);
  EXPECT_TRUE(res.sorted);
}

TEST(PramDetSort, CrashesAtEveryPhaseBoundaryRegion) {
  for (std::uint64_t crash_round : {2ULL, 8ULL, 20ULL, 40ULL, 80ULL}) {
    pram::Machine m;
    pram::SynchronousScheduler sched;
    m.set_round_hook(wfsort::runtime::make_round_hook(
        wfsort::runtime::fail_stop_at_round(crash_round, /*first=*/1, /*last=*/15)));
    auto keys = random_keys(64, crash_round);
    auto res = wfsort::sim::run_det_sort(m, keys, 16, sched,
                                         DetSortConfig{.prune = PlacePrune::kNone});
    EXPECT_TRUE(res.sorted) << "crash@" << crash_round;
  }
}

TEST(PramDetSort, RandomFirstPickupSortsAndFlattensAdversarialTree) {
  // Section 2.3: random-first work pickup keeps the tree O(log N) deep even
  // on sorted (adversarial) input.  With P << N the WAT hands each processor
  // a contiguous run, so sequential pickup inserts sorted elements in index
  // order and the tree degenerates into long chains; with P = N the CAS
  // arbitration itself randomizes insertion order, which is why the paper
  // needs the randomized pickup only for the general case.
  std::vector<Word> sorted_keys(256);
  for (std::size_t i = 0; i < sorted_keys.size(); ++i) {
    sorted_keys[i] = static_cast<Word>(i);
  }
  constexpr std::uint32_t kProcs = 2;

  pram::Machine m_rf;
  auto res_rf = wfsort::sim::run_det_sort_sync(m_rf, sorted_keys, kProcs,
                                               DetSortConfig{.random_first = true});
  ASSERT_TRUE(res_rf.sorted);
  const auto depth_rf = tree_depth(m_rf, res_rf.layout, 0);

  pram::Machine m_det;
  auto res_det = wfsort::sim::run_det_sort_sync(m_det, sorted_keys, kProcs);
  ASSERT_TRUE(res_det.sorted);
  const auto depth_det = tree_depth(m_det, res_det.layout, 0);

  EXPECT_LT(depth_rf, 60u);            // ~c log N
  EXPECT_GT(depth_det, 2 * depth_rf);  // sequential pickup degenerates
}

TEST(PramDetSort, PruneOffAlsoCorrectSynchronously) {
  pram::Machine m;
  auto keys = random_keys(128, 13);
  auto res = wfsort::sim::run_det_sort_sync(m, keys, 64,
                                            DetSortConfig{.prune = PlacePrune::kNone});
  EXPECT_TRUE(res.sorted);
}

TEST(PramDetSort, RootContentionIsOrderP) {
  // Section 3 intro: at the start all P processors hit the root's key cell,
  // so deterministic contention is Theta(P).  (E4 quantifies the curve.)
  pram::Machine m;
  auto keys = random_keys(128, 14);
  auto res = wfsort::sim::run_det_sort_sync(m, keys, 128);
  ASSERT_TRUE(res.sorted);
  EXPECT_GE(m.metrics().max_cell_contention(), 64u);
}

// ------------------------------------------------------------ classic baseline

TEST(PramClassicSort, BarrierReleasesAllParties) {
  pram::Machine m;
  constexpr std::uint32_t kProcs = 8;
  auto barrier = pram::make_barrier(m.mem(), "b", kProcs);
  auto out = m.mem().alloc("out", kProcs, 0);
  for (std::uint32_t p = 0; p < kProcs; ++p) {
    m.spawn([barrier, out, p](pram::Ctx& ctx) -> pram::Task {
      return [](pram::Ctx& c, pram::PramBarrier b, pram::Addr o,
                std::uint32_t delay) -> pram::Task {
        for (std::uint32_t d = 0; d < delay; ++d) (void)co_await c.yield();
        co_await pram::barrier_wait(c, b);
        co_await c.write(o, 1);
        co_await pram::barrier_wait(c, b);  // reusable (sense-reversing)
        co_await c.write(o, 2);
      }(ctx, barrier, out.base + p, p);  // staggered arrivals
    });
  }
  auto r = m.run_synchronous();
  EXPECT_TRUE(r.all_finished);
  for (std::uint32_t p = 0; p < kProcs; ++p) EXPECT_EQ(m.mem().peek(out.base + p), 2);
}

TEST(PramClassicSort, SortsSynchronously) {
  for (std::uint32_t p : {1u, 4u, 64u}) {
    pram::Machine m;
    auto keys = random_keys(64, 400 + p);
    auto res = wfsort::sim::run_classic_sort_sync(m, keys, p);
    EXPECT_TRUE(res.run.all_finished) << p;
    EXPECT_TRUE(res.sorted) << "P=" << p;
  }
}

TEST(PramClassicSort, ComparableCostButDeadlocksOnCrash) {
  auto keys = random_keys(128, 21);
  pram::Machine m_c;
  auto classic = wfsort::sim::run_classic_sort_sync(m_c, keys, 128);
  pram::Machine m_w;
  auto wf = wfsort::sim::run_det_sort_sync(m_w, keys, 128);
  ASSERT_TRUE(classic.sorted);
  ASSERT_TRUE(wf.sorted);
  // The two disciplines cost the same order of rounds (E15 shows the
  // wait-free one usually wins at P = N: barrier convoying beats WAT cost).
  EXPECT_LT(wf.run.rounds, 3 * classic.run.rounds);
  EXPECT_LT(classic.run.rounds, 3 * wf.run.rounds);

  // Kill one processor: the barrier never releases and the run hits the cap.
  pram::Machine m_dead(pram::MachineOptions{.max_rounds = 5000});
  pram::SynchronousScheduler sched;
  m_dead.set_round_hook(wfsort::runtime::make_round_hook(
      wfsort::runtime::fail_stop_at_round(/*round=*/10, /*first=*/3, /*last=*/3)));
  auto dead = wfsort::sim::run_classic_sort(m_dead, keys, 128, sched);
  EXPECT_TRUE(dead.run.hit_round_cap);
  EXPECT_FALSE(dead.sorted);
}

// ------------------------------------------------------------ low contention

TEST(PramLcSort, SynchronousVariousSizes) {
  for (std::size_t n : {4u, 16u, 64u, 100u, 256u}) {
    pram::Machine m;
    auto keys = random_keys(n, 100 + n);
    auto res = wfsort::sim::run_lc_sort_sync(m, keys, static_cast<std::uint32_t>(n));
    EXPECT_TRUE(res.run.all_finished) << n;
    EXPECT_TRUE(res.sorted) << "n=" << n;
  }
}

TEST(PramLcSort, DuplicateKeys) {
  pram::Machine m;
  auto keys = duplicate_keys(64, 15);
  auto res = wfsort::sim::run_lc_sort_sync(m, keys, 64);
  EXPECT_TRUE(res.sorted);
}

TEST(PramLcSort, FewerProcessorsThanElements) {
  pram::Machine m;
  auto keys = random_keys(128, 16);
  auto res = wfsort::sim::run_lc_sort_sync(m, keys, 16);
  EXPECT_TRUE(res.sorted);
}

TEST(PramLcSort, AdversarialSortedInputStaysShallow) {
  std::vector<Word> keys(256);
  for (std::size_t i = 0; i < keys.size(); ++i) keys[i] = static_cast<Word>(i);
  pram::Machine m;
  auto res = wfsort::sim::run_lc_sort_sync(m, keys, 256);
  ASSERT_TRUE(res.sorted);

  // Whole-tree depth = fat-tree levels + the deepest chain hanging off any
  // fat leaf (fat-interior structure is derived, not in main.child).
  const auto& l = res.layout;
  const Word w = m.mem().peek(l.winner.base);  // tournament root holds the group
  ASSERT_GE(w, 0);
  std::uint32_t below = 0;
  for (std::uint64_t f = 0; f < l.slice; ++f) {
    if (2 * f + 1 < l.slice) continue;  // interior
    const Word leaf_elem =
        m.mem().peek(l.gout_addr(static_cast<std::uint32_t>(w),
                                 wfsort::FatTree::rank_of_node(l.levels, f)));
    below = std::max(below, tree_depth(m, l.main, leaf_elem));
  }
  const std::uint32_t depth = l.levels + below;
  // Random insertion order keeps this O(log N): generous bound c * log2(256).
  EXPECT_LT(depth, 8u * 8u);
}

TEST(PramLcSort, SequentialAdversaryStillSorts) {
  pram::Machine m;
  pram::RoundRobinScheduler sched(1);
  auto keys = random_keys(16, 18);
  auto res = wfsort::sim::run_lc_sort(m, keys, 4, sched);
  EXPECT_TRUE(res.sorted);
}

TEST(PramLcSort, MassCrashSurvivorCompletes) {
  pram::Machine m;
  pram::SynchronousScheduler sched;
  m.set_round_hook(wfsort::runtime::make_round_hook(
      wfsort::runtime::single_survivor(/*round=*/15, /*survivor=*/0, /*procs=*/64)));
  auto keys = random_keys(64, 19);
  auto res = wfsort::sim::run_lc_sort(m, keys, 64, sched);
  EXPECT_TRUE(res.run.all_finished);
  EXPECT_TRUE(res.sorted);
}

TEST(PramLcSort, ContentionWellBelowDeterministic) {
  // The headline of Section 3: contention drops from Theta(P) to ~sqrt(P).
  constexpr std::size_t kN = 256;
  auto keys = random_keys(kN, 20);

  pram::Machine m_det;
  auto det = wfsort::sim::run_det_sort_sync(m_det, keys, kN);
  ASSERT_TRUE(det.sorted);

  pram::Machine m_lc;
  auto lc = wfsort::sim::run_lc_sort_sync(m_lc, keys, kN);
  ASSERT_TRUE(lc.sorted);

  EXPECT_LT(m_lc.metrics().max_cell_contention(),
            m_det.metrics().max_cell_contention() / 2);
}

}  // namespace
