// Tests for the command-line flag parser.
#include <gtest/gtest.h>

#include <vector>

#include "common/cli.h"

namespace {

using wfsort::CliFlags;

CliFlags make_flags() {
  CliFlags f("test program");
  f.add_u64("count", 10, "a number");
  f.add_string("name", "default", "a string");
  f.add_bool("verbose", false, "a toggle");
  f.add_bool("color", true, "an on-by-default toggle");
  return f;
}

bool parse(CliFlags& f, const std::vector<const char*>& args) {
  std::vector<const char*> argv;
  argv.reserve(args.size() + 1);
  argv.push_back("prog");
  for (const char* a : args) argv.push_back(a);
  return f.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, DefaultsSurviveEmptyArgv) {
  auto f = make_flags();
  ASSERT_TRUE(parse(f, {}));
  EXPECT_EQ(f.u64("count"), 10u);
  EXPECT_EQ(f.str("name"), "default");
  EXPECT_FALSE(f.flag("verbose"));
  EXPECT_TRUE(f.flag("color"));
}

TEST(Cli, EqualsAndSpaceSyntax) {
  auto f = make_flags();
  ASSERT_TRUE(parse(f, {"--count=42", "--name", "zed"}));
  EXPECT_EQ(f.u64("count"), 42u);
  EXPECT_EQ(f.str("name"), "zed");
}

TEST(Cli, BoolForms) {
  auto f = make_flags();
  ASSERT_TRUE(parse(f, {"--verbose", "--no-color"}));
  EXPECT_TRUE(f.flag("verbose"));
  EXPECT_FALSE(f.flag("color"));

  auto g = make_flags();
  ASSERT_TRUE(parse(g, {"--verbose=true", "--color=false"}));
  EXPECT_TRUE(g.flag("verbose"));
  EXPECT_FALSE(g.flag("color"));
}

TEST(Cli, PositionalArgumentsPreserved) {
  auto f = make_flags();
  ASSERT_TRUE(parse(f, {"mode", "--count=1", "input.txt"}));
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "mode");
  EXPECT_EQ(f.positional()[1], "input.txt");
}

TEST(Cli, Errors) {
  auto f = make_flags();
  EXPECT_FALSE(parse(f, {"--bogus=1"}));
  EXPECT_NE(f.error().find("unknown flag"), std::string::npos);

  auto g = make_flags();
  EXPECT_FALSE(parse(g, {"--count=abc"}));
  EXPECT_NE(g.error().find("unsigned integer"), std::string::npos);

  auto h = make_flags();
  EXPECT_FALSE(parse(h, {"--name"}));
  EXPECT_NE(h.error().find("needs a value"), std::string::npos);

  auto i = make_flags();
  EXPECT_FALSE(parse(i, {"--verbose=banana"}));
}

TEST(Cli, HelpRequested) {
  auto f = make_flags();
  ASSERT_TRUE(parse(f, {"--help"}));
  EXPECT_TRUE(f.help_requested());
  const std::string help = f.help_text();
  EXPECT_NE(help.find("--count"), std::string::npos);
  EXPECT_NE(help.find("--no-color"), std::string::npos);
}

}  // namespace
