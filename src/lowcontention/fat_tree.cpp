#include "lowcontention/fat_tree.h"

namespace wfsort {

namespace {
// Cells per 64-byte cache line; the plane stride is rounded up to this so
// the planes of one node are always on distinct lines.
constexpr std::uint64_t kCellsPerLine = 64 / sizeof(std::atomic<std::int64_t>);
}  // namespace

FatTree::FatTree(std::uint32_t levels, std::uint32_t copies)
    : levels_(levels),
      nodes_((std::uint64_t{1} << levels) - 1),
      copies_(copies),
      stride_((nodes_ + kCellsPerLine - 1) / kCellsPerLine * kCellsPerLine),
      cells_(stride_ * copies) {
  WFSORT_CHECK(levels >= 1);
  WFSORT_CHECK(copies >= 1);
  reset();
}

FatTree::FatTree(std::uint32_t levels, std::uint32_t copies, RunArena& arena)
    : levels_(levels),
      nodes_((std::uint64_t{1} << levels) - 1),
      copies_(copies),
      stride_((nodes_ + kCellsPerLine - 1) / kCellsPerLine * kCellsPerLine),
      cells_(stride_ * copies, arena) {
  WFSORT_CHECK(levels >= 1);
  WFSORT_CHECK(copies >= 1);
  reset();
}

void FatTree::reset() {
  for (std::uint64_t i = 0; i < cells_.size(); ++i) {
    cells_[i].store(kEmptyCell, std::memory_order_relaxed);
  }
  std::atomic_thread_fence(std::memory_order_seq_cst);
}

std::uint64_t FatTree::rank_of(std::uint64_t f) const {
  WFSORT_CHECK(f < nodes_);
  return rank_of_node(levels_, f);
}

std::uint64_t FatTree::rank_of_node(std::uint32_t levels, std::uint64_t f) {
  // Node at depth d, position p within its level, in a complete tree of
  // `levels` levels: the subtree below it owns a contiguous rank interval
  // of width 2^(levels-d); its own rank is the interval's midpoint.
  const std::uint32_t d = log2_floor(f + 1);
  const std::uint64_t p = (f + 1) - (std::uint64_t{1} << d);
  const std::uint64_t width = std::uint64_t{1} << (levels - d);
  return p * width + width / 2 - 1;
}

std::uint64_t FatTree::node_of_rank(std::uint32_t levels, std::uint64_t rank) {
  // rank + 1 = p * W + W/2 with W = 2^(levels - d), so W/2 is the largest
  // power of two dividing rank + 1.
  const std::uint64_t r1 = rank + 1;
  const std::uint64_t half_w = r1 & (~r1 + 1);  // lowest set bit
  const std::uint64_t w = 2 * half_w;
  const std::uint32_t d = levels - log2_floor(w);
  const std::uint64_t p = (r1 - half_w) / w;
  return (std::uint64_t{1} << d) - 1 + p;
}

std::uint64_t FatTree::fill_quota(std::uint32_t participants) const {
  const std::uint64_t cells = nodes_ * copies_;
  const std::uint64_t total = cells * (log2_ceil(cells) + 2);
  const std::uint64_t p = participants == 0 ? 1 : participants;
  return (total + p - 1) / p;
}

void FatTree::write_cell(std::uint64_t node, std::uint32_t copy, std::int64_t element_index) {
  WFSORT_CHECK(node < nodes_ && copy < copies_);
  cells_[copy * stride_ + node].store(element_index, std::memory_order_release);
}

void FatTree::write_random_cells(std::span<const std::int64_t> sorted_slice,
                                 std::uint64_t quota, Rng& rng) {
  WFSORT_CHECK(sorted_slice.size() >= nodes_);
  for (std::uint64_t k = 0; k < quota; ++k) {
    const std::uint64_t cell = rng.below(nodes_ * copies_);
    const std::uint64_t node = cell % nodes_;
    const std::uint64_t copy = cell / nodes_;
    cells_[copy * stride_ + node].store(sorted_slice[rank_of(node)],
                                        std::memory_order_release);
  }
}

std::int64_t FatTree::read(std::uint64_t f, std::span<const std::int64_t> sorted_slice,
                           Rng& rng, std::uint64_t* misses) const {
  WFSORT_CHECK(f < nodes_);
  const std::int64_t v = read_copy(f, draw_copy(rng), misses);
  if (v != kEmptyCell) return v;
  WFSORT_CHECK(sorted_slice.size() >= nodes_);
  return sorted_slice[rank_of(f)];
}

double FatTree::fill_fraction() const {
  std::uint64_t filled = 0;
  for (std::uint32_t c = 0; c < copies_; ++c) {
    for (std::uint64_t f = 0; f < nodes_; ++f) {
      if (cells_[c * stride_ + f].load(std::memory_order_relaxed) != kEmptyCell) ++filled;
    }
  }
  const std::uint64_t cells = nodes_ * copies_;
  return cells == 0 ? 1.0 : static_cast<double>(filled) / static_cast<double>(cells);
}

}  // namespace wfsort
