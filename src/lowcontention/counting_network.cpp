#include "lowcontention/counting_network.h"

namespace wfsort {

BitonicCountingNetwork::BitonicCountingNetwork(std::uint32_t width)
    : width_(width), wire_counters_(width) {
  WFSORT_CHECK(width >= 2 && is_pow2(width));

  // Batcher's bitonic layout: merge phases k = 2,4,...,w; within each phase
  // sub-stages j = k/2, k/4, ..., 1 pair wire i with i^j.  The "ascending"
  // half (i & k) == 0 routes the toggle's 0-side to the lower wire; the
  // descending half reverses it — exactly the comparator orientation of the
  // sorting network, which is what gives Bitonic[w] the step property.
  for (std::uint32_t k = 2; k <= width_; k *= 2) {
    for (std::uint32_t j = k / 2; j > 0; j /= 2) {
      std::vector<std::int32_t> stage(width_, -1);
      for (std::uint32_t i = 0; i < width_; ++i) {
        const std::uint32_t partner = i ^ j;
        if (partner <= i) continue;
        const bool ascending = (i & k) == 0;
        Step step;
        step.balancer = static_cast<std::uint32_t>(steps_.size());  // 1:1 with steps
        step.up = ascending ? i : partner;
        step.down = ascending ? partner : i;
        const auto step_index = static_cast<std::int32_t>(steps_.size());
        steps_.push_back(step);
        stage[i] = step_index;
        stage[partner] = step_index;
      }
      stages_.push_back(std::move(stage));
    }
  }
  // Allocate the toggles in one block (atomics are not movable, so the
  // vector must be sized once, after the wiring is known).
  balancers_ = std::vector<Balancer>(steps_.size());

  // Output wire i hands out values i, i+w, i+2w, ...
  for (std::uint32_t i = 0; i < width_; ++i) {
    wire_counters_[i].store(i, std::memory_order_relaxed);
  }
}

std::uint64_t BitonicCountingNetwork::next(std::uint32_t input_wire) {
  std::uint32_t wire = input_wire % width_;
  for (std::uint32_t s = 0; s < stages_.size(); ++s) {
    const Step* step = step_at(s, wire);
    if (step == nullptr) continue;
    const std::uint8_t bit =
        balancers_[step->balancer].toggle.fetch_xor(1, std::memory_order_acq_rel);
    wire = (bit == 0) ? step->up : step->down;
  }
  return wire_counters_[wire].fetch_add(width_, std::memory_order_acq_rel);
}

}  // namespace wfsort
