#include "lowcontention/winner_tree.h"

namespace wfsort {

WinnerTree::WinnerTree(std::uint32_t slots, std::uint32_t wait_unit)
    : tree_(next_pow2(slots == 0 ? 1 : slots)), wait_unit_(wait_unit), nodes_(tree_.nodes()) {
  reset();
}

WinnerTree::WinnerTree(std::uint32_t slots, std::uint32_t wait_unit, RunArena& arena)
    : tree_(next_pow2(slots == 0 ? 1 : slots)),
      wait_unit_(wait_unit),
      nodes_(tree_.nodes(), arena) {
  reset();
}

void WinnerTree::reset() {
  for (std::uint64_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i].v.store(kUndecided, std::memory_order_relaxed);
  }
  std::atomic_thread_fence(std::memory_order_seq_cst);
}

std::int64_t WinnerTree::compete(std::uint32_t slot, std::int64_t candidate, Rng& rng) {
  WFSORT_CHECK(candidate >= 0);
  const std::uint32_t depth = tree_.depth();

  // Geometric pre-wait: s counts consecutive heads; a processor that tossed
  // s heads waits K * (log P - s) units, so about 2^s processors leave the
  // wait phase in wave s.
  std::uint32_t s = 0;
  while (s < depth && rng.coin()) ++s;
  const std::uint64_t wait_iters =
      static_cast<std::uint64_t>(wait_unit_) * (depth - s);
  for (std::uint64_t w = 0; w < wait_iters; ++w) std::this_thread::yield();

  // Climb from our leaf to the first decided node (or the root).
  std::uint64_t j = tree_.leaf(slot % tree_.leaves);
  while (!tree_.is_root(j) && nodes_[j].v.load(std::memory_order_acquire) == kUndecided) {
    j = tree_.parent(j);
  }
  if (tree_.is_root(j)) {
    std::int64_t expected = kUndecided;
    nodes_[0].v.compare_exchange_strong(expected, candidate, std::memory_order_acq_rel,
                                      std::memory_order_acquire);
  }

  const std::int64_t decided = nodes_[j].v.load(std::memory_order_acquire);
  WFSORT_CHECK(decided != kUndecided);
  // Push the decision one level down (the paper's binary dissemination).
  if (!tree_.is_leaf(j)) {
    nodes_[tree_.left(j)].v.store(decided, std::memory_order_release);
    nodes_[tree_.right(j)].v.store(decided, std::memory_order_release);
  }
  return decided;
}

}  // namespace wfsort
