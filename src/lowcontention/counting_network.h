// Bitonic counting network (Aspnes, Herlihy & Shavit).
//
// The paper's contention discussion (Section 1.2) builds on the counting-
// network literature: networks of two-input "balancers" spread increments
// of a shared counter across w output wires, replacing one Theta(P) hot
// cell with O(P/w) pressure per balancer.  This module implements
// Bitonic[w] — the balancer layout of Batcher's bitonic merge network —
// which satisfies the step property and therefore counts: after any
// quiescent prefix of T traversals the values handed out are exactly
// 0..T-1.
//
// Balancers are single atomic toggle bits flipped with fetch_xor, so a
// traversal is wait-free: exactly depth(w) = O(log^2 w) atomic operations,
// no loops.  This makes the network a natural companion experiment (E14)
// to the paper's own low-contention constructions.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/bits.h"
#include "common/check.h"

namespace wfsort {

class BitonicCountingNetwork {
 public:
  // `width`: number of wires, a power of two >= 2.
  explicit BitonicCountingNetwork(std::uint32_t width);

  std::uint32_t width() const { return width_; }
  std::size_t balancer_count() const { return balancers_.size(); }
  std::uint32_t depth() const { return static_cast<std::uint32_t>(stages_.size()); }

  // Take the next counter value, entering on `input_wire` (callers usually
  // pass their thread id; it only affects which balancers they touch).
  // Wait-free: depth() fetch_xor operations plus one fetch_add.
  std::uint64_t next(std::uint32_t input_wire);

  // Exposed for the simulator program and for tests: the stage structure.
  struct Step {
    std::uint32_t balancer;  // index into the global balancer array
    std::uint32_t up;        // output wire when the toggle read 0
    std::uint32_t down;      // output wire when the toggle read 1
  };
  // stage s, wire w -> the step taken (or nullptr if the wire passes through).
  const Step* step_at(std::uint32_t stage, std::uint32_t wire) const {
    const std::int32_t idx = stages_[stage][wire];
    return idx < 0 ? nullptr : &steps_[static_cast<std::size_t>(idx)];
  }

 private:
  struct Balancer {
    std::atomic<std::uint8_t> toggle{0};
  };

  std::uint32_t width_;
  std::vector<Balancer> balancers_;
  std::vector<Step> steps_;
  std::vector<std::vector<std::int32_t>> stages_;  // [stage][wire] -> step index or -1
  std::vector<std::atomic<std::uint64_t>> wire_counters_;
};

}  // namespace wfsort
