// Fat balanced binary tree with replicated nodes (paper Section 3.2) —
// native form.
//
// The winner group's sorted slice of S = 2^H - 1 elements is viewed as a
// complete binary search tree (node 0 the root, heap layout); each node is
// replicated into `copies` cells.  Readers descending the top of the
// Quicksort tree pick a random copy, which divides the read traffic at each
// level: the root — the hottest node of the deterministic algorithm, with
// P concurrent readers — has sqrt(P) copies, so expected per-cell contention
// drops to sqrt(P).
//
// Cells store *element indices* (into the array being sorted), not keys, so
// the structure is key-type agnostic and tie-breaking by index keeps
// working.  Filling is randomized ("write-most"): every processor writes
// `fill_quota()` randomly chosen cells, which fills the whole structure only
// with high probability.  A reader that draws a still-empty copy falls back
// to the authoritative slice value (see read()); the fallback is correct and
// merely costs the contention the duplicate would have absorbed.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "common/bits.h"
#include "common/check.h"
#include "common/rng.h"

namespace wfsort {

class FatTree {
 public:
  // `levels`: H, the number of BST levels (S = 2^H - 1 nodes).
  // `copies`: duplicates per node.
  FatTree(std::uint32_t levels, std::uint32_t copies);

  std::uint32_t levels() const { return levels_; }
  std::uint64_t node_count() const { return nodes_; }
  std::uint32_t copies() const { return copies_; }

  // In-order rank of heap-layout node `f` within the S sorted values; the
  // value of node f is sorted_slice[rank_of(f)].
  std::uint64_t rank_of(std::uint64_t f) const;

  // Inverse of rank_of for a tree with `levels` levels (static so the PRAM
  // programs can use it without an instance).
  static std::uint64_t node_of_rank(std::uint32_t levels, std::uint64_t rank);
  static std::uint64_t rank_of_node(std::uint32_t levels, std::uint64_t f);

  // Heap navigation (valid while the child index is < node_count()).
  std::uint64_t left(std::uint64_t f) const { return 2 * f + 1; }
  std::uint64_t right(std::uint64_t f) const { return 2 * f + 2; }
  bool is_leaf(std::uint64_t f) const { return left(f) >= nodes_; }

  // Write-most: write `quota` random cells, taking values from
  // `sorted_slice` (element indices of the winner slice in sorted order).
  // The paper's quota is log P; fill_quota() returns it for convenience.
  void write_random_cells(std::span<const std::int64_t> sorted_slice, std::uint64_t quota,
                          Rng& rng);
  std::uint64_t fill_quota(std::uint32_t participants) const;

  // Deterministic write of one cell (used by tests and by the PRAM variant's
  // setup comparisons).
  void write_cell(std::uint64_t node, std::uint32_t copy, std::int64_t element_index);

  // Read node f through a random copy.  If the chosen copy is still empty,
  // fall back to the authoritative slice value.  `misses` (optional) counts
  // fallbacks taken.
  std::int64_t read(std::uint64_t f, std::span<const std::int64_t> sorted_slice, Rng& rng,
                    std::uint64_t* misses = nullptr) const;

  // Fraction of cells filled (diagnostics for experiment E7).
  double fill_fraction() const;

  void reset();

 private:
  std::uint32_t levels_;
  std::uint64_t nodes_;
  std::uint32_t copies_;
  std::vector<std::atomic<std::int64_t>> cells_;  // nodes_ * copies_
};

}  // namespace wfsort
