// Fat balanced binary tree with replicated nodes (paper Section 3.2) —
// native form.
//
// The winner group's sorted slice of S = 2^H - 1 elements is viewed as a
// complete binary search tree (node 0 the root, heap layout); each node is
// replicated into `copies` cells.  Readers descending the top of the
// Quicksort tree pick a random copy, which divides the read traffic at each
// level: the root — the hottest node of the deterministic algorithm, with
// P concurrent readers — has sqrt(P) copies, so expected per-cell contention
// drops to sqrt(P).
//
// Storage is PLANE-MAJOR: copy c of node f lives at cells_[c * stride + f],
// with the stride rounded up to a full cache line of cells.  Copies of one
// node therefore never share a cache line — with the naive node-major layout
// (cells_[f * copies + c]) all copies of a hot node land on the SAME line
// and the replication divides nothing at the coherence level, which is the
// level contention actually happens at.  Plane-major also makes a reader's
// descent path (root, child, grandchild... within one plane) a compact
// prefix of one plane — friendly to prefetching (see prefetch()).
//
// Cells store *element indices* (into the array being sorted), not keys, so
// the structure is key-type agnostic and tie-breaking by index keeps
// working.  Filling is randomized ("write-most"): every processor writes
// `fill_quota()` randomly chosen cells, which fills the whole structure only
// with high probability.  A reader that draws a still-empty copy falls back
// to the authoritative slice value (see read()); the fallback is correct and
// merely costs the contention the duplicate would have absorbed.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>

#include "common/arena.h"
#include "common/bits.h"
#include "common/check.h"
#include "common/rng.h"

namespace wfsort {

class FatTree {
 public:
  // Sentinel stored in never-written cells (element indices are >= 0).
  static constexpr std::int64_t kEmptyCell = -1;

  // `levels`: H, the number of BST levels (S = 2^H - 1 nodes).
  // `copies`: duplicates per node.
  FatTree(std::uint32_t levels, std::uint32_t copies);
  // Pooled form: the cell planes borrow RunArena storage.
  FatTree(std::uint32_t levels, std::uint32_t copies, RunArena& arena);

  std::uint32_t levels() const { return levels_; }
  std::uint64_t node_count() const { return nodes_; }
  std::uint32_t copies() const { return copies_; }

  // In-order rank of heap-layout node `f` within the S sorted values; the
  // value of node f is sorted_slice[rank_of(f)].
  std::uint64_t rank_of(std::uint64_t f) const;

  // Inverse of rank_of for a tree with `levels` levels (static so the PRAM
  // programs can use it without an instance).
  static std::uint64_t node_of_rank(std::uint32_t levels, std::uint64_t rank);
  static std::uint64_t rank_of_node(std::uint32_t levels, std::uint64_t f);

  // Heap navigation (valid while the child index is < node_count()).
  std::uint64_t left(std::uint64_t f) const { return 2 * f + 1; }
  std::uint64_t right(std::uint64_t f) const { return 2 * f + 2; }
  bool is_leaf(std::uint64_t f) const { return left(f) >= nodes_; }

  // Write-most: write `quota` random cells, taking values from
  // `sorted_slice` (element indices of the winner slice in sorted order).
  void write_random_cells(std::span<const std::int64_t> sorted_slice, std::uint64_t quota,
                          Rng& rng);

  // Per-participant write quota that fills every cell w.h.p.  The coupon
  // collector over C cells needs ~C ln C total writes; participants * quota
  // is C (log2 C + 2) >= C ln C with margin, so the post-fill read path is
  // all-hits w.h.p. and the slice fallback stays what it is meant to be: a
  // rare crash/straggler escape hatch, not the common case.  (The literal
  // per-processor log P of the paper assumes P ~ C processors; with few
  // processors and S sqrt(N) cells it leaves the tree almost entirely empty
  // — the seed behaved that way, and telemetry showed ~99% of stage-E
  // descents falling back to the shared slice.)
  std::uint64_t fill_quota(std::uint32_t participants) const;

  // Deterministic write of one cell (used by tests and by the PRAM variant's
  // setup comparisons).
  void write_cell(std::uint64_t node, std::uint32_t copy, std::int64_t element_index);

  // Read node f through a random copy.  If the chosen copy is still empty,
  // fall back to the authoritative slice value.  `misses` (optional) counts
  // fallbacks taken.
  std::int64_t read(std::uint64_t f, std::span<const std::int64_t> sorted_slice, Rng& rng,
                    std::uint64_t* misses = nullptr) const;

  // Split form of read() for batched descents: the caller draws the copy
  // once (draw_copy), prefetches the cells it will touch, then reads them —
  // read_copy returns kEmptyCell on an unfilled cell and the caller applies
  // its own fallback.
  std::uint32_t draw_copy(Rng& rng) const {
    return static_cast<std::uint32_t>(rng.below(copies_));
  }
  std::int64_t read_copy(std::uint64_t f, std::uint32_t copy,
                         std::uint64_t* misses = nullptr) const {
    WFSORT_DCHECK(f < nodes_ && copy < copies_);
    const std::int64_t v =
        cells_[copy * stride_ + f].load(std::memory_order_acquire);
    if (v == kEmptyCell && misses != nullptr) ++*misses;
    return v;
  }
  void prefetch(std::uint64_t f, std::uint32_t copy) const {
    __builtin_prefetch(&cells_[copy * stride_ + f], 0 /*read*/, 1);
  }

  // Fraction of cells filled (diagnostics for experiment E7).
  double fill_fraction() const;

  void reset();

 private:
  std::uint32_t levels_;
  std::uint64_t nodes_;
  std::uint32_t copies_;
  std::uint64_t stride_;  // nodes_ rounded up to a cache line of cells
  ArenaArray<std::atomic<std::int64_t>> cells_;  // copies_ planes of stride_
};

}  // namespace wfsort
