// Low-contention winner selection (paper Figure 9) — native form.
//
// P participants each bring a candidate value; exactly one candidate is
// selected, and every participant learns the selection.  A balanced binary
// tree of P slots starts EMPTY.  Each participant first waits a random
// geometric amount (tossing a coin up to log P times and then delaying
// proportionally to the number of heads NOT obtained) so that arrivals form
// exponentially growing waves; it then climbs from its leaf until it meets a
// non-EMPTY node or the root, CASes its candidate into the root if it got
// there, and copies the decided value one level down.  The waves keep the
// expected contention at any node O(log P) (Lemma 3.2).
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "common/arena.h"
#include "common/bits.h"
#include "common/check.h"
#include "common/rng.h"

namespace wfsort {

class WinnerTree {
 public:
  // `slots`: number of participants (rounded up to a power of two
  // internally).  `wait_unit`: how many cooperative yields one unit of the
  // Figure-9 wait loop costs (0 disables waiting — useful in tests).
  explicit WinnerTree(std::uint32_t slots, std::uint32_t wait_unit = 4);
  // Pooled form: the padded slots borrow RunArena storage.
  WinnerTree(std::uint32_t slots, std::uint32_t wait_unit, RunArena& arena);

  // Compete with `candidate` (>= 0) from position `slot`.  Returns the
  // winning candidate.  Wait-free: the climb is bounded by the tree depth;
  // the pre-wait is bounded by K * log P yields.
  std::int64_t compete(std::uint32_t slot, std::int64_t candidate, Rng& rng);

  // The decided value, or kUndecided if no competitor reached the root yet.
  static constexpr std::int64_t kUndecided = -1;
  std::int64_t winner() const { return nodes_[0].v.load(std::memory_order_acquire); }

  void reset();

 private:
  // One slot per cache line: Lemma 3.2 bounds per-NODE contention, but with
  // eight unpadded slots per line the coherence traffic of adjacent nodes
  // (a parent and its wave of climbers, say) lands on one line and the bound
  // stops describing what the memory system sees.  The tree has at most
  // 2 * next_pow2(P) - 1 slots, so the padding is O(P) cache lines — noise.
  struct alignas(64) PaddedSlot {
    std::atomic<std::int64_t> v;
  };

  HeapTree tree_;
  std::uint32_t wait_unit_;
  ArenaArray<PaddedSlot> nodes_;
};

}  // namespace wfsort
