#include "exp/workloads.h"

namespace wfsort::exp {

const char* dist_name(Dist d) {
  switch (d) {
    case Dist::kShuffled: return "shuffled";
    case Dist::kUniform: return "uniform";
    case Dist::kSorted: return "sorted";
    case Dist::kReversed: return "reversed";
    case Dist::kFewDistinct: return "few-distinct";
    case Dist::kOrganPipe: return "organ-pipe";
  }
  return "?";
}

bool parse_dist(const std::string& name, Dist* out) {
  if (name == "shuffled") *out = Dist::kShuffled;
  else if (name == "uniform") *out = Dist::kUniform;
  else if (name == "sorted") *out = Dist::kSorted;
  else if (name == "reversed") *out = Dist::kReversed;
  else if (name == "few-distinct" || name == "few") *out = Dist::kFewDistinct;
  else if (name == "organ-pipe" || name == "pipe") *out = Dist::kOrganPipe;
  else return false;
  return true;
}

namespace {

template <typename T>
std::vector<T> make_keys(std::size_t n, Dist d, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<T> v(n);
  switch (d) {
    case Dist::kShuffled:
      for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<T>(i);
      rng.shuffle(std::span<T>(v));
      break;
    case Dist::kUniform:
      for (auto& x : v) x = static_cast<T>(rng.next() >> 1);
      break;
    case Dist::kSorted:
      for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<T>(i);
      break;
    case Dist::kReversed:
      for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<T>(n - i);
      break;
    case Dist::kFewDistinct:
      for (auto& x : v) x = static_cast<T>(rng.below(8));
      break;
    case Dist::kOrganPipe:
      for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<T>(i < n / 2 ? i : n - i);
      break;
  }
  return v;
}

}  // namespace

std::vector<std::int64_t> make_word_keys(std::size_t n, Dist d, std::uint64_t seed) {
  return make_keys<std::int64_t>(n, d, seed);
}

std::vector<std::uint64_t> make_u64_keys(std::size_t n, Dist d, std::uint64_t seed) {
  return make_keys<std::uint64_t>(n, d, seed);
}

}  // namespace wfsort::exp
