// Input generators shared by benches and examples.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace wfsort::exp {

enum class Dist {
  kShuffled,   // distinct values, uniformly shuffled (the paper's model input)
  kUniform,    // i.i.d. 64-bit values
  kSorted,     // already sorted (adversarial for deterministic pickup)
  kReversed,   // descending
  kFewDistinct,  // heavy duplication (8 distinct values)
  kOrganPipe,  // ascending then descending
};

const char* dist_name(Dist d);

// Inverse of dist_name; also accepts the CLI's short spellings ("few",
// "pipe").  Returns false on unknown names.
bool parse_dist(const std::string& name, Dist* out);

// Signed-word keys for the PRAM simulator.
std::vector<std::int64_t> make_word_keys(std::size_t n, Dist d, std::uint64_t seed);

// Unsigned keys for the native sorter.
std::vector<std::uint64_t> make_u64_keys(std::size_t n, Dist d, std::uint64_t seed);

}  // namespace wfsort::exp
