// Console table rendering for the experiment harness.
//
// Every bench binary prints its results as one or more of these tables; the
// same rows are recorded in EXPERIMENTS.md.  Columns are declared up front,
// rows appended as cells, and the renderer right-aligns numbers under their
// headers.  A Series helper accumulates (x, y) points and reports fitted
// growth (power-law exponent on log-log axes, or per-doubling slope).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

#include "common/stats.h"

namespace wfsort::exp {

using Cell = std::variant<std::string, double, std::int64_t, std::uint64_t>;

class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  Table& add_row(std::vector<Cell> cells);

  // Render with box-drawing separators to `out` (defaults used by print()).
  void render(std::ostream& out) const;
  void print() const;

  // Machine-readable form: a header row then one CSV line per row.  Cells
  // containing commas or quotes are quoted per RFC 4180.
  void render_csv(std::ostream& out) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

// A measured (x, y) series with growth-fitting helpers.
class Series {
 public:
  void add(double x, double y);

  // Exponent alpha of y ~ c * x^alpha.
  double power_law_exponent() const;
  // Slope b of y ~ a + b * log2(x).
  double log_slope() const;
  // R^2 of the log-log linear fit.
  double loglog_r2() const;

  const std::vector<double>& xs() const { return xs_; }
  const std::vector<double>& ys() const { return ys_; }

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
};

// One-line verdict helper: "alpha=0.52 (expected ~0.5) PASS/WARN".
std::string verdict_exponent(double measured, double expected, double tolerance);

}  // namespace wfsort::exp
