#include "exp/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "common/check.h"

namespace wfsort::exp {

namespace {

std::string to_display(const Cell& c) {
  struct Visitor {
    std::string operator()(const std::string& s) const { return s; }
    std::string operator()(double d) const {
      std::ostringstream os;
      if (d != 0.0 && (std::fabs(d) >= 100000.0 || std::fabs(d) < 0.001)) {
        os << std::scientific << std::setprecision(2) << d;
      } else {
        os << std::fixed << std::setprecision(3) << d;
        std::string s = os.str();
        // Trim trailing zeros but keep at least one decimal digit.
        while (s.size() > 1 && s.back() == '0' && s[s.size() - 2] != '.') s.pop_back();
        return s;
      }
      return os.str();
    }
    std::string operator()(std::int64_t v) const { return std::to_string(v); }
    std::string operator()(std::uint64_t v) const { return std::to_string(v); }
  };
  return std::visit(Visitor{}, c);
}

}  // namespace

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  WFSORT_CHECK(!columns_.empty());
}

Table& Table::add_row(std::vector<Cell> cells) {
  WFSORT_CHECK(cells.size() == columns_.size());
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (const Cell& c : cells) row.push_back(to_display(c));
  rows_.push_back(std::move(row));
  return *this;
}

void Table::render(std::ostream& out) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto rule = [&](char fill) {
    out << '+';
    for (std::size_t w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) out << fill;
      out << '+';
    }
    out << '\n';
  };

  out << "\n== " << title_ << " ==\n";
  rule('-');
  out << '|';
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    out << ' ' << std::setw(static_cast<int>(widths[c])) << std::left << columns_[c]
        << " |";
  }
  out << '\n';
  rule('=');
  for (const auto& row : rows_) {
    out << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << ' ' << std::setw(static_cast<int>(widths[c])) << std::right << row[c] << " |";
    }
    out << '\n';
  }
  rule('-');
}

void Table::print() const { render(std::cout); }

namespace {

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void Table::render_csv(std::ostream& out) const {
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    out << (c == 0 ? "" : ",") << csv_escape(columns_[c]);
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : ",") << csv_escape(row[c]);
    }
    out << '\n';
  }
}

void Series::add(double x, double y) {
  xs_.push_back(x);
  ys_.push_back(y);
}

double Series::power_law_exponent() const { return fit_power_law(xs_, ys_); }

double Series::log_slope() const { return fit_log(xs_, ys_); }

double Series::loglog_r2() const {
  std::vector<double> lx(xs_.size()), ly(ys_.size());
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    lx[i] = std::log2(xs_[i]);
    ly[i] = std::log2(std::max(ys_[i], 1e-9));
  }
  return linear_r2(lx, ly);
}

std::string verdict_exponent(double measured, double expected, double tolerance) {
  char buf[128];
  const bool ok = std::fabs(measured - expected) <= tolerance;
  std::snprintf(buf, sizeof(buf), "measured %.3f vs expected %.2f (+/-%.2f): %s", measured,
                expected, tolerance, ok ? "MATCH" : "DEVIATES");
  return buf;
}

}  // namespace wfsort::exp
