#include "runtime/search.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/check.h"
#include "pram/trace.h"
#include "pramsort/lc_layout.h"
#include "pramsort/lc_programs.h"
#include "pramsort/layout.h"
#include "workalloc/wat_program.h"

namespace wfsort::runtime {

namespace {

// Watches the deterministic sort's regions during a faultless run and
// records the landmark rounds symbolic triggers refer to.
class ProbeTracer final : public pram::Tracer {
 public:
  ProbeTracer(const sim::SortLayout& l, const pram::Region& wat)
      : size_(l.size), place_(l.place), child_(l.child), wat_(wat) {}

  void on_event(const pram::TraceEvent& e) override {
    if (e.kind == pram::OpKind::kWrite) {
      if (report_.phase2_entry == 0 && size_.contains(e.addr)) {
        report_.phase2_entry = e.round;
      }
      if (report_.phase3_entry == 0 && place_.contains(e.addr)) {
        report_.phase3_entry = e.round;
      }
      // WAT nodes are claimed by plain kDone writes (Figure 1 marks nodes,
      // it does not CAS them), so a claim landmark is a write into the WAT.
      if (wat_.contains(e.addr)) {
        if (report_.first_wat_claim == 0) report_.first_wat_claim = e.round;
        report_.last_wat_claim = e.round;
      }
      return;
    }
    if (e.kind != pram::OpKind::kCas || e.result != e.arg0) return;  // failed CAS
    if (child_.contains(e.addr) && report_.install_cas_rounds.size() < kMaxInstalls) {
      report_.install_cas_rounds.push_back(e.round);
    }
  }

  ProbeReport take() { return std::move(report_); }

 private:
  static constexpr std::size_t kMaxInstalls = 1u << 20;

  pram::Region size_;
  pram::Region place_;
  pram::Region child_;
  pram::Region wat_;
  ProbeReport report_;
};

std::uint64_t resolve_one(const FaultEvent& e, const ProbeReport& probe) {
  const auto offset = [&e](std::uint64_t landmark) {
    // A landmark that never happened (e.g. a sort too small to reach the
    // phase) degrades to a plain round trigger.
    return landmark == 0 ? std::max<std::uint64_t>(e.at, 1) : landmark + e.at;
  };
  switch (e.trigger) {
    case TriggerKind::kRound: return e.at;
    case TriggerKind::kPhase2Entry: return offset(probe.phase2_entry);
    case TriggerKind::kPhase3Entry: return offset(probe.phase3_entry);
    case TriggerKind::kFirstWatClaim: return offset(probe.first_wat_claim);
    case TriggerKind::kLastWatClaim: return offset(probe.last_wat_claim);
    case TriggerKind::kInstallCas: {
      if (probe.install_cas_rounds.empty()) return std::max<std::uint64_t>(e.at, 1);
      const std::uint64_t idx =
          std::min<std::uint64_t>(std::max<std::uint64_t>(e.at, 1),
                                  probe.install_cas_rounds.size());
      return probe.install_cas_rounds[static_cast<std::size_t>(idx - 1)];
    }
  }
  return e.at;
}

// Kill patterns aimed at one landmark round, for a crew of `procs`.
void add_patterns_at(std::uint32_t procs, std::uint64_t r, std::vector<FaultScript>* out) {
  if (procs < 2) return;
  const std::uint64_t at = std::max<std::uint64_t>(r, 1);

  FaultScript all_but_one;  // the lone-survivor scenario wait-freedom promises
  for (std::uint32_t p = 1; p < procs; ++p) {
    all_but_one.add({FaultAction::kKill, TriggerKind::kRound, p, at, 0});
  }
  out->push_back(std::move(all_but_one));

  FaultScript half;
  for (std::uint32_t p = 0; p < procs / 2; ++p) {
    half.add({FaultAction::kKill, TriggerKind::kRound, p, at, 0});
  }
  out->push_back(std::move(half));

  FaultScript single;
  single.add({FaultAction::kKill, TriggerKind::kRound, procs - 1, at, 0});
  out->push_back(std::move(single));

  FaultScript staggered;  // one casualty per round, marching across the crew
  for (std::uint32_t p = 1; p < procs; ++p) {
    staggered.add({FaultAction::kKill, TriggerKind::kRound, p, at + p, 0});
  }
  out->push_back(std::move(staggered));

  FaultScript stall_half;  // page-fault burst: half the crew naps together
  for (std::uint32_t p = 0; p < procs / 2; ++p) {
    stall_half.add({FaultAction::kSleep, TriggerKind::kRound, p, at, 64});
  }
  out->push_back(std::move(stall_half));
}

bool native_representable(const FaultScript& s) {
  for (const FaultEvent& e : s.events) {
    if (e.action == FaultAction::kSuspend || e.action == FaultAction::kRevive) return false;
  }
  return true;
}

}  // namespace

SearchStats::FamilyProgress& SearchStats::family(const std::string& name) {
  for (FamilyProgress& f : families) {
    if (f.family == name) return f;
  }
  families.push_back(FamilyProgress{name, 0, 0, 0});
  return families.back();
}

Json search_stats_json(const SearchStats& stats) {
  Json doc = Json::object();
  doc.set("schema", "wfsort-search-v1");
  doc.set("runs", stats.runs);
  doc.set("probes", stats.probes);
  doc.set("scripts", stats.scripts);
  doc.set("failures", stats.failures);
  Json families = Json::array();
  for (const SearchStats::FamilyProgress& f : stats.families) {
    Json fj = Json::object();
    fj.set("family", f.family);
    fj.set("runs", f.runs);
    fj.set("scripts", f.scripts);
    fj.set("failures", f.failures);
    families.push_back(std::move(fj));
  }
  doc.set("families", std::move(families));
  return doc;
}

ProbeReport probe_scenario(const ScenarioSpec& spec) {
  WFSORT_CHECK(spec.substrate == Substrate::kSim);
  const std::vector<pram::Word> keys =
      exp::make_word_keys(spec.n, spec.dist, spec.workload_seed);

  pram::MachineOptions mopts;
  mopts.seed = spec.machine_seed;
  mopts.memory_model = spec.memory;
  mopts.max_rounds = spec.max_rounds != 0 ? spec.max_rounds : default_round_cap(spec);
  mopts.sim_threads = spec.sim_threads;
  if (spec.sim_threads > 1) mopts.par_round_min = 1;  // as in run_sim_scenario
  pram::Machine m(mopts);
  const std::unique_ptr<pram::Scheduler> sched = make_scheduler(spec.sched);

  if (spec.variant == SortKind::kDet) {
    const sim::SortLayout layout = sim::make_sort_layout(m.mem(), keys);
    auto l = std::make_shared<const sim::SortLayout>(layout);
    auto wat = std::make_shared<const sim::PramWat>(
        sim::make_pram_wat(m.mem(), "phase1 WAT", keys.size()));
    sim::DetSortConfig cfg;
    cfg.procs = spec.procs;
    cfg.prune = spec.prune;
    cfg.random_first = spec.random_first;
    for (std::uint32_t p = 0; p < spec.procs; ++p) {
      m.spawn([l, wat, cfg](pram::Ctx& ctx) { return sim::det_sort_worker(ctx, *l, *wat, cfg); });
    }
    ProbeTracer tracer(layout, wat->region);
    m.set_tracer(&tracer);
    const pram::RunResult run = m.run(*sched);
    ProbeReport report = tracer.take();
    report.rounds = run.rounds;
    return report;
  }

  WFSORT_CHECK(spec.n >= 4);
  const sim::LcSortLayout layout = sim::make_lc_sort_layout(m, keys, spec.procs);
  auto l = std::make_shared<const sim::LcSortLayout>(layout);
  for (std::uint32_t p = 0; p < spec.procs; ++p) {
    m.spawn([l](pram::Ctx& ctx) { return sim::lc_sort_worker(ctx, *l); });
  }
  const pram::RunResult run = m.run(*sched);
  ProbeReport report;  // no det landmarks; offsets degrade to plain rounds
  report.rounds = run.rounds;
  return report;
}

FaultScript resolve_script(const FaultScript& script, const ProbeReport& probe) {
  FaultScript out;
  for (const FaultEvent& e : script.events) {
    FaultEvent r = e;
    r.at = resolve_one(e, probe);
    r.trigger = TriggerKind::kRound;
    out.add(r);
  }
  return out;
}

std::vector<FaultScript> structured_scripts(std::uint32_t procs, const ProbeReport& probe) {
  std::vector<std::uint64_t> landmarks;
  const auto add_landmark = [&landmarks](std::uint64_t r) {
    if (r != 0 &&
        std::find(landmarks.begin(), landmarks.end(), r) == landmarks.end()) {
      landmarks.push_back(r);
    }
  };
  add_landmark(1);
  add_landmark(probe.phase2_entry);
  add_landmark(probe.phase2_entry + 1);
  add_landmark(probe.phase3_entry);
  add_landmark(probe.phase3_entry + 1);
  add_landmark(probe.first_wat_claim);
  add_landmark(probe.last_wat_claim);
  if (!probe.install_cas_rounds.empty()) {
    add_landmark(probe.install_cas_rounds.front());
    add_landmark(probe.install_cas_rounds[probe.install_cas_rounds.size() / 2]);
    add_landmark(probe.install_cas_rounds.back());
  }
  if (probe.rounds > 2) add_landmark(probe.rounds / 2);

  std::vector<FaultScript> scripts;
  for (const std::uint64_t r : landmarks) add_patterns_at(procs, r, &scripts);

  if (procs >= 2 && probe.rounds > 8) {
    FaultScript freeze_revive;  // suspend half mid-run, wake them near the end
    for (std::uint32_t p = 0; p < procs / 2; ++p) {
      freeze_revive.add(
          {FaultAction::kSuspend, TriggerKind::kRound, p, probe.rounds / 2, 0});
      freeze_revive.add(
          {FaultAction::kRevive, TriggerKind::kRound, p, probe.rounds - 1, 0});
    }
    scripts.push_back(std::move(freeze_revive));
  }
  return scripts;
}

FaultScript random_script(std::uint32_t procs, std::uint64_t horizon, Rng& rng) {
  FaultScript s;
  const std::uint64_t h = std::max<std::uint64_t>(horizon, 2);
  const std::uint32_t n_events = 1 + static_cast<std::uint32_t>(rng.below(4));
  std::vector<std::uint8_t> killed(procs, 0);
  std::uint32_t kills = 0;
  for (std::uint32_t i = 0; i < n_events; ++i) {
    const std::uint32_t target = static_cast<std::uint32_t>(rng.below(procs));
    const std::uint64_t at = 1 + rng.below(h);
    const std::uint64_t roll = rng.below(100);
    if (roll < 60 && kills + 1 < procs && killed[target] == 0) {
      s.add({FaultAction::kKill, TriggerKind::kRound, target, at, 0});
      killed[target] = 1;
      ++kills;
    } else if (roll < 85) {
      s.add({FaultAction::kSleep, TriggerKind::kRound, target, at, 1 + rng.below(128)});
    } else {
      s.add({FaultAction::kSuspend, TriggerKind::kRound, target, at, 0});
      s.add({FaultAction::kRevive, TriggerKind::kRound, target, at + 1 + rng.below(64), 0});
    }
  }
  return s;
}

bool search_for_violation(const ScenarioSpec& base, const SearchOptions& opts,
                          ReplayArtifact* out, SearchStats* stats) {
  SearchStats local;
  SearchStats& st = stats != nullptr ? *stats : local;
  st = SearchStats{};
  Rng rng(opts.seed);

  std::vector<SchedSpec> scheds;
  if (opts.sweep_schedulers && base.substrate == Substrate::kSim) {
    scheds = all_sched_specs(base.procs, base.machine_seed);
  } else {
    scheds.push_back(base.sched);
  }

  for (const SchedSpec& sched : scheds) {
    SearchStats::FamilyProgress& fam = st.family(sched_family_name(sched.family));
    ScenarioSpec probe_spec = base;
    probe_spec.sched = sched;
    probe_spec.script = FaultScript{};

    ProbeReport probe;
    if (base.substrate == Substrate::kSim) {
      probe = probe_scenario(probe_spec);
      ++st.probes;
    } else {
      // Native triggers are checkpoint counts; a worker takes at least ~n/P
      // checkpoints, so early counts are where the damage is.
      probe.rounds = std::max<std::uint64_t>(base.n, 64);
    }

    std::vector<FaultScript> scripts = structured_scripts(base.procs, probe);
    for (std::uint32_t i = 0; i < opts.random_scripts; ++i) {
      scripts.push_back(random_script(base.procs, probe.rounds, rng));
    }
    st.scripts += scripts.size();
    fam.scripts += scripts.size();

    for (const FaultScript& script : scripts) {
      if (st.runs >= opts.max_runs) return false;
      const FaultScript resolved = resolve_script(script, probe);
      if (!resolved.validate(base.procs).empty()) continue;
      if (base.substrate == Substrate::kNative && !native_representable(resolved)) continue;

      ScenarioSpec candidate = base;
      candidate.sched = sched;
      candidate.script = resolved;
      const ScenarioResult res = run_scenario(candidate);
      ++st.runs;
      ++fam.runs;
      if (!res.ok()) {
        ++st.failures;
        ++fam.failures;
        out->spec = candidate;
        out->failure = res.failure;
        out->detail = res.detail;
        out->observed = res.stats;
        out->rings = res.rings;
        return true;
      }
    }
  }
  return false;
}

ReplayArtifact shrink_artifact(const ReplayArtifact& artifact, const ShrinkOptions& opts,
                               SearchStats* stats) {
  SearchStats local;
  SearchStats& st = stats != nullptr ? *stats : local;
  st = SearchStats{};

  ReplayArtifact best = artifact;
  std::vector<FaultEvent> events = artifact.spec.script.events;
  Json observed = artifact.observed;
  Json rings = artifact.rings;

  const auto still_fails = [&](const std::vector<FaultEvent>& candidate,
                               std::string* detail) {
    if (st.runs >= opts.max_runs) return false;
    FaultScript s;
    s.events = candidate;
    if (!s.concrete() || !s.validate(artifact.spec.procs).empty()) return false;
    ScenarioSpec spec = artifact.spec;
    spec.script = s;
    const ScenarioResult res = run_scenario(spec);
    ++st.runs;
    if (res.failure != artifact.failure) return false;
    if (detail != nullptr) *detail = res.detail;
    // Every accepted candidate becomes the artifact, so keep its stats as
    // the observed document the minimized artifact ships with.
    observed = res.stats;
    rings = res.rings;
    ++st.failures;
    return true;
  };

  // ddmin over the event list: remove chunks while the failure survives,
  // halving the chunk size whenever a full pass removes nothing.
  std::string detail = artifact.detail;
  std::size_t chunk = std::max<std::size_t>(1, (events.size() + 1) / 2);
  while (!events.empty()) {
    bool removed = false;
    for (std::size_t start = 0; start < events.size();) {
      std::vector<FaultEvent> candidate;
      candidate.reserve(events.size());
      for (std::size_t i = 0; i < events.size(); ++i) {
        if (i < start || i >= start + chunk) candidate.push_back(events[i]);
      }
      if (candidate.size() < events.size() && still_fails(candidate, &detail)) {
        events = std::move(candidate);
        removed = true;
      } else {
        start += chunk;
      }
    }
    if (!removed) {
      if (chunk == 1) break;
      chunk = std::max<std::size_t>(1, chunk / 2);
    } else {
      chunk = std::min(chunk, std::max<std::size_t>(1, events.size() / 2));
    }
  }

  // Pull each surviving trigger (and sleep duration) toward 1.
  for (std::size_t i = 0; i < events.size(); ++i) {
    for (auto field : {&FaultEvent::at, &FaultEvent::sleep_for}) {
      if (events[i].*field <= 1) continue;
      bool shrunk = true;
      while (shrunk && events[i].*field > 1) {
        shrunk = false;
        const std::uint64_t cur = events[i].*field;
        for (const std::uint64_t smaller : {std::uint64_t{1}, cur / 2, cur - 1}) {
          if (smaller >= cur || smaller == 0) continue;
          std::vector<FaultEvent> candidate = events;
          candidate[i].*field = smaller;
          if (still_fails(candidate, &detail)) {
            events = std::move(candidate);
            shrunk = true;
            break;
          }
        }
      }
    }
  }

  best.spec.script.events = std::move(events);
  best.detail = detail;
  best.observed = std::move(observed);
  best.rings = std::move(rings);
  return best;
}

}  // namespace wfsort::runtime
