// The searching adversary: probe, sweep, shrink.
//
// Wait-freedom claims are universally quantified — "under every schedule and
// failure pattern" — so testing them takes an adversary that *looks for*
// the pattern that breaks the algorithm instead of replaying a fixed one.
// The pipeline here:
//
//   1. probe_scenario() runs the spec once, faultless, with a tracer that
//      watches the sort's memory regions, and records where the interesting
//      moments landed: phase-2/phase-3 entry rounds, the first and last
//      WAT done-mark write, every successful child-pointer install CAS.
//   2. resolve_script() turns a symbolic script (events keyed to those
//      moments) into a concrete round-keyed one.
//   3. search_for_violation() sweeps structured scripts (kills and stalls
//      aimed at each landmark, in all-but-one / half-crew / single-victim /
//      crash-and-revive patterns) plus randomized scripts, under every
//      scheduler family, until a scenario fails or the budget runs out.
//      The first failure is packaged as a ReplayArtifact.
//   4. shrink_artifact() delta-debugs a failing artifact: drop events
//      (ddmin), then pull triggers earlier, keeping any script that still
//      fails with the same FailureKind.  The result replays like the
//      original but with the smallest script the search could certify.
//
// Symbolic landmarks are defined for the deterministic simulator sort; for
// the LC variant and the native engine the sweep still runs, using
// probe-independent round placements.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "runtime/scenario.h"

namespace wfsort::runtime {

struct ProbeReport {
  std::uint64_t rounds = 0;             // faultless run length
  std::uint64_t phase2_entry = 0;       // round of the first size-region write
  std::uint64_t phase3_entry = 0;       // round of the first place-region write
  std::uint64_t first_wat_claim = 0;    // first WAT done-mark write
  std::uint64_t last_wat_claim = 0;     // last WAT done-mark write
  std::vector<std::uint64_t> install_cas_rounds;  // successful child installs
};

// Run `spec` once with no faults, tracing the deterministic sort's regions.
// The spec's script is ignored.  Requires substrate == kSim.
ProbeReport probe_scenario(const ScenarioSpec& spec);

// Replace symbolic triggers with concrete rounds using the probe's
// landmarks: phase entries and WAT claims add the event's `at` as a round
// offset; kInstallCas picks the `at`-th successful install (1-based,
// clamped to the last observed).  Already-concrete events pass through.
FaultScript resolve_script(const FaultScript& script, const ProbeReport& probe);

struct SearchOptions {
  std::uint64_t max_runs = 400;  // scenario executions across the whole sweep
  std::uint64_t seed = 0x5eedbadULL;  // randomized-script generator seed
  std::uint32_t random_scripts = 24;  // per scheduler family
  bool sweep_schedulers = true;  // try all families, not just spec.sched
};

struct SearchStats {
  std::uint64_t runs = 0;     // scenarios executed
  std::uint64_t probes = 0;   // probe runs
  std::uint64_t scripts = 0;  // candidate scripts generated
  std::uint64_t failures = 0; // scenarios that violated a check

  // Progress attributed to each scheduler family swept, in sweep order, so
  // a long hunt can report where its budget went and which family found
  // the failure.
  struct FamilyProgress {
    std::string family;
    std::uint64_t runs = 0;
    std::uint64_t scripts = 0;
    std::uint64_t failures = 0;
  };
  std::vector<FamilyProgress> families;
  // The entry for `name`, appended on first use.
  FamilyProgress& family(const std::string& name);
};

// Search progress as a JSON document ("wfsort-search-v1"): totals plus the
// per-family breakdown.  `wfsort hunt --stats-json` writes this.
Json search_stats_json(const SearchStats& stats);

// Sweep scripts and schedules derived from `base` until one fails.  Returns
// true and fills *out with the failing artifact; false when the budget is
// exhausted with no violation (the certification outcome).
bool search_for_violation(const ScenarioSpec& base, const SearchOptions& opts,
                          ReplayArtifact* out, SearchStats* stats = nullptr);

struct ShrinkOptions {
  std::uint64_t max_runs = 300;  // replays spent shrinking
};

// Minimize a failing artifact: fewest events, then smallest triggers, such
// that the scenario still fails with the artifact's FailureKind.  Returns
// the minimized artifact (equal to the input when nothing smaller fails).
ReplayArtifact shrink_artifact(const ReplayArtifact& artifact, const ShrinkOptions& opts = {},
                               SearchStats* stats = nullptr);

// The structured placements search_for_violation derives from a probe;
// exposed for tests and the fuzzer.
std::vector<FaultScript> structured_scripts(std::uint32_t procs, const ProbeReport& probe);

// One randomized concrete script: 1-4 events, kills/sleeps/suspend+revive
// pairs at rounds within [1, horizon], always leaving a survivor.
FaultScript random_script(std::uint32_t procs, std::uint64_t horizon, Rng& rng);

}  // namespace wfsort::runtime
