// One fully-specified adversarial run, executable and serializable.
//
// A ScenarioSpec pins everything a run depends on — workload, crew size,
// variant, machine seed, memory model, scheduler, fault script, oracle
// cadence, own-step bound — so that executing it twice produces the same
// behavior op-for-op on the simulator.  That determinism is what turns a
// found failure into a *repro*: the searching adversary, the fuzzer, the
// shrinker, `wfsort replay`, and the tests all drive this one runner.
//
// The native substrate runs real threads and therefore replays the same
// *configuration*, not the same interleaving; native artifacts are
// best-effort repros (re-run them a few times), which the replay report
// says explicitly.
#pragma once

#include <cstdint>
#include <string>

#include "common/json.h"
#include "exp/workloads.h"
#include "pram/machine.h"
#include "pramsort/det_programs.h"
#include "runtime/fault_script.h"
#include "runtime/sched_family.h"

namespace wfsort::runtime {

enum class Substrate : std::uint8_t { kSim, kNative };
enum class SortKind : std::uint8_t { kDet, kLc };
// Native deterministic phase-1 strategy (Options::phase1).  The simulator
// and the low-contention variant ignore it.
enum class Phase1Kind : std::uint8_t { kTree, kPartition };

struct ScenarioSpec {
  Substrate substrate = Substrate::kSim;

  // Workload.
  std::uint64_t n = 256;
  exp::Dist dist = exp::Dist::kShuffled;
  std::uint64_t workload_seed = 1;

  // Crew and variant.
  std::uint32_t procs = 16;  // simulator processors / native worker threads
  SortKind variant = SortKind::kDet;
  sim::PlacePrune prune = sim::PlacePrune::kCompleted;
  bool random_first = false;
  Phase1Kind phase1 = Phase1Kind::kTree;

  // Simulator machine + schedule.
  std::uint64_t machine_seed = 0x9a7a1e5ed0c0ffeeULL;
  pram::MemoryModel memory = pram::MemoryModel::kCrcw;
  std::uint64_t max_rounds = 0;  // 0 = default_round_cap()
  SchedSpec sched;
  // Real threads sharding the round engine.  Deliberately NOT serialized
  // into scenario/artifact JSON: observables are bit-identical at any value
  // (tests/test_determinism.cpp), so it is a property of the run host, not
  // of the scenario — an artifact recorded at 4 threads replays exactly on
  // a 1-thread machine and vice versa.
  std::uint32_t sim_threads = 1;

  // Native engine randomness (Options::seed).
  std::uint64_t sort_seed = 0x50535a97ULL;

  // The adversary.
  FaultScript script;

  // Mid-run oracle cadence in rounds (0 disables; simulator + kDet only).
  std::uint64_t oracle_period = 64;

  // When nonzero, certify wait-freedom numerically: every processor that
  // finishes must have taken at most this many of its own steps (simulator
  // memory operations / native checkpoints).
  std::uint64_t own_step_bound = 0;
};

enum class FailureKind : std::uint8_t {
  kNone,       // scenario passed every check
  kHang,       // survivors existed but the run hit the round cap / no worker
               // completed — the wait-freedom completion guarantee failed
  kUnsorted,   // output is not the sorted permutation of the input
  kValidation, // a post-run structural invariant is violated (tree/size/place)
  kOracle,     // the mid-run oracle caught corrupted shared state
  kOwnStep,    // a finishing processor exceeded the certified own-step bound
};

const char* failure_kind_name(FailureKind k);
bool parse_failure_kind(const std::string& name, FailureKind* out);

struct ScenarioResult {
  FailureKind failure = FailureKind::kNone;
  std::string detail;  // human-readable specifics of the violation

  // Run accounting (simulator runs; zeros for native).
  std::uint64_t rounds = 0;
  std::uint64_t total_ops = 0;
  std::size_t max_contention = 0;
  // Worst own-step count over processors that finished (both substrates).
  std::uint64_t max_finish_steps = 0;

  // The run's unified stats document ("wfsort-stats-v1", telemetry/schema.h):
  // pram::Metrics for simulated runs, SortStats + full-level telemetry for
  // native ones.  Embedded in failure artifacts so replay can diff observed
  // contention against the original run.
  Json stats;

  // Post-mortem flight-recorder rings of the fault script's kill victims
  // (array of {tid, total_events, events}; null when the script kills
  // nobody).  Simulated rings are stamped with round numbers and replay
  // byte-identically; native rings are copied out of the stats document and
  // carry best-effort wall-clock times.
  Json rings{};

  bool ok() const { return failure == FailureKind::kNone; }
};

// The round cap used when spec.max_rounds == 0: generous enough for the
// fully-serial schedule with every scripted crash, far below "hung forever".
std::uint64_t default_round_cap(const ScenarioSpec& spec);

// Execute the scenario and judge it.  The spec's script must be concrete and
// valid for its crew (WFSORT_CHECK enforced) — use FaultScript::validate
// before calling on untrusted input.
ScenarioResult run_scenario(const ScenarioSpec& spec);

// ---- Failure artifacts ----

struct ReplayArtifact {
  ScenarioSpec spec;
  FailureKind failure = FailureKind::kNone;
  std::string detail;
  // Stats document of the original failing run (null when the artifact
  // predates telemetry); `wfsort replay` diffs a re-run against this.
  Json observed;
  // Kill victims' post-mortem rings (ScenarioResult::rings; optional —
  // absent in artifacts that predate the flight recorder).
  Json rings{};
};

Json spec_to_json(const ScenarioSpec& spec);
bool spec_from_json(const Json& j, ScenarioSpec* out, std::string* error);

std::string artifact_to_text(const ReplayArtifact& a);
bool artifact_from_text(const std::string& text, ReplayArtifact* out, std::string* error);

bool write_artifact(const ReplayArtifact& a, const std::string& path);
bool load_artifact(const std::string& path, ReplayArtifact* out, std::string* error);

struct ReplayOutcome {
  ScenarioResult result;
  bool reproduced = false;  // replay failed with the artifact's failure kind
  bool exact = false;       // ... and the identical detail string
};

// Re-execute the artifact's scenario and compare against its recorded
// failure.
ReplayOutcome replay(const ReplayArtifact& a);

}  // namespace wfsort::runtime
