#include "runtime/fault_script.h"

#include <algorithm>
#include <map>

#include "common/check.h"

namespace wfsort::runtime {

bool FaultScript::concrete() const {
  return std::all_of(events.begin(), events.end(), [](const FaultEvent& e) {
    return e.trigger == TriggerKind::kRound;
  });
}

std::vector<std::uint32_t> FaultScript::killed_targets() const {
  std::vector<std::uint32_t> out;
  for (const FaultEvent& e : events) {
    if (e.action == FaultAction::kKill) out.push_back(e.target);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string FaultScript::validate(std::uint32_t procs) const {
  for (const FaultEvent& e : events) {
    if (e.target >= procs) {
      return "event targets processor " + std::to_string(e.target) + " of a crew of " +
             std::to_string(procs);
    }
    if (e.action == FaultAction::kSleep && e.sleep_for == 0) {
      return "sleep event with zero duration";
    }
  }
  const auto killed = killed_targets();
  if (killed.size() >= procs) return "script kills every processor";
  // A processor left suspended forever stalls termination through no fault
  // of the algorithm; require a matching revive (or kill) no earlier than
  // the suspend.  Sleep events revive themselves.
  for (const FaultEvent& s : events) {
    if (s.action != FaultAction::kSuspend) continue;
    const bool resolved = std::any_of(events.begin(), events.end(), [&](const FaultEvent& r) {
      return r.target == s.target && r.at >= s.at &&
             (r.action == FaultAction::kRevive || r.action == FaultAction::kKill);
    });
    if (!resolved) {
      return "processor " + std::to_string(s.target) + " is suspended and never revived";
    }
  }
  return {};
}

const char* fault_action_name(FaultAction a) {
  switch (a) {
    case FaultAction::kKill: return "kill";
    case FaultAction::kSuspend: return "suspend";
    case FaultAction::kRevive: return "revive";
    case FaultAction::kSleep: return "sleep";
  }
  WFSORT_CHECK(false);
}

bool parse_fault_action(const std::string& name, FaultAction* out) {
  if (name == "kill") *out = FaultAction::kKill;
  else if (name == "suspend") *out = FaultAction::kSuspend;
  else if (name == "revive") *out = FaultAction::kRevive;
  else if (name == "sleep") *out = FaultAction::kSleep;
  else return false;
  return true;
}

const char* trigger_kind_name(TriggerKind t) {
  switch (t) {
    case TriggerKind::kRound: return "round";
    case TriggerKind::kPhase2Entry: return "phase2_entry";
    case TriggerKind::kPhase3Entry: return "phase3_entry";
    case TriggerKind::kFirstWatClaim: return "first_wat_claim";
    case TriggerKind::kLastWatClaim: return "last_wat_claim";
    case TriggerKind::kInstallCas: return "install_cas";
  }
  WFSORT_CHECK(false);
}

bool parse_trigger_kind(const std::string& name, TriggerKind* out) {
  if (name == "round") *out = TriggerKind::kRound;
  else if (name == "phase2_entry") *out = TriggerKind::kPhase2Entry;
  else if (name == "phase3_entry") *out = TriggerKind::kPhase3Entry;
  else if (name == "first_wat_claim") *out = TriggerKind::kFirstWatClaim;
  else if (name == "last_wat_claim") *out = TriggerKind::kLastWatClaim;
  else if (name == "install_cas") *out = TriggerKind::kInstallCas;
  else return false;
  return true;
}

Json script_to_json(const FaultScript& script) {
  Json events = Json::array();
  for (const FaultEvent& e : script.events) {
    Json je = Json::object();
    je.set("action", fault_action_name(e.action));
    if (e.trigger != TriggerKind::kRound) je.set("trigger", trigger_kind_name(e.trigger));
    je.set("target", static_cast<std::int64_t>(e.target));
    je.set("at", static_cast<std::int64_t>(e.at));
    if (e.action == FaultAction::kSleep) {
      je.set("sleep_for", static_cast<std::int64_t>(e.sleep_for));
    }
    events.push_back(std::move(je));
  }
  Json j = Json::object();
  j.set("events", std::move(events));
  return j;
}

bool script_from_json(const Json& j, FaultScript* out, std::string* error) {
  out->events.clear();
  if (j.type() != Json::Type::kObject) {
    *error = "script is not an object";
    return false;
  }
  const Json* events = j.find("events");
  if (events == nullptr || events->type() != Json::Type::kArray) {
    *error = "script has no events array";
    return false;
  }
  for (const Json& je : events->items()) {
    if (je.type() != Json::Type::kObject) {
      *error = "script event is not an object";
      return false;
    }
    FaultEvent e;
    const Json* action = je.find("action");
    if (action == nullptr || !parse_fault_action(action->as_string(), &e.action)) {
      *error = "script event has a bad action";
      return false;
    }
    if (const Json* trig = je.find("trigger")) {
      if (!parse_trigger_kind(trig->as_string(), &e.trigger)) {
        *error = "script event has a bad trigger kind";
        return false;
      }
    }
    const Json* target = je.find("target");
    const Json* at = je.find("at");
    if (target == nullptr || at == nullptr) {
      *error = "script event is missing target/at";
      return false;
    }
    e.target = static_cast<std::uint32_t>(target->as_u64());
    e.at = at->as_u64();
    if (const Json* sf = je.find("sleep_for")) e.sleep_for = sf->as_u64();
    out->events.push_back(e);
  }
  return true;
}

pram::Machine::RoundHook make_round_hook(const FaultScript& script) {
  WFSORT_CHECK(script.concrete());
  // A sleep is a suspend now plus an awaken sleep_for rounds later; expand
  // it so the hook only dispatches three primitive actions.  The expanded
  // list is sorted by round and the hook keeps a cursor, so the per-round
  // cost is O(events due this round), not O(all events).
  struct Step {
    std::uint64_t round;
    FaultAction action;
    std::uint32_t target;
  };
  auto steps = std::make_shared<std::vector<Step>>();
  for (const FaultEvent& e : script.events) {
    if (e.action == FaultAction::kSleep) {
      steps->push_back({e.at, FaultAction::kSuspend, e.target});
      steps->push_back({e.at + e.sleep_for, FaultAction::kRevive, e.target});
    } else {
      steps->push_back({e.at, e.action, e.target});
    }
  }
  std::stable_sort(steps->begin(), steps->end(),
                   [](const Step& a, const Step& b) { return a.round < b.round; });
  auto cursor = std::make_shared<std::size_t>(0);
  return [steps, cursor](pram::Machine& m, std::uint64_t round) {
    while (*cursor < steps->size() && (*steps)[*cursor].round <= round) {
      const Step& s = (*steps)[*cursor];
      ++*cursor;
      if (s.target >= m.procs()) continue;  // script outran the crew; ignore
      switch (s.action) {
        case FaultAction::kKill:
          m.kill(s.target);
          break;
        case FaultAction::kSuspend:
          m.suspend(s.target);
          break;
        case FaultAction::kRevive:
          if (!m.killed(s.target)) m.awaken(s.target);
          break;
        case FaultAction::kSleep:
          WFSORT_CHECK(false);  // expanded above
      }
    }
  };
}

void program_plan(const FaultScript& script, FaultPlan& plan) {
  WFSORT_CHECK(script.concrete());
  for (const FaultEvent& e : script.events) {
    WFSORT_CHECK(e.target < plan.capacity());
    switch (e.action) {
      case FaultAction::kKill:
        plan.crash_at(e.target, std::max<std::uint64_t>(1, e.at));
        break;
      case FaultAction::kSleep:
        plan.sleep_at(e.target, std::max<std::uint64_t>(1, e.at),
                      std::chrono::microseconds(e.sleep_for));
        break;
      case FaultAction::kSuspend:
      case FaultAction::kRevive:
        WFSORT_CHECK(false && "suspend/revive have no native equivalent");
    }
  }
}

}  // namespace wfsort::runtime
