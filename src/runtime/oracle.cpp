#include "runtime/oracle.h"

#include <cstdio>

namespace wfsort::runtime {

bool SortOracle::fail(const pram::Machine& m, std::string what) {
  if (error_.empty()) {
    error_ = std::move(what);
    violation_round_ = m.current_round();
  }
  return false;
}

bool SortOracle::check(const pram::Machine& m) {
  if (violated()) return false;
  ++checks_run_;
  const pram::Memory& mem = m.mem();
  const auto n = static_cast<std::int64_t>(layout_.n);

  if (!snapshotted_) {
    keys0_ = mem.read_region(layout_.keys);
    child_ = mem.read_region(layout_.child);
    size_ = mem.read_region(layout_.size);
    place_ = mem.read_region(layout_.place);
    pdone_ = mem.read_region(layout_.pdone);
    snapshotted_ = true;
  }

  // Records are never lost or duplicated: keys are read-only to all phases.
  for (std::int64_t i = 0; i < n; ++i) {
    const pram::Word k = mem.peek(layout_.key_addr(i));
    if (k != keys0_[static_cast<std::size_t>(i)]) {
      return fail(m, "key of element " + std::to_string(i) + " changed from " +
                         std::to_string(keys0_[static_cast<std::size_t>(i)]) + " to " +
                         std::to_string(k));
    }
  }

  // Write-once monotonicity of the per-element fields.
  const auto monotone = [&](std::vector<pram::Word>& last, pram::Addr base,
                            pram::Word initial, const char* field) {
    for (std::size_t i = 0; i < last.size(); ++i) {
      const pram::Word now = mem.peek(base + i);
      if (last[i] != initial && now != last[i]) {
        fail(m, std::string(field) + " cell " + std::to_string(i) + " changed from " +
                    std::to_string(last[i]) + " to " + std::to_string(now) +
                    " after being set");
        return false;
      }
      last[i] = now;
    }
    return true;
  };
  if (!monotone(child_, layout_.child.base, pram::kEmpty, "child")) return false;
  if (!monotone(size_, layout_.size.base, 0, "size")) return false;
  if (!monotone(place_, layout_.place.base, 0, "place")) return false;
  if (!monotone(pdone_, layout_.pdone.base, 0, "place-done")) return false;

  // Tree well-formedness: every child pointer kEmpty or in range; nothing
  // reachable from the root twice.
  std::vector<std::uint8_t> seen(layout_.n, 0);
  std::vector<pram::Word> stack;
  stack.push_back(root_);
  while (!stack.empty()) {
    const pram::Word e = stack.back();
    stack.pop_back();
    if (e == pram::kEmpty) continue;
    if (e < 0 || e >= n) {
      return fail(m, "child pointer out of range: " + std::to_string(e));
    }
    if (seen[static_cast<std::size_t>(e)]++ != 0) {
      return fail(m, "element " + std::to_string(e) +
                         " reachable twice (pivot tree is not a tree)");
    }
    stack.push_back(mem.peek(layout_.child_addr(e, sim::SortLayout::kSmall)));
    stack.push_back(mem.peek(layout_.child_addr(e, sim::SortLayout::kBig)));
  }

  // Place uniqueness: the assigned places are distinct ranks in [1, N].
  std::vector<std::uint8_t> used(layout_.n + 1, 0);
  for (std::int64_t i = 0; i < n; ++i) {
    const pram::Word pl = mem.peek(layout_.place_addr(i));
    if (pl == 0) continue;  // not placed yet
    if (pl < 1 || pl > n) {
      return fail(m, "place of element " + std::to_string(i) + " out of range: " +
                         std::to_string(pl));
    }
    if (used[static_cast<std::size_t>(pl)]++ != 0) {
      return fail(m, "place " + std::to_string(pl) + " assigned twice");
    }
  }
  return true;
}

pram::Machine::RoundHook SortOracle::hook(std::uint64_t period) {
  const std::uint64_t p = period == 0 ? 1 : period;
  return [this, p](pram::Machine& m, std::uint64_t round) {
    if (round % p == 0) check(m);
  };
}

}  // namespace wfsort::runtime
