// Cooperative fault injection for native worker threads.
//
// A real crash cannot be injected into a std::thread safely, but from the
// algorithm's point of view a crash is simply "the processor stops taking
// steps and its half-finished writes stay behind".  Workers therefore call
// plan.checkpoint(tid) at every step boundary; when a scheduled fault
// triggers, the worker either returns immediately (kCrash — it never touches
// shared state again, exactly like a failed processor) or sleeps (kSleep —
// the paper's page-fault scenario) and then continues.
//
// A FaultPlan outlives the workers it governs and is safe to consult from
// all of them concurrently.  Scheduling calls (crash_at / sleep_at) are also
// safe while workers run: the sleep duration and trigger are published
// before the kind with release ordering, and checkpoint() reads the kind
// with acquire ordering, so a worker either sees no fault or a fully-formed
// one — never a torn half-configured entry.  Triggers are 1-based; `at == 0`
// would silently never fire (checkpoint counts start at 1) and is rejected.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/check.h"

namespace wfsort::runtime {

class FaultPlan {
 public:
  explicit FaultPlan(std::uint32_t max_threads) : entries_(max_threads) {}

  // Schedule thread `tid` to crash at its `at`-th checkpoint (1-based).
  void crash_at(std::uint32_t tid, std::uint64_t at) {
    WFSORT_CHECK(tid < entries_.size());
    WFSORT_CHECK(at >= 1);
    Entry& e = entries_[tid];
    e.trigger.store(at, std::memory_order_relaxed);
    e.kind.store(static_cast<std::uint8_t>(Kind::kCrash), std::memory_order_release);
  }

  // Schedule thread `tid` to sleep `dur` at its `at`-th checkpoint.
  void sleep_at(std::uint32_t tid, std::uint64_t at, std::chrono::microseconds dur) {
    WFSORT_CHECK(tid < entries_.size());
    WFSORT_CHECK(at >= 1);
    Entry& e = entries_[tid];
    e.trigger.store(at, std::memory_order_relaxed);
    e.sleep_us.store(static_cast<std::uint64_t>(dur.count()), std::memory_order_relaxed);
    e.kind.store(static_cast<std::uint8_t>(Kind::kSleep), std::memory_order_release);
  }

  // Ask this thread to stop at its next checkpoint (cooperative reaping).
  void stop_now(std::uint32_t tid) {
    WFSORT_CHECK(tid < entries_.size());
    entries_[tid].stop.store(true, std::memory_order_release);
  }

  // Called by workers.  Returns false when the worker must exit immediately
  // (simulated crash / reap).
  bool checkpoint(std::uint32_t tid) {
    WFSORT_CHECK(tid < entries_.size());
    Entry& e = entries_[tid];
    const std::uint64_t c = e.count.fetch_add(1, std::memory_order_relaxed) + 1;
    if (e.stop.load(std::memory_order_acquire)) {
      crashes_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    const Kind kind = static_cast<Kind>(e.kind.load(std::memory_order_acquire));
    if (kind == Kind::kNone) return true;
    if (c == e.trigger.load(std::memory_order_relaxed)) {
      if (kind == Kind::kCrash) {
        crashes_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      std::this_thread::sleep_for(
          std::chrono::microseconds(e.sleep_us.load(std::memory_order_relaxed)));
    }
    return true;
  }

  std::uint32_t crashes() const { return crashes_.load(std::memory_order_relaxed); }
  std::uint32_t capacity() const { return static_cast<std::uint32_t>(entries_.size()); }

  // Checkpoints taken by thread `tid` so far — its own-step count.  Every
  // surviving worker's final value is the empirical per-thread step bound
  // wait-freedom promises to keep finite.
  std::uint64_t steps(std::uint32_t tid) const {
    WFSORT_CHECK(tid < entries_.size());
    return entries_[tid].count.load(std::memory_order_relaxed);
  }

 private:
  enum class Kind : std::uint8_t { kNone, kCrash, kSleep };

  struct Entry {
    std::atomic<std::uint64_t> count{0};
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> trigger{~std::uint64_t{0}};
    std::atomic<std::uint8_t> kind{static_cast<std::uint8_t>(Kind::kNone)};
    std::atomic<std::uint64_t> sleep_us{0};
  };

  std::vector<Entry> entries_;
  std::atomic<std::uint32_t> crashes_{0};
};

}  // namespace wfsort::runtime
