#include "runtime/scenario.h"

#include <algorithm>
#include <bit>
#include <fstream>
#include <map>
#include <memory>
#include <span>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "core/sort.h"
#include "pram/scheduler.h"
#include "pram/trace.h"
#include "pramsort/lc_layout.h"
#include "pramsort/lc_programs.h"
#include "pramsort/validate.h"
#include "runtime/oracle.h"
#include "telemetry/schema.h"
#include "workalloc/wat_program.h"

namespace wfsort::runtime {

namespace {

const char* substrate_name(Substrate s) {
  return s == Substrate::kSim ? "sim" : "native";
}

bool parse_substrate(const std::string& name, Substrate* out) {
  if (name == "sim") *out = Substrate::kSim;
  else if (name == "native") *out = Substrate::kNative;
  else return false;
  return true;
}

const char* sort_kind_name(SortKind v) { return v == SortKind::kDet ? "det" : "lc"; }

bool parse_sort_kind(const std::string& name, SortKind* out) {
  if (name == "det") *out = SortKind::kDet;
  else if (name == "lc") *out = SortKind::kLc;
  else return false;
  return true;
}

const char* phase1_kind_name(Phase1Kind p) {
  return p == Phase1Kind::kPartition ? "partition" : "tree";
}

bool parse_phase1_kind(const std::string& name, Phase1Kind* out) {
  if (name == "tree") *out = Phase1Kind::kTree;
  else if (name == "partition") *out = Phase1Kind::kPartition;
  else return false;
  return true;
}

const char* prune_name(sim::PlacePrune p) {
  switch (p) {
    case sim::PlacePrune::kNone: return "none";
    case sim::PlacePrune::kPlaced: return "placed";
    case sim::PlacePrune::kCompleted: return "completed";
  }
  return "?";
}

bool parse_prune(const std::string& name, sim::PlacePrune* out) {
  if (name == "none") *out = sim::PlacePrune::kNone;
  else if (name == "placed") *out = sim::PlacePrune::kPlaced;
  else if (name == "completed") *out = sim::PlacePrune::kCompleted;
  else return false;
  return true;
}

const char* memory_name(pram::MemoryModel m) {
  return m == pram::MemoryModel::kCrcw ? "crcw" : "stall";
}

bool parse_memory(const std::string& name, pram::MemoryModel* out) {
  if (name == "crcw") *out = pram::MemoryModel::kCrcw;
  else if (name == "stall") *out = pram::MemoryModel::kStall;
  else return false;
  return true;
}

bool sorted_matches(std::span<const pram::Word> keys, const std::vector<pram::Word>& out) {
  std::vector<pram::Word> expected(keys.begin(), keys.end());
  std::sort(expected.begin(), expected.end());
  return out == expected;
}

// The native prune knob is the sim knob's public twin; artifacts use the sim
// spelling for both substrates.
PrunePlaced to_native_prune(sim::PlacePrune p) {
  switch (p) {
    case sim::PlacePrune::kNone: return PrunePlaced::kNo;
    case sim::PlacePrune::kPlaced: return PrunePlaced::kYes;
    case sim::PlacePrune::kCompleted: return PrunePlaced::kDone;
  }
  return PrunePlaced::kDone;
}

// Events retained per kill victim in a failure artifact's post-mortem ring:
// enough to see the victim's final claims and descents, small enough that a
// multi-kill artifact stays readable.
constexpr std::uint32_t kVictimRingCapacity = 64;

// Flight recorder for the adversary's victims.  Keeps one ring per scripted
// kill target, fed from the machine's trace stream (served ops, via
// to_flight) and from the adversary engine's lifecycle callbacks
// (kill/suspend/revive land as kFault events in the victim's own ring).
// Trace flush and round hooks run on the coordinating thread even under the
// sharded engine, so each ring keeps its single writer; events are stamped
// with round numbers, so two replays of the same spec serialize
// byte-identically.
class VictimRingTracer final : public pram::Tracer {
 public:
  explicit VictimRingTracer(const std::vector<std::uint32_t>& victims) {
    for (const std::uint32_t p : victims) rings_[p].reset(kVictimRingCapacity);
  }

  void on_event(const pram::TraceEvent& e) override {
    const auto it = rings_.find(static_cast<std::uint32_t>(e.pid));
    if (it != rings_.end()) it->second.push(pram::to_flight(e));
  }

  void on_fault(std::uint64_t round, pram::ProcId pid,
                pram::TraceFault fault) override {
    const auto it = rings_.find(static_cast<std::uint32_t>(pid));
    if (it == rings_.end()) return;
    telemetry::FlightEvent ev{};
    ev.t = round;
    ev.tid = static_cast<std::uint16_t>(pid);
    ev.kind = static_cast<std::uint8_t>(telemetry::FlightKind::kFault);
    ev.a8 = static_cast<std::uint8_t>(fault);  // TraceFault mirrors FaultCode
    it->second.push(ev);
  }

  // The artifact's "rings" section: [{tid, total_events, events:[...]}],
  // victims in pid order, empty rings skipped.  Null when nothing recorded.
  Json rings_json() const {
    Json arr = Json::array();
    bool any = false;
    for (const auto& [pid, ring] : rings_) {
      if (ring.total() == 0) continue;
      any = true;
      Json r = Json::object();
      r.set("tid", static_cast<std::int64_t>(pid));
      r.set("total_events", ring.total());
      Json evs = Json::array();
      for (const telemetry::FlightEvent& e : ring.snapshot()) {
        evs.push_back(telemetry::flight_event_json(e));
      }
      r.set("events", std::move(evs));
      arr.push_back(std::move(r));
    }
    return any ? arr : Json();
  }

 private:
  std::map<std::uint32_t, telemetry::FlightRing> rings_;
};

// Judge own-step counts for every processor that finished; fills
// res->max_finish_steps and flips the result to kOwnStep on a violation.
void certify_own_steps(const ScenarioSpec& spec, ScenarioResult* res,
                       const std::function<bool(std::uint32_t)>& finished,
                       const std::function<std::uint64_t(std::uint32_t)>& steps) {
  for (std::uint32_t p = 0; p < spec.procs; ++p) {
    if (!finished(p)) continue;
    const std::uint64_t s = steps(p);
    res->max_finish_steps = std::max(res->max_finish_steps, s);
    if (spec.own_step_bound != 0 && s > spec.own_step_bound &&
        res->failure == FailureKind::kNone) {
      res->failure = FailureKind::kOwnStep;
      res->detail = "processor " + std::to_string(p) + " finished after " +
                    std::to_string(s) + " own steps, above the certified bound of " +
                    std::to_string(spec.own_step_bound);
    }
  }
}

ScenarioResult run_sim_scenario(const ScenarioSpec& spec) {
  ScenarioResult res;
  const std::vector<pram::Word> keys =
      exp::make_word_keys(spec.n, spec.dist, spec.workload_seed);

  pram::MachineOptions mopts;
  mopts.seed = spec.machine_seed;
  mopts.memory_model = spec.memory;
  mopts.max_rounds = spec.max_rounds != 0 ? spec.max_rounds : default_round_cap(spec);
  mopts.sim_threads = spec.sim_threads;
  // Adversary crews are small (tens of processors), so the default width
  // threshold would route every round through the sequential engine and a
  // multi-threaded spec would silently test nothing; force the sharded path.
  if (spec.sim_threads > 1) mopts.par_round_min = 1;
  pram::Machine m(mopts);
  const std::unique_ptr<pram::Scheduler> sched = make_scheduler(spec.sched);

  // Post-mortem flight recorder: when the script kills processors, record
  // each victim's final ops + lifecycle faults for the failure artifact.
  std::unique_ptr<VictimRingTracer> victim_rings;
  if (const std::vector<std::uint32_t> victims = spec.script.killed_targets();
      !victims.empty()) {
    victim_rings = std::make_unique<VictimRingTracer>(victims);
    m.set_tracer(victim_rings.get());
  }

  std::unique_ptr<SortOracle> oracle;
  sim::SortLayout det_layout;
  sim::SortLayout out_layout;  // whichever layout owns the output region

  if (spec.variant == SortKind::kDet) {
    det_layout = sim::make_sort_layout(m.mem(), keys);
    out_layout = det_layout;
    auto l = std::make_shared<const sim::SortLayout>(det_layout);
    auto wat = std::make_shared<const sim::PramWat>(
        sim::make_pram_wat(m.mem(), "phase1 WAT", keys.size()));
    sim::DetSortConfig cfg;
    cfg.procs = spec.procs;
    cfg.prune = spec.prune;
    cfg.random_first = spec.random_first;
    for (std::uint32_t p = 0; p < spec.procs; ++p) {
      m.spawn([l, wat, cfg](pram::Ctx& ctx) { return sim::det_sort_worker(ctx, *l, *wat, cfg); });
    }
    if (spec.oracle_period != 0) {
      oracle = std::make_unique<SortOracle>(det_layout, 0);
      m.add_round_hook(oracle->hook(spec.oracle_period));
    }
  } else {
    WFSORT_CHECK(spec.n >= 4);  // LC variant's minimum problem size
    const sim::LcSortLayout lc_layout = sim::make_lc_sort_layout(m, keys, spec.procs);
    out_layout = lc_layout.main;
    auto l = std::make_shared<const sim::LcSortLayout>(lc_layout);
    for (std::uint32_t p = 0; p < spec.procs; ++p) {
      m.spawn([l](pram::Ctx& ctx) { return sim::lc_sort_worker(ctx, *l); });
    }
  }

  if (!spec.script.empty()) m.add_round_hook(make_round_hook(spec.script));

  pram::Machine::StopPredicate stop;
  if (oracle != nullptr) {
    stop = [o = oracle.get()](const pram::Machine&) { return o->violated(); };
  }
  const pram::RunResult run = m.run(*sched, stop);
  if (oracle != nullptr) oracle->check(m);  // catch corruption in the final state

  res.rounds = run.rounds;
  res.total_ops = m.metrics().total_ops();
  res.max_contention = m.metrics().max_cell_contention();
  {
    telemetry::SimRunInfo info;
    info.program = std::string(sort_kind_name(spec.variant)) + "_sort";
    info.n = spec.n;
    info.procs = spec.procs;
    info.sched = sched_family_name(spec.sched.family);
    info.seed = spec.machine_seed;
    info.sim_threads = spec.sim_threads;
    res.stats = telemetry::sim_stats_json(info, m.metrics(), &m.commit_stats());
  }
  if (victim_rings != nullptr) res.rings = victim_rings->rings_json();

  if (oracle != nullptr && oracle->violated()) {
    res.failure = FailureKind::kOracle;
    res.detail = "round " + std::to_string(oracle->violation_round()) + ": " + oracle->error();
    return res;
  }
  if (run.hit_round_cap) {
    res.failure = FailureKind::kHang;
    res.detail = "survivors made no collective progress within " +
                 std::to_string(mopts.max_rounds) + " rounds";
    return res;
  }

  const std::vector<pram::Word> output = sim::read_output(m, out_layout);
  if (!sorted_matches(keys, output)) {
    res.failure = FailureKind::kUnsorted;
    std::size_t i = 0;
    while (i + 1 < output.size() && output[i] <= output[i + 1]) ++i;
    res.detail = "output is not the sorted input";
    if (i + 1 < output.size()) {
      res.detail += " (first inversion at rank " + std::to_string(i) + ": " +
                    std::to_string(output[i]) + " > " + std::to_string(output[i + 1]) + ")";
    } else {
      res.detail += " (ordered but not a permutation of the input)";
    }
    return res;
  }
  if (spec.variant == SortKind::kDet) {
    const sim::ValidationReport report = sim::validate_sort_run(m, det_layout, 0);
    if (!report.ok) {
      res.failure = FailureKind::kValidation;
      res.detail = report.error;
      return res;
    }
  }

  certify_own_steps(
      spec, &res, [&m](std::uint32_t p) { return m.finished(p); },
      [&m](std::uint32_t p) { return m.metrics().finish_steps(p); });
  return res;
}

ScenarioResult run_native_scenario(const ScenarioSpec& spec) {
  ScenarioResult res;
  std::vector<std::uint64_t> data = exp::make_u64_keys(spec.n, spec.dist, spec.workload_seed);
  std::vector<std::uint64_t> expected = data;
  std::sort(expected.begin(), expected.end());

  Options opts;
  opts.threads = spec.procs;
  opts.variant = spec.variant == SortKind::kLc ? Variant::kLowContention : Variant::kDeterministic;
  opts.prune = to_native_prune(spec.prune);
  opts.phase1 = spec.phase1 == Phase1Kind::kPartition ? Phase1::kPartition
                                                      : Phase1::kTree;
  opts.seed = spec.sort_seed;
  // Full telemetry: adversarial runs are small, and the per-phase timeline
  // plus contention attribution is what makes a failure artifact diagnosable.
  opts.telemetry = telemetry::Level::kFull;

  FaultPlan plan(spec.procs);
  program_plan(spec.script, plan);
  SortStats stats;
  const bool ok = sort_with_faults(std::span<std::uint64_t>(data), opts, plan, &stats);
  res.stats = telemetry::native_stats_json(telemetry::native_run_info(opts, spec.n), stats);
  // The stats document already carries the crashed workers' post-mortem
  // rings; mirror them into the result so both substrates expose one field.
  if (const Json* r = res.stats.find("rings");
      r != nullptr && !r->items().empty()) {
    res.rings = *r;
  }

  const std::vector<std::uint32_t> killed = spec.script.killed_targets();
  const auto survived = [&killed](std::uint32_t tid) {
    return std::find(killed.begin(), killed.end(), tid) == killed.end();
  };
  if (!ok) {
    res.failure = FailureKind::kHang;
    res.detail = "no worker completed the sort although " +
                 std::to_string(spec.procs - killed.size()) + " of " +
                 std::to_string(spec.procs) + " survived the fault script";
  } else if (data != expected) {
    res.failure = FailureKind::kUnsorted;
    std::size_t i = 0;
    while (i + 1 < data.size() && data[i] <= data[i + 1]) ++i;
    res.detail = "output is not the sorted input";
    if (i + 1 < data.size()) {
      res.detail += " (first inversion at rank " + std::to_string(i) + ")";
    } else {
      res.detail += " (ordered but not a permutation of the input)";
    }
  }
  if (res.failure != FailureKind::kHang) {
    certify_own_steps(spec, &res, survived,
                      [&plan](std::uint32_t tid) { return plan.steps(tid); });
  }
  return res;
}

}  // namespace

const char* failure_kind_name(FailureKind k) {
  switch (k) {
    case FailureKind::kNone: return "none";
    case FailureKind::kHang: return "hang";
    case FailureKind::kUnsorted: return "unsorted";
    case FailureKind::kValidation: return "validation";
    case FailureKind::kOracle: return "oracle";
    case FailureKind::kOwnStep: return "own-step";
  }
  return "?";
}

bool parse_failure_kind(const std::string& name, FailureKind* out) {
  if (name == "none") *out = FailureKind::kNone;
  else if (name == "hang") *out = FailureKind::kHang;
  else if (name == "unsorted") *out = FailureKind::kUnsorted;
  else if (name == "validation") *out = FailureKind::kValidation;
  else if (name == "oracle") *out = FailureKind::kOracle;
  else if (name == "own-step") *out = FailureKind::kOwnStep;
  else return false;
  return true;
}

std::uint64_t default_round_cap(const ScenarioSpec& spec) {
  // A processor's own work is O(N log N) memory operations (the kNone-prune
  // worst case re-traverses the whole tree); the serial schedule stretches
  // wall-rounds to the crew's *total* ops, so scale by P for every family
  // that steps a strict subset per round.  ~10x headroom over measured runs.
  const std::uint64_t n = std::max<std::uint64_t>(spec.n, 2);
  const std::uint64_t logn = std::bit_width(n - 1) + 1;
  const std::uint64_t per_proc = 512 + 48 * n * logn;
  const std::uint64_t stretch =
      spec.sched.family == SchedFamily::kSync ? 4 : std::max<std::uint32_t>(spec.procs, 4);
  return 4096 + per_proc * stretch;
}

ScenarioResult run_scenario(const ScenarioSpec& spec) {
  WFSORT_CHECK(spec.n >= 1);
  WFSORT_CHECK(spec.procs >= 1);
  WFSORT_CHECK(spec.script.concrete());
  const std::string verr = spec.script.validate(spec.procs);
  if (!verr.empty()) {
    WFSORT_CHECK(false && "invalid fault script passed to run_scenario");
  }
  return spec.substrate == Substrate::kSim ? run_sim_scenario(spec)
                                           : run_native_scenario(spec);
}

Json spec_to_json(const ScenarioSpec& spec) {
  Json j = Json::object();
  j.set("substrate", substrate_name(spec.substrate));
  j.set("n", spec.n);
  j.set("dist", exp::dist_name(spec.dist));
  j.set("workload_seed", spec.workload_seed);
  j.set("procs", static_cast<std::uint64_t>(spec.procs));
  j.set("variant", sort_kind_name(spec.variant));
  j.set("prune", prune_name(spec.prune));
  j.set("phase1", phase1_kind_name(spec.phase1));
  j.set("random_first", spec.random_first);
  j.set("machine_seed", spec.machine_seed);
  j.set("memory", memory_name(spec.memory));
  j.set("max_rounds", spec.max_rounds);
  Json sched = Json::object();
  sched.set("family", sched_family_name(spec.sched.family));
  sched.set("param", spec.sched.param);
  sched.set("seed", spec.sched.seed);
  j.set("sched", std::move(sched));
  j.set("sort_seed", spec.sort_seed);
  j.set("script", script_to_json(spec.script));
  j.set("oracle_period", spec.oracle_period);
  j.set("own_step_bound", spec.own_step_bound);
  return j;
}

bool spec_from_json(const Json& j, ScenarioSpec* out, std::string* error) {
  const auto fail = [error](const std::string& what) {
    if (error != nullptr) *error = what;
    return false;
  };
  if (j.type() != Json::Type::kObject) return fail("scenario must be an object");
  ScenarioSpec spec;

  const auto str_field = [&](const char* key, const std::string& dflt) {
    const Json* f = j.find(key);
    return f != nullptr ? f->as_string() : dflt;
  };
  const auto u64_field = [&](const char* key, std::uint64_t dflt) {
    const Json* f = j.find(key);
    return f != nullptr ? f->as_u64() : dflt;
  };

  if (!parse_substrate(str_field("substrate", "sim"), &spec.substrate)) {
    return fail("unknown substrate");
  }
  spec.n = u64_field("n", spec.n);
  if (spec.n == 0) return fail("n must be >= 1");
  if (!exp::parse_dist(str_field("dist", "shuffled"), &spec.dist)) {
    return fail("unknown dist");
  }
  spec.workload_seed = u64_field("workload_seed", spec.workload_seed);
  const std::uint64_t procs = u64_field("procs", spec.procs);
  if (procs == 0 || procs > 4096) return fail("procs out of range");
  spec.procs = static_cast<std::uint32_t>(procs);
  if (!parse_sort_kind(str_field("variant", "det"), &spec.variant)) {
    return fail("unknown variant");
  }
  if (!parse_prune(str_field("prune", "completed"), &spec.prune)) {
    return fail("unknown prune policy");
  }
  if (!parse_phase1_kind(str_field("phase1", "tree"), &spec.phase1)) {
    return fail("unknown phase1 strategy");
  }
  const Json* rf = j.find("random_first");
  spec.random_first = rf != nullptr && rf->as_bool();
  spec.machine_seed = u64_field("machine_seed", spec.machine_seed);
  if (!parse_memory(str_field("memory", "crcw"), &spec.memory)) {
    return fail("unknown memory model");
  }
  spec.max_rounds = u64_field("max_rounds", spec.max_rounds);
  if (const Json* sched = j.find("sched"); sched != nullptr) {
    if (!parse_sched_family(sched->at("family").as_string(), &spec.sched.family)) {
      return fail("unknown scheduler family");
    }
    spec.sched.param = sched->find("param") != nullptr ? sched->at("param").as_u64() : 0;
    spec.sched.seed = sched->find("seed") != nullptr ? sched->at("seed").as_u64() : 1;
  }
  spec.sort_seed = u64_field("sort_seed", spec.sort_seed);
  if (const Json* script = j.find("script"); script != nullptr) {
    if (!script_from_json(*script, &spec.script, error)) return false;
  }
  spec.oracle_period = u64_field("oracle_period", spec.oracle_period);
  spec.own_step_bound = u64_field("own_step_bound", spec.own_step_bound);

  if (!spec.script.concrete()) return fail("artifact scripts must be concrete (round triggers)");
  const std::string verr = spec.script.validate(spec.procs);
  if (!verr.empty()) return fail("invalid script: " + verr);
  *out = spec;
  return true;
}

std::string artifact_to_text(const ReplayArtifact& a) {
  Json j = Json::object();
  j.set("format", "wfsort-repro-v1");
  j.set("scenario", spec_to_json(a.spec));
  Json failure = Json::object();
  failure.set("kind", failure_kind_name(a.failure));
  failure.set("detail", a.detail);
  j.set("failure", std::move(failure));
  if (!a.observed.is_null()) j.set("observed", a.observed);
  if (!a.rings.is_null()) j.set("rings", a.rings);
  return j.dump();
}

bool artifact_from_text(const std::string& text, ReplayArtifact* out, std::string* error) {
  const auto fail = [error](const std::string& what) {
    if (error != nullptr) *error = what;
    return false;
  };
  std::string perr;
  const Json j = Json::parse(text, &perr);
  if (!perr.empty()) return fail("parse error: " + perr);
  if (j.type() != Json::Type::kObject) return fail("artifact must be an object");
  const Json* format = j.find("format");
  if (format == nullptr || format->as_string() != "wfsort-repro-v1") {
    return fail("missing or unsupported format marker");
  }
  ReplayArtifact a;
  const Json* scenario = j.find("scenario");
  if (scenario == nullptr) return fail("missing scenario");
  if (!spec_from_json(*scenario, &a.spec, error)) return false;
  if (const Json* failure = j.find("failure"); failure != nullptr) {
    if (!parse_failure_kind(failure->at("kind").as_string(), &a.failure)) {
      return fail("unknown failure kind");
    }
    if (const Json* detail = failure->find("detail"); detail != nullptr) {
      a.detail = detail->as_string();
    }
  }
  if (const Json* observed = j.find("observed"); observed != nullptr) {
    a.observed = *observed;
  }
  if (const Json* rings = j.find("rings"); rings != nullptr) {
    a.rings = *rings;
  }
  *out = a;
  return true;
}

bool write_artifact(const ReplayArtifact& a, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << artifact_to_text(a);
  return static_cast<bool>(out);
}

bool load_artifact(const std::string& path, ReplayArtifact* out, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return artifact_from_text(buf.str(), out, error);
}

ReplayOutcome replay(const ReplayArtifact& a) {
  ReplayOutcome outcome;
  outcome.result = run_scenario(a.spec);
  outcome.reproduced =
      a.failure != FailureKind::kNone && outcome.result.failure == a.failure;
  outcome.exact = outcome.reproduced && outcome.result.detail == a.detail;
  return outcome;
}

}  // namespace wfsort::runtime
