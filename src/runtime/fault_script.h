// Declarative fault scripting, unified across both substrates.
//
// A FaultScript is a list of fault events — kill / suspend / revive / sleep,
// each aimed at one processor and one trigger point.  The same script type
// drives:
//
//   * the PRAM simulator, where triggers are round numbers and the script
//     compiles into a Machine round hook (kill -> Machine::kill, suspend ->
//     suspend, revive -> awaken, sleep -> suspend now + awaken after
//     `sleep_for` rounds);
//   * the native engine, where triggers are per-thread checkpoint counts and
//     the script programs a FaultPlan (kill -> crash_at, sleep -> sleep_at;
//     suspend/revive have no cooperative native equivalent and are rejected).
//
// Triggers may also be *symbolic* — phase-2/phase-3 entry, first/last WAT
// claim, the k-th install-CAS window — which a probe run resolves to
// concrete rounds (see search.h).  Serialized artifacts always carry
// concrete, round-keyed scripts so replay needs no probe.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/json.h"
#include "pram/machine.h"
#include "runtime/fault_plan.h"

namespace wfsort::runtime {

enum class FaultAction : std::uint8_t { kKill, kSuspend, kRevive, kSleep };

enum class TriggerKind : std::uint8_t {
  kRound,          // `at` is a simulator round / native checkpoint count
  kPhase2Entry,    // first write into the size region (+ `at` rounds)
  kPhase3Entry,    // first write into the place region (+ `at` rounds)
  kFirstWatClaim,  // first done-mark write into the WAT region (+ `at`)
  kLastWatClaim,   // last done-mark write into the WAT region (+ `at`)
  kInstallCas,     // the `at`-th successful child-pointer install CAS
};

struct FaultEvent {
  FaultAction action = FaultAction::kKill;
  TriggerKind trigger = TriggerKind::kRound;
  std::uint32_t target = 0;     // ProcId (sim) / worker tid (native)
  std::uint64_t at = 0;         // round / checkpoint; offset or index for
                                // symbolic triggers (see TriggerKind)
  std::uint64_t sleep_for = 0;  // kSleep: rounds (sim) / microseconds (native)

  bool operator==(const FaultEvent&) const = default;
};

struct FaultScript {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
  FaultScript& add(FaultEvent e) {
    events.push_back(e);
    return *this;
  }

  // True iff every trigger is concrete (kRound) — required before the script
  // can be installed on either substrate or serialized into an artifact.
  bool concrete() const;

  // Processors named by a kill event (the script's intended casualties).
  std::vector<std::uint32_t> killed_targets() const;

  // Validate against a crew of `procs` processors: targets in range, every
  // suspend matched by a later revive or kill of the same target (otherwise
  // the run can never terminate and "the sort hung" would be the script's
  // fault, not the algorithm's), and at least one processor is never killed.
  // Returns a human-readable complaint or empty on success.
  std::string validate(std::uint32_t procs) const;

  bool operator==(const FaultScript&) const = default;
};

const char* fault_action_name(FaultAction a);
bool parse_fault_action(const std::string& name, FaultAction* out);
const char* trigger_kind_name(TriggerKind t);
bool parse_trigger_kind(const std::string& name, TriggerKind* out);

Json script_to_json(const FaultScript& script);
// Returns false and fills *error on schema violations.
bool script_from_json(const Json& j, FaultScript* out, std::string* error);

// Compile a concrete script into a Machine round hook.  The returned hook
// owns a copy of the script; install it with Machine::set_round_hook or
// Machine::add_round_hook.
pram::Machine::RoundHook make_round_hook(const FaultScript& script);

// Program a FaultPlan from a concrete script (native substrate).  Only kill
// and sleep events are representable; anything else WFSORT_CHECK-fails.  At
// most one event per thread (a FaultPlan slot holds one fault).
void program_plan(const FaultScript& script, FaultPlan& plan);

}  // namespace wfsort::runtime
