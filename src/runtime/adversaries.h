// Canned adversaries — the standard failure families DESIGN.md names
// (fail-stop at chosen rounds, crash-and-revive, single-survivor) as
// reusable FaultScripts instead of hand-rolled round hooks in every test.
//
// Each builder returns a concrete, round-keyed script; install it on a
// simulator with Machine::set_round_hook(make_round_hook(script)) or feed it
// to the scenario runner, which also serializes it into replay artifacts.
#pragma once

#include <cstdint>

#include "runtime/fault_script.h"

namespace wfsort::runtime {

// Kill processors [first, last] at `round` and never revive them — the
// classic fail-stop adversary.
FaultScript fail_stop_at_round(std::uint64_t round, std::uint32_t first, std::uint32_t last);

// Suspend processors [first, last] at `round` and awaken them at
// `revive_round` — the paper's undetectable stop-and-revive (page fault /
// preemption) adversary.  Requires revive_round >= round.
FaultScript crash_and_revive(std::uint64_t round, std::uint64_t revive_round,
                             std::uint32_t first, std::uint32_t last);

// Kill every processor of a crew of `procs` except `survivor` at `round` —
// the harshest fail-stop case: one processor must finish the whole job.
FaultScript single_survivor(std::uint64_t round, std::uint32_t survivor, std::uint32_t procs);

// Kill processors one per `stride` rounds starting at `first_round`, keeping
// `survivors` alive — a slow-burn adversary that spreads the crashes across
// every phase instead of concentrating them in one round.
FaultScript staggered_kills(std::uint64_t first_round, std::uint64_t stride,
                            std::uint32_t procs, std::uint32_t survivors);

}  // namespace wfsort::runtime
