// Scheduler families as data.
//
// Wait-freedom must hold under every schedule, so the adversary engine
// sweeps all scheduler families rather than testing one.  A SchedSpec names
// a family plus its parameter and seed — enough to reconstruct the exact
// pram::Scheduler deterministically, which is what makes schedules
// serializable into replay artifacts.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "pram/scheduler.h"

namespace wfsort::runtime {

enum class SchedFamily : std::uint8_t {
  kSync,          // everyone steps every round (the paper's lemma schedule)
  kSerial,        // round-robin width 1: the harshest legal adversary
  kRoundRobin,    // param = width (processors stepping per round)
  kRandomSubset,  // param/100 = per-round step probability, uses seed
  kHalfFreeze,    // param = freeze period (rounds per frozen half)
};

struct SchedSpec {
  SchedFamily family = SchedFamily::kSync;
  std::uint64_t param = 0;  // family-specific; 0 picks a sensible default
  std::uint64_t seed = 1;   // only kRandomSubset consumes it

  bool operator==(const SchedSpec&) const = default;
};

// "sync" | "serial" | "rr" | "subset" | "freeze".
const char* sched_family_name(SchedFamily f);
// Inverse of sched_family_name; returns false on unknown names.
bool parse_sched_family(const std::string& name, SchedFamily* out);

std::unique_ptr<pram::Scheduler> make_scheduler(const SchedSpec& spec);

// One representative spec per family, parameterized for `procs` processors —
// the sweep the searching adversary and the certifier iterate.
std::vector<SchedSpec> all_sched_specs(std::uint32_t procs, std::uint64_t seed);

}  // namespace wfsort::runtime
