// Mid-run invariant oracle for simulated sorts.
//
// Post-run validation (pramsort/validate.h) can say a finished run was
// wrong; it cannot catch corruption the moment it happens, and it never runs
// at all when a bad schedule makes the sort hang.  The oracle checks the
// algorithm's *always-true* invariants — the ones every lemma leans on —
// from a round hook, every `period` rounds, while the adversary is still
// mid-swing:
//
//   * records are never lost or duplicated: the keys region equals the
//     input forever (no phase writes keys);
//   * the pivot tree stays well-formed: child pointers are kEmpty or
//     in-range, and no element is reachable twice from the root;
//   * write-once monotonicity: a child pointer, size, place, or
//     place-done flag that has left its initial value never changes again
//     (sizes and places are written with their final values; done flags only
//     go 0 -> 1);
//   * place uniqueness: the nonzero places are distinct values in [1, N].
//
// The first violation is frozen (round + message) and later checks no-op,
// so the scenario runner can abort the run and report exactly where the
// state went bad.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pram/machine.h"
#include "pramsort/layout.h"

namespace wfsort::runtime {

class SortOracle {
 public:
  // `root` is the element the pivot tree is rooted at (0 for the
  // deterministic simulator sort).
  SortOracle(sim::SortLayout layout, pram::Word root) : layout_(layout), root_(root) {}

  // Run every invariant against the machine's current memory.  Returns
  // false once a violation has been found (this call or an earlier one).
  bool check(const pram::Machine& m);

  bool violated() const { return !error_.empty(); }
  const std::string& error() const { return error_; }
  std::uint64_t violation_round() const { return violation_round_; }
  std::uint64_t checks_run() const { return checks_run_; }

  // A round hook that runs check() every `period` rounds (and on round 0,
  // which snapshots the pristine state).  The oracle must outlive the run.
  pram::Machine::RoundHook hook(std::uint64_t period);

 private:
  bool fail(const pram::Machine& m, std::string what);

  sim::SortLayout layout_;
  pram::Word root_;
  std::string error_;
  std::uint64_t violation_round_ = 0;
  std::uint64_t checks_run_ = 0;

  bool snapshotted_ = false;
  std::vector<pram::Word> keys0_;   // the input, fixed forever
  std::vector<pram::Word> child_;   // last seen; write-once after kEmpty
  std::vector<pram::Word> size_;    // write-once after 0
  std::vector<pram::Word> place_;   // write-once after 0
  std::vector<pram::Word> pdone_;   // monotone 0 -> nonzero
};

}  // namespace wfsort::runtime
