#include "runtime/sched_family.h"

#include <algorithm>

#include "common/check.h"

namespace wfsort::runtime {

const char* sched_family_name(SchedFamily f) {
  switch (f) {
    case SchedFamily::kSync: return "sync";
    case SchedFamily::kSerial: return "serial";
    case SchedFamily::kRoundRobin: return "rr";
    case SchedFamily::kRandomSubset: return "subset";
    case SchedFamily::kHalfFreeze: return "freeze";
  }
  WFSORT_CHECK(false);
}

bool parse_sched_family(const std::string& name, SchedFamily* out) {
  if (name == "sync") *out = SchedFamily::kSync;
  else if (name == "serial") *out = SchedFamily::kSerial;
  else if (name == "rr") *out = SchedFamily::kRoundRobin;
  else if (name == "subset") *out = SchedFamily::kRandomSubset;
  else if (name == "freeze") *out = SchedFamily::kHalfFreeze;
  else return false;
  return true;
}

std::unique_ptr<pram::Scheduler> make_scheduler(const SchedSpec& spec) {
  switch (spec.family) {
    case SchedFamily::kSync:
      return std::make_unique<pram::SynchronousScheduler>();
    case SchedFamily::kSerial:
      return std::make_unique<pram::RoundRobinScheduler>(1);
    case SchedFamily::kRoundRobin:
      return std::make_unique<pram::RoundRobinScheduler>(
          static_cast<std::uint32_t>(std::max<std::uint64_t>(1, spec.param)));
    case SchedFamily::kRandomSubset: {
      const double p = spec.param == 0 ? 0.5 : static_cast<double>(spec.param) / 100.0;
      return std::make_unique<pram::RandomSubsetScheduler>(std::clamp(p, 0.01, 1.0),
                                                           spec.seed);
    }
    case SchedFamily::kHalfFreeze:
      return std::make_unique<pram::HalfFreezeScheduler>(
          std::max<std::uint64_t>(1, spec.param));
  }
  WFSORT_CHECK(false);
}

std::vector<SchedSpec> all_sched_specs(std::uint32_t procs, std::uint64_t seed) {
  return {
      {SchedFamily::kSync, 0, seed},
      {SchedFamily::kSerial, 0, seed},
      {SchedFamily::kRoundRobin, std::max<std::uint64_t>(1, procs / 4), seed},
      {SchedFamily::kRandomSubset, 50, seed},
      {SchedFamily::kHalfFreeze, 8, seed},
  };
}

}  // namespace wfsort::runtime
