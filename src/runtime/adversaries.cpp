#include "runtime/adversaries.h"

#include "common/check.h"

namespace wfsort::runtime {

FaultScript fail_stop_at_round(std::uint64_t round, std::uint32_t first, std::uint32_t last) {
  WFSORT_CHECK(first <= last);
  FaultScript s;
  for (std::uint32_t p = first; p <= last; ++p) {
    s.add({FaultAction::kKill, TriggerKind::kRound, p, round, 0});
  }
  return s;
}

FaultScript crash_and_revive(std::uint64_t round, std::uint64_t revive_round,
                             std::uint32_t first, std::uint32_t last) {
  WFSORT_CHECK(first <= last);
  WFSORT_CHECK(revive_round >= round);
  FaultScript s;
  for (std::uint32_t p = first; p <= last; ++p) {
    s.add({FaultAction::kSuspend, TriggerKind::kRound, p, round, 0});
    s.add({FaultAction::kRevive, TriggerKind::kRound, p, revive_round, 0});
  }
  return s;
}

FaultScript single_survivor(std::uint64_t round, std::uint32_t survivor, std::uint32_t procs) {
  WFSORT_CHECK(survivor < procs);
  FaultScript s;
  for (std::uint32_t p = 0; p < procs; ++p) {
    if (p == survivor) continue;
    s.add({FaultAction::kKill, TriggerKind::kRound, p, round, 0});
  }
  return s;
}

FaultScript staggered_kills(std::uint64_t first_round, std::uint64_t stride,
                            std::uint32_t procs, std::uint32_t survivors) {
  WFSORT_CHECK(survivors >= 1 && survivors <= procs);
  FaultScript s;
  std::uint64_t round = first_round;
  for (std::uint32_t p = survivors; p < procs; ++p, round += stride) {
    s.add({FaultAction::kKill, TriggerKind::kRound, p, round, 0});
  }
  return s;
}

}  // namespace wfsort::runtime
