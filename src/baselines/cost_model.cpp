#include "baselines/cost_model.h"

#include <cmath>

namespace wfsort::baselines {

namespace {
double lg(double n) { return std::log2(std::max(2.0, n)); }
}  // namespace

double steps_this_paper(double n) { return lg(n); }
double steps_aks_direct(double n) { return lg(n); }
double steps_bitonic_direct(double n) { return lg(n) * (lg(n) + 1) / 2; }
double steps_yen_fault_tolerant(double n) { return lg(n) * lg(n); }
double steps_wait_free_transform(double n) { return lg(n) * lg(n) * lg(n); }
double steps_bitonic_wait_free(double n) { return lg(n) * lg(n) * lg(n); }

const CostModel* cost_models(std::size_t* count) {
  static const CostModel kModels[] = {
      {"this paper (wait-free)", "Lemma 2.8: O(log N) w.h.p., P = N",
       &steps_this_paper},
      {"AKS / Cole (direct)", "O(log N) PRAM sort, NOT wait-free", &steps_aks_direct},
      {"bitonic network (direct)", "Batcher: O(log^2 N) stages, NOT wait-free",
       &steps_bitonic_direct},
      {"Yen et al. network", "fail-stop fault-tolerant: O(log^2 N)",
       &steps_yen_fault_tolerant},
      {"AKS + async simulation", "Anderson-Woll / Buss et al.: O(log^3 N)",
       &steps_wait_free_transform},
      {"bitonic + wait-free transform", "O(log^3 N), + O(log^2 N) memory factor",
       &steps_bitonic_wait_free},
  };
  *count = sizeof(kModels) / sizeof(kModels[0]);
  return kModels;
}

}  // namespace wfsort::baselines
