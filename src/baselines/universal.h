// A wait-free universal construction (Herlihy-style), used as the paper's
// Section-1.1 strawman: build "a sorting object" from a generic wait-free
// object template and watch the helping mechanism serialize everything.
//
// Design (CAS-based, correct by construction):
//  * every thread announces its pending operation in announce[tid];
//  * the object is a log of slots, each decided once by CAS consensus;
//  * at slot k every thread first proposes the pending operation of thread
//    (k mod P) if it is still undecided — this helping priority guarantees
//    any announced operation is decided within O(P) slot advances, which is
//    the wait-freedom bound (and exactly the O(k f) serialization cost the
//    paper quotes from Afek et al.);
//  * a pending operation may win several slots under races, so the winner
//    of slot k immediately CASes its *canonical position* from -1 to k —
//    only the first claim sticks, later slots holding the same pending are
//    replayed as no-ops.  Every operation is therefore applied exactly once,
//    in canonical-position order (the linearization order).
//
// The log is replayed after the fact (replay()); for the sorting strawman
// the operations are "insert key", and replaying them into a sorted
// container is the serial f-cost the transformation cannot avoid.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/check.h"

namespace wfsort::baselines {

template <typename Op>
class UniversalLog {
 public:
  // `threads`: number of participating threads (tids 0..threads-1).
  // `slot_capacity`: upper bound on slots ever decided; duplicates consume
  // slots too, so allow ~2x the expected operation count plus slack.
  UniversalLog(std::uint32_t threads, std::size_t slot_capacity)
      : threads_(threads),
        announce_(threads),
        slots_(slot_capacity),
        arena_(slot_capacity) {
    WFSORT_CHECK(threads >= 1);
    for (auto& a : announce_) a.store(nullptr, std::memory_order_relaxed);
    for (auto& s : slots_) s.store(nullptr, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

  // Apply `op` as thread `tid`; returns the canonical log position.
  // Wait-free: decided within O(threads) slot advances past the tail.
  std::int64_t apply(std::uint32_t tid, Op op) {
    WFSORT_CHECK(tid < threads_);
    Pending* mine = allocate(op);
    announce_[tid].store(mine, std::memory_order_release);

    std::size_t k = tail_hint_.load(std::memory_order_relaxed);
    while (true) {
      WFSORT_CHECK(k < slots_.size());
      // Helping priority: slot k belongs to thread k mod P if it needs help.
      Pending* cand = announce_[k % threads_].load(std::memory_order_acquire);
      if (cand == nullptr || cand->pos.load(std::memory_order_acquire) != -1) {
        cand = mine;
      }
      Pending* expected = nullptr;
      Pending* winner = cand;
      if (!slots_[k].compare_exchange_strong(expected, cand, std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
        winner = expected;
      }
      // Claim the winner's canonical position (first claim wins; duplicates
      // of an already-claimed pending leave later slots as no-ops).
      std::int64_t none = -1;
      winner->pos.compare_exchange_strong(none, static_cast<std::int64_t>(k),
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire);
      const std::int64_t mine_pos = mine->pos.load(std::memory_order_acquire);
      if (mine_pos != -1) {
        tail_hint_.store(k + 1, std::memory_order_relaxed);
        return mine_pos;
      }
      ++k;
    }
  }

  // Replay the decided operations in linearization order.  Call after all
  // appliers are done (quiescent).  `f(op)` runs once per operation.
  template <typename F>
  void replay(F&& f) const {
    for (std::size_t k = 0; k < slots_.size(); ++k) {
      const Pending* p = slots_[k].load(std::memory_order_acquire);
      if (p == nullptr) break;  // slots are decided densely from 0
      if (p->pos.load(std::memory_order_acquire) == static_cast<std::int64_t>(k)) {
        f(p->op);
      }
    }
  }

  // Number of decided slots (including squashed duplicates) — the log's
  // total consensus work.
  std::size_t decided_slots() const {
    std::size_t k = 0;
    while (k < slots_.size() && slots_[k].load(std::memory_order_acquire) != nullptr) ++k;
    return k;
  }

 private:
  struct Pending {
    Op op{};
    std::atomic<std::int64_t> pos{-1};
  };

  Pending* allocate(const Op& op) {
    const std::size_t i = arena_next_.fetch_add(1, std::memory_order_relaxed);
    WFSORT_CHECK(i < arena_.size());
    arena_[i].op = op;
    arena_[i].pos.store(-1, std::memory_order_relaxed);
    return &arena_[i];
  }

  std::uint32_t threads_;
  std::vector<std::atomic<Pending*>> announce_;
  std::vector<std::atomic<Pending*>> slots_;
  std::vector<Pending> arena_;  // node storage; index = allocation order
  std::atomic<std::size_t> arena_next_{0};
  std::atomic<std::size_t> tail_hint_{0};
};

// The Section-1.1 strawman: sort by funneling every key through a universal
// object.  Returns the sorted data via `out`; `decided_slots` (optional)
// reports the consensus traffic.  The point is the cost, not the method.
void universal_object_sort(std::span<const std::uint64_t> in,
                           std::vector<std::uint64_t>& out, std::uint32_t threads,
                           std::size_t* decided_slots = nullptr);

}  // namespace wfsort::baselines
