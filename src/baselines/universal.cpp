#include "baselines/universal.h"

#include <algorithm>
#include <set>
#include <span>
#include <thread>

namespace wfsort::baselines {

void universal_object_sort(std::span<const std::uint64_t> in,
                           std::vector<std::uint64_t>& out, std::uint32_t threads,
                           std::size_t* decided_slots) {
  threads = std::max<std::uint32_t>(1, threads);
  const std::size_t n = in.size();
  // Duplicate slots are bounded in practice by a small multiple of P; size
  // generously (checked at runtime).
  UniversalLog<std::uint64_t> log(threads,
                                  2 * n + 16 * static_cast<std::size_t>(threads) + 16);
  {
    std::vector<std::jthread> crew;
    crew.reserve(threads);
    for (std::uint32_t t = 0; t < threads; ++t) {
      crew.emplace_back([&, t] {
        // Thread t funnels keys t, t+P, t+2P, ... through the object.
        for (std::size_t i = t; i < n; i += threads) log.apply(t, in[i]);
      });
    }
  }

  // The "sorting object" semantics: every insert is applied serially to a
  // sorted container in linearization order — the f-cost of the transform.
  std::multiset<std::uint64_t> object;
  log.replay([&object](const std::uint64_t& key) { object.insert(key); });
  out.assign(object.begin(), object.end());
  if (decided_slots != nullptr) *decided_slots = log.decided_slots();
}

}  // namespace wfsort::baselines
