// Batcher's bitonic sorting network.
//
// The fault-tolerant-sorting line of work the paper compares against (Yen
// et al.) builds on sorting networks, and the QRQW/asynchronous-PRAM
// baselines are network-structured too.  A network sorts in
// log2(N) * (log2(N)+1) / 2 data-parallel stages of N/2 fixed
// compare-exchange gates — O(log^2 N) depth versus the wait-free sort's
// O(log N), which experiment E10 measures.
//
// Two execution modes are provided:
//  * serial_sort():   run the stages in place (correctness reference);
//  * threaded_sort(): one std::barrier per stage across T threads — the
//    conventional bulk-synchronous execution whose barriers are exactly
//    what wait-freedom avoids (a stalled thread stalls every stage).
#pragma once

#include <cstdint>
#include <span>

namespace wfsort::baselines {

// Number of compare-exchange stages for n elements (n rounded up to a power
// of two internally): k(k+1)/2 with k = log2(n_padded).
std::uint32_t bitonic_stage_count(std::size_t n);

void bitonic_serial_sort(std::span<std::uint64_t> data);
void bitonic_threaded_sort(std::span<std::uint64_t> data, std::uint32_t threads);

}  // namespace wfsort::baselines
