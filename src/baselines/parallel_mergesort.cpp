#include "baselines/parallel_mergesort.h"

#include <algorithm>
#include <barrier>
#include <thread>
#include <vector>

namespace wfsort::baselines {

namespace {

// Merge sorted [lo, mid) and [mid, hi) of `src` into `dst`.
void merge_into(const std::uint64_t* src, std::uint64_t* dst, std::size_t lo,
                std::size_t mid, std::size_t hi) {
  std::size_t a = lo, b = mid, o = lo;
  while (a < mid && b < hi) dst[o++] = src[a] <= src[b] ? src[a++] : src[b++];
  while (a < mid) dst[o++] = src[a++];
  while (b < hi) dst[o++] = src[b++];
}

}  // namespace

void parallel_mergesort(std::span<std::uint64_t> data, std::uint32_t threads) {
  const std::size_t n = data.size();
  if (n <= 1) return;
  threads = std::max<std::uint32_t>(1, threads);

  std::vector<std::uint64_t> scratch(n);
  std::uint64_t* bufs[2] = {data.data(), scratch.data()};
  int src = 0;

  std::barrier barrier(static_cast<std::ptrdiff_t>(threads));
  // Precompute the passes so every thread agrees on src/dst parity.
  std::vector<std::size_t> runs;
  for (std::size_t r = 1; r < n; r *= 2) runs.push_back(r);

  if (threads == 1) {
    for (std::size_t r : runs) {
      for (std::size_t lo = 0; lo < n; lo += 2 * r) {
        const std::size_t mid = std::min(n, lo + r);
        const std::size_t hi = std::min(n, lo + 2 * r);
        merge_into(bufs[src], bufs[1 - src], lo, mid, hi);
      }
      src = 1 - src;
    }
  } else {
    std::vector<std::jthread> crew;
    crew.reserve(threads);
    for (std::uint32_t t = 0; t < threads; ++t) {
      crew.emplace_back([&, t] {
        int my_src = 0;
        for (std::size_t r : runs) {
          // Thread t handles every threads-th merge pair.
          std::size_t pair_index = 0;
          for (std::size_t lo = 0; lo < n; lo += 2 * r, ++pair_index) {
            if (pair_index % threads != t) continue;
            const std::size_t mid = std::min(n, lo + r);
            const std::size_t hi = std::min(n, lo + 2 * r);
            merge_into(bufs[my_src], bufs[1 - my_src], lo, mid, hi);
          }
          my_src = 1 - my_src;
          barrier.arrive_and_wait();  // bulk-synchronous pass boundary
        }
      });
    }
    crew.clear();  // join
    src = static_cast<int>(runs.size() % 2);
  }

  if (bufs[src] != data.data()) {
    std::copy(scratch.begin(), scratch.end(), data.begin());
  }
}

}  // namespace wfsort::baselines
