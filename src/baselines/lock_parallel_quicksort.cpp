#include "baselines/lock_parallel_quicksort.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "baselines/sequential.h"

namespace wfsort::baselines {

namespace {

constexpr std::size_t kSerialCutoff = 512;

struct Pool {
  std::mutex mu;
  std::deque<std::pair<std::size_t, std::size_t>> ranges;
  std::size_t active = 0;       // ranges popped and being processed
  std::uint32_t lost = 0;       // ranges stranded by crashed workers
  std::atomic<bool> done{false};
};

std::uint64_t median_of_three(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  if (a > b) std::swap(a, b);
  if (b > c) b = c;
  return std::max(a, b);
}

std::size_t hoare_partition(std::span<std::uint64_t> d, std::size_t lo, std::size_t hi,
                            std::uint64_t pivot) {
  std::size_t i = lo;
  std::size_t j = hi - 1;
  while (true) {
    while (d[i] < pivot) ++i;
    while (d[j] > pivot) --j;
    if (i >= j) return j;
    std::swap(d[i], d[j]);
    ++i;
    --j;
  }
}

void worker(std::span<std::uint64_t> data, Pool& pool, std::uint32_t tid,
            runtime::FaultPlan* plan) {
  while (!pool.done.load(std::memory_order_acquire)) {
    std::pair<std::size_t, std::size_t> range;
    {
      std::unique_lock<std::mutex> lock(pool.mu);
      if (pool.ranges.empty()) {
        if (pool.active == 0) {
          // Nothing queued, nobody working: either finished or stranded.
          pool.done.store(true, std::memory_order_release);
          return;
        }
        lock.unlock();
        std::this_thread::yield();
        continue;
      }
      range = pool.ranges.front();
      pool.ranges.pop_front();
      ++pool.active;
      // Checkpoint INSIDE the critical section: a "page-faulting" worker
      // stalls every other worker here — the blocking behaviour the
      // wait-free sorter is immune to.  A crashing worker strands its range
      // (we account it so the harness can terminate and report failure; a
      // real crash would simply hang the sort).
      if (plan != nullptr && !plan->checkpoint(tid)) {
        --pool.active;
        ++pool.lost;
        return;
      }
    }

    auto [lo, hi] = range;
    if (hi - lo <= kSerialCutoff) {
      quicksort(data.subspan(lo, hi - lo));
      std::lock_guard<std::mutex> lock(pool.mu);
      --pool.active;
    } else {
      const std::uint64_t pivot =
          median_of_three(data[lo], data[lo + (hi - lo) / 2], data[hi - 1]);
      const std::size_t mid = hoare_partition(data, lo, hi, pivot);
      std::lock_guard<std::mutex> lock(pool.mu);
      pool.ranges.emplace_back(lo, mid + 1);
      pool.ranges.emplace_back(mid + 1, hi);
      --pool.active;
    }
  }
}

}  // namespace

LockSortResult lock_parallel_quicksort(std::span<std::uint64_t> data, std::uint32_t threads,
                                       runtime::FaultPlan* plan) {
  LockSortResult result;
  if (data.size() <= 1) return result;
  threads = std::max<std::uint32_t>(1, threads);

  Pool pool;
  pool.ranges.emplace_back(0, data.size());
  {
    std::vector<std::jthread> crew;
    crew.reserve(threads);
    for (std::uint32_t t = 0; t < threads; ++t) {
      crew.emplace_back([&data, &pool, t, plan] { worker(data, pool, t, plan); });
    }
  }
  result.completed = pool.lost == 0;
  result.crashed = pool.lost;
  return result;
}

}  // namespace wfsort::baselines
