// Lock-based parallel quicksort — the blocking baseline.
//
// A conventional task-pool parallel quicksort: threads pull [lo, hi) ranges
// from a mutex-protected deque, partition, and push the halves back.  It is
// the natural "what everyone writes first" comparator for E9/E11 — and the
// anti-thesis of the wait-free sorter: a worker that stalls while holding
// the pool lock stalls everyone, and a worker that dies after popping a
// range loses that range forever (the sort never completes).  Both failure
// modes are demonstrable through the same FaultPlan used for the wait-free
// sorter; see tests/test_baselines.cpp.
#pragma once

#include <cstdint>
#include <span>

#include "runtime/fault_plan.h"

namespace wfsort::baselines {

struct LockSortResult {
  bool completed = true;    // false when crashed workers stranded ranges
  std::uint32_t crashed = 0;
};

// Sort with `threads` workers.  `plan` (optional) injects crashes/sleeps at
// task-pop checkpoints; with a plan the result can report non-completion —
// exactly the behaviour wait-freedom rules out.
LockSortResult lock_parallel_quicksort(std::span<std::uint64_t> data, std::uint32_t threads,
                                       runtime::FaultPlan* plan = nullptr);

}  // namespace wfsort::baselines
