// Bulk-synchronous parallel mergesort — the "textbook PRAM style" baseline.
//
// Bottom-up mergesort: pass k merges runs of length 2^k pairwise; T threads
// split each pass's merges and meet at a barrier.  This is the shape of the
// classic O(log^2 N)-depth PRAM sorts (and of Cole's O(log N) one, minus
// the pipelining), and like them it is barrier-synchronized: a stalled or
// dead thread stops every subsequent pass — the contrast to wait-freedom.
#pragma once

#include <cstdint>
#include <span>

namespace wfsort::baselines {

void parallel_mergesort(std::span<std::uint64_t> data, std::uint32_t threads);

}  // namespace wfsort::baselines
