#include "baselines/sequential.h"

#include <algorithm>
#include <utility>

namespace wfsort::baselines {

namespace {

constexpr std::size_t kInsertionCutoff = 24;

std::uint64_t median_of_three(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  if (a > b) std::swap(a, b);
  if (b > c) b = c;
  return std::max(a, b);
}

// Hoare partition around `pivot`: returns an index j such that
// [lo, j] <= pivot <= [j+1, hi) in the weak sense Hoare's scheme guarantees.
std::size_t hoare_partition(std::span<std::uint64_t> d, std::size_t lo, std::size_t hi,
                            std::uint64_t pivot) {
  std::size_t i = lo;
  std::size_t j = hi - 1;
  while (true) {
    while (d[i] < pivot) ++i;
    while (d[j] > pivot) --j;
    if (i >= j) return j;
    std::swap(d[i], d[j]);
    ++i;
    --j;
  }
}

void quicksort_range(std::span<std::uint64_t> d, std::size_t lo, std::size_t hi) {
  while (hi - lo > kInsertionCutoff) {
    const std::uint64_t pivot =
        median_of_three(d[lo], d[lo + (hi - lo) / 2], d[hi - 1]);
    const std::size_t mid = hoare_partition(d, lo, hi, pivot);
    // Recurse into the smaller half, loop on the larger: O(log N) stack.
    if (mid - lo < hi - mid) {
      quicksort_range(d, lo, mid + 1);
      lo = mid + 1;
    } else {
      quicksort_range(d, mid + 1, hi);
      hi = mid + 1;
    }
  }
  insertion_sort(d.subspan(lo, hi - lo));
}

}  // namespace

void insertion_sort(std::span<std::uint64_t> data) {
  for (std::size_t i = 1; i < data.size(); ++i) {
    const std::uint64_t key = data[i];
    std::size_t j = i;
    while (j > 0 && data[j - 1] > key) {
      data[j] = data[j - 1];
      --j;
    }
    data[j] = key;
  }
}

void quicksort(std::span<std::uint64_t> data) {
  if (data.size() > 1) quicksort_range(data, 0, data.size());
}

}  // namespace wfsort::baselines
