#include "baselines/bitonic.h"

#include <algorithm>
#include <barrier>
#include <limits>
#include <thread>
#include <vector>

#include "common/bits.h"

namespace wfsort::baselines {

namespace {

// Pad to a power of two with +infinity so the network sorts any size.
std::vector<std::uint64_t> padded(std::span<const std::uint64_t> data) {
  const std::size_t m = next_pow2(std::max<std::size_t>(1, data.size()));
  std::vector<std::uint64_t> v(m, std::numeric_limits<std::uint64_t>::max());
  std::copy(data.begin(), data.end(), v.begin());
  return v;
}

// One stage: compare-exchange pairs (i, i^j) for ascending/descending runs
// of length k (the standard bitonic indexing), over indices [lo, hi).
void run_stage(std::span<std::uint64_t> d, std::size_t k, std::size_t j, std::size_t lo,
               std::size_t hi) {
  for (std::size_t i = lo; i < hi; ++i) {
    const std::size_t partner = i ^ j;
    if (partner > i) {
      const bool ascending = (i & k) == 0;
      if ((d[i] > d[partner]) == ascending) std::swap(d[i], d[partner]);
    }
  }
}

}  // namespace

std::uint32_t bitonic_stage_count(std::size_t n) {
  const std::uint32_t k = log2_ceil(next_pow2(std::max<std::size_t>(2, n)));
  return k * (k + 1) / 2;
}

void bitonic_serial_sort(std::span<std::uint64_t> data) {
  if (data.size() <= 1) return;
  auto v = padded(data);
  const std::size_t m = v.size();
  for (std::size_t k = 2; k <= m; k *= 2) {
    for (std::size_t j = k / 2; j > 0; j /= 2) {
      run_stage(v, k, j, 0, m);
    }
  }
  std::copy(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(data.size()), data.begin());
}

void bitonic_threaded_sort(std::span<std::uint64_t> data, std::uint32_t threads) {
  if (data.size() <= 1) return;
  threads = std::max<std::uint32_t>(1, threads);
  if (threads == 1) {
    bitonic_serial_sort(data);
    return;
  }
  auto v = padded(data);
  const std::size_t m = v.size();
  std::barrier barrier(static_cast<std::ptrdiff_t>(threads));
  const std::size_t chunk = (m + threads - 1) / threads;

  {
    std::vector<std::jthread> crew;
    crew.reserve(threads);
    for (std::uint32_t t = 0; t < threads; ++t) {
      crew.emplace_back([&, t] {
        const std::size_t lo = std::min<std::size_t>(m, t * chunk);
        const std::size_t hi = std::min<std::size_t>(m, lo + chunk);
        for (std::size_t k = 2; k <= m; k *= 2) {
          for (std::size_t j = k / 2; j > 0; j /= 2) {
            run_stage(v, k, j, lo, hi);
            barrier.arrive_and_wait();  // bulk-synchronous: stage boundary
          }
        }
      });
    }
  }
  std::copy(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(data.size()), data.begin());
}

}  // namespace wfsort::baselines
