// Analytic step-count models for the related-work comparison (E10).
//
// Section 1.1 of the paper argues that making a classic O(log N) PRAM sort
// wait-free through generic transformations costs polylog blowups.  These
// models turn that argument into comparable numbers: predicted parallel
// step counts (constants set to 1; only growth shapes are meaningful),
// printed next to our measured round counts.
#pragma once

#include <cstdint>

namespace wfsort::baselines {

struct CostModel {
  const char* name;
  const char* source;  // which related-work route the model represents
  double (*steps)(double n);
};

// Parallel steps with P = N processors, constants normalized to 1.
double steps_this_paper(double n);          // O(log N)          (Lemma 2.8)
double steps_aks_direct(double n);          // O(log N), not wait-free
double steps_bitonic_direct(double n);      // O(log^2 N), not wait-free
double steps_yen_fault_tolerant(double n);  // O(log^2 N), fail-stop only
double steps_wait_free_transform(double n); // O(log^3 N): AKS + asynchronous
                                            // simulation (Anderson-Woll/Buss)
double steps_bitonic_wait_free(double n);   // O(log^3 N): network + transform

// All models in presentation order.
const CostModel* cost_models(std::size_t* count);

}  // namespace wfsort::baselines
