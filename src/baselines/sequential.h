// Sequential baselines, implemented from scratch.
//
// quicksort(): Hoare's algorithm (the paper's serial starting point) with
// median-of-three pivoting and an insertion-sort cutoff — the natural
// single-processor comparison point for experiment E11.
#pragma once

#include <cstdint>
#include <span>

namespace wfsort::baselines {

// In-place quicksort.  Deterministic; O(N log N) expected.
void quicksort(std::span<std::uint64_t> data);

// In-place insertion sort (used below the cutoff; exposed for tests).
void insertion_sort(std::span<std::uint64_t> data);

}  // namespace wfsort::baselines
