#include "pramsort/lc_layout.h"

#include <algorithm>
#include <string>

#include "common/check.h"

namespace wfsort::sim {

LcSortLayout make_lc_sort_layout(pram::Machine& m, std::span<const pram::Word> keys,
                                 std::uint32_t procs) {
  const std::uint64_t n = keys.size();
  WFSORT_CHECK(n >= 4);
  WFSORT_CHECK(procs >= 1);

  LcSortLayout l;
  l.main = make_sort_layout(m.mem(), keys);
  l.procs = procs;
  l.levels = std::max<std::uint32_t>(1, log2_floor(isqrt(n) + 1));
  l.slice = (std::uint64_t{1} << l.levels) - 1;
  l.groups = static_cast<std::uint32_t>(std::min<std::uint64_t>(
      std::max<std::uint32_t>(1, isqrt(procs)), n / l.slice));
  WFSORT_CHECK(l.groups >= 1);
  l.copies = static_cast<std::uint32_t>(
      std::max<std::uint64_t>(1, std::min<std::uint64_t>(procs / l.slice + 1, 4096)));

  pram::Memory& mem = m.mem();
  const std::uint64_t gs = static_cast<std::uint64_t>(l.groups) * l.slice;
  l.gchild = mem.alloc("group child pointers", 2 * gs, pram::kEmpty);
  l.gsize = mem.alloc("group sizes", gs, 0);
  l.gplace = mem.alloc("group places", gs, 0);
  l.gout = mem.alloc("group sorted indices", gs, pram::kEmpty);
  l.winner = mem.alloc("winner tree", 2 * next_pow2(procs) - 1, pram::kEmpty);
  l.fat = mem.alloc("fat tree", l.slice * l.copies, pram::kEmpty);
  l.sum_marks = mem.alloc("sum marks", n, 0);
  l.place_marks = mem.alloc("place marks", n, 0);
  for (std::uint32_t g = 0; g < l.groups; ++g) {
    l.gwats.push_back(
        make_pram_wat(mem, "group WAT " + std::to_string(g), l.slice));
  }
  l.insert_wat = make_pram_lcwat(mem, "insertion LC-WAT", n);
  return l;
}

}  // namespace wfsort::sim
