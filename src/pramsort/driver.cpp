#include "pramsort/driver.h"

#include <algorithm>
#include <memory>

#include "common/check.h"
#include "pramsort/lc_programs.h"
#include "workalloc/wat_program.h"

namespace wfsort::sim {

namespace {

bool matches_sorted(std::span<const pram::Word> keys, const std::vector<pram::Word>& out) {
  std::vector<pram::Word> expected(keys.begin(), keys.end());
  std::sort(expected.begin(), expected.end());
  return out == expected;
}

}  // namespace

SimSortResult run_det_sort(pram::Machine& m, std::span<const pram::Word> keys,
                           std::uint32_t procs, pram::Scheduler& sched, DetSortConfig cfg) {
  WFSORT_CHECK(procs >= 1);
  cfg.procs = procs;
  SimSortResult res;
  res.layout = make_sort_layout(m.mem(), keys);
  // One shared copy of the layout aggregates for the whole crew (see
  // wat_worker's lifetime note); the factories' shared_ptrs keep it alive.
  auto l = std::make_shared<const SortLayout>(res.layout);
  auto wat = std::make_shared<const PramWat>(make_pram_wat(m.mem(), "phase1 WAT", keys.size()));
  for (std::uint32_t p = 0; p < procs; ++p) {
    m.spawn([l, wat, cfg](pram::Ctx& ctx) { return det_sort_worker(ctx, *l, *wat, cfg); });
  }
  res.run = m.run(sched);
  res.output = read_output(m, res.layout);
  res.sorted = matches_sorted(keys, res.output);
  return res;
}

SimSortResult run_det_sort_sync(pram::Machine& m, std::span<const pram::Word> keys,
                                std::uint32_t procs, DetSortConfig cfg) {
  pram::SynchronousScheduler sched;
  return run_det_sort(m, keys, procs, sched, cfg);
}

LcSimSortResult run_lc_sort(pram::Machine& m, std::span<const pram::Word> keys,
                            std::uint32_t procs, pram::Scheduler& sched) {
  WFSORT_CHECK(procs >= 1);
  LcSimSortResult res;
  res.layout = make_lc_sort_layout(m, keys, procs);
  auto l = std::make_shared<const LcSortLayout>(res.layout);
  for (std::uint32_t p = 0; p < procs; ++p) {
    m.spawn([l](pram::Ctx& ctx) { return lc_sort_worker(ctx, *l); });
  }
  res.run = m.run(sched);
  res.output = read_output(m, res.layout.main);
  res.sorted = matches_sorted(keys, res.output);
  return res;
}

LcSimSortResult run_lc_sort_sync(pram::Machine& m, std::span<const pram::Word> keys,
                                 std::uint32_t procs) {
  pram::SynchronousScheduler sched;
  return run_lc_sort(m, keys, procs, sched);
}

SimSortResult run_classic_sort(pram::Machine& m, std::span<const pram::Word> keys,
                               std::uint32_t procs, pram::Scheduler& sched,
                               ClassicSortConfig cfg) {
  WFSORT_CHECK(procs >= 1);
  cfg.procs = procs;
  SimSortResult res;
  res.layout = make_sort_layout(m.mem(), keys);
  const pram::PramBarrier barrier = pram::make_barrier(m.mem(), "phase barrier", procs);
  auto l = std::make_shared<const SortLayout>(res.layout);
  for (std::uint32_t p = 0; p < procs; ++p) {
    m.spawn([l, barrier, cfg](pram::Ctx& ctx) { return classic_sort_worker(ctx, *l, barrier, cfg); });
  }
  res.run = m.run(sched);
  res.output = read_output(m, res.layout);
  res.sorted = matches_sorted(keys, res.output);
  return res;
}

SimSortResult run_classic_sort_sync(pram::Machine& m, std::span<const pram::Word> keys,
                                    std::uint32_t procs, ClassicSortConfig cfg) {
  pram::SynchronousScheduler sched;
  return run_classic_sort(m, keys, procs, sched, cfg);
}

}  // namespace wfsort::sim
