#include "pramsort/det_programs.h"

#include <vector>

#include "common/bits.h"
#include "common/check.h"
#include "common/rng.h"

namespace wfsort::sim {

namespace {
constexpr int kSmall = SortLayout::kSmall;
constexpr int kBig = SortLayout::kBig;

// First-visited child for worker `pid` at `depth`.  Hashed bits keep
// helpers spread at every depth; raw PID bits (the paper's literal rule)
// are kept for the E12 ablation.
int pid_first_side(pram::ProcId pid, std::uint32_t depth, bool raw = false) {
  if (raw) return ((pid >> (depth % 32)) & 1u) != 0 ? kBig : kSmall;
  const std::uint64_t h =
      wfsort::mix64((std::uint64_t{pid} << 32) | std::uint64_t{depth});
  return (h & 1u) != 0 ? kBig : kSmall;
}
}  // namespace

pram::SubTask<void> build_tree(pram::Ctx& ctx, const SortLayout& l, pram::Word i,
                               pram::Word root) {
  if (i == root) co_return;
  const pram::Word ikey = co_await ctx.read(l.key_addr(i));
  pram::Word parent = root;
  while (true) {
    const pram::Word pkey = co_await ctx.read(l.key_addr(parent));
    const int side = SortLayout::key_less(ikey, i, pkey, parent) ? kSmall : kBig;
    // CAS returns the previous slot value; success iff it was EMPTY.  If the
    // slot already holds i, another processor installed our element.
    const pram::Word old = co_await ctx.cas(l.child_addr(parent, side), pram::kEmpty, i);
    if (old == pram::kEmpty || old == i) co_return;
    parent = old;
  }
}

pram::SubTask<pram::Word> tree_sum_prog(pram::Ctx& ctx, const SortLayout& l, pram::Word root) {
  // Iterative Figure 5 (the simulator's coroutines do not recurse; an
  // explicit frame stack is local computation and therefore free).
  struct Frame {
    pram::Word node;
    std::uint32_t depth;
    std::uint8_t stage;
    pram::Word first_sum;
  };
  std::vector<Frame> stack;
  stack.push_back({root, 0, 0, 0});
  pram::Word ret = 0;

  while (!stack.empty()) {
    Frame f = stack.back();
    if (f.node == pram::kEmpty) {
      ret = 0;
      stack.pop_back();
      continue;
    }
    switch (f.stage) {
      case 0: {
        const pram::Word s = co_await ctx.read(l.size_addr(f.node));
        if (s > 0) {
          ret = s;
          stack.pop_back();
          break;
        }
        stack.back().stage = 1;
        const int side = pid_first_side(ctx.pid(), f.depth);  // hashed spread
        const pram::Word c = co_await ctx.read(l.child_addr(f.node, side));
        stack.push_back({c, f.depth + 1, 0, 0});
        break;
      }
      case 1: {
        stack.back().first_sum = ret;
        stack.back().stage = 2;
        const int side = 1 - pid_first_side(ctx.pid(), f.depth);
        const pram::Word c = co_await ctx.read(l.child_addr(f.node, side));
        stack.push_back({c, f.depth + 1, 0, 0});
        break;
      }
      default: {
        const pram::Word total = f.first_sum + ret + 1;
        co_await ctx.write(l.size_addr(f.node), total);
        ret = total;
        stack.pop_back();
        break;
      }
    }
  }
  co_return ret;
}

pram::SubTask<void> find_place_prog(pram::Ctx& ctx, const SortLayout& l, pram::Word root,
                                    PlacePrune prune, bool raw_pid_spread) {
  struct Frame {
    pram::Word node;
    pram::Word sub;
    std::uint32_t depth;
    std::uint8_t stage;  // 1 = post-frame (kCompleted): subtree fully placed
  };
  std::vector<Frame> stack;
  stack.push_back({root, 0, 0, 0});

  while (!stack.empty()) {
    const Frame f = stack.back();
    if (f.node == pram::kEmpty) {
      stack.pop_back();
      continue;
    }
    if (f.stage == 1) {
      co_await ctx.write(l.pdone_addr(f.node), 1);
      stack.pop_back();
      continue;
    }
    if (prune == PlacePrune::kPlaced) {
      const pram::Word pl = co_await ctx.read(l.place_addr(f.node));
      if (pl > 0) {
        stack.pop_back();
        continue;
      }
    } else if (prune == PlacePrune::kCompleted) {
      const pram::Word d = co_await ctx.read(l.pdone_addr(f.node));
      if (d != 0) {
        stack.pop_back();
        continue;
      }
    }
    const pram::Word small = co_await ctx.read(l.child_addr(f.node, kSmall));
    pram::Word s = 0;
    if (small != pram::kEmpty) s = co_await ctx.read(l.size_addr(small));
    const pram::Word pl = f.sub + s + 1;
    co_await ctx.write(l.place_addr(f.node), pl);
    // Element shuffling: move the key to its final rank.
    const pram::Word key = co_await ctx.read(l.key_addr(f.node));
    co_await ctx.write(l.out_addr(pl - 1), key);

    const pram::Word big = co_await ctx.read(l.child_addr(f.node, kBig));
    if (prune == PlacePrune::kCompleted) {
      stack.back().stage = 1;  // revisit after the children to mark complete
    } else {
      stack.pop_back();
    }
    const Frame fs{small, f.sub, f.depth + 1, 0};
    const Frame fb{big, f.sub + s + 1, f.depth + 1, 0};
    if (pid_first_side(ctx.pid(), f.depth, raw_pid_spread) == kSmall) {
      stack.push_back(fb);  // LIFO: second visit pushed first
      stack.push_back(fs);
    } else {
      stack.push_back(fs);
      stack.push_back(fb);
    }
  }
}

pram::SubTask<void> random_first_build(pram::Ctx& ctx, const SortLayout& l,
                                       const PramWat& wat, std::uint32_t nprocs,
                                       pram::Word root) {
  const std::uint32_t needed_misses = std::max<std::uint32_t>(1, log2_ceil(wat.jobs));
  std::uint32_t misses = 0;
  std::uint64_t last_leaf = wat.tree.leaf(wat.jobs * (ctx.pid() % nprocs) / nprocs);

  while (misses < needed_misses) {
    const std::uint64_t j = ctx.rng().below(wat.jobs);
    const std::uint64_t leaf = wat.tree.leaf(j);
    const pram::Word v = co_await ctx.read(wat.node_addr(leaf));
    if (v == pram::kDone) {
      ++misses;
      continue;
    }
    misses = 0;
    co_await build_tree(ctx, l, static_cast<pram::Word>(j), root);
    // Mark the leaf and propagate completion up the WAT (next_element's
    // ascent); we ignore the element it hands back — the next pick is random.
    const pram::Word nxt =
        co_await next_element(ctx, wat, static_cast<pram::Word>(leaf));
    if (nxt == pram::kDone) co_return;
    last_leaf = leaf;
  }

  // Fall back to deterministic allocation from the last random position.
  pram::Word node = static_cast<pram::Word>(last_leaf);
  while (true) {
    const std::uint64_t u = static_cast<std::uint64_t>(node);
    if (wat.tree.is_leaf(u)) {
      const std::uint64_t j = wat.tree.leaf_rank(u);
      if (j < wat.jobs) {
        co_await build_tree(ctx, l, static_cast<pram::Word>(j), root);
      }
    }
    node = co_await next_element(ctx, wat, node);
    if (node == pram::kDone) co_return;
  }
}

pram::Task det_sort_worker(pram::Ctx& ctx, const SortLayout& l, const PramWat& wat,
                           DetSortConfig cfg) {
  const pram::Word root = 0;
  if (cfg.random_first) {
    co_await random_first_build(ctx, l, wat, cfg.procs, root);
  } else {
    // &l: the layout is factory-owned and outlives this root frame.
    PramJobFn job = [&l, root](pram::Ctx& c, std::uint64_t j) {
      return build_tree(c, l, static_cast<pram::Word>(j), root);
    };
    co_await wat_skeleton(ctx, wat, cfg.procs, job);
  }
  co_await tree_sum_prog(ctx, l, root);
  co_await find_place_prog(ctx, l, root, cfg.prune, cfg.raw_pid_spread);
}

}  // namespace wfsort::sim
