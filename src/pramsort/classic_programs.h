// The classic (non-fault-tolerant) parallel quicksort the paper descends
// from — Martel & Gusfield / Chlebus & Vrto style, adapted to our layout.
//
// Identical tree phases to the wait-free sort, but with the machinery the
// paper adds stripped away: no work-assignment trees (processor p simply
// owns elements p, p+P, ...), no per-processor completion guarantees, and
// barrier synchronization between the phases.  It is faster in rounds —
// that difference is the measured "price of wait-freedom" (E15) — and it
// deadlocks if a single processor dies at a barrier, which E15 also shows.
#pragma once

#include "pram/machine.h"
#include "pram/primitives.h"
#include "pramsort/det_programs.h"
#include "pramsort/layout.h"

namespace wfsort::sim {

struct ClassicSortConfig {
  std::uint32_t procs = 1;
  // Default to the same (best) pruning policy the wait-free sort uses, so
  // E15 isolates the cost of the wait-freedom machinery itself rather than
  // of Figure 6's prune rule (ablated separately in E12a).
  PlacePrune prune = PlacePrune::kCompleted;
};

pram::Task classic_sort_worker(pram::Ctx& ctx, const SortLayout& l, pram::PramBarrier barrier,
                               ClassicSortConfig cfg);

}  // namespace wfsort::sim
