// Memory layout of the sorting programs on the simulated PRAM.
//
// Mirrors Figure 3: each element of A owns a key, two child pointers, a
// subtree size and a place; `out` receives the shuffled (sorted) keys and
// `parent` supports the low-contention placement phase.  All per-element
// fields live in separate named regions so that contention reports can
// attribute hot cells ("qs child pointers", "qs sizes", ...).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "pram/machine.h"

namespace wfsort::sim {

struct SortLayout {
  std::uint64_t n = 0;
  pram::Region keys;
  pram::Region child;  // 2 words per element: [2i] = SMALL, [2i+1] = BIG
  pram::Region size;
  pram::Region place;
  pram::Region pdone;  // bottom-up placement-complete flags (PlacePrune::kCompleted)
  pram::Region out;

  static constexpr int kSmall = 0;
  static constexpr int kBig = 1;

  pram::Addr key_addr(pram::Word i) const { return keys.base + static_cast<pram::Addr>(i); }
  pram::Addr child_addr(pram::Word i, int side) const {
    return child.base + 2 * static_cast<pram::Addr>(i) + static_cast<pram::Addr>(side);
  }
  pram::Addr size_addr(pram::Word i) const { return size.base + static_cast<pram::Addr>(i); }
  pram::Addr place_addr(pram::Word i) const {
    return place.base + static_cast<pram::Addr>(i);
  }
  pram::Addr pdone_addr(pram::Word i) const {
    return pdone.base + static_cast<pram::Addr>(i);
  }
  pram::Addr out_addr(pram::Word rank0) const {
    return out.base + static_cast<pram::Addr>(rank0);
  }

  // Key order with index tie-breaking, applied to (key, index) pairs already
  // read from memory.
  static bool key_less(pram::Word ka, pram::Word a, pram::Word kb, pram::Word b) {
    return ka < kb || (ka == kb && a < b);
  }
};

// Allocate the layout and load `keys` into it.  `tag` prefixes region names
// so multiple sorts can coexist in one machine.
SortLayout make_sort_layout(pram::Memory& mem, std::span<const pram::Word> keys,
                            const std::string& tag = "qs");

// Read the out region back (after a run).
std::vector<pram::Word> read_output(const pram::Machine& m, const SortLayout& layout);

}  // namespace wfsort::sim
