#include "pramsort/layout.h"

#include "common/check.h"

namespace wfsort::sim {

SortLayout make_sort_layout(pram::Memory& mem, std::span<const pram::Word> keys,
                            const std::string& tag) {
  WFSORT_CHECK(!keys.empty());
  SortLayout l;
  l.n = keys.size();
  l.keys = mem.alloc(tag + " keys", l.n, 0);
  l.child = mem.alloc(tag + " child pointers", 2 * l.n, pram::kEmpty);
  l.size = mem.alloc(tag + " sizes", l.n, 0);
  l.place = mem.alloc(tag + " places", l.n, 0);
  l.pdone = mem.alloc(tag + " place-done flags", l.n, 0);
  l.out = mem.alloc(tag + " output", l.n, 0);
  mem.fill_region(l.keys, std::vector<pram::Word>(keys.begin(), keys.end()));
  return l;
}

std::vector<pram::Word> read_output(const pram::Machine& m, const SortLayout& layout) {
  return m.mem().read_region(layout.out);
}

}  // namespace wfsort::sim
