// Convenience drivers: set up a machine, run a sort program on P virtual
// processors under a given schedule, verify the output.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pram/machine.h"
#include "pramsort/det_programs.h"
#include "pramsort/layout.h"
#include "pramsort/classic_programs.h"
#include "pramsort/lc_layout.h"

namespace wfsort::sim {

struct SimSortResult {
  pram::RunResult run;
  SortLayout layout;
  std::vector<pram::Word> output;
  bool sorted = false;  // output == std::sort(keys)
};

// Deterministic variant (Section 2).
SimSortResult run_det_sort(pram::Machine& m, std::span<const pram::Word> keys,
                           std::uint32_t procs, pram::Scheduler& sched,
                           DetSortConfig cfg = {});

// Synchronous-schedule shorthand.
SimSortResult run_det_sort_sync(pram::Machine& m, std::span<const pram::Word> keys,
                                std::uint32_t procs, DetSortConfig cfg = {});

// Randomized low-contention variant (Section 3).  Requires keys.size() >= 4.
struct LcSimSortResult {
  pram::RunResult run;
  LcSortLayout layout;
  std::vector<pram::Word> output;
  bool sorted = false;
};
LcSimSortResult run_lc_sort(pram::Machine& m, std::span<const pram::Word> keys,
                            std::uint32_t procs, pram::Scheduler& sched);
LcSimSortResult run_lc_sort_sync(pram::Machine& m, std::span<const pram::Word> keys,
                                 std::uint32_t procs);

// Classic barrier-synchronized parallel quicksort (NOT fault-tolerant; the
// E15 baseline).  Deadlocks — i.e. returns with hit_round_cap — if any
// processor is killed before its last barrier.
SimSortResult run_classic_sort(pram::Machine& m, std::span<const pram::Word> keys,
                               std::uint32_t procs, pram::Scheduler& sched,
                               ClassicSortConfig cfg = {});
SimSortResult run_classic_sort_sync(pram::Machine& m, std::span<const pram::Word> keys,
                                    std::uint32_t procs, ClassicSortConfig cfg = {});

}  // namespace wfsort::sim
