// Post-run structural validation of a simulated sort.
//
// Checks the whole chain of invariants the correctness argument rests on —
// not just "output is sorted" but that the intermediate structures are what
// the lemmas say they are:
//   * the pivot tree is a valid BST on (key, index) containing every
//     element exactly once (Lemma 2.5);
//   * every size equals the true subtree size (phase 2);
//   * places form the permutation given by in-order rank (phase 3);
//   * the output array equals the input multiset in sorted order.
// Used by tests and available to experiment harnesses.
#pragma once

#include <string>

#include "pram/machine.h"
#include "pramsort/layout.h"

namespace wfsort::sim {

struct ValidationReport {
  bool ok = true;
  std::string error;  // first violated invariant, human-readable

  explicit operator bool() const { return ok; }
};

// Validate all invariants for a deterministic-layout run rooted at `root`.
ValidationReport validate_sort_run(const pram::Machine& m, const SortLayout& layout,
                                   pram::Word root);

// Weaker check usable for the LC layout too (where the tree's top levels
// are derived rather than stored): output is a sorted permutation of keys.
ValidationReport validate_output_only(const pram::Machine& m, const SortLayout& layout);

}  // namespace wfsort::sim
