#include "pramsort/validate.h"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace wfsort::sim {

namespace {

ValidationReport fail(const char* fmt, long long a = 0, long long b = 0) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), fmt, a, b);
  return ValidationReport{false, buf};
}

}  // namespace

ValidationReport validate_output_only(const pram::Machine& m, const SortLayout& layout) {
  std::vector<pram::Word> keys = m.mem().read_region(layout.keys);
  std::vector<pram::Word> out = m.mem().read_region(layout.out);
  std::sort(keys.begin(), keys.end());
  if (out != keys) return fail("output is not the sorted permutation of the input");
  return {};
}

ValidationReport validate_sort_run(const pram::Machine& m, const SortLayout& layout,
                                   pram::Word root) {
  const auto n = static_cast<std::int64_t>(layout.n);
  const auto key = [&](pram::Word i) { return m.mem().peek(layout.key_addr(i)); };
  const auto child = [&](pram::Word i, int side) {
    return m.mem().peek(layout.child_addr(i, side));
  };

  // 1. BST property + exactly-once reachability (Lemma 2.5).
  std::vector<int> seen(layout.n, 0);
  struct Frame {
    pram::Word node;
    bool has_lo, has_hi;
    pram::Word lo_key, lo_idx, hi_key, hi_idx;  // open (key, index) interval
  };
  std::vector<Frame> stack{{root, false, false, 0, 0, 0, 0}};
  std::int64_t visited = 0;
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    if (f.node == pram::kEmpty) continue;
    if (f.node < 0 || f.node >= n) return fail("child pointer out of range: %lld", f.node);
    if (seen[static_cast<std::size_t>(f.node)]++ != 0) {
      return fail("element %lld reachable twice (tree is not a tree)", f.node);
    }
    ++visited;
    const pram::Word k = key(f.node);
    const auto less = [](pram::Word ka, pram::Word a, pram::Word kb, pram::Word b) {
      return ka < kb || (ka == kb && a < b);
    };
    if (f.has_lo && !less(f.lo_key, f.lo_idx, k, f.node)) {
      return fail("BST violation below element %lld", f.node);
    }
    if (f.has_hi && !less(k, f.node, f.hi_key, f.hi_idx)) {
      return fail("BST violation below element %lld", f.node);
    }
    Frame small{child(f.node, SortLayout::kSmall), f.has_lo, true,
                f.lo_key,  f.lo_idx,              k,        f.node};
    Frame big{child(f.node, SortLayout::kBig), true, f.has_hi, k, f.node,
              f.hi_key,  f.hi_idx};
    stack.push_back(small);
    stack.push_back(big);
  }
  if (visited != n) return fail("tree holds %lld of %lld elements", visited, n);

  // 2. Sizes are true subtree sizes (phase 2), computed bottom-up here.
  {
    std::vector<std::int64_t> true_size(layout.n, -1);
    struct SFrame {
      pram::Word node;
      std::uint8_t stage;
    };
    std::vector<SFrame> st{{root, 0}};
    while (!st.empty()) {
      SFrame f = st.back();
      st.pop_back();
      if (f.node == pram::kEmpty) continue;
      if (f.stage == 0) {
        st.push_back({f.node, 1});
        st.push_back({child(f.node, 0), 0});
        st.push_back({child(f.node, 1), 0});
      } else {
        const auto sz = [&](pram::Word c) {
          return c == pram::kEmpty ? 0 : true_size[static_cast<std::size_t>(c)];
        };
        true_size[static_cast<std::size_t>(f.node)] =
            sz(child(f.node, 0)) + sz(child(f.node, 1)) + 1;
      }
    }
    for (std::int64_t i = 0; i < n; ++i) {
      const pram::Word recorded = m.mem().peek(layout.size_addr(i));
      if (recorded != true_size[static_cast<std::size_t>(i)]) {
        return fail("size of element %lld is %lld, disagrees with the tree", i, recorded);
      }
    }
  }

  // 3. Places = in-order ranks, a permutation of 1..N (phase 3).
  {
    std::vector<int> used(layout.n + 1, 0);
    // In-order traversal assigning expected ranks.
    struct PFrame {
      pram::Word node;
      bool expanded;
    };
    std::vector<PFrame> st{{root, false}};
    std::int64_t rank = 0;
    while (!st.empty()) {
      PFrame f = st.back();
      st.pop_back();
      if (f.node == pram::kEmpty) continue;
      if (!f.expanded) {
        st.push_back({child(f.node, SortLayout::kBig), false});
        st.push_back({f.node, true});
        st.push_back({child(f.node, SortLayout::kSmall), false});
      } else {
        ++rank;
        const pram::Word pl = m.mem().peek(layout.place_addr(f.node));
        if (pl != rank) return fail("place of element %lld is %lld, not its rank", f.node, pl);
        if (pl < 1 || pl > n || used[static_cast<std::size_t>(pl)]++ != 0) {
          return fail("place %lld duplicated or out of range", pl);
        }
      }
    }
  }

  // 4. Output = sorted input.
  return validate_output_only(m, layout);
}

}  // namespace wfsort::sim
