#include "pramsort/classic_programs.h"

#include "pramsort/det_programs.h"

namespace wfsort::sim {

pram::Task classic_sort_worker(pram::Ctx& ctx, const SortLayout& l, pram::PramBarrier barrier,
                               ClassicSortConfig cfg) {
  const pram::Word root = 0;
  const std::uint32_t pid = ctx.pid();

  // Phase 1: static ownership — processor p inserts elements p, p+P, ...
  // No WAT, no helping: if p dies, its elements are simply never inserted.
  for (std::uint64_t i = pid; i < l.n; i += cfg.procs) {
    co_await build_tree(ctx, l, static_cast<pram::Word>(i), root);
  }
  co_await pram::barrier_wait(ctx, barrier);

  // Phases 2 and 3 reuse the shared traversals; the barrier between them is
  // what makes Figure 6's placed-prune safe here (lockstep phase entry).
  co_await tree_sum_prog(ctx, l, root);
  co_await pram::barrier_wait(ctx, barrier);
  co_await find_place_prog(ctx, l, root, cfg.prune);
  co_await pram::barrier_wait(ctx, barrier);
}

}  // namespace wfsort::sim
