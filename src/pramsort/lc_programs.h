// The randomized low-contention sort (paper Section 3) as PRAM programs.
//
// Pipeline per processor (all stages wait-free or terminating w.h.p.):
//   A. group pre-sort — the processor's group runs the deterministic
//      algorithm on its S-element slice (Section 2 reused verbatim; the
//      group's tree lives in separate g* regions so it cannot collide with
//      the main pivot tree);
//   B. winner selection — Figure 9's tournament with geometric waves;
//   C/D. fattening — write-most copies the winner's sorted slice into the
//      fat tree (S nodes x C copies of *element indices*);
//   E. insertion — every non-winner element enters the main pivot tree,
//      descending the fat tree's random copies for the top levels (LC-WAT
//      allocates the work, which also randomizes insertion order);
//   F/G. randomized summation and placement (Section 3.3), probing random
//      elements; places propagate down, DONE up, ALLDONE down.
//
// The winner slice's top-of-tree structure is *derived*, not stitched: a
// probe that lands on a winner-slice element computes its fat-tree position
// from its slice rank (gplace) and reads its neighbours from the
// authoritative sorted slice (gout).  This avoids an O(S) per-processor
// stitching pass that would break the O(log N) running time.
#pragma once

#include <cstdint>

#include "pram/machine.h"
#include "pram/subtask.h"
#include "pramsort/lc_layout.h"

namespace wfsort::sim {

// Mark values for the sum/place announcement arrays.
inline constexpr pram::Word kMarkEmpty = 0;
inline constexpr pram::Word kMarkDone = 1;
inline constexpr pram::Word kMarkAllDone = 2;

// SubTask subroutines take the layout by const reference (see the note in
// workalloc/wat_program.h); the root lc_sort_worker owns the copy.

// Figure 9: returns the winning candidate (a group id).
pram::SubTask<pram::Word> select_winner_prog(pram::Ctx& ctx, const LcSortLayout& l,
                                             pram::Word candidate);

// Write-most: copy log P random fat-tree cells from the winner's slice.
pram::SubTask<void> write_most_fat_prog(pram::Ctx& ctx, const LcSortLayout& l, std::uint32_t w);

// Structural children of element e (fat-derived for winner-slice elements).
struct Kids {
  pram::Word small = pram::kEmpty;
  pram::Word big = pram::kEmpty;
};
pram::SubTask<Kids> lc_children_prog(pram::Ctx& ctx, const LcSortLayout& l, pram::Word e,
                                     std::uint32_t w);

// Fat-tree descent followed by the Figure-4 CAS loop.
pram::SubTask<void> lc_insert_prog(pram::Ctx& ctx, const LcSortLayout& l, pram::Word i,
                                   std::uint32_t w);

// Randomized phases 2 and 3 (Section 3.3).
pram::SubTask<void> lc_sum_prog(pram::Ctx& ctx, const LcSortLayout& l, std::uint32_t w,
                                pram::Word root);
pram::SubTask<void> lc_place_prog(pram::Ctx& ctx, const LcSortLayout& l, std::uint32_t w,
                                  pram::Word root);

// The complete worker.
pram::Task lc_sort_worker(pram::Ctx& ctx, const LcSortLayout& l);

}  // namespace wfsort::sim
