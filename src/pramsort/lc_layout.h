// Memory layout of the randomized low-contention sort (paper Section 3) on
// the simulated PRAM.
//
// Beyond the main SortLayout it adds: per-group pivot-tree arrays for the
// slice pre-sorts (indexed by global element id; the slices are the first
// groups*slice elements), per-group WATs, the winner-selection tree, the fat
// tree (slice_len nodes x copies cells, holding element indices), the LC-WAT
// that allocates phase-1 insertions, and the DONE/ALLDONE mark arrays of the
// randomized summation and placement phases.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bits.h"
#include "pram/machine.h"
#include "pramsort/layout.h"
#include "workalloc/lcwat_program.h"
#include "workalloc/wat_program.h"

namespace wfsort::sim {

struct LcSortLayout {
  SortLayout main;
  std::uint32_t procs = 0;
  std::uint32_t groups = 0;     // G
  std::uint32_t levels = 0;     // H: fat-tree levels
  std::uint64_t slice = 0;      // S = 2^H - 1 elements per pre-sorted slice
  std::uint32_t copies = 0;     // C: duplicates per fat node
  std::uint32_t wait_unit = 2;  // K of Figure 9 (yield rounds per wait unit)

  pram::Region gchild;  // 2 * G * S
  pram::Region gsize;   // G * S
  pram::Region gplace;  // G * S
  pram::Region gout;    // G * S; holds GLOBAL element indices in sorted order
  pram::Region winner;  // tournament tree over next_pow2(procs) leaves
  pram::Region fat;     // S * C cells, kEmpty until write-most fills them
  pram::Region sum_marks;    // n: 0 empty / 1 done / 2 alldone
  pram::Region place_marks;  // n
  std::vector<PramWat> gwats;  // one WAT per group (slice pre-sort)
  PramLcWat insert_wat;        // allocation of the main insertion stage

  // Group-array addressing is by global element id e in [0, G*S).
  pram::Addr gchild_addr(pram::Word e, int side) const {
    return gchild.base + 2 * static_cast<pram::Addr>(e) + static_cast<pram::Addr>(side);
  }
  pram::Addr gsize_addr(pram::Word e) const {
    return gsize.base + static_cast<pram::Addr>(e);
  }
  pram::Addr gplace_addr(pram::Word e) const {
    return gplace.base + static_cast<pram::Addr>(e);
  }
  pram::Addr gout_addr(std::uint32_t group, std::uint64_t rank) const {
    return gout.base + static_cast<pram::Addr>(group) * slice + rank;
  }
  pram::Addr fat_addr(std::uint64_t cell) const { return fat.base + cell; }
  pram::Addr sum_mark_addr(pram::Word e) const {
    return sum_marks.base + static_cast<pram::Addr>(e);
  }
  pram::Addr place_mark_addr(pram::Word e) const {
    return place_marks.base + static_cast<pram::Addr>(e);
  }

  bool in_winner_slice(pram::Word e, std::uint32_t w) const {
    const pram::Word lo = static_cast<pram::Word>(w) * static_cast<pram::Word>(slice);
    return e >= lo && e < lo + static_cast<pram::Word>(slice);
  }
  std::uint32_t group_of_proc(pram::ProcId pid) const {
    return static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(pid) * groups / procs);
  }
};

// Parameter selection mirrors the native engine: S = 2^H - 1 <= sqrt(N),
// G = min(ceil'(sqrt(P)), N / S), C = max(1, P / S) so that S * C ~ P cells
// (the paper's sqrt(P) copies when P = N).
LcSortLayout make_lc_sort_layout(pram::Machine& m, std::span<const pram::Word> keys,
                                 std::uint32_t procs);

}  // namespace wfsort::sim
