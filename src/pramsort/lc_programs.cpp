#include "pramsort/lc_programs.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "lowcontention/fat_tree.h"
#include "pramsort/det_programs.h"

namespace wfsort::sim {

namespace {

constexpr int kSmall = SortLayout::kSmall;
constexpr int kBig = SortLayout::kBig;

// A SortLayout view of the group arrays: same global element addressing,
// child/size/place redirected into the g* regions.  Lets stage A reuse the
// Section-2 programs verbatim.
SortLayout group_view(const LcSortLayout& l) {
  SortLayout v;
  v.n = l.main.n;
  v.keys = l.main.keys;
  v.child = l.gchild;
  v.size = l.gsize;
  v.place = l.gplace;
  v.out = l.gout;  // unused by build/sum; group_find_place handles output itself
  return v;
}

pram::SubTask<void> noop_job(pram::Ctx& ctx) {
  (void)ctx;
  co_return;
}

// Group phase 3: like Figure 6 on the group arrays, but emits the *global
// element index* at each rank into gout — the fat tree and all fallback
// reads are served from this array.
pram::SubTask<void> group_find_place_prog(pram::Ctx& ctx, const LcSortLayout& l, std::uint32_t g) {
  struct Frame {
    pram::Word node;
    pram::Word sub;
  };
  const pram::Word groot = static_cast<pram::Word>(g) * static_cast<pram::Word>(l.slice);
  std::vector<Frame> stack{{groot, 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    if (f.node == pram::kEmpty) continue;
    const pram::Word small = co_await ctx.read(l.gchild_addr(f.node, kSmall));
    pram::Word s = 0;
    if (small != pram::kEmpty) s = co_await ctx.read(l.gsize_addr(small));
    const pram::Word pl = f.sub + s + 1;
    co_await ctx.write(l.gplace_addr(f.node), pl);
    co_await ctx.write(l.gout_addr(g, static_cast<std::uint64_t>(pl - 1)), f.node);
    const pram::Word big = co_await ctx.read(l.gchild_addr(f.node, kBig));
    stack.push_back({small, f.sub});
    stack.push_back({big, f.sub + s + 1});
  }
}

bool fat_is_interior(const LcSortLayout& l, std::uint64_t f) { return 2 * f + 1 < l.slice; }

}  // namespace

pram::SubTask<pram::Word> select_winner_prog(pram::Ctx& ctx, const LcSortLayout& l,
                                             pram::Word candidate) {
  const HeapTree t(next_pow2(l.procs));
  const std::uint32_t depth = t.depth();

  // Geometric pre-wait: wave s (about 2^s processors) leaves after
  // K*(log P - s) idle rounds.
  std::uint32_t s = 0;
  while (s < depth && ctx.rng().coin()) ++s;
  const std::uint64_t waits = static_cast<std::uint64_t>(l.wait_unit) * (depth - s);
  for (std::uint64_t k = 0; k < waits; ++k) (void)co_await ctx.yield();

  std::uint64_t j = t.leaf(ctx.pid() % t.leaves);
  pram::Word v = pram::kEmpty;
  while (true) {
    v = co_await ctx.read(l.winner.base + j);
    if (v != pram::kEmpty || t.is_root(j)) break;
    j = t.parent(j);
  }
  if (t.is_root(j) && v == pram::kEmpty) {
    const pram::Word old = co_await ctx.cas(l.winner.base + t.root(), pram::kEmpty, candidate);
    v = (old == pram::kEmpty) ? candidate : old;
  }
  if (!t.is_leaf(j)) {
    co_await ctx.write(l.winner.base + t.left(j), v);
    co_await ctx.write(l.winner.base + t.right(j), v);
  }
  co_return v;
}

pram::SubTask<void> write_most_fat_prog(pram::Ctx& ctx, const LcSortLayout& l, std::uint32_t w) {
  const std::uint64_t cells = l.slice * l.copies;
  const std::uint64_t quota = log2_ceil(std::uint64_t{l.procs} + 1) + 1;
  for (std::uint64_t q = 0; q < quota; ++q) {
    const std::uint64_t cell = ctx.rng().below(cells);
    const std::uint64_t node = cell / l.copies;
    const std::uint64_t rank = FatTree::rank_of_node(l.levels, node);
    const pram::Word val = co_await ctx.read(l.gout_addr(w, rank));
    co_await ctx.write(l.fat_addr(cell), val);
  }
}

pram::SubTask<Kids> lc_children_prog(pram::Ctx& ctx, const LcSortLayout& l, pram::Word e,
                                     std::uint32_t w) {
  Kids k;
  if (l.in_winner_slice(e, w)) {
    const pram::Word pl = co_await ctx.read(l.gplace_addr(e));
    WFSORT_DCHECK(pl > 0);  // the winner slice is fully placed by stage A
    const std::uint64_t f =
        FatTree::node_of_rank(l.levels, static_cast<std::uint64_t>(pl - 1));
    if (fat_is_interior(l, f)) {
      k.small = co_await ctx.read(l.gout_addr(w, FatTree::rank_of_node(l.levels, 2 * f + 1)));
      k.big = co_await ctx.read(l.gout_addr(w, FatTree::rank_of_node(l.levels, 2 * f + 2)));
      co_return k;
    }
    // Fat leaves hand off to the main pivot tree below.
  }
  k.small = co_await ctx.read(l.main.child_addr(e, kSmall));
  k.big = co_await ctx.read(l.main.child_addr(e, kBig));
  co_return k;
}

pram::SubTask<void> lc_insert_prog(pram::Ctx& ctx, const LcSortLayout& l, pram::Word i,
                                   std::uint32_t w) {
  const pram::Word ikey = co_await ctx.read(l.main.key_addr(i));
  std::uint64_t f = 0;
  pram::Word handoff = pram::kEmpty;
  while (true) {
    const std::uint64_t copy = ctx.rng().below(l.copies);
    pram::Word v = co_await ctx.read(l.fat_addr(f * l.copies + copy));
    if (v == pram::kEmpty) {
      // Write-most missed this copy: fall back to the authoritative slice.
      v = co_await ctx.read(l.gout_addr(w, FatTree::rank_of_node(l.levels, f)));
    }
    if (!fat_is_interior(l, f)) {
      handoff = v;
      break;
    }
    const pram::Word vkey = co_await ctx.read(l.main.key_addr(v));
    f = SortLayout::key_less(ikey, i, vkey, v) ? 2 * f + 1 : 2 * f + 2;
  }
  co_await build_tree(ctx, l.main, i, handoff);
}

pram::SubTask<void> lc_sum_prog(pram::Ctx& ctx, const LcSortLayout& l, std::uint32_t w,
                                pram::Word root) {
  const std::uint64_t n = l.main.n;
  while (true) {
    const pram::Word e = static_cast<pram::Word>(ctx.rng().below(n));
    const pram::Word v = co_await ctx.read(l.sum_mark_addr(e));

    if (v == kMarkEmpty) {
      const Kids k = co_await lc_children_prog(ctx, l, e, w);
      bool l_done = true, r_done = true;
      if (k.small != pram::kEmpty) {
        l_done = (co_await ctx.read(l.sum_mark_addr(k.small))) != kMarkEmpty;
      }
      if (k.big != pram::kEmpty) {
        r_done = (co_await ctx.read(l.sum_mark_addr(k.big))) != kMarkEmpty;
      }
      if (l_done && r_done) {
        pram::Word total = 1;
        if (k.small != pram::kEmpty) total += co_await ctx.read(l.main.size_addr(k.small));
        if (k.big != pram::kEmpty) total += co_await ctx.read(l.main.size_addr(k.big));
        co_await ctx.write(l.main.size_addr(e), total);
        co_await ctx.write(l.sum_mark_addr(e), e == root ? kMarkAllDone : kMarkDone);
      }
      continue;
    }
    if (v == kMarkAllDone) {
      const Kids k = co_await lc_children_prog(ctx, l, e, w);
      if (k.small != pram::kEmpty || k.big != pram::kEmpty) {
        if (k.small != pram::kEmpty) co_await ctx.write(l.sum_mark_addr(k.small), kMarkAllDone);
        if (k.big != pram::kEmpty) co_await ctx.write(l.sum_mark_addr(k.big), kMarkAllDone);
        co_return;
      }
      if (e == root) co_return;  // degenerate single-element tree
    }
  }
}

pram::SubTask<void> lc_place_prog(pram::Ctx& ctx, const LcSortLayout& l, std::uint32_t w,
                                  pram::Word root) {
  const std::uint64_t n = l.main.n;
  while (true) {
    const pram::Word e = static_cast<pram::Word>(ctx.rng().below(n));
    const pram::Word v = co_await ctx.read(l.place_mark_addr(e));
    const Kids k = co_await lc_children_prog(ctx, l, e, w);

    if (v == kMarkAllDone) {
      if (k.small != pram::kEmpty || k.big != pram::kEmpty) {
        if (k.small != pram::kEmpty) {
          co_await ctx.write(l.place_mark_addr(k.small), kMarkAllDone);
        }
        if (k.big != pram::kEmpty) co_await ctx.write(l.place_mark_addr(k.big), kMarkAllDone);
        co_return;
      }
      if (e == root) co_return;
      continue;
    }

    pram::Word pl = co_await ctx.read(l.main.place_addr(e));
    if (e == root && pl == 0) {
      pram::Word s = 0;
      if (k.small != pram::kEmpty) s = co_await ctx.read(l.main.size_addr(k.small));
      pl = s + 1;
      co_await ctx.write(l.main.place_addr(e), pl);
      const pram::Word key = co_await ctx.read(l.main.key_addr(e));
      co_await ctx.write(l.main.out_addr(pl - 1), key);
    }

    if (pl > 0) {
      // Downward rule: place unplaced children.
      if (k.small != pram::kEmpty) {
        const pram::Word cpl = co_await ctx.read(l.main.place_addr(k.small));
        if (cpl == 0) {
          const Kids gk = co_await lc_children_prog(ctx, l, k.small, w);
          pram::Word sz = 0;
          if (gk.big != pram::kEmpty) sz = co_await ctx.read(l.main.size_addr(gk.big));
          const pram::Word npl = pl - sz - 1;
          co_await ctx.write(l.main.place_addr(k.small), npl);
          const pram::Word key = co_await ctx.read(l.main.key_addr(k.small));
          co_await ctx.write(l.main.out_addr(npl - 1), key);
        }
      }
      if (k.big != pram::kEmpty) {
        const pram::Word cpl = co_await ctx.read(l.main.place_addr(k.big));
        if (cpl == 0) {
          const Kids gk = co_await lc_children_prog(ctx, l, k.big, w);
          pram::Word sz = 0;
          if (gk.small != pram::kEmpty) sz = co_await ctx.read(l.main.size_addr(gk.small));
          const pram::Word npl = pl + sz + 1;
          co_await ctx.write(l.main.place_addr(k.big), npl);
          const pram::Word key = co_await ctx.read(l.main.key_addr(k.big));
          co_await ctx.write(l.main.out_addr(npl - 1), key);
        }
      }
      // Upward rule: announce DONE once placed and children announced.
      if (v == kMarkEmpty) {
        bool l_done = true, r_done = true;
        if (k.small != pram::kEmpty) {
          l_done = (co_await ctx.read(l.place_mark_addr(k.small))) != kMarkEmpty;
        }
        if (k.big != pram::kEmpty) {
          r_done = (co_await ctx.read(l.place_mark_addr(k.big))) != kMarkEmpty;
        }
        if (l_done && r_done) {
          co_await ctx.write(l.place_mark_addr(e), e == root ? kMarkAllDone : kMarkDone);
        }
      }
    }
  }
}

pram::Task lc_sort_worker(pram::Ctx& ctx, const LcSortLayout& l) {
  const std::uint32_t g = l.group_of_proc(ctx.pid());
  const pram::Word groot = static_cast<pram::Word>(g) * static_cast<pram::Word>(l.slice);
  const SortLayout gview = group_view(l);

  // Stage A: group pre-sort (Section 2 on the slice).
  // Job functors are hoisted into named locals: GCC 12 miscompiles prvalue
  // non-trivial arguments to a coroutine called from another coroutine
  // (double-destroy of the parameter copy).
  const std::uint32_t per_group = std::max<std::uint32_t>(1, l.procs / l.groups);
  PramJobFn group_job = [gview, groot](pram::Ctx& c, std::uint64_t j) {
    return build_tree(c, gview, groot + static_cast<pram::Word>(j), groot);
  };
  co_await wat_skeleton(ctx, l.gwats[g], per_group, group_job);
  co_await tree_sum_prog(ctx, gview, groot);
  co_await group_find_place_prog(ctx, l, g);

  // Stage B: winner selection.
  const pram::Word w64 = co_await select_winner_prog(ctx, l, static_cast<pram::Word>(g));
  const std::uint32_t w = static_cast<std::uint32_t>(w64);

  // Stage C/D: fatten the winner's slice.
  co_await write_most_fat_prog(ctx, l, w);
  const pram::Word root =
      co_await ctx.read(l.gout_addr(w, FatTree::rank_of_node(l.levels, 0)));

  // Stage E: insert all remaining elements (LC-WAT allocation).
  PramJobFn insert_job = [l, w](pram::Ctx& c, std::uint64_t j) {
    const pram::Word e = static_cast<pram::Word>(j);
    if (l.in_winner_slice(e, w)) return noop_job(c);
    return lc_insert_prog(c, l, e, w);
  };
  co_await lcwat_skeleton(ctx, l.insert_wat, insert_job);

  // Stages F, G.
  co_await lc_sum_prog(ctx, l, w, root);
  co_await lc_place_prog(ctx, l, w, root);
}

}  // namespace wfsort::sim
