// The deterministic wait-free sort (paper Section 2) as PRAM programs.
//
// Every shared-memory access of Figures 4-6 is a co_await, so the machine's
// round counter and contention meter measure exactly what the paper's
// lemmas talk about.  Local computation (stack bookkeeping, comparisons on
// values already read) is free, per the PRAM cost model.
#pragma once

#include <cstdint>

#include "pram/machine.h"
#include "pram/subtask.h"
#include "pramsort/layout.h"
#include "workalloc/wat_program.h"

namespace wfsort::sim {

// Phase-3 pruning policy (see core/options.h for the full discussion):
// kNone never prunes, kPlaced is Figure 6's rule (sound only under faultless
// lockstep entry), kCompleted prunes on bottom-up completion flags (sound
// under crashes, shares the remaining work; the default).
enum class PlacePrune { kNone, kPlaced, kCompleted };

struct DetSortConfig {
  std::uint32_t procs = 1;
  PlacePrune prune = PlacePrune::kCompleted;
  bool random_first = false;  // Section 2.3's randomized phase-1 work pickup
  // Spread processors with raw PID bits only (the paper's literal rule;
  // depths beyond log P then all descend SMALL first) instead of hashed
  // decision bits.  For the E12 ablation.
  bool raw_pid_spread = false;
};

// The SubTask subroutines below take the layout by const reference (see the
// note in workalloc/wat_program.h): the caller's frame owns the referent and
// outlives the immediately-awaited subroutine, and the frames stay free of
// Region/std::string copies.

// Figure 4.  Insert element i, descending from `root`.
pram::SubTask<void> build_tree(pram::Ctx& ctx, const SortLayout& l, pram::Word i,
                               pram::Word root);

// Figure 5.  Sum every subtree reachable from `root`; PID bits spread
// processors across children.  Returns the root's size.
pram::SubTask<pram::Word> tree_sum_prog(pram::Ctx& ctx, const SortLayout& l, pram::Word root);

// Figure 6 plus output emission: compute places and write each key to its
// rank in `out`.
pram::SubTask<void> find_place_prog(pram::Ctx& ctx, const SortLayout& l, pram::Word root,
                                    PlacePrune prune, bool raw_pid_spread = false);

// Section 2.3's randomized work pickup: insert random un-DONE elements until
// log2(N) consecutive picks were already DONE, then fall back to
// next_element.  Ensures the top of the pivot tree is a uniform sample even
// for adversarial inputs.
pram::SubTask<void> random_first_build(pram::Ctx& ctx, const SortLayout& l,
                                       const PramWat& wat, std::uint32_t nprocs,
                                       pram::Word root);

// The complete three-phase worker (Figure 2 skeleton + phases 2 and 3).
pram::Task det_sort_worker(pram::Ctx& ctx, const SortLayout& l, const PramWat& wat,
                           DetSortConfig cfg);

}  // namespace wfsort::sim
