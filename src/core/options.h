// Public configuration and statistics types of the wait-free sorter.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "telemetry/recorder.h"
#include "telemetry/report.h"

namespace wfsort {

enum class Variant {
  // Section 2: WAT work allocation, direct pivot-tree construction.
  // Optimal time; the root of the pivot tree is an O(P) hot-spot.
  kDeterministic,
  // Section 3: randomized low-contention construction — group pre-sort,
  // winner selection, fat pivot-tree top filled by write-most, LC-WAT-style
  // randomized summation/placement.  O(sqrt P) contention w.h.p.
  kLowContention,
};

// How phase 3 skips subtrees other workers already handled.  Figure 6
// prunes when the subtree root's place is set (kYes), but place propagates
// top-down, so the rule is only sound under faultless lockstep entry — a
// crash (or mere phase-entry skew) strands or serializes the claimed
// subtree.  kNo never prunes (every worker re-traverses everything,
// trivially safe).  kDone — the default — prunes on an explicit bottom-up
// completion flag instead, which is crash-safe AND lets workers share the
// remaining work; bench fig_e12 quantifies all three.
enum class PrunePlaced { kNo, kYes, kDone };

// How the deterministic variant turns the unsorted input into placeable
// structure (phase 1).
//
// kTree is the paper's CAS pivot-tree insertion: optimal own-step bound,
// but every element pays a root-to-leaf pointer chase with a CAS at the
// end — the dominant cost of the sequential gap vs std::sort.
//
// kPartition replaces the tree with a blocked in-place parallel partition
// (Kuszmaul–Westover style blocks against SPMS-style sampled splitters):
// WAT-claimed chunks are histogrammed against deterministic splitters,
// scattered into per-bucket regions, and each bucket is finished with the
// sequential leaf sort — three linear passes of streaming work instead of
// N log N cache-missing descents.  Work allocation and crash recovery stay
// on the batched WAT for all three passes, so the 14·N·log2(N) own-step
// certificate holds on this variant too (test_waitfree_cert), and the
// output order (key, then index) is identical to kTree's.  The
// low-contention variant ignores this knob.  docs/native_engine.md
// "Closing the gap" has the diagram and measurements.
enum class Phase1 { kTree, kPartition };

struct Options {
  std::uint32_t threads = 0;  // 0 = std::thread::hardware_concurrency()
  Variant variant = Variant::kDeterministic;
  PrunePlaced prune = PrunePlaced::kDone;
  Phase1 phase1 = Phase1::kTree;
  std::uint64_t seed = 0x50535a97ULL;  // randomized-variant randomness

  // Low-contention variant: duplicates per fat-tree node (0 = automatic,
  // ~sqrt(threads)).  More copies divide top-level read pressure further at
  // the cost of more write-most traffic.
  std::uint32_t lc_copies = 0;

  // Phase-1 job batching — the paper's K in Lemma 2.7 (O(N/P (log N + K))
  // work allocation): each WAT leaf hands out a contiguous run of this many
  // elements, so one WAT traversal is amortized over the run and the run's
  // descents are interleaved with prefetching (build_batch).  1 = the seed's
  // one-job-per-traversal behaviour.  Default measured on the tracked bench
  // host (docs/native_engine.md).
  std::uint32_t wat_batch = 32;

  // Phase-3 sequential cutoff: a subtree of at most this many elements is
  // placed and emitted by one local in-order walk (streaming writes, no
  // per-node frames or completion flags) by whichever worker reaches it
  // first; the block's completion flag is published only after the walk, so
  // duplicated or crashed walkers are harmless and nobody waits (the walk is
  // idempotent).  0 disables.  Default measured (docs/native_engine.md).
  std::uint64_t seq_cutoff = 128;

  // Low-contention variant: node budget for one randomized summation /
  // placement probe.  A probe that lands on actionable work expands it into
  // a bounded local tree walk of at most this many node visits instead of
  // returning to uniform probing after a single node — the walk stays
  // idempotent and every visit still polls the fault checkpoint, so
  // wait-freedom is untouched.  1 = the paper's literal one-node probes.
  std::uint32_t lc_burst = 64;

  // Low-contention variant: bounded exponential backoff on a lost install
  // CAS during stage-E insertion.  A descent that loses its k-th CAS spins
  // min(2^k, 2^backoff_limit) pause iterations before re-probing, keeping
  // repeat losers off the contended line.  0 disables (the deterministic
  // variant never backs off: its loss rate is the measurement).
  std::uint32_t backoff_limit = 6;

  // Observability (docs/observability.md).  kOff — the default — costs the
  // hot path one null-pointer test per instrumentation site; kPhases records
  // per-worker, per-phase wall-time spans; kFull adds per-site contention
  // counters and per-element CAS-retry / WAT-probe histograms, accumulated
  // in per-worker scratch.  The finished report hangs off SortStats.
  telemetry::Level telemetry = telemetry::Level::kOff;

  // Flight-recorder depth: events retained per worker ring (rounded up to a
  // power of two internally; exact logical window).  Only meaningful when
  // telemetry != kOff — at kOff no Recorder (and hence no ring) exists.
  // 0 disables the rings while keeping spans/counters.
  std::uint32_t ring_capacity = telemetry::Recorder::kDefaultRingCapacity;

  // Live monitor (docs/observability.md): when `monitor_interval_ms` > 0 and
  // `monitor_path` is non-empty, the sort runs a sampler thread that reads
  // the flight-recorder rings every interval and appends one
  // "wfsort-monitor-v1" JSONL session to the file.  The sampler only ever
  // touches the rings' seqlock snapshots — workers never block on it.
  // Requires telemetry != kOff.
  std::uint32_t monitor_interval_ms = 0;
  std::string monitor_path{};

  std::uint32_t resolved_threads() const {
    if (threads != 0) return threads;
    // hardware_concurrency() can cost a syscall on some libstdc++ builds;
    // the machine shape doesn't change mid-process, so resolve it once.
    static const std::uint32_t hw = [] {
      const unsigned v = std::thread::hardware_concurrency();
      return v == 0 ? 1u : static_cast<std::uint32_t>(v);
    }();
    return hw;
  }
};

struct SortStats {
  std::uint64_t n = 0;
  std::uint32_t workers = 0;
  std::uint32_t crashed_workers = 0;    // fault-injected exits
  std::uint32_t completed_workers = 0;  // workers that ran all phases

  // Lemma 2.4: the build_tree loop runs at most N-1 times per element.
  std::uint64_t max_build_iters = 0;
  std::uint64_t total_build_iters = 0;

  // Depth of the Quicksort pivot tree (O(log N) w.h.p. on random input).
  std::uint32_t tree_depth = 0;

  // Failed CAS attempts during tree building (a native proxy for phase-1
  // memory contention), and the successful installs they raced against
  // (always N-1 on a completed run: one install per non-root element).
  std::uint64_t cas_failures = 0;
  std::uint64_t cas_successes = 0;

  // Low-contention variant: fat-tree reads that hit an unfilled copy and
  // fell back to the authoritative slice (see FatTree::read).
  std::uint64_t fat_read_misses = 0;

  // Wall-clock milliseconds spent in each phase, maximum over the workers
  // that completed (the critical path through a phase).  For the
  // low-contention variant phase1 covers stages A-E and the remaining two
  // map to the randomized summation / placement probes.
  double phase1_ms = 0.0;
  double phase2_ms = 0.0;
  double phase3_ms = 0.0;

  // The run's telemetry snapshot, when Options::telemetry asked for one;
  // null at Level::kOff and while the run is still live (the snapshot is
  // taken after the workers join).  Shared so SortStats stays copyable.
  std::shared_ptr<const telemetry::Report> telemetry;
};

}  // namespace wfsort
