// Shared state of one sort: the pivot tree threaded through the input.
//
// Mirrors Figure 3 of the paper, but in *packed record* form rather than the
// paper's (and our seed's) parallel arrays: each element owns one
// cache-line-aligned PackedNode holding both child slots, the subtree size,
// the final place (1-based rank; 0 = not yet known), the phase-3 completion
// flag and a private copy of the key.  A descent step, a summation visit or
// a placement visit therefore costs ONE cache miss where the
// structure-of-arrays layout cost up to four (child array, size array, place
// array, key array), and place emission reads the key from the line the
// visit already loaded.  This is a deliberate, documented deviation from the
// paper's in-array threading (docs/native_engine.md); the algorithm and all
// of its invariants are unchanged.
//
// Keys are copied into the records at construction and never modified while
// the sort runs, which also makes the caller's buffer write-only for the
// rest of the sort — the engine exploits that to overlap output copy-back
// with straggling workers.  The sorted result is assembled into `out`
// (indexed by rank) and copied back after at least one worker finished.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "common/arena.h"
#include "common/check.h"

namespace wfsort::detail {

inline constexpr std::int64_t kNoIdx = -1;

enum Side : int { kSmall = 0, kBig = 1 };

// One pivot-tree node.  64-byte aligned so any key type up to 23 bytes keeps
// the whole record inside a single cache line (larger keys pad to two lines,
// still one line better than four scattered arrays).
template <typename Key>
struct alignas(64) PackedNode {
  std::atomic<std::int64_t> child[2];       // kNoIdx = EMPTY; write-once
  std::atomic<std::int64_t> size;           // 0 = unknown
  std::atomic<std::int64_t> place;          // 0 = unknown, else 1-based rank
  Key key;                                  // immutable copy, set before workers start
  std::atomic<std::uint8_t> place_done;     // PrunePlaced::kDone flag
};

template <typename Key, typename Compare>
struct TreeState {
  static_assert(std::is_trivially_copyable_v<Key>,
                "the wait-free sorter assembles its output with atomic element "
                "stores; sort records must be trivially copyable (sort indices "
                "or pointers for heavyweight payloads)");

  std::span<const Key> keys;  // the caller's buffer; read only at construction
  Compare cmp;
  // Pivot-tree root element: 0 for the deterministic variant; the fat-tree
  // root chosen at runtime by the low-contention variant (every worker
  // stores the same value, so the atomic is only for data-race freedom).
  std::atomic<std::int64_t> root{0};

  ArenaArray<PackedNode<Key>> nodes;  // one record per element
  ArenaArray<std::atomic<Key>> out;   // sorted result (index place-1)

  TreeState(std::span<const Key> k, Compare c)
      : keys(k), cmp(c), nodes(k.size()), out(k.size()) {
    init();
  }

  // Pooled form: records and output borrow RunArena storage.
  TreeState(std::span<const Key> k, Compare c, RunArena& arena)
      : keys(k), cmp(c), nodes(k.size(), arena), out(k.size(), arena) {
    init();
  }

  void init() {
    const std::span<const Key> k = keys;
    root.store(0, std::memory_order_relaxed);
    for (std::size_t i = 0; i < k.size(); ++i) {
      PackedNode<Key>& nd = nodes[i];
      nd.child[0].store(kNoIdx, std::memory_order_relaxed);
      nd.child[1].store(kNoIdx, std::memory_order_relaxed);
      nd.size.store(0, std::memory_order_relaxed);
      nd.place.store(0, std::memory_order_relaxed);
      nd.place_done.store(0, std::memory_order_relaxed);
      nd.key = k[i];
    }
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

  std::int64_t n() const { return static_cast<std::int64_t>(keys.size()); }

  std::int64_t root_idx() const { return root.load(std::memory_order_acquire); }
  void set_root(std::int64_t r) { root.store(r, std::memory_order_release); }

  const Key& key_of(std::int64_t node) const {
    return nodes[static_cast<std::size_t>(node)].key;
  }

  // Strict order with index tie-breaking (the paper's "use an element's
  // index to break ties"), so all keys behave as if distinct.
  bool less(std::int64_t a, std::int64_t b) const {
    const Key& ka = key_of(a);
    const Key& kb = key_of(b);
    if (cmp(ka, kb)) return true;
    if (cmp(kb, ka)) return false;
    return a < b;
  }

  // Which child of `p` the descent of element `e` continues into.  Written
  // as an arithmetic use of the comparison result (not a select between two
  // code paths) so the compiler lowers the child choice to setcc + indexed
  // load — the descent's only unpredictable branch disappears into the
  // child[] index.  e != p (an element never descends through itself).
  Side descend_side(std::int64_t e, std::int64_t p) const {
    return static_cast<Side>(!less(e, p));
  }

  // True when the record array is small enough that batching one round of
  // descent compares into a SIMD call pays.  The batched kernel touches all
  // in-flight parent lines at one program point; when the records exceed
  // the fast cache levels that clustering un-hides the line latency the
  // round-robin interleave exists to overlap (measured on the bench host:
  // ~3% win at 1 MiB of records, 15–20% loss at 64 MiB), so the batch is
  // only used while the array fits comfortably in L2.
  bool simd_batch_descend() const {
    return static_cast<std::size_t>(n()) * sizeof(PackedNode<Key>) <=
           (std::size_t{1} << 20);
  }

  // Hint the hardware that `node`'s record is about to be visited.
  void prefetch(std::int64_t node) const {
    __builtin_prefetch(&nodes[static_cast<std::size_t>(node)], 0, 1);
  }

  std::atomic<std::int64_t>& child_slot(std::int64_t node, Side s) {
    return nodes[static_cast<std::size_t>(node)].child[s];
  }
  std::int64_t child_of(std::int64_t node, Side s) const {
    return nodes[static_cast<std::size_t>(node)].child[s].load(std::memory_order_acquire);
  }
  std::int64_t size_of(std::int64_t node) const {
    return node == kNoIdx
               ? 0
               : nodes[static_cast<std::size_t>(node)].size.load(std::memory_order_acquire);
  }
  void set_size(std::int64_t node, std::int64_t s) {
    nodes[static_cast<std::size_t>(node)].size.store(s, std::memory_order_release);
  }
  std::int64_t place_of(std::int64_t node) const {
    return nodes[static_cast<std::size_t>(node)].place.load(std::memory_order_acquire);
  }
  bool place_done_of(std::int64_t node) const {
    return nodes[static_cast<std::size_t>(node)].place_done.load(
               std::memory_order_acquire) != 0;
  }
  void mark_place_done(std::int64_t node) {
    nodes[static_cast<std::size_t>(node)].place_done.store(1, std::memory_order_release);
  }
  // Publish completion of a sequential block (see find_place_emit's
  // seq_cutoff).  The CAS only decides which of the concurrent duplicates
  // "won"; the work itself happened before the call and every competitor
  // wrote identical values, so losing is harmless.
  bool try_claim_place_done(std::int64_t node) {
    std::uint8_t expected = 0;
    return nodes[static_cast<std::size_t>(node)].place_done.compare_exchange_strong(
        expected, 1, std::memory_order_acq_rel, std::memory_order_acquire);
  }

  // Store the element's key at the output slot of its rank, then the rank.
  // The key read is free: the record line was loaded to compute the place.
  // Order matters: `out` is written BEFORE `place`, so any worker that
  // acquire-reads a non-zero place (or a completion flag released after it)
  // is also guaranteed to see the output slot — that is what lets finished
  // workers copy the output back while stragglers are still traversing.
  void emit(std::int64_t node, std::int64_t pl) {
    PackedNode<Key>& nd = nodes[static_cast<std::size_t>(node)];
    out[static_cast<std::size_t>(pl - 1)].store(nd.key, std::memory_order_release);
    nd.place.store(pl, std::memory_order_release);
  }

  // Post-run validation/diagnostics (single-threaded use).
  bool all_placed() const {
    for (std::int64_t i = 0; i < n(); ++i) {
      if (place_of(i) == 0) return false;
    }
    return true;
  }

  std::uint32_t measure_depth() const {
    if (keys.empty()) return 0;
    std::uint32_t max_depth = 0;
    std::vector<std::pair<std::int64_t, std::uint32_t>> stack{{root_idx(), 1u}};
    while (!stack.empty()) {
      auto [node, d] = stack.back();
      stack.pop_back();
      if (node == kNoIdx) continue;
      max_depth = std::max(max_depth, d);
      stack.emplace_back(child_of(node, kSmall), d + 1);
      stack.emplace_back(child_of(node, kBig), d + 1);
    }
    return max_depth;
  }
};

}  // namespace wfsort::detail
