// Shared state of one sort: the pivot tree threaded through the input.
//
// Mirrors Figure 3 of the paper in structure-of-arrays form: each element i
// of the input owns two child slots (SMALL and BIG), a subtree size and a
// final place (1-based rank; 0 = not yet known).  Keys are never modified
// while the sort runs; the sorted result is assembled into `out` and copied
// back after the workers are done.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "common/check.h"

namespace wfsort::detail {

inline constexpr std::int64_t kNoIdx = -1;

enum Side : int { kSmall = 0, kBig = 1 };

template <typename Key, typename Compare>
struct TreeState {
  static_assert(std::is_trivially_copyable_v<Key>,
                "the wait-free sorter assembles its output with atomic element "
                "stores; sort records must be trivially copyable (sort indices "
                "or pointers for heavyweight payloads)");

  std::span<const Key> keys;
  Compare cmp;
  // Pivot-tree root element: 0 for the deterministic variant; the fat-tree
  // root chosen at runtime by the low-contention variant (every worker
  // stores the same value, so the atomic is only for data-race freedom).
  std::atomic<std::int64_t> root{0};

  std::vector<std::atomic<std::int64_t>> child;  // 2 per element
  std::vector<std::atomic<std::int64_t>> size;   // 0 = unknown
  std::vector<std::atomic<std::int64_t>> place;  // 0 = unknown, else 1-based rank
  std::vector<std::atomic<std::uint8_t>> place_done;  // PrunePlaced::kDone flags
  std::vector<std::atomic<Key>> out;                  // sorted result (index place-1)

  TreeState(std::span<const Key> k, Compare c)
      : keys(k),
        cmp(c),
        child(2 * k.size()),
        size(k.size()),
        place(k.size()),
        place_done(k.size()),
        out(k.size()) {
    for (auto& x : child) x.store(kNoIdx, std::memory_order_relaxed);
    for (auto& x : size) x.store(0, std::memory_order_relaxed);
    for (auto& x : place) x.store(0, std::memory_order_relaxed);
    for (auto& x : place_done) x.store(0, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

  std::int64_t n() const { return static_cast<std::int64_t>(keys.size()); }

  std::int64_t root_idx() const { return root.load(std::memory_order_acquire); }
  void set_root(std::int64_t r) { root.store(r, std::memory_order_release); }

  // Strict order with index tie-breaking (the paper's "use an element's
  // index to break ties"), so all keys behave as if distinct.
  bool less(std::int64_t a, std::int64_t b) const {
    const Key& ka = keys[static_cast<std::size_t>(a)];
    const Key& kb = keys[static_cast<std::size_t>(b)];
    if (cmp(ka, kb)) return true;
    if (cmp(kb, ka)) return false;
    return a < b;
  }

  std::atomic<std::int64_t>& child_slot(std::int64_t node, Side s) {
    return child[static_cast<std::size_t>(2 * node + s)];
  }
  std::int64_t child_of(std::int64_t node, Side s) const {
    return child[static_cast<std::size_t>(2 * node + s)].load(std::memory_order_acquire);
  }
  std::int64_t size_of(std::int64_t node) const {
    return node == kNoIdx
               ? 0
               : size[static_cast<std::size_t>(node)].load(std::memory_order_acquire);
  }
  std::int64_t place_of(std::int64_t node) const {
    return place[static_cast<std::size_t>(node)].load(std::memory_order_acquire);
  }

  // Post-run validation/diagnostics (single-threaded use).
  bool all_placed() const {
    for (const auto& p : place) {
      if (p.load(std::memory_order_relaxed) == 0) return false;
    }
    return true;
  }

  std::uint32_t measure_depth() const {
    if (keys.empty()) return 0;
    std::uint32_t max_depth = 0;
    std::vector<std::pair<std::int64_t, std::uint32_t>> stack{{root_idx(), 1u}};
    while (!stack.empty()) {
      auto [node, d] = stack.back();
      stack.pop_back();
      if (node == kNoIdx) continue;
      max_depth = std::max(max_depth, d);
      stack.emplace_back(child_of(node, kSmall), d + 1);
      stack.emplace_back(child_of(node, kBig), d + 1);
    }
    return max_depth;
  }
};

}  // namespace wfsort::detail
