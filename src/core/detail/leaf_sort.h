// Fast sequential sort for phase-3 leaf blocks (and partition buckets).
//
// Below Options::seq_cutoff the engine stops paying pointer-chasing prices:
// instead of walking the subtree in order (one dependent cache miss per
// node), it gathers the subtree's (key, index) pairs into scratch, sorts
// them with the introsort-style routine in this header, and emits the ranks
// in one streaming pass.  The same routine sorts the partition-phase
// buckets and the splitter samples.
//
// The sort is the pdqsort recipe reduced to its load-bearing parts:
//
//   * insertion sort at or below kInsertionThreshold elements;
//   * median-of-3 pivot selection (pseudomedian-of-9 for larger ranges);
//   * Hoare partitioning with a chunked branch-free scan: comparison results
//     are packed 8-at-a-time into a bitmask and consumed with countr_zero,
//     so the scan takes one data-dependent branch per 8 elements instead of
//     one per element;
//   * a bad-pivot budget of floor(log2 n)+1; a partition whose smaller side
//     is below len/8 spends one unit, and an exhausted budget falls back to
//     heapsort — the classic introsort O(n log n) worst-case guarantee,
//     exercised in test_engine_detail with a quicksort-adversarial input.
//
// Comparisons go through a strict-weak-order functor; the engine instantiates
// it with the (key, then index) order of TreeState::less, so a leaf-sorted
// block is bit-identical to the in-order walk it replaces.  The routine is
// sequential and operates on private scratch only — wait-freedom is the
// caller's concern (gather/emit poll the fault checkpoint; the sort itself
// is bounded work on local memory).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <utility>

namespace wfsort::detail {

// Dispatch/volume counters, accumulated locally and folded into telemetry by
// the caller (telemetry/report.h kLeaf* counters).
struct LeafSortTally {
  std::uint64_t blocks = 0;           // top-level leaf_sort calls
  std::uint64_t insertion_sorts = 0;  // ranges finished by insertion sort
  std::uint64_t heapsorts = 0;        // bad-pivot fallbacks taken
  std::uint64_t partition_swaps = 0;  // element swaps performed by partitions
};

inline constexpr std::ptrdiff_t kInsertionThreshold = 24;
inline constexpr std::ptrdiff_t kPseudomedianThreshold = 128;

namespace leaf {

template <typename T, typename Less>
void insertion_sort(T* first, T* last, Less less) {
  for (T* cur = first + 1; cur < last; ++cur) {
    if (!less(*cur, *(cur - 1))) continue;
    T tmp = std::move(*cur);
    T* hole = cur;
    do {
      *hole = std::move(*(hole - 1));
      --hole;
    } while (hole != first && less(tmp, *(hole - 1)));
    *hole = std::move(tmp);
  }
}

// Order a,b,c in place (3 compares, ≤3 swaps); *b ends up the median.
template <typename T, typename Less>
void sort3(T* a, T* b, T* c, Less less) {
  if (less(*b, *a)) std::swap(*a, *b);
  if (less(*c, *b)) {
    std::swap(*b, *c);
    if (less(*b, *a)) std::swap(*a, *b);
  }
}

// Move a median-ish pivot to *first: median-of-3 for short ranges,
// pseudomedian-of-9 (median of three medians-of-3) for longer ones.
template <typename T, typename Less>
void select_pivot(T* first, T* last, Less less) {
  const std::ptrdiff_t len = last - first;
  T* mid = first + len / 2;
  if (len > kPseudomedianThreshold) {
    // Ninther: medians of three spread triples, then their median, which
    // ends up at *mid and is swapped into the pivot slot.
    sort3(first, mid, last - 1, less);
    sort3(first + 1, mid - 1, last - 2, less);
    sort3(first + 2, mid + 1, last - 3, less);
    sort3(mid - 1, mid, mid + 1, less);
    std::swap(*first, *mid);
  } else {
    sort3(mid, first, last - 1, less);  // median lands at *first
  }
}

// Hoare split around the pivot value at *first, with a BlockQuicksort-style
// branch-free scan.  Returns a split point s in (first, last): every element
// of [first, s) is <= pivot and every element of [s, last) is >= pivot
// (equals stop both scans and may land on either side — that is what keeps
// duplicate-heavy input balanced).  Both sides are non-empty, so recursing
// on [first, s) and [s, last) always makes progress.
//
// Each direction examines one block of up to 64 elements at a time, packing
// its comparison results into a bitmask with a branch-free loop; stoppers
// (left: >= pivot, right: <= pivot) are then consumed pairwise with
// countr_zero ACROSS swaps, so every element is compared exactly once and
// the only data-dependent branch is one per swap.  The two live blocks are
// always disjoint — each is carved off the unexamined gap [u0, u1) before
// the gap pointer moves past it — so a swap writes only to two consumed
// stopper slots and never invalidates a pending mask bit.  When the gap is
// exhausted, at most one mask still has stoppers (a refill that finds the
// gap empty breaks the loop before any lone-sided swap), and the leftover
// walk moves them to the boundary one self-swap-safe exchange each.
template <typename T, typename Less>
T* hoare_split(T* first, T* last, Less less, std::uint64_t* swaps) {
  constexpr std::ptrdiff_t kBlock = 64;
  const T pivot = *first;
  T* u0 = first + 1;  // unexamined gap is [u0, u1)
  T* u1 = last;
  std::uint64_t ml = 0, mr = 0;  // pending stoppers: ml bit b = lb[b],
  T* lb = u0;                    // mr bit b = rb[-1 - b]
  T* rb = u1;

  for (;;) {
    if (ml == 0) {  // refill the forward mask from the low end of the gap
      std::ptrdiff_t wl;
      do {
        lb = u0;
        wl = std::min<std::ptrdiff_t>(u1 - u0, kBlock);
        for (std::ptrdiff_t b = 0; b < wl; ++b) {
          ml |= static_cast<std::uint64_t>(!less(lb[b], pivot)) << b;
        }
        u0 += wl;
      } while (ml == 0 && wl == kBlock);
    }
    if (mr == 0) {  // refill the backward mask from the high end of the gap
      std::ptrdiff_t wr;
      do {
        rb = u1;
        wr = std::min<std::ptrdiff_t>(u1 - u0, kBlock);
        for (std::ptrdiff_t b = 0; b < wr; ++b) {
          mr |= static_cast<std::uint64_t>(!less(pivot, rb[-1 - b])) << b;
        }
        u1 -= wr;
      } while (mr == 0 && wr == kBlock);
    }
    if (ml == 0 || mr == 0) break;  // gap exhausted on the empty side(s)
    do {  // consume stopper pairs; both blocks stay disjoint and examined
      std::swap(lb[std::countr_zero(ml)], rb[-1 - std::countr_zero(mr)]);
      ++*swaps;
      ml &= ml - 1;
      mr &= mr - 1;
    } while (ml != 0 && mr != 0);
  }

  if (ml != 0) {
    // Leftover left stoppers (>= pivot) sit inside the last left block
    // [lb, u0); everything at and above u0 == u1 is already >= pivot.  Move
    // them flush against the boundary, highest position first — the target
    // slot is either the stopper itself (self-swap) or a clean <= pivot
    // element, never a pending stopper.
    T* r = u0;
    while (ml != 0) {
      const int h = 63 - std::countl_zero(ml);
      --r;
      std::swap(lb[h], *r);
      ++*swaps;
      ml &= ~(std::uint64_t{1} << h);
    }
    return r;  // r >= lb > first; r < last because >= 1 stopper moved
  }
  if (mr != 0) {
    // Mirror: leftover right stoppers (<= pivot) inside (u1, rb]; everything
    // below u0 == u1 is already <= pivot.  A leftover mask always took part
    // in >= 1 pair swap, so the boundary stays left of `last`.
    T* l = u0;
    while (mr != 0) {
      const int h = 63 - std::countl_zero(mr);
      std::swap(rb[-1 - h], *l);
      ++*swaps;
      ++l;
      mr &= ~(std::uint64_t{1} << h);
    }
    return l;
  }
  // Clean finish: [first, u0) <= pivot, [u0, last) >= pivot.  u0 == last
  // means the pivot was a maximum — hand it the top slot so the right side
  // is non-empty.
  if (u0 == last) {
    std::swap(*first, *(last - 1));
    ++*swaps;
    return last - 1;
  }
  return u0;
}

template <typename T, typename Less>
void sift_down(T* first, std::ptrdiff_t len, std::ptrdiff_t i, Less less) {
  for (;;) {
    std::ptrdiff_t child = 2 * i + 1;
    if (child >= len) return;
    if (child + 1 < len && less(first[child], first[child + 1])) ++child;
    if (!less(first[i], first[child])) return;
    std::swap(first[i], first[child]);
    i = child;
  }
}

template <typename T, typename Less>
void heapsort(T* first, T* last, Less less) {
  const std::ptrdiff_t len = last - first;
  for (std::ptrdiff_t i = len / 2 - 1; i >= 0; --i) sift_down(first, len, i, less);
  for (std::ptrdiff_t end = len - 1; end > 0; --end) {
    std::swap(first[0], first[end]);
    sift_down(first, end, 0, less);
  }
}

template <typename T, typename Less>
void sort_impl(T* first, T* last, Less less, int budget, LeafSortTally* tally) {
  for (;;) {
    const std::ptrdiff_t len = last - first;
    if (len <= kInsertionThreshold) {
      if (len > 1) {
        insertion_sort(first, last, less);
        ++tally->insertion_sorts;
      }
      return;
    }
    if (budget <= 0) {
      heapsort(first, last, less);
      ++tally->heapsorts;
      return;
    }
    select_pivot(first, last, less);
    T* s = hoare_split(first, last, less, &tally->partition_swaps);
    const std::ptrdiff_t left = s - first;
    const std::ptrdiff_t right = last - s;
    if (left < len / 8 || right < len / 8) --budget;  // unbalanced: spend one
    // Recurse into the smaller side, loop on the larger (O(log n) stack).
    if (left < right) {
      sort_impl(first, s, less, budget, tally);
      first = s;
    } else {
      sort_impl(s, last, less, budget, tally);
      last = s;
    }
  }
}

}  // namespace leaf

// Sort [first, last) under `less` (a strict weak order).  `tally` is
// required; pass a throwaway when the caller doesn't report telemetry.
template <typename T, typename Less>
void leaf_sort(T* first, T* last, Less less, LeafSortTally* tally) {
  ++tally->blocks;
  if (last - first <= 1) return;
  // floor(log2 n) + 1 — the introsort depth allowance.
  const int budget =
      static_cast<int>(std::bit_width(static_cast<std::uint64_t>(last - first)));
  leaf::sort_impl(first, last, less, budget, tally);
}

// Test hook: same sort with an explicit bad-pivot budget, so unit tests can
// force the heapsort fallback without crafting a full adversarial stream.
template <typename T, typename Less>
void leaf_sort_with_budget(T* first, T* last, Less less, int budget,
                           LeafSortTally* tally) {
  ++tally->blocks;
  if (last - first <= 1) return;
  leaf::sort_impl(first, last, less, budget, tally);
}

// The (key, index) pair a leaf block is sorted by; ordering matches
// TreeState::less (key by Compare, index breaks ties) so the result is
// bit-identical to the in-order subtree walk it replaces.
template <typename Key>
struct LeafItem {
  Key key;
  std::int64_t idx;
};

template <typename Key, typename Compare>
struct LeafItemLess {
  Compare cmp;
  bool operator()(const LeafItem<Key>& a, const LeafItem<Key>& b) const {
    if (cmp(a.key, b.key)) return true;
    if (cmp(b.key, a.key)) return false;
    return a.idx < b.idx;
  }
};

}  // namespace wfsort::detail
