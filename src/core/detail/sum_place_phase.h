// Phases 2 and 3 — subtree summation (Figure 5) and placement (Figure 6).
//
// Both are full tree traversals performed independently by every worker;
// all writes are idempotent (the tree is frozen after phase 1, so sizes and
// places are deterministic), which is what makes concurrent duplicated work
// harmless.
//
// Spreading.  The paper uses processor-ID bits to choose the child visit
// order at each depth, so concurrent workers fan out over disjoint subtrees.
// PIDs only have log P significant bits; below that depth raw PID bits are
// all zero and every helper would walk the same path.  We therefore derive
// the decision bit from a hash of (pid, depth), which preserves the paper's
// even split near the root in distribution and keeps helpers spread at
// every depth (ablated in bench fig_e12).
//
// Pruning.  tree_sum skips a subtree when its root's size is known — safe,
// because sizes propagate bottom-up: size > 0 implies the whole subtree is
// summed.  Figure 6 prunes on place > 0, but places propagate TOP-DOWN, so
// a placed subtree root says nothing about its interior; under crashes —
// or merely under skewed phase entry — that rule either loses work or
// serializes a whole claimed subtree onto one processor (see DESIGN.md and
// EXPERIMENTS.md E12).  PrunePlaced selects between:
//   kNo    — never prune: every worker re-traverses everything (always
//            correct; O(N) per worker);
//   kYes   — the paper's rule (fast only under faultless lockstep entry);
//   kDone  — prune on an explicit bottom-up completion flag, giving
//            phase-2 semantics to phase 3: crash-safe AND work-sharing.
//            This is the default.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/detail/tree_state.h"
#include "core/options.h"

namespace wfsort::detail {

// Child visited first by worker `pid` at `depth`: an even pseudo-random
// split at every level.
inline Side spread_side(std::uint32_t pid, std::uint32_t depth) {
  const std::uint64_t h =
      mix64((std::uint64_t{pid} << 32) | std::uint64_t{depth});
  return (h & 1u) != 0 ? kBig : kSmall;
}
inline Side other(Side s) { return s == kSmall ? kBig : kSmall; }

// `keep_going` is polled once per tree node touched; returning false aborts
// the traversal (fault injection) and the phase returns false.

template <typename Key, typename Compare, typename Check>
bool tree_sum(TreeState<Key, Compare>& st, std::uint32_t pid, Check&& keep_going) {
  if (st.n() == 0) return true;
  struct Frame {
    std::int64_t node;
    std::uint32_t depth;
    std::uint8_t stage;      // 0: fresh, 1: first child done, 2: both done
    std::int64_t first_sum;  // result of the first child
  };
  std::vector<Frame> stack;
  stack.push_back({st.root_idx(), 0, 0, 0});
  std::int64_t ret = 0;  // value "returned" by the frame just popped

  while (!stack.empty()) {
    if (!keep_going()) return false;
    Frame f = stack.back();  // copy: pushes below may reallocate
    if (f.node == kNoIdx) {
      ret = 0;
      stack.pop_back();
      continue;
    }
    switch (f.stage) {
      case 0: {
        const std::int64_t s = st.size_of(f.node);
        if (s > 0) {  // someone already summed this whole subtree
          ret = s;
          stack.pop_back();
          break;
        }
        stack.back().stage = 1;
        const Side first = spread_side(pid, f.depth);
        stack.push_back({st.child_of(f.node, first), f.depth + 1, 0, 0});
        break;
      }
      case 1: {
        stack.back().first_sum = ret;
        stack.back().stage = 2;
        const Side second = other(spread_side(pid, f.depth));
        stack.push_back({st.child_of(f.node, second), f.depth + 1, 0, 0});
        break;
      }
      default: {
        const std::int64_t total = f.first_sum + ret + 1;
        st.size[static_cast<std::size_t>(f.node)].store(total, std::memory_order_release);
        ret = total;
        stack.pop_back();
        break;
      }
    }
  }
  return true;
}

// Phase 3 with output emission: place every element and store it into
// st.out at its final rank.
template <typename Key, typename Compare, typename Check>
bool find_place_emit(TreeState<Key, Compare>& st, std::uint32_t pid, PrunePlaced prune,
                     Check&& keep_going) {
  if (st.n() == 0) return true;
  struct Frame {
    std::int64_t node;
    std::int64_t sub;  // elements known to precede this subtree
    std::uint32_t depth;
    std::uint8_t stage;  // 1 = post-frame: both children complete
  };
  std::vector<Frame> stack;
  stack.push_back({st.root_idx(), 0, 0, 0});

  while (!stack.empty()) {
    if (!keep_going()) return false;
    const Frame f = stack.back();
    if (f.node == kNoIdx) {
      stack.pop_back();
      continue;
    }
    if (f.stage == 1) {  // kDone post-frame: whole subtree below is placed
      st.place_done[static_cast<std::size_t>(f.node)].store(1, std::memory_order_release);
      stack.pop_back();
      continue;
    }
    if (prune == PrunePlaced::kYes && st.place_of(f.node) > 0) {
      stack.pop_back();
      continue;
    }
    if (prune == PrunePlaced::kDone &&
        st.place_done[static_cast<std::size_t>(f.node)].load(std::memory_order_acquire) !=
            0) {
      stack.pop_back();
      continue;
    }

    const std::int64_t small = st.child_of(f.node, kSmall);
    const std::int64_t s = st.size_of(small);
    const std::int64_t pl = f.sub + s + 1;
    st.place[static_cast<std::size_t>(f.node)].store(pl, std::memory_order_release);
    st.out[static_cast<std::size_t>(pl - 1)].store(
        st.keys[static_cast<std::size_t>(f.node)], std::memory_order_release);

    if (prune == PrunePlaced::kDone) {
      stack.back().stage = 1;  // revisit after the children to mark done
    } else {
      stack.pop_back();
    }
    const Frame fs{small, f.sub, f.depth + 1, 0};
    const Frame fb{st.child_of(f.node, kBig), f.sub + s + 1, f.depth + 1, 0};
    // LIFO stack: push the child to be visited *second* first.
    if (spread_side(pid, f.depth) == kSmall) {
      stack.push_back(fb);
      stack.push_back(fs);
    } else {
      stack.push_back(fs);
      stack.push_back(fb);
    }
  }
  return true;
}

}  // namespace wfsort::detail
