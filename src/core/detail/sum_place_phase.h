// Phases 2 and 3 — subtree summation (Figure 5) and placement (Figure 6).
//
// Both are full tree traversals performed independently by every worker;
// all writes are idempotent (the tree is frozen after phase 1, so sizes and
// places are deterministic), which is what makes concurrent duplicated work
// harmless.
//
// Spreading.  The paper uses processor-ID bits to choose the child visit
// order at each depth, so concurrent workers fan out over disjoint subtrees.
// PIDs only have log P significant bits; below that depth raw PID bits are
// all zero and every helper would walk the same path.  We therefore derive
// the decision bit from a hash of (pid, depth), which preserves the paper's
// even split near the root in distribution and keeps helpers spread at
// every depth (ablated in bench fig_e12).
//
// Pruning.  tree_sum skips a subtree when its root's size is known — safe,
// because sizes propagate bottom-up: size > 0 implies the whole subtree is
// summed.  Figure 6 prunes on place > 0, but places propagate TOP-DOWN, so
// a placed subtree root says nothing about its interior; under crashes —
// or merely under skewed phase entry — that rule either loses work or
// serializes a whole claimed subtree onto one processor (see DESIGN.md and
// EXPERIMENTS.md E12).  PrunePlaced selects between:
//   kNo    — never prune: every worker re-traverses everything (always
//            correct; O(N) per worker);
//   kYes   — the paper's rule (fast only under faultless lockstep entry);
//   kDone  — prune on an explicit bottom-up completion flag, giving
//            phase-2 semantics to phase 3: crash-safe AND work-sharing.
//            This is the default.
//
// Sequential cutoff.  With `seq_cutoff > 0`, find_place_emit handles any
// subtree of at most that many elements locally (sort_block): the subtree's
// (key, index) pairs are gathered into contiguous scratch, sorted with the
// pdqsort-style leaf_sort, and emitted as consecutive ranks with streaming
// writes and no per-node completion flags.  The result is identical to an
// in-order walk (place_block, kept for reference and tests) — the tree
// already encodes the order — but the gather overlaps its cache misses and
// the sort runs on cache-resident memory, so much larger cutoffs pay.  The
// completion flag of the block's ROOT is published only after the walk
// (try_claim_place_done), so a crashed walker leaves nothing claimed and
// any other worker redoes the block idempotently: wait-freedom is
// untouched — nobody ever waits for a block winner (docs/native_engine.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/detail/leaf_sort.h"
#include "core/detail/tree_state.h"
#include "core/options.h"
#include "telemetry/recorder.h"

namespace wfsort::detail {

// Child visited first by worker `pid` at `depth`: an even pseudo-random
// split at every level.
inline Side spread_side(std::uint32_t pid, std::uint32_t depth) {
  const std::uint64_t h =
      mix64((std::uint64_t{pid} << 32) | std::uint64_t{depth});
  return (h & 1u) != 0 ? kBig : kSmall;
}
inline Side other(Side s) { return s == kSmall ? kBig : kSmall; }

// `keep_going` is polled once per tree node touched; returning false aborts
// the traversal (fault injection) and the phase returns false.

template <typename Key, typename Compare, typename Check>
bool tree_sum(TreeState<Key, Compare>& st, std::uint32_t pid, Check&& keep_going) {
  if (st.n() == 0) return true;
  struct Frame {
    std::int64_t node;
    std::uint32_t depth;
    std::uint8_t stage;      // 0: fresh, 1: first child done, 2: both done
    std::int64_t first_sum;  // result of the first child
    std::int64_t small;      // children, loaded once at stage 0
    std::int64_t big;
  };
  // thread_local: persistent pool workers reuse the DFS stack across runs
  // (zero steady-state allocations); run_worker is never reentrant on one
  // thread, so the scratch cannot be aliased.
  static thread_local std::vector<Frame> stack;
  stack.clear();
  stack.reserve(64);
  stack.push_back({st.root_idx(), 0, 0, 0, kNoIdx, kNoIdx});
  std::int64_t ret = 0;  // value "returned" by the frame just popped (or by
                         // an absent child, which contributes 0 in place)

  while (!stack.empty()) {
    if (!keep_going()) return false;
    Frame& f = stack.back();  // pushes below re-read the reference
    switch (f.stage) {
      case 0: {
        const std::int64_t s = st.size_of(f.node);
        if (s > 0) {  // someone already summed this whole subtree
          ret = s;
          stack.pop_back();
          break;
        }
        f.small = st.child_of(f.node, kSmall);
        f.big = st.child_of(f.node, kBig);
        if (f.small == kNoIdx && f.big == kNoIdx) {  // leaf fast path
          st.set_size(f.node, 1);
          ret = 1;
          stack.pop_back();
          break;
        }
        f.stage = 1;
        const Side first = spread_side(pid, f.depth);
        const std::int64_t c = first == kSmall ? f.small : f.big;
        if (c == kNoIdx) {
          ret = 0;  // absent child: fall through to stage 1 with sum 0
          break;
        }
        const std::uint32_t d = f.depth + 1;
        st.prefetch(c);
        stack.push_back({c, d, 0, 0, kNoIdx, kNoIdx});
        break;
      }
      case 1: {
        f.first_sum = ret;
        f.stage = 2;
        const Side second = other(spread_side(pid, f.depth));
        const std::int64_t c = second == kSmall ? f.small : f.big;
        if (c == kNoIdx) {
          ret = 0;
          break;
        }
        const std::uint32_t d = f.depth + 1;
        st.prefetch(c);
        stack.push_back({c, d, 0, 0, kNoIdx, kNoIdx});
        break;
      }
      default: {
        const std::int64_t total = f.first_sum + ret + 1;
        st.set_size(f.node, total);
        ret = total;
        stack.pop_back();
        break;
      }
    }
  }
  return true;
}

// Sequential block placement: emit the whole subtree under `node` (whose
// `sub` elements precede it) by one in-order walk, assigning consecutive
// ranks.  `scratch` is the caller's reusable stack.  All writes are
// idempotent — every walker of the same block computes identical values.
template <typename Key, typename Compare, typename Check>
bool place_block(TreeState<Key, Compare>& st, std::int64_t node, std::int64_t sub,
                 std::vector<std::int64_t>& scratch, Check&& keep_going) {
  scratch.clear();
  std::int64_t rank = sub;
  std::int64_t cur = node;
  while (cur != kNoIdx || !scratch.empty()) {
    while (cur != kNoIdx) {
      scratch.push_back(cur);
      cur = st.child_of(cur, kSmall);
      if (cur != kNoIdx) st.prefetch(cur);
    }
    cur = scratch.back();
    scratch.pop_back();
    if (!keep_going()) return false;
    st.emit(cur, ++rank);
    cur = st.child_of(cur, kBig);
  }
  return true;
}

// Sequential block placement, sort-based: gather the subtree's (key, index)
// pairs into contiguous scratch with a traversal that prefetches BOTH
// children (independent misses overlap, unlike place_block's dependent
// in-order chain), sort them with leaf_sort, and emit consecutive ranks in
// one streaming pass.  The comparator is TreeState::less verbatim (key by
// Compare, index breaks ties), so the emitted ranks are identical to
// place_block's — the tree already encodes this order; the sort just
// recomputes it from cache-friendly memory.  All writes are idempotent.
// `keep_going` is polled once per gathered node and once per emitted
// element; the sort between them is bounded local work on private scratch.
template <typename Key, typename Compare, typename Check>
bool sort_block(TreeState<Key, Compare>& st, std::int64_t node, std::int64_t sub,
                std::vector<LeafItem<Key>>& items,
                std::vector<std::int64_t>& scratch, LeafSortTally& tally,
                Check&& keep_going) {
  items.clear();
  scratch.clear();
  scratch.push_back(node);
  while (!scratch.empty()) {
    const std::int64_t cur = scratch.back();
    scratch.pop_back();
    if (!keep_going()) return false;
    items.push_back({st.key_of(cur), cur});
    const std::int64_t small = st.child_of(cur, kSmall);
    const std::int64_t big = st.child_of(cur, kBig);
    if (small != kNoIdx) {
      st.prefetch(small);
      scratch.push_back(small);
    }
    if (big != kNoIdx) {
      st.prefetch(big);
      scratch.push_back(big);
    }
  }
  leaf_sort(items.data(), items.data() + items.size(),
            LeafItemLess<Key, Compare>{st.cmp}, &tally);
  std::int64_t rank = sub;
  for (const LeafItem<Key>& it : items) {
    if (!keep_going()) return false;
    st.emit(it.idx, ++rank);
  }
  return true;
}

// Phase 3 with output emission: place every element and store it into
// st.out at its final rank.  Subtrees of at most `seq_cutoff` elements are
// handled by sort_block (0 disables the cutoff).
template <typename Key, typename Compare, typename Check,
          typename Tel = std::nullptr_t>
bool find_place_emit(TreeState<Key, Compare>& st, std::uint32_t pid, PrunePlaced prune,
                     std::uint64_t seq_cutoff, Check&& keep_going, Tel tel = nullptr) {
  constexpr bool kTel = telemetry::kTelEnabled<Tel>;
  if (st.n() == 0) return true;
  struct Frame {
    std::int64_t node;
    std::int64_t sub;  // elements known to precede this subtree
    std::uint32_t depth;
    std::uint8_t stage;  // 1 = post-frame: both children complete
  };
  // thread_local for the same reason as tree_sum's stack: steady-state
  // pooled runs reuse the worker's warmed-up capacity instead of
  // reallocating per run.
  static thread_local std::vector<Frame> stack;
  static thread_local std::vector<std::int64_t> scratch;
  static thread_local std::vector<LeafItem<Key>> items;
  stack.clear();
  stack.reserve(96);
  scratch.clear();
  items.clear();
  if (seq_cutoff != 0) {
    const std::size_t cap = static_cast<std::size_t>(
        std::min<std::uint64_t>(seq_cutoff, static_cast<std::uint64_t>(st.n())));
    scratch.reserve(cap);
    items.reserve(cap);
  }
  stack.push_back({st.root_idx(), 0, 0, 0});

  while (!stack.empty()) {
    if (!keep_going()) return false;
    const Frame f = stack.back();
    if (f.stage == 1) {  // kDone post-frame: whole subtree below is placed
      st.mark_place_done(f.node);
      stack.pop_back();
      continue;
    }
    if (prune == PrunePlaced::kYes && st.place_of(f.node) > 0) {
      stack.pop_back();
      continue;
    }
    if (prune == PrunePlaced::kDone && st.place_done_of(f.node)) {
      stack.pop_back();
      continue;
    }

    if (seq_cutoff != 0 &&
        static_cast<std::uint64_t>(st.size_of(f.node)) <= seq_cutoff) {
      LeafSortTally lt;
      if (!sort_block(st, f.node, f.sub, items, scratch, lt, keep_going)) {
        return false;
      }
      if constexpr (kTel) {
        bool claimed = true;
        if (prune == PrunePlaced::kDone) claimed = st.try_claim_place_done(f.node);
        if (tel != nullptr && tel->detail) {
          tel->count(telemetry::Counter::kSeqBlocks);
          tel->count(telemetry::Counter::kSeqBlockElems,
                     static_cast<std::uint64_t>(st.size_of(f.node)));
          // A lost completion-flag CAS means another worker already walked
          // this block: the walk just performed was duplicated work.
          if (!claimed) tel->count(telemetry::Counter::kSeqBlockRepeats);
          tel->count(telemetry::Counter::kLeafBlocks, lt.blocks);
          tel->count(telemetry::Counter::kLeafInsertionSorts, lt.insertion_sorts);
          tel->count(telemetry::Counter::kLeafHeapsorts, lt.heapsorts);
          tel->count(telemetry::Counter::kPartitionSwaps, lt.partition_swaps);
          // Flight event per sequential block: value = subtree root,
          // a32 = block size, a8 = 1 when the walk was a duplicate.
          tel->emit(telemetry::FlightKind::kLeafBlock, claimed ? 0 : 1,
                    static_cast<std::uint32_t>(st.size_of(f.node)),
                    static_cast<std::uint64_t>(f.node));
        }
      } else {
        if (prune == PrunePlaced::kDone) st.try_claim_place_done(f.node);
      }
      stack.pop_back();
      continue;
    }

    const std::int64_t small = st.child_of(f.node, kSmall);
    const std::int64_t big = st.child_of(f.node, kBig);
    const std::int64_t s = st.size_of(small);
    st.emit(f.node, f.sub + s + 1);

    if (small == kNoIdx && big == kNoIdx) {  // leaf fast path (cutoff disabled)
      if (prune == PrunePlaced::kDone) st.mark_place_done(f.node);
      stack.pop_back();
      continue;
    }
    if (prune == PrunePlaced::kDone) {
      stack.back().stage = 1;  // revisit after the children to mark done
    } else {
      stack.pop_back();
    }
    const Frame fs{small, f.sub, f.depth + 1, 0};
    const Frame fb{big, f.sub + s + 1, f.depth + 1, 0};
    // LIFO stack: push the child to be visited *second* first; absent
    // children get no frame at all.
    if (spread_side(pid, f.depth) == kSmall) {
      if (big != kNoIdx) stack.push_back(fb);
      if (small != kNoIdx) stack.push_back(fs);
    } else {
      if (small != kNoIdx) stack.push_back(fs);
      if (big != kNoIdx) stack.push_back(fb);
    }
  }
  return true;
}

}  // namespace wfsort::detail
