// The sort engine: shared state plus the per-worker program.
//
// One Engine instance lives for the duration of one sort.  Any number of
// workers (threads) may execute run_worker() concurrently; each worker runs
// every phase to its own completion, so the sorted result is ready as soon
// as ANY ONE worker returns true — that is the wait-freedom guarantee made
// operational.  Workers that crash (fault injection returns false) leave
// only idempotent or write-once state behind and never endanger the rest.
//
// Hot-path structure (docs/native_engine.md):
//   * the pivot tree lives in packed per-node records (TreeState), one
//     cache line per visit instead of four parallel arrays;
//   * phase-1 work is claimed in batches of Options::wat_batch adjacent
//     jobs per WAT traversal (the paper's K), built with interleaved,
//     prefetched descents (build_batch);
//   * phase-3 subtrees at or below Options::seq_cutoff are emitted by one
//     sequential in-order walk (place_block);
//   * per-element statistics accumulate in per-worker tallies and are
//     flushed into the shared atomics once per phase;
//   * workers that finish all phases help copy the assembled output back
//     into the caller's buffer in parallel chunks — safe because keys were
//     copied into the node records up front, so nobody reads the caller's
//     buffer after construction.  finalize() only sweeps chunks no worker
//     got to (it must still be called after the workers are joined and at
//     least one completed).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/arena.h"
#include "common/bits.h"
#include "common/check.h"
#include "common/rng.h"
#include "core/detail/build_phase.h"
#include "core/detail/lc_phase.h"
#include "core/detail/partition_phase.h"
#include "core/detail/sum_place_phase.h"
#include "core/detail/tree_state.h"
#include "core/options.h"
#include "lowcontention/fat_tree.h"
#include "lowcontention/winner_tree.h"
#include "runtime/fault_plan.h"
#include "telemetry/recorder.h"
#include "workalloc/lcwat.h"
#include "workalloc/wat.h"

namespace wfsort::detail {

inline void atomic_fetch_max(std::atomic<std::uint64_t>& a, std::uint64_t v) {
  std::uint64_t cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

// Stage ids for the low-contention variant's per-worker RNG streams.
enum class LcRngStage : std::uint64_t {
  kWinner = 1,  // stage B: winner-tree pre-wait coin tosses
  kFatten = 2,  // stage D: write-most cell choices
  kInsert = 3,  // stage E: LC-WAT probes + fat-tree copy draws
  kSum = 4,     // stage F: summation probes
  kPlace = 5,   // stage G: placement probes
};

// The randomized variant's RNG for worker `tid` in `stage`: deterministic in
// (Options::seed, tid, stage) and nothing else.  One stream per STAGE — not
// one per worker threaded through all stages — so the draw sequence a stage
// sees never depends on how many draws earlier stages happened to make,
// which varies with interleaving (how many LC-WAT probes until the claims
// ran out, who won stage C, ...).  That independence is what makes `wfsort
// replay` of LC failure artifacts bit-stable: a fault script that perturbs
// stage E cannot shift the randomness of stages F/G.
inline Rng worker_stage_rng(std::uint64_t seed, std::uint32_t tid, LcRngStage stage) {
  return Rng(seed ^ tid).fork(static_cast<std::uint64_t>(stage));
}

// Phase durations are tracked as integral microseconds so the max can be
// maintained with a plain atomic.
class PhaseClock {
 public:
  void start() { t0_ = std::chrono::steady_clock::now(); }
  // Record the elapsed time into `slot` (max over workers) and restart.
  void lap(std::atomic<std::uint64_t>& slot) {
    const auto now = std::chrono::steady_clock::now();
    const auto us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(now - t0_).count());
    atomic_fetch_max(slot, us);
    t0_ = now;
  }

 private:
  std::chrono::steady_clock::time_point t0_{};
};

// Below this size the low-contention variant falls back to the
// deterministic one: with fewer elements than this there is no slice worth
// pre-sorting and no contention worth spreading.  (Namespace scope, not
// Engine scope: SortPool's arena-lane selection mirrors the fallback and
// must not have to name a template instantiation to do it.)
inline constexpr std::uint64_t kLcMinN = 64;

// Output copy-back is chunked so finished workers can share it; the
// per-chunk done flags make finalize()'s sweep exact.
inline constexpr std::uint64_t kCopyChunk = 8192;

// Telemetry scratch slots cover every worker id a SortSession can hand
// out (its kMaxWorkers), not just the nominal thread count — replacement
// workers get ids past `threads` and must still be recordable.  SortPool
// sizes its recycled Recorders with the same formula as the Engine.
inline constexpr std::uint32_t kTelemetrySlots = 64;

template <typename Key, typename Compare>
class Engine {
 public:

  // `assemble_into_data` controls whether workers (and finalize) write the
  // sorted output back into `data`; sort_permutation turns it off because
  // its input must stay untouched.
  //
  // `arena` (optional) is where every shared structure of the run — node
  // records, output slots, WAT done-bits, partition scratch, LC fat-tree
  // planes — takes its storage from.  Null means the engine wraps its own
  // private arena (the cold one-shot path: allocate, sort, free).  SortPool
  // passes its recycled per-variant arena instead, which is what makes
  // steady-state pooled submits allocation-free.  The arena must outlive
  // the Engine, and its begin_run() must have been called for this run.
  //
  // `recorder` (optional, only meaningful when Options::telemetry != kOff)
  // lends the engine pre-sized telemetry scratch; null means the engine
  // builds its own.  A borrowed recorder must already be reuse()-armed and
  // shape-matched (SortPool does both).
  Engine(std::span<Key> data, Compare cmp, const Options& opts,
         bool assemble_into_data = true, RunArena* arena = nullptr,
         telemetry::Recorder* recorder = nullptr)
      : data_(data),
        opts_(opts),
        nominal_threads_(opts.resolved_threads()),
        wat_batch_(std::max<std::uint64_t>(1, opts.wat_batch)),
        seq_cutoff_(opts.seq_cutoff),
        copy_back_(assemble_into_data),
        arena_(arena != nullptr ? arena : &own_arena_),
        st_(std::span<const Key>(data.data(), data.size()), cmp, *arena_),
        wat_(batch_jobs(data.size() < 2 ? 1 : data.size(), wat_batch_),
             *arena_) {
    effective_variant_ = opts.variant;
    if (effective_variant_ == Variant::kLowContention && data.size() < kLcMinN) {
      effective_variant_ = Variant::kDeterministic;
    }
    if (effective_variant_ == Variant::kLowContention) init_lc();
    if (effective_variant_ == Variant::kDeterministic &&
        opts.phase1 == Phase1::kPartition && data_.size() > 1) {
      part_ = arena_->create<PartitionShared<Key>>(
          std::span<const Key>(data_.data(), data_.size()), *arena_);
    }
    if (opts.telemetry != telemetry::Level::kOff && data_.size() > 1) {
      if (recorder != nullptr) {
        recorder_ = recorder;
      } else {
        recorder_owned_ = std::make_unique<telemetry::Recorder>(
            opts.telemetry, std::max(nominal_threads_, kTelemetrySlots),
            opts.ring_capacity);
        recorder_ = recorder_owned_.get();
      }
    }
    if (copy_back_ && data_.size() > 1) {
      copy_chunks_ = (data_.size() + kCopyChunk - 1) / kCopyChunk;
      copy_done_ =
          ArenaArray<std::atomic<std::uint8_t>>(copy_chunks_, *arena_);
      for (std::uint64_t c = 0; c < copy_chunks_; ++c) {
        copy_done_[c].store(0, std::memory_order_relaxed);
      }
    }
  }

  // Arena-placed shared structures need their destructors run before the
  // arena recycles the storage (their bulk arrays are arena-borrowed and
  // trivially destructible, but the objects themselves are not).
  ~Engine() {
    if (lc_ != nullptr) lc_->~LcShared();
    if (part_ != nullptr) part_->~PartitionShared();
  }

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Variant effective_variant() const { return effective_variant_; }

  // Execute all phases as worker `tid`.  Returns false if the fault plan
  // aborted this worker ("crash"); shared state remains safe for others.
  bool run_worker(std::uint32_t tid, runtime::FaultPlan* plan = nullptr) {
    if (data_.size() <= 1) {
      completed_.fetch_add(1, std::memory_order_acq_rel);
      return true;
    }
    telemetry::WorkerScratch* tel =
        recorder_ != nullptr ? recorder_->scratch(tid) : nullptr;
    // Closes the worker's open span on every exit path, so a fault-injected
    // crash leaves a truncated span instead of a dangling one.
    telemetry::ScratchCloser closer(tel);
    // Compile-time fork: the nullptr instantiation of the per-variant
    // programs is the untraced hot path, identical to pre-telemetry code.
    bool ok;
    if (tel != nullptr) {
      ok = effective_variant_ != Variant::kDeterministic
               ? run_low_contention(tid, plan, tel)
               : (part_ != nullptr ? run_partition(tid, plan, tel)
                                   : run_deterministic(tid, plan, tel));
    } else {
      ok = effective_variant_ != Variant::kDeterministic
               ? run_low_contention(tid, plan, nullptr)
               : (part_ != nullptr ? run_partition(tid, plan, nullptr)
                                   : run_deterministic(tid, plan, nullptr));
    }
    if (!ok) {
      // mark_crashed lands the post-mortem kFault event in the victim's own
      // ring (single-writer rule: the dying worker writes its own epitaph).
      if (tel != nullptr) tel->mark_crashed(tel->now_us());
      crashed_.fetch_add(1, std::memory_order_acq_rel);
      return false;
    }
    // This worker placed or pruned-as-placed every element, so the output
    // is fully assembled: help copy it back while stragglers keep going
    // (they only touch the node records, never the caller's buffer).
    if (tel != nullptr) tel->begin_phase(telemetry::PhaseId::kCopyBack);
    assist_copy_back();
    return true;
  }

  // True once some worker has completed all phases (result fully assembled).
  bool result_ready() const { return completed_.load(std::memory_order_acquire) > 0; }

  // Deliver any output chunks the workers did not already copy back.  Call
  // with all workers joined (or known crashed) and result_ready().
  void finalize() {
    if (data_.size() <= 1) return;
    WFSORT_CHECK(result_ready());
    WFSORT_DCHECK(st_.all_placed());
    for (std::uint64_t c = 0; c < copy_chunks_; ++c) {
      if (copy_done_[c].load(std::memory_order_acquire) == 0) copy_chunk(c);
    }
    snapshot_telemetry();
  }

  // Freeze the run's telemetry into an immutable Report.  Idempotent; call
  // with all workers joined (the scratch slots are unsynchronized).  Also
  // invoked by finalize(); sort_with_faults calls it directly on the failure
  // path, where finalize() never runs but the partial timeline is exactly
  // what the adversary tooling wants.
  void snapshot_telemetry() {
    if (recorder_ == nullptr || report_ != nullptr) return;
    report_ = std::make_shared<const telemetry::Report>(recorder_->snapshot());
  }

  std::shared_ptr<const telemetry::Report> telemetry_report() const {
    return report_;
  }

  // The run's recorder, for observers that sample the flight-recorder rings
  // while workers are live (telemetry::Monitor).  Null at Level::kOff.
  const telemetry::Recorder* recorder() const { return recorder_; }

  SortStats stats() const {
    SortStats s;
    s.n = data_.size();
    s.workers = nominal_threads_;
    s.crashed_workers = crashed_.load(std::memory_order_relaxed);
    s.completed_workers = completed_.load(std::memory_order_relaxed);
    s.max_build_iters = max_build_iters_.load(std::memory_order_relaxed);
    s.total_build_iters = total_build_iters_.load(std::memory_order_relaxed);
    s.cas_failures = cas_failures_.load(std::memory_order_relaxed);
    s.cas_successes = install_cas_.load(std::memory_order_relaxed);
    s.fat_read_misses = fat_misses_.load(std::memory_order_relaxed);
    s.telemetry = report_;
    s.tree_depth = measured_depth();
    s.phase1_ms = static_cast<double>(phase1_us_.load(std::memory_order_relaxed)) / 1000.0;
    s.phase2_ms = static_cast<double>(phase2_us_.load(std::memory_order_relaxed)) / 1000.0;
    s.phase3_ms = static_cast<double>(phase3_us_.load(std::memory_order_relaxed)) / 1000.0;
    return s;
  }

  TreeState<Key, Compare>& state() { return st_; }
  const TreeState<Key, Compare>& state() const { return st_; }

 private:
  static std::uint64_t batch_jobs(std::uint64_t n, std::uint64_t batch) {
    return (n + batch - 1) / batch;
  }

  struct LcShared {
    std::uint32_t levels = 0;      // H: fat-tree levels
    std::uint64_t slice_len = 0;   // S = 2^H - 1
    std::uint32_t groups = 0;      // sqrt-style group count
    // Group pre-sort structures, placement-new'd into arena storage by
    // init_lc (`constructed` tracks how many pairs the dtor must unwind).
    TreeState<Key, Compare>* group_states = nullptr;
    Wat* group_wats = nullptr;
    std::uint32_t constructed = 0;
    WinnerTree winner;
    FatTree fat;
    LcWat insert_wat;  // randomized phase-1 allocation, one job per K-run
    LcMarks sum_marks;
    LcMarks place_marks;
    // The winner slice's sorted order (global element indices).  Every
    // worker that reaches Stage C before a publication builds the identical
    // contents into its OWN slice of `sorted_bufs` (one slice per worker
    // id, so concurrent builders never write the same bytes) and the first
    // CAS wins; losers simply adopt the published pointer.
    std::int64_t* sorted_bufs = nullptr;  // [sorted_slots] x [slice_len]
    std::uint32_t sorted_slots = 0;
    std::atomic<const std::int64_t*> sorted_idx{nullptr};

    LcShared(std::uint32_t levels_in, std::uint64_t slice_in, std::uint32_t groups_in,
             std::uint32_t threads, std::uint32_t copies, std::uint64_t n,
             std::uint64_t insert_jobs, RunArena& arena)
        : levels(levels_in),
          slice_len(slice_in),
          groups(groups_in),
          winner(threads, /*wait_unit=*/4, arena),
          fat(levels_in, copies, arena),
          insert_wat(insert_jobs, arena),
          sum_marks(n, arena),
          place_marks(n, arena) {}
    ~LcShared() {
      for (std::uint32_t g = constructed; g-- > 0;) {
        group_wats[g].~Wat();
        group_states[g].~TreeState();
      }
    }
  };

  void init_lc() {
    const std::uint64_t n = data_.size();
    // S = 2^H - 1 <= sqrt(N): the fat tree seeds the top ~ (log N)/2 levels.
    const std::uint32_t levels = std::max<std::uint32_t>(1, log2_floor(isqrt(n) + 1));
    const std::uint64_t slice = (std::uint64_t{1} << levels) - 1;
    const std::uint32_t groups = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        std::max<std::uint32_t>(1, isqrt(nominal_threads_)), n / slice));
    const std::uint32_t copies =
        opts_.lc_copies != 0 ? opts_.lc_copies
                             : std::max<std::uint32_t>(2, isqrt(nominal_threads_));
    RunArena& arena = *arena_;
    lc_ = arena.create<LcShared>(levels, slice, groups, nominal_threads_, copies,
                                 n, batch_jobs(n, wat_batch_), arena);
    lc_->group_states = static_cast<TreeState<Key, Compare>*>(
        arena.raw(sizeof(TreeState<Key, Compare>) * groups));
    lc_->group_wats = static_cast<Wat*>(arena.raw(sizeof(Wat) * groups));
    for (std::uint32_t g = 0; g < groups; ++g) {
      auto keys = std::span<const Key>(data_.data() + g * slice, slice);
      ::new (static_cast<void*>(lc_->group_states + g))
          TreeState<Key, Compare>(keys, st_.cmp, arena);
      ::new (static_cast<void*>(lc_->group_wats + g))
          Wat(batch_jobs(slice, wat_batch_), arena);
      ++lc_->constructed;
    }
    // One sorted-order buffer per worker id the run can legally use (same
    // bound as the telemetry slots: SortSession replacement ids included).
    lc_->sorted_slots = std::max(nominal_threads_, kTelemetrySlots);
    lc_->sorted_bufs = arena.make<std::int64_t>(
        static_cast<std::size_t>(lc_->sorted_slots) * slice);
  }

  // Flush a per-worker phase-1 tally into the shared statistics — one RMW
  // per counter per worker instead of three per element.
  void flush_build(const BuildTally& tally) {
    if (tally.iterations != 0) {
      total_build_iters_.fetch_add(tally.iterations, std::memory_order_relaxed);
      atomic_fetch_max(max_build_iters_, tally.max_iterations);
    }
    if (tally.cas_failures != 0) {
      cas_failures_.fetch_add(tally.cas_failures, std::memory_order_relaxed);
    }
    if (tally.installs != 0) {
      install_cas_.fetch_add(tally.installs, std::memory_order_relaxed);
    }
  }

  // Claim output chunks and copy them into the caller's buffer.  Only run
  // by workers that completed every phase: their traversal's acquire loads
  // ordered every emission before this point.
  void assist_copy_back() {
    completed_.fetch_add(1, std::memory_order_acq_rel);
    if (!copy_back_) return;
    while (true) {
      const std::uint64_t c = copy_next_.fetch_add(1, std::memory_order_relaxed);
      if (c >= copy_chunks_) return;
      copy_chunk(c);
      copy_done_[c].store(1, std::memory_order_release);
    }
  }

  void copy_chunk(std::uint64_t c) {
    const std::size_t lo = static_cast<std::size_t>(c * kCopyChunk);
    const std::size_t hi = std::min(data_.size(), lo + kCopyChunk);
    for (std::size_t i = lo; i < hi; ++i) {
      data_[i] = st_.out[i].load(std::memory_order_relaxed);
    }
  }

  // --- deterministic variant (Section 2) ---
  // `Tel` is telemetry::WorkerScratch* (recording) or std::nullptr_t; the
  // nullptr instantiation strips every telemetry site at compile time.
  template <typename Tel>
  bool run_deterministic(std::uint32_t tid, runtime::FaultPlan* plan, Tel tel) {
    constexpr bool kTel = telemetry::kTelEnabled<Tel>;
    const auto chk = [plan, tid] { return plan == nullptr || plan->checkpoint(tid); };
    [[maybe_unused]] bool tel_detail = false;
    if constexpr (kTel) tel_detail = tel->detail;
    const std::int64_t n = st_.n();

    PhaseClock clock;
    clock.start();
    if constexpr (kTel) tel->begin_phase(telemetry::PhaseId::kBuild);
    // Phase 1: WAT-allocated tree building, one batch of adjacent jobs per
    // claimed leaf.
    BuildTally tally;
    std::int64_t node = wat_.initial_leaf(tid, nominal_threads_);
    [[maybe_unused]] std::uint64_t wat_probes = 1;  // WAT nodes since last claim
    while (true) {
      if (!chk()) {
        flush_build(tally);
        return false;
      }
      if (wat_.is_job_leaf(node)) {
        if constexpr (kTel) {
          if (tel_detail) {
            tel->count(telemetry::Counter::kWatClaims);
            tel->count(telemetry::Counter::kWatProbes, wat_probes);
            tel->rep.wat_probes.add(wat_probes);
            tel->emit(telemetry::FlightKind::kWatClaim, 0,
                      static_cast<std::uint32_t>(wat_probes), wat_.job_of(node));
            wat_probes = 0;
          }
        }
        const std::int64_t lo =
            static_cast<std::int64_t>(wat_.job_of(node) * wat_batch_);
        const std::int64_t hi =
            std::min<std::int64_t>(n, lo + static_cast<std::int64_t>(wat_batch_));
        if (!build_batch(st_, lo, hi, tally, chk, tel)) {
          flush_build(tally);
          return false;
        }
      }
      node = wat_.next_element(node);
      if constexpr (kTel) {
        if (tel_detail) ++wat_probes;
      }
      if (node == Wat::kAllJobsDone) break;
    }
    flush_build(tally);
    clock.lap(phase1_us_);
    // Phases 2 and 3.
    if constexpr (kTel) tel->begin_phase(telemetry::PhaseId::kSum);
    if (!tree_sum(st_, tid, chk)) return false;
    clock.lap(phase2_us_);
    if constexpr (kTel) tel->begin_phase(telemetry::PhaseId::kPlace);
    if (!find_place_emit(st_, tid, opts_.prune, seq_cutoff_, chk, tel)) return false;
    clock.lap(phase3_us_);
    return true;
  }

  // --- deterministic variant with the blocked-partition phase 1 ---
  // Same worker contract as run_deterministic: helps every sweep to its own
  // completion, crashes leave only idempotent state, nobody waits.  Sweep
  // structure and its correctness argument live in partition_phase.h; the
  // phase clock maps classify/scatter/buckets onto the phase1/2/3 slots.
  template <typename Tel>
  bool run_partition(std::uint32_t tid, runtime::FaultPlan* plan, Tel tel) {
    constexpr bool kTel = telemetry::kTelEnabled<Tel>;
    const auto chk = [plan, tid] { return plan == nullptr || plan->checkpoint(tid); };
    [[maybe_unused]] bool tel_detail = false;
    if constexpr (kTel) tel_detail = tel->detail;
    PartitionShared<Key>& ps = *part_;
    // thread_local: pooled workers keep the classify/scatter scratch warm
    // across runs (run_worker is never reentrant on one thread).
    static thread_local PartitionLocal<Key> local;
    local.begin_run();

    const auto flush = [&] {
      if constexpr (kTel) {
        if (tel_detail) {
          tel->count(telemetry::Counter::kLeafBlocks, local.tally.blocks);
          tel->count(telemetry::Counter::kLeafInsertionSorts,
                     local.tally.insertion_sorts);
          tel->count(telemetry::Counter::kLeafHeapsorts, local.tally.heapsorts);
          tel->count(telemetry::Counter::kPartitionSwaps,
                     local.tally.partition_swaps);
          if (ps.buckets > 1) {
            tel->count(telemetry::Counter::kSplitterSamples,
                       static_cast<std::uint64_t>(ps.sample_size));
          }
        }
      }
    };
    // Drive `wat` to completion, running `job` on every claimed leaf — the
    // run_deterministic phase-1 loop, generalized over the job body.
    [[maybe_unused]] std::uint64_t wat_probes = 1;
    const auto drive = [&](Wat& wat, auto&& job) -> bool {
      std::int64_t node = wat.initial_leaf(tid, nominal_threads_);
      if constexpr (kTel) wat_probes = 1;
      while (true) {
        if (!chk()) return false;
        if (wat.is_job_leaf(node)) {
          if constexpr (kTel) {
            if (tel_detail) {
              tel->count(telemetry::Counter::kWatClaims);
              tel->count(telemetry::Counter::kWatProbes, wat_probes);
              tel->rep.wat_probes.add(wat_probes);
              tel->emit(telemetry::FlightKind::kWatClaim, 0,
                        static_cast<std::uint32_t>(wat_probes), wat.job_of(node));
              wat_probes = 0;
            }
          }
          if (!job(static_cast<std::int64_t>(wat.job_of(node)))) return false;
        }
        node = wat.next_element(node);
        if constexpr (kTel) {
          if (tel_detail) ++wat_probes;
        }
        if (node == Wat::kAllJobsDone) return true;
      }
    };

    PhaseClock clock;
    clock.start();
    if constexpr (kTel) tel->begin_phase(telemetry::PhaseId::kPartClassify);
    bool ok = partition_prepare(st_, ps, local, chk) &&
              drive(ps.classify_wat, [&](std::int64_t c) {
                return partition_classify(st_, ps, local, c, chk);
              });
    if (!ok) {
      flush();
      return false;
    }
    clock.lap(phase1_us_);

    if constexpr (kTel) tel->begin_phase(telemetry::PhaseId::kPartScatter);
    ok = partition_offsets(ps, local, chk) &&
         drive(ps.scatter_wat, [&](std::int64_t c) {
           return partition_scatter(st_, ps, local, c, chk);
         });
    if (!ok) {
      flush();
      return false;
    }
    clock.lap(phase2_us_);

    if constexpr (kTel) tel->begin_phase(telemetry::PhaseId::kPartSort);
    ok = drive(ps.bucket_wat, [&](std::int64_t b) {
      return partition_bucket(st_, ps, local, b, chk);
    });
    flush();
    if (!ok) return false;
    clock.lap(phase3_us_);
    return true;
  }

  // --- randomized low-contention variant (Section 3) ---
  template <typename Tel>
  bool run_low_contention(std::uint32_t tid, runtime::FaultPlan* plan, Tel tel) {
    constexpr bool kTel = telemetry::kTelEnabled<Tel>;
    const auto chk = [plan, tid] { return plan == nullptr || plan->checkpoint(tid); };
    [[maybe_unused]] bool tel_detail = false;
    if constexpr (kTel) tel_detail = tel->detail;
    LcShared& lc = *lc_;
    PhaseClock clock;
    clock.start();
    BuildTally tally;
    std::uint64_t fat_misses = 0;

    // Stage A: this worker's group pre-sorts its slice with the
    // deterministic algorithm (paper step 1).
    if constexpr (kTel) tel->begin_phase(telemetry::PhaseId::kLcPresort);
    const std::uint32_t group = tid % lc.groups;
    const std::uint32_t group_workers =
        std::max<std::uint32_t>(1, nominal_threads_ / lc.groups);
    TreeState<Key, Compare>& gst = lc.group_states[group];
    Wat& gwat = lc.group_wats[group];
    const std::int64_t slice_n = static_cast<std::int64_t>(lc.slice_len);
    std::int64_t node = gwat.initial_leaf(tid / lc.groups, group_workers);
    [[maybe_unused]] std::uint64_t wat_probes = 1;  // WAT nodes since last claim
    while (true) {
      if (!chk()) {
        flush_build(tally);
        return false;
      }
      if (gwat.is_job_leaf(node)) {
        if constexpr (kTel) {
          if (tel_detail) {
            tel->count(telemetry::Counter::kWatClaims);
            tel->count(telemetry::Counter::kWatProbes, wat_probes);
            tel->rep.wat_probes.add(wat_probes);
            tel->emit(telemetry::FlightKind::kWatClaim, 0,
                      static_cast<std::uint32_t>(wat_probes), gwat.job_of(node));
            wat_probes = 0;
          }
        }
        const std::int64_t lo =
            static_cast<std::int64_t>(gwat.job_of(node) * wat_batch_);
        const std::int64_t hi =
            std::min<std::int64_t>(slice_n, lo + static_cast<std::int64_t>(wat_batch_));
        if (!build_batch(gst, lo, hi, tally, chk, tel)) {
          flush_build(tally);
          return false;
        }
      }
      node = gwat.next_element(node);
      if constexpr (kTel) {
        if (tel_detail) ++wat_probes;
      }
      if (node == Wat::kAllJobsDone) break;
    }
    if (!tree_sum(gst, tid, chk)) {
      flush_build(tally);
      return false;
    }
    if (!find_place_emit(gst, tid, PrunePlaced::kNo, seq_cutoff_, chk, tel)) {
      flush_build(tally);
      return false;
    }

    // Stage B: pick the winning group (paper step 2; Figure 9).
    if constexpr (kTel) tel->begin_phase(telemetry::PhaseId::kLcWinner);
    Rng rng_winner = worker_stage_rng(opts_.seed, tid, LcRngStage::kWinner);
    const std::int64_t w = lc.winner.compete(tid, group, rng_winner);

    // Stage C: reconstruct the winner slice's sorted order (global element
    // indices).  The winner candidate was submitted by a worker that
    // completed the slice, so every place is set and the contents are the
    // same for every worker — each builder fills its own per-worker buffer
    // (never shared bytes), the first to finish publishes its pointer
    // write-once, and everyone else reuses the published copy.
    if constexpr (kTel) tel->begin_phase(telemetry::PhaseId::kLcSortedIdx);
    const std::int64_t* si = lc.sorted_idx.load(std::memory_order_acquire);
    if (si == nullptr) {
      WFSORT_CHECK(tid < lc.sorted_slots);
      std::int64_t* built =
          lc.sorted_bufs + static_cast<std::uint64_t>(tid) * lc.slice_len;
      TreeState<Key, Compare>& wst = lc.group_states[static_cast<std::size_t>(w)];
      for (std::uint64_t i = 0; i < lc.slice_len; ++i) {
        if (!chk()) {
          flush_build(tally);
          return false;
        }
        const std::int64_t pl = wst.place_of(static_cast<std::int64_t>(i));
        WFSORT_CHECK(pl > 0);
        built[static_cast<std::size_t>(pl - 1)] =
            static_cast<std::int64_t>(w) * static_cast<std::int64_t>(lc.slice_len) +
            static_cast<std::int64_t>(i);
      }
      const std::int64_t* expected = nullptr;
      if (lc.sorted_idx.compare_exchange_strong(expected, built,
                                                std::memory_order_acq_rel,
                                                std::memory_order_acquire)) {
        si = built;
      } else {
        si = expected;  // someone else published first; ours is ignored
      }
    }
    const std::span<const std::int64_t> sorted_idx(si, lc.slice_len);

    // Stage D: fatten the winner tree (write-most) and stitch its structure
    // into the main pivot tree.  All writes are idempotent (identical values
    // from every worker), so no coordination is needed.
    if constexpr (kTel) tel->begin_phase(telemetry::PhaseId::kLcFatten);
    Rng rng_fatten = worker_stage_rng(opts_.seed, tid, LcRngStage::kFatten);
    lc.fat.write_random_cells(sorted_idx, lc.fat.fill_quota(nominal_threads_), rng_fatten);
    const std::int64_t root = sorted_idx[lc.fat.rank_of(0)];
    st_.set_root(root);
    for (std::uint64_t f = 0; f < lc.fat.node_count(); ++f) {
      if (!chk()) {
        flush_build(tally);
        return false;
      }
      const std::int64_t pe = sorted_idx[lc.fat.rank_of(f)];
      if (!lc.fat.is_leaf(f)) {
        const std::int64_t se = sorted_idx[lc.fat.rank_of(lc.fat.left(f))];
        const std::int64_t be = sorted_idx[lc.fat.rank_of(lc.fat.right(f))];
        st_.child_slot(pe, kSmall).store(se, std::memory_order_release);
        st_.child_slot(pe, kBig).store(be, std::memory_order_release);
      }
    }

    // Stage E: insert every remaining element (paper step 3).  Work is
    // allocated by random probing (LC-WAT) — one job per STRIPE of
    // ~wat_batch elements (job j covers {j, j+J, j+2J, ...} with J the job
    // count; the paper's K of Lemma 2.7), so the coupon-collector probing
    // cost is paid per stripe, not per element.  Stripes, unlike contiguous
    // runs, keep the seed's depth guarantee: the per-element random order
    // this work allocation doubles as is what bounds the tree depth on
    // adversarial inputs, and a contiguous run of sorted input is a
    // ready-made chain no claim order can unchain (blocks concatenate;
    // measured depth 370 at N=4096 sorted).  A stripe is an even sample of
    // the whole index range, so inserting it in bit-reversed order is
    // globally self-balancing — first stripe claimed anywhere partitions
    // the range like a balanced tree, and every later stripe lands spread
    // across it.  Elements descend the fat tree eight at a time with a
    // pre-drawn copy plane and prefetch (fat_handoffs), then enter the
    // pivot tree through build_lanes with bounded CAS backoff.
    if constexpr (kTel) tel->begin_phase(telemetry::PhaseId::kLcInsert);
    Rng rng_insert = worker_stage_rng(opts_.seed, tid, LcRngStage::kInsert);
    const std::int64_t wbase = static_cast<std::int64_t>(w) *
                               static_cast<std::int64_t>(lc.slice_len);
    const std::int64_t wend = wbase + static_cast<std::int64_t>(lc.slice_len);
    const std::int64_t n = st_.n();
    std::uint64_t fat_reads = 0;
    // thread_local: pooled workers keep the stripe buffer's capacity warm
    // across runs (run_worker is never reentrant on one thread).
    static thread_local std::vector<std::int64_t> run;
    run.clear();
    run.reserve(static_cast<std::size_t>(wat_batch_));
    [[maybe_unused]] std::uint64_t lcwat_probes = 0;  // step() calls since last claim
    const auto insert_run = [&](std::uint64_t j) {
      if constexpr (kTel) {
        if (tel_detail) {
          tel->count(telemetry::Counter::kWatClaims);
          tel->count(telemetry::Counter::kWatProbes, lcwat_probes);
          tel->rep.wat_probes.add(lcwat_probes);
          tel->emit(telemetry::FlightKind::kWatClaim, 1,
                    static_cast<std::uint32_t>(lcwat_probes), j);
          lcwat_probes = 0;
        }
      }
      const std::uint64_t stride = lc.insert_wat.jobs();
      const std::uint64_t un = static_cast<std::uint64_t>(n);
      const std::uint64_t len = (un - j + stride - 1) / stride;  // stripe size
      const std::uint32_t bits = log2_ceil(next_pow2(len));
      run.clear();
      for (std::uint64_t k = 0; k < (std::uint64_t{1} << bits); ++k) {
        const std::uint64_t off = bit_reverse(k, bits);
        if (off >= len) continue;
        const std::int64_t i = static_cast<std::int64_t>(j + off * stride);
        if (i >= wbase && i < wend) continue;  // already in the tree (fat top)
        run.push_back(i);
      }
      // The run is claimed (marked DONE) only after this returns, so the
      // fault checkpoint stays OUTSIDE: a crashed worker's partial run is
      // re-executed by whoever probes the leaf next, and every insert is
      // idempotent.
      const auto no_abort = [] { return true; };
      for (std::size_t pos = 0; pos < run.size(); pos += kBuildLanes) {
        const int cnt = static_cast<int>(
            std::min<std::size_t>(kBuildLanes, run.size() - pos));
        std::int64_t parents[kBuildLanes];
        fat_handoffs(run.data() + pos, cnt, sorted_idx, rng_insert, fat_misses,
                     fat_reads, parents);
        build_lanes(st_, run.data() + pos, parents, cnt, opts_.backoff_limit,
                    tally, no_abort, tel);
      }
    };
    const auto flush_insert = [&] {
      flush_build(tally);
      if (fat_misses != 0) fat_misses_.fetch_add(fat_misses, std::memory_order_relaxed);
      if constexpr (kTel) {
        if (tel_detail) {
          tel->count(telemetry::Counter::kFatMisses, fat_misses);
          tel->count(telemetry::Counter::kFatHits, fat_reads - fat_misses);
          tel->count(telemetry::Counter::kBackoffSpins, tally.backoff_spins);
        }
      }
    };
    while (true) {
      if (!chk()) {
        flush_insert();
        return false;
      }
      if constexpr (kTel) {
        if (tel_detail) ++lcwat_probes;
      }
      if (lc.insert_wat.step(rng_insert, insert_run) == LcWat::Outcome::kQuit) break;
    }
    flush_insert();

    clock.lap(phase1_us_);
    // Stages F, G: randomized summation and placement (Section 3.3), with
    // per-worker probe tallies flushed once per stage.
    LcProbeTally probe_tally;
    const auto flush_probes = [&] {
      if constexpr (kTel) {
        if (tel_detail) {
          tel->count(telemetry::Counter::kLcProbes, probe_tally.probes);
          tel->count(telemetry::Counter::kLcBurstVisits, probe_tally.visits);
          probe_tally = {};
        }
      }
    };
    if constexpr (kTel) tel->begin_phase(telemetry::PhaseId::kSum);
    Rng rng_sum = worker_stage_rng(opts_.seed, tid, LcRngStage::kSum);
    const bool sum_ok =
        lc_tree_sum(st_, lc.sum_marks, rng_sum, opts_.lc_burst, probe_tally, chk);
    flush_probes();
    if (!sum_ok) return false;
    clock.lap(phase2_us_);
    if constexpr (kTel) tel->begin_phase(telemetry::PhaseId::kPlace);
    Rng rng_place = worker_stage_rng(opts_.seed, tid, LcRngStage::kPlace);
    const bool place_ok = lc_find_place_emit(st_, lc.place_marks, rng_place,
                                             opts_.lc_burst, probe_tally, chk);
    flush_probes();
    if (!place_ok) return false;
    clock.lap(phase3_us_);
    return true;
  }

  // Batched fat-tree descents for up to kBuildLanes elements: each element
  // draws ONE copy plane for its whole descent (plane-major layout makes the
  // path a compact prefix of that plane), the next node of every in-flight
  // descent is prefetched, and an unfilled cell falls back to the
  // authoritative slice.  Routing is identical to the one-at-a-time form —
  // only the cache misses overlap.
  void fat_handoffs(const std::int64_t* elems, int count,
                    std::span<const std::int64_t> sorted_idx, Rng& rng,
                    std::uint64_t& fat_misses, std::uint64_t& fat_reads,
                    std::int64_t* parents) {
    LcShared& lc = *lc_;
    std::uint64_t node[kBuildLanes];
    std::uint32_t copy[kBuildLanes];
    bool done[kBuildLanes];
    for (int k = 0; k < count; ++k) {
      node[k] = 0;
      copy[k] = lc.fat.draw_copy(rng);
      done[k] = false;
      lc.fat.prefetch(0, copy[k]);
    }
    int remaining = count;
    while (remaining > 0) {
      for (int k = 0; k < count; ++k) {
        if (done[k]) continue;
        ++fat_reads;
        std::int64_t e = lc.fat.read_copy(node[k], copy[k], &fat_misses);
        if (e == FatTree::kEmptyCell) e = sorted_idx[lc.fat.rank_of(node[k])];
        if (lc.fat.is_leaf(node[k])) {
          parents[k] = e;
          done[k] = true;
          --remaining;
          continue;
        }
        node[k] = st_.less(elems[k], e) ? lc.fat.left(node[k]) : lc.fat.right(node[k]);
        lc.fat.prefetch(node[k], copy[k]);
      }
    }
  }

  // Pivot-tree depth is a diagnostic, not a by-product of the sort: it is
  // measured lazily, the first time stats() wants it, so plain (statsless)
  // runs skip the full-tree walk entirely.  Same calling contract as
  // stats(): workers joined, at least one completed.
  std::uint32_t measured_depth() const {
    if (measured_depth_ == 0 && data_.size() > 1 && result_ready()) {
      measured_depth_ = st_.measure_depth();
    }
    return measured_depth_;
  }

  std::span<Key> data_;
  Options opts_;
  Variant effective_variant_;
  std::uint32_t nominal_threads_;
  std::uint64_t wat_batch_;
  std::uint64_t seq_cutoff_;
  bool copy_back_;
  // The run's storage substrate (declared before every structure that
  // borrows from it; destroyed after them).  arena_ points at own_arena_
  // on the cold path and at SortPool's recycled arena on the pooled path.
  RunArena own_arena_;
  RunArena* arena_;
  TreeState<Key, Compare> st_;
  Wat wat_;
  LcShared* lc_ = nullptr;                // arena-placed; dtor runs in ~Engine
  PartitionShared<Key>* part_ = nullptr;  // Phase1::kPartition only; ditto

  std::uint64_t copy_chunks_ = 0;
  std::atomic<std::uint64_t> copy_next_{0};
  ArenaArray<std::atomic<std::uint8_t>> copy_done_;

  telemetry::Recorder* recorder_ = nullptr;  // borrowed (pool) or owned below
  std::unique_ptr<telemetry::Recorder> recorder_owned_;
  std::shared_ptr<const telemetry::Report> report_;

  std::atomic<std::uint64_t> max_build_iters_{0};
  std::atomic<std::uint64_t> total_build_iters_{0};
  std::atomic<std::uint64_t> cas_failures_{0};
  std::atomic<std::uint64_t> install_cas_{0};
  std::atomic<std::uint32_t> completed_{0};
  std::atomic<std::uint32_t> crashed_{0};
  mutable std::uint32_t measured_depth_ = 0;  // lazy; see measured_depth()
  std::atomic<std::uint64_t> fat_misses_{0};
  std::atomic<std::uint64_t> phase1_us_{0};
  std::atomic<std::uint64_t> phase2_us_{0};
  std::atomic<std::uint64_t> phase3_us_{0};
};

}  // namespace wfsort::detail
