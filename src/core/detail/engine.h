// The sort engine: shared state plus the per-worker program.
//
// One Engine instance lives for the duration of one sort.  Any number of
// workers (threads) may execute run_worker() concurrently; each worker runs
// every phase to its own completion, so the sorted result is ready as soon
// as ANY ONE worker returns true — that is the wait-freedom guarantee made
// operational.  Workers that crash (fault injection returns false) leave
// only idempotent or write-once state behind and never endanger the rest.
//
// finalize() copies the assembled output back into the caller's buffer; it
// must be called after the worker threads are joined and at least one
// completed.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/bits.h"
#include "common/check.h"
#include "common/rng.h"
#include "core/detail/build_phase.h"
#include "core/detail/lc_phase.h"
#include "core/detail/sum_place_phase.h"
#include "core/detail/tree_state.h"
#include "core/options.h"
#include "lowcontention/fat_tree.h"
#include "lowcontention/winner_tree.h"
#include "runtime/fault_plan.h"
#include "workalloc/lcwat.h"
#include "workalloc/wat.h"

namespace wfsort::detail {

inline void atomic_fetch_max(std::atomic<std::uint64_t>& a, std::uint64_t v) {
  std::uint64_t cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

// Phase durations are tracked as integral microseconds so the max can be
// maintained with a plain atomic.
class PhaseClock {
 public:
  void start() { t0_ = std::chrono::steady_clock::now(); }
  // Record the elapsed time into `slot` (max over workers) and restart.
  void lap(std::atomic<std::uint64_t>& slot) {
    const auto now = std::chrono::steady_clock::now();
    const auto us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(now - t0_).count());
    atomic_fetch_max(slot, us);
    t0_ = now;
  }

 private:
  std::chrono::steady_clock::time_point t0_{};
};

template <typename Key, typename Compare>
class Engine {
 public:
  // Below this size the low-contention variant falls back to the
  // deterministic one: with fewer elements than this there is no slice worth
  // pre-sorting and no contention worth spreading.
  static constexpr std::uint64_t kLcMinN = 64;

  Engine(std::span<Key> data, Compare cmp, const Options& opts)
      : data_(data),
        opts_(opts),
        nominal_threads_(opts.resolved_threads()),
        st_(std::span<const Key>(data.data(), data.size()), cmp),
        wat_(data.size() < 2 ? 1 : data.size()) {
    effective_variant_ = opts.variant;
    if (effective_variant_ == Variant::kLowContention && data.size() < kLcMinN) {
      effective_variant_ = Variant::kDeterministic;
    }
    if (effective_variant_ == Variant::kLowContention) init_lc();
  }

  Variant effective_variant() const { return effective_variant_; }

  // Execute all phases as worker `tid`.  Returns false if the fault plan
  // aborted this worker ("crash"); shared state remains safe for others.
  bool run_worker(std::uint32_t tid, runtime::FaultPlan* plan = nullptr) {
    if (data_.size() <= 1) {
      completed_.fetch_add(1, std::memory_order_acq_rel);
      return true;
    }
    const bool ok = effective_variant_ == Variant::kDeterministic
                        ? run_deterministic(tid, plan)
                        : run_low_contention(tid, plan);
    if (!ok) crashed_.fetch_add(1, std::memory_order_acq_rel);
    return ok;
  }

  // True once some worker has completed all phases (result fully assembled).
  bool result_ready() const { return completed_.load(std::memory_order_acquire) > 0; }

  // Copy the sorted output into the caller's buffer.  Call with all workers
  // joined (or known crashed) and result_ready().
  void finalize() {
    if (data_.size() <= 1) return;
    WFSORT_CHECK(result_ready());
    WFSORT_DCHECK(st_.all_placed());
    for (std::size_t i = 0; i < data_.size(); ++i) {
      data_[i] = st_.out[i].load(std::memory_order_relaxed);
    }
    measured_depth_ = st_.measure_depth();
  }

  SortStats stats() const {
    SortStats s;
    s.n = data_.size();
    s.workers = nominal_threads_;
    s.crashed_workers = crashed_.load(std::memory_order_relaxed);
    s.completed_workers = completed_.load(std::memory_order_relaxed);
    s.max_build_iters = max_build_iters_.load(std::memory_order_relaxed);
    s.total_build_iters = total_build_iters_.load(std::memory_order_relaxed);
    s.cas_failures = cas_failures_.load(std::memory_order_relaxed);
    s.fat_read_misses = fat_misses_.load(std::memory_order_relaxed);
    s.tree_depth = measured_depth_;
    s.phase1_ms = static_cast<double>(phase1_us_.load(std::memory_order_relaxed)) / 1000.0;
    s.phase2_ms = static_cast<double>(phase2_us_.load(std::memory_order_relaxed)) / 1000.0;
    s.phase3_ms = static_cast<double>(phase3_us_.load(std::memory_order_relaxed)) / 1000.0;
    return s;
  }

  TreeState<Key, Compare>& state() { return st_; }
  const TreeState<Key, Compare>& state() const { return st_; }

 private:
  struct LcShared {
    std::uint32_t levels = 0;      // H: fat-tree levels
    std::uint64_t slice_len = 0;   // S = 2^H - 1
    std::uint32_t groups = 0;      // sqrt-style group count
    std::vector<std::unique_ptr<TreeState<Key, Compare>>> group_states;
    std::vector<std::unique_ptr<Wat>> group_wats;
    WinnerTree winner;
    FatTree fat;
    LcWat insert_wat;  // randomized phase-1 work allocation over all N jobs
    LcMarks sum_marks;
    LcMarks place_marks;

    LcShared(std::uint32_t levels_in, std::uint64_t slice_in, std::uint32_t groups_in,
             std::uint32_t threads, std::uint32_t copies, std::uint64_t n)
        : levels(levels_in),
          slice_len(slice_in),
          groups(groups_in),
          winner(threads),
          fat(levels_in, copies),
          insert_wat(n),
          sum_marks(n),
          place_marks(n) {}
  };

  void init_lc() {
    const std::uint64_t n = data_.size();
    // S = 2^H - 1 <= sqrt(N): the fat tree seeds the top ~ (log N)/2 levels.
    const std::uint32_t levels = std::max<std::uint32_t>(1, log2_floor(isqrt(n) + 1));
    const std::uint64_t slice = (std::uint64_t{1} << levels) - 1;
    const std::uint32_t groups = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        std::max<std::uint32_t>(1, isqrt(nominal_threads_)), n / slice));
    const std::uint32_t copies =
        opts_.lc_copies != 0 ? opts_.lc_copies
                             : std::max<std::uint32_t>(2, isqrt(nominal_threads_));
    lc_ = std::make_unique<LcShared>(levels, slice, groups, nominal_threads_, copies, n);
    for (std::uint32_t g = 0; g < groups; ++g) {
      auto keys = std::span<const Key>(data_.data() + g * slice, slice);
      lc_->group_states.push_back(
          std::make_unique<TreeState<Key, Compare>>(keys, st_.cmp));
      lc_->group_wats.push_back(std::make_unique<Wat>(slice));
    }
  }

  void record_build(const BuildResult& r) {
    total_build_iters_.fetch_add(r.iterations, std::memory_order_relaxed);
    cas_failures_.fetch_add(r.cas_failures, std::memory_order_relaxed);
    atomic_fetch_max(max_build_iters_, r.iterations);
  }

  // --- deterministic variant (Section 2) ---
  bool run_deterministic(std::uint32_t tid, runtime::FaultPlan* plan) {
    const auto chk = [plan, tid] { return plan == nullptr || plan->checkpoint(tid); };

    PhaseClock clock;
    clock.start();
    // Phase 1: WAT-allocated tree building.
    std::int64_t node = wat_.initial_leaf(tid, nominal_threads_);
    while (true) {
      if (!chk()) return false;
      if (wat_.is_job_leaf(node)) {
        record_build(build_one(st_, static_cast<std::int64_t>(wat_.job_of(node))));
      }
      node = wat_.next_element(node);
      if (node == Wat::kAllJobsDone) break;
    }
    clock.lap(phase1_us_);
    // Phases 2 and 3.
    if (!tree_sum(st_, tid, chk)) return false;
    clock.lap(phase2_us_);
    if (!find_place_emit(st_, tid, opts_.prune, chk)) return false;
    clock.lap(phase3_us_);
    completed_.fetch_add(1, std::memory_order_acq_rel);
    return true;
  }

  // --- randomized low-contention variant (Section 3) ---
  bool run_low_contention(std::uint32_t tid, runtime::FaultPlan* plan) {
    const auto chk = [plan, tid] { return plan == nullptr || plan->checkpoint(tid); };
    LcShared& lc = *lc_;
    Rng rng = Rng(opts_.seed).fork(tid);
    PhaseClock clock;
    clock.start();

    // Stage A: this worker's group pre-sorts its slice with the
    // deterministic algorithm (paper step 1).
    const std::uint32_t group = tid % lc.groups;
    const std::uint32_t group_workers =
        std::max<std::uint32_t>(1, nominal_threads_ / lc.groups);
    TreeState<Key, Compare>& gst = *lc.group_states[group];
    Wat& gwat = *lc.group_wats[group];
    std::int64_t node = gwat.initial_leaf(tid / lc.groups, group_workers);
    while (true) {
      if (!chk()) return false;
      if (gwat.is_job_leaf(node)) {
        record_build(build_one(gst, static_cast<std::int64_t>(gwat.job_of(node))));
      }
      node = gwat.next_element(node);
      if (node == Wat::kAllJobsDone) break;
    }
    if (!tree_sum(gst, tid, chk)) return false;
    if (!find_place_emit(gst, tid, PrunePlaced::kNo, chk)) return false;

    // Stage B: pick the winning group (paper step 2; Figure 9).
    const std::int64_t w = lc.winner.compete(tid, group, rng);

    // Stage C: reconstruct the winner slice's sorted order (global element
    // indices).  The winner candidate was submitted by a worker that
    // completed the slice, so every place is set.
    std::vector<std::int64_t> sorted_idx(lc.slice_len);
    {
      TreeState<Key, Compare>& wst = *lc.group_states[static_cast<std::size_t>(w)];
      for (std::uint64_t i = 0; i < lc.slice_len; ++i) {
        const std::int64_t pl = wst.place_of(static_cast<std::int64_t>(i));
        WFSORT_CHECK(pl > 0);
        sorted_idx[static_cast<std::size_t>(pl - 1)] =
            static_cast<std::int64_t>(w) * static_cast<std::int64_t>(lc.slice_len) +
            static_cast<std::int64_t>(i);
      }
    }

    // Stage D: fatten the winner tree (write-most) and stitch its structure
    // into the main pivot tree.  All writes are idempotent (identical values
    // from every worker), so no coordination is needed.
    lc.fat.write_random_cells(sorted_idx, lc.fat.fill_quota(nominal_threads_), rng);
    const std::int64_t root = sorted_idx[lc.fat.rank_of(0)];
    st_.set_root(root);
    for (std::uint64_t f = 0; f < lc.fat.node_count(); ++f) {
      if (!chk()) return false;
      const std::int64_t pe = sorted_idx[lc.fat.rank_of(f)];
      if (!lc.fat.is_leaf(f)) {
        const std::int64_t se = sorted_idx[lc.fat.rank_of(lc.fat.left(f))];
        const std::int64_t be = sorted_idx[lc.fat.rank_of(lc.fat.right(f))];
        st_.child_slot(pe, kSmall).store(se, std::memory_order_release);
        st_.child_slot(pe, kBig).store(be, std::memory_order_release);
      }
    }

    // Stage E: insert every remaining element (paper step 3).  Work is
    // allocated by random probing (LC-WAT), which doubles as the random
    // insertion order that keeps the tree depth O(log N) on any input;
    // descents go through the fat tree, dividing top-level contention.
    const std::int64_t wbase = static_cast<std::int64_t>(w) *
                               static_cast<std::int64_t>(lc.slice_len);
    const std::int64_t wend = wbase + static_cast<std::int64_t>(lc.slice_len);
    while (true) {
      if (!chk()) return false;
      const auto outcome = lc.insert_wat.step(rng, [&](std::uint64_t j) {
        const std::int64_t i = static_cast<std::int64_t>(j);
        if (i >= wbase && i < wend) return;  // already in the tree (fat top)
        insert_via_fat(i, sorted_idx, rng);
      });
      if (outcome == LcWat::Outcome::kQuit) break;
    }

    clock.lap(phase1_us_);
    // Stages F, G: randomized summation and placement (Section 3.3).
    if (!lc_tree_sum(st_, lc.sum_marks, rng, chk)) return false;
    clock.lap(phase2_us_);
    if (!lc_find_place_emit(st_, lc.place_marks, rng, chk)) return false;
    clock.lap(phase3_us_);
    completed_.fetch_add(1, std::memory_order_acq_rel);
    return true;
  }

  void insert_via_fat(std::int64_t i, std::span<const std::int64_t> sorted_idx, Rng& rng) {
    LcShared& lc = *lc_;
    std::uint64_t misses = 0;
    std::uint64_t f = 0;
    while (!lc.fat.is_leaf(f)) {
      const std::int64_t e = lc.fat.read(f, sorted_idx, rng, &misses);
      f = st_.less(i, e) ? lc.fat.left(f) : lc.fat.right(f);
    }
    const std::int64_t handoff = lc.fat.read(f, sorted_idx, rng, &misses);
    if (misses != 0) fat_misses_.fetch_add(misses, std::memory_order_relaxed);
    record_build(build_from(st_, i, handoff));
  }

  std::span<Key> data_;
  Options opts_;
  Variant effective_variant_;
  std::uint32_t nominal_threads_;
  TreeState<Key, Compare> st_;
  Wat wat_;
  std::unique_ptr<LcShared> lc_;

  std::atomic<std::uint64_t> max_build_iters_{0};
  std::atomic<std::uint64_t> total_build_iters_{0};
  std::atomic<std::uint64_t> cas_failures_{0};
  std::atomic<std::uint32_t> completed_{0};
  std::atomic<std::uint32_t> crashed_{0};
  std::uint32_t measured_depth_ = 0;
  std::atomic<std::uint64_t> fat_misses_{0};
  std::atomic<std::uint64_t> phase1_us_{0};
  std::atomic<std::uint64_t> phase2_us_{0};
  std::atomic<std::uint64_t> phase3_us_{0};
};

}  // namespace wfsort::detail
