// Randomized low-contention summation and placement (paper Section 3.3).
//
// Both phases follow the LC-WAT blueprint of Figure 8, but the tree being
// probed is the Quicksort pivot tree itself: processors repeatedly pick a
// *uniformly random element* and act on it, so no element — in particular
// not the pivot root — collects the Theta(P) polling traffic of the
// deterministic traversals.
//
//   Summation:  a probed element whose children are both summed gets its
//               size written and is marked DONE (bottom-up); marking the
//               root switches to ALLDONE, which spreads back down; a
//               processor that observes ALLDONE quits.
//   Placement:  the paper's "three passes": place values are written going
//               DOWN the tree (a probe on a placed element places its
//               children), DONE propagates up once a node is placed and its
//               children are DONE, and ALLDONE spreads down again.
//
// Native fast-path refinements (docs/native_engine.md), mirroring the
// LC-WAT ones and equally bounded:
//
//   * Probe bursts: a probe that lands on actionable work expands it into a
//     bounded local walk of at most Options::lc_burst node visits (an
//     explicit-stack DFS — post-order for summation, place-down/mark-up for
//     placement) instead of returning to uniform probing after one node.
//     The literal paper algorithm processes one node per probe and pays a
//     coupon-collector tail of empty probes per *node*; bursts pay it per
//     *region*.  Every visit is idempotent and still polls the fault
//     checkpoint, so crash-tolerance and wait-freedom are untouched, and
//     lc_burst = 1 degenerates to the paper's exact behaviour.
//   * Full ALLDONE sweep: the processor that marks the root ALLDONE
//     immediately marks EVERY element ALLDONE (one bounded sweep of plain
//     stores), so everyone else's next probe observes the announcement
//     wherever it lands.  The paper's one-level-per-quitter down-wave is
//     kept as the crash-tolerant fallback (the sweeper may die mid-sweep).
//   * Quit on ALLDONE *anywhere*: ALLDONE is only ever derived from a
//     completed root, so observing it on any element — leaf included — is
//     proof the phase is finished.  (The pre-sweep code had to keep probing
//     past childless ALLDONE leaves to guarantee the wave kept spreading;
//     with the full sweep that would busy-loop forever instead.)
//   * Frontier fallback: after kLcStallLimit consecutive probes that found
//     nothing actionable, the next burst starts at the ROOT and descends
//     only into unfinished children — which is precisely the unfinished
//     frontier.  Pure uniform probing pays a coupon-collector tail per
//     remaining node once the actionable set shrinks (measured: ~22 probes
//     per element at N=2^20), and the placement pass additionally starts
//     with a frontier of ONE node (the root) that uniform probes need
//     expected N draws to find.  The fallback bounds root traffic instead
//     of eliminating the hot-spot bound: a worker visits the root at most
//     once per kLcStallLimit + 1 probes, and bursts randomize their descent
//     (coin-flip child order) so stalled workers fan out across the
//     frontier instead of racing down its leftmost path.
//
// Places are pushed downward from the parent rather than pulled up via
// parent pointers: a parent pointer would have to be written by the install
// CAS winner *after* its CAS, and a crash between the two writes would
// strand the element forever.  Downward propagation only ever reads
// child pointers, which are written atomically by the install itself.
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/rng.h"
#include "core/detail/tree_state.h"

namespace wfsort::detail {

enum LcMark : std::uint8_t { kLcEmpty = 0, kLcDone = 1, kLcAllDone = 2 };

// Per-phase announcement flags, one byte per element.
class LcMarks {
 public:
  explicit LcMarks(std::size_t n) : marks_(n) { init(); }

  // Pooled form: the mark bytes borrow RunArena storage.
  LcMarks(std::size_t n, RunArena& arena) : marks_(n, arena) { init(); }

  LcMark get(std::int64_t i) const {
    return static_cast<LcMark>(
        marks_[static_cast<std::size_t>(i)].load(std::memory_order_acquire));
  }
  void set(std::int64_t i, LcMark m) {
    marks_[static_cast<std::size_t>(i)].store(m, std::memory_order_release);
  }
  // The full ALLDONE sweep (run by the root-marker; idempotent).
  void set_all(LcMark m) {
    for (std::size_t i = 0; i < marks_.size(); ++i) {
      marks_[i].store(m, std::memory_order_release);
    }
  }

 private:
  void init() {
    for (std::size_t i = 0; i < marks_.size(); ++i) {
      marks_[i].store(kLcEmpty, std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

  ArenaArray<std::atomic<std::uint8_t>> marks_;
};

// Per-worker accumulator for the randomized phases, flushed into telemetry
// (kLcProbes / kLcBurstVisits) once per stage by the engine.
struct LcProbeTally {
  std::uint64_t probes = 0;  // uniform random probes issued
  std::uint64_t visits = 0;  // burst frames processed (>= useful node work)
};

// DFS frame of a probe burst.  `expanded` distinguishes the first (top-down)
// visit of a node from its post-order (bottom-up) revisit.
struct LcBurstFrame {
  std::int64_t node;
  bool expanded;
};

// Consecutive unproductive probes before a worker falls back to descending
// from the root (see header comment).
inline constexpr int kLcStallLimit = 16;

// Randomized phase 2.  Returns false only if `keep_going` aborts the worker.
template <typename Key, typename Compare, typename Check>
bool lc_tree_sum(TreeState<Key, Compare>& st, LcMarks& marks, Rng& rng,
                 std::uint32_t burst, LcProbeTally& tally, Check&& keep_going) {
  const std::int64_t n = st.n();
  if (n == 0) return true;
  const std::uint64_t un = static_cast<std::uint64_t>(n);
  const std::uint64_t budget = burst == 0 ? 1 : burst;

  // Reused across runs so a pooled worker's steady-state probes allocate
  // nothing; run_worker is never reentrant on one thread, so the scratch
  // cannot be aliased.
  static thread_local std::vector<LcBurstFrame> stack;
  stack.clear();
  stack.reserve(static_cast<std::size_t>(budget) + 2);

  // Sum `e` if both children are summed; returns true if `e` was the root
  // (phase complete, sweep issued).
  const auto try_sum = [&](std::int64_t e) -> bool {
    const std::int64_t l = st.child_of(e, kSmall);
    const std::int64_t r = st.child_of(e, kBig);
    const bool l_done = (l == kNoIdx) || marks.get(l) != kLcEmpty;
    const bool r_done = (r == kNoIdx) || marks.get(r) != kLcEmpty;
    if (!l_done || !r_done) return false;
    st.set_size(e, st.size_of(l) + st.size_of(r) + 1);
    if (e == st.root_idx()) {
      marks.set(e, kLcAllDone);
      marks.set_all(kLcAllDone);
      return true;
    }
    marks.set(e, kLcDone);
    return false;
  };

  int stall = 0;
  while (true) {
    if (!keep_going()) return false;
    ++tally.probes;
    std::int64_t e;
    if (stall >= kLcStallLimit) {
      e = st.root_idx();  // frontier fallback: the root is EMPTY until the end
      stall = 0;
    } else {
      e = static_cast<std::int64_t>(rng.below(un));
    }
    const LcMark v = marks.get(e);

    if (v == kLcAllDone) {
      // Figure-8 fallback wave: push one level down, then quit (ALLDONE is
      // only ever derived from a completed root, so quitting is sound even
      // on a childless element).
      const std::int64_t l = st.child_of(e, kSmall);
      const std::int64_t r = st.child_of(e, kBig);
      if (l != kNoIdx) marks.set(l, kLcAllDone);
      if (r != kNoIdx) marks.set(r, kLcAllDone);
      return true;
    }
    if (v != kLcEmpty) {
      ++stall;
      continue;
    }
    stall = 0;

    // Post-order burst: sum the subtree under `e` bottom-up.  Only first
    // visits are charged against the budget; once it is spent, unexplored
    // (non-expanded) frames are discarded and the remaining post-order
    // revisits drain for free — each node pushes at most one of those, so
    // the walk stays bounded, and whatever was abandoned is idempotently
    // picked up by any later probe, by anyone.
    stack.clear();
    stack.push_back({e, false});
    std::uint64_t used = 0;
    while (!stack.empty()) {
      if (!keep_going()) return false;
      const LcBurstFrame f = stack.back();
      stack.pop_back();
      if (!f.expanded && used >= budget) continue;
      if (!f.expanded) ++used;
      if (marks.get(f.node) != kLcEmpty) continue;
      if (try_sum(f.node)) {
        tally.visits += used;
        return true;
      }
      if (!f.expanded) {
        stack.push_back({f.node, true});
        std::int64_t l = st.child_of(f.node, kSmall);
        std::int64_t r = st.child_of(f.node, kBig);
        if (rng.coin()) std::swap(l, r);  // spread racing workers out
        if (r != kNoIdx && marks.get(r) == kLcEmpty) stack.push_back({r, false});
        if (l != kNoIdx && marks.get(l) == kLcEmpty) stack.push_back({l, false});
      }
    }
    tally.visits += used;
  }
}

// Randomized phase 3 with output emission.
template <typename Key, typename Compare, typename Check>
bool lc_find_place_emit(TreeState<Key, Compare>& st, LcMarks& marks, Rng& rng,
                        std::uint32_t burst, LcProbeTally& tally,
                        Check&& keep_going) {
  const std::int64_t n = st.n();
  if (n == 0) return true;
  const std::uint64_t un = static_cast<std::uint64_t>(n);
  const std::int64_t root = st.root_idx();
  const std::uint64_t budget = burst == 0 ? 1 : burst;

  static thread_local std::vector<LcBurstFrame> stack;  // see lc_tree_sum
  stack.clear();
  stack.reserve(static_cast<std::size_t>(budget) + 2);

  // Downward rule: a placed element places its children.
  //   place(small child) = place(e) - size(small child's BIG subtree) - 1
  //   place(big child)   = place(e) + size(big child's SMALL subtree) + 1
  const auto place_children = [&](std::int64_t pl, std::int64_t l,
                                  std::int64_t r) {
    if (l != kNoIdx && st.place_of(l) == 0) {
      st.emit(l, pl - st.size_of(st.child_of(l, kBig)) - 1);
    }
    if (r != kNoIdx && st.place_of(r) == 0) {
      st.emit(r, pl + st.size_of(st.child_of(r, kSmall)) + 1);
    }
  };

  // Upward rule: placed + both children announced => announce.  Returns
  // true if `e` was the root (phase complete, sweep issued).
  const auto try_mark = [&](std::int64_t e, std::int64_t l,
                            std::int64_t r) -> bool {
    if (marks.get(e) != kLcEmpty || st.place_of(e) == 0) return false;
    const bool l_done = (l == kNoIdx) || marks.get(l) != kLcEmpty;
    const bool r_done = (r == kNoIdx) || marks.get(r) != kLcEmpty;
    if (!l_done || !r_done) return false;
    if (e == root) {
      marks.set(e, kLcAllDone);
      marks.set_all(kLcAllDone);
      return true;
    }
    marks.set(e, kLcDone);
    return false;
  };

  int stall = 0;
  while (true) {
    if (!keep_going()) return false;
    ++tally.probes;
    std::int64_t e;
    if (stall >= kLcStallLimit) {
      // Frontier fallback.  Doubly important here: the placed frontier
      // starts as just the root, which uniform probes find only after
      // expected N draws.
      e = root;
      stall = 0;
    } else {
      e = static_cast<std::int64_t>(rng.below(un));
    }
    const LcMark v = marks.get(e);

    if (v == kLcAllDone) {  // fallback wave: push one level down, quit
      const std::int64_t l = st.child_of(e, kSmall);
      const std::int64_t r = st.child_of(e, kBig);
      if (l != kNoIdx) marks.set(l, kLcAllDone);
      if (r != kNoIdx) marks.set(r, kLcAllDone);
      return true;
    }
    if (v != kLcEmpty) {
      ++stall;
      continue;
    }

    // Root rule: its place depends only on its SMALL subtree size.
    if (e == root && st.place_of(e) == 0) {
      st.emit(e, st.size_of(st.child_of(e, kSmall)) + 1);
    }
    if (st.place_of(e) == 0) {
      ++stall;
      continue;  // unreached by the down-pass yet
    }
    stall = 0;

    // Burst: place the subtree under `e` top-down and mark it DONE
    // bottom-up.  First visit of a node places its children (pre-order),
    // the revisit applies the upward mark rule (post-order).  Budget
    // accounting as in lc_tree_sum: first visits are charged, post-order
    // revisits drain for free once the budget is spent.
    stack.clear();
    stack.push_back({e, false});
    std::uint64_t used = 0;
    bool swept = false;
    while (!stack.empty()) {
      if (!keep_going()) return false;
      const LcBurstFrame f = stack.back();
      stack.pop_back();
      const std::int64_t l = st.child_of(f.node, kSmall);
      const std::int64_t r = st.child_of(f.node, kBig);
      if (!f.expanded) {
        if (used >= budget) continue;
        ++used;
        const std::int64_t pl = st.place_of(f.node);
        if (pl == 0) continue;  // raced; a later probe re-descends
        place_children(pl, l, r);
        stack.push_back({f.node, true});
        std::int64_t a = l;
        std::int64_t b = r;
        if (rng.coin()) std::swap(a, b);  // spread racing workers out
        if (b != kNoIdx && marks.get(b) == kLcEmpty) stack.push_back({b, false});
        if (a != kNoIdx && marks.get(a) == kLcEmpty) stack.push_back({a, false});
      } else if (try_mark(f.node, l, r)) {
        swept = true;
        break;
      }
    }
    tally.visits += used;
    if (swept) return true;
  }
}

}  // namespace wfsort::detail
