// Randomized low-contention summation and placement (paper Section 3.3).
//
// Both phases follow the LC-WAT blueprint of Figure 8, but the tree being
// probed is the Quicksort pivot tree itself: processors repeatedly pick a
// *uniformly random element* and act on it, so no element — in particular
// not the pivot root — collects the Theta(P) polling traffic of the
// deterministic traversals.
//
//   Summation:  a probed element whose children are both summed gets its
//               size written and is marked DONE (bottom-up); marking the
//               root switches to ALLDONE, which spreads back down; a
//               processor that pushes ALLDONE one level quits.
//   Placement:  the paper's "three passes": place values are written going
//               DOWN the tree (a probe on a placed element places its
//               children), DONE propagates up once a node is placed and its
//               children are DONE, and ALLDONE spreads down again.
//
// Places are pushed downward from the parent rather than pulled up via
// parent pointers: a parent pointer would have to be written by the install
// CAS winner *after* its CAS, and a crash between the two writes would
// strand the element forever.  Downward propagation only ever reads
// child pointers, which are written atomically by the install itself.
//
// Quitting on ALLDONE is what makes per-processor completion sound here:
// DONE reaches the root only after every descendant is summed/placed, so a
// processor that has seen ALLDONE knows the whole phase is finished — no
// per-processor full traversal is needed, unlike the deterministic variant.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/detail/tree_state.h"

namespace wfsort::detail {

enum LcMark : std::uint8_t { kLcEmpty = 0, kLcDone = 1, kLcAllDone = 2 };

// Per-phase announcement flags, one byte per element.
class LcMarks {
 public:
  explicit LcMarks(std::size_t n) : marks_(n) {
    for (auto& m : marks_) m.store(kLcEmpty, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

  LcMark get(std::int64_t i) const {
    return static_cast<LcMark>(
        marks_[static_cast<std::size_t>(i)].load(std::memory_order_acquire));
  }
  void set(std::int64_t i, LcMark m) {
    marks_[static_cast<std::size_t>(i)].store(m, std::memory_order_release);
  }

 private:
  std::vector<std::atomic<std::uint8_t>> marks_;
};

// Randomized phase 2.  Returns false only if `keep_going` aborts the worker.
template <typename Key, typename Compare, typename Check>
bool lc_tree_sum(TreeState<Key, Compare>& st, LcMarks& marks, Rng& rng,
                 Check&& keep_going) {
  const std::int64_t n = st.n();
  if (n == 0) return true;
  const std::uint64_t un = static_cast<std::uint64_t>(n);
  while (true) {
    if (!keep_going()) return false;
    const std::int64_t e = static_cast<std::int64_t>(rng.below(un));
    const LcMark v = marks.get(e);
    const std::int64_t l = st.child_of(e, kSmall);
    const std::int64_t r = st.child_of(e, kBig);

    if (v == kLcEmpty) {
      const bool l_done = (l == kNoIdx) || marks.get(l) != kLcEmpty;
      const bool r_done = (r == kNoIdx) || marks.get(r) != kLcEmpty;
      if (l_done && r_done) {
        const std::int64_t total = st.size_of(l) + st.size_of(r) + 1;
        st.set_size(e, total);
        marks.set(e, e == st.root_idx() ? kLcAllDone : kLcDone);
      }
      continue;
    }
    if (v == kLcAllDone) {
      if (l != kNoIdx || r != kNoIdx) {
        if (l != kNoIdx) marks.set(l, kLcAllDone);
        if (r != kNoIdx) marks.set(r, kLcAllDone);
        return true;
      }
      if (e == st.root_idx()) return true;  // single-element tree
    }
  }
}

// Randomized phase 3 with output emission.
template <typename Key, typename Compare, typename Check>
bool lc_find_place_emit(TreeState<Key, Compare>& st, LcMarks& marks, Rng& rng,
                        Check&& keep_going) {
  const std::int64_t n = st.n();
  if (n == 0) return true;
  const std::uint64_t un = static_cast<std::uint64_t>(n);
  const std::int64_t root = st.root_idx();

  const auto emit = [&st](std::int64_t node, std::int64_t pl) { st.emit(node, pl); };

  while (true) {
    if (!keep_going()) return false;
    const std::int64_t e = static_cast<std::int64_t>(rng.below(un));
    const LcMark v = marks.get(e);
    const std::int64_t l = st.child_of(e, kSmall);
    const std::int64_t r = st.child_of(e, kBig);

    if (v == kLcAllDone) {  // announcement dissemination
      if (l != kNoIdx || r != kNoIdx) {
        if (l != kNoIdx) marks.set(l, kLcAllDone);
        if (r != kNoIdx) marks.set(r, kLcAllDone);
        return true;
      }
      if (e == root) return true;
      continue;
    }

    // Root rule: its place depends only on its SMALL subtree size.
    if (e == root && st.place_of(e) == 0) emit(e, st.size_of(l) + 1);

    // Downward rule: a placed element places its children.
    //   place(small child) = place(e) - size(small child's BIG subtree) - 1
    //   place(big child)   = place(e) + size(big child's SMALL subtree) + 1
    const std::int64_t pl = st.place_of(e);
    if (pl > 0) {
      if (l != kNoIdx && st.place_of(l) == 0) {
        emit(l, pl - st.size_of(st.child_of(l, kBig)) - 1);
      }
      if (r != kNoIdx && st.place_of(r) == 0) {
        emit(r, pl + st.size_of(st.child_of(r, kSmall)) + 1);
      }
      // Upward rule: placed + both children announced => announce.
      if (v == kLcEmpty) {
        const bool l_done = (l == kNoIdx) || marks.get(l) != kLcEmpty;
        const bool r_done = (r == kNoIdx) || marks.get(r) != kLcEmpty;
        if (l_done && r_done) marks.set(e, e == root ? kLcAllDone : kLcDone);
      }
    }
  }
}

}  // namespace wfsort::detail
