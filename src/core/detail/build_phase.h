// Phase 1 — building the Quicksort pivot tree (paper Figure 4).
//
// Every element is inserted by walking from the root and CASing itself into
// the first EMPTY child slot on its (deterministic) search path.  Facts 1-6
// of the paper make this wait-free with at most N-1 loop iterations
// (Lemma 2.4): child pointers are written once and never change, so
// processors working on the same element follow the same path, exactly one
// CAS per element ever succeeds, and a processor that finds its own element
// already installed simply stops.
#pragma once

#include <cstdint>

#include "core/detail/tree_state.h"

namespace wfsort::detail {

struct BuildResult {
  std::uint64_t iterations = 0;    // trips around the Figure-4 loop
  std::uint64_t cas_failures = 0;  // CAS attempts lost to another processor
};

// Insert element `i` starting the descent at `start_parent` (the pivot-tree
// root for the plain algorithm; the fat-tree handoff point for the
// low-contention variant).
template <typename Key, typename Compare>
BuildResult build_from(TreeState<Key, Compare>& st, std::int64_t i,
                       std::int64_t start_parent) {
  BuildResult r;
  std::int64_t parent = start_parent;
  while (true) {
    ++r.iterations;
    WFSORT_DCHECK(r.iterations <= static_cast<std::uint64_t>(st.n()));  // Lemma 2.4
    const Side side = st.less(i, parent) ? kSmall : kBig;
    auto& slot = st.child_slot(parent, side);
    std::int64_t expected = kNoIdx;
    if (slot.compare_exchange_strong(expected, i, std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
      return r;
    }
    // Re-read (paper line 15): either some processor installed i here
    // concurrently, or we must descend to the occupant.
    const std::int64_t c = slot.load(std::memory_order_acquire);
    WFSORT_DCHECK(c != kNoIdx);
    if (c == i) return r;
    ++r.cas_failures;
    parent = c;
  }
}

// Plain Figure-4 entry point: element 0 is the first pivot and is never
// inserted (it *is* the root).
template <typename Key, typename Compare>
BuildResult build_one(TreeState<Key, Compare>& st, std::int64_t i) {
  const std::int64_t r0 = st.root_idx();
  if (i == r0) return {};
  return build_from(st, i, r0);
}

}  // namespace wfsort::detail
