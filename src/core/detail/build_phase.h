// Phase 1 — building the Quicksort pivot tree (paper Figure 4).
//
// Every element is inserted by walking from the root and CASing itself into
// the first EMPTY child slot on its (deterministic) search path.  Facts 1-6
// of the paper make this wait-free with at most N-1 loop iterations
// (Lemma 2.4): child pointers are written once and never change, so
// processors working on the same element follow the same path, exactly one
// CAS per element ever succeeds, and a processor that finds its own element
// already installed simply stops.
//
// Two hot-path refinements over the literal Figure 4 (semantics unchanged,
// iteration counts identical):
//   * the child slot is LOADED before any CAS is attempted, so occupied
//     slots — the overwhelmingly common case on a deep descent — cost a
//     shared cache-line read instead of an RMW bus transaction;
//   * build_batch() runs several independent descents interleaved, one step
//     each in element order, prefetching every descent's next node record.
//     Descents of distinct elements never depend on each other, so this
//     only overlaps their cache misses (memory-level parallelism); each
//     element still walks exactly the path Figure 4 assigns it.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/simd.h"
#include "core/detail/tree_state.h"
#include "telemetry/recorder.h"

namespace wfsort::detail {

// Flight-recorder threshold: an element that loses at least this many
// install CASes during its descent gets a kCasFailBurst event (value = the
// element, a32 = the loss count) — the per-element signature of a root
// hot-spot, visible in `wfsort report` without wading through histograms.
inline constexpr std::uint64_t kCasBurstThreshold = 8;

struct BuildResult {
  std::uint64_t iterations = 0;    // trips around the Figure-4 loop
  std::uint64_t cas_failures = 0;  // CAS attempts / probes lost to another processor
  std::uint64_t installs = 0;      // successful installing CASes (0 or 1)
};

// Per-worker phase-1 accumulator: engine flushes it into the shared stats
// atomics once per phase instead of paying three fetch_adds per element.
struct BuildTally {
  std::uint64_t iterations = 0;
  std::uint64_t cas_failures = 0;
  std::uint64_t max_iterations = 0;
  std::uint64_t installs = 0;
  std::uint64_t backoff_spins = 0;  // pause iterations spent backing off

  void add(const BuildResult& r) {
    iterations += r.iterations;
    cas_failures += r.cas_failures;
    installs += r.installs;
    if (r.iterations > max_iterations) max_iterations = r.iterations;
  }
};

// Insert element `i` starting the descent at `start_parent` (the pivot-tree
// root for the plain algorithm; the fat-tree handoff point for the
// low-contention variant).
template <typename Key, typename Compare>
BuildResult build_from(TreeState<Key, Compare>& st, std::int64_t i,
                       std::int64_t start_parent) {
  BuildResult r;
  std::int64_t parent = start_parent;
  while (true) {
    ++r.iterations;
    WFSORT_DCHECK(r.iterations <= static_cast<std::uint64_t>(st.n()));  // Lemma 2.4
    const Side side = st.descend_side(i, parent);
    auto& slot = st.child_slot(parent, side);
    // Probe first (paper line 15 re-read, hoisted): only an EMPTY slot is
    // worth an RMW.
    std::int64_t c = slot.load(std::memory_order_acquire);
    if (c == kNoIdx) {
      std::int64_t expected = kNoIdx;
      if (slot.compare_exchange_strong(expected, i, std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
        r.installs = 1;
        return r;
      }
      c = expected;  // some processor won the slot concurrently
    }
    WFSORT_DCHECK(c != kNoIdx);
    if (c == i) return r;
    ++r.cas_failures;
    parent = c;
  }
}

// Plain Figure-4 entry point: element 0 is the first pivot and is never
// inserted (it *is* the root).
template <typename Key, typename Compare>
BuildResult build_one(TreeState<Key, Compare>& st, std::int64_t i) {
  const std::int64_t r0 = st.root_idx();
  if (i == r0) return {};
  return build_from(st, i, r0);
}

// Insert elements [lo, hi) — one WAT batch — with up to kBuildLanes descents
// in flight, stepped round-robin.  When two in-flight elements race for the
// same empty slot, the larger stalls until the smaller has had its CAS
// (smaller_rival below), so a single worker produces exactly the tree the
// batch would have produced sequentially — in particular the sorted-input
// chain of Lemma 2.4's worst case survives batching.  `keep_going` is
// polled once per completed element (the engine's fault checkpoint
// granularity); returns false if the worker was aborted.
inline constexpr int kBuildLanes = 8;
static_assert(kBuildLanes <= simd::kMaxLanes);

// One round of descent sides for every in-flight lane, batched through the
// runtime-dispatched SIMD kernel when Key/Compare qualify (element keys are
// cached in the lanes; only the parent keys are gathered — those loads warm
// the very node lines the step loop touches next).  The kernel is
// bit-identical to TreeState::descend_side — same key compare, same index
// tie-break (see common/simd.h).  When the key type does not qualify the
// step loop computes its side inline (branch-free cmov via descend_side)
// and this helper is never instantiated.
template <typename Key, typename Compare, typename Lane>
inline void batch_descend_sides(const TreeState<Key, Compare>& st,
                                simd::DescendSidesFn descend, const Lane* lanes,
                                int active, Side* sides) {
  std::uint64_t ekey[kBuildLanes], pkey[kBuildLanes];
  std::int64_t eidx[kBuildLanes], pidx[kBuildLanes];
  std::uint8_t big[kBuildLanes];
  for (int k = 0; k < active; ++k) {
    ekey[k] = lanes[k].ekey;
    eidx[k] = lanes[k].elem;
    pkey[k] = st.key_of(lanes[k].parent);
    pidx[k] = lanes[k].parent;
  }
  descend(ekey, eidx, pkey, pidx, active, big);
  for (int k = 0; k < active; ++k) sides[k] = static_cast<Side>(big[k]);
}

template <typename Key, typename Compare, typename Check,
          typename Tel = std::nullptr_t>
bool build_batch(TreeState<Key, Compare>& st, std::int64_t lo, std::int64_t hi,
                 BuildTally& tally, Check&& keep_going, Tel tel = nullptr) {
  constexpr bool kTel = telemetry::kTelEnabled<Tel>;
  struct Lane {
    std::int64_t elem;
    std::int64_t parent;
    Key ekey;  // cached key of elem, gathered once at refill for the batch compare
    std::uint64_t iterations;
    std::uint64_t fails;  // per-lane only when kTel (feeds the histogram)
  };
  [[maybe_unused]] bool tel_detail = false;
  if constexpr (kTel) tel_detail = tel != nullptr && tel->detail;
  Lane lanes[kBuildLanes];
  int active = 0;
  const std::int64_t root = st.root_idx();
  std::int64_t next = lo;

  const auto refill = [&](int slot) {
    while (next < hi) {
      const std::int64_t i = next++;
      if (i == root) continue;  // the root is never inserted
      lanes[slot] = {i, root, st.key_of(i), 0, 0};
      st.prefetch(root);
      return true;
    }
    return false;
  };

  for (int l = 0; l < kBuildLanes; ++l) {
    if (!refill(active)) break;
    ++active;
  }

  // True if some other in-flight lane holds a smaller element aimed at the
  // same empty slot.  The smaller element must win the slot (as it would
  // have sequentially), so the caller stalls this lane for the round.  Any
  // two in-flight competitors for one slot are necessarily at the same
  // parent already — a descent step always moves exactly one level down, so
  // the smaller element (started no later) can never be shallower.
  const auto smaller_rival = [&](int l, const Lane& ln, Side side) {
    for (int k = 0; k < active; ++k) {
      if (k == l || lanes[k].elem >= ln.elem || lanes[k].parent != ln.parent) continue;
      if (st.descend_side(lanes[k].elem, ln.parent) == side) return true;
    }
    return false;
  };

  // When the key type qualifies AND the record array is cache-resident
  // (simd_batch_descend), one round of sides is computed up front by the
  // SIMD kernel; otherwise the step loop computes its side inline
  // (descend_side — branch-free either way).  A retired slot inherits the
  // side of the lane swapped into it (that lane has not stepped this
  // round); a refilled slot recomputes scalar (refills happen once per
  // element — off the per-step path).
  constexpr bool kSimdOk = simd::kSimdDescend<Key, Compare>;
  [[maybe_unused]] simd::DescendSidesFn descend = nullptr;
  [[maybe_unused]] bool batch_sides = false;
  if constexpr (kSimdOk) {
    batch_sides = st.simd_batch_descend();
    if (batch_sides) descend = simd::descend_fn();
  }
  [[maybe_unused]] Side sides[kBuildLanes];
  while (active > 0) {
    if constexpr (kSimdOk) {
      if (batch_sides) batch_descend_sides(st, descend, lanes, active, sides);
    }
    for (int l = 0; l < active;) {
      Lane& ln = lanes[l];
      Side side;
      if constexpr (kSimdOk) {
        side = batch_sides ? sides[l] : st.descend_side(ln.elem, ln.parent);
      } else {
        side = st.descend_side(ln.elem, ln.parent);
      }
      auto& slot = st.child_slot(ln.parent, side);
      std::int64_t c = slot.load(std::memory_order_acquire);
      bool installed = false;
      if (c == kNoIdx) {
        if (smaller_rival(l, ln, side)) {
          ++l;  // stall: re-probe next round, after the rival's CAS
          continue;
        }
        std::int64_t expected = kNoIdx;
        installed = slot.compare_exchange_strong(expected, ln.elem,
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_acquire);
        if (!installed) c = expected;
      }
      ++ln.iterations;
      WFSORT_DCHECK(ln.iterations <= static_cast<std::uint64_t>(st.n()));
      if (installed || c == ln.elem) {
        if constexpr (kTel) {
          tally.add({ln.iterations, ln.fails, installed ? 1u : 0u});
          if (tel_detail) {
            tel->rep.cas_retries.add(ln.fails);
            tel->count(telemetry::Counter::kCasFailures, ln.fails);
            if (installed) tel->count(telemetry::Counter::kCasInstalls);
            if (ln.fails >= kCasBurstThreshold) {
              tel->emit(telemetry::FlightKind::kCasFailBurst, 0,
                        static_cast<std::uint32_t>(ln.fails),
                        static_cast<std::uint64_t>(ln.elem));
            }
          }
        } else {
          tally.add({ln.iterations, 0, installed ? 1u : 0u});
        }
        if (!keep_going()) {
          if constexpr (kTel) {
            // Aborted mid-batch: fold the still-in-flight lanes' lost probes
            // into the tally so crash paths report the same counts as direct
            // accumulation (slot l was already added above).
            for (int k = 0; k < active; ++k) {
              if (k != l) tally.cas_failures += lanes[k].fails;
            }
          }
          return false;
        }
        if (refill(l)) {
          if constexpr (kSimdOk) {
            if (batch_sides) {
              sides[l] = st.descend_side(lanes[l].elem, lanes[l].parent);
            }
          }
        } else {
          lanes[l] = lanes[--active];  // retire the lane
          if constexpr (kSimdOk) {
            if (batch_sides) sides[l] = sides[active];
          }
        }
        continue;  // the new occupant of slot l steps next
      }
      if constexpr (kTel) {
        ++ln.fails;
      } else {
        ++tally.cas_failures;
      }
      ln.parent = c;
      st.prefetch(c);  // overlap this miss with the other lanes' steps
      ++l;
    }
  }
  return true;
}

// One PAUSE-class spin (x86 `pause`, arm `yield`): tells the core we are in
// a spin-wait so it releases pipeline resources without yielding the OS
// thread — yielding would forfeit wait-freedom accounting (the spin is a
// bounded number of *own* steps; a syscall sleep is not a step at all).
inline void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

// Bounded exponential backoff schedule: the k-th lost install CAS costs
// min(2^k, 2^limit) pause iterations; limit = 0 disables backoff entirely.
// The bound keeps the delay a constant number of own steps, so the Lemma 2.4
// wait-freedom argument is unchanged — backoff only spaces retries out, it
// never waits *for* anybody.
inline std::uint32_t backoff_spins(std::uint32_t attempt, std::uint32_t limit) {
  if (attempt == 0 || limit == 0) return 0;
  return 1u << (attempt < limit ? attempt : limit);
}

// Insert `count` (<= kBuildLanes) elements, element k descending from its
// own start parent `parents[k]` — the low-contention stage-E form, where
// each element enters the pivot tree at its fat-tree handoff point rather
// than the root.  Descents are stepped round-robin with prefetch like
// build_batch, but there is no smaller-rival stall: LC descents start at
// unrelated interior nodes, so no sequential-equivalence shape claim exists
// to preserve (the LC tree is randomized by construction).  A lane that
// loses an install CAS backs off exponentially (bounded by `backoff_limit`)
// before re-probing, keeping repeat losers off the contended line.
template <typename Key, typename Compare, typename Check,
          typename Tel = std::nullptr_t>
bool build_lanes(TreeState<Key, Compare>& st, const std::int64_t* elems,
                 const std::int64_t* parents, int count,
                 std::uint32_t backoff_limit, BuildTally& tally,
                 Check&& keep_going, Tel tel = nullptr) {
  constexpr bool kTel = telemetry::kTelEnabled<Tel>;
  struct Lane {
    std::int64_t elem;
    std::int64_t parent;
    Key ekey;  // cached key of elem, gathered once at startup for the batch compare
    std::uint64_t iterations;
    std::uint64_t fails;
    std::uint32_t lost;  // lost install CASes (drives the backoff schedule)
  };
  [[maybe_unused]] bool tel_detail = false;
  if constexpr (kTel) tel_detail = tel != nullptr && tel->detail;
  Lane lanes[kBuildLanes];
  int active = 0;
  for (int k = 0; k < count && active < kBuildLanes; ++k) {
    lanes[active++] = {elems[k], parents[k], st.key_of(elems[k]), 0, 0, 0};
    st.prefetch(parents[k]);
  }

  constexpr bool kSimdOk = simd::kSimdDescend<Key, Compare>;
  [[maybe_unused]] simd::DescendSidesFn descend = nullptr;
  [[maybe_unused]] bool batch_sides = false;
  if constexpr (kSimdOk) {
    batch_sides = st.simd_batch_descend();
    if (batch_sides) descend = simd::descend_fn();
  }
  [[maybe_unused]] Side sides[kBuildLanes];
  while (active > 0) {
    if constexpr (kSimdOk) {
      if (batch_sides) batch_descend_sides(st, descend, lanes, active, sides);
    }
    for (int l = 0; l < active;) {
      Lane& ln = lanes[l];
      Side side;
      if constexpr (kSimdOk) {
        side = batch_sides ? sides[l] : st.descend_side(ln.elem, ln.parent);
      } else {
        side = st.descend_side(ln.elem, ln.parent);
      }
      auto& slot = st.child_slot(ln.parent, side);
      std::int64_t c = slot.load(std::memory_order_acquire);
      bool installed = false;
      if (c == kNoIdx) {
        std::int64_t expected = kNoIdx;
        installed = slot.compare_exchange_strong(expected, ln.elem,
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_acquire);
        if (!installed) {
          c = expected;
          const std::uint32_t spins = backoff_spins(++ln.lost, backoff_limit);
          for (std::uint32_t s = 0; s < spins; ++s) cpu_pause();
          tally.backoff_spins += spins;
        }
      }
      ++ln.iterations;
      WFSORT_DCHECK(ln.iterations <= static_cast<std::uint64_t>(st.n()));
      if (installed || c == ln.elem) {
        if constexpr (kTel) {
          tally.add({ln.iterations, ln.fails, installed ? 1u : 0u});
          if (tel_detail) {
            tel->rep.cas_retries.add(ln.fails);
            tel->count(telemetry::Counter::kCasFailures, ln.fails);
            if (installed) tel->count(telemetry::Counter::kCasInstalls);
            if (ln.fails >= kCasBurstThreshold) {
              tel->emit(telemetry::FlightKind::kCasFailBurst, 0,
                        static_cast<std::uint32_t>(ln.fails),
                        static_cast<std::uint64_t>(ln.elem));
            }
          }
        } else {
          tally.add({ln.iterations, 0, installed ? 1u : 0u});
        }
        if (!keep_going()) {
          if constexpr (kTel) {
            for (int k = 0; k < active; ++k) {
              if (k != l) tally.cas_failures += lanes[k].fails;
            }
          }
          return false;
        }
        lanes[l] = lanes[--active];  // retire the lane
        if constexpr (kSimdOk) {
          if (batch_sides) sides[l] = sides[active];
        }
        continue;
      }
      if constexpr (kTel) {
        ++ln.fails;
      } else {
        ++tally.cas_failures;
      }
      ln.parent = c;
      st.prefetch(c);
      ++l;
    }
  }
  return true;
}

}  // namespace wfsort::detail
