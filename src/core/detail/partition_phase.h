// Alternative phase 1 — blocked in-place parallel partition
// (Options::Phase1::kPartition).
//
// The paper's phase 1 inserts every element into a pivot tree: N descents of
// ~log N dependent cache misses, each ending in a CAS.  That is where the
// sequential gap against std::sort lives.  This phase replaces the tree with
// the composition of two ideas from PAPERS.md — Kuszmaul & Westover's
// blocked in-place parallel partition (linear work, no per-element CAS) and
// Cole–Ramachandran's SPMS-style sampled splitters — while keeping the
// paper's OWN machinery for everything concurrency-related: work is claimed
// from Wats (batched, crash-recovering), every job is idempotent, and nobody
// ever waits for anybody.
//
// Three linear sweeps, each a Wat whose jobs every worker helps drive to
// completion:
//
//   classify   jobs = chunks of kChunk elements.  The worker histograms its
//              chunk against the splitters, STORES the per-bucket counts
//              (identical from every worker — idempotent) into the shared
//              hist table, and caches each element's bucket id.
//   scatter    jobs = the same chunks.  With the full histogram visible, the
//              destination of every element is a deterministic function of
//              (chunk, bucket, rank-in-chunk): worker reads the cached
//              bucket ids and stores each element's (key, index) into its
//              slot of the scattered arrays.  Concurrent duplicates write
//              identical values to identical slots.
//   buckets    jobs = buckets.  The worker copies one bucket's scattered
//              pairs into PRIVATE scratch, sorts them with leaf_sort, and
//              emits consecutive ranks from the bucket's base.  (The copy is
//              load-bearing: two workers may sort the same bucket
//              concurrently, and an in-place sort of shared memory would
//              interleave swaps — each sorts its own copy; emits are
//              idempotent.)
//
// Sweep ordering without barriers: a worker starts sweep k+1 only after ITS
// sweep-k Wat loop returned kAllJobsDone, which acquire-read the done flags
// of every job on the way — the Wat's release-mark/acquire-read discipline
// makes all sweep-k writes visible (transitive happens-before), and a slow
// worker is never waited for because fast workers redo its unmarked jobs.
//
// Splitters are deterministic and computed locally by every worker: a fixed
// stride sample of kOversample*B elements, leaf-sorted by (key, index), with
// every kOversample-th taken as a bucket boundary.  Bucketing by the number
// of splitters strictly below an item (the same total order as
// TreeState::less) makes bucket ranks a refinement of the global (key,
// index) order, so the emitted output is bit-identical to the tree path's —
// including on all-equal keys, where the index tie-break keeps both
// splitters and buckets balanced.
//
// Wait-freedom: every worker executes O(n) own steps across the sweeps plus
// O(jobs log jobs) Wat steps — far inside the certifier's 14·N·log2 N
// own-step bound, which test_waitfree_cert checks on this variant too.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "common/arena.h"
#include "common/check.h"
#include "core/detail/leaf_sort.h"
#include "core/detail/tree_state.h"
#include "workalloc/wat.h"

namespace wfsort::detail {

// Shared, write-idempotent state of one partition-phase run.
template <typename Key>
struct PartitionShared {
  static constexpr std::int64_t kChunk = 2048;      // elements per classify/scatter job
  static constexpr std::int64_t kMaxBuckets = 1024;
  static constexpr std::int64_t kOversample = 8;    // sample items per bucket

  std::int64_t n = 0;
  std::int64_t chunks = 0;
  std::int64_t buckets = 0;
  std::int64_t sample_size = 0;  // kOversample * buckets, capped at n

  // Flat, immutable key copy made before the workers start.  The classify
  // and scatter sweeps stream every key once each; reading them out of the
  // 64-byte packed node records would move 8x the necessary bytes (and the
  // caller's buffer is off-limits once finished workers start copying the
  // output back over it), so the partition phase keeps its own dense copy —
  // sizeof(Key) per element, sequential.
  ArenaArray<Key> keys;
  // chunks x buckets per-chunk bucket counts (row-major).  Written with
  // relaxed stores of identical values; completeness and visibility are
  // gated by classify_wat's done flags, never by the values themselves.
  ArenaArray<std::atomic<std::uint32_t>> hist;
  // Per-element bucket id, filled by classify and read back by scatter so
  // the splitter binary search runs once per element, not twice.  Same
  // idempotent-store / ALLDONE-gated discipline as `hist`; uint16 because
  // kMaxBuckets is 1024.
  ArenaArray<std::atomic<std::uint16_t>> bucket_id;
  // Scattered (key, index) pairs, one deterministic slot per element.  The
  // index fits uint32 by the ctor CHECK below.
  ArenaArray<std::atomic<Key>> skey;
  ArenaArray<std::atomic<std::uint32_t>> sidx;

  Wat classify_wat;
  Wat scatter_wat;
  Wat bucket_wat;

  explicit PartitionShared(std::span<const Key> input)
      : n(static_cast<std::int64_t>(input.size())),
        chunks((n + kChunk - 1) / kChunk),
        buckets(std::min(std::max<std::int64_t>(n / kChunk, 1), kMaxBuckets)),
        sample_size(std::min(kOversample * buckets, n)),
        keys(input.size()),
        hist(static_cast<std::size_t>(chunks * buckets)),
        bucket_id(static_cast<std::size_t>(n)),
        skey(static_cast<std::size_t>(n)),
        sidx(static_cast<std::size_t>(n)),
        classify_wat(static_cast<std::uint64_t>(chunks)),
        scatter_wat(static_cast<std::uint64_t>(chunks)),
        bucket_wat(static_cast<std::uint64_t>(buckets)) {
    init(input);
  }

  // Pooled form: all shared arrays and Wat done-bits borrow RunArena storage.
  PartitionShared(std::span<const Key> input, RunArena& arena)
      : n(static_cast<std::int64_t>(input.size())),
        chunks((n + kChunk - 1) / kChunk),
        buckets(std::min(std::max<std::int64_t>(n / kChunk, 1), kMaxBuckets)),
        sample_size(std::min(kOversample * buckets, n)),
        keys(input.size(), arena),
        hist(static_cast<std::size_t>(chunks * buckets), arena),
        bucket_id(static_cast<std::size_t>(n), arena),
        skey(static_cast<std::size_t>(n), arena),
        sidx(static_cast<std::size_t>(n), arena),
        classify_wat(static_cast<std::uint64_t>(chunks), arena),
        scatter_wat(static_cast<std::uint64_t>(chunks), arena),
        bucket_wat(static_cast<std::uint64_t>(buckets), arena) {
    init(input);
  }

  void init(std::span<const Key> input) {
    WFSORT_CHECK(n > 0);
    // Scatter-offset bookkeeping and sidx are uint32; 2^32 elements is
    // 32 GiB of keys.
    WFSORT_CHECK(n <= static_cast<std::int64_t>(UINT32_MAX));
    for (std::size_t i = 0; i < input.size(); ++i) keys[i] = input[i];
  }

  const Key& key(std::int64_t i) const {
    return keys[static_cast<std::size_t>(i)];
  }
};

// Per-worker private state: deterministic splitters, classify scratch, the
// scatter-offset table, and the bucket-sort scratch.  Nothing here is ever
// read by another worker.
template <typename Key>
struct PartitionLocal {
  std::vector<LeafItem<Key>> splitters;    // buckets-1 ascending boundaries
  std::vector<std::uint32_t> counts;       // classify scratch (buckets)
  std::vector<std::uint32_t> offsets;      // chunks x buckets absolute start slots
  std::vector<std::int64_t> base;          // buckets+1 bucket base slots
  std::vector<std::uint32_t> cursor;       // scatter scratch (buckets)
  std::vector<LeafItem<Key>> items;        // bucket gather/sort scratch
  std::vector<std::uint32_t> run;          // partition_offsets cursor scratch
  bool offsets_ready = false;
  LeafSortTally tally;                     // folded into telemetry by the engine

  // Re-arm worker-persistent (thread_local) scratch for a new run: the
  // vectors keep their capacity — that is the point — but everything the
  // previous run computed must be recomputed against the new input.
  void begin_run() {
    offsets_ready = false;
    tally = {};
  }
};

// Bucket of one (key, index) item: the number of splitters strictly below it
// in the (key, index) total order.  Plain binary search — the comparison
// feeds an index update rather than a code-path choice, so the compiler
// lowers it to conditional moves (≤10 branch-free steps at kMaxBuckets).
template <typename Key, typename Compare>
inline std::int64_t partition_bucket_of(const PartitionLocal<Key>& local,
                                        const LeafItemLess<Key, Compare>& less,
                                        const LeafItem<Key>& it) {
  std::int64_t lo = 0;
  std::int64_t hi = static_cast<std::int64_t>(local.splitters.size());
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (less(local.splitters[static_cast<std::size_t>(mid)], it)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Compute this worker's splitters (identical for every worker): gather the
// stride sample, leaf-sort it, keep every kOversample-th item as a
// boundary.  Polls `keep_going` once per sampled element.
template <typename Key, typename Compare, typename Check>
bool partition_prepare(const TreeState<Key, Compare>& st,
                       const PartitionShared<Key>& ps, PartitionLocal<Key>& local,
                       Check&& keep_going) {
  local.counts.assign(static_cast<std::size_t>(ps.buckets), 0);
  local.cursor.assign(static_cast<std::size_t>(ps.buckets), 0);
  local.splitters.clear();
  if (ps.buckets <= 1) return true;
  local.items.clear();
  local.items.reserve(static_cast<std::size_t>(ps.sample_size));
  for (std::int64_t k = 0; k < ps.sample_size; ++k) {
    if (!keep_going()) return false;
    // Fixed stride positions (k*n)/S — deterministic, spread over the whole
    // input, distinct because S <= n.
    const std::int64_t i = (k * ps.n) / ps.sample_size;
    local.items.push_back({ps.key(i), i});
  }
  leaf_sort(local.items.data(), local.items.data() + local.items.size(),
            LeafItemLess<Key, Compare>{st.cmp}, &local.tally);
  local.splitters.reserve(static_cast<std::size_t>(ps.buckets - 1));
  for (std::int64_t b = 1; b < ps.buckets; ++b) {
    // Boundary b sits at the end of the b-th sample stripe; clamp for the
    // capped-sample case (sample_size < kOversample * buckets).
    const std::int64_t r =
        std::min((b * ps.sample_size) / ps.buckets, ps.sample_size - 1);
    local.splitters.push_back(local.items[static_cast<std::size_t>(r)]);
  }
  return true;
}

// Classify sweep, one chunk: histogram the chunk against the splitters and
// store the counts.  Idempotent (identical values from every worker).
template <typename Key, typename Compare, typename Check>
bool partition_classify(const TreeState<Key, Compare>& st,
                        PartitionShared<Key>& ps, PartitionLocal<Key>& local,
                        std::int64_t chunk, Check&& keep_going) {
  const LeafItemLess<Key, Compare> less{st.cmp};
  const std::int64_t lo = chunk * PartitionShared<Key>::kChunk;
  const std::int64_t hi = std::min(ps.n, lo + PartitionShared<Key>::kChunk);
  std::uint32_t* counts = local.counts.data();
  for (std::int64_t b = 0; b < ps.buckets; ++b) counts[b] = 0;
  for (std::int64_t i = lo; i < hi; ++i) {
    if (!keep_going()) return false;
    const LeafItem<Key> it{ps.key(i), i};
    const std::int64_t b = partition_bucket_of(local, less, it);
    ++counts[b];
    ps.bucket_id[static_cast<std::size_t>(i)].store(
        static_cast<std::uint16_t>(b), std::memory_order_relaxed);
  }
  std::atomic<std::uint32_t>* row =
      ps.hist.data() + static_cast<std::size_t>(chunk * ps.buckets);
  for (std::int64_t b = 0; b < ps.buckets; ++b) {
    row[b].store(counts[b], std::memory_order_relaxed);
  }
  return true;
}

// Build the worker-local scatter-offset table from the complete histogram:
// offsets[c][b] = bucket b's base + elements of b in chunks before c.  Call
// only after this worker's classify Wat loop returned kAllJobsDone (that is
// what makes `hist` complete and visible).  Polls once per table row.
template <typename Key, typename Check>
bool partition_offsets(const PartitionShared<Key>& ps, PartitionLocal<Key>& local,
                       Check&& keep_going) {
  if (local.offsets_ready) return true;
  const std::size_t nb = static_cast<std::size_t>(ps.buckets);
  local.base.assign(nb + 1, 0);
  std::vector<std::int64_t>& base = local.base;
  // Bucket totals, then exclusive prefix -> bucket bases.
  for (std::int64_t c = 0; c < ps.chunks; ++c) {
    if (!keep_going()) return false;
    const std::atomic<std::uint32_t>* row =
        ps.hist.data() + static_cast<std::size_t>(c * ps.buckets);
    for (std::size_t b = 0; b < nb; ++b) {
      base[b + 1] += row[b].load(std::memory_order_relaxed);
    }
  }
  for (std::size_t b = 0; b < nb; ++b) base[b + 1] += base[b];
  WFSORT_DCHECK(base[nb] == ps.n);
  // Running per-bucket cursors -> absolute start slot of every (chunk,
  // bucket) run.
  local.offsets.resize(static_cast<std::size_t>(ps.chunks * ps.buckets));
  std::vector<std::uint32_t>& run = local.run;
  run.assign(nb, 0);
  for (std::size_t b = 0; b < nb; ++b) {
    run[b] = static_cast<std::uint32_t>(base[b]);
  }
  for (std::int64_t c = 0; c < ps.chunks; ++c) {
    if (!keep_going()) return false;
    const std::atomic<std::uint32_t>* row =
        ps.hist.data() + static_cast<std::size_t>(c * ps.buckets);
    std::uint32_t* out = local.offsets.data() + static_cast<std::size_t>(c * ps.buckets);
    for (std::size_t b = 0; b < nb; ++b) {
      out[b] = run[b];
      run[b] += row[b].load(std::memory_order_relaxed);
    }
  }
  local.offsets_ready = true;
  return true;
}

// Scatter sweep, one chunk: read each element's cached bucket id and store
// its (key, index) into the deterministic slot.  Idempotent — slot and value
// are functions of the input alone.  The bucket ids were filled by the
// classify sweep, whose ALLDONE gate precedes this call.
template <typename Key, typename Compare, typename Check>
bool partition_scatter(const TreeState<Key, Compare>&,
                       PartitionShared<Key>& ps, PartitionLocal<Key>& local,
                       std::int64_t chunk, Check&& keep_going) {
  const std::int64_t lo = chunk * PartitionShared<Key>::kChunk;
  const std::int64_t hi = std::min(ps.n, lo + PartitionShared<Key>::kChunk);
  const std::uint32_t* off =
      local.offsets.data() + static_cast<std::size_t>(chunk * ps.buckets);
  std::uint32_t* cursor = local.cursor.data();
  for (std::int64_t b = 0; b < ps.buckets; ++b) cursor[b] = off[b];
  for (std::int64_t i = lo; i < hi; ++i) {
    if (!keep_going()) return false;
    const std::int64_t b =
        ps.bucket_id[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    const std::size_t slot = cursor[b]++;
    ps.skey[slot].store(ps.key(i), std::memory_order_relaxed);
    ps.sidx[slot].store(static_cast<std::uint32_t>(i), std::memory_order_relaxed);
  }
  return true;
}

// Bucket sweep, one bucket: copy the bucket's scattered pairs into private
// scratch, leaf-sort, emit consecutive ranks.  The private copy is essential
// — concurrent duplicates of this job must not sort shared memory in place.
template <typename Key, typename Compare, typename Check>
bool partition_bucket(TreeState<Key, Compare>& st, PartitionShared<Key>& ps,
                      PartitionLocal<Key>& local, std::int64_t bucket,
                      Check&& keep_going) {
  const std::int64_t lo = local.base[static_cast<std::size_t>(bucket)];
  const std::int64_t hi = local.base[static_cast<std::size_t>(bucket) + 1];
  if (lo == hi) return true;  // empty bucket (skewed input vs the sample)
  local.items.clear();
  local.items.reserve(static_cast<std::size_t>(hi - lo));
  for (std::int64_t s = lo; s < hi; ++s) {
    if (!keep_going()) return false;
    local.items.push_back(
        {ps.skey[static_cast<std::size_t>(s)].load(std::memory_order_relaxed),
         static_cast<std::int64_t>(
             ps.sidx[static_cast<std::size_t>(s)].load(std::memory_order_relaxed))});
  }
  leaf_sort(local.items.data(), local.items.data() + local.items.size(),
            LeafItemLess<Key, Compare>{st.cmp}, &local.tally);
  std::int64_t rank = lo;
  for (const LeafItem<Key>& it : local.items) {
    if (!keep_going()) return false;
    st.emit(it.idx, ++rank);
  }
  return true;
}

}  // namespace wfsort::detail
