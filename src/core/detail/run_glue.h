// Glue shared by every native run entry point (sort.h's one-shot templates,
// pool.h's SortPool submits): deciding whether a run wants a live monitor,
// building/starting one, and draining it when the run ends.  Lives below
// sort.h so pool.h can reuse it without a circular include.
#pragma once

#include <chrono>
#include <memory>

#include "core/options.h"
#include "telemetry/monitor.h"
#include "telemetry/recorder.h"

namespace wfsort::detail {

// A run pays for monitor plumbing (a steady_clock read before the engine is
// built, the Monitor construction attempt) only when the Options actually
// ask for one: telemetry on (so the engine holds a Recorder with rings) plus
// a sink path and a sampling interval.
inline bool monitor_wanted(const Options& opts) {
  return opts.telemetry != telemetry::Level::kOff &&
         opts.monitor_interval_ms != 0 && !opts.monitor_path.empty();
}

// Build and start the run's live monitor when the Options ask for one
// (monitor_path + monitor_interval_ms set, telemetry on so the engine holds
// a Recorder).  Returns null — and the sort runs exactly as before — in
// every other case, including an unopenable sink.
inline std::unique_ptr<telemetry::Monitor> make_monitor(
    const telemetry::Recorder* rec, const Options& opts, std::uint64_t n) {
  if (rec == nullptr || opts.monitor_interval_ms == 0 ||
      opts.monitor_path.empty()) {
    return nullptr;
  }
  telemetry::Monitor::Config cfg;
  cfg.path = opts.monitor_path;
  cfg.interval_ms = opts.monitor_interval_ms;
  cfg.source = "native";
  cfg.config.set("variant",
                 opts.variant == Variant::kLowContention ? "lc" : "det");
  cfg.config.set("n", static_cast<std::int64_t>(n));
  cfg.config.set("threads", static_cast<std::int64_t>(opts.resolved_threads()));
  cfg.config.set("seed", static_cast<std::int64_t>(opts.seed));
  cfg.config.set("ring_capacity", static_cast<std::int64_t>(opts.ring_capacity));
  auto mon = std::make_unique<telemetry::Monitor>(rec, std::move(cfg));
  if (!mon->ok()) return nullptr;
  mon->start();
  return mon;
}

// note_job + final drain for a monitored run; no-op on null.
inline void finish_monitor(telemetry::Monitor* mon,
                           std::chrono::steady_clock::time_point t_start) {
  if (mon == nullptr) return;
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - t_start);
  mon->note_job(static_cast<std::uint64_t>(us.count()));
  mon->stop();
}

}  // namespace wfsort::detail
