#include "core/pool.h"

namespace wfsort {

SortPool::SortPool(std::uint32_t threads) {
  std::uint32_t t = threads;
  if (t == 0) t = Options{}.resolved_threads();
  workers_.reserve(t);
  for (std::uint32_t i = 0; i < t; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

SortPool::~SortPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  workers_.clear();  // join
}

void SortPool::Lease::release() {
  if (!ok_) return;
  ok_ = false;
  Lane& l = pool_->lanes_[lane_];
  {
    // Fold this run's arena accounting into the pool-level snapshot while
    // the lane is still exclusively ours.
    std::lock_guard<std::mutex> lk(pool_->mu_);
    pool_->lane_totals_[lane_] = l.arena.totals();
  }
  l.busy.store(false, std::memory_order_release);
}

SortPool::Slot* SortPool::find_claimable_locked() {
  for (std::uint64_t p = head_; p < tail_; ++p) {
    Slot& s = slots_[p % kRunSlots];
    if (!s.done && !s.quit && s.next_tid < s.max_tid) return &s;
  }
  return nullptr;
}

void SortPool::retire_locked() {
  while (head_ < tail_ && slots_[head_ % kRunSlots].done) ++head_;
}

bool SortPool::try_help_locked(std::unique_lock<std::mutex>& lk,
                               bool counts_wake) {
  Slot* s = find_claimable_locked();
  if (s == nullptr) return false;
  const std::uint32_t tid = s->next_tid++;
  ++s->active;
  const std::uint64_t gen = s->gen;
  if (counts_wake && s->timed && !s->first_claim_seen) {
    s->first_claim_seen = true;
    wake_ns_ += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - s->t_submit)
            .count());
  }
  JobFn fn = s->fn;
  void* ctx = s->ctx;
  std::atomic<std::uint32_t>* pending = s->pending;
  const bool detached = s->detached;

  lk.unlock();
  const bool completed = fn(ctx, tid);
  lk.lock();

  // The slot cannot have been recycled while our claim was in flight:
  // retirement requires active == 0 and we held a unit of `active`.
  WFSORT_CHECK(s->gen == gen);
  --s->active;
  if (completed) s->quit = true;
  if (pending != nullptr) pending->fetch_sub(1, std::memory_order_acq_rel);
  if (detached && s->active == 0 &&
      (s->quit || s->next_tid >= s->max_tid)) {
    s->done = true;
    retire_locked();
  }
  cv_done_.notify_all();
  return true;
}

void SortPool::worker_main() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    if (!try_help_locked(lk, /*counts_wake=*/true)) {
      if (stop_) return;
      cv_work_.wait(lk);
    }
  }
}

SortPool::BlockingRun SortPool::begin_blocking(JobFn fn, void* ctx,
                                               std::uint32_t tid_begin,
                                               std::uint32_t tid_end) {
  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [&] { return tail_ - head_ < kRunSlots; });
  const std::uint64_t pos = tail_++;
  Slot& s = slots_[pos % kRunSlots];
  s.fn = fn;
  s.ctx = ctx;
  s.pending = nullptr;
  s.gen = ++gen_;
  s.next_tid = tid_begin;
  s.max_tid = tid_end;
  s.active = 0;
  s.quit = tid_begin >= tid_end;  // empty range: nothing to hand out
  s.detached = false;
  s.done = false;
  s.first_claim_seen = false;
  s.timed = !workers_.empty() && tid_end > tid_begin;
  if (s.timed) s.t_submit = std::chrono::steady_clock::now();
  lk.unlock();
  if (tid_end > tid_begin + 1) {
    cv_work_.notify_all();
  } else if (tid_end > tid_begin) {
    cv_work_.notify_one();
  }
  return BlockingRun{pos};
}

void SortPool::finish_blocking(BlockingRun h, bool caller_completed) {
  std::unique_lock<std::mutex> lk(mu_);
  Slot& s = slots_[h.pos % kRunSlots];
  if (caller_completed) s.quit = true;
  // Drain ids no parked worker claimed (pool short-handed, or every claimed
  // worker was fault-killed): the run must never depend on someone else
  // showing up, and wait-freedom makes sequential draining always correct.
  while (!s.quit && s.next_tid < s.max_tid) {
    const std::uint32_t tid = s.next_tid++;
    ++s.active;
    JobFn fn = s.fn;
    void* ctx = s.ctx;
    lk.unlock();
    const bool completed = fn(ctx, tid);
    lk.lock();
    --s.active;
    if (completed) s.quit = true;
  }
  cv_done_.wait(lk, [&] { return s.active == 0; });
  s.done = true;
  retire_locked();
  lk.unlock();
  cv_done_.notify_all();  // ring space freed
}

void SortPool::submit_detached(JobFn fn, void* ctx, std::uint32_t tid,
                               std::atomic<std::uint32_t>* pending) {
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] { return tail_ - head_ < kRunSlots; });
    const std::uint64_t pos = tail_++;
    Slot& s = slots_[pos % kRunSlots];
    s.fn = fn;
    s.ctx = ctx;
    s.pending = pending;
    s.gen = ++gen_;
    s.next_tid = tid;
    s.max_tid = tid + 1;
    s.active = 0;
    s.quit = false;
    s.detached = true;
    s.done = false;
    s.first_claim_seen = false;
    s.timed = false;
    pending->fetch_add(1, std::memory_order_acq_rel);
    detached_jobs_.fetch_add(1, std::memory_order_relaxed);
  }
  cv_work_.notify_one();
}

void SortPool::wait_pending(std::atomic<std::uint32_t>* pending) {
  std::unique_lock<std::mutex> lk(mu_);
  while (pending->load(std::memory_order_acquire) != 0) {
    // Help: every job that feeds `pending` was submitted before we got
    // here, so it is either claimable right now (run it ourselves) or in
    // flight (its finish will signal cv_done_).
    if (!try_help_locked(lk, /*counts_wake=*/false)) {
      cv_done_.wait(lk, [&] {
        return pending->load(std::memory_order_acquire) == 0 ||
               find_claimable_locked() != nullptr;
      });
    }
  }
}

PoolStats SortPool::stats() const {
  PoolStats ps;
  ps.threads = thread_count();
  ps.runs = runs_.load(std::memory_order_relaxed);
  ps.caller_only_runs = caller_only_runs_.load(std::memory_order_relaxed);
  ps.detached_jobs = detached_jobs_.load(std::memory_order_relaxed);
  ps.bypass_runs = bypass_runs_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(mu_);
  ps.wake_ns = wake_ns_;
  for (const RunArena::Totals& t : lane_totals_) {
    ps.arena_reuse_bytes += t.reuse_bytes;
    ps.arena_grow_events += t.grow_events;
    ps.arena_held_bytes += t.held_bytes;
  }
  return ps;
}

SortPool& default_pool() {
  static SortPool pool;
  return pool;
}

}  // namespace wfsort
