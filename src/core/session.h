// SortSession — the paper's operating-system scenario as an API.
//
// Section 1: "begin the sort by spawning a thread for each idle processor
// ... if a processor is needed elsewhere, reap its thread without fear of
// leaving the program's data structures in an inconsistent state ... if
// other processors become free, spawn more threads to speed up the sort."
//
// A session owns one in-flight sort.  Workers can be added (spawn_worker)
// and cooperatively reaped (reap_worker — the thread exits at its next
// checkpoint, exactly the fault model's crash) at any time.  wait() joins
// the remaining workers; if every worker was reaped before the sort
// finished, the calling thread completes the sort itself — wait-freedom
// makes that always possible and always safe.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "common/check.h"
#include "core/detail/engine.h"
#include "core/options.h"
#include "runtime/fault_plan.h"

namespace wfsort {

template <typename T, typename Compare = std::less<T>>
class SortSession {
 public:
  // Maximum workers over the session's lifetime (spawned ids are never
  // reused; the cap sizes the fault-plan and WAT spreading).
  static constexpr std::uint32_t kMaxWorkers = 64;

  explicit SortSession(std::span<T> data, Options opts = {}, Compare cmp = Compare{})
      : engine_(data, cmp, opts), plan_(kMaxWorkers) {}

  ~SortSession() { wait(); }

  SortSession(const SortSession&) = delete;
  SortSession& operator=(const SortSession&) = delete;

  // Add a worker thread; returns its id (usable with reap_worker).
  std::uint32_t spawn_worker() {
    std::lock_guard<std::mutex> lock(mu_);
    WFSORT_CHECK(!finalized_);
    WFSORT_CHECK(next_tid_ < kMaxWorkers);
    const std::uint32_t tid = next_tid_++;
    threads_.emplace_back([this, tid] { engine_.run_worker(tid, &plan_); });
    return tid;
  }

  // Ask worker `tid` to stop at its next step ("the processor is needed
  // elsewhere").  Returns immediately; the thread exits on its own.
  void reap_worker(std::uint32_t tid) { plan_.stop_now(tid); }

  // True once some worker has run every phase — the result is complete
  // (wait() still must be called to copy it into the caller's buffer).
  bool finished() const { return engine_.result_ready(); }

  // Join all workers; if none completed (everyone was reaped), finish the
  // sort on the calling thread; then deliver the result.  Idempotent.
  void wait() {
    std::lock_guard<std::mutex> lock(mu_);
    if (finalized_) return;
    threads_.clear();  // join
    if (!engine_.result_ready()) {
      WFSORT_CHECK(next_tid_ < kMaxWorkers);
      engine_.run_worker(next_tid_++);  // no plan: runs to completion
    }
    engine_.finalize();
    finalized_ = true;
  }

  SortStats stats() const { return engine_.stats(); }

  // The run's telemetry snapshot: null until wait() has joined the workers
  // (the per-worker scratch is unsynchronized), and null for good at
  // Options::telemetry == kOff.
  std::shared_ptr<const telemetry::Report> telemetry() const {
    return engine_.telemetry_report();
  }

 private:
  detail::Engine<T, Compare> engine_;
  runtime::FaultPlan plan_;
  std::mutex mu_;
  std::vector<std::jthread> threads_;
  std::uint32_t next_tid_ = 0;
  bool finalized_ = false;
};

}  // namespace wfsort
