// SortSession — the paper's operating-system scenario as an API.
//
// Section 1: "begin the sort by spawning a thread for each idle processor
// ... if a processor is needed elsewhere, reap its thread without fear of
// leaving the program's data structures in an inconsistent state ... if
// other processors become free, spawn more threads to speed up the sort."
//
// A session owns one in-flight sort.  Workers can be added (spawn_worker)
// and cooperatively reaped (reap_worker — the thread exits at its next
// checkpoint, exactly the fault model's crash) at any time.  wait() joins
// the remaining workers; if every worker was reaped before the sort
// finished, the calling thread completes the sort itself — wait-freedom
// makes that always possible and always safe.
//
// Worker threads come from the process-wide SortPool (pool.h) rather than
// per-call std::jthreads: spawn_worker enqueues a detached pool job for the
// new worker id, and wait() drains the session's outstanding jobs — helping
// to execute them on the calling thread if the pool is short-handed, so the
// join semantics (and the reap-all edge cases in test_session.cpp) are
// unchanged.  The engine keeps its own private arena: a session lives
// arbitrarily long and must not hold a pool lane hostage.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>

#include "common/check.h"
#include "core/detail/engine.h"
#include "core/options.h"
#include "core/pool.h"
#include "runtime/fault_plan.h"

namespace wfsort {

template <typename T, typename Compare = std::less<T>>
class SortSession {
 public:
  // Maximum workers over the session's lifetime (spawned ids are never
  // reused; the cap sizes the fault-plan and WAT spreading).
  static constexpr std::uint32_t kMaxWorkers = 64;

  explicit SortSession(std::span<T> data, Options opts = {}, Compare cmp = Compare{})
      : engine_(data, cmp, opts), plan_(kMaxWorkers), pool_(&default_pool()) {}

  ~SortSession() { wait(); }

  SortSession(const SortSession&) = delete;
  SortSession& operator=(const SortSession&) = delete;

  // Add a worker; returns its id (usable with reap_worker).  The worker is
  // a detached pool job, picked up by a parked pool thread (or by wait()'s
  // help loop).
  std::uint32_t spawn_worker() {
    std::lock_guard<std::mutex> lock(mu_);
    WFSORT_CHECK(!finalized_);
    WFSORT_CHECK(next_tid_ < kMaxWorkers);
    const std::uint32_t tid = next_tid_++;
    pool_->submit_detached(&SortSession::run_entry, this, tid, &pending_);
    return tid;
  }

  // Ask worker `tid` to stop at its next step ("the processor is needed
  // elsewhere").  Returns immediately; the thread exits on its own.
  void reap_worker(std::uint32_t tid) { plan_.stop_now(tid); }

  // True once some worker has run every phase — the result is complete
  // (wait() still must be called to copy it into the caller's buffer).
  bool finished() const { return engine_.result_ready(); }

  // Join all workers; if none completed (everyone was reaped), finish the
  // sort on the calling thread; then deliver the result.  Idempotent.
  void wait() {
    std::lock_guard<std::mutex> lock(mu_);
    if (finalized_) return;
    pool_->wait_pending(&pending_);  // "join": every submitted job has run
    if (!engine_.result_ready()) {
      WFSORT_CHECK(next_tid_ < kMaxWorkers);
      engine_.run_worker(next_tid_++);  // no plan: runs to completion
    }
    engine_.finalize();
    finalized_ = true;
  }

  SortStats stats() const { return engine_.stats(); }

  // The run's telemetry snapshot: null until wait() has joined the workers
  // (the per-worker scratch is unsynchronized), and null for good at
  // Options::telemetry == kOff.
  std::shared_ptr<const telemetry::Report> telemetry() const {
    return engine_.telemetry_report();
  }

 private:
  static bool run_entry(void* self, std::uint32_t tid) {
    auto* s = static_cast<SortSession*>(self);
    return s->engine_.run_worker(tid, &s->plan_);
  }

  detail::Engine<T, Compare> engine_;
  runtime::FaultPlan plan_;
  SortPool* pool_;
  std::mutex mu_;
  std::atomic<std::uint32_t> pending_{0};
  std::uint32_t next_tid_ = 0;
  bool finalized_ = false;
};

}  // namespace wfsort
