// Public API of the wait-free sorter.
//
//   std::vector<std::uint64_t> v = ...;
//   wfsort::sort(std::span<std::uint64_t>(v));                  // defaults
//   wfsort::sort(std::span(v), {.threads = 8,
//                               .variant = wfsort::Variant::kLowContention});
//
// The call blocks until the array is sorted.  Internally P worker threads
// execute the paper's three phases; every phase is wait-free, so the sort
// completes as long as at least one worker keeps running — the fault-
// injection entry point sort_with_faults() (and the SortSession API in
// session.h) demonstrates exactly that.
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "core/detail/engine.h"
#include "core/detail/run_glue.h"
#include "core/options.h"
#include "runtime/fault_plan.h"
#include "telemetry/monitor.h"

namespace wfsort {

// Sort `data` in place.  `stats`, if given, receives per-run diagnostics.
template <typename T, typename Compare = std::less<T>>
void sort(std::span<T> data, const Options& opts = {}, SortStats* stats = nullptr,
          Compare cmp = Compare{}) {
  // With telemetry off there is no Recorder, hence no monitor: skip the
  // clock read and the monitor plumbing entirely on the untraced path.
  const bool monitored = detail::monitor_wanted(opts);
  const auto t_start = monitored ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point{};
  detail::Engine<T, Compare> engine(data, cmp, opts);
  auto monitor =
      monitored ? detail::make_monitor(engine.recorder(), opts, data.size())
                : nullptr;
  const std::uint32_t workers = opts.resolved_threads();
  if (workers <= 1 || data.size() <= 1) {
    engine.run_worker(0);
  } else {
    std::vector<std::jthread> threads;
    threads.reserve(workers);
    for (std::uint32_t tid = 0; tid < workers; ++tid) {
      threads.emplace_back([&engine, tid] { engine.run_worker(tid); });
    }
    threads.clear();  // join
  }
  engine.finalize();
  detail::finish_monitor(monitor.get(), t_start);
  if (stats != nullptr) *stats = engine.stats();
}

// Sort under a fault plan (crashes / page-fault sleeps injected into chosen
// workers).  Returns true if the sort completed — i.e. at least one worker
// survived; on false `data` is untouched.  This is the wait-freedom
// experiment harness (E9).
template <typename T, typename Compare = std::less<T>>
bool sort_with_faults(std::span<T> data, const Options& opts, runtime::FaultPlan& plan,
                      SortStats* stats = nullptr, Compare cmp = Compare{}) {
  const bool monitored = detail::monitor_wanted(opts);
  const auto t_start = monitored ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point{};
  detail::Engine<T, Compare> engine(data, cmp, opts);
  auto monitor =
      monitored ? detail::make_monitor(engine.recorder(), opts, data.size())
                : nullptr;
  const std::uint32_t workers = opts.resolved_threads();
  {
    std::vector<std::jthread> threads;
    threads.reserve(workers);
    for (std::uint32_t tid = 0; tid < workers; ++tid) {
      threads.emplace_back([&engine, tid, &plan] { engine.run_worker(tid, &plan); });
    }
  }  // join
  const bool ok = engine.result_ready();
  detail::finish_monitor(monitor.get(), t_start);
  if (ok) {
    engine.finalize();
  } else {
    // No finalize on failure, but the partial telemetry timeline (truncated
    // spans of the crashed workers) is still wanted by the fault tooling.
    engine.snapshot_telemetry();
  }
  if (stats != nullptr) *stats = engine.stats();
  return ok;
}

// Compute the sorting permutation without moving the data: perm[rank] is
// the index of the element with that rank (i.e. data[perm[0]] <= ... <=
// data[perm[n-1]], ties by index).  Useful when elements are heavyweight or
// must stay in place; runs the same wait-free phases, skipping only the
// final copy-back.
template <typename T, typename Compare = std::less<T>>
std::vector<std::uint32_t> sort_permutation(std::span<const T> data,
                                            const Options& opts = {},
                                            Compare cmp = Compare{}) {
  std::vector<std::uint32_t> perm(data.size());
  if (data.size() <= 1) {
    if (data.size() == 1) perm[0] = 0;
    return perm;
  }
  // The engine never writes the input: copy-back is disabled below and the
  // const_cast span is only a formality of its (normally in-place) interface.
  std::span<T> mutable_view(const_cast<T*>(data.data()), data.size());
  detail::Engine<T, Compare> engine(mutable_view, cmp, opts,
                                    /*assemble_into_data=*/false);
  const std::uint32_t workers = opts.resolved_threads();
  if (workers <= 1) {
    engine.run_worker(0);
  } else {
    std::vector<std::jthread> threads;
    threads.reserve(workers);
    for (std::uint32_t tid = 0; tid < workers; ++tid) {
      threads.emplace_back([&engine, tid] { engine.run_worker(tid); });
    }
  }
  WFSORT_CHECK(engine.result_ready());
  const auto& st = engine.state();
  for (std::size_t i = 0; i < data.size(); ++i) {
    const std::int64_t place = st.place_of(static_cast<std::int64_t>(i));
    perm[static_cast<std::size_t>(place - 1)] = static_cast<std::uint32_t>(i);
  }
  return perm;
}

// Object form for repeated sorts with fixed options.
template <typename T, typename Compare = std::less<T>>
class Sorter {
 public:
  explicit Sorter(Options opts = {}, Compare cmp = Compare{})
      : opts_(opts), cmp_(cmp) {}

  void operator()(std::span<T> data) { sort(data, opts_, &last_stats_, cmp_); }
  void sort_span(std::span<T> data) { (*this)(data); }

  const Options& options() const { return opts_; }
  const SortStats& last_stats() const { return last_stats_; }

 private:
  Options opts_;
  Compare cmp_;
  SortStats last_stats_{};
};

}  // namespace wfsort
