// SortPool — a process-lifetime runtime of parked worker threads and
// recycled per-variant RunArenas (ISSUE 10).
//
// The one-shot entry points in sort.h pay the full setup bill on every
// call: spawn P threads, allocate the pivot-tree / WAT / partition / LC
// storage, sort, free, join.  For large N that bill is noise; for small N
// it IS the latency.  A SortPool hoists all of it to process lifetime:
//
//   * T workers are spawned once and parked on a condvar.  A submit
//     publishes a job slot and wakes them; each wakeup claims a worker id
//     under the pool mutex and runs the engine's wait-free program for
//     that id.  Job slots are epoch-stamped (`gen`) so a claim can assert
//     it never outlives a recycled slot.
//   * Three arena lanes — det/tree, det/partition, low-contention — hold
//     the storage high-water mark of every run shape seen so far.  A
//     submit leases its variant's lane (single atomic try-acquire),
//     rewinds the arena, and the Engine borrows every shared structure
//     from it: steady state performs ZERO heap allocations
//     (test_pool.cpp counts operator new to prove it).  A contended lane
//     falls back to a stack-local arena — the cold path, always correct.
//   * Each lane also recycles a telemetry Recorder (rings and span
//     vectors keep their buffers between runs) when telemetry is on.
//
// Wait-freedom is a PER-RUN property and the pool preserves it: within a
// run, a worker that stalls or is fault-killed cannot block the others —
// the claim protocol only gates who STARTS a worker id, never a step
// inside the engine.  Across runs the pool is an ordinary blocking queue
// by design (parked threads are the point).  Because the result is ready
// as soon as ANY worker finishes (write-once idempotent stores make the
// output schedule-independent), the submitting thread always participates
// as worker 0 and never depends on a parked thread showing up: below
// kCallerOnlyCutoff it doesn't even wake one (the small-N fast path), and
// on the wake path it drains unclaimed worker ids itself if the pool is
// short-handed.  docs/native_engine.md "SortPool" has the lifecycle
// diagram and measured cold-vs-pooled numbers.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "common/arena.h"
#include "common/check.h"
#include "core/detail/engine.h"
#include "core/detail/run_glue.h"
#include "core/options.h"
#include "runtime/fault_plan.h"
#include "telemetry/recorder.h"

namespace wfsort {

// A snapshot of the pool's lifetime counters — the source of the "pool"
// group in the bench JSON schema (schema.h).
struct PoolStats {
  std::uint32_t threads = 0;           // parked workers
  std::uint64_t runs = 0;              // sorts driven through the pool
  std::uint64_t caller_only_runs = 0;  // small-N fast path (no worker wake)
  std::uint64_t detached_jobs = 0;     // session submits executed
  std::uint64_t bypass_runs = 0;       // lane contended -> one-shot arena
  std::uint64_t arena_reuse_bytes = 0; // bytes served from retained buffers
  std::uint64_t arena_grow_events = 0; // retained-slot (re)allocations
  std::uint64_t arena_held_bytes = 0;  // current retained footprint
  std::uint64_t wake_ns = 0;           // cumulative submit->first-claim
};

class SortPool {
 public:
  // One unit of pool work: run the job's worker program as id `tid`.
  // Returns true if this invocation COMPLETED the job (for a sort: the
  // engine's result is ready) — the pool then stops handing out further
  // ids for the job.
  using JobFn = bool (*)(void* ctx, std::uint32_t tid);

  // Below this input size a pooled sort never wakes a worker: the
  // submitting thread runs worker 0 to completion (wait-freedom makes one
  // worker always sufficient), turning a small-N sort into a plain
  // function call over warm storage.  Measured crossover on the tracked
  // bench host (docs/native_engine.md).
  static constexpr std::uint64_t kCallerOnlyCutoff = std::uint64_t{1} << 15;

  // In-flight job slots (a ring; submits block when all are pending).
  static constexpr std::uint32_t kRunSlots = 128;

  // `threads` = 0 resolves like Options::threads (hardware concurrency).
  explicit SortPool(std::uint32_t threads = 0);
  ~SortPool();

  SortPool(const SortPool&) = delete;
  SortPool& operator=(const SortPool&) = delete;

  // Drop-in pooled equivalents of wfsort::sort / sort_with_faults: same
  // output bit for bit (the engine's stores are schedule-independent),
  // same stats contract, amortized setup.
  template <typename T, typename Compare = std::less<T>>
  void sort(std::span<T> data, const Options& opts = {},
            SortStats* stats = nullptr, Compare cmp = Compare{}) {
    run_to_completion<T, Compare>(data, opts, stats, nullptr, cmp);
  }

  template <typename T, typename Compare = std::less<T>>
  bool sort_with_faults(std::span<T> data, const Options& opts,
                        runtime::FaultPlan& plan, SortStats* stats = nullptr,
                        Compare cmp = Compare{}) {
    return run_to_completion<T, Compare>(data, opts, stats, &plan, cmp);
  }

  // Fire-and-return a single worker-id job (SortSession's spawn_worker).
  // `*pending` is incremented now and decremented when the job has run;
  // pair with wait_pending().  `ctx` must stay valid until then.
  void submit_detached(JobFn fn, void* ctx, std::uint32_t tid,
                       std::atomic<std::uint32_t>* pending);

  // Block until `*pending` drops to zero.  The calling thread HELPS: while
  // waiting it claims and executes queued jobs (its own session's or
  // anyone's), so progress never depends on the pool having free workers.
  void wait_pending(std::atomic<std::uint32_t>* pending);

  std::uint32_t thread_count() const {
    return static_cast<std::uint32_t>(workers_.size());
  }

  PoolStats stats() const;

 private:
  // One queued job.  All fields are guarded by mu_; execution of fn
  // happens outside the lock.  A slot is recycled (ring position reused)
  // only after `done`, which requires active == 0 — gen is the stamp a
  // claim uses to assert that invariant held.
  struct Slot {
    JobFn fn = nullptr;
    void* ctx = nullptr;
    std::atomic<std::uint32_t>* pending = nullptr;  // detached jobs only
    std::uint64_t gen = 0;
    std::uint32_t next_tid = 0;  // ids [next_tid, max_tid) still unclaimed
    std::uint32_t max_tid = 0;
    std::uint32_t active = 0;    // claims currently executing
    bool quit = false;           // some claim completed the job
    bool detached = false;
    bool done = false;           // retired; ring slot reusable
    bool timed = false;          // first worker claim feeds wake_ns_
    bool first_claim_seen = false;
    std::chrono::steady_clock::time_point t_submit{};
  };

  // One recycled arena (plus cached Recorder) per engine variant.  `busy`
  // serializes runs on the lane; a contended lane is bypassed, never
  // waited on.
  struct Lane {
    std::atomic<bool> busy{false};
    RunArena arena;
    std::unique_ptr<telemetry::Recorder> recorder;
  };
  static constexpr int kLaneDetTree = 0;
  static constexpr int kLaneDetPartition = 1;
  static constexpr int kLaneLc = 2;
  static constexpr int kLanes = 3;

  // RAII lease of a lane; released (and the lane's arena totals folded
  // into the pool counters) on destruction — which the pooled sort path
  // sequences strictly AFTER Engine destruction, because the engine's
  // teardown still touches arena-resident objects.
  class Lease {
   public:
    Lease(SortPool* pool, int lane)
        : pool_(pool),
          lane_(lane),
          ok_(!pool->lanes_[lane].busy.exchange(true,
                                                std::memory_order_acquire)) {}
    ~Lease() { release(); }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    bool ok() const { return ok_; }

    RunArena* begin_run() {
      Lane& l = pool_->lanes_[lane_];
      l.arena.begin_run();
      return &l.arena;
    }

    // A reuse()-armed, shape-matched Recorder for this run (rebuilt only
    // when the required shape changed since the lane's last telemetry run).
    telemetry::Recorder* prepare_recorder(const Options& opts) {
      Lane& l = pool_->lanes_[lane_];
      const std::uint32_t slots =
          std::max(opts.resolved_threads(), detail::kTelemetrySlots);
      if (l.recorder == nullptr ||
          !l.recorder->shape_matches(slots, opts.ring_capacity)) {
        l.recorder = std::make_unique<telemetry::Recorder>(
            opts.telemetry, slots, opts.ring_capacity);
      } else {
        l.recorder->reuse(opts.telemetry);
      }
      return l.recorder.get();
    }

    void release();

   private:
    SortPool* pool_;
    int lane_;
    bool ok_;
  };

  struct BlockingRun {
    std::uint64_t pos = 0;
  };

  // The arena lane a run of this shape allocates from — mirrors the
  // Engine's effective-variant fallback exactly, because each lane's
  // retained slots assume one deterministic allocation sequence family.
  static int lane_for(const Options& opts, std::uint64_t n) {
    if (opts.variant == Variant::kLowContention && n >= detail::kLcMinN) {
      return kLaneLc;
    }
    if (opts.phase1 == Phase1::kPartition && n > 1) return kLaneDetPartition;
    return kLaneDetTree;
  }

  // Type-erased trampoline a pooled sort hands to the job slots.
  template <typename T, typename Compare>
  struct EngineCtx {
    detail::Engine<T, Compare>* engine;
    runtime::FaultPlan* plan;
    static bool entry(void* self, std::uint32_t tid) {
      auto* c = static_cast<EngineCtx*>(self);
      return c->engine->run_worker(tid, c->plan);
    }
  };

  // The one pooled run shape: lease the lane, build the engine on the
  // leased arena, drive it (caller-only or wake path), tear down in the
  // right order.  `plan` null = plain sort (cannot fail).
  template <typename T, typename Compare>
  bool run_to_completion(std::span<T> data, const Options& opts,
                         SortStats* stats, runtime::FaultPlan* plan,
                         Compare cmp) {
    const std::uint32_t workers = opts.resolved_threads();
    const bool monitored = detail::monitor_wanted(opts);
    const auto t_start = monitored ? std::chrono::steady_clock::now()
                                   : std::chrono::steady_clock::time_point{};
    Lease lease(this, lane_for(opts, data.size()));
    RunArena bypass;  // cold storage for the (rare) contended-lane case
    RunArena* arena;
    telemetry::Recorder* rec = nullptr;
    if (lease.ok()) {
      arena = lease.begin_run();
      if (opts.telemetry != telemetry::Level::kOff && data.size() > 1) {
        rec = lease.prepare_recorder(opts);
      }
    } else {
      arena = &bypass;
      bypass_runs_.fetch_add(1, std::memory_order_relaxed);
    }
    bool ok;
    {
      detail::Engine<T, Compare> engine(data, cmp, opts,
                                        /*assemble_into_data=*/true, arena,
                                        rec);
      auto monitor = monitored ? detail::make_monitor(engine.recorder(), opts,
                                                      data.size())
                               : nullptr;
      // Fault runs always take the wake path: the plan's kill schedule is
      // written against multiple live worker ids.
      const bool caller_only =
          plan == nullptr &&
          (workers <= 1 || data.size() < kCallerOnlyCutoff ||
           workers_.empty());
      if (caller_only) {
        engine.run_worker(0);
        caller_only_runs_.fetch_add(1, std::memory_order_relaxed);
      } else {
        EngineCtx<T, Compare> ctx{&engine, plan};
        const BlockingRun h =
            begin_blocking(&EngineCtx<T, Compare>::entry, &ctx, 1, workers);
        const bool mine = engine.run_worker(0, plan);
        finish_blocking(h, mine);
      }
      ok = engine.result_ready();
      if (ok) {
        engine.finalize();
      } else {
        engine.snapshot_telemetry();  // partial timeline for fault tooling
      }
      detail::finish_monitor(monitor.get(), t_start);
      if (stats != nullptr) *stats = engine.stats();
    }  // ~Engine runs arena-resident destructors — BEFORE the lane is freed
    runs_.fetch_add(1, std::memory_order_relaxed);
    return ok;
  }

  // Enqueue a job handing out worker ids [tid_begin, tid_end) to parked
  // workers and wake them.  The caller runs its own id (0) directly and
  // then calls finish_blocking.
  BlockingRun begin_blocking(JobFn fn, void* ctx, std::uint32_t tid_begin,
                             std::uint32_t tid_end);

  // Close out a blocking run: stop further claims if the caller already
  // completed the job, drain still-unclaimed ids on the calling thread,
  // wait for in-flight claims, retire the slot.
  void finish_blocking(BlockingRun h, bool caller_completed);

  void worker_main();
  Slot* find_claimable_locked();
  // Claim + execute one queued job if any; true if something ran.
  // `counts_wake` marks a parked-worker claim (feeds wake_ns_).
  bool try_help_locked(std::unique_lock<std::mutex>& lk, bool counts_wake);
  void retire_locked();

  mutable std::mutex mu_;
  std::condition_variable cv_work_;  // parked workers <- new claimable jobs
  std::condition_variable cv_done_;  // submitters <- claims finished / slots freed
  Slot slots_[kRunSlots];
  std::uint64_t head_ = 0;  // oldest unretired ring position
  std::uint64_t tail_ = 0;  // next free ring position
  std::uint64_t gen_ = 0;
  bool stop_ = false;
  std::uint64_t wake_ns_ = 0;  // guarded by mu_
  std::vector<std::jthread> workers_;

  Lane lanes_[kLanes];
  RunArena::Totals lane_totals_[kLanes];  // last-release snapshots (mu_)

  std::atomic<std::uint64_t> runs_{0};
  std::atomic<std::uint64_t> caller_only_runs_{0};
  std::atomic<std::uint64_t> detached_jobs_{0};
  std::atomic<std::uint64_t> bypass_runs_{0};
};

// The lazily-created process-wide pool SortSession and the CLI route
// through.  First call spawns the workers; subsequent calls are a load.
SortPool& default_pool();

}  // namespace wfsort
