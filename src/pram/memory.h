// Shared memory of the simulated PRAM, with named regions.
//
// Regions exist purely for diagnostics: contention reports attribute the
// hottest cells to a region ("quicksort-tree child pointers", "WAT nodes",
// ...) so experiment output is readable.  peek/poke bypass the round
// mechanism and cost model; they are for test setup and result verification
// only, never for use inside processor programs.
//
// Attribution is O(1): alloc() stamps every cell with its region's index
// (`region_id_`), so the metrics hot path never scans the region list.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "pram/word.h"

namespace pram {

struct Region {
  std::string name;
  Addr base = 0;
  Addr size = 0;

  bool contains(Addr a) const { return a >= base && a < base + size; }
};

class Memory {
 public:
  // Index into regions(); cells outside every region map to kNoRegion.
  using RegionId = std::uint32_t;
  static constexpr RegionId kNoRegion = static_cast<RegionId>(-1);

  // Allocate `size` words initialized to `fill`; returns the region.
  Region alloc(std::string_view name, Addr size, Word fill = 0);

  Addr size() const { return static_cast<Addr>(cells_.size()); }

  Word peek(Addr a) const;
  void poke(Addr a, Word v);

  // Direct cell access for the machine's round loop.  Inline: one call per
  // served operation; the round engine has already bounds-checked the
  // address when it grouped the request by cell.
  Word load(Addr a) const {
    WFSORT_DCHECK(a < cells_.size());
    return cells_[a];
  }
  // Hint the cache that cell `a` is about to be served.
  void prefetch(Addr a) const { __builtin_prefetch(cells_.data() + a); }
  void store(Addr a, Word v) {
    WFSORT_DCHECK(a < cells_.size());
    cells_[a] = v;
  }

  // Region whose range covers `a`; returns nullptr for unattributed cells.
  const Region* region_of(Addr a) const;
  // Flat-index variant for the metrics hot path: no pointer chase, no scan.
  RegionId region_id_of(Addr a) const {
    return a < region_id_.size() ? region_id_[a] : kNoRegion;
  }
  const std::vector<Region>& regions() const { return regions_; }

  // Convenience: copy a span of words in/out of a region.
  void fill_region(const Region& r, const std::vector<Word>& values);
  std::vector<Word> read_region(const Region& r) const;

 private:
  std::vector<Word> cells_;
  std::vector<Region> regions_;
  std::vector<RegionId> region_id_;  // per cell, filled at alloc() time
};

}  // namespace pram
