// Shared memory of the simulated PRAM, with named regions.
//
// Regions exist purely for diagnostics: contention reports attribute the
// hottest cells to a region ("quicksort-tree child pointers", "WAT nodes",
// ...) so experiment output is readable.  peek/poke bypass the round
// mechanism and cost model; they are for test setup and result verification
// only, never for use inside processor programs.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "pram/word.h"

namespace pram {

struct Region {
  std::string name;
  Addr base = 0;
  Addr size = 0;

  bool contains(Addr a) const { return a >= base && a < base + size; }
};

class Memory {
 public:
  // Allocate `size` words initialized to `fill`; returns the region.
  Region alloc(std::string_view name, Addr size, Word fill = 0);

  Addr size() const { return static_cast<Addr>(cells_.size()); }

  Word peek(Addr a) const;
  void poke(Addr a, Word v);

  // Direct cell access for the machine's round loop (bounds-checked).
  Word load(Addr a) const;
  void store(Addr a, Word v);

  // Region whose range covers `a`; returns nullptr for unattributed cells.
  const Region* region_of(Addr a) const;
  const std::vector<Region>& regions() const { return regions_; }

  // Convenience: copy a span of words in/out of a region.
  void fill_region(const Region& r, const std::vector<Word>& values);
  std::vector<Word> read_region(const Region& r) const;

 private:
  std::vector<Word> cells_;
  std::vector<Region> regions_;
};

}  // namespace pram
