// Fundamental types of the PRAM model.
//
// The simulated machine is a word-addressable shared memory of 64-bit signed
// words.  All algorithm values (keys, indices, flags) are encoded as Words;
// negative values are reserved for sentinels so that array indices and keys
// stored by the sorting programs are always non-negative.
#pragma once

#include <cstdint>

namespace pram {

using Word = std::int64_t;
using Addr = std::uint64_t;
using ProcId = std::uint32_t;

// Common sentinels used by the sorting and work-allocation programs.
inline constexpr Word kEmpty = -1;    // uninitialized pointer / cell
inline constexpr Word kDone = -2;     // WAT: subtree completed
inline constexpr Word kAllDone = -3;  // LC-WAT: completion announcement

}  // namespace pram
