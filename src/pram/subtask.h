// Nested coroutine subroutines for PRAM programs.
//
// The paper presents its algorithms as a hierarchy of routines
// (next_element, build_tree, tree_sum, ...).  SubTask<T> lets simulator
// programs mirror that structure: a subroutine is a coroutine returning
// SubTask<T> whose first parameter is Ctx&, and a caller invokes it with
// `T v = co_await next_element(ctx, tree, i);`.
//
// Mechanics: every Ctx tracks the innermost active coroutine
// (Ctx::current()).  When a SubTask is awaited, the child registers itself
// as current and starts via symmetric transfer; when it completes, it
// restores its parent as current and transfers back.  The Machine always
// resumes Ctx::current(), so memory operations issued at any nesting depth
// suspend straight back to the round loop.
//
// The promise constructor requires the subroutine's first parameter to be
// Ctx& (C++20 promise-constructor argument matching); passing anything else
// first is a compile error, which keeps the registration automatic.
//
// TOOLCHAIN PITFALL: when calling a coroutine from inside another coroutine,
// do not pass non-trivial arguments (std::function, std::string, ...) as
// prvalue temporaries — GCC 12.x double-destroys the parameter copy
// (observed as free() of frame-interior pointers).  Bind the argument to a
// named local first and pass the lvalue; see det_sort_worker for the
// pattern.
#pragma once

#include <coroutine>
#include <exception>
#include <type_traits>
#include <utility>

#include "common/check.h"
#include "pram/frame_pool.h"
#include "pram/machine.h"

namespace pram {

template <typename T>
class [[nodiscard]] SubTask {
 public:
  struct promise_type {
    Ctx* ctx = nullptr;
    std::coroutine_handle<> continuation;
    T value{};
    std::exception_ptr exception;

    static void* operator new(std::size_t n) { return detail::FramePool::allocate(n); }
    static void operator delete(void* p, std::size_t n) noexcept {
      detail::FramePool::deallocate(p, n);
    }

    template <typename... Args>
    explicit promise_type(Ctx& c, Args&&...) : ctx(&c) {}

    // Member/lambda coroutines receive the object as an implicit first
    // argument; accept (object, Ctx&, ...) as well.
    template <typename Obj, typename... Args>
      requires(!std::is_convertible_v<Obj&&, Ctx&>)
    explicit promise_type(Obj&&, Ctx& c, Args&&...) : ctx(&c) {}

    SubTask get_return_object() {
      return SubTask(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<promise_type> h) const noexcept {
        promise_type& p = h.promise();
        p.ctx->set_current(p.continuation);
        return p.continuation;
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_value(T v) { value = std::move(v); }
    void unhandled_exception() { exception = std::current_exception(); }
  };

  explicit SubTask(std::coroutine_handle<promise_type> h) : handle_(h) {}
  SubTask(const SubTask&) = delete;
  SubTask& operator=(const SubTask&) = delete;
  SubTask(SubTask&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  ~SubTask() {
    if (handle_) handle_.destroy();
  }

  // Awaiter used by the parent coroutine.
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
    promise_type& p = handle_.promise();
    p.continuation = parent;
    p.ctx->set_current(handle_);
    return handle_;  // symmetric transfer: start the child immediately
  }
  T await_resume() {
    promise_type& p = handle_.promise();
    if (p.exception) std::rethrow_exception(p.exception);
    return std::move(p.value);
  }

 private:
  std::coroutine_handle<promise_type> handle_;
};

// void specialization.
template <>
class [[nodiscard]] SubTask<void> {
 public:
  struct promise_type {
    Ctx* ctx = nullptr;
    std::coroutine_handle<> continuation;
    std::exception_ptr exception;

    static void* operator new(std::size_t n) { return detail::FramePool::allocate(n); }
    static void operator delete(void* p, std::size_t n) noexcept {
      detail::FramePool::deallocate(p, n);
    }

    template <typename... Args>
    explicit promise_type(Ctx& c, Args&&...) : ctx(&c) {}

    // Member/lambda coroutines receive the object as an implicit first
    // argument; accept (object, Ctx&, ...) as well.
    template <typename Obj, typename... Args>
      requires(!std::is_convertible_v<Obj&&, Ctx&>)
    explicit promise_type(Obj&&, Ctx& c, Args&&...) : ctx(&c) {}

    SubTask get_return_object() {
      return SubTask(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<promise_type> h) const noexcept {
        promise_type& p = h.promise();
        p.ctx->set_current(p.continuation);
        return p.continuation;
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() noexcept {}
    void unhandled_exception() { exception = std::current_exception(); }
  };

  explicit SubTask(std::coroutine_handle<promise_type> h) : handle_(h) {}
  SubTask(const SubTask&) = delete;
  SubTask& operator=(const SubTask&) = delete;
  SubTask(SubTask&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  ~SubTask() {
    if (handle_) handle_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
    promise_type& p = handle_.promise();
    p.continuation = parent;
    p.ctx->set_current(handle_);
    return handle_;
  }
  void await_resume() {
    promise_type& p = handle_.promise();
    if (p.exception) std::rethrow_exception(p.exception);
  }

 private:
  std::coroutine_handle<promise_type> handle_;
};

}  // namespace pram
