#include "pram/scheduler.h"

#include <algorithm>

#include "common/check.h"

namespace pram {

void SynchronousScheduler::select(std::uint64_t /*round*/, const StepMask& eligible,
                                  StepMask& stepping) {
  // std::copy lowers to memcpy; the element loop it replaces was a scalar
  // per-processor pass on the per-round hot path.
  std::copy(eligible.begin(), eligible.end(), stepping.begin());
}

RandomSubsetScheduler::RandomSubsetScheduler(double p, std::uint64_t seed)
    : p_(p), rng_(seed) {
  WFSORT_CHECK(p > 0.0 && p <= 1.0);
}

void RandomSubsetScheduler::select(std::uint64_t /*round*/, const StepMask& eligible,
                                   StepMask& stepping) {
  bool any = false;
  for (std::size_t p = 0; p < eligible.size(); ++p) {
    if (eligible[p] && rng_.uniform01() < p_) {
      stepping[p] = 1;
      any = true;
    }
  }
  if (!any) {
    for (std::size_t p = 0; p < eligible.size(); ++p) {
      if (eligible[p]) {
        stepping[p] = 1;
        break;
      }
    }
  }
}

void RoundRobinScheduler::select(std::uint64_t /*round*/, const StepMask& eligible,
                                 StepMask& stepping) {
  const std::size_t n = eligible.size();
  std::uint32_t picked = 0;
  for (std::size_t scanned = 0; scanned < n && picked < width_; ++scanned) {
    const std::size_t p = (cursor_ + scanned) % n;
    if (eligible[p]) {
      stepping[p] = 1;
      ++picked;
    }
  }
  cursor_ = (cursor_ + 1) % n;
}

void HalfFreezeScheduler::select(std::uint64_t round, const StepMask& eligible,
                                 StepMask& stepping) {
  const std::size_t n = eligible.size();
  // Window index decides which half runs; parity alternates the frozen half.
  const bool freeze_low_half = ((round / period_) % 2) == 0;
  bool any = false;
  for (std::size_t p = 0; p < n; ++p) {
    if (!eligible[p]) continue;
    const bool in_low_half = p < n / 2;
    if (in_low_half != freeze_low_half) {
      stepping[p] = 1;
      any = true;
    }
  }
  if (!any) {  // all eligible processors were in the frozen half
    for (std::size_t p = 0; p < n; ++p) {
      if (eligible[p]) {
        stepping[p] = 1;
        break;
      }
    }
  }
}

}  // namespace pram
