#include "pram/metrics.h"

#include <algorithm>

namespace pram {

void Metrics::begin_round(const Memory& mem) {
  round_max_ = 1;
  // Mirror newly-allocated regions into the flat attribution table (alloc
  // happens between runs or in round hooks; this branch is cold).
  if (region_max_.size() < mem.regions().size()) {
    for (std::size_t id = region_max_.size(); id < mem.regions().size(); ++id) {
      region_names_.push_back(mem.regions()[id].name);
      region_max_.push_back(0);
    }
  }
}

void Metrics::merge_shard(Shard& s) {
  total_ops_ += s.ops;
  s.ops = 0;
  stalls_ += s.stalls;
  s.stalls = 0;
  if (s.round_max > round_max_) round_max_ = s.round_max;
  s.round_max = 0;
  // Histogram buckets are already clamped (Shard::record_cell indexes by the
  // same rule Histogram::add applies), so add(b, weight) lands each tally in
  // its sequential bucket.
  for (const std::uint32_t b : s.hist_touched) {
    contention_hist_.add(b, s.hist[b]);
    s.hist[b] = 0;
  }
  s.hist_touched.clear();
  if (s.best_count > round_best_count_ ||
      (s.best_count == round_best_count_ && s.best_count != 0 &&
       s.best_rank < round_best_rank_)) {
    round_best_count_ = s.best_count;
    round_best_rank_ = s.best_rank;
    round_best_addr_ = s.best_addr;
  }
  s.best_count = 0;
  // Per-region maxima are run-level, so the shard's copy is a running max
  // (never reset); folding with max every round is idempotent.
  for (std::size_t r = 0; r < s.region_max.size(); ++r) {
    if (region_max_[r] < s.region_max[r]) region_max_[r] = s.region_max[r];
  }
}

std::map<std::string, std::size_t> Metrics::region_contention() const {
  std::map<std::string, std::size_t> out;
  for (std::size_t id = 0; id < region_max_.size(); ++id) {
    if (region_max_[id] == 0) continue;  // never accessed
    std::size_t& slot = out[region_names_[id]];
    slot = std::max(slot, region_max_[id]);
  }
  return out;
}

std::uint64_t Metrics::max_proc_ops() const {
  std::uint64_t m = 0;
  for (std::uint64_t v : proc_ops_) m = std::max(m, v);
  return m;
}

std::uint64_t Metrics::max_finish_steps() const {
  std::uint64_t m = 0;
  for (std::uint64_t v : finish_steps_) m = std::max(m, v);
  return m;
}

}  // namespace pram
