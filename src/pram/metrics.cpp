#include "pram/metrics.h"

#include <algorithm>

namespace pram {

void Metrics::begin_round() { round_counts_.clear(); }

void Metrics::record_access(Addr a) { ++round_counts_[a]; }

void Metrics::record_proc_op(ProcId p) {
  if (proc_ops_.size() <= p) proc_ops_.resize(p + 1, 0);
  ++proc_ops_[p];
  ++total_ops_;
}

void Metrics::end_round(const Memory& mem) {
  ++rounds_;
  std::uint32_t round_max = 1;
  for (const auto& [addr, count] : round_counts_) {
    round_max = std::max(round_max, count);
    contention_hist_.add(count);
    if (count > max_contention_) {
      max_contention_ = count;
      hottest_addr_ = addr;
      hottest_round_ = rounds_;
    }
    if (const Region* r = mem.region_of(addr)) {
      std::size_t& region_max = region_contention_[r->name];
      region_max = std::max<std::size_t>(region_max, count);
    }
  }
  qrqw_time_ += round_max;
}

std::uint64_t Metrics::max_proc_ops() const {
  std::uint64_t m = 0;
  for (std::uint64_t v : proc_ops_) m = std::max(m, v);
  return m;
}

}  // namespace pram
