#include "pram/metrics.h"

#include <algorithm>

namespace pram {

void Metrics::begin_round(const Memory& mem) {
  round_max_ = 1;
  // Mirror newly-allocated regions into the flat attribution table (alloc
  // happens between runs or in round hooks; this branch is cold).
  if (region_max_.size() < mem.regions().size()) {
    for (std::size_t id = region_max_.size(); id < mem.regions().size(); ++id) {
      region_names_.push_back(mem.regions()[id].name);
      region_max_.push_back(0);
    }
  }
}

std::map<std::string, std::size_t> Metrics::region_contention() const {
  std::map<std::string, std::size_t> out;
  for (std::size_t id = 0; id < region_max_.size(); ++id) {
    if (region_max_[id] == 0) continue;  // never accessed
    std::size_t& slot = out[region_names_[id]];
    slot = std::max(slot, region_max_[id]);
  }
  return out;
}

std::uint64_t Metrics::max_proc_ops() const {
  std::uint64_t m = 0;
  for (std::uint64_t v : proc_ops_) m = std::max(m, v);
  return m;
}

std::uint64_t Metrics::max_finish_steps() const {
  std::uint64_t m = 0;
  for (std::uint64_t v : finish_steps_) m = std::max(m, v);
  return m;
}

}  // namespace pram
