// A processor's pending shared-memory operation for the current round.
#pragma once

#include "pram/word.h"

namespace pram {

enum class OpKind : std::uint8_t {
  kNone,   // no pending operation (not yet started, or finished)
  kRead,   // result = M[addr]
  kWrite,  // M[addr] = arg0
  kCas,    // if M[addr] == arg0 then M[addr] = arg1; result = old M[addr]
  kFaa,    // M[addr] += arg0; result = old M[addr] (fetch-and-add)
  kYield,  // local delay step: occupies a round, touches no memory
};

struct MemRequest {
  OpKind kind = OpKind::kNone;
  Addr addr = 0;
  Word arg0 = 0;    // write value / CAS expected
  Word arg1 = 0;    // CAS desired
  Word result = 0;  // filled by the machine before the processor resumes
};

}  // namespace pram
