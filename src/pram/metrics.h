// Execution metrics of a simulated run.
//
// The paper defines contention as "the maximum number of concurrent accesses
// to any single variable" (Section 1.2).  The simulator measures exactly
// this: for every round, the number of processors whose memory operation
// targets each cell; the maximum over all (cell, round) pairs is the run's
// contention.  We additionally keep a histogram of per-(cell, round) access
// counts, per-region maxima for attribution, per-processor step counts (the
// empirical wait-free bound), and — in the stall memory model — the total
// number of stalls as defined by Dwork, Herlihy and Waarts.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "pram/memory.h"
#include "pram/word.h"

namespace pram {

class Metrics {
 public:
  explicit Metrics(std::size_t histogram_buckets = 4096)
      : contention_hist_(histogram_buckets) {}

  // --- recording (driven by the Machine's round loop) ---
  void begin_round();
  void record_access(Addr a);
  void record_proc_op(ProcId p);
  void record_stall(std::uint64_t n = 1) { stalls_ += n; }
  void end_round(const Memory& mem);

  // --- queries ---
  std::uint64_t rounds() const { return rounds_; }
  std::uint64_t total_ops() const { return total_ops_; }
  std::uint64_t stalls() const { return stalls_; }

  // The paper's contention measure: max concurrent accesses to one variable.
  std::size_t max_cell_contention() const { return max_contention_; }

  // Time under the QRQW PRAM cost model (Gibbons, Matias & Ramachandran,
  // cited by the paper): each round costs its maximum per-cell multiplicity
  // instead of 1, so contention directly lengthens the run.  Rounds with no
  // memory traffic cost 1.
  std::uint64_t qrqw_time() const { return qrqw_time_; }
  Addr hottest_addr() const { return hottest_addr_; }
  std::uint64_t hottest_round() const { return hottest_round_; }

  // Histogram over per-(cell, round) access counts (bucket k = "a cell was
  // accessed by k processors in some round", counted once per such pair).
  const wfsort::Histogram& contention_histogram() const { return contention_hist_; }

  // Max contention attributed to each named memory region.
  const std::map<std::string, std::size_t>& region_contention() const {
    return region_contention_;
  }

  // Steps (memory operations incl. yields) executed by each processor; the
  // max over processors is the empirical per-processor wait-free step bound.
  const std::vector<std::uint64_t>& proc_ops() const { return proc_ops_; }
  std::uint64_t max_proc_ops() const;

 private:
  std::uint64_t rounds_ = 0;
  std::uint64_t total_ops_ = 0;
  std::uint64_t stalls_ = 0;
  std::uint64_t qrqw_time_ = 0;

  std::size_t max_contention_ = 0;
  Addr hottest_addr_ = 0;
  std::uint64_t hottest_round_ = 0;

  wfsort::Histogram contention_hist_;
  std::map<std::string, std::size_t> region_contention_;
  std::vector<std::uint64_t> proc_ops_;

  std::unordered_map<Addr, std::uint32_t> round_counts_;  // scratch, per round
};

}  // namespace pram
