// Execution metrics of a simulated run.
//
// The paper defines contention as "the maximum number of concurrent accesses
// to any single variable" (Section 1.2).  The simulator measures exactly
// this: for every round, the number of processors whose memory operation
// targets each cell; the maximum over all (cell, round) pairs is the run's
// contention.  We additionally keep a histogram of per-(cell, round) access
// counts, per-region maxima for attribution, per-processor step counts (the
// empirical wait-free bound), and — in the stall memory model — the total
// number of stalls as defined by Dwork, Herlihy and Waarts.
//
// Recording is allocation-free after warm-up, and fused with the machine's
// round engine: serve_round already groups requests by cell, so it reports
// each touched cell exactly once per round via record_cell(addr, count,
// region) — Metrics keeps no per-cell scratch of its own.  Region
// attribution goes through the memory's O(1) cell -> region-id table into a
// flat per-region vector; names are mirrored cold in begin_round.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/stats.h"
#include "pram/memory.h"
#include "pram/word.h"

namespace pram {

class Metrics {
 public:
  explicit Metrics(std::size_t histogram_buckets = 4096)
      : contention_hist_(histogram_buckets) {}

  // --- recording (driven by the Machine's round loop) ---
  // begin_round mirrors any newly-allocated regions into the flat
  // attribution table (alloc happens between runs or in round hooks, never
  // mid-round, so every RegionId record_cell sees is covered).
  void begin_round(const Memory& mem);
  // One call per cell touched this round: `count` processors accessed `a`.
  void record_cell(Addr a, std::uint32_t count, Memory::RegionId region) {
    if (count > round_max_) round_max_ = count;
    contention_hist_.add(count);
    if (count > max_contention_) {
      max_contention_ = count;
      hottest_addr_ = a;
      hottest_round_ = rounds_ + 1;  // end_round increments rounds_ afterwards
    }
    if (region != Memory::kNoRegion && region_max_[region] < count) {
      region_max_[region] = count;
    }
  }
  void record_proc_op(ProcId p) {
    if (p >= proc_ops_.size()) ensure_procs(p + 1);  // never taken after spawn preallocates
    ++proc_ops_[p];
    ++total_ops_;
  }
  // Called by the machine exactly once, when processor `p`'s program
  // returns; freezes its own-step count for the wait-freedom certifier.
  void record_proc_finish(ProcId p) {
    if (p >= proc_ops_.size()) ensure_procs(p + 1);
    if (p >= finish_steps_.size()) finish_steps_.resize(proc_ops_.size(), 0);
    finish_steps_[p] = proc_ops_[p];
  }
  void record_stall(std::uint64_t n = 1) { stalls_ += n; }
  void end_round() {
    ++rounds_;
    qrqw_time_ += round_max_;  // rounds with no memory traffic cost 1
  }

  // Preallocate per-processor counters; called by Machine::spawn so the hot
  // path never grows proc_ops_ one element at a time.
  void ensure_procs(std::size_t n) {
    if (proc_ops_.size() < n) proc_ops_.resize(n, 0);
  }

  // --- queries ---
  std::uint64_t rounds() const { return rounds_; }
  std::uint64_t total_ops() const { return total_ops_; }
  std::uint64_t stalls() const { return stalls_; }

  // The paper's contention measure: max concurrent accesses to one variable.
  std::size_t max_cell_contention() const { return max_contention_; }

  // Time under the QRQW PRAM cost model (Gibbons, Matias & Ramachandran,
  // cited by the paper): each round costs its maximum per-cell multiplicity
  // instead of 1, so contention directly lengthens the run.  Rounds with no
  // memory traffic cost 1.
  std::uint64_t qrqw_time() const { return qrqw_time_; }
  Addr hottest_addr() const { return hottest_addr_; }
  std::uint64_t hottest_round() const { return hottest_round_; }

  // Histogram over per-(cell, round) access counts (bucket k = "a cell was
  // accessed by k processors in some round", counted once per such pair).
  const wfsort::Histogram& contention_histogram() const { return contention_hist_; }

  // Max contention attributed to each named memory region (regions that were
  // never accessed are omitted).  Built on demand from the flat per-region
  // table; call it for reporting, not from hot loops.
  std::map<std::string, std::size_t> region_contention() const;

  // Steps (memory operations incl. yields) executed by each processor; the
  // max over processors is the empirical per-processor wait-free step bound.
  const std::vector<std::uint64_t>& proc_ops() const { return proc_ops_; }
  std::uint64_t max_proc_ops() const;

  // Own-step accounting for the bounded-own-steps definition of
  // wait-freedom: steps processor `p` had taken when its program returned,
  // or 0 while it is unfinished (entries beyond the vector are unfinished
  // too).  Wait-freedom demands a bound on these values that holds for
  // every processor that keeps taking steps, under every schedule and
  // failure pattern; max_finish_steps() is the run's worst case.
  const std::vector<std::uint64_t>& finish_steps() const { return finish_steps_; }
  std::uint64_t finish_steps(ProcId p) const {
    return p < finish_steps_.size() ? finish_steps_[p] : 0;
  }
  std::uint64_t max_finish_steps() const;

 private:
  std::uint64_t rounds_ = 0;
  std::uint64_t total_ops_ = 0;
  std::uint64_t stalls_ = 0;
  std::uint64_t qrqw_time_ = 0;

  std::size_t max_contention_ = 0;
  Addr hottest_addr_ = 0;
  std::uint64_t hottest_round_ = 0;

  wfsort::Histogram contention_hist_;
  std::vector<std::size_t> region_max_;     // indexed by Memory::RegionId
  std::vector<std::string> region_names_;   // region id -> name, mirrored in begin_round
  std::vector<std::uint64_t> proc_ops_;
  std::vector<std::uint64_t> finish_steps_;  // own steps at program return; 0 = running

  std::uint32_t round_max_ = 1;  // max per-cell multiplicity this round
};

}  // namespace pram
