// Execution metrics of a simulated run.
//
// The paper defines contention as "the maximum number of concurrent accesses
// to any single variable" (Section 1.2).  The simulator measures exactly
// this: for every round, the number of processors whose memory operation
// targets each cell; the maximum over all (cell, round) pairs is the run's
// contention.  We additionally keep a histogram of per-(cell, round) access
// counts, per-region maxima for attribution, per-processor step counts (the
// empirical wait-free bound), and — in the stall memory model — the total
// number of stalls as defined by Dwork, Herlihy and Waarts.
//
// Recording is allocation-free after warm-up, and fused with the machine's
// round engine: serve_round already groups requests by cell, so it reports
// each touched cell exactly once per round via record_cell(addr, count,
// region) — Metrics keeps no per-cell scratch of its own.  Region
// attribution goes through the memory's O(1) cell -> region-id table into a
// flat per-region vector; names are mirrored cold in begin_round.
//
// Parallel rounds record through per-thread Shard scratch instead, merged
// by merge_shard at round commit.  The merge reproduces the sequential
// accumulation exactly — including the order-sensitive hottest-cell rule,
// which a shard resolves by carrying each candidate's first-touch rank (its
// position in the round's canonical cell serving order) so the commit can
// pick the cell the sequential loop would have latched.  Per-processor
// counters (proc_ops_, finish_steps_) stay direct-write even in parallel
// rounds: a processor is served by exactly one thread per round, and
// ensure_procs pre-sizes both vectors so no thread ever grows them.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/stats.h"
#include "pram/memory.h"
#include "pram/word.h"

namespace pram {

class Metrics {
 public:
  explicit Metrics(std::size_t histogram_buckets = 4096)
      : contention_hist_(histogram_buckets) {}

  // --- recording (driven by the Machine's round loop) ---
  // begin_round mirrors any newly-allocated regions into the flat
  // attribution table (alloc happens between runs or in round hooks, never
  // mid-round, so every RegionId record_cell sees is covered).
  void begin_round(const Memory& mem);
  // One call per cell touched this round: `count` processors accessed `a`.
  void record_cell(Addr a, std::uint32_t count, Memory::RegionId region) {
    if (count > round_max_) round_max_ = count;
    contention_hist_.add(count);
    if (count > max_contention_) {
      max_contention_ = count;
      hottest_addr_ = a;
      hottest_round_ = rounds_ + 1;  // end_round increments rounds_ afterwards
    }
    if (region != Memory::kNoRegion && region_max_[region] < count) {
      region_max_[region] = count;
    }
  }
  void record_proc_op(ProcId p) {
    if (p >= proc_ops_.size()) ensure_procs(p + 1);  // never taken after spawn preallocates
    ++proc_ops_[p];
    ++total_ops_;
  }
  // Called by the machine exactly once, when processor `p`'s program
  // returns; freezes its own-step count for the wait-freedom certifier.
  void record_proc_finish(ProcId p) {
    if (p >= proc_ops_.size()) ensure_procs(p + 1);
    if (p >= finish_steps_.size()) finish_steps_.resize(proc_ops_.size(), 0);
    finish_steps_[p] = proc_ops_[p];
  }
  void record_stall(std::uint64_t n = 1) { stalls_ += n; }
  void end_round() {
    // Apply the round's merged hottest-cell candidate (parallel rounds only;
    // sequential record_cell updates the maximum directly and leaves the
    // candidate empty).  Same rule as the inline update: strictly greater
    // wins, so the earliest round — and, within a round, the earliest cell
    // in first-touch order — keeps the title on ties.
    if (round_best_count_ > max_contention_) {
      max_contention_ = round_best_count_;
      hottest_addr_ = round_best_addr_;
      hottest_round_ = rounds_ + 1;
    }
    round_best_count_ = 0;
    ++rounds_;
    qrqw_time_ += round_max_;  // rounds with no memory traffic cost 1
  }

  // --- sharded recording (parallel round engine) ---
  //
  // One Shard per real thread.  Cell-level records go into the shard;
  // per-processor records write the shared vectors directly (single writer
  // per processor per round) while counting deltas in the shard.  The
  // machine calls merge_shard once per shard before end_round.
  struct Shard {
    std::uint64_t ops = 0;     // record_proc_op_sharded calls (total_ops delta)
    std::uint64_t stalls = 0;
    std::uint32_t round_max = 0;   // max per-cell multiplicity seen this round
    std::uint32_t best_count = 0;  // hottest-cell candidate (0 = none)...
    std::uint64_t best_rank = 0;   // ...with its first-touch rank and address
    Addr best_addr = 0;
    // Dense per-bucket tallies with a touched list, so the per-round reset in
    // merge_shard is O(distinct counts), not O(buckets).
    std::vector<std::uint64_t> hist;
    std::vector<std::uint32_t> hist_touched;
    std::vector<std::size_t> region_max;  // running per-region max (whole run)

    void record_cell(Addr a, std::uint32_t count, Memory::RegionId region,
                     std::uint64_t rank) {
      if (count > round_max) round_max = count;
      const std::size_t b = count < hist.size() ? count : hist.size() - 1;
      if (hist[b]++ == 0) hist_touched.push_back(static_cast<std::uint32_t>(b));
      if (count > best_count || (count == best_count && rank < best_rank)) {
        best_count = count;
        best_rank = rank;
        best_addr = a;
      }
      if (region != Memory::kNoRegion) {
        WFSORT_DCHECK(region < region_max.size());
        if (region_max[region] < count) region_max[region] = count;
      }
    }
    void record_stall(std::uint64_t n) { stalls += n; }
  };

  // Size a shard's scratch for the current bucket/region universe; call once
  // per parallel round, after begin_round (no-op once warm).
  void init_shard(Shard& s) const {
    if (s.hist.size() < contention_hist_.buckets()) {
      s.hist.resize(contention_hist_.buckets(), 0);
    }
    if (s.region_max.size() < region_max_.size()) {
      s.region_max.resize(region_max_.size(), 0);
    }
  }

  // Single-writer-per-processor variants of record_proc_op/record_proc_finish
  // for parallel rounds: the per-processor slot is written directly, shared
  // counters become shard deltas, and nothing resizes (ensure_procs already
  // covers every spawned processor).
  void record_proc_op_sharded(ProcId p, Shard& s) {
    WFSORT_DCHECK(p < proc_ops_.size());
    ++proc_ops_[p];
    ++s.ops;
  }
  void record_proc_finish_presized(ProcId p) {
    WFSORT_DCHECK(p < finish_steps_.size());
    finish_steps_[p] = proc_ops_[p];
  }

  // Fold one shard's round records into this Metrics and reset the shard's
  // round-scoped state.  Equivalent to having issued the shard's record_*
  // calls sequentially (proved by tests/test_metrics_shard.cpp); the
  // hottest-cell candidate is staged in the round candidate and applied by
  // end_round so cross-shard ties resolve by first-touch rank.
  void merge_shard(Shard& s);

  // Preallocate per-processor counters; called by Machine::spawn so the hot
  // path never grows proc_ops_ one element at a time.  finish_steps_ is
  // pre-sized too (0 = still running, same meaning the accessors give
  // missing entries) so parallel rounds can record finishes without a
  // resize racing other shards.
  void ensure_procs(std::size_t n) {
    if (proc_ops_.size() < n) proc_ops_.resize(n, 0);
    if (finish_steps_.size() < n) finish_steps_.resize(n, 0);
  }

  // --- queries ---
  std::uint64_t rounds() const { return rounds_; }
  std::uint64_t total_ops() const { return total_ops_; }
  std::uint64_t stalls() const { return stalls_; }

  // The paper's contention measure: max concurrent accesses to one variable.
  std::size_t max_cell_contention() const { return max_contention_; }

  // Time under the QRQW PRAM cost model (Gibbons, Matias & Ramachandran,
  // cited by the paper): each round costs its maximum per-cell multiplicity
  // instead of 1, so contention directly lengthens the run.  Rounds with no
  // memory traffic cost 1.
  std::uint64_t qrqw_time() const { return qrqw_time_; }
  Addr hottest_addr() const { return hottest_addr_; }
  std::uint64_t hottest_round() const { return hottest_round_; }

  // Histogram over per-(cell, round) access counts (bucket k = "a cell was
  // accessed by k processors in some round", counted once per such pair).
  const wfsort::Histogram& contention_histogram() const { return contention_hist_; }

  // Max contention attributed to each named memory region (regions that were
  // never accessed are omitted).  Built on demand from the flat per-region
  // table; call it for reporting, not from hot loops.
  std::map<std::string, std::size_t> region_contention() const;

  // Steps (memory operations incl. yields) executed by each processor; the
  // max over processors is the empirical per-processor wait-free step bound.
  const std::vector<std::uint64_t>& proc_ops() const { return proc_ops_; }
  std::uint64_t max_proc_ops() const;

  // Own-step accounting for the bounded-own-steps definition of
  // wait-freedom: steps processor `p` had taken when its program returned,
  // or 0 while it is unfinished (entries beyond the vector are unfinished
  // too).  Wait-freedom demands a bound on these values that holds for
  // every processor that keeps taking steps, under every schedule and
  // failure pattern; max_finish_steps() is the run's worst case.
  const std::vector<std::uint64_t>& finish_steps() const { return finish_steps_; }
  std::uint64_t finish_steps(ProcId p) const {
    return p < finish_steps_.size() ? finish_steps_[p] : 0;
  }
  std::uint64_t max_finish_steps() const;

 private:
  std::uint64_t rounds_ = 0;
  std::uint64_t total_ops_ = 0;
  std::uint64_t stalls_ = 0;
  std::uint64_t qrqw_time_ = 0;

  std::size_t max_contention_ = 0;
  Addr hottest_addr_ = 0;
  std::uint64_t hottest_round_ = 0;

  // Round-scoped hottest-cell candidate, fed by merge_shard and applied by
  // end_round.  Sequential rounds leave it at count 0.
  std::uint32_t round_best_count_ = 0;
  std::uint64_t round_best_rank_ = 0;
  Addr round_best_addr_ = 0;

  wfsort::Histogram contention_hist_;
  std::vector<std::size_t> region_max_;     // indexed by Memory::RegionId
  std::vector<std::string> region_names_;   // region id -> name, mirrored in begin_round
  std::vector<std::uint64_t> proc_ops_;
  std::vector<std::uint64_t> finish_steps_;  // own steps at program return; 0 = running

  std::uint32_t round_max_ = 1;  // max per-cell multiplicity this round
};

}  // namespace pram
