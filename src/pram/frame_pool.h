// Recycling allocator for coroutine frames.
//
// Simulator programs create short-lived subroutine coroutines at a high rate
// (one next_element frame per WAT step, one build_tree frame per insertion,
// ...).  Frame sizes cluster around a handful of values — one per coroutine
// function — so a size-bucketed freelist turns almost every frame allocation
// into a pop and every destruction into a push, and recycled frames stay hot
// in cache.  The pool is thread-local: a Machine and all its processor
// coroutines live on one thread, and separate threads (the native engine's
// workers, concurrent tests) get independent pools.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace pram::detail {

class FramePool {
 public:
  static void* allocate(std::size_t n) {
    const std::size_t cls = size_class(n);
    if (cls < kClasses) {
      auto& bin = bins_.bin[cls];
      if (!bin.empty()) {
        void* p = bin.back();
        bin.pop_back();
        return p;
      }
      // Allocate the rounded class size so the block is reusable for any
      // request in the same class.
      return ::operator new(cls * kGranularity);
    }
    return ::operator new(n);
  }

  static void deallocate(void* p, std::size_t n) noexcept {
    const std::size_t cls = size_class(n);
    if (cls < kClasses) {
      try {
        bins_.bin[cls].push_back(p);
        return;
      } catch (...) {
        // Freelist growth failed; fall through to a plain delete.
      }
    }
    ::operator delete(p);
  }

 private:
  static constexpr std::size_t kGranularity = 64;
  static constexpr std::size_t kClasses = 64;  // frames up to 4 KiB are pooled

  static std::size_t size_class(std::size_t n) {
    return (n + kGranularity - 1) / kGranularity;
  }

  struct Bins {
    std::vector<void*> bin[kClasses];
    ~Bins() {
      for (auto& b : bin) {
        for (void* p : b) ::operator delete(p);
      }
    }
  };

  static inline thread_local Bins bins_;
};

}  // namespace pram::detail
