// Shared-memory coordination primitives for PRAM programs.
//
// These are the *blocking* primitives classic PRAM algorithms assume and
// wait-free algorithms exist to avoid: a sense-reversing barrier built on
// fetch-and-add.  They are provided for the baseline programs (the classic
// parallel quicksort of E15) so the cost — and the deadlock-on-failure —
// of barrier synchronization can be measured against the paper's approach.
#pragma once

#include <string_view>

#include "pram/machine.h"
#include "pram/subtask.h"

namespace pram {

struct PramBarrier {
  Region cells;  // [0] = arrival count, [1] = generation
  std::uint32_t parties = 0;

  Addr count_addr() const { return cells.base; }
  Addr gen_addr() const { return cells.base + 1; }
};

PramBarrier make_barrier(Memory& mem, std::string_view name, std::uint32_t parties);

// Block (spin on the generation cell) until all `parties` processors have
// arrived.  One spin iteration costs one round, as on a real machine.
// NOT wait-free: if any party never arrives, everyone else spins forever.
SubTask<void> barrier_wait(Ctx& ctx, PramBarrier barrier);

}  // namespace pram
