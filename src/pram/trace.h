// Execution tracing for the simulated PRAM.
//
// A Tracer observes every served memory operation (round, processor, kind,
// address, operands, result).  Useful for debugging simulator programs and
// for teaching: a trace of a 4-processor run of build_tree reads like the
// paper's walkthrough.  Tracing is off unless a tracer is installed; the
// cost is a single branch per op otherwise.
#pragma once

#include <string>
#include <vector>

#include "pram/memory.h"
#include "pram/request.h"
#include "pram/word.h"

namespace pram {

struct TraceEvent {
  std::uint64_t round = 0;
  ProcId pid = 0;
  OpKind kind = OpKind::kNone;
  Addr addr = 0;
  Word arg0 = 0;    // write value / CAS expected
  Word arg1 = 0;    // CAS desired
  Word result = 0;  // value delivered to the processor
};

class Tracer {
 public:
  virtual ~Tracer() = default;
  virtual void on_event(const TraceEvent& event) = 0;
};

// Keeps the most recent `capacity` events in a fixed-capacity ring: the
// backing vector is filled once and then overwritten in place, so steady-
// state recording is allocation-free (a deque would churn block nodes).
// capacity 0 records nothing but still counts total_events().
class RingTracer final : public Tracer {
 public:
  explicit RingTracer(std::size_t capacity) : capacity_(capacity) {
    buf_.reserve(capacity_);
  }

  void on_event(const TraceEvent& event) override {
    ++total_;
    if (capacity_ == 0) return;
    if (buf_.size() < capacity_) {
      buf_.push_back(event);  // filling phase: within the reserved capacity
    } else {
      buf_[head_] = event;  // steady state: overwrite the oldest slot
      head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
    }
  }

  // The retained window in chronological order (oldest first).
  std::vector<TraceEvent> events() const {
    std::vector<TraceEvent> out;
    out.reserve(buf_.size());
    const auto mid = buf_.begin() + static_cast<std::ptrdiff_t>(head_);
    out.insert(out.end(), mid, buf_.end());
    out.insert(out.end(), buf_.begin(), mid);
    return out;
  }
  std::size_t size() const { return buf_.size(); }
  std::uint64_t total_events() const { return total_; }

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  // index of the oldest event once the ring is full
  std::vector<TraceEvent> buf_;
  std::uint64_t total_ = 0;
};

// Folds every event into an order-sensitive 64-bit FNV-1a hash.  Two runs
// with the same seed must produce the same hash; the determinism suite pins
// whole executions (every served op, in served order) to one golden number.
class HashTracer final : public Tracer {
 public:
  void on_event(const TraceEvent& event) override {
    mix(event.round);
    mix(event.pid);
    mix(static_cast<std::uint64_t>(event.kind));
    mix(event.addr);
    mix(static_cast<std::uint64_t>(event.arg0));
    mix(static_cast<std::uint64_t>(event.arg1));
    mix(static_cast<std::uint64_t>(event.result));
    ++total_;
  }

  std::uint64_t hash() const { return hash_; }
  std::uint64_t total_events() const { return total_; }

 private:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ = (hash_ ^ (v & 0xff)) * 0x100000001b3ULL;
      v >>= 8;
    }
  }

  std::uint64_t hash_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  std::uint64_t total_ = 0;
};

// "r12 p3 CAS qs child pointers[+5] exp=-1 des=7 -> -1"
std::string format_event(const TraceEvent& event, const Memory* mem = nullptr);

}  // namespace pram
