// Execution tracing for the simulated PRAM.
//
// A Tracer observes every served memory operation (round, processor, kind,
// address, operands, result).  Useful for debugging simulator programs and
// for teaching: a trace of a 4-processor run of build_tree reads like the
// paper's walkthrough.  Tracing is off unless a tracer is installed; the
// cost is a single branch per op otherwise.
#pragma once

#include <string>
#include <vector>

#include "pram/memory.h"
#include "pram/request.h"
#include "pram/word.h"
#include "telemetry/ring.h"

namespace pram {

struct TraceEvent {
  std::uint64_t round = 0;
  ProcId pid = 0;
  OpKind kind = OpKind::kNone;
  Addr addr = 0;
  Word arg0 = 0;    // write value / CAS expected
  Word arg1 = 0;    // CAS desired
  Word result = 0;  // value delivered to the processor
};

// Processor lifecycle transitions the adversary engine can inflict; the
// machine reports them through Tracer::on_fault so a flight recorder can
// land kill/suspend/revive events in the victim's ring.
enum class TraceFault : std::uint8_t { kKill = 0, kSuspend = 1, kRevive = 2 };

class Tracer {
 public:
  virtual ~Tracer() = default;
  virtual void on_event(const TraceEvent& event) = 0;
  // Round-loop instrumentation: called once after every committed round with
  // the number of operations it served.  Default no-op keeps the existing
  // tracers (hashing, goldens) byte-identical.
  virtual void on_round(std::uint64_t round, std::uint64_t ops) {
    (void)round;
    (void)ops;
  }
  // Adversary instrumentation: pid's lifecycle changed at `round`.
  virtual void on_fault(std::uint64_t round, ProcId pid, TraceFault fault) {
    (void)round;
    (void)pid;
    (void)fault;
  }
};

// A served memory op as a compact flight-recorder event: t = round,
// a8 = OpKind, a32 = result (truncated), value = address.
inline wfsort::telemetry::FlightEvent to_flight(const TraceEvent& e) {
  wfsort::telemetry::FlightEvent out;
  out.t = e.round;
  out.value = static_cast<std::uint64_t>(e.addr);
  out.a32 = static_cast<std::uint32_t>(static_cast<std::uint64_t>(e.result));
  out.tid = static_cast<std::uint16_t>(e.pid);
  out.kind = static_cast<std::uint8_t>(wfsort::telemetry::FlightKind::kSimOp);
  out.a8 = static_cast<std::uint8_t>(e.kind);
  return out;
}

// Keeps the most recent `capacity` events — a thin adapter over the repo's
// one ring implementation (telemetry::FixedRing; single writer, steady-state
// recording allocation-free).  capacity 0 records nothing but still counts
// total_events().
class RingTracer final : public Tracer {
 public:
  explicit RingTracer(std::size_t capacity) : ring_(capacity) {}

  void on_event(const TraceEvent& event) override { ring_.push(event); }

  // The retained window in chronological order (oldest first).
  std::vector<TraceEvent> events() const { return ring_.snapshot(); }
  std::size_t size() const { return ring_.size(); }
  std::uint64_t total_events() const { return ring_.total(); }

 private:
  wfsort::telemetry::FixedRing<TraceEvent> ring_;
};

// Folds every event into an order-sensitive 64-bit FNV-1a hash.  Two runs
// with the same seed must produce the same hash; the determinism suite pins
// whole executions (every served op, in served order) to one golden number.
class HashTracer final : public Tracer {
 public:
  void on_event(const TraceEvent& event) override {
    mix(event.round);
    mix(event.pid);
    mix(static_cast<std::uint64_t>(event.kind));
    mix(event.addr);
    mix(static_cast<std::uint64_t>(event.arg0));
    mix(static_cast<std::uint64_t>(event.arg1));
    mix(static_cast<std::uint64_t>(event.result));
    ++total_;
  }

  std::uint64_t hash() const { return hash_; }
  std::uint64_t total_events() const { return total_; }

 private:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ = (hash_ ^ (v & 0xff)) * 0x100000001b3ULL;
      v >>= 8;
    }
  }

  std::uint64_t hash_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  std::uint64_t total_ = 0;
};

// "r12 p3 CAS qs child pointers[+5] exp=-1 des=7 -> -1"
std::string format_event(const TraceEvent& event, const Memory* mem = nullptr);

}  // namespace pram
