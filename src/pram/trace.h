// Execution tracing for the simulated PRAM.
//
// A Tracer observes every served memory operation (round, processor, kind,
// address, operands, result).  Useful for debugging simulator programs and
// for teaching: a trace of a 4-processor run of build_tree reads like the
// paper's walkthrough.  Tracing is off unless a tracer is installed; the
// cost is a single branch per op otherwise.
#pragma once

#include <deque>
#include <string>

#include "pram/memory.h"
#include "pram/request.h"
#include "pram/word.h"

namespace pram {

struct TraceEvent {
  std::uint64_t round = 0;
  ProcId pid = 0;
  OpKind kind = OpKind::kNone;
  Addr addr = 0;
  Word arg0 = 0;    // write value / CAS expected
  Word arg1 = 0;    // CAS desired
  Word result = 0;  // value delivered to the processor
};

class Tracer {
 public:
  virtual ~Tracer() = default;
  virtual void on_event(const TraceEvent& event) = 0;
};

// Keeps the most recent `capacity` events in memory.
class RingTracer final : public Tracer {
 public:
  explicit RingTracer(std::size_t capacity) : capacity_(capacity) {}

  void on_event(const TraceEvent& event) override {
    if (events_.size() == capacity_) events_.pop_front();
    events_.push_back(event);
    ++total_;
  }

  const std::deque<TraceEvent>& events() const { return events_; }
  std::uint64_t total_events() const { return total_; }

 private:
  std::size_t capacity_;
  std::deque<TraceEvent> events_;
  std::uint64_t total_ = 0;
};

// "r12 p3 CAS qs child pointers[+5] exp=-1 des=7 -> -1"
std::string format_event(const TraceEvent& event, const Memory* mem = nullptr);

}  // namespace pram
