#include "pram/memory.h"

#include "common/check.h"

namespace pram {

Region Memory::alloc(std::string_view name, Addr size, Word fill) {
  WFSORT_CHECK(size > 0);
  Region r{std::string(name), static_cast<Addr>(cells_.size()), size};
  cells_.resize(cells_.size() + size, fill);
  region_id_.resize(cells_.size(), static_cast<RegionId>(regions_.size()));
  regions_.push_back(r);
  return r;
}

Word Memory::peek(Addr a) const {
  WFSORT_CHECK(a < cells_.size());
  return cells_[a];
}

void Memory::poke(Addr a, Word v) {
  WFSORT_CHECK(a < cells_.size());
  cells_[a] = v;
}

const Region* Memory::region_of(Addr a) const {
  const RegionId id = region_id_of(a);
  return id == kNoRegion ? nullptr : &regions_[id];
}

void Memory::fill_region(const Region& r, const std::vector<Word>& values) {
  WFSORT_CHECK(values.size() == r.size);
  for (Addr i = 0; i < r.size; ++i) cells_[r.base + i] = values[i];
}

std::vector<Word> Memory::read_region(const Region& r) const {
  std::vector<Word> out(r.size);
  for (Addr i = 0; i < r.size; ++i) out[i] = cells_[r.base + i];
  return out;
}

}  // namespace pram
