#include "pram/memory.h"

#include "common/check.h"

namespace pram {

Region Memory::alloc(std::string_view name, Addr size, Word fill) {
  WFSORT_CHECK(size > 0);
  Region r{std::string(name), static_cast<Addr>(cells_.size()), size};
  cells_.resize(cells_.size() + size, fill);
  regions_.push_back(r);
  return r;
}

Word Memory::peek(Addr a) const { return load(a); }

void Memory::poke(Addr a, Word v) { store(a, v); }

Word Memory::load(Addr a) const {
  WFSORT_CHECK(a < cells_.size());
  return cells_[a];
}

void Memory::store(Addr a, Word v) {
  WFSORT_CHECK(a < cells_.size());
  cells_[a] = v;
}

const Region* Memory::region_of(Addr a) const {
  for (const Region& r : regions_) {
    if (r.contains(a)) return &r;
  }
  return nullptr;
}

void Memory::fill_region(const Region& r, const std::vector<Word>& values) {
  WFSORT_CHECK(values.size() == r.size);
  for (Addr i = 0; i < r.size; ++i) cells_[r.base + i] = values[i];
}

std::vector<Word> Memory::read_region(const Region& r) const {
  std::vector<Word> out(r.size);
  for (Addr i = 0; i < r.size; ++i) out[i] = cells_[r.base + i];
  return out;
}

}  // namespace pram
