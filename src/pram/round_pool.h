// Persistent worker pool for the parallel round engine.
//
// RoundPool(T) owns T-1 OS threads; run(job) executes job(tid) for every
// tid in [0, T), with the calling thread taking shard 0, and returns once
// all shards have finished.  The pool exists to make a round phase cheap to
// launch — one notify_all and one countdown wait per phase — not to
// schedule work: partitioning shards deterministically is the caller's job
// (see Machine::serve_round_parallel).
//
// All handoff goes through one mutex (dispatch is a generation counter,
// completion a countdown), so every phase boundary is a full happens-before
// edge: whatever shard i wrote in phase k, any shard may read in phase k+1
// without further synchronization.  That property is what lets the round
// engine keep its scratch in plain vectors instead of atomics.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pram::detail {

class RoundPool {
 public:
  explicit RoundPool(unsigned shards) : shards_(shards) {
    for (unsigned t = 1; t < shards_; ++t) {
      threads_.emplace_back([this, t] { worker_loop(t); });
    }
  }

  RoundPool(const RoundPool&) = delete;
  RoundPool& operator=(const RoundPool&) = delete;

  ~RoundPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& th : threads_) th.join();
  }

  unsigned shards() const { return shards_; }

  // Run job(tid) on every shard; returns when all shards have finished.  Not
  // reentrant: the job must not call run() again.
  void run(const std::function<void(unsigned)>& job) {
    if (shards_ <= 1) {
      job(0);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      job_ = &job;
      pending_ = shards_ - 1;
      ++gen_;
    }
    work_cv_.notify_all();
    job(0);  // the calling thread is shard 0
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    job_ = nullptr;
  }

 private:
  void worker_loop(unsigned tid) {
    std::uint64_t seen = 0;
    while (true) {
      const std::function<void(unsigned)>* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock, [&] { return stop_ || gen_ != seen; });
        if (stop_) return;
        seen = gen_;
        job = job_;
      }
      (*job)(tid);
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--pending_ == 0) done_cv_.notify_one();
      }
    }
  }

  unsigned shards_;
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(unsigned)>* job_ = nullptr;
  std::uint64_t gen_ = 0;
  unsigned pending_ = 0;
  bool stop_ = false;
};

}  // namespace pram::detail
