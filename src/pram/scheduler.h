// Schedulers decide, round by round, which eligible processors take a step.
//
// Wait-freedom must hold under *every* schedule, so the simulator treats the
// schedule as an adversary supplied by the experiment.  "Eligible" means the
// processor exists, has not finished, has not been killed and is not
// suspended; the scheduler may only choose among eligible processors.
// Processor *failures* (kill/suspend/revive) are injected separately through
// the Machine's round hook, keeping "who crashed" orthogonal to "who is
// slow".
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "pram/word.h"

namespace pram {

// Per-processor 0/1 flags indexed by ProcId.  Deliberately std::uint8_t, not
// bool: std::vector<bool> is a bit-packed proxy container whose element
// accesses cost a shift+mask and defeat memset-style bulk clears on the
// simulator's per-round hot path.
using StepMask = std::vector<std::uint8_t>;

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  // Set stepping[p] = 1 for each eligible processor that takes a step in
  // this round.  stepping is pre-sized to eligible.size() and all-zero.
  virtual void select(std::uint64_t round, const StepMask& eligible, StepMask& stepping) = 0;
};

// The faultless synchronous CRCW PRAM: everyone steps every round.  All of
// the paper's running-time lemmas are stated for this schedule.
class SynchronousScheduler final : public Scheduler {
 public:
  void select(std::uint64_t round, const StepMask& eligible, StepMask& stepping) override;
};

// Each eligible processor independently steps with probability `p` per round
// (a standard model of asynchrony).  If the coin flips select nobody, the
// first eligible processor is forced to step so the system always makes
// progress — without this a run could spin in empty rounds forever.
class RandomSubsetScheduler final : public Scheduler {
 public:
  RandomSubsetScheduler(double p, std::uint64_t seed);

  void select(std::uint64_t round, const StepMask& eligible, StepMask& stepping) override;

 private:
  double p_;
  wfsort::Rng rng_;
};

// Exactly `width` eligible processors step per round, in rotation.  With
// width = 1 this is the fully-sequential adversary: it serializes the whole
// algorithm and is the harshest legal schedule for a wait-free run.
class RoundRobinScheduler final : public Scheduler {
 public:
  explicit RoundRobinScheduler(std::uint32_t width) : width_(width) {}

  void select(std::uint64_t round, const StepMask& eligible, StepMask& stepping) override;

 private:
  std::uint32_t width_;
  std::uint64_t cursor_ = 0;
};

// Adversary that deliberately starves a moving subset: in each window of
// `period` rounds a different half of the processors is frozen.  Exercises
// the "processors may be arbitrarily delayed and later resume" clause of the
// wait-free definition without killing anyone.
class HalfFreezeScheduler final : public Scheduler {
 public:
  explicit HalfFreezeScheduler(std::uint64_t period) : period_(period) {}

  void select(std::uint64_t round, const StepMask& eligible, StepMask& stepping) override;

 private:
  std::uint64_t period_;
};

}  // namespace pram
