// The simulated CRCW PRAM.
//
// Model.  Execution proceeds in rounds.  In each round the scheduler picks a
// set of processors; every picked processor performs exactly one pending
// shared-memory operation (read, write, CAS, or an explicit yield) and then
// runs its local computation — for free, as in the PRAM cost model — up to
// its next operation.  Within a round:
//
//   * all READs return the cell value as of the start of the round
//     (concurrent-read);
//   * WRITEs and CASes targeting the same cell are serialized in a
//     seeded-random arbitration order; each CAS observes the value left by
//     the previous read-modify-write in that order, and for plain concurrent
//     writes the last one in the order wins (arbitrary-winner CRCW).  This
//     guarantees the property the algorithms rely on: of all CAS(EMPTY -> x)
//     attempts that collide in one round, exactly one succeeds.
//
// Memory models.  kCrcw serves every access each round (contention is only
// *measured*); kStall additionally makes contention cost time, as in Dwork,
// Herlihy and Waarts' model: each cell serves one operation per round and
// the losers stall, retrying in the next round.
//
// Failures.  kill(p) permanently removes a processor mid-operation —
// whatever half-finished state it left in shared memory stays there, which
// is exactly the failure model wait-freedom is about.  suspend(p)/awaken(p)
// model a processor that stops taking steps (page fault, preemption) and
// later resumes.  A per-round hook lets experiments inject these at chosen
// rounds.
//
// Writing programs.  A processor program is a coroutine returning Task that
// takes a Ctx& as its first parameter and performs co_await ctx.read(...)
// etc.  Pass parameters BY VALUE into the coroutine.  The factory passed to
// spawn() may be a capturing lambda, but the lambda itself must not be a
// coroutine; have it call a free coroutine function (CppCoreGuidelines
// CP.51).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "pram/memory.h"
#include "pram/metrics.h"
#include "pram/request.h"
#include "pram/scheduler.h"
#include "pram/task.h"
#include "pram/trace.h"
#include "pram/word.h"

namespace pram {

class Machine;

// Per-processor execution context handed to programs.  Address-stable for
// the processor's lifetime (coroutines hold a pointer to it).
class Ctx {
 public:
  ProcId pid() const { return pid_; }
  wfsort::Rng& rng() { return rng_; }

  // Awaitable memory operations.  Each occupies one round when scheduled.
  struct [[nodiscard]] Op {
    Ctx* ctx;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<>) const noexcept {}
    Word await_resume() const noexcept { return ctx->pending_.result; }
  };

  Op read(Addr a) {
    pending_ = MemRequest{OpKind::kRead, a, 0, 0, 0};
    return Op{this};
  }
  Op write(Addr a, Word v) {
    pending_ = MemRequest{OpKind::kWrite, a, v, 0, 0};
    return Op{this};
  }
  // Compare-and-swap; returns the value held before the operation (the CAS
  // succeeded iff the returned word equals `expect`).
  Op cas(Addr a, Word expect, Word desired) {
    pending_ = MemRequest{OpKind::kCas, a, expect, desired, 0};
    return Op{this};
  }
  // Fetch-and-add; returns the pre-operation value.  Concurrent FAAs to the
  // same cell all take effect within the round (serialized in arbitration
  // order, like CAS).
  Op faa(Addr a, Word delta) {
    pending_ = MemRequest{OpKind::kFaa, a, delta, 0, 0};
    return Op{this};
  }
  // Spend one scheduled round without touching memory (used by the paper's
  // winner-selection wait loop).
  Op yield() {
    pending_ = MemRequest{OpKind::kYield, 0, 0, 0, 0};
    return Op{this};
  }

  // Innermost active coroutine of this processor; used by SubTask (nested
  // subroutine coroutines) and by the Machine's round loop.  Programs never
  // call these directly.
  void set_current(std::coroutine_handle<> h) { current_ = h; }
  std::coroutine_handle<> current() const { return current_; }

 private:
  friend class Machine;
  Ctx(ProcId pid, wfsort::Rng rng) : pid_(pid), rng_(rng) {}

  ProcId pid_;
  wfsort::Rng rng_;
  MemRequest pending_;
  std::coroutine_handle<> current_;
};

using ProgramFactory = std::function<Task(Ctx&)>;

enum class MemoryModel {
  kCrcw,   // all concurrent accesses served; contention is measured only
  kStall,  // one access per cell per round; losers stall (Dwork et al.)
};

struct MachineOptions {
  std::uint64_t seed = 0x9a7a1e5ed0c0ffeeULL;
  MemoryModel memory_model = MemoryModel::kCrcw;
  std::uint64_t max_rounds = 100'000'000;  // safety cap against runaway programs
};

struct RunResult {
  std::uint64_t rounds = 0;        // rounds executed by this run() call
  bool all_finished = false;       // every live processor's program returned
  bool predicate_hit = false;      // the caller's stop predicate fired
  bool hit_round_cap = false;      // stopped by MachineOptions::max_rounds
};

class Machine {
 public:
  explicit Machine(MachineOptions opts = {});
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  Memory& mem() { return mem_; }
  const Memory& mem() const { return mem_; }
  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }

  // Create a processor running the given program.  May be called between
  // run() calls (thread spawning in the paper's OS scenario).
  ProcId spawn(ProgramFactory factory);
  std::size_t procs() const { return procs_.size(); }

  // Failure injection.
  void kill(ProcId p);
  void suspend(ProcId p);
  void awaken(ProcId p);
  bool killed(ProcId p) const;
  bool finished(ProcId p) const;

  // Count of processors that are alive (not killed), regardless of progress.
  std::size_t live_procs() const;

  // Invoked at the start of every round; experiments use it to kill/suspend/
  // spawn at chosen times.
  using RoundHook = std::function<void(Machine&, std::uint64_t round)>;
  void set_round_hook(RoundHook hook) { round_hook_ = std::move(hook); }

  // Observe every served memory operation (nullptr disables tracing).  The
  // tracer must outlive the run.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  using StopPredicate = std::function<bool(const Machine&)>;

  // Run rounds under `sched` until every eligible processor has finished,
  // `stop` fires, or the round cap is reached.  Resumable: a later run()
  // continues where the previous one left off.
  RunResult run(Scheduler& sched, const StopPredicate& stop = nullptr);

  // Convenience: run under the faultless synchronous schedule.
  RunResult run_synchronous(const StopPredicate& stop = nullptr);

  std::uint64_t current_round() const { return round_; }

 private:
  struct Proc {
    Ctx ctx;
    Task task;
    ProgramFactory factory;  // kept alive for the coroutine's lifetime
    bool started = false;
    bool killed = false;
    bool suspended = false;

    Proc(ProcId pid, wfsort::Rng rng) : ctx(pid, rng) {}
  };

  // Start-or-resume p's coroutine: runs local computation to the next memory
  // request or to completion.
  void advance(Proc& p);
  bool eligible(const Proc& p) const;
  void serve_round(const std::vector<ProcId>& stepping);

  MachineOptions opts_;
  Memory mem_;
  Metrics metrics_;
  wfsort::Rng arb_rng_;  // arbitration randomness
  std::vector<std::unique_ptr<Proc>> procs_;
  RoundHook round_hook_;
  Tracer* tracer_ = nullptr;
  std::uint64_t round_ = 0;

  // Scratch buffers reused across rounds.
  std::vector<bool> eligible_scratch_;
  std::vector<bool> stepping_scratch_;
  std::vector<ProcId> stepping_list_;
  std::unordered_map<Addr, std::vector<ProcId>> by_cell_;
};

}  // namespace pram
