// The simulated CRCW PRAM.
//
// Model.  Execution proceeds in rounds.  In each round the scheduler picks a
// set of processors; every picked processor performs exactly one pending
// shared-memory operation (read, write, CAS, or an explicit yield) and then
// runs its local computation — for free, as in the PRAM cost model — up to
// its next operation.  Within a round:
//
//   * all READs return the cell value as of the start of the round
//     (concurrent-read);
//   * WRITEs and CASes targeting the same cell are serialized in a
//     seeded-random arbitration order; each CAS observes the value left by
//     the previous read-modify-write in that order, and for plain concurrent
//     writes the last one in the order wins (arbitrary-winner CRCW).  This
//     guarantees the property the algorithms rely on: of all CAS(EMPTY -> x)
//     attempts that collide in one round, exactly one succeeds.
//
// Memory models.  kCrcw serves every access each round (contention is only
// *measured*); kStall additionally makes contention cost time, as in Dwork,
// Herlihy and Waarts' model: each cell serves one operation per round and
// the losers stall, retrying in the next round.
//
// Failures.  kill(p) permanently removes a processor mid-operation —
// whatever half-finished state it left in shared memory stays there, which
// is exactly the failure model wait-freedom is about.  suspend(p)/awaken(p)
// model a processor that stops taking steps (page fault, preemption) and
// later resumes.  A per-round hook lets experiments inject these at chosen
// rounds.
//
// Writing programs.  A processor program is a coroutine returning Task that
// takes a Ctx& as its first parameter and performs co_await ctx.read(...)
// etc.  Pass parameters BY VALUE into the coroutine.  The factory passed to
// spawn() may be a capturing lambda, but the lambda itself must not be a
// coroutine; have it call a free coroutine function (CppCoreGuidelines
// CP.51).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "pram/memory.h"
#include "pram/metrics.h"
#include "pram/request.h"
#include "pram/scheduler.h"
#include "pram/task.h"
#include "pram/trace.h"
#include "pram/word.h"

namespace pram {

class Machine;

namespace detail {
class RoundPool;
}

// Per-processor execution context handed to programs.  Address-stable for
// the processor's lifetime (coroutines hold a pointer to it).
class Ctx {
 public:
  ProcId pid() const { return pid_; }
  wfsort::Rng& rng() { return rng_; }

  // Awaitable memory operations.  Each occupies one round when scheduled.
  struct [[nodiscard]] Op {
    Ctx* ctx;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<>) const noexcept {}
    Word await_resume() const noexcept { return ctx->pending_.result; }
  };

  Op read(Addr a) {
    pending_ = MemRequest{OpKind::kRead, a, 0, 0, 0};
    return Op{this};
  }
  Op write(Addr a, Word v) {
    pending_ = MemRequest{OpKind::kWrite, a, v, 0, 0};
    return Op{this};
  }
  // Compare-and-swap; returns the value held before the operation (the CAS
  // succeeded iff the returned word equals `expect`).
  Op cas(Addr a, Word expect, Word desired) {
    pending_ = MemRequest{OpKind::kCas, a, expect, desired, 0};
    return Op{this};
  }
  // Fetch-and-add; returns the pre-operation value.  Concurrent FAAs to the
  // same cell all take effect within the round (serialized in arbitration
  // order, like CAS).
  Op faa(Addr a, Word delta) {
    pending_ = MemRequest{OpKind::kFaa, a, delta, 0, 0};
    return Op{this};
  }
  // Spend one scheduled round without touching memory (used by the paper's
  // winner-selection wait loop).
  Op yield() {
    pending_ = MemRequest{OpKind::kYield, 0, 0, 0, 0};
    return Op{this};
  }

  // Innermost active coroutine of this processor; used by SubTask (nested
  // subroutine coroutines) and by the Machine's round loop.  Programs never
  // call these directly.
  void set_current(std::coroutine_handle<> h) { current_ = h; }
  std::coroutine_handle<> current() const { return current_; }

 private:
  friend class Machine;
  Ctx(ProcId pid, wfsort::Rng rng) : pid_(pid), rng_(rng) {}

  // pending_, current_, and finished_ are touched by the machine on every
  // served operation; they lead the layout so one cache line covers them.
  MemRequest pending_;
  std::coroutine_handle<> current_;
  ProcId pid_;
  // Raised by the root Task's final suspend (Task::set_done_flag); lets the
  // round loop detect completion without reading the cold root frame.
  bool finished_ = false;
  wfsort::Rng rng_;
};

using ProgramFactory = std::function<Task(Ctx&)>;

enum class MemoryModel {
  kCrcw,   // all concurrent accesses served; contention is measured only
  kStall,  // one access per cell per round; losers stall (Dwork et al.)
};

struct MachineOptions {
  std::uint64_t seed = 0x9a7a1e5ed0c0ffeeULL;
  MemoryModel memory_model = MemoryModel::kCrcw;
  std::uint64_t max_rounds = 100'000'000;  // safety cap against runaway programs
  // Real OS threads sharding the round engine (1 = the sequential engine).
  // Any value produces bit-identical observables — trace stream, metrics,
  // arbitration — so this is purely a throughput knob; the determinism suite
  // pins the equivalence (tests/test_determinism.cpp).
  std::uint32_t sim_threads = 1;
  // Rounds stepping fewer processors than this are served sequentially even
  // when sim_threads > 1: dispatching the pool costs a few microseconds,
  // which only pays for itself on wide rounds.  0 or 1 forces every round
  // through the parallel engine (the tests do, to exercise it at small N).
  std::size_t par_round_min = 256;
};

// Accounting for the parallel round engine's two-phase commit, exposed for
// the "sim_commit" counter group and per-shard spans in wfsort-stats-v1
// (telemetry/schema.h).  All zeros when sim_threads == 1.
struct CommitStats {
  std::uint64_t par_rounds = 0;  // rounds served by the sharded engine
  std::uint64_t seq_rounds = 0;  // rounds served sequentially (below threshold)
  std::uint32_t shards = 1;
  std::uint64_t collect_ns = 0;  // phase A: parallel request collection
  std::uint64_t group_ns = 0;    // phase B-pre: parallel per-owner cell grouping
  std::uint64_t arb_ns = 0;      // commit 1: sequential arbitration pre-draw
  std::uint64_t serve_ns = 0;    // phase B: parallel serve + resume
  std::uint64_t merge_ns = 0;    // commit 2: trace flush + shard merge
  std::vector<std::uint64_t> shard_busy_ns;  // per-shard work time, all phases
};

struct RunResult {
  std::uint64_t rounds = 0;        // rounds executed by this run() call
  bool all_finished = false;       // every live processor's program returned
  bool predicate_hit = false;      // the caller's stop predicate fired
  bool hit_round_cap = false;      // stopped by MachineOptions::max_rounds
};

class Machine {
 public:
  explicit Machine(MachineOptions opts = {});
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  Memory& mem() { return mem_; }
  const Memory& mem() const { return mem_; }
  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }

  // Create a processor running the given program.  May be called between
  // run() calls (thread spawning in the paper's OS scenario).
  ProcId spawn(ProgramFactory factory);
  std::size_t procs() const { return procs_.size(); }

  // Failure injection.
  void kill(ProcId p);
  void suspend(ProcId p);
  void awaken(ProcId p);
  bool killed(ProcId p) const;
  bool finished(ProcId p) const;

  // Count of processors that are alive (not killed), regardless of progress.
  std::size_t live_procs() const;

  // Invoked at the start of every round; experiments use it to kill/suspend/
  // spawn at chosen times.  set_round_hook replaces all installed hooks
  // (pass nullptr to clear); add_round_hook appends, letting independent
  // concerns — a fault script and an invariant oracle, say — compose without
  // hand-chaining closures.  Hooks run in installation order.
  using RoundHook = std::function<void(Machine&, std::uint64_t round)>;
  void set_round_hook(RoundHook hook) {
    round_hooks_.clear();
    if (hook) round_hooks_.push_back(std::move(hook));
  }
  void add_round_hook(RoundHook hook) {
    WFSORT_CHECK(hook);
    round_hooks_.push_back(std::move(hook));
  }

  // Observe every served memory operation (nullptr disables tracing).  The
  // tracer must outlive the run.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  using StopPredicate = std::function<bool(const Machine&)>;

  // Run rounds under `sched` until every eligible processor has finished,
  // `stop` fires, or the round cap is reached.  Resumable: a later run()
  // continues where the previous one left off.
  RunResult run(Scheduler& sched, const StopPredicate& stop = nullptr);

  // Convenience: run under the faultless synchronous schedule.
  RunResult run_synchronous(const StopPredicate& stop = nullptr);

  std::uint64_t current_round() const { return round_; }

  // Parallel-commit accounting (see CommitStats); zeros for 1-thread runs.
  const CommitStats& commit_stats() const { return commit_stats_; }

 private:
  struct Proc {
    Ctx ctx;
    Task task;
    bool started = false;
    bool killed = false;
    bool suspended = false;
    bool done_counted = false;  // already subtracted from unfinished_live_
    ProgramFactory factory;     // kept alive for the coroutine's lifetime; cold

    Proc(ProcId pid, wfsort::Rng rng) : ctx(pid, rng) {}
  };

  // Start-or-resume p's coroutine: runs local computation to the next memory
  // request or to completion.
  void advance(Proc& p);
  bool eligible(const Proc& p) const;
  void serve_round(const std::vector<ProcId>& stepping);
  // Bookkeeping for one served operation: per-proc op count, trace event,
  // request consumption, then resume the processor's coroutine.  `p` is
  // procs_[pid], which every caller already has at hand.
  void finish_op(ProcId pid, Proc& p);

  // ---- Parallel round engine (see the member-block comment below) ----
  struct ReqEntry {
    Addr addr;
    ProcId pid;
    std::uint32_t si;  // index in the round's stepping list
  };
  struct TouchedCell {
    Addr addr;
    std::uint32_t first_si;  // stepping index of the cell's first requester
    std::uint32_t rank;      // position in the merged global first-touch order
    std::uint32_t op_base;   // global serve index of the cell's first served op
    std::uint32_t arb;       // kCrcw: offset into arb_pool_; kStall: winner index
  };
  struct ShardScratch {
    std::vector<std::vector<ReqEntry>> to_owner;  // phase A: one bucket per owner
    std::vector<TouchedCell> touched;  // owned cells, ascending first_si
    std::vector<ProcId> yielders;      // collected from this shard's stepping slice
    std::uint32_t yield_base = 0;      // global serve index of the first one
    Metrics::Shard metrics;
    std::uint64_t eligible_off = 0;  // procs flipped eligible 1 -> 0 this round
    std::uint64_t finished = 0;      // programs that returned this round
    std::exception_ptr exn;          // canonically-first program exception...
    std::uint32_t exn_key = 0;       // ...and its global serve index
  };
  void serve_round_parallel(const std::vector<ProcId>& stepping);
  // finish_op / advance with the shared bookkeeping routed through shard
  // deltas; op_idx is the operation's index in the round's canonical serve
  // order (trace slot and exception tie-break key).
  void finish_op_parallel(ProcId pid, Proc& p, ShardScratch& sh, std::uint32_t op_idx);
  void advance_parallel(Proc& p, ShardScratch& sh, std::uint32_t op_idx);
  // Shard that serves cell `a`: 64-cell blocks striped over the shards, so
  // one shard owns each CellSlot/Word cache line exclusively while hot
  // regions still spread across all shards.
  unsigned owner_of(Addr a) const {
    return stripe_owner_[(a >> 6) & (kOwnerStripes - 1)];
  }
  // Flip p's bit in the incrementally-maintained eligibility mask and keep
  // the companion pid list in sync (lazily: turning a processor OFF leaves a
  // tombstone that iteration skips; turning one ON — rare after start-up —
  // just marks the list for an O(P) rebuild before the next round).
  void set_eligible(ProcId p, bool el) {
    if (eligible_scratch_[p] != static_cast<std::uint8_t>(el)) {
      eligible_scratch_[p] = el ? 1 : 0;
      if (el) {
        ++eligible_count_;
        eligible_list_dirty_ = true;
      } else {
        --eligible_count_;
        ++eligible_dead_;
      }
    }
  }
  // Rebuild or compact eligible_list_ so a round's stepping scan touches
  // O(eligible) entries instead of every processor ever spawned.
  void refresh_eligible_list();

  static constexpr ProcId kNoProc = static_cast<ProcId>(-1);

  MachineOptions opts_;
  Memory mem_;
  Metrics metrics_;
  wfsort::Rng arb_rng_;  // arbitration randomness
  // Deque: contiguous chunks give the per-round pid-order scans spatial
  // locality, and elements never move, which Ctx address-stability requires.
  std::deque<Proc> procs_;
  std::vector<RoundHook> round_hooks_;
  Tracer* tracer_ = nullptr;
  std::uint64_t round_ = 0;

  // ---- Flat-array round engine state ----
  //
  // All round scratch is member-owned and reused, so serve_round performs
  // zero heap allocations after warm-up (the only resizes track memory or
  // processor growth, which happens between rounds).  Grouping accesses by
  // cell uses an epoch-stamped dense index instead of a hash map: a cell's
  // chain is valid iff cell_stamp_[a] == cell_epoch_, so nothing is cleared
  // between rounds, and the per-cell request lists are intrusive chains
  // threaded through next_in_cell_ (each processor has at most one pending
  // request, so one ProcId link per processor suffices).  Cells are served
  // in first-touch order — the order the stepping list first names them —
  // which fixes the arbitration-RNG consumption order and the trace-event
  // order independently of any container's iteration order.
  //
  // The eligibility mask and the two run-loop counters are maintained
  // incrementally at every processor state transition (spawn, start, kill,
  // suspend, awaken, task completion) instead of being recomputed by an
  // O(P) pointer-chasing scan each round.
  std::vector<std::uint8_t> eligible_scratch_;
  std::size_t eligible_count_ = 0;    // # of set bits in eligible_scratch_
  std::size_t unfinished_live_ = 0;   // # of procs with !killed && !done
  // Ascending-pid list of eligible processors, maintained lazily (see
  // set_eligible).  Lets sparse rounds — a few stragglers out of thousands
  // of finished processors — skip the O(P) mask scan.
  std::vector<ProcId> eligible_list_;
  std::size_t eligible_dead_ = 0;     // tombstones in eligible_list_
  bool eligible_list_dirty_ = true;   // full rebuild needed
  std::vector<std::uint8_t> stepping_scratch_;
  std::vector<ProcId> stepping_list_;
  // Stamp, chain head, and chain tail for one cell share a 16-byte slot so
  // grouping a request touches one cache line, not three parallel arrays.
  struct CellSlot {
    std::uint64_t stamp = 0;  // epoch of the slot's last access
    ProcId head = kNoProc;    // first requester this round
    ProcId tail = kNoProc;    // last requester this round
  };
  std::uint64_t cell_epoch_ = 0;      // bumped once per served round
  std::vector<CellSlot> cell_slots_;  // one per memory cell
  std::vector<ProcId> next_in_cell_;  // per proc: next requester of same cell
  std::vector<Addr> touched_cells_;        // cells accessed this round, first-touch order
  std::vector<ProcId> group_scratch_;      // current cell's requesters, arbitration order
  std::vector<ProcId> yielders_;
  // Procs below this index are all started or killed, so run()'s start scan
  // skips them; procs_ is append-only and kill is permanent, making the
  // index monotone.
  std::size_t unstarted_head_ = 0;

  // ---- Parallel round engine state (sim_threads > 1) ----
  //
  // serve_round_parallel serves the same round in five steps with the same
  // observables as serve_round:
  //
  //   phase A   (parallel by stepping slice)  each shard scans a contiguous
  //             slice of the stepping list, scattering requests into
  //             per-owner buckets and collecting yielders;
  //   phase B-  (parallel by cell owner)      each owner drains the buckets
  //   pre       addressed to it in slice order — which is global stepping
  //             order — building the same epoch-stamped intrusive chains as
  //             the sequential engine, but only for cells it owns;
  //   commit 1  (sequential)                  a T-way merge of the owners'
  //             touched lists by first-touch index walks the cells in the
  //             canonical global order, consuming the arbitration RNG
  //             exactly as the sequential engine would (multi-requester
  //             cells only) and assigning each cell its rank, its trace
  //             slots, and its pre-drawn arbitration;
  //   phase B   (parallel by cell owner)      owners serve their cells with
  //             the pre-drawn arbitration and resume the served processors
  //             (resumes only touch per-processor state, never shared
  //             memory, so cross-cell order is free), then serve their
  //             collected yielders;
  //   commit 2  (sequential)                  the trace buffer is flushed in
  //             canonical order, metrics shards merge, eligibility counters
  //             apply, and the canonically-first program exception (if any)
  //             rethrows.
  static constexpr unsigned kOwnerStripes = 256;
  std::vector<std::uint8_t> stripe_owner_;   // 64-cell stripe -> owning shard
  std::unique_ptr<detail::RoundPool> pool_;  // lazily created on first run()
  std::vector<ShardScratch> shards_;
  std::vector<std::uint32_t> cell_count_;  // per cell: requesters this round
  std::vector<ProcId> arb_pool_;     // pre-shuffled kCrcw groups, back to back
  std::vector<TraceEvent> trace_buf_;  // canonical-order slots (tracing only)
  std::vector<std::size_t> merge_cursor_;  // commit 1 scratch
  CommitStats commit_stats_;
};

}  // namespace pram
