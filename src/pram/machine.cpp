#include "pram/machine.h"

#include <algorithm>

#include "common/check.h"

namespace pram {

Machine::Machine(MachineOptions opts) : opts_(opts), arb_rng_(opts.seed ^ 0xa5b5c5d5e5f50505ULL) {}

Machine::~Machine() = default;

ProcId Machine::spawn(ProgramFactory factory) {
  const ProcId pid = static_cast<ProcId>(procs_.size());
  wfsort::Rng base(opts_.seed);
  Proc& proc = procs_.emplace_back(pid, base.fork(pid));
  proc.factory = std::move(factory);
  eligible_scratch_.push_back(0);  // not eligible until started
  ++unfinished_live_;
  metrics_.ensure_procs(procs_.size());
  return pid;
}

void Machine::kill(ProcId p) {
  WFSORT_CHECK(p < procs_.size());
  Proc& proc = procs_[p];
  if (!proc.killed) {
    proc.killed = true;
    if (!proc.done_counted) --unfinished_live_;
    set_eligible(p, false);
  }
}

void Machine::suspend(ProcId p) {
  WFSORT_CHECK(p < procs_.size());
  Proc& proc = procs_[p];
  proc.suspended = true;
  set_eligible(p, false);
}

void Machine::awaken(ProcId p) {
  WFSORT_CHECK(p < procs_.size());
  Proc& proc = procs_[p];
  proc.suspended = false;
  set_eligible(p, eligible(proc));
}

bool Machine::killed(ProcId p) const {
  WFSORT_CHECK(p < procs_.size());
  return procs_[p].killed;
}

bool Machine::finished(ProcId p) const {
  WFSORT_CHECK(p < procs_.size());
  const Proc& proc = procs_[p];
  return proc.started && proc.task.valid() && proc.task.done();
}

std::size_t Machine::live_procs() const {
  std::size_t n = 0;
  for (const Proc& p : procs_) {
    if (!p.killed) ++n;
  }
  return n;
}

void Machine::advance(Proc& p) {
  // Resume the innermost active coroutine (the root program, or the deepest
  // SubTask subroutine it is currently inside).  Completion is read from the
  // Ctx flag the root's final suspend raises — same cache line as the
  // request just served — rather than from the cold root frame.
  p.ctx.current().resume();
  const bool done = p.ctx.finished_;
  if (done && !p.done_counted) {
    p.done_counted = true;
    if (!p.killed) --unfinished_live_;
    metrics_.record_proc_finish(p.ctx.pid());
  }
  // The counters above are settled before any rethrow so an escaping
  // program exception leaves the run-loop bookkeeping consistent.
  set_eligible(p.ctx.pid(), !done && p.started && !p.killed && !p.suspended);
  if (done) p.task.rethrow_if_failed();
}

bool Machine::eligible(const Proc& p) const {
  return p.started && !p.killed && !p.suspended && !p.task.done();
}

RunResult Machine::run(Scheduler& sched, const StopPredicate& stop) {
  RunResult res;
  while (true) {
    for (const RoundHook& hook : round_hooks_) hook(*this, round_);

    // Start newly-spawned processors; local computation up to the first
    // shared-memory operation is free in the PRAM cost model.  procs_ is
    // append-only, so everything below unstarted_head_ stays skippable and
    // this scan is O(1) once the initial spawns have started.
    while (unstarted_head_ < procs_.size() &&
           (procs_[unstarted_head_].started || procs_[unstarted_head_].killed)) {
      ++unstarted_head_;
    }
    for (std::size_t i = unstarted_head_; i < procs_.size(); ++i) {
      Proc& p = procs_[i];
      if (!p.started && !p.killed) {
        p.task = p.factory(p.ctx);
        WFSORT_CHECK(p.task.valid());
        p.ctx.set_current(p.task.handle());
        p.task.set_done_flag(&p.ctx.finished_);
        p.started = true;
        advance(p);
      }
    }

    // Termination flags and the eligibility mask are maintained
    // incrementally at processor state transitions, so each round checks
    // two counters instead of rescanning every processor.
    if (unfinished_live_ == 0) {
      res.all_finished = true;
      break;
    }
    if (stop && stop(*this)) {
      res.predicate_hit = true;
      break;
    }
    if (res.rounds >= opts_.max_rounds) {
      res.hit_round_cap = true;
      break;
    }
    if (eligible_count_ == 0 && round_hooks_.empty()) {
      // Every unfinished processor is suspended and nothing can wake one up.
      break;
    }

    // The stepping mask needs an all-zero start for the scheduler.  The
    // assign lowers to a vectorized memset, so unlike the scalar
    // mask-crossing scan it replaces, it is cheap even when only a few
    // stragglers out of thousands of processors are still running.
    stepping_scratch_.assign(procs_.size(), 0);
    sched.select(round_, eligible_scratch_, stepping_scratch_);

    refresh_eligible_list();
    stepping_list_.clear();
    for (ProcId p : eligible_list_) {
      // Both masks: tombstoned entries have eligible 0, and a scheduler may
      // legitimately leave an eligible processor unselected.
      if (stepping_scratch_[p] && eligible_scratch_[p]) {
        stepping_list_.push_back(p);
      }
    }

    metrics_.begin_round(mem_);
    serve_round(stepping_list_);
    metrics_.end_round();

    ++round_;
    ++res.rounds;
  }
  return res;
}

RunResult Machine::run_synchronous(const StopPredicate& stop) {
  SynchronousScheduler sched;
  return run(sched, stop);
}

void Machine::refresh_eligible_list() {
  if (eligible_list_dirty_) {
    eligible_list_.clear();
    for (std::size_t p = 0; p < procs_.size(); ++p) {
      if (eligible_scratch_[p]) eligible_list_.push_back(static_cast<ProcId>(p));
    }
    eligible_dead_ = 0;
    eligible_list_dirty_ = false;
    return;
  }
  // Amortized compaction: drop tombstones once they outnumber live entries.
  // Filtering by the mask preserves ascending pid order, which the stepping
  // order (and hence the trace order) depends on.
  if (eligible_dead_ > eligible_list_.size() / 2) {
    std::erase_if(eligible_list_, [this](ProcId p) { return !eligible_scratch_[p]; });
    eligible_dead_ = 0;
  }
}

void Machine::finish_op(ProcId pid, Proc& p) {
  metrics_.record_proc_op(pid);
  MemRequest& req = p.ctx.pending_;
  if (tracer_ != nullptr) {
    tracer_->on_event(TraceEvent{round_, pid, req.kind, req.addr, req.arg0, req.arg1,
                                 req.result});
  }
  req.kind = OpKind::kNone;
  advance(p);
}

void Machine::serve_round(const std::vector<ProcId>& stepping) {
  // Flat-array round engine; see the member-block comment in machine.h.
  // Cold growth: these track memory/processor growth only, so after the
  // first round at a given size the loop below allocates nothing.
  if (cell_slots_.size() < mem_.size()) cell_slots_.resize(mem_.size());
  if (next_in_cell_.size() < procs_.size()) next_in_cell_.resize(procs_.size(), kNoProc);

  // Group memory accesses by cell; yields are served unconditionally.  Cells
  // are processed in first-touch order (the order in which the scheduler's
  // stepping list first names each cell), which pins the arbitration-RNG
  // consumption order and the trace-event order to something well-defined
  // and engine-independent.
  ++cell_epoch_;
  touched_cells_.clear();
  yielders_.clear();
  const std::size_t nstep = stepping.size();
  for (std::size_t si = 0; si < nstep; ++si) {
    // Two-stage lookahead: the +8 entry's Ctx is staged first; by +4 it has
    // arrived, so the cell slot its request names can be staged from it.
    if (si + 8 < nstep) __builtin_prefetch(&procs_[stepping[si + 8]].ctx);
    if (si + 4 < nstep) {
      const MemRequest& r4 = procs_[stepping[si + 4]].ctx.pending_;
      if (r4.addr < cell_slots_.size()) __builtin_prefetch(cell_slots_.data() + r4.addr);
    }
    const ProcId pid = stepping[si];
    MemRequest& req = procs_[pid].ctx.pending_;
    WFSORT_CHECK(req.kind != OpKind::kNone);
    if (req.kind == OpKind::kYield) {
      yielders_.push_back(pid);
      continue;
    }
    const Addr addr = req.addr;
    WFSORT_CHECK(addr < mem_.size());
    next_in_cell_[pid] = kNoProc;
    CellSlot& slot = cell_slots_[addr];
    if (slot.stamp != cell_epoch_) {
      slot.stamp = cell_epoch_;
      slot.head = pid;
      touched_cells_.push_back(addr);
    } else {
      next_in_cell_[slot.tail] = pid;
    }
    slot.tail = pid;
  }

  // Serving and resuming are fused: a processor's coroutine is resumed as
  // soon as its own operation has its result.  This is safe because programs
  // touch shared state only through requests — the local computation a
  // resume runs cannot observe memory, so deferring a cell's store or
  // another cell's load past a resume changes nothing.  The resulting
  // trace/advance order (cells in first-touch order, arbitration order
  // within a cell, yielders last) matches the unfused engine's exactly.
  const std::size_t ncells = touched_cells_.size();
  for (std::size_t ci = 0; ci < ncells; ++ci) {
    // The working set (one Ctx plus one innermost coroutine frame per
    // processor) outgrows L2 for large crews and the frames are scattered,
    // so the hardware prefetcher cannot follow the access pattern.  Pull the
    // upcoming head's Ctx in early, and — one step later, once that Ctx has
    // arrived — the coroutine frame it points at.
    if (ci + 16 < ncells) {
      // The +16 slot itself may be cold; stage it (and its memory cell) so
      // the closer lookaheads can read .head without a demand miss.
      const Addr far = touched_cells_[ci + 16];
      __builtin_prefetch(cell_slots_.data() + far);
      mem_.prefetch(far);
    }
    if (ci + 8 < ncells) {
      __builtin_prefetch(&procs_[cell_slots_[touched_cells_[ci + 8]].head].ctx);
    }
    if (ci + 4 < ncells) {
      __builtin_prefetch(procs_[cell_slots_[touched_cells_[ci + 4]].head].ctx.current().address());
    }
    const Addr addr = touched_cells_[ci];
    const ProcId head = cell_slots_[addr].head;
    const Word pre = mem_.load(addr);

    if (next_in_cell_[head] == kNoProc) {
      // Fast path: exactly one requester.  A 1-element arbitration shuffle
      // draws nothing from the RNG, so skipping it keeps the RNG stream (and
      // hence every downstream arbitration) identical.
      metrics_.record_cell(addr, 1, mem_.region_id_of(addr));
      Proc& hp = procs_[head];
      MemRequest& req = hp.ctx.pending_;
      switch (req.kind) {
        case OpKind::kRead:
          req.result = pre;
          break;
        case OpKind::kWrite:
          req.result = pre;
          mem_.store(addr, req.arg0);
          break;
        case OpKind::kCas:
          req.result = pre;
          if (pre == req.arg0) mem_.store(addr, req.arg1);
          break;
        case OpKind::kFaa:
          req.result = pre;
          mem_.store(addr, pre + req.arg0);
          break;
        default:
          WFSORT_CHECK(false);
      }
      finish_op(head, hp);
      continue;
    }

    // Materialize the cell's intrusive chain (stepping order) into the
    // contiguous scratch the arbitration shuffle needs.
    std::vector<ProcId>& group = group_scratch_;
    group.clear();
    for (ProcId p = head; p != kNoProc; p = next_in_cell_[p]) group.push_back(p);
    // The serialize loop below revisits every member's request in shuffled
    // order; the loop's own prefetches cover the body, this one covers the
    // first members before the pattern is established.
    __builtin_prefetch(&procs_[group[0]].ctx);
    metrics_.record_cell(addr, static_cast<std::uint32_t>(group.size()),
                         mem_.region_id_of(addr));

    if (opts_.memory_model == MemoryModel::kStall) {
      // One access per cell per round; the rest stall and retry next round.
      const std::size_t winner_index = static_cast<std::size_t>(arb_rng_.below(group.size()));
      const ProcId winner = group[winner_index];
      metrics_.record_stall(group.size() - 1);
      Proc& wp = procs_[winner];
      MemRequest& req = wp.ctx.pending_;
      switch (req.kind) {
        case OpKind::kRead:
          req.result = pre;
          break;
        case OpKind::kWrite:
          req.result = pre;
          mem_.store(addr, req.arg0);
          break;
        case OpKind::kCas:
          req.result = pre;
          if (pre == req.arg0) mem_.store(addr, req.arg1);
          break;
        case OpKind::kFaa:
          req.result = pre;
          mem_.store(addr, pre + req.arg0);
          break;
        default:
          WFSORT_CHECK(false);
      }
      finish_op(winner, wp);
      continue;
    }

    // CRCW: reads all observe the cell's value at the start of the round;
    // read-modify-writes serialize in a random arbitration order within the
    // round, so exactly one of several colliding CAS(EMPTY -> x) succeeds.
    arb_rng_.shuffle(std::span<ProcId>(group));
    Word cur = pre;
    const std::size_t gsize = group.size();
    for (std::size_t gi = 0; gi < gsize; ++gi) {
      // The shuffle randomizes the processor order, so these accesses have
      // no locality the hardware can predict; stage the upcoming Ctx and,
      // one step later, its innermost coroutine frame.
      if (gi + 4 < gsize) __builtin_prefetch(&procs_[group[gi + 4]].ctx);
      if (gi + 2 < gsize) {
        __builtin_prefetch(procs_[group[gi + 2]].ctx.current().address());
      }
      const ProcId pid = group[gi];
      Proc& gp = procs_[pid];
      MemRequest& req = gp.ctx.pending_;
      switch (req.kind) {
        case OpKind::kRead:
          req.result = pre;
          break;
        case OpKind::kWrite:
          req.result = cur;
          cur = req.arg0;
          break;
        case OpKind::kCas:
          req.result = cur;
          if (cur == req.arg0) cur = req.arg1;
          break;
        case OpKind::kFaa:
          req.result = cur;
          cur += req.arg0;
          break;
        default:
          WFSORT_CHECK(false);
      }
      finish_op(pid, gp);
    }
    if (cur != pre) mem_.store(addr, cur);
  }

  for (ProcId pid : yielders_) {
    Proc& yp = procs_[pid];
    yp.ctx.pending_.result = 0;
    finish_op(pid, yp);
  }
}

}  // namespace pram
