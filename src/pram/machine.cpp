#include "pram/machine.h"

#include <algorithm>

#include "common/check.h"

namespace pram {

Machine::Machine(MachineOptions opts) : opts_(opts), arb_rng_(opts.seed ^ 0xa5b5c5d5e5f50505ULL) {}

Machine::~Machine() = default;

ProcId Machine::spawn(ProgramFactory factory) {
  const ProcId pid = static_cast<ProcId>(procs_.size());
  wfsort::Rng base(opts_.seed);
  auto proc = std::make_unique<Proc>(pid, base.fork(pid));
  proc->factory = std::move(factory);
  procs_.push_back(std::move(proc));
  return pid;
}

void Machine::kill(ProcId p) {
  WFSORT_CHECK(p < procs_.size());
  procs_[p]->killed = true;
}

void Machine::suspend(ProcId p) {
  WFSORT_CHECK(p < procs_.size());
  procs_[p]->suspended = true;
}

void Machine::awaken(ProcId p) {
  WFSORT_CHECK(p < procs_.size());
  procs_[p]->suspended = false;
}

bool Machine::killed(ProcId p) const {
  WFSORT_CHECK(p < procs_.size());
  return procs_[p]->killed;
}

bool Machine::finished(ProcId p) const {
  WFSORT_CHECK(p < procs_.size());
  const Proc& proc = *procs_[p];
  return proc.started && proc.task.valid() && proc.task.done();
}

std::size_t Machine::live_procs() const {
  std::size_t n = 0;
  for (const auto& p : procs_) {
    if (!p->killed) ++n;
  }
  return n;
}

void Machine::advance(Proc& p) {
  // Resume the innermost active coroutine (the root program, or the deepest
  // SubTask subroutine it is currently inside).
  p.ctx.current().resume();
  if (p.task.done()) p.task.rethrow_if_failed();
}

bool Machine::eligible(const Proc& p) const {
  return p.started && !p.killed && !p.suspended && !p.task.done();
}

RunResult Machine::run(Scheduler& sched, const StopPredicate& stop) {
  RunResult res;
  while (true) {
    if (round_hook_) round_hook_(*this, round_);

    // Start newly-spawned processors; local computation up to the first
    // shared-memory operation is free in the PRAM cost model.
    for (auto& p : procs_) {
      if (!p->started && !p->killed) {
        p->task = p->factory(p->ctx);
        WFSORT_CHECK(p->task.valid());
        p->ctx.set_current(p->task.handle());
        p->started = true;
        advance(*p);
      }
    }

    bool all_done = true;
    bool any_eligible = false;
    for (const auto& p : procs_) {
      if (!p->killed && !(p->started && p->task.done())) all_done = false;
      if (eligible(*p)) any_eligible = true;
    }
    if (all_done) {
      res.all_finished = true;
      break;
    }
    if (stop && stop(*this)) {
      res.predicate_hit = true;
      break;
    }
    if (res.rounds >= opts_.max_rounds) {
      res.hit_round_cap = true;
      break;
    }
    if (!any_eligible && !round_hook_) {
      // Every unfinished processor is suspended and nothing can wake one up.
      break;
    }

    eligible_scratch_.assign(procs_.size(), false);
    stepping_scratch_.assign(procs_.size(), false);
    for (std::size_t p = 0; p < procs_.size(); ++p) eligible_scratch_[p] = eligible(*procs_[p]);
    sched.select(round_, eligible_scratch_, stepping_scratch_);

    stepping_list_.clear();
    for (std::size_t p = 0; p < procs_.size(); ++p) {
      if (stepping_scratch_[p] && eligible_scratch_[p]) {
        stepping_list_.push_back(static_cast<ProcId>(p));
      }
    }

    metrics_.begin_round();
    serve_round(stepping_list_);
    metrics_.end_round(mem_);

    ++round_;
    ++res.rounds;
  }
  return res;
}

RunResult Machine::run_synchronous(const StopPredicate& stop) {
  SynchronousScheduler sched;
  return run(sched, stop);
}

void Machine::serve_round(const std::vector<ProcId>& stepping) {
  // Group memory accesses by cell; yields are served unconditionally.
  by_cell_.clear();
  std::vector<ProcId> yielders;
  for (ProcId pid : stepping) {
    MemRequest& req = procs_[pid]->ctx.pending_;
    WFSORT_CHECK(req.kind != OpKind::kNone);
    if (req.kind == OpKind::kYield) {
      yielders.push_back(pid);
    } else {
      by_cell_[req.addr].push_back(pid);
      metrics_.record_access(req.addr);
    }
  }

  std::vector<ProcId> served;
  served.reserve(stepping.size());

  for (auto& [addr, group] : by_cell_) {
    const Word pre = mem_.load(addr);

    if (opts_.memory_model == MemoryModel::kStall && group.size() > 1) {
      // One access per cell per round; the rest stall and retry next round.
      const std::size_t winner_index = static_cast<std::size_t>(arb_rng_.below(group.size()));
      const ProcId winner = group[winner_index];
      metrics_.record_stall(group.size() - 1);
      MemRequest& req = procs_[winner]->ctx.pending_;
      Word cur = pre;
      switch (req.kind) {
        case OpKind::kRead:
          req.result = cur;
          break;
        case OpKind::kWrite:
          req.result = cur;
          mem_.store(addr, req.arg0);
          break;
        case OpKind::kCas:
          req.result = cur;
          if (cur == req.arg0) mem_.store(addr, req.arg1);
          break;
        case OpKind::kFaa:
          req.result = cur;
          mem_.store(addr, cur + req.arg0);
          break;
        default:
          WFSORT_CHECK(false);
      }
      served.push_back(winner);
      continue;
    }

    // CRCW: reads all observe the cell's value at the start of the round;
    // read-modify-writes serialize in a random arbitration order within the
    // round, so exactly one of several colliding CAS(EMPTY -> x) succeeds.
    arb_rng_.shuffle(std::span<ProcId>(group));
    Word cur = pre;
    for (ProcId pid : group) {
      MemRequest& req = procs_[pid]->ctx.pending_;
      switch (req.kind) {
        case OpKind::kRead:
          req.result = pre;
          break;
        case OpKind::kWrite:
          req.result = cur;
          cur = req.arg0;
          break;
        case OpKind::kCas:
          req.result = cur;
          if (cur == req.arg0) cur = req.arg1;
          break;
        case OpKind::kFaa:
          req.result = cur;
          cur += req.arg0;
          break;
        default:
          WFSORT_CHECK(false);
      }
      served.push_back(pid);
    }
    if (cur != pre) mem_.store(addr, cur);
  }

  for (ProcId pid : yielders) {
    procs_[pid]->ctx.pending_.result = 0;
    served.push_back(pid);
  }

  for (ProcId pid : served) {
    metrics_.record_proc_op(pid);
    MemRequest& req = procs_[pid]->ctx.pending_;
    if (tracer_ != nullptr) {
      tracer_->on_event(TraceEvent{round_, pid, req.kind, req.addr, req.arg0, req.arg1,
                                   req.result});
    }
    req.kind = OpKind::kNone;
    advance(*procs_[pid]);
  }
}

}  // namespace pram
