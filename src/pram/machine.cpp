#include "pram/machine.h"

#include <algorithm>
#include <chrono>
#include <span>

#include "common/check.h"
#include "pram/round_pool.h"

namespace pram {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Machine::Machine(MachineOptions opts) : opts_(opts), arb_rng_(opts.seed ^ 0xa5b5c5d5e5f50505ULL) {}

Machine::~Machine() = default;

ProcId Machine::spawn(ProgramFactory factory) {
  const ProcId pid = static_cast<ProcId>(procs_.size());
  wfsort::Rng base(opts_.seed);
  Proc& proc = procs_.emplace_back(pid, base.fork(pid));
  proc.factory = std::move(factory);
  eligible_scratch_.push_back(0);  // not eligible until started
  ++unfinished_live_;
  metrics_.ensure_procs(procs_.size());
  return pid;
}

void Machine::kill(ProcId p) {
  WFSORT_CHECK(p < procs_.size());
  Proc& proc = procs_[p];
  if (!proc.killed) {
    proc.killed = true;
    if (!proc.done_counted) --unfinished_live_;
    set_eligible(p, false);
    if (tracer_ != nullptr) tracer_->on_fault(round_, p, TraceFault::kKill);
  }
}

void Machine::suspend(ProcId p) {
  WFSORT_CHECK(p < procs_.size());
  Proc& proc = procs_[p];
  proc.suspended = true;
  set_eligible(p, false);
  if (tracer_ != nullptr) tracer_->on_fault(round_, p, TraceFault::kSuspend);
}

void Machine::awaken(ProcId p) {
  WFSORT_CHECK(p < procs_.size());
  Proc& proc = procs_[p];
  proc.suspended = false;
  set_eligible(p, eligible(proc));
  if (tracer_ != nullptr) tracer_->on_fault(round_, p, TraceFault::kRevive);
}

bool Machine::killed(ProcId p) const {
  WFSORT_CHECK(p < procs_.size());
  return procs_[p].killed;
}

bool Machine::finished(ProcId p) const {
  WFSORT_CHECK(p < procs_.size());
  const Proc& proc = procs_[p];
  return proc.started && proc.task.valid() && proc.task.done();
}

std::size_t Machine::live_procs() const {
  std::size_t n = 0;
  for (const Proc& p : procs_) {
    if (!p.killed) ++n;
  }
  return n;
}

void Machine::advance(Proc& p) {
  // Resume the innermost active coroutine (the root program, or the deepest
  // SubTask subroutine it is currently inside).  Completion is read from the
  // Ctx flag the root's final suspend raises — same cache line as the
  // request just served — rather than from the cold root frame.
  p.ctx.current().resume();
  const bool done = p.ctx.finished_;
  if (done && !p.done_counted) {
    p.done_counted = true;
    if (!p.killed) --unfinished_live_;
    metrics_.record_proc_finish(p.ctx.pid());
  }
  // The counters above are settled before any rethrow so an escaping
  // program exception leaves the run-loop bookkeeping consistent.
  set_eligible(p.ctx.pid(), !done && p.started && !p.killed && !p.suspended);
  if (done) p.task.rethrow_if_failed();
}

bool Machine::eligible(const Proc& p) const {
  return p.started && !p.killed && !p.suspended && !p.task.done();
}

RunResult Machine::run(Scheduler& sched, const StopPredicate& stop) {
  // Lazily bring up the shard pool on the first run() of a multi-threaded
  // machine.  Striping is round-robin over 64-cell blocks so each shard owns
  // its CellSlot / Word / cell_count_ cache lines exclusively (64 cells cover
  // a whole line of each) while hot regions still spread across all shards.
  if (opts_.sim_threads > 1 && pool_ == nullptr) {
    const unsigned shards = static_cast<unsigned>(
        std::min<std::uint32_t>(opts_.sim_threads, kOwnerStripes));
    pool_ = std::make_unique<detail::RoundPool>(shards);
    stripe_owner_.resize(kOwnerStripes);
    for (unsigned s = 0; s < kOwnerStripes; ++s) {
      stripe_owner_[s] = static_cast<std::uint8_t>(s % shards);
    }
    commit_stats_.shards = shards;
    commit_stats_.shard_busy_ns.assign(shards, 0);
  }
  RunResult res;
  while (true) {
    for (const RoundHook& hook : round_hooks_) hook(*this, round_);

    // Start newly-spawned processors; local computation up to the first
    // shared-memory operation is free in the PRAM cost model.  procs_ is
    // append-only, so everything below unstarted_head_ stays skippable and
    // this scan is O(1) once the initial spawns have started.
    while (unstarted_head_ < procs_.size() &&
           (procs_[unstarted_head_].started || procs_[unstarted_head_].killed)) {
      ++unstarted_head_;
    }
    for (std::size_t i = unstarted_head_; i < procs_.size(); ++i) {
      Proc& p = procs_[i];
      if (!p.started && !p.killed) {
        p.task = p.factory(p.ctx);
        WFSORT_CHECK(p.task.valid());
        p.ctx.set_current(p.task.handle());
        p.task.set_done_flag(&p.ctx.finished_);
        p.started = true;
        advance(p);
      }
    }

    // Termination flags and the eligibility mask are maintained
    // incrementally at processor state transitions, so each round checks
    // two counters instead of rescanning every processor.
    if (unfinished_live_ == 0) {
      res.all_finished = true;
      break;
    }
    if (stop && stop(*this)) {
      res.predicate_hit = true;
      break;
    }
    if (res.rounds >= opts_.max_rounds) {
      res.hit_round_cap = true;
      break;
    }
    if (eligible_count_ == 0 && round_hooks_.empty()) {
      // Every unfinished processor is suspended and nothing can wake one up.
      break;
    }

    // The stepping mask needs an all-zero start for the scheduler.  The
    // assign lowers to a vectorized memset, so unlike the scalar
    // mask-crossing scan it replaces, it is cheap even when only a few
    // stragglers out of thousands of processors are still running.
    stepping_scratch_.assign(procs_.size(), 0);
    sched.select(round_, eligible_scratch_, stepping_scratch_);

    refresh_eligible_list();
    stepping_list_.clear();
    for (ProcId p : eligible_list_) {
      // Both masks: tombstoned entries have eligible 0, and a scheduler may
      // legitimately leave an eligible processor unselected.
      if (stepping_scratch_[p] && eligible_scratch_[p]) {
        stepping_list_.push_back(p);
      }
    }

    metrics_.begin_round(mem_);
    if (pool_ != nullptr && stepping_list_.size() >= opts_.par_round_min) {
      serve_round_parallel(stepping_list_);
      ++commit_stats_.par_rounds;
    } else {
      serve_round(stepping_list_);
      if (pool_ != nullptr) ++commit_stats_.seq_rounds;
    }
    metrics_.end_round();
    // Round-loop flight-recorder milestone (after the sequential trace
    // flush, so a recording tracer sees the round's ops before its marker).
    if (tracer_ != nullptr) {
      tracer_->on_round(round_, stepping_list_.size());
    }

    ++round_;
    ++res.rounds;
  }
  return res;
}

RunResult Machine::run_synchronous(const StopPredicate& stop) {
  SynchronousScheduler sched;
  return run(sched, stop);
}

void Machine::refresh_eligible_list() {
  if (eligible_list_dirty_) {
    eligible_list_.clear();
    for (std::size_t p = 0; p < procs_.size(); ++p) {
      if (eligible_scratch_[p]) eligible_list_.push_back(static_cast<ProcId>(p));
    }
    eligible_dead_ = 0;
    eligible_list_dirty_ = false;
    return;
  }
  // Amortized compaction: drop tombstones once they outnumber live entries.
  // Filtering by the mask preserves ascending pid order, which the stepping
  // order (and hence the trace order) depends on.
  if (eligible_dead_ > eligible_list_.size() / 2) {
    std::erase_if(eligible_list_, [this](ProcId p) { return !eligible_scratch_[p]; });
    eligible_dead_ = 0;
  }
}

void Machine::finish_op(ProcId pid, Proc& p) {
  metrics_.record_proc_op(pid);
  MemRequest& req = p.ctx.pending_;
  if (tracer_ != nullptr) {
    tracer_->on_event(TraceEvent{round_, pid, req.kind, req.addr, req.arg0, req.arg1,
                                 req.result});
  }
  req.kind = OpKind::kNone;
  advance(p);
}

void Machine::serve_round(const std::vector<ProcId>& stepping) {
  // Flat-array round engine; see the member-block comment in machine.h.
  // Cold growth: these track memory/processor growth only, so after the
  // first round at a given size the loop below allocates nothing.
  if (cell_slots_.size() < mem_.size()) cell_slots_.resize(mem_.size());
  if (next_in_cell_.size() < procs_.size()) next_in_cell_.resize(procs_.size(), kNoProc);

  // Group memory accesses by cell; yields are served unconditionally.  Cells
  // are processed in first-touch order (the order in which the scheduler's
  // stepping list first names each cell), which pins the arbitration-RNG
  // consumption order and the trace-event order to something well-defined
  // and engine-independent.
  ++cell_epoch_;
  touched_cells_.clear();
  yielders_.clear();
  const std::size_t nstep = stepping.size();
  for (std::size_t si = 0; si < nstep; ++si) {
    // Two-stage lookahead: the +8 entry's Ctx is staged first; by +4 it has
    // arrived, so the cell slot its request names can be staged from it.
    if (si + 8 < nstep) __builtin_prefetch(&procs_[stepping[si + 8]].ctx);
    if (si + 4 < nstep) {
      const MemRequest& r4 = procs_[stepping[si + 4]].ctx.pending_;
      if (r4.addr < cell_slots_.size()) __builtin_prefetch(cell_slots_.data() + r4.addr);
    }
    const ProcId pid = stepping[si];
    MemRequest& req = procs_[pid].ctx.pending_;
    WFSORT_CHECK(req.kind != OpKind::kNone);
    if (req.kind == OpKind::kYield) {
      yielders_.push_back(pid);
      continue;
    }
    const Addr addr = req.addr;
    WFSORT_CHECK(addr < mem_.size());
    next_in_cell_[pid] = kNoProc;
    CellSlot& slot = cell_slots_[addr];
    if (slot.stamp != cell_epoch_) {
      slot.stamp = cell_epoch_;
      slot.head = pid;
      touched_cells_.push_back(addr);
    } else {
      next_in_cell_[slot.tail] = pid;
    }
    slot.tail = pid;
  }

  // Serving and resuming are fused: a processor's coroutine is resumed as
  // soon as its own operation has its result.  This is safe because programs
  // touch shared state only through requests — the local computation a
  // resume runs cannot observe memory, so deferring a cell's store or
  // another cell's load past a resume changes nothing.  The resulting
  // trace/advance order (cells in first-touch order, arbitration order
  // within a cell, yielders last) matches the unfused engine's exactly.
  const std::size_t ncells = touched_cells_.size();
  for (std::size_t ci = 0; ci < ncells; ++ci) {
    // The working set (one Ctx plus one innermost coroutine frame per
    // processor) outgrows L2 for large crews and the frames are scattered,
    // so the hardware prefetcher cannot follow the access pattern.  Pull the
    // upcoming head's Ctx in early, and — one step later, once that Ctx has
    // arrived — the coroutine frame it points at.
    if (ci + 16 < ncells) {
      // The +16 slot itself may be cold; stage it (and its memory cell) so
      // the closer lookaheads can read .head without a demand miss.
      const Addr far = touched_cells_[ci + 16];
      __builtin_prefetch(cell_slots_.data() + far);
      mem_.prefetch(far);
    }
    if (ci + 8 < ncells) {
      __builtin_prefetch(&procs_[cell_slots_[touched_cells_[ci + 8]].head].ctx);
    }
    if (ci + 4 < ncells) {
      __builtin_prefetch(procs_[cell_slots_[touched_cells_[ci + 4]].head].ctx.current().address());
    }
    const Addr addr = touched_cells_[ci];
    const ProcId head = cell_slots_[addr].head;
    const Word pre = mem_.load(addr);

    if (next_in_cell_[head] == kNoProc) {
      // Fast path: exactly one requester.  A 1-element arbitration shuffle
      // draws nothing from the RNG, so skipping it keeps the RNG stream (and
      // hence every downstream arbitration) identical.
      metrics_.record_cell(addr, 1, mem_.region_id_of(addr));
      Proc& hp = procs_[head];
      MemRequest& req = hp.ctx.pending_;
      switch (req.kind) {
        case OpKind::kRead:
          req.result = pre;
          break;
        case OpKind::kWrite:
          req.result = pre;
          mem_.store(addr, req.arg0);
          break;
        case OpKind::kCas:
          req.result = pre;
          if (pre == req.arg0) mem_.store(addr, req.arg1);
          break;
        case OpKind::kFaa:
          req.result = pre;
          mem_.store(addr, pre + req.arg0);
          break;
        default:
          WFSORT_CHECK(false);
      }
      finish_op(head, hp);
      continue;
    }

    // Materialize the cell's intrusive chain (stepping order) into the
    // contiguous scratch the arbitration shuffle needs.
    std::vector<ProcId>& group = group_scratch_;
    group.clear();
    for (ProcId p = head; p != kNoProc; p = next_in_cell_[p]) group.push_back(p);
    // The serialize loop below revisits every member's request in shuffled
    // order; the loop's own prefetches cover the body, this one covers the
    // first members before the pattern is established.
    __builtin_prefetch(&procs_[group[0]].ctx);
    metrics_.record_cell(addr, static_cast<std::uint32_t>(group.size()),
                         mem_.region_id_of(addr));

    if (opts_.memory_model == MemoryModel::kStall) {
      // One access per cell per round; the rest stall and retry next round.
      const std::size_t winner_index = static_cast<std::size_t>(arb_rng_.below(group.size()));
      const ProcId winner = group[winner_index];
      metrics_.record_stall(group.size() - 1);
      Proc& wp = procs_[winner];
      MemRequest& req = wp.ctx.pending_;
      switch (req.kind) {
        case OpKind::kRead:
          req.result = pre;
          break;
        case OpKind::kWrite:
          req.result = pre;
          mem_.store(addr, req.arg0);
          break;
        case OpKind::kCas:
          req.result = pre;
          if (pre == req.arg0) mem_.store(addr, req.arg1);
          break;
        case OpKind::kFaa:
          req.result = pre;
          mem_.store(addr, pre + req.arg0);
          break;
        default:
          WFSORT_CHECK(false);
      }
      finish_op(winner, wp);
      continue;
    }

    // CRCW: reads all observe the cell's value at the start of the round;
    // read-modify-writes serialize in a random arbitration order within the
    // round, so exactly one of several colliding CAS(EMPTY -> x) succeeds.
    arb_rng_.shuffle(std::span<ProcId>(group));
    Word cur = pre;
    const std::size_t gsize = group.size();
    for (std::size_t gi = 0; gi < gsize; ++gi) {
      // The shuffle randomizes the processor order, so these accesses have
      // no locality the hardware can predict; stage the upcoming Ctx and,
      // one step later, its innermost coroutine frame.
      if (gi + 4 < gsize) __builtin_prefetch(&procs_[group[gi + 4]].ctx);
      if (gi + 2 < gsize) {
        __builtin_prefetch(procs_[group[gi + 2]].ctx.current().address());
      }
      const ProcId pid = group[gi];
      Proc& gp = procs_[pid];
      MemRequest& req = gp.ctx.pending_;
      switch (req.kind) {
        case OpKind::kRead:
          req.result = pre;
          break;
        case OpKind::kWrite:
          req.result = cur;
          cur = req.arg0;
          break;
        case OpKind::kCas:
          req.result = cur;
          if (cur == req.arg0) cur = req.arg1;
          break;
        case OpKind::kFaa:
          req.result = cur;
          cur += req.arg0;
          break;
        default:
          WFSORT_CHECK(false);
      }
      finish_op(pid, gp);
    }
    if (cur != pre) mem_.store(addr, cur);
  }

  for (ProcId pid : yielders_) {
    Proc& yp = procs_[pid];
    yp.ctx.pending_.result = 0;
    finish_op(pid, yp);
  }
}

void Machine::finish_op_parallel(ProcId pid, Proc& p, ShardScratch& sh,
                                 std::uint32_t op_idx) {
  metrics_.record_proc_op_sharded(pid, sh.metrics);
  MemRequest& req = p.ctx.pending_;
  if (tracer_ != nullptr) {
    // Events are staged into the operation's canonical-order slot and flushed
    // to the tracer sequentially at commit 2, so the tracer observes exactly
    // the stream the sequential engine emits.
    trace_buf_[op_idx] =
        TraceEvent{round_, pid, req.kind, req.addr, req.arg0, req.arg1, req.result};
  }
  req.kind = OpKind::kNone;
  advance_parallel(p, sh, op_idx);
}

void Machine::advance_parallel(Proc& p, ShardScratch& sh, std::uint32_t op_idx) {
  // Parallel-safe advance(): the resume itself only touches per-processor
  // state (the coroutine frame, the Ctx, the thread-local frame pool), and
  // the completion bookkeeping below writes per-processor slots directly —
  // one writer per processor per round — while the shared counters become
  // shard deltas applied at commit 2.
  p.ctx.current().resume();
  if (!p.ctx.finished_) return;
  const ProcId pid = p.ctx.pid();
  if (!p.done_counted) {
    p.done_counted = true;
    ++sh.finished;  // stepping processors are never killed mid-round
    metrics_.record_proc_finish_presized(pid);
  }
  if (eligible_scratch_[pid]) {
    eligible_scratch_[pid] = 0;
    ++sh.eligible_off;
  }
  if (std::exception_ptr e = p.task.failure()) {
    // Keep the canonically-first failure (lowest global serve index) so the
    // exception the run loop sees does not depend on shard interleaving.
    if (!sh.exn || op_idx < sh.exn_key) {
      sh.exn = e;
      sh.exn_key = op_idx;
    }
  }
}

void Machine::serve_round_parallel(const std::vector<ProcId>& stepping) {
  // Sharded round engine; see the member-block comment in machine.h for the
  // five-step structure and the determinism argument.
  const unsigned nshards = commit_stats_.shards;
  const bool stall = opts_.memory_model == MemoryModel::kStall;

  // Cold growth, as in serve_round: tracks memory/processor growth only.
  if (cell_slots_.size() < mem_.size()) cell_slots_.resize(mem_.size());
  if (cell_count_.size() < mem_.size()) cell_count_.resize(mem_.size(), 0);
  if (next_in_cell_.size() < procs_.size()) next_in_cell_.resize(procs_.size(), kNoProc);
  if (shards_.size() < nshards) shards_.resize(nshards);
  for (unsigned t = 0; t < nshards; ++t) {
    if (shards_[t].to_owner.size() < nshards) shards_[t].to_owner.resize(nshards);
    metrics_.init_shard(shards_[t].metrics);
  }
  ++cell_epoch_;
  const std::size_t nstep = stepping.size();

  // Phase A: each shard scans a contiguous slice of the stepping list and
  // scatters requests into per-owner buckets.  Slices are contiguous and
  // ascending, so bucket order is global stepping order once the buckets are
  // drained shard-by-shard.
  std::uint64_t t0 = now_ns();
  pool_->run([&](unsigned t) {
    const std::uint64_t w0 = now_ns();
    ShardScratch& sh = shards_[t];
    for (std::vector<ReqEntry>& bucket : sh.to_owner) bucket.clear();
    sh.yielders.clear();
    const std::size_t lo = nstep * t / nshards;
    const std::size_t hi = nstep * (t + 1) / nshards;
    for (std::size_t si = lo; si < hi; ++si) {
      if (si + 8 < hi) __builtin_prefetch(&procs_[stepping[si + 8]].ctx);
      const ProcId pid = stepping[si];
      const MemRequest& req = procs_[pid].ctx.pending_;
      WFSORT_CHECK(req.kind != OpKind::kNone);
      if (req.kind == OpKind::kYield) {
        sh.yielders.push_back(pid);
        continue;
      }
      WFSORT_CHECK(req.addr < mem_.size());
      sh.to_owner[owner_of(req.addr)].push_back(
          ReqEntry{req.addr, pid, static_cast<std::uint32_t>(si)});
    }
    commit_stats_.shard_busy_ns[t] += now_ns() - w0;
  });
  std::uint64_t t1 = now_ns();
  commit_stats_.collect_ns += t1 - t0;

  // Phase B-pre: each owner drains the buckets addressed to it in shard
  // order — global stepping order — building the same epoch-stamped
  // intrusive chains as the sequential engine, restricted to cells it owns.
  // Owners touch disjoint cell stripes, so the chain/count/slot writes never
  // collide; next_in_cell_[pid] is written by the owner of pid's target
  // cell, and a processor has exactly one pending request.
  pool_->run([&](unsigned o) {
    const std::uint64_t w0 = now_ns();
    ShardScratch& own = shards_[o];
    own.touched.clear();
    for (unsigned t = 0; t < nshards; ++t) {
      for (const ReqEntry& e : shards_[t].to_owner[o]) {
        next_in_cell_[e.pid] = kNoProc;
        CellSlot& slot = cell_slots_[e.addr];
        if (slot.stamp != cell_epoch_) {
          slot.stamp = cell_epoch_;
          slot.head = e.pid;
          cell_count_[e.addr] = 1;
          own.touched.push_back(TouchedCell{e.addr, e.si, 0, 0, 0});
        } else {
          next_in_cell_[slot.tail] = e.pid;
          ++cell_count_[e.addr];
        }
        slot.tail = e.pid;
      }
    }
    commit_stats_.shard_busy_ns[o] += now_ns() - w0;
  });
  t0 = now_ns();
  commit_stats_.group_ns += t0 - t1;

  // Commit 1 (sequential): T-way merge of the owners' touched lists by
  // first-touch index.  Each owner's list is already ascending (it was built
  // in global stepping order), so the merge visits cells in exactly the
  // first-touch order the sequential engine serves them in — which is the
  // order that pins arbitration-RNG consumption.  Single-requester cells
  // draw nothing (matching the sequential fast path); kStall cells draw one
  // winner index; kCrcw cells materialize their chain into arb_pool_ and
  // shuffle it in place.
  merge_cursor_.assign(nshards, 0);
  arb_pool_.clear();
  std::size_t total_cells = 0;
  for (unsigned t = 0; t < nshards; ++t) total_cells += shards_[t].touched.size();
  std::uint32_t op_idx = 0;
  for (std::size_t rank = 0; rank < total_cells; ++rank) {
    unsigned best = nshards;
    std::uint32_t best_si = 0;
    for (unsigned t = 0; t < nshards; ++t) {
      if (merge_cursor_[t] >= shards_[t].touched.size()) continue;
      const std::uint32_t si = shards_[t].touched[merge_cursor_[t]].first_si;
      if (best == nshards || si < best_si) {
        best = t;
        best_si = si;
      }
    }
    TouchedCell& tc = shards_[best].touched[merge_cursor_[best]++];
    tc.rank = static_cast<std::uint32_t>(rank);
    tc.op_base = op_idx;
    const std::uint32_t cnt = cell_count_[tc.addr];
    if (cnt == 1) {
      ++op_idx;
    } else if (stall) {
      tc.arb = static_cast<std::uint32_t>(arb_rng_.below(cnt));
      ++op_idx;  // only the winner is served; losers retry next round
    } else {
      const std::size_t off = arb_pool_.size();
      for (ProcId p = cell_slots_[tc.addr].head; p != kNoProc; p = next_in_cell_[p]) {
        arb_pool_.push_back(p);
      }
      arb_rng_.shuffle(std::span<ProcId>(arb_pool_.data() + off, cnt));
      tc.arb = static_cast<std::uint32_t>(off);
      op_idx += cnt;
    }
  }
  // Yielders serve after every memory operation, collector-shard order —
  // which is stepping order, the same position they take sequentially.
  std::uint32_t yield_cursor = op_idx;
  for (unsigned t = 0; t < nshards; ++t) {
    shards_[t].yield_base = yield_cursor;
    yield_cursor += static_cast<std::uint32_t>(shards_[t].yielders.size());
  }
  const std::size_t total_ops = yield_cursor;
  if (tracer_ != nullptr && trace_buf_.size() < total_ops) trace_buf_.resize(total_ops);
  t1 = now_ns();
  commit_stats_.arb_ns += t1 - t0;

  // Phase B: owners serve their cells with the pre-drawn arbitration and
  // resume the served processors, then their collected yielders.  Resumes
  // only touch per-processor state, so cross-cell serve order is free; every
  // observable is routed through canonical-order slots (trace_buf_) or
  // rank-carrying shard records (metrics) and sequenced at commit 2.
  pool_->run([&](unsigned o) {
    const std::uint64_t w0 = now_ns();
    ShardScratch& sh = shards_[o];
    const std::size_t ncells = sh.touched.size();
    for (std::size_t ci = 0; ci < ncells; ++ci) {
      if (ci + 8 < ncells) {
        const Addr far = sh.touched[ci + 8].addr;
        __builtin_prefetch(cell_slots_.data() + far);
        mem_.prefetch(far);
      }
      if (ci + 4 < ncells) {
        __builtin_prefetch(&procs_[cell_slots_[sh.touched[ci + 4].addr].head].ctx);
      }
      const TouchedCell& tc = sh.touched[ci];
      const Addr addr = tc.addr;
      const std::uint32_t cnt = cell_count_[addr];
      sh.metrics.record_cell(addr, cnt, mem_.region_id_of(addr), tc.rank);
      const ProcId head = cell_slots_[addr].head;
      const Word pre = mem_.load(addr);

      if (cnt == 1) {
        Proc& hp = procs_[head];
        MemRequest& req = hp.ctx.pending_;
        switch (req.kind) {
          case OpKind::kRead:
            req.result = pre;
            break;
          case OpKind::kWrite:
            req.result = pre;
            mem_.store(addr, req.arg0);
            break;
          case OpKind::kCas:
            req.result = pre;
            if (pre == req.arg0) mem_.store(addr, req.arg1);
            break;
          case OpKind::kFaa:
            req.result = pre;
            mem_.store(addr, pre + req.arg0);
            break;
          default:
            WFSORT_CHECK(false);
        }
        finish_op_parallel(head, hp, sh, tc.op_base);
        continue;
      }

      if (stall) {
        ProcId winner = head;
        for (std::uint32_t k = 0; k < tc.arb; ++k) winner = next_in_cell_[winner];
        sh.metrics.record_stall(cnt - 1);
        Proc& wp = procs_[winner];
        MemRequest& req = wp.ctx.pending_;
        switch (req.kind) {
          case OpKind::kRead:
            req.result = pre;
            break;
          case OpKind::kWrite:
            req.result = pre;
            mem_.store(addr, req.arg0);
            break;
          case OpKind::kCas:
            req.result = pre;
            if (pre == req.arg0) mem_.store(addr, req.arg1);
            break;
          case OpKind::kFaa:
            req.result = pre;
            mem_.store(addr, pre + req.arg0);
            break;
          default:
            WFSORT_CHECK(false);
        }
        finish_op_parallel(winner, wp, sh, tc.op_base);
        continue;
      }

      const ProcId* group = arb_pool_.data() + tc.arb;
      Word cur = pre;
      for (std::uint32_t gi = 0; gi < cnt; ++gi) {
        if (gi + 4 < cnt) __builtin_prefetch(&procs_[group[gi + 4]].ctx);
        if (gi + 2 < cnt) {
          __builtin_prefetch(procs_[group[gi + 2]].ctx.current().address());
        }
        const ProcId pid = group[gi];
        Proc& gp = procs_[pid];
        MemRequest& req = gp.ctx.pending_;
        switch (req.kind) {
          case OpKind::kRead:
            req.result = pre;
            break;
          case OpKind::kWrite:
            req.result = cur;
            cur = req.arg0;
            break;
          case OpKind::kCas:
            req.result = cur;
            if (cur == req.arg0) cur = req.arg1;
            break;
          case OpKind::kFaa:
            req.result = cur;
            cur += req.arg0;
            break;
          default:
            WFSORT_CHECK(false);
        }
        finish_op_parallel(pid, gp, sh, tc.op_base + gi);
      }
      if (cur != pre) mem_.store(addr, cur);
    }

    std::uint32_t yi = 0;
    for (ProcId pid : sh.yielders) {
      Proc& yp = procs_[pid];
      yp.ctx.pending_.result = 0;
      finish_op_parallel(pid, yp, sh, sh.yield_base + yi++);
    }
    commit_stats_.shard_busy_ns[o] += now_ns() - w0;
  });
  t0 = now_ns();
  commit_stats_.serve_ns += t0 - t1;

  // Commit 2 (sequential): flush the trace in canonical order, fold the
  // metrics shards and run-loop counter deltas, then rethrow the
  // canonically-first program exception if one escaped.
  if (tracer_ != nullptr) {
    for (std::size_t i = 0; i < total_ops; ++i) tracer_->on_event(trace_buf_[i]);
  }
  std::exception_ptr exn;
  std::uint32_t exn_key = 0;
  for (unsigned t = 0; t < nshards; ++t) {
    ShardScratch& sh = shards_[t];
    metrics_.merge_shard(sh.metrics);
    eligible_count_ -= sh.eligible_off;
    eligible_dead_ += sh.eligible_off;
    sh.eligible_off = 0;
    unfinished_live_ -= sh.finished;
    sh.finished = 0;
    if (sh.exn && (!exn || sh.exn_key < exn_key)) {
      exn = sh.exn;
      exn_key = sh.exn_key;
    }
    sh.exn = nullptr;
  }
  commit_stats_.merge_ns += now_ns() - t0;
  if (exn) std::rethrow_exception(exn);
}

}  // namespace pram
