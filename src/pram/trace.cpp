#include "pram/trace.h"

#include <cstdio>

namespace pram {

std::string format_event(const TraceEvent& event, const Memory* mem) {
  const char* kind = "?";
  switch (event.kind) {
    case OpKind::kRead: kind = "READ"; break;
    case OpKind::kWrite: kind = "WRITE"; break;
    case OpKind::kCas: kind = "CAS"; break;
    case OpKind::kFaa: kind = "FAA"; break;
    case OpKind::kYield: kind = "YIELD"; break;
    case OpKind::kNone: kind = "NONE"; break;
  }

  char where[96];
  const Region* region = mem != nullptr ? mem->region_of(event.addr) : nullptr;
  if (region != nullptr) {
    std::snprintf(where, sizeof(where), "%s[+%llu]", region->name.c_str(),
                  static_cast<unsigned long long>(event.addr - region->base));
  } else {
    std::snprintf(where, sizeof(where), "@%llu",
                  static_cast<unsigned long long>(event.addr));
  }

  char buf[256];
  switch (event.kind) {
    case OpKind::kRead:
      std::snprintf(buf, sizeof(buf), "r%llu p%u READ %s -> %lld",
                    static_cast<unsigned long long>(event.round), event.pid, where,
                    static_cast<long long>(event.result));
      break;
    case OpKind::kWrite:
      std::snprintf(buf, sizeof(buf), "r%llu p%u WRITE %s = %lld",
                    static_cast<unsigned long long>(event.round), event.pid, where,
                    static_cast<long long>(event.arg0));
      break;
    case OpKind::kCas:
      std::snprintf(buf, sizeof(buf), "r%llu p%u CAS %s exp=%lld des=%lld -> %lld",
                    static_cast<unsigned long long>(event.round), event.pid, where,
                    static_cast<long long>(event.arg0), static_cast<long long>(event.arg1),
                    static_cast<long long>(event.result));
      break;
    case OpKind::kFaa:
      std::snprintf(buf, sizeof(buf), "r%llu p%u FAA %s += %lld -> %lld",
                    static_cast<unsigned long long>(event.round), event.pid, where,
                    static_cast<long long>(event.arg0),
                    static_cast<long long>(event.result));
      break;
    case OpKind::kYield:
      std::snprintf(buf, sizeof(buf), "r%llu p%u YIELD",
                    static_cast<unsigned long long>(event.round), event.pid);
      break;
    default:
      std::snprintf(buf, sizeof(buf), "r%llu p%u %s %s",
                    static_cast<unsigned long long>(event.round), event.pid, kind, where);
      break;
  }
  return buf;
}

}  // namespace pram
