// Coroutine task type for virtual PRAM processors.
//
// A processor program is an ordinary C++20 coroutine returning pram::Task.
// Every shared-memory operation is expressed as `co_await ctx.read(a)` etc.;
// the coroutine suspends at each such operation and the Machine's round loop
// resumes it once the operation has been served under CRCW semantics.  Local
// computation between memory operations runs to completion inside a single
// resume and is free, matching the PRAM cost model where one round is one
// shared-memory step.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

#include "pram/frame_pool.h"

namespace pram {

class Task {
 public:
  struct promise_type {
    std::exception_ptr exception;
    // Optional completion flag, raised at final suspend.  The Machine points
    // it at hot per-processor state so its round loop can test "did this
    // program just finish?" without touching the root coroutine frame (which
    // is cold while a nested subroutine is doing the work).
    bool* done_flag = nullptr;

    static void* operator new(std::size_t n) { return detail::FramePool::allocate(n); }
    static void operator delete(void* p, std::size_t n) noexcept {
      detail::FramePool::deallocate(p, n);
    }

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) const noexcept {
        if (bool* f = h.promise().done_flag) *f = true;
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() noexcept {}
    void unhandled_exception() { exception = std::current_exception(); }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  ~Task() { destroy(); }

  bool valid() const { return handle_ != nullptr; }
  bool done() const { return handle_.done(); }
  std::coroutine_handle<> handle() const { return handle_; }

  // Mirror completion into *f (see promise_type::done_flag).  The flag's
  // storage must outlive the coroutine.
  void set_done_flag(bool* f) { handle_.promise().done_flag = f; }

  // Run the coroutine until its next suspension point (or completion).
  void resume() { handle_.resume(); }

  // The exception that escaped the coroutine body, or nullptr.  Lets the
  // parallel round engine capture a failure on a worker thread and rethrow
  // it from the round commit instead of unwinding across the thread pool.
  std::exception_ptr failure() const {
    return handle_ && handle_.done() ? handle_.promise().exception : nullptr;
  }

  // Rethrow any exception that escaped the coroutine body.
  void rethrow_if_failed() const {
    if (handle_ && handle_.done() && handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace pram
