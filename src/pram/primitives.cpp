#include "pram/primitives.h"

#include "common/check.h"

namespace pram {

PramBarrier make_barrier(Memory& mem, std::string_view name, std::uint32_t parties) {
  WFSORT_CHECK(parties >= 1);
  PramBarrier b;
  b.cells = mem.alloc(name, 2, 0);
  b.parties = parties;
  return b;
}

SubTask<void> barrier_wait(Ctx& ctx, PramBarrier barrier) {
  const Word gen = co_await ctx.read(barrier.gen_addr());
  const Word arrived = co_await ctx.faa(barrier.count_addr(), 1);
  if (arrived == static_cast<Word>(barrier.parties) - 1) {
    // Last arrival: reset the count and release everyone.
    co_await ctx.write(barrier.count_addr(), 0);
    co_await ctx.write(barrier.gen_addr(), gen + 1);
    co_return;
  }
  while (true) {
    const Word g = co_await ctx.read(barrier.gen_addr());
    if (g != gen) co_return;
  }
}

}  // namespace pram
