// The unified stats JSON schema ("wfsort-stats-v1") — one document shape for
// both substrates, so tools, bench scripts and CI read the same keys whether
// a run went through the native engine or the PRAM simulator.
//
// Top-level keys (all always present; see docs/observability.md):
//   schema      "wfsort-stats-v1"
//   substrate   "native" | "sim"
//   build_type  "release" | "debug" — provenance of the producing binary
//   config      run parameters (variant, n, threads/procs, seed, knobs)
//   totals      scalar outcomes (wall_ms, workers, rounds, ...)
//   phases      array of {name, max_ms, total_ms, workers} — empty for sim
//   counters    named event counts (object; key set depends on substrate/level)
//   histograms  named histogram objects ({kind, total, counts, ...})
//   contention  max-contention value plus per-site/per-region attribution
//
// A bench run wraps several stats documents in a "wfsort-bench-v1" envelope.
#pragma once

#include <cstdint>
#include <string>

#include "common/json.h"
#include "telemetry/report.h"

namespace pram {
class Metrics;
struct CommitStats;
}

namespace wfsort {
struct Options;
struct SortStats;
}

namespace wfsort::telemetry {

inline constexpr const char kStatsSchema[] = "wfsort-stats-v1";
inline constexpr const char kBenchSchema[] = "wfsort-bench-v1";
inline constexpr const char kScalingSchema[] = "wfsort-scaling-v1";
inline constexpr const char kMonitorSchema[] = "wfsort-monitor-v1";

// "release" or "debug", from the NDEBUG the telemetry library itself was
// compiled with.  Stamped into every bench/scaling envelope so committed
// BENCH files carry their provenance — a debug-build number is not a number.
const char* build_type_name();

// Config echo for a native run; fill by hand or from Options via
// native_run_info().
struct NativeRunInfo {
  std::string variant;  // "det" | "lc"
  std::uint64_t n = 0;
  std::uint32_t threads = 0;
  std::uint64_t seed = 0;
  std::uint32_t wat_batch = 0;
  std::uint64_t seq_cutoff = 0;
  std::uint32_t lc_copies = 0;
  std::string prune;   // "no" | "yes" | "done"
  std::string phase1;  // "tree" | "partition"
  Level level = Level::kOff;
};

NativeRunInfo native_run_info(const Options& opts, std::uint64_t n);

// Config echo for a simulated run.
struct SimRunInfo {
  std::string program;  // e.g. "det_sort", "lc_sort", "wat"
  std::uint64_t n = 0;
  std::uint32_t procs = 0;
  std::string sched;
  std::uint64_t seed = 0;
  std::uint32_t sim_threads = 1;  // round-engine shards (config.engine = "par" when > 1)
};

// Log2 histogram -> {"kind":"log2", total, sum, max, mean, counts:[...]}
// (counts trimmed to the last nonzero bucket).
Json histogram_json(const LogHistogram& h);

// Latency sketch quantile summary -> {"kind":"loglin", sub_bits, count,
// sum, max_us, mean_us, p50_us, p99_us, p999_us}.  Quantiles carry the
// sketch's documented relative error (LatencySketch::kRelativeError).
Json sketch_json(const LatencySketch& sk);

// One flight-recorder event -> {"t", "kind", "a8", "a32", "value", "tid"}
// (kind rendered by name; see ring.h for the per-kind payload table).
Json flight_event_json(const FlightEvent& e);

// One native run.  Uses stats.telemetry when present (per-phase spans,
// per-site counters, histograms); degrades to the always-on SortStats
// counters and phase times at Level::kOff.
Json native_stats_json(const NativeRunInfo& info, const SortStats& stats);

// One simulated run, from the machine's Metrics.  When `commit` is given and
// the run used the sharded round engine, the document additionally carries
// the "sim_commit" counter group (per-phase nanoseconds and round counts of
// the two-phase commit) and one phase span per shard ("shard<i>", busy time
// across all round phases).
Json sim_stats_json(const SimRunInfo& info, const pram::Metrics& metrics,
                    const pram::CommitStats* commit = nullptr);

// Structural validation of a stats document (schema name, required keys,
// key types).  Returns false and sets *error on the first violation.
// `require_release`: additionally reject documents whose build_type is
// missing or not "release" (same provenance gate as the envelopes).
bool validate_stats_json(const Json& doc, std::string* error,
                         bool require_release = false);

// {"schema":"wfsort-bench-v1","build_type":...,"caveats":{...},"runs":[]} —
// callers push stats documents onto "runs".  The caveats object records
// measurement caveats ONCE per envelope (e.g. the distro libbenchmark note)
// instead of as per-document footnotes.  `wfsort bench --pool` additionally
// sets an optional "pool" object: the SortPool lifetime counters (threads,
// runs, caller_only_runs, detached_jobs, bypass_runs, arena_reuse_bytes,
// arena_grow_events, arena_held_bytes, wake_ns) and, under --back-to-back,
// a "small_n" array of cold-vs-pooled latency rows
// ({n, threads, reps, cold_ms, pooled_ms, speedup}).
Json make_bench_doc();
// `require_release`: additionally reject envelopes whose build_type is
// missing or not "release" (bench provenance — used by the bench scripts and
// CI before a BENCH file may be committed).
bool validate_bench_json(const Json& doc, std::string* error,
                         bool require_release = false);

// Thread-scaling envelope ("wfsort-scaling-v1"):
//   schema      "wfsort-scaling-v1"
//   build_type  "release" | "debug"
//   config      {n, seed, reps, hw_concurrency}
//   threads     [1, 2, 4, ...] — the sweep
//   variants    {"det": {"points": [...]}, "lc": {"points": [...]}}
// Each point: {threads, wall_ms, speedup (vs the variant's t=1 point),
// contention: {max_site, max_value, sites}}.
Json make_scaling_doc();
bool validate_scaling_json(const Json& doc, std::string* error,
                           bool require_release = false);

// Structural validation of a whole "wfsort-monitor-v1" JSONL file (the live
// monitor's output; monitor.h documents the record stream).  A file holds
// one or more sessions, each a "header" record followed by its "sample"
// records; every header must carry build_type provenance exactly like the
// bench envelopes (`require_release` rejects missing/non-release values).
bool validate_monitor_jsonl(const std::string& text, std::string* error,
                            bool require_release = false);

}  // namespace wfsort::telemetry
