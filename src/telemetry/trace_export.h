// Chrome trace_event ("Perfetto JSON") export of a Report's span timeline.
//
// The emitted document is the classic {"traceEvents":[...]} array format
// understood by chrome://tracing and ui.perfetto.dev: one "X" (complete)
// event per recorded span, timestamped in microseconds on the run's shared
// clock, plus "M" metadata events naming the process and each worker's
// track.  Multiple runs can share one trace by giving each a distinct pid
// (wfsort bench exports det and lc runs side by side this way).
#pragma once

#include <string>

#include "common/json.h"
#include "telemetry/report.h"

namespace wfsort::telemetry {

// {"traceEvents":[],"displayTimeUnit":"ms"} — append events, then dump.
Json chrome_trace_doc();

// Append one run's spans (and its process/thread metadata) to a trace
// document's "traceEvents" array.
void append_chrome_trace(Json* doc, const Report& report, int pid,
                         const std::string& process_name);

// One-run convenience wrapper.
Json chrome_trace_json(const Report& report,
                       const std::string& process_name = "wfsort");

// Write `text` to `path`; false + *error on I/O failure.
bool write_text_file(const std::string& path, const std::string& text,
                     std::string* error);

}  // namespace wfsort::telemetry
