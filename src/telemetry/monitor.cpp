#include "telemetry/monitor.h"

#include <utility>

#include "telemetry/schema.h"

namespace wfsort::telemetry {

namespace {

Json sketch_quantiles_json(const LatencySketch& sk) {
  Json j = Json::object();
  j.set("count", sk.count());
  j.set("p50_us", sk.quantile(0.50));
  j.set("p99_us", sk.quantile(0.99));
  j.set("p999_us", sk.quantile(0.999));
  j.set("max_us", sk.max());
  return j;
}

}  // namespace

Monitor::Monitor(const Recorder* recorder, Config cfg) : cfg_(std::move(cfg)) {
  for (std::uint32_t tid = 0; tid < recorder->slot_count(); ++tid) {
    rings_.push_back(recorder->ring(tid));
  }
  cursors_.assign(rings_.size(), 0);
  out_.open(cfg_.path, std::ios::app);
  ok_ = out_.is_open();
}

Monitor::Monitor(std::vector<const FlightRing*> rings, Config cfg)
    : rings_(std::move(rings)), cfg_(std::move(cfg)) {
  cursors_.assign(rings_.size(), 0);
  out_.open(cfg_.path, std::ios::app);
  ok_ = out_.is_open();
}

Monitor::~Monitor() { stop(); }

void Monitor::start() {
  if (!ok_ || started_) return;
  started_ = true;
  t0_ = std::chrono::steady_clock::now();
  Json header = Json::object();
  header.set("schema", kMonitorSchema);
  header.set("record", "header");
  header.set("build_type", build_type_name());
  header.set("source", cfg_.source);
  header.set("interval_ms", static_cast<std::uint64_t>(cfg_.interval_ms));
  header.set("rings", static_cast<std::uint64_t>(rings_.size()));
  header.set("ring_capacity",
             static_cast<std::uint64_t>(
                 rings_.empty() ? 0 : rings_.front()->capacity()));
  header.set("config", cfg_.config);
  out_ << header.dump_compact() << '\n';
  thread_ = std::thread([this] { run_loop(); });
}

void Monitor::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  take_sample(/*final_sample=*/true);
  out_.flush();
}

void Monitor::note_job(std::uint64_t duration_us) {
  std::lock_guard<std::mutex> lock(mu_);
  jobs_.add(duration_us);
}

void Monitor::run_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    if (cv_.wait_for(lock, std::chrono::milliseconds(cfg_.interval_ms),
                     [this] { return stop_requested_; })) {
      break;  // final drain happens on the stop() caller's thread
    }
    lock.unlock();
    take_sample(/*final_sample=*/false);
    lock.lock();
  }
}

void Monitor::drain_rings() {
  for (std::size_t i = 0; i < rings_.size(); ++i) {
    const FlightRing* ring = rings_[i];
    if (ring == nullptr) continue;
    FlightRing::ReadResult r = ring->read_from(cursors_[i]);
    cursors_[i] = r.next;
    dropped_ += r.dropped;
    events_ += r.dropped + r.events.size();
    for (const FlightEvent& e : r.events) {
      const auto kind = static_cast<std::size_t>(e.kind);
      if (kind < static_cast<std::size_t>(FlightKind::kKindCount)) {
        ++counts_[kind];
      }
      switch (e.flight_kind()) {
        case FlightKind::kPhaseExit:
          if (e.a8 < kPhaseCount) phase_lat_[e.a8].add(e.value);
          break;
        case FlightKind::kSimRound:
          if (e.t > sim_round_) sim_round_ = e.t;
          break;
        default:
          break;
      }
    }
  }
}

Json Monitor::sample_json(bool final_sample) {
  const auto t_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - t0_)
                        .count();
  std::uint64_t active = 0;
  for (const FlightRing* ring : rings_) {
    if (ring != nullptr && ring->total() != 0) ++active;
  }

  Json j = Json::object();
  j.set("schema", kMonitorSchema);
  j.set("record", "sample");
  j.set("seq", samples_);
  j.set("t_ms", static_cast<std::uint64_t>(t_ms));
  j.set("final", final_sample);
  j.set("events", events_);
  j.set("dropped", dropped_);
  j.set("workers_active", active);

  Json counters = Json::object();
  const auto count_of = [this](FlightKind k) {
    return counts_[static_cast<std::size_t>(k)];
  };
  counters.set("wat_claims", count_of(FlightKind::kWatClaim));
  counters.set("cas_fail_bursts", count_of(FlightKind::kCasFailBurst));
  counters.set("leaf_blocks", count_of(FlightKind::kLeafBlock));
  counters.set("faults", count_of(FlightKind::kFault));
  counters.set("sim_ops", count_of(FlightKind::kSimOp));
  counters.set("sim_rounds", sim_round_);
  j.set("counters", counters);

  Json phases = Json::object();
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    if (phase_lat_[p].count() == 0) continue;
    phases.set(phase_name(static_cast<PhaseId>(p)),
               sketch_quantiles_json(phase_lat_[p]));
  }
  j.set("phases", phases);

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (jobs_.count() != 0) j.set("jobs", sketch_quantiles_json(jobs_));
  }
  return j;
}

void Monitor::take_sample(bool final_sample) {
  drain_rings();
  out_ << sample_json(final_sample).dump_compact() << '\n';
  ++samples_;
}

}  // namespace wfsort::telemetry
