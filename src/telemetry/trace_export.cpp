#include "telemetry/trace_export.h"

#include <fstream>

#include "common/check.h"

namespace wfsort::telemetry {
namespace {

Json metadata_event(const char* name, int pid, std::int64_t tid,
                    const std::string& value) {
  Json ev = Json::object();
  ev.set("name", name);
  ev.set("ph", "M");
  ev.set("pid", pid);
  if (tid >= 0) ev.set("tid", tid);
  Json args = Json::object();
  args.set("name", value);
  ev.set("args", std::move(args));
  return ev;
}

}  // namespace

Json chrome_trace_doc() {
  Json doc = Json::object();
  doc.set("traceEvents", Json::array());
  doc.set("displayTimeUnit", "ms");
  return doc;
}

void append_chrome_trace(Json* doc, const Report& report, int pid,
                         const std::string& process_name) {
  WFSORT_CHECK(doc != nullptr && doc->find("traceEvents") != nullptr);
  // Json::set copies through; build the array out-of-place and set it back.
  Json events = doc->at("traceEvents");
  events.push_back(metadata_event("process_name", pid, -1, process_name));
  for (const WorkerReport& w : report.workers) {
    std::string label = "worker " + std::to_string(w.tid);
    if (w.crashed) label += " (crashed)";
    events.push_back(
        metadata_event("thread_name", pid, static_cast<std::int64_t>(w.tid),
                       label));
    for (const Span& s : w.spans) {
      Json ev = Json::object();
      ev.set("name", phase_name(s.phase));
      ev.set("cat", "phase");
      ev.set("ph", "X");
      ev.set("ts", s.begin_us);
      ev.set("dur", s.duration_us());
      ev.set("pid", pid);
      ev.set("tid", static_cast<std::uint64_t>(s.tid));
      events.push_back(std::move(ev));
    }
  }
  doc->set("traceEvents", std::move(events));
}

Json chrome_trace_json(const Report& report, const std::string& process_name) {
  Json doc = chrome_trace_doc();
  append_chrome_trace(&doc, report, /*pid=*/1, process_name);
  return doc;
}

bool write_text_file(const std::string& path, const std::string& text,
                     std::string* error) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    *error = "cannot open for writing: " + path;
    return false;
  }
  out << text;
  out.flush();
  if (!out) {
    *error = "write failed: " + path;
    return false;
  }
  return true;
}

}  // namespace wfsort::telemetry
