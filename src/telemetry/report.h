// Telemetry data model — the cross-substrate observability layer's types.
//
// The paper's quantitative claims (O(N log N / P) time, O(sqrt P)
// contention, the per-processor own-step bound) are only debuggable when a
// run can say where its time and its memory traffic went.  The PRAM
// simulator always could (pram::Metrics); this header gives the *native*
// engine the same vocabulary: per-worker, per-phase wall-time spans,
// log2-bucketed histograms of per-element work, and named counters that
// attribute contention to the site that caused it.  One Report is the
// finished, immutable snapshot of one run; docs/observability.md documents
// the JSON schema it exports through telemetry/schema.h.
//
// Everything here is plain data — no clocks, no atomics, no engine types —
// so the report can be held by SortStats, serialized by tools, and asserted
// on by tests without dragging the engine in.  Recording lives in
// telemetry/recorder.h.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/ring.h"
#include "telemetry/sketch.h"

namespace wfsort::telemetry {

// How much a run records.
//   kOff    — nothing beyond the always-on SortStats counters (default; the
//             engine hot path pays one predictable branch per phase).
//   kPhases — per-worker, per-phase wall-time spans (two steady_clock reads
//             per phase per worker).
//   kFull   — spans plus histograms and per-site contention counters,
//             accumulated in per-worker scratch and flushed once per phase.
enum class Level : std::uint8_t { kOff = 0, kPhases = 1, kFull = 2 };

const char* level_name(Level level);
bool parse_level(const std::string& name, Level* out);

// Phases a native worker moves through.  The deterministic variant uses
// kBuild/kSum/kPlace (the paper's phases 1-3); the low-contention variant
// replaces kBuild with its stages A-E and shares kSum/kPlace for the
// randomized summation and placement.  kCopyBack is the post-phase output
// chunk copying finished workers help with.
enum class PhaseId : std::uint8_t {
  kBuild = 0,     // phase 1: WAT-allocated pivot-tree construction
  kSum,           // phase 2: subtree summation
  kPlace,         // phase 3: placement + output emission
  kCopyBack,      // finished workers copying output chunks to the caller
  kLcPresort,     // LC stage A: group pre-sort of one slice
  kLcWinner,      // LC stage B: winner-tree competition
  kLcSortedIdx,   // LC stage C: reconstructing the winner's sorted order
  kLcFatten,      // LC stage D: write-most fat-tree fill + tree stitching
  kLcInsert,      // LC stage E: LC-WAT randomized insertion of the rest
  kPartClassify,  // partition phase 1a: chunk histograms vs splitters
  kPartScatter,   // partition phase 1b: scatter into bucket regions
  kPartSort,      // partition phase 1c: per-bucket leaf sort + emission
  kPhaseCount
};
inline constexpr std::size_t kPhaseCount =
    static_cast<std::size_t>(PhaseId::kPhaseCount);

const char* phase_name(PhaseId phase);

// Named event counters.  The first group attributes native memory-contention
// events to the shared structure that absorbed them; the rest account for
// work-allocation and cutoff behavior.
enum class Counter : std::uint8_t {
  kCasInstalls = 0,   // successful child-slot install CASes (phase 1)
  kCasFailures,       // probes/CASes lost to another worker (phase 1)
  kWatClaims,         // job leaves this worker claimed (WAT or LC-WAT)
  kWatProbes,         // WAT tree nodes visited / LC-WAT random probes
  kFatHits,           // fat-tree reads served by a filled copy
  kFatMisses,         // fat-tree reads that fell back to the winner slice
  kSeqBlocks,         // place_block cutoff walks this worker performed
  kSeqBlockElems,     // elements emitted by those walks
  kSeqBlockRepeats,   // walks that lost the completion-flag CAS (duplicated work)
  kLcProbes,          // LC sum/place uniform random probes (stages F-G)
  kLcBurstVisits,     // nodes visited by LC probe bursts (stages F-G)
  kBackoffSpins,      // pause iterations spent in stage-E CAS backoff
  kLeafBlocks,        // leaf_sort blocks this worker sorted (cutoff + buckets)
  kLeafInsertionSorts,  // leaf_sort ranges finished by insertion sort
  kLeafHeapsorts,     // leaf_sort bad-pivot heapsort fallbacks taken
  kPartitionSwaps,    // element swaps performed by leaf_sort partitions
  kSplitterSamples,   // elements sampled to build partition splitters
  kCounterCount
};
inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::kCounterCount);

const char* counter_name(Counter counter);

// Log2-bucketed histogram: bucket 0 holds value 0, bucket b >= 1 holds
// values in [2^(b-1), 2^b).  32 buckets cover the full uint64 range the
// engine can produce; adds are two array ops, cheap enough for per-element
// recording at Level::kFull.
struct LogHistogram {
  static constexpr std::size_t kBuckets = 32;

  std::array<std::uint64_t, kBuckets> counts{};
  std::uint64_t total = 0;  // number of samples
  std::uint64_t sum = 0;    // sum of sample values
  std::uint64_t max = 0;    // largest sample

  void add(std::uint64_t value) {
    const std::size_t b =
        std::min<std::size_t>(std::bit_width(value), kBuckets - 1);
    ++counts[b];
    ++total;
    sum += value;
    if (value > max) max = value;
  }

  void merge(const LogHistogram& other) {
    for (std::size_t b = 0; b < kBuckets; ++b) counts[b] += other.counts[b];
    total += other.total;
    sum += other.sum;
    if (other.max > max) max = other.max;
  }

  double mean() const {
    return total == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(total);
  }
  // Largest bucket index with a nonzero count (0 when empty) — the exported
  // bucket array is trimmed to this.
  std::size_t max_nonzero_bucket() const;
};

// One phase executed by one worker.  Times are microseconds since the run's
// start (the Recorder's construction), so spans from different workers share
// one timeline — exactly what the Chrome-trace exporter needs.
struct Span {
  PhaseId phase = PhaseId::kBuild;
  std::uint32_t tid = 0;
  std::uint64_t begin_us = 0;
  std::uint64_t end_us = 0;

  std::uint64_t duration_us() const { return end_us - begin_us; }
};

// Everything one worker recorded.  A span list ordered by begin time (each
// worker's phases are sequential), counters, and the two per-element
// histograms: CAS retries per inserted element (contention depth) and
// work-allocation probes per claimed job.
struct WorkerReport {
  std::uint32_t tid = 0;
  bool crashed = false;  // the fault plan aborted this worker mid-phase
  std::vector<Span> spans;
  std::array<std::uint64_t, kCounterCount> counters{};
  LogHistogram cas_retries;
  LogHistogram wat_probes;
  // The worker's frozen flight-recorder window (its last ring_total events,
  // truncated to the ring capacity) — the crash post-mortem payload.
  std::vector<FlightEvent> ring;
  std::uint64_t ring_total = 0;

  std::uint64_t counter(Counter c) const {
    return counters[static_cast<std::size_t>(c)];
  }
};

// The immutable snapshot of one run, built after the workers joined.
struct Report {
  Level level = Level::kOff;
  std::uint64_t wall_us = 0;  // run start to snapshot
  std::vector<WorkerReport> workers;

  std::uint64_t counter_total(Counter c) const;
  LogHistogram merged_cas_retries() const;
  LogHistogram merged_wat_probes() const;
  // Longest single-worker span of `phase` in milliseconds (the phase's
  // critical path), 0 when no worker recorded it.
  double phase_max_ms(PhaseId phase) const;
  // Phases at least one worker recorded, in enum order.
  std::vector<PhaseId> phases_present() const;
  // Latency sketch over every recorded span of `phase` (one sample per
  // worker-span, microseconds) — the p50/p99/p999 source for the exported
  // "sketches" section.
  LatencySketch phase_sketch(PhaseId phase) const;
};

}  // namespace wfsort::telemetry
