// Telemetry recording — per-worker scratch and the run-scoped Recorder.
//
// Design rule (docs/observability.md): the engine hot path must not pay for
// observability it did not ask for.  Everything a worker records goes into
// its OWN cache-line-aligned scratch slot — plain, non-atomic memory nobody
// else touches while the run is live — so recording is a handful of local
// stores and the shared state is only read once, by snapshot(), after the
// workers have joined.  With Level::kOff the engine holds no Recorder at
// all and runs the untraced instantiation of its worker program (see
// kTelEnabled below) — the hot path contains no telemetry code whatsoever.
//
// Span recording is crash-correct by construction: a scratch slot keeps at
// most one open span, and the engine closes it from an RAII guard on every
// exit path, so a fault-injected worker leaves a truncated span (begin ..
// abort time) rather than a dangling one — exactly what the adversary
// engine wants to see in a failure artifact's timeline.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>

#include "telemetry/report.h"

namespace wfsort::telemetry {

// The engine's hot functions take their scratch pointer as a *deduced*
// template parameter (`Tel` is either `WorkerScratch*` or `std::nullptr_t`)
// and guard every recording site with `if constexpr (kTelEnabled<Tel>)`, so
// the untraced instantiation compiles to exactly the pre-telemetry code —
// no dead branches, no dead locals, no counter plumbing.
template <typename Tel>
inline constexpr bool kTelEnabled =
    !std::is_same_v<std::remove_cv_t<Tel>, std::nullptr_t>;

// One worker's private recording area.  `detail` mirrors Level::kFull so
// per-element sites can skip histogram work at Level::kPhases without
// consulting the Recorder.  The flight-recorder `ring` is the one exception
// to "nobody else touches a live slot": it is written only by the owning
// worker and read concurrently by observers (the live monitor) through the
// ring's seqlock snapshot — never through this struct's plain fields.
struct alignas(64) WorkerScratch {
  WorkerReport rep;
  FlightRing ring;
  std::chrono::steady_clock::time_point t0{};  // the run's epoch (copied in)
  bool detail = false;

  std::uint64_t open_begin_us = 0;
  PhaseId open_phase = PhaseId::kBuild;
  bool has_open = false;

  std::uint64_t now_us() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  }

  // Append a flight-recorder event stamped with the current run-relative
  // time.  One clock read plus a wait-free ring push.
  void emit(FlightKind kind, std::uint8_t a8, std::uint32_t a32,
            std::uint64_t value) {
    if (ring.capacity() == 0) return;
    ring.push({now_us(), value, a32, static_cast<std::uint16_t>(rep.tid),
               static_cast<std::uint8_t>(kind), a8});
  }

  // Record the worker's own death (adversary kill or fault-plan abort) —
  // the post-mortem marker observers look for.  Emitted by the victim
  // itself, preserving the ring's single-writer rule.
  void mark_crashed(std::uint64_t step) {
    rep.crashed = true;
    emit(FlightKind::kFault, static_cast<std::uint8_t>(FaultCode::kKill), 0,
         step);
  }

  // Begin a phase span, closing the previous one at the same instant (a
  // worker is always in exactly one phase).
  void begin_phase(PhaseId phase) {
    const std::uint64_t now = now_us();
    if (has_open) close_span(now);
    open_phase = phase;
    open_begin_us = now;
    has_open = true;
    if (ring.capacity() != 0) {
      ring.push({now, 0, 0, static_cast<std::uint16_t>(rep.tid),
                 static_cast<std::uint8_t>(FlightKind::kPhaseEnter),
                 static_cast<std::uint8_t>(phase)});
    }
  }

  void end_phase() {
    if (!has_open) return;
    close_span(now_us());
    has_open = false;
  }

  void count(Counter c, std::uint64_t v = 1) {
    rep.counters[static_cast<std::size_t>(c)] += v;
  }

 private:
  void close_span(std::uint64_t now) {
    rep.spans.push_back({open_phase, rep.tid, open_begin_us, now});
    if (ring.capacity() != 0) {
      ring.push({now, now - open_begin_us, 0,
                 static_cast<std::uint16_t>(rep.tid),
                 static_cast<std::uint8_t>(FlightKind::kPhaseExit),
                 static_cast<std::uint8_t>(open_phase)});
    }
  }
};

// Closes the scratch's open span on scope exit — the engine plants one per
// worker invocation so crash returns still truncate the span correctly.
class ScratchCloser {
 public:
  explicit ScratchCloser(WorkerScratch* s) : s_(s) {}
  ~ScratchCloser() {
    if (s_ != nullptr) s_->end_phase();
  }
  ScratchCloser(const ScratchCloser&) = delete;
  ScratchCloser& operator=(const ScratchCloser&) = delete;

 private:
  WorkerScratch* s_;
};

// Owns the scratch slots of one run.  Constructed by the engine when
// Options::telemetry != kOff; slots are preallocated for every worker id the
// run can legally use, so scratch() is an index, never an allocation.
class Recorder {
 public:
  // Default flight-recorder depth per worker (Options::ring_capacity).
  static constexpr std::uint32_t kDefaultRingCapacity = 256;

  Recorder(Level level, std::uint32_t max_workers,
           std::uint32_t ring_capacity = kDefaultRingCapacity);

  // Pool recycling: re-arm an idle Recorder for a new run with zero heap
  // traffic — restamp the epoch, switch the level, and clear every slot in
  // place (span vectors keep their capacity, rings keep their buffers).
  // Call only between runs (slots are unsynchronized by design).
  void reuse(Level level);

  // Whether this Recorder's preallocated shape can serve a run that needs
  // `max_workers` slots with `ring_capacity`-deep rings (reuse() cannot
  // resize; a mismatch means the pool rebuilds the Recorder).
  bool shape_matches(std::uint32_t max_workers,
                     std::uint32_t ring_capacity) const {
    return slot_count_ == max_workers && ring_capacity_ == ring_capacity;
  }

  Level level() const { return level_; }
  bool detail() const { return level_ == Level::kFull; }

  // The worker's slot, or nullptr for ids beyond the preallocated range
  // (callers treat that exactly like telemetry-off).
  WorkerScratch* scratch(std::uint32_t tid) {
    return tid < slot_count_ ? &slots_[tid] : nullptr;
  }

  std::uint64_t now_us() const;

  // Observer access while the run is live: the flight-recorder rings are
  // the ONLY slot state safe to read concurrently (seqlock snapshots; see
  // ring.h).  The live monitor samples through these.
  std::uint32_t slot_count() const { return slot_count_; }
  const FlightRing* ring(std::uint32_t tid) const {
    return tid < slot_count_ ? &slots_[tid].ring : nullptr;
  }

  // Aggregate every active slot into an immutable Report.  Call only after
  // the workers have joined (slots are unsynchronized by design).
  Report snapshot() const;

 private:
  Level level_;
  std::chrono::steady_clock::time_point t0_;
  std::uint32_t slot_count_;
  std::uint32_t ring_capacity_;
  std::unique_ptr<WorkerScratch[]> slots_;
};

}  // namespace wfsort::telemetry
