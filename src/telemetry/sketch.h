// Streaming latency sketches — HDR-style log-linear bucket histograms with
// mergeable snapshots and quantile extraction.
//
// The existing LogHistogram answers "how is per-element work distributed"
// with 32 power-of-two buckets; that is far too coarse for latency SLOs
// (p99 vs p999 usually live inside one octave).  A LatencySketch subdivides
// every octave into 2^kSubBits linear sub-buckets, so any reported quantile
// is within a documented relative error of the exact sample percentile
// (see kRelativeError; test_ring.cpp checks the bound against exact
// percentiles).  Adds are O(1) (a bit_width and two array ops), snapshots
// are plain data, and merge() is bucket-wise addition — exactly what the
// live monitor needs to fold per-worker streams, and what the ROADMAP's
// wfsortd daemon needs for per-tenant p50/p99/p999.
#pragma once

#include <array>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>

namespace wfsort::telemetry {

class LatencySketch {
 public:
  // Sub-bucket resolution: 2^5 = 32 linear buckets per octave.
  static constexpr std::uint32_t kSubBits = 5;
  static constexpr std::uint32_t kSub = 1u << kSubBits;
  // A bucket's representative value (its midpoint) is within half a bucket
  // width of every sample in it; widths are at most value / kSub, so any
  // quantile is within 1/(2*kSub) ≈ 1.6% relative error — documented (and
  // tested) conservatively as 1/kSub ≈ 3.2%.
  static constexpr double kRelativeError = 1.0 / kSub;
  // Values < kSub get exact unit buckets; each octave above contributes kSub
  // buckets, up to the top bit of uint64.
  static constexpr std::size_t kBucketCount =
      static_cast<std::size_t>(65 - kSubBits) << kSubBits;

  void add(std::uint64_t value) {
    ++counts_[bucket_of(value)];
    ++count_;
    sum_ += value;
    if (value > max_) max_ = value;
  }

  void merge(const LatencySketch& other) {
    for (std::size_t b = 0; b < kBucketCount; ++b) counts_[b] += other.counts_[b];
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.max_ > max_) max_ = other.max_;
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  // The q-quantile (q in (0, 1]) as the representative value of the bucket
  // holding the ceil(q * count)-th smallest sample; 0 when empty.
  std::uint64_t quantile(double q) const {
    if (count_ == 0) return 0;
    std::uint64_t rank =
        static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_)));
    if (rank < 1) rank = 1;
    if (rank > count_) rank = count_;
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < kBucketCount; ++b) {
      cum += counts_[b];
      if (cum >= rank) return representative(b);
    }
    return max_;
  }

  static std::size_t bucket_of(std::uint64_t value) {
    if (value < kSub) return static_cast<std::size_t>(value);
    const std::uint32_t shift =
        static_cast<std::uint32_t>(std::bit_width(value)) - 1 - kSubBits;
    return (static_cast<std::size_t>(shift + 1) << kSubBits) |
           static_cast<std::size_t>((value >> shift) & (kSub - 1));
  }

  // Midpoint of the bucket's value range (exact for the unit buckets).
  static std::uint64_t representative(std::size_t bucket) {
    if (bucket < kSub) return bucket;
    const std::uint32_t shift =
        static_cast<std::uint32_t>(bucket >> kSubBits) - 1;
    const std::uint64_t sub = bucket & (kSub - 1);
    const std::uint64_t lo = (static_cast<std::uint64_t>(kSub) + sub) << shift;
    return lo + ((1ull << shift) >> 1);
  }

 private:
  std::array<std::uint64_t, kBucketCount> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace wfsort::telemetry
