// The live monitor — an optional sampler thread that turns the workers'
// flight-recorder rings into a stream of "wfsort-monitor-v1" JSONL records.
//
// The monitor never touches worker scratch: its only channel is the rings'
// seqlock snapshots (ring.h), so sampling can run at any interval while the
// sort is live without adding a single synchronizing instruction to a
// worker's path — the wait-free guarantee is what makes live observation
// free.  Each tick drains every ring incrementally (a per-ring cursor),
// folds phase-exit events into streaming latency sketches (sketch.h),
// tallies contention events by kind, and appends one sample record; stop()
// takes a final drain so even a run shorter than the interval produces a
// complete session.
//
// File format (validated by schema.h validate_monitor_jsonl, rendered by
// `wfsort report`): one session per run, a "header" record (schema,
// build_type provenance, source substrate, run config echo) followed by
// "sample" records.  Appending is deliberate — a bench run writes one
// session per rep into the same file.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "telemetry/recorder.h"
#include "telemetry/ring.h"
#include "telemetry/sketch.h"

namespace wfsort::telemetry {

class Monitor {
 public:
  struct Config {
    std::string path;               // JSONL sink, opened in append mode
    std::uint32_t interval_ms = 50; // sampling period
    std::string source = "native";  // "native" | "sim"
    Json config = Json::object();   // run-config echo for the header record
  };

  // Native form: sample every ring the recorder owns.  The recorder must
  // outlive the monitor.
  Monitor(const Recorder* recorder, Config cfg);
  // Sim / custom form: sample an explicit ring set (rings must outlive the
  // monitor; each ring still has exactly one writer elsewhere).
  Monitor(std::vector<const FlightRing*> rings, Config cfg);
  ~Monitor();

  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  // False when the sink could not be opened; start()/stop() are no-ops then.
  bool ok() const { return ok_; }

  void start();
  // Final drain + closing sample, then joins the sampler and flushes.
  void stop();

  // Record one finished job's latency (a whole sort call) into the per-job
  // sketch.  Thread-safe against the sampler.
  void note_job(std::uint64_t duration_us);

  std::uint64_t samples() const { return samples_; }

 private:
  void run_loop();
  void take_sample(bool final_sample);
  void drain_rings();
  Json sample_json(bool final_sample);

  std::vector<const FlightRing*> rings_;
  Config cfg_;
  std::ofstream out_;
  bool ok_ = false;
  bool started_ = false;
  bool stopped_ = false;

  std::thread thread_;
  std::mutex mu_;  // guards stop flag + job sketch + sample state handoff
  std::condition_variable cv_;
  bool stop_requested_ = false;

  std::chrono::steady_clock::time_point t0_{};
  std::uint64_t samples_ = 0;

  // Sampler-owned stream state (touched under mu_ only for note_job's jobs_).
  std::vector<std::uint64_t> cursors_;
  LatencySketch phase_lat_[kPhaseCount];
  LatencySketch jobs_;
  std::uint64_t events_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t counts_[static_cast<std::size_t>(FlightKind::kKindCount)] = {};
  std::uint64_t sim_round_ = 0;  // high-water round seen in kSimRound events
};

}  // namespace wfsort::telemetry
