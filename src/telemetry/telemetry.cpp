#include "telemetry/recorder.h"
#include "telemetry/report.h"

#include <algorithm>

namespace wfsort::telemetry {

const char* level_name(Level level) {
  switch (level) {
    case Level::kOff: return "off";
    case Level::kPhases: return "phases";
    case Level::kFull: return "full";
  }
  return "?";
}

bool parse_level(const std::string& name, Level* out) {
  if (name == "off") *out = Level::kOff;
  else if (name == "phases") *out = Level::kPhases;
  else if (name == "full") *out = Level::kFull;
  else return false;
  return true;
}

const char* phase_name(PhaseId phase) {
  switch (phase) {
    case PhaseId::kBuild: return "build";
    case PhaseId::kSum: return "sum";
    case PhaseId::kPlace: return "place";
    case PhaseId::kCopyBack: return "copy_back";
    case PhaseId::kLcPresort: return "lc_presort";
    case PhaseId::kLcWinner: return "lc_winner";
    case PhaseId::kLcSortedIdx: return "lc_sorted_idx";
    case PhaseId::kLcFatten: return "lc_fatten";
    case PhaseId::kLcInsert: return "lc_insert";
    case PhaseId::kPartClassify: return "part_classify";
    case PhaseId::kPartScatter: return "part_scatter";
    case PhaseId::kPartSort: return "part_sort";
    case PhaseId::kPhaseCount: break;
  }
  return "?";
}

const char* counter_name(Counter counter) {
  switch (counter) {
    case Counter::kCasInstalls: return "cas_installs";
    case Counter::kCasFailures: return "cas_failures";
    case Counter::kWatClaims: return "wat_claims";
    case Counter::kWatProbes: return "wat_probes";
    case Counter::kFatHits: return "fat_hits";
    case Counter::kFatMisses: return "fat_misses";
    case Counter::kSeqBlocks: return "seq_blocks";
    case Counter::kSeqBlockElems: return "seq_block_elems";
    case Counter::kSeqBlockRepeats: return "seq_block_repeats";
    case Counter::kLcProbes: return "lc_probes";
    case Counter::kLcBurstVisits: return "lc_burst_visits";
    case Counter::kBackoffSpins: return "backoff_spins";
    case Counter::kLeafBlocks: return "leaf_blocks";
    case Counter::kLeafInsertionSorts: return "leaf_insertion_sorts";
    case Counter::kLeafHeapsorts: return "leaf_heapsorts";
    case Counter::kPartitionSwaps: return "partition_swaps";
    case Counter::kSplitterSamples: return "splitter_samples";
    case Counter::kCounterCount: break;
  }
  return "?";
}

const char* flight_kind_name(FlightKind kind) {
  switch (kind) {
    case FlightKind::kPhaseEnter: return "phase_enter";
    case FlightKind::kPhaseExit: return "phase_exit";
    case FlightKind::kWatClaim: return "wat_claim";
    case FlightKind::kCasFailBurst: return "cas_fail_burst";
    case FlightKind::kLeafBlock: return "leaf_block";
    case FlightKind::kFault: return "fault";
    case FlightKind::kSimOp: return "sim_op";
    case FlightKind::kSimRound: return "sim_round";
    case FlightKind::kKindCount: break;
  }
  return "?";
}

const char* fault_code_name(FaultCode code) {
  switch (code) {
    case FaultCode::kKill: return "kill";
    case FaultCode::kSuspend: return "suspend";
    case FaultCode::kRevive: return "revive";
  }
  return "?";
}

std::size_t LogHistogram::max_nonzero_bucket() const {
  for (std::size_t b = kBuckets; b-- > 0;) {
    if (counts[b] != 0) return b;
  }
  return 0;
}

std::uint64_t Report::counter_total(Counter c) const {
  std::uint64_t t = 0;
  for (const WorkerReport& w : workers) t += w.counter(c);
  return t;
}

LogHistogram Report::merged_cas_retries() const {
  LogHistogram h;
  for (const WorkerReport& w : workers) h.merge(w.cas_retries);
  return h;
}

LogHistogram Report::merged_wat_probes() const {
  LogHistogram h;
  for (const WorkerReport& w : workers) h.merge(w.wat_probes);
  return h;
}

double Report::phase_max_ms(PhaseId phase) const {
  std::uint64_t best_us = 0;
  for (const WorkerReport& w : workers) {
    for (const Span& s : w.spans) {
      if (s.phase == phase) best_us = std::max(best_us, s.duration_us());
    }
  }
  return static_cast<double>(best_us) / 1000.0;
}

std::vector<PhaseId> Report::phases_present() const {
  bool seen[kPhaseCount] = {};
  for (const WorkerReport& w : workers) {
    for (const Span& s : w.spans) seen[static_cast<std::size_t>(s.phase)] = true;
  }
  std::vector<PhaseId> out;
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    if (seen[p]) out.push_back(static_cast<PhaseId>(p));
  }
  return out;
}

LatencySketch Report::phase_sketch(PhaseId phase) const {
  LatencySketch sk;
  for (const WorkerReport& w : workers) {
    for (const Span& s : w.spans) {
      if (s.phase == phase) sk.add(s.duration_us());
    }
  }
  return sk;
}

Recorder::Recorder(Level level, std::uint32_t max_workers,
                   std::uint32_t ring_capacity)
    : level_(level),
      t0_(std::chrono::steady_clock::now()),
      slot_count_(max_workers),
      ring_capacity_(ring_capacity),
      slots_(new WorkerScratch[max_workers]) {
  for (std::uint32_t tid = 0; tid < slot_count_; ++tid) {
    slots_[tid].rep.tid = tid;
    slots_[tid].ring.reset(ring_capacity);
    slots_[tid].t0 = t0_;
    slots_[tid].detail = detail();
  }
}

void Recorder::reuse(Level level) {
  level_ = level;
  t0_ = std::chrono::steady_clock::now();
  for (std::uint32_t tid = 0; tid < slot_count_; ++tid) {
    WorkerScratch& s = slots_[tid];
    s.rep.crashed = false;
    s.rep.spans.clear();         // keeps capacity
    s.rep.counters.fill(0);
    s.rep.cas_retries = {};
    s.rep.wat_probes = {};
    s.rep.ring.clear();          // keeps capacity
    s.rep.ring_total = 0;
    s.ring.clear();              // keeps the slot buffer
    s.t0 = t0_;
    s.detail = detail();
    s.has_open = false;
  }
}

std::uint64_t Recorder::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0_)
          .count());
}

Report Recorder::snapshot() const {
  Report rep;
  rep.level = level_;
  rep.wall_us = now_us();
  for (std::uint32_t tid = 0; tid < slot_count_; ++tid) {
    const WorkerReport& w = slots_[tid].rep;
    const bool active =
        !w.spans.empty() || w.crashed ||
        std::any_of(w.counters.begin(), w.counters.end(),
                    [](std::uint64_t c) { return c != 0; });
    if (active) {
      rep.workers.push_back(w);
      // Freeze the worker's flight-recorder window into the report — the
      // post-mortem payload a failure artifact serializes.
      rep.workers.back().ring = slots_[tid].ring.snapshot();
      rep.workers.back().ring_total = slots_[tid].ring.total();
    }
  }
  return rep;
}

}  // namespace wfsort::telemetry
