#include "telemetry/schema.h"

#include <algorithm>

#include "core/options.h"
#include "pram/machine.h"
#include "pram/metrics.h"

namespace wfsort::telemetry {
namespace {

const char* prune_name(PrunePlaced prune) {
  switch (prune) {
    case PrunePlaced::kNo: return "no";
    case PrunePlaced::kYes: return "yes";
    case PrunePlaced::kDone: return "done";
  }
  return "?";
}

const char* phase1_name(Phase1 phase1) {
  switch (phase1) {
    case Phase1::kTree: return "tree";
    case Phase1::kPartition: return "partition";
  }
  return "?";
}

// Shared provenance check for stats documents and the bench/scaling
// envelopes.  A missing build_type (pre-provenance documents) is tolerated
// unless the caller demands a release build.
bool check_build_type(const Json& doc, bool require_release,
                      std::string* error) {
  const Json* bt = doc.find("build_type");
  if (bt == nullptr) {
    if (require_release) {
      *error = "missing key: build_type (release provenance required)";
      return false;
    }
    return true;
  }
  if (bt->type() != Json::Type::kString) {
    *error = "wrong type for key: build_type";
    return false;
  }
  if (require_release && bt->as_string() != "release") {
    *error = "build_type is \"" + bt->as_string() +
             "\" but a release build is required";
    return false;
  }
  return true;
}

// The native contention sites: counters that each count one absorbed
// memory-contention event on a distinct shared structure.
constexpr Counter kContentionSites[] = {
    Counter::kCasFailures,
    Counter::kWatProbes,
    Counter::kFatMisses,
    Counter::kSeqBlockRepeats,
    Counter::kLcProbes,
};

Json native_contention_json(const SortStats& stats, const Report* rep) {
  Json sites = Json::object();
  if (rep != nullptr && rep->level == Level::kFull) {
    for (Counter c : kContentionSites) {
      sites.set(counter_name(c), rep->counter_total(c));
    }
  } else {
    sites.set(counter_name(Counter::kCasFailures), stats.cas_failures);
    sites.set(counter_name(Counter::kFatMisses), stats.fat_read_misses);
  }
  const char* max_site = "";
  std::uint64_t max_value = 0;
  bool first = true;
  for (const auto& [key, value] : sites.object_items()) {
    const std::uint64_t v = value.as_u64();
    if (first || v > max_value) {
      max_site = key.c_str();
      max_value = v;
      first = false;
    }
  }
  Json out = Json::object();
  out.set("max_site", std::string(max_site));
  out.set("max_value", max_value);
  out.set("sites", std::move(sites));
  return out;
}

bool check_key(const Json& doc, const char* key, Json::Type type,
               std::string* error) {
  const Json* v = doc.find(key);
  if (v == nullptr) {
    *error = std::string("missing key: ") + key;
    return false;
  }
  if (v->type() != type) {
    *error = std::string("wrong type for key: ") + key;
    return false;
  }
  return true;
}

}  // namespace

NativeRunInfo native_run_info(const Options& opts, std::uint64_t n) {
  NativeRunInfo info;
  info.variant = opts.variant == Variant::kDeterministic ? "det" : "lc";
  info.n = n;
  info.threads = opts.resolved_threads();
  info.seed = opts.seed;
  info.wat_batch = opts.wat_batch;
  info.seq_cutoff = opts.seq_cutoff;
  info.lc_copies = opts.lc_copies;
  info.prune = prune_name(opts.prune);
  info.phase1 = phase1_name(opts.phase1);
  info.level = opts.telemetry;
  return info;
}

Json histogram_json(const LogHistogram& h) {
  Json out = Json::object();
  out.set("kind", "log2");
  out.set("total", h.total);
  out.set("sum", h.sum);
  out.set("max", h.max);
  out.set("mean", h.mean());
  Json counts = Json::array();
  const std::size_t last = h.max_nonzero_bucket();
  for (std::size_t b = 0; b <= last; ++b) counts.push_back(h.counts[b]);
  out.set("counts", std::move(counts));
  return out;
}

Json sketch_json(const LatencySketch& sk) {
  Json out = Json::object();
  out.set("kind", "loglin");
  out.set("sub_bits", static_cast<std::uint64_t>(LatencySketch::kSubBits));
  out.set("count", sk.count());
  out.set("sum", sk.sum());
  out.set("max_us", sk.max());
  out.set("mean_us", sk.mean());
  out.set("p50_us", sk.quantile(0.50));
  out.set("p99_us", sk.quantile(0.99));
  out.set("p999_us", sk.quantile(0.999));
  return out;
}

Json flight_event_json(const FlightEvent& e) {
  Json out = Json::object();
  out.set("t", e.t);
  out.set("kind", flight_kind_name(e.flight_kind()));
  out.set("a8", static_cast<std::uint64_t>(e.a8));
  out.set("a32", static_cast<std::uint64_t>(e.a32));
  out.set("value", e.value);
  out.set("tid", static_cast<std::uint64_t>(e.tid));
  return out;
}

Json native_stats_json(const NativeRunInfo& info, const SortStats& stats) {
  const Report* rep = stats.telemetry.get();

  Json doc = Json::object();
  doc.set("schema", kStatsSchema);
  doc.set("substrate", "native");
  doc.set("build_type", build_type_name());

  Json config = Json::object();
  config.set("variant", info.variant);
  config.set("n", info.n);
  config.set("threads", static_cast<std::uint64_t>(info.threads));
  config.set("seed", info.seed);
  config.set("wat_batch", static_cast<std::uint64_t>(info.wat_batch));
  config.set("seq_cutoff", info.seq_cutoff);
  config.set("lc_copies", static_cast<std::uint64_t>(info.lc_copies));
  config.set("prune", info.prune);
  config.set("phase1", info.phase1);
  config.set("telemetry",
             level_name(rep != nullptr ? rep->level : info.level));
  doc.set("config", std::move(config));

  Json totals = Json::object();
  totals.set("wall_ms",
             rep != nullptr
                 ? static_cast<double>(rep->wall_us) / 1000.0
                 : stats.phase1_ms + stats.phase2_ms + stats.phase3_ms);
  totals.set("workers", static_cast<std::uint64_t>(stats.workers));
  totals.set("crashed_workers", static_cast<std::uint64_t>(stats.crashed_workers));
  totals.set("completed_workers", static_cast<std::uint64_t>(stats.completed_workers));
  totals.set("tree_depth", static_cast<std::uint64_t>(stats.tree_depth));
  totals.set("max_build_iters", stats.max_build_iters);
  totals.set("total_build_iters", stats.total_build_iters);
  totals.set("cas_successes", stats.cas_successes);
  doc.set("totals", std::move(totals));

  Json phases = Json::array();
  if (rep != nullptr && rep->level != Level::kOff) {
    for (PhaseId p : rep->phases_present()) {
      std::uint64_t total_us = 0;
      std::uint64_t max_us = 0;
      std::uint32_t workers = 0;
      for (const WorkerReport& w : rep->workers) {
        bool any = false;
        for (const Span& s : w.spans) {
          if (s.phase != p) continue;
          any = true;
          total_us += s.duration_us();
          max_us = std::max(max_us, s.duration_us());
        }
        if (any) ++workers;
      }
      Json ph = Json::object();
      ph.set("name", phase_name(p));
      ph.set("max_ms", static_cast<double>(max_us) / 1000.0);
      ph.set("total_ms", static_cast<double>(total_us) / 1000.0);
      ph.set("workers", static_cast<std::uint64_t>(workers));
      phases.push_back(std::move(ph));
    }
  } else {
    // Always-on fallback: the engine's three coarse phase clocks.
    const std::pair<const char*, double> coarse[] = {
        {"build", stats.phase1_ms},
        {"sum", stats.phase2_ms},
        {"place", stats.phase3_ms},
    };
    for (const auto& [name, ms] : coarse) {
      Json ph = Json::object();
      ph.set("name", name);
      ph.set("max_ms", ms);
      ph.set("total_ms", ms);
      ph.set("workers", static_cast<std::uint64_t>(stats.completed_workers));
      phases.push_back(std::move(ph));
    }
  }
  doc.set("phases", std::move(phases));

  Json counters = Json::object();
  if (rep != nullptr && rep->level == Level::kFull) {
    for (std::size_t c = 0; c < kCounterCount; ++c) {
      counters.set(counter_name(static_cast<Counter>(c)),
                   rep->counter_total(static_cast<Counter>(c)));
    }
  } else {
    counters.set("cas_installs", stats.cas_successes);
    counters.set("cas_failures", stats.cas_failures);
    counters.set("fat_misses", stats.fat_read_misses);
  }
  doc.set("counters", std::move(counters));

  Json hists = Json::object();
  if (rep != nullptr && rep->level == Level::kFull) {
    hists.set("cas_retries", histogram_json(rep->merged_cas_retries()));
    hists.set("wat_probes", histogram_json(rep->merged_wat_probes()));
  }
  doc.set("histograms", std::move(hists));

  // Per-phase latency sketches (one sample per worker-span): the p50/p99/
  // p999 block the sort-as-a-service story keys on.
  Json sketches = Json::object();
  if (rep != nullptr && rep->level != Level::kOff) {
    for (PhaseId p : rep->phases_present()) {
      sketches.set(phase_name(p), sketch_json(rep->phase_sketch(p)));
    }
  }
  doc.set("sketches", std::move(sketches));

  doc.set("contention", native_contention_json(stats, rep));

  // Crash post-mortems: the frozen flight-recorder window of every worker
  // that died mid-run (empty array on clean runs and at Level::kOff).
  Json rings = Json::array();
  if (rep != nullptr) {
    for (const WorkerReport& w : rep->workers) {
      if (!w.crashed || w.ring.empty()) continue;
      Json r = Json::object();
      r.set("tid", static_cast<std::uint64_t>(w.tid));
      r.set("total_events", w.ring_total);
      Json events = Json::array();
      for (const FlightEvent& e : w.ring) events.push_back(flight_event_json(e));
      r.set("events", std::move(events));
      rings.push_back(std::move(r));
    }
  }
  doc.set("rings", std::move(rings));
  return doc;
}

Json sim_stats_json(const SimRunInfo& info, const pram::Metrics& metrics,
                    const pram::CommitStats* commit) {
  Json doc = Json::object();
  doc.set("schema", kStatsSchema);
  doc.set("substrate", "sim");
  doc.set("build_type", build_type_name());

  Json config = Json::object();
  config.set("program", info.program);
  config.set("n", info.n);
  config.set("procs", static_cast<std::uint64_t>(info.procs));
  config.set("sched", info.sched);
  config.set("seed", info.seed);
  config.set("engine", info.sim_threads > 1 ? "par" : "seq");
  config.set("sim_threads", static_cast<std::uint64_t>(info.sim_threads));
  doc.set("config", std::move(config));

  Json totals = Json::object();
  totals.set("rounds", metrics.rounds());
  totals.set("total_ops", metrics.total_ops());
  totals.set("qrqw_time", metrics.qrqw_time());
  totals.set("stalls", metrics.stalls());
  totals.set("max_proc_ops", metrics.max_proc_ops());
  totals.set("max_finish_steps", metrics.max_finish_steps());
  doc.set("totals", std::move(totals));

  // Per-shard busy-time spans for parallel runs (sequential runs keep the
  // empty phases array the schema has always emitted).
  Json phases = Json::array();
  if (commit != nullptr && info.sim_threads > 1) {
    for (std::size_t t = 0; t < commit->shard_busy_ns.size(); ++t) {
      const double ms = static_cast<double>(commit->shard_busy_ns[t]) / 1e6;
      Json ph = Json::object();
      ph.set("name", "shard" + std::to_string(t));
      ph.set("max_ms", ms);
      ph.set("total_ms", ms);
      ph.set("workers", std::uint64_t{1});
      phases.push_back(std::move(ph));
    }
  }
  doc.set("phases", std::move(phases));

  Json counters = Json::object();
  counters.set("total_ops", metrics.total_ops());
  counters.set("stalls", metrics.stalls());
  if (commit != nullptr && info.sim_threads > 1) {
    Json sc = Json::object();
    sc.set("par_rounds", commit->par_rounds);
    sc.set("seq_rounds", commit->seq_rounds);
    sc.set("shards", static_cast<std::uint64_t>(commit->shards));
    sc.set("collect_ns", commit->collect_ns);
    sc.set("group_ns", commit->group_ns);
    sc.set("arb_ns", commit->arb_ns);
    sc.set("serve_ns", commit->serve_ns);
    sc.set("merge_ns", commit->merge_ns);
    counters.set("sim_commit", std::move(sc));
  }
  doc.set("counters", std::move(counters));

  Json hists = Json::object();
  {
    const wfsort::Histogram& h = metrics.contention_histogram();
    Json hj = Json::object();
    hj.set("kind", "linear");
    hj.set("total", h.total());
    hj.set("buckets", static_cast<std::uint64_t>(h.buckets()));
    Json counts = Json::array();
    const std::size_t last = h.max_nonzero();
    for (std::size_t b = 0; b <= last; ++b) counts.push_back(h.count(b));
    hj.set("counts", std::move(counts));
    hists.set("cell_contention", std::move(hj));
  }
  doc.set("histograms", std::move(hists));

  Json contention = Json::object();
  contention.set("max_value",
                 static_cast<std::uint64_t>(metrics.max_cell_contention()));
  contention.set("hottest_addr", metrics.hottest_addr());
  contention.set("hottest_round", metrics.hottest_round());
  Json attribution = Json::object();
  for (const auto& [region, value] : metrics.region_contention()) {
    attribution.set(region, static_cast<std::uint64_t>(value));
  }
  contention.set("attribution", std::move(attribution));
  doc.set("contention", std::move(contention));
  return doc;
}

bool validate_stats_json(const Json& doc, std::string* error,
                         bool require_release) {
  error->clear();
  if (doc.type() != Json::Type::kObject) {
    *error = "stats document is not an object";
    return false;
  }
  if (!check_key(doc, "schema", Json::Type::kString, error)) return false;
  if (doc.at("schema").as_string() != kStatsSchema) {
    *error = "unexpected schema: " + doc.at("schema").as_string();
    return false;
  }
  if (!check_build_type(doc, require_release, error)) return false;
  if (!check_key(doc, "substrate", Json::Type::kString, error)) return false;
  const std::string& substrate = doc.at("substrate").as_string();
  if (substrate != "native" && substrate != "sim") {
    *error = "unexpected substrate: " + substrate;
    return false;
  }
  if (!check_key(doc, "config", Json::Type::kObject, error)) return false;
  if (substrate == "sim") {
    // A run stamped as parallel-engine must say how parallel: downstream
    // throughput comparisons are meaningless without the shard count, so
    // reject engine="par" documents that omit or contradict it.
    const Json& config = doc.at("config");
    const Json* engine = config.find("engine");
    if (engine != nullptr && engine->type() == Json::Type::kString &&
        engine->as_string() == "par") {
      const Json* threads = config.find("sim_threads");
      if (threads == nullptr) {
        *error = "sim config has engine=par but no sim_threads";
        return false;
      }
      if (threads->as_u64() < 2) {
        *error = "sim config has engine=par but sim_threads < 2";
        return false;
      }
    }
  }
  if (!check_key(doc, "totals", Json::Type::kObject, error)) return false;
  if (!check_key(doc, "phases", Json::Type::kArray, error)) return false;
  if (!check_key(doc, "counters", Json::Type::kObject, error)) return false;
  if (!check_key(doc, "histograms", Json::Type::kObject, error)) return false;
  if (!check_key(doc, "contention", Json::Type::kObject, error)) return false;

  for (const Json& ph : doc.at("phases").items()) {
    if (!check_key(ph, "name", Json::Type::kString, error)) return false;
    if (ph.find("max_ms") == nullptr) {
      *error = "phase entry missing max_ms";
      return false;
    }
  }
  for (const auto& [name, h] : doc.at("histograms").object_items()) {
    if (h.type() != Json::Type::kObject ||
        !check_key(h, "kind", Json::Type::kString, error) ||
        !check_key(h, "counts", Json::Type::kArray, error)) {
      if (error->empty()) *error = "malformed histogram: " + name;
      else *error = "histogram " + name + ": " + *error;
      return false;
    }
  }
  const Json& contention = doc.at("contention");
  if (contention.find("max_value") == nullptr) {
    *error = "contention missing max_value";
    return false;
  }
  // "sketches" and "rings" postdate the v1 documents already committed, so
  // absence is tolerated — but a present key must have the right shape.
  if (const Json* sketches = doc.find("sketches"); sketches != nullptr) {
    if (sketches->type() != Json::Type::kObject) {
      *error = "wrong type for key: sketches";
      return false;
    }
    for (const auto& [name, sk] : sketches->object_items()) {
      if (sk.type() != Json::Type::kObject || sk.find("p50_us") == nullptr ||
          sk.find("p99_us") == nullptr || sk.find("p999_us") == nullptr) {
        *error = "malformed sketch: " + name;
        return false;
      }
    }
  }
  if (const Json* rings = doc.find("rings"); rings != nullptr) {
    if (rings->type() != Json::Type::kArray) {
      *error = "wrong type for key: rings";
      return false;
    }
    for (const Json& r : rings->items()) {
      if (r.type() != Json::Type::kObject || r.find("tid") == nullptr ||
          r.find("events") == nullptr) {
        *error = "malformed post-mortem ring entry";
        return false;
      }
    }
  }
  return true;
}

const char* build_type_name() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

Json make_bench_doc() {
  Json doc = Json::object();
  doc.set("schema", kBenchSchema);
  doc.set("build_type", build_type_name());
  // Envelope-level measurement caveats: stated once here so individual docs
  // and reports don't need to repeat them as footnotes.
  Json caveats = Json::object();
  caveats.set("library_build_type",
              "google-benchmark's context.library_build_type describes the "
              "distro libbenchmark package (often \"debug\"), NOT this "
              "repo's binaries; wfsort provenance is this envelope's "
              "build_type and the wfsort_build_type benchmark counter");
  doc.set("caveats", std::move(caveats));
  doc.set("runs", Json::array());
  return doc;
}

bool validate_bench_json(const Json& doc, std::string* error,
                         bool require_release) {
  error->clear();
  if (doc.type() != Json::Type::kObject) {
    *error = "bench document is not an object";
    return false;
  }
  if (!check_key(doc, "schema", Json::Type::kString, error)) return false;
  if (doc.at("schema").as_string() != kBenchSchema) {
    *error = "unexpected schema: " + doc.at("schema").as_string();
    return false;
  }
  if (!check_build_type(doc, require_release, error)) return false;
  if (!check_key(doc, "runs", Json::Type::kArray, error)) return false;
  for (const Json& run : doc.at("runs").items()) {
    if (!validate_stats_json(run, error)) return false;
  }
  // Optional "pool" group (`wfsort bench --pool`): the SortPool lifetime
  // counters, plus the --back-to-back small-N cold-vs-pooled sweep rows
  // when present.
  if (const Json* pool = doc.find("pool"); pool != nullptr) {
    if (pool->type() != Json::Type::kObject) {
      *error = "pool group is not an object";
      return false;
    }
    static constexpr const char* kPoolKeys[] = {
        "threads",         "runs",
        "caller_only_runs", "detached_jobs",
        "bypass_runs",     "arena_reuse_bytes",
        "arena_grow_events", "arena_held_bytes",
        "wake_ns"};
    for (const char* key : kPoolKeys) {
      if (!check_key(*pool, key, Json::Type::kInt, error)) {
        *error = "pool: " + *error;
        return false;
      }
    }
    if (const Json* sweep = pool->find("small_n"); sweep != nullptr) {
      if (sweep->type() != Json::Type::kArray) {
        *error = "pool.small_n is not an array";
        return false;
      }
      for (const Json& row : sweep->items()) {
        if (row.type() != Json::Type::kObject) {
          *error = "pool.small_n row is not an object";
          return false;
        }
        if (!check_key(row, "n", Json::Type::kInt, error) ||
            !check_key(row, "threads", Json::Type::kInt, error) ||
            !check_key(row, "reps", Json::Type::kInt, error) ||
            !check_key(row, "cold_ms", Json::Type::kDouble, error) ||
            !check_key(row, "pooled_ms", Json::Type::kDouble, error) ||
            !check_key(row, "speedup", Json::Type::kDouble, error)) {
          *error = "pool.small_n row: " + *error;
          return false;
        }
      }
    }
  }
  return true;
}

Json make_scaling_doc() {
  Json doc = Json::object();
  doc.set("schema", kScalingSchema);
  doc.set("build_type", build_type_name());
  doc.set("config", Json::object());
  doc.set("threads", Json::array());
  doc.set("variants", Json::object());
  return doc;
}

bool validate_scaling_json(const Json& doc, std::string* error,
                           bool require_release) {
  error->clear();
  if (doc.type() != Json::Type::kObject) {
    *error = "scaling document is not an object";
    return false;
  }
  if (!check_key(doc, "schema", Json::Type::kString, error)) return false;
  if (doc.at("schema").as_string() != kScalingSchema) {
    *error = "unexpected schema: " + doc.at("schema").as_string();
    return false;
  }
  if (!check_build_type(doc, require_release, error)) return false;
  if (!check_key(doc, "config", Json::Type::kObject, error)) return false;
  if (!check_key(doc, "threads", Json::Type::kArray, error)) return false;
  if (doc.at("threads").items().empty()) {
    *error = "threads sweep is empty";
    return false;
  }
  if (!check_key(doc, "variants", Json::Type::kObject, error)) return false;
  for (const auto& [variant, vdoc] : doc.at("variants").object_items()) {
    if (vdoc.type() != Json::Type::kObject) {
      *error = "variant " + variant + " is not an object";
      return false;
    }
    if (!check_key(vdoc, "points", Json::Type::kArray, error)) {
      *error = "variant " + variant + ": " + *error;
      return false;
    }
    for (const Json& pt : vdoc.at("points").items()) {
      if (pt.type() != Json::Type::kObject ||
          pt.find("threads") == nullptr || pt.find("wall_ms") == nullptr ||
          pt.find("speedup") == nullptr) {
        *error = "variant " + variant +
                 ": point missing threads/wall_ms/speedup";
        return false;
      }
      const Json* contention = pt.find("contention");
      if (contention == nullptr ||
          contention->type() != Json::Type::kObject ||
          contention->find("max_site") == nullptr ||
          contention->find("max_value") == nullptr) {
        *error = "variant " + variant + ": point missing contention summary";
        return false;
      }
    }
  }
  return true;
}

bool validate_monitor_jsonl(const std::string& text, std::string* error,
                            bool require_release) {
  error->clear();
  bool in_session = false;
  std::size_t headers = 0;
  std::size_t samples = 0;
  std::size_t lineno = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::string line = text.substr(
        pos, nl == std::string::npos ? std::string::npos : nl - pos);
    pos = nl == std::string::npos ? text.size() + 1 : nl + 1;
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    std::string perr;
    const Json rec = Json::parse(line, &perr);
    if (!perr.empty()) {
      *error = "line " + std::to_string(lineno) + ": " + perr;
      return false;
    }
    const auto fail = [&](const std::string& why) {
      *error = "line " + std::to_string(lineno) + ": " + why;
      return false;
    };
    if (rec.type() != Json::Type::kObject) return fail("record is not an object");
    if (!check_key(rec, "schema", Json::Type::kString, error) ||
        !check_key(rec, "record", Json::Type::kString, error)) {
      return fail(*error);
    }
    if (rec.at("schema").as_string() != kMonitorSchema) {
      return fail("unexpected schema: " + rec.at("schema").as_string());
    }
    const std::string& kind = rec.at("record").as_string();
    if (kind == "header") {
      // Provenance is per header, exactly like the bench envelopes — and a
      // monitor file without it is rejected outright under require_release.
      if (!check_build_type(rec, require_release, error)) return fail(*error);
      if (rec.find("build_type") == nullptr) {
        return fail("missing key: build_type (monitor provenance)");
      }
      if (!check_key(rec, "source", Json::Type::kString, error) ||
          !check_key(rec, "interval_ms", Json::Type::kInt, error) ||
          !check_key(rec, "config", Json::Type::kObject, error)) {
        return fail(*error);
      }
      in_session = true;
      ++headers;
    } else if (kind == "sample") {
      if (!in_session) return fail("sample record before any header");
      for (const char* key : {"seq", "t_ms", "events", "dropped",
                              "workers_active"}) {
        if (!check_key(rec, key, Json::Type::kInt, error)) return fail(*error);
      }
      if (!check_key(rec, "counters", Json::Type::kObject, error) ||
          !check_key(rec, "phases", Json::Type::kObject, error)) {
        return fail(*error);
      }
      for (const auto& [name, ph] : rec.at("phases").object_items()) {
        if (ph.type() != Json::Type::kObject || ph.find("count") == nullptr ||
            ph.find("p50_us") == nullptr || ph.find("p99_us") == nullptr ||
            ph.find("p999_us") == nullptr) {
          return fail("malformed phase sketch: " + name);
        }
      }
      ++samples;
    } else {
      return fail("unexpected record kind: " + kind);
    }
  }
  if (headers == 0) {
    *error = "no header record";
    return false;
  }
  if (samples == 0) {
    *error = "no sample records";
    return false;
  }
  return true;
}

}  // namespace wfsort::telemetry
