// The flight recorder's wait-free event ring — the one ring implementation
// used repo-wide (per-worker native flight recorders, the PRAM RingTracer,
// the live monitor's feed).
//
// Concurrency contract (docs/observability.md "Live monitoring & flight
// recorder"): exactly ONE writer per ring — the owning worker — and any
// number of concurrent observers.  The writer stores the event's words with
// relaxed atomics and then publishes by a release store of the sequence
// counter; it never reads observer state, never loops, never waits — a push
// is a fixed number of its own stores, so instrumenting a wait-free worker
// keeps it wait-free.  An observer snapshots seqlock-style: read the
// published count (acquire), copy the window, re-read the count, and keep
// only events whose slot provably was not rewritten during the copy.  Torn
// copies are discarded and the read retried a bounded number of times — the
// observer can fail to see the oldest events of a fast-moving ring, but it
// can never block the writer or return a torn event.
//
// Slot storage is an array of std::atomic<uint64_t> words (relaxed ops), not
// plain memory: the algorithm would be correct on plain memory too on every
// target we build for, but the concurrent slot reuse would be a formal data
// race — this way TSan agrees the ring is clean (test_ring.cpp tortures it).
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

namespace wfsort::telemetry {

// Single-writer multi-observer ring of trivially-copyable events.  The
// logical capacity (how many most-recent events a read can return) is kept
// exactly as requested; the slot array is padded to a power of two STRICTLY
// greater than the capacity — the index stays a mask, and the spare slot
// absorbs the seqlock's one-slot ambiguity (the writer may be mid-push of
// the unpublished event `now`, so event now - slots_ is never provably
// untorn; with slots_ > capacity that event is already outside the logical
// window).  Capacity 0 records nothing but still counts total() — the
// RingTracer's "count only" mode.
template <typename T>
class FixedRing {
  static_assert(std::is_trivially_copyable_v<T>,
                "ring events are copied word-wise");

 public:
  FixedRing() = default;
  explicit FixedRing(std::size_t capacity) { reset(capacity); }

  FixedRing(const FixedRing&) = delete;
  FixedRing& operator=(const FixedRing&) = delete;

  // Drop all contents and (re)size.  Not safe concurrently with push/reads —
  // call before the writer starts (the Recorder sizes rings at construction).
  void reset(std::size_t capacity) {
    capacity_ = capacity;
    slots_ = capacity == 0 ? 0 : std::bit_ceil(capacity + 1);
    mask_ = slots_ == 0 ? 0 : slots_ - 1;
    buf_ = capacity == 0
               ? nullptr
               : std::make_unique<std::atomic<std::uint64_t>[]>(slots_ * kWords);
    seq_.store(0, std::memory_order_relaxed);
  }

  // Drop all contents but KEEP the slot buffer (pool recycling: rings are
  // sized once and cleared between runs with zero heap traffic).  Same
  // concurrency caveat as reset(): call only while nobody pushes or reads.
  void clear() { seq_.store(0, std::memory_order_relaxed); }

  std::size_t capacity() const { return capacity_; }

  // Events ever pushed (the published sequence counter).
  std::uint64_t total() const { return seq_.load(std::memory_order_acquire); }

  // Events a snapshot can return right now.
  std::size_t size() const {
    const std::uint64_t t = total();
    return t < capacity_ ? static_cast<std::size_t>(t) : capacity_;
  }

  // Writer side — wait-free, single writer only.
  void push(const T& event) {
    const std::uint64_t s = seq_.load(std::memory_order_relaxed);
    if (capacity_ != 0) {
      std::uint64_t w[kWords] = {};
      std::memcpy(w, &event, sizeof(T));
      std::atomic<std::uint64_t>* slot = buf_.get() + (s & mask_) * kWords;
      for (std::size_t i = 0; i < kWords; ++i) {
        slot[i].store(w[i], std::memory_order_relaxed);
      }
    }
    seq_.store(s + 1, std::memory_order_release);
  }

  struct ReadResult {
    std::vector<T> events;      // untorn, chronological (oldest first)
    std::uint64_t next = 0;     // cursor for the following read_from
    std::uint64_t dropped = 0;  // events between cursor and the first returned
  };

  // Observer side: the events published since `cursor` (an event count from
  // a previous ReadResult::next; 0 reads the whole retained window).  Events
  // already overwritten — or overwritten while we copied — are counted in
  // `dropped`, never returned torn.  Bounded retries keep the observer
  // wait-free too; it simply sees less of a ring that outruns it.
  ReadResult read_from(std::uint64_t cursor) const {
    ReadResult r;
    const std::uint64_t origin = cursor;
    if (capacity_ == 0) {
      r.next = total();
      r.dropped = r.next - origin;
      return r;
    }
    for (int attempt = 0; attempt < 4; ++attempt) {
      const std::uint64_t end = seq_.load(std::memory_order_acquire);
      std::uint64_t start = cursor;
      const std::uint64_t lo = end > capacity_ ? end - capacity_ : 0;
      if (start < lo) start = lo;
      if (start >= end) {
        r.next = end;
        r.dropped = start > origin ? start - origin : 0;
        return r;
      }
      std::vector<T> events;
      events.reserve(static_cast<std::size_t>(end - start));
      for (std::uint64_t s = start; s < end; ++s) {
        std::uint64_t w[kWords];
        const std::atomic<std::uint64_t>* slot =
            buf_.get() + (s & mask_) * kWords;
        for (std::size_t i = 0; i < kWords; ++i) {
          w[i] = slot[i].load(std::memory_order_relaxed);
        }
        T e;
        std::memcpy(&e, w, sizeof(T));
        events.push_back(e);
      }
      // Event s lives in slot s & mask_, which the writer touches again only
      // for event s + slots_.  After the copy the writer may already be
      // mid-push of the (unpublished) event with index `now`, so a copied
      // event is provably untorn iff s + slots_ > now.
      const std::uint64_t now = seq_.load(std::memory_order_acquire);
      const std::uint64_t safe = now >= slots_ ? now - slots_ + 1 : 0;
      if (start >= safe) {
        r.events = std::move(events);
        r.next = end;
        r.dropped = start - origin;
        return r;
      }
      if (end > safe) {  // only a prefix was overwritten — discard just it
        events.erase(events.begin(),
                     events.begin() + static_cast<std::ptrdiff_t>(safe - start));
        r.events = std::move(events);
        r.next = end;
        r.dropped = safe - origin;
        return r;
      }
      cursor = end;  // the whole window was outrun; retry against fresh state
    }
    r.next = cursor;
    r.dropped = cursor - origin;
    return r;
  }

  // The retained window in chronological order (oldest first).
  std::vector<T> snapshot() const { return read_from(0).events; }

 private:
  static constexpr std::size_t kWords = (sizeof(T) + 7) / 8;

  std::size_t capacity_ = 0;  // logical window, exactly as requested
  std::size_t slots_ = 0;     // physical slots: bit_ceil(capacity + 1)
  std::size_t mask_ = 0;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buf_;
  std::atomic<std::uint64_t> seq_{0};
};

// What a flight-recorder event describes.  docs/observability.md has the
// per-kind payload table.
enum class FlightKind : std::uint8_t {
  kPhaseEnter = 0,  // a8 = PhaseId
  kPhaseExit,       // a8 = PhaseId, value = span duration (us)
  kWatClaim,        // a8 = 0 WAT / 1 LC-WAT, a32 = probes, value = job index
  kCasFailBurst,    // a32 = CAS fails on one element, value = element index
  kLeafBlock,       // a8 = 0 won / 1 lost, a32 = block len, value = node
  kFault,           // a8 = FaultCode, value = kill/suspend round or step
  kSimOp,           // a8 = pram OpKind, a32 = pid, value = address
  kSimRound,        // a32 = ops served this round
  kKindCount
};

const char* flight_kind_name(FlightKind kind);

// kFault payload codes (a8).
enum class FaultCode : std::uint8_t { kKill = 0, kSuspend = 1, kRevive = 2 };

const char* fault_code_name(FaultCode code);

// One compact fixed-size flight-recorder event: 24 bytes, three ring words.
// `t` is microseconds since the run epoch on the native substrate and the
// round number on the simulator (rounds keep sim rings byte-reproducible).
struct FlightEvent {
  std::uint64_t t = 0;
  std::uint64_t value = 0;
  std::uint32_t a32 = 0;
  std::uint16_t tid = 0;
  std::uint8_t kind = 0;  // FlightKind
  std::uint8_t a8 = 0;

  FlightKind flight_kind() const { return static_cast<FlightKind>(kind); }
};
static_assert(sizeof(FlightEvent) == 24);

using FlightRing = FixedRing<FlightEvent>;

}  // namespace wfsort::telemetry
