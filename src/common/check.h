// Lightweight invariant checking used across the library.
//
// WFSORT_CHECK is always on (it guards algorithmic invariants whose violation
// would make results silently wrong); WFSORT_DCHECK compiles away in NDEBUG
// builds and is used on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace wfsort {

[[noreturn]] inline void check_failed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace wfsort

#define WFSORT_CHECK(expr)                                   \
  do {                                                       \
    if (!(expr)) ::wfsort::check_failed(__FILE__, __LINE__, #expr); \
  } while (0)

#ifdef NDEBUG
#define WFSORT_DCHECK(expr) \
  do {                      \
  } while (0)
#else
#define WFSORT_DCHECK(expr) WFSORT_CHECK(expr)
#endif
