// Runtime-dispatched SIMD key comparison for the batched tree descents.
//
// build_batch / build_lanes step up to kBuildLanes independent descents per
// round, and every step starts with the same question: does this element go
// to the small or the big child of its current parent?  For the common
// uint64 / std::less case that question is pure integer arithmetic — key
// compare, index tie-break — so one round's worth of answers can be computed
// as a short vector operation instead of eight dependent branchy calls.
//
// descend_sides_u64 answers it for up to 8 (element, parent) pairs at once:
// out[k] = 1 iff element k descends to the BIG child, i.e.
//
//   ekey[k] > pkey[k]  ||  (ekey[k] == pkey[k] && eidx[k] > pidx[k])
//
// which is exactly !TreeState::less(elem, parent) for Key = uint64_t with
// Compare = std::less — the tie-break included, so routing is bit-identical
// across every implementation.  Three implementations are provided:
//
//   scalar  portable reference (also the non-x86 build)
//   sse2    2 lanes/op; 64-bit unsigned compare synthesized from the
//           32-bit signed compare + equality (SSE2 has no 64-bit compare)
//   avx2    4 lanes/op via _mm256_cmpgt_epi64 with the sign-flip trick
//
// Dispatch happens once per process via __builtin_cpu_supports and is cached
// in a function-local static; the scalar fallback is the semantics, the SIMD
// paths only restate it wider.  test_engine_detail cross-checks all compiled
// implementations bit-for-bit on randomized and adversarial inputs.
#pragma once

#include <cstdint>
#include <functional>
#include <type_traits>

#if defined(__x86_64__) || defined(__i386__)
#define WFSORT_SIMD_X86 1
#include <immintrin.h>
#else
#define WFSORT_SIMD_X86 0
#endif

namespace wfsort::simd {

enum class Isa : std::uint8_t { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

inline const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kSse2: return "sse2";
    case Isa::kAvx2: return "avx2";
  }
  return "?";
}

// True when the batched descent of TreeState<Key, Compare> can be answered
// by descend_sides_u64 (key compare + index tie-break in pure integers).
template <typename Key, typename Compare>
inline constexpr bool kSimdDescend =
    std::is_same_v<Key, std::uint64_t> &&
    std::is_same_v<Compare, std::less<Key>>;

// Maximum pair count per call (one build round; kBuildLanes in build_phase.h).
inline constexpr int kMaxLanes = 8;

// ---- scalar reference -----------------------------------------------------

inline void descend_sides_u64_scalar(const std::uint64_t* ekey,
                                     const std::int64_t* eidx,
                                     const std::uint64_t* pkey,
                                     const std::int64_t* pidx, int count,
                                     std::uint8_t* out) {
  for (int k = 0; k < count; ++k) {
    // Branch-free form of !less: indices are distinct, so the tie-break is
    // a plain signed compare.
    const bool gt = ekey[k] > pkey[k];
    const bool eq = ekey[k] == pkey[k];
    const bool tie = eidx[k] > pidx[k];
    out[k] = static_cast<std::uint8_t>(gt | (eq & tie));
  }
}

#if WFSORT_SIMD_X86

// ---- SSE2 (x86-64 baseline) ----------------------------------------------

namespace detail_sse2 {

// Per-64-bit-lane a > b, unsigned, synthesized from 32-bit SSE2 ops:
//   hi(a) >u hi(b)  ||  (hi(a) == hi(b) && lo(a) >u lo(b))
// with the 32-bit unsigned compare done as a signed compare after flipping
// the sign bit.
inline __m128i cmpgt_epu64(__m128i a, __m128i b) {
  const __m128i sign32 = _mm_set1_epi32(static_cast<int>(0x80000000u));
  const __m128i gt32 = _mm_cmpgt_epi32(_mm_xor_si128(a, sign32),
                                       _mm_xor_si128(b, sign32));
  const __m128i eq32 = _mm_cmpeq_epi32(a, b);
  const __m128i gt_hi = _mm_shuffle_epi32(gt32, _MM_SHUFFLE(3, 3, 1, 1));
  const __m128i gt_lo = _mm_shuffle_epi32(gt32, _MM_SHUFFLE(2, 2, 0, 0));
  const __m128i eq_hi = _mm_shuffle_epi32(eq32, _MM_SHUFFLE(3, 3, 1, 1));
  return _mm_or_si128(gt_hi, _mm_and_si128(eq_hi, gt_lo));
}

// Per-64-bit-lane a == b from two 32-bit equalities.
inline __m128i cmpeq_epi64_sse2(__m128i a, __m128i b) {
  const __m128i eq32 = _mm_cmpeq_epi32(a, b);
  return _mm_and_si128(_mm_shuffle_epi32(eq32, _MM_SHUFFLE(3, 3, 1, 1)),
                       _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 2, 0, 0)));
}

}  // namespace detail_sse2

inline void descend_sides_u64_sse2(const std::uint64_t* ekey,
                                   const std::int64_t* eidx,
                                   const std::uint64_t* pkey,
                                   const std::int64_t* pidx, int count,
                                   std::uint8_t* out) {
  int k = 0;
  for (; k + 2 <= count; k += 2) {
    const __m128i ek = _mm_loadu_si128(reinterpret_cast<const __m128i*>(ekey + k));
    const __m128i pk = _mm_loadu_si128(reinterpret_cast<const __m128i*>(pkey + k));
    const __m128i ei = _mm_loadu_si128(reinterpret_cast<const __m128i*>(eidx + k));
    const __m128i pi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(pidx + k));
    const __m128i key_gt = detail_sse2::cmpgt_epu64(ek, pk);
    const __m128i key_eq = detail_sse2::cmpeq_epi64_sse2(ek, pk);
    // Element indices are nonnegative, so unsigned order == signed order.
    const __m128i idx_gt = detail_sse2::cmpgt_epu64(ei, pi);
    const __m128i big =
        _mm_or_si128(key_gt, _mm_and_si128(key_eq, idx_gt));
    const int mask = _mm_movemask_pd(_mm_castsi128_pd(big));
    out[k] = static_cast<std::uint8_t>(mask & 1);
    out[k + 1] = static_cast<std::uint8_t>((mask >> 1) & 1);
  }
  if (k < count) descend_sides_u64_scalar(ekey + k, eidx + k, pkey + k, pidx + k,
                                          count - k, out + k);
}

// ---- AVX2 (compiled with a target attribute; only called after CPUID) -----

__attribute__((target("avx2"))) inline void descend_sides_u64_avx2(
    const std::uint64_t* ekey, const std::int64_t* eidx,
    const std::uint64_t* pkey, const std::int64_t* pidx, int count,
    std::uint8_t* out) {
  const __m256i sign64 = _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ull));
  int k = 0;
  for (; k + 4 <= count; k += 4) {
    const __m256i ek = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ekey + k));
    const __m256i pk = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pkey + k));
    const __m256i ei = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(eidx + k));
    const __m256i pi = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pidx + k));
    // Unsigned 64-bit compare = signed compare after flipping the sign bit.
    const __m256i key_gt = _mm256_cmpgt_epi64(_mm256_xor_si256(ek, sign64),
                                              _mm256_xor_si256(pk, sign64));
    const __m256i key_eq = _mm256_cmpeq_epi64(ek, pk);
    const __m256i idx_gt = _mm256_cmpgt_epi64(ei, pi);  // indices: signed is fine
    const __m256i big =
        _mm256_or_si256(key_gt, _mm256_and_si256(key_eq, idx_gt));
    const int mask = _mm256_movemask_pd(_mm256_castsi256_pd(big));
    out[k] = static_cast<std::uint8_t>(mask & 1);
    out[k + 1] = static_cast<std::uint8_t>((mask >> 1) & 1);
    out[k + 2] = static_cast<std::uint8_t>((mask >> 2) & 1);
    out[k + 3] = static_cast<std::uint8_t>((mask >> 3) & 1);
  }
  if (k < count) descend_sides_u64_sse2(ekey + k, eidx + k, pkey + k, pidx + k,
                                        count - k, out + k);
}

#endif  // WFSORT_SIMD_X86

// ---- dispatch -------------------------------------------------------------

using DescendSidesFn = void (*)(const std::uint64_t*, const std::int64_t*,
                                const std::uint64_t*, const std::int64_t*, int,
                                std::uint8_t*);

namespace detail_dispatch {

inline Isa detect_isa() {
#if WFSORT_SIMD_X86
  if (__builtin_cpu_supports("avx2")) return Isa::kAvx2;
  return Isa::kSse2;  // SSE2 is the x86-64 baseline
#else
  return Isa::kScalar;
#endif
}

struct Dispatch {
  Isa isa;
  DescendSidesFn fn;
  Dispatch() : isa(detect_isa()) {
    switch (isa) {
#if WFSORT_SIMD_X86
      case Isa::kAvx2: fn = &descend_sides_u64_avx2; break;
      case Isa::kSse2: fn = &descend_sides_u64_sse2; break;
#endif
      default: fn = &descend_sides_u64_scalar; break;
    }
  }
};

inline const Dispatch& dispatch() {
  static const Dispatch d;
  return d;
}

}  // namespace detail_dispatch

// The ISA the process-wide dispatch selected (for reports and tests).
inline Isa active_isa() { return detail_dispatch::dispatch().isa; }

// The resolved comparison kernel, for callers that invoke it once per
// descent round: hoist the pointer out of the loop instead of paying the
// static-init guard and double indirection per call.
inline DescendSidesFn descend_fn() { return detail_dispatch::dispatch().fn; }

// out[k] = 1 iff pair k routes to the big child (see file comment).
// `count` <= kMaxLanes.
inline void descend_sides_u64(const std::uint64_t* ekey, const std::int64_t* eidx,
                              const std::uint64_t* pkey, const std::int64_t* pidx,
                              int count, std::uint8_t* out) {
  detail_dispatch::dispatch().fn(ekey, eidx, pkey, pidx, count, out);
}

}  // namespace wfsort::simd
