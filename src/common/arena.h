// RunArena — the recycled storage substrate behind SortPool (ISSUE 10).
//
// A sorting run allocates a deterministic sequence of large flat arrays
// whose sizes depend only on (n, Options): the PackedNode tree, the WAT
// done-bits, partition scratch, the LC fat-tree planes, copy-back chunk
// flags.  RunArena exploits that determinism with SLOT MATCHING: the i-th
// request of a run is served from the i-th retained buffer.  If the
// retained buffer is large enough the request costs zero heap traffic
// (reuse); otherwise the slot is reallocated to the new high-water mark
// (grow).  begin_run() rewinds the cursor; nothing is ever freed between
// runs, so a pool that has seen its largest input performs steady-state
// submits with ZERO heap allocations (test_pool.cpp proves it with a
// counting operator-new hook).
//
// The arena is single-owner per run: one thread calls begin_run() and all
// make<T>() calls happen-before the workers start (the Engine constructor
// runs on the submitting thread).  Workers only ever touch the returned
// storage, never the arena itself, so the arena needs no synchronization
// of its own — SortPool's per-variant busy flag serializes runs.
//
// Storage is always 64-byte aligned (cache-line isolation is part of the
// contract: PackedNode and the telemetry scratch rely on it).  Only
// trivially-destructible element types are supported — buffers are
// recycled by re-running placement default-initialization, never by
// running destructors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace wfsort {

class RunArena {
 public:
  static constexpr std::size_t kAlign = 64;

  struct Totals {
    std::uint64_t runs = 0;         // begin_run() calls
    std::uint64_t reuse_bytes = 0;  // bytes served from retained buffers
    std::uint64_t grow_events = 0;  // slots (re)allocated to a larger size
    std::uint64_t held_bytes = 0;   // current retained footprint
  };

  RunArena() = default;
  RunArena(const RunArena&) = delete;
  RunArena& operator=(const RunArena&) = delete;

  ~RunArena() {
    for (Slot& s : slots_) {
      ::operator delete(s.ptr, std::align_val_t{kAlign});
    }
  }

  // Rewind the slot cursor; retained buffers stay allocated and are handed
  // back out in the same order the previous run requested them.
  void begin_run() {
    cursor_ = 0;
    ++totals_.runs;
  }

  // Raw 64-byte-aligned storage.  Reuses the retained buffer at the current
  // slot when it is large enough, grows it otherwise.
  void* raw(std::size_t bytes) {
    if (bytes == 0) bytes = 1;
    if (cursor_ == slots_.size()) slots_.push_back(Slot{});
    Slot& s = slots_[cursor_++];
    if (s.bytes >= bytes) {
      totals_.reuse_bytes += bytes;
      return s.ptr;
    }
    ::operator delete(s.ptr, std::align_val_t{kAlign});
    totals_.held_bytes -= s.bytes;
    s.ptr = ::operator new(bytes, std::align_val_t{kAlign});
    s.bytes = bytes;
    totals_.held_bytes += bytes;
    ++totals_.grow_events;
    return s.ptr;
  }

  // An array of `count` default-initialized T.  Default-initialization
  // matches the owning `new T[count]` path bit for bit: C++20 atomics
  // value-initialize their payload in their default constructor, trivial
  // types stay uninitialized until the caller writes them.
  template <typename T>
  T* make(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage is recycled without running destructors");
    static_assert(alignof(T) <= kAlign, "raise RunArena::kAlign");
    T* p = static_cast<T*>(raw(count * sizeof(T)));
    for (std::size_t i = 0; i < count; ++i) {
      ::new (static_cast<void*>(p + i)) T;
    }
    return p;
  }

  // A single constructed object.  The caller is responsible for calling the
  // destructor before the next begin_run() if ~T matters (Engine does this
  // for LcShared / PartitionShared, whose members release thread handles —
  // their bulk arrays live in this same arena and need no teardown).
  template <typename T, typename... Args>
  T* create(Args&&... args) {
    static_assert(alignof(T) <= kAlign, "raise RunArena::kAlign");
    void* p = raw(sizeof(T));
    return ::new (p) T(std::forward<Args>(args)...);
  }

  const Totals& totals() const { return totals_; }

 private:
  struct Slot {
    void* ptr = nullptr;
    std::size_t bytes = 0;
  };

  std::vector<Slot> slots_;
  std::size_t cursor_ = 0;
  Totals totals_{};
};

// A flat array that either owns its storage (`new T[n]`, the cold one-shot
// path and direct construction in tests) or borrows it from a RunArena
// (the pooled path).  Same element semantics either way; the structures
// built on top (TreeState, Wat, FatTree, …) are oblivious to the choice.
template <typename T>
class ArenaArray {
 public:
  ArenaArray() = default;

  explicit ArenaArray(std::size_t count)
      : owned_(count == 0 ? nullptr : new T[count]),
        ptr_(owned_.get()),
        count_(count) {}

  ArenaArray(std::size_t count, RunArena& arena)
      : ptr_(count == 0 ? nullptr : arena.make<T>(count)), count_(count) {}

  ArenaArray(ArenaArray&&) noexcept = default;
  ArenaArray& operator=(ArenaArray&&) noexcept = default;

  T* data() { return ptr_; }
  const T* data() const { return ptr_; }
  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  T& operator[](std::size_t i) { return ptr_[i]; }
  const T& operator[](std::size_t i) const { return ptr_[i]; }

  T* begin() { return ptr_; }
  T* end() { return ptr_ + count_; }
  const T* begin() const { return ptr_; }
  const T* end() const { return ptr_ + count_; }

 private:
  std::unique_ptr<T[]> owned_;
  T* ptr_ = nullptr;
  std::size_t count_ = 0;
};

}  // namespace wfsort
